//===- bench/bench_table1_static.cpp - Paper Table 1 ----------------------===//
//
// Regenerates paper Table 1, "Grammar decision characteristics": for each
// benchmark grammar, the grammar size, the number of parsing decisions,
// how many analysis classified as fixed LL(k) / cyclic DFA / potentially
// backtracking, and the end-to-end analysis time (grammar parsing + ATN
// construction + DFA construction per decision).
//
// Expected shape (paper): the vast majority of decisions are fixed; a
// handful are cyclic; backtracking survives in roughly 5-22% of decisions
// with the PEG-mode grammars at the high end (RatsC highest); analysis
// takes seconds at most.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"

#include <chrono>
#include <cstdio>

using namespace llstar;
using namespace llstar::bench;

namespace {

/// Paper Table 1 reference rows for the analogous grammars.
struct PaperRow {
  const char *Name;
  int Lines, N, Fixed, Cyclic, Backtrack;
  double Seconds;
};
const PaperRow PaperRows[] = {
    {"Java1.5", 1022, 170, 150, 1, 20, 3.1},
    {"RatsC", 1174, 143, 111, 0, 32, 2.8},
    {"RatsJava", 763, 87, 73, 6, 8, 3.0},
    {"VB.NET", 3505, 348, 332, 0, 16, 6.75},
    {"TSQL", 8241, 1120, 1053, 10, 57, 13.1},
    {"C#", 3476, 217, 189, 2, 26, 6.3},
};

} // namespace

int main() {
  std::printf("=== Table 1: grammar decision characteristics ===\n");
  std::printf("%-10s %-9s %6s %5s %6s %7s %10s %9s\n", "Grammar", "(paper)",
              "Lines", "n", "Fixed", "Cyclic", "Backtrack", "Runtime");

  for (size_t I = 0; I < benchGrammars().size(); ++I) {
    const BenchGrammar &Spec = benchGrammars()[I];

    // Median of three analysis runs (parse + ATN + all DFAs).
    double Times[3];
    std::unique_ptr<AnalyzedGrammar> AG;
    for (double &T : Times) {
      auto Start = std::chrono::steady_clock::now();
      DiagnosticEngine Diags;
      AG = analyzeGrammarText(Spec.Text, Diags);
      T = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      if (!AG) {
        std::fprintf(stderr, "grammar %s failed:\n%s\n", Spec.Name,
                     Diags.str().c_str());
        return 1;
      }
    }
    std::sort(std::begin(Times), std::end(Times));

    const StaticStats &S = AG->stats();
    std::printf("%-10s %-9s %6lld %5d %6d %7d %5d (%4.1f%%) %8.3fs\n",
                Spec.Name, Spec.PaperName, (long long)countLines(Spec.Text),
                S.NumDecisions, S.NumFixed, S.NumCyclic, S.NumBacktrack,
                100.0 * S.NumBacktrack / S.NumDecisions, Times[1]);
  }

  std::printf("\n--- paper reference (authors' testbed, ANTLR 3.3) ---\n");
  for (const PaperRow &R : PaperRows)
    std::printf("%-10s %15d %5d %6d %7d %5d (%4.1f%%) %8.2fs\n", R.Name,
                R.Lines, R.N, R.Fixed, R.Cyclic, R.Backtrack,
                100.0 * R.Backtrack / R.N, R.Seconds);
  std::printf("\nShape check: Fixed >> Backtrack > Cyclic per grammar; "
              "PEG-mode grammars keep the most backtracking.\n");
  return 0;
}
