//===- bench/bench_leftrec.cpp - Section 1.1 left-recursion extension -----===//
//
// Exercises the paper's Section 1.1 prototype: immediate left recursion
// rewritten into a precedence-predicated loop. We compare three ways of
// parsing the same expression language:
//
//   1. the paper's left-recursive rule (auto-rewritten),
//   2. a conventional hand-layered precedence grammar,
//   3. a packrat parser on the layered grammar.
//
// All three must agree on the parse; the bench reports throughput and
// checks precedence/associativity semantics via an evaluator.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "peg/PackratParser.h"
#include "runtime/LLStarParser.h"

#include <chrono>
#include <cstdio>
#include <random>
#include <string>

using namespace llstar;

namespace {

const char *LeftRecText = R"(
grammar E;
e : e ('*' | '/') e | e ('+' | '-') e | '(' e ')' | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)";

const char *LayeredText = R"(
grammar E2;
e : t (('+' | '-') t)* ;
t : f (('*' | '/') f)* ;
f : '(' e ')' | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)";

std::string randomExpression(int Terms, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::string S = std::to_string(Rng() % 100);
  static const char *Ops[] = {" + ", " - ", " * ", " / "};
  for (int I = 1; I < Terms; ++I) {
    S += Ops[Rng() % 4];
    if (Rng() % 5 == 0) {
      S += "(" + std::to_string(Rng() % 100) + " + " +
           std::to_string(Rng() % 100) + ")";
    } else {
      S += std::to_string(Rng() % 100);
    }
  }
  return S;
}

double timeParse(const AnalyzedGrammar &AG, const Lexer &L,
                 const std::string &Input, bool &Ok) {
  DiagnosticEngine Diags;
  TokenStream Stream(L.tokenize(Input, Diags));
  LLStarParser P(AG, Stream, nullptr, Diags);
  auto Start = std::chrono::steady_clock::now();
  P.parse("e");
  double T = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           Start)
                 .count();
  Ok = P.ok();
  return T;
}

} // namespace

int main() {
  std::printf("=== Left-recursion precedence rewrite (paper Section 1.1) "
              "===\n\n");
  DiagnosticEngine D1, D2;
  auto LeftRec = analyzeGrammarText(LeftRecText, D1);
  auto Layered = analyzeGrammarText(LayeredText, D2);
  if (!LeftRec || !Layered) {
    std::fprintf(stderr, "%s%s\n", D1.str().c_str(), D2.str().c_str());
    return 1;
  }
  std::printf("left-recursive rule rewritten: %s\n\n",
              LeftRec->grammar().rule(0).IsPrecedenceRule ? "yes" : "NO");
  std::printf("rewritten grammar:\n%s\n", LeftRec->grammar().str().c_str());

  DiagnosticEngine LD1, LD2;
  Lexer L1(LeftRec->grammar().lexerSpec(), LD1);
  Lexer L2(Layered->grammar().lexerSpec(), LD2);

  // Semantic agreement: evaluate via both grammars' parse trees.
  std::printf("precedence checks ('1+2*3' must be 7, '2*3+4' must be 10, "
              "'8-2-1' must be 5):\n");
  struct Case {
    const char *Input;
    long Expected;
  } Cases[] = {{"1+2*3", 7}, {"2*3+4", 10}, {"8-2-1", 5},
               {"(1+2)*3", 9}, {"100/5/2", 10}};
  for (const Case &C : Cases) {
    DiagnosticEngine Diags;
    TokenStream Stream(L1.tokenize(C.Input, Diags));
    LLStarParser P(*LeftRec, Stream, nullptr, Diags);
    auto Tree = P.parse("e");
    // Evaluate the loop-form tree: head operand then (op, operand) pairs.
    std::function<long(const ParseTree *)> Eval =
        [&](const ParseTree *N) -> long {
      if (N->isToken())
        return std::strtol(N->token().Text.c_str(), nullptr, 10);
      size_t I;
      long V;
      if (N->child(0)->isToken() && N->child(0)->token().Text == "(") {
        V = Eval(N->child(1));
        I = 3;
      } else {
        V = Eval(N->child(0));
        I = 1;
      }
      while (I + 1 < N->numChildren() + 1 && I < N->numChildren()) {
        char Op = N->child(I)->token().Text[0];
        long R = Eval(N->child(I + 1));
        V = Op == '+' ? V + R : Op == '-' ? V - R : Op == '*' ? V * R : V / R;
        I += 2;
      }
      return V;
    };
    long Got = P.ok() ? Eval(Tree.get()) : -1;
    std::printf("  %-10s => %ld %s\n", C.Input, Got,
                Got == C.Expected ? "ok" : "WRONG");
  }

  std::printf("\nthroughput (expression with N terms):\n");
  std::printf("%-8s %16s %16s %16s\n", "terms", "leftrec LL(*)",
              "layered LL(*)", "layered packrat");
  for (int Terms : {1000, 10000, 50000}) {
    std::string Input = randomExpression(Terms, 7);
    bool Ok1 = false, Ok2 = false;
    double T1 = timeParse(*LeftRec, L1, Input, Ok1);
    double T2 = timeParse(*Layered, L2, Input, Ok2);

    DiagnosticEngine Diags;
    TokenStream Stream(L2.tokenize(Input, Diags));
    PackratParser Packrat(Layered->grammar(), Stream, nullptr, Diags);
    auto Start = std::chrono::steady_clock::now();
    Packrat.parse("e");
    double T3 = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

    std::printf("%-8d %14.2fms%s %14.2fms%s %14.2fms%s\n", Terms, T1 * 1000,
                Ok1 ? " " : "!", T2 * 1000, Ok2 ? " " : "!", T3 * 1000,
                Packrat.ok() ? " " : "!");
  }
  std::printf("\nShape check: all three agree; the rewritten left-"
              "recursive grammar parses at speed comparable to the "
              "hand-layered one.\n");
  return 0;
}
