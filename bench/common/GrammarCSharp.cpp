//===- bench/common/GrammarCSharp.cpp - C# benchmark grammar --------------===//
//
// A C# subset (paper analog: the commercial C# grammar): Java-like
// structure plus namespaces, using directives, properties, foreach, and
// base access. The member decision (field vs method vs property vs
// constructor) requires scanning past arbitrarily long modifier lists and
// qualified types — cyclic-DFA territory — and several hand syntactic
// predicates mirror the commercial grammar's manually specified
// predicates.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"

namespace llstar {
namespace bench {

const char *CSharpGrammarText = R"GRAMMAR(
grammar CSharp;

compilationUnit : usingDirective* namespaceMember* EOF ;
usingDirective  : 'using' qualifiedName ';' ;
namespaceMember : namespaceDecl | typeDecl ;
namespaceDecl   : 'namespace' qualifiedName '{' namespaceMember* '}' ;
qualifiedName   : ID ('.' ID)* ;

typeDecl   : classDecl | structDecl | interfaceDecl | enumDecl ;
classDecl  : modifier* 'class' ID (':' typeList)? classBody ;
structDecl : modifier* 'struct' ID (':' typeList)? classBody ;
interfaceDecl : modifier* 'interface' ID (':' typeList)?
                '{' interfaceMember* '}' ;
interfaceMember : typeOrVoid ID '(' formalParams? ')' ';'
                | type ID '{' ('get' ';')? ('set' ';')? '}'
                | type ID '=' expression ';'
                ;
enumDecl   : modifier* 'enum' ID
             '{' ID ('=' INT_LIT)? (',' ID ('=' INT_LIT)?)* '}' ;
modifier   : 'public' | 'private' | 'protected' | 'internal' | 'static'
           | 'sealed' | 'virtual' | 'override' | 'readonly' | 'abstract' ;
typeList   : type (',' type)* ;
classBody  : '{' memberDecl* '}' ;

memberDecl : (modifier* typeOrVoid ID '(')=> methodDecl
           | (modifier* type ID '{')=> propertyDecl
           | (modifier* 'static' '{')=> staticInit
           | fieldDecl
           | constructorDecl
           | typeDecl
           ;
methodDecl      : modifier* typeOrVoid ID '(' formalParams? ')'
                  (block | ';') ;
propertyDecl    : modifier* type ID '{' accessor+ '}' ;
accessor        : ('get' | 'set') (block | ';') ;
staticInit      : 'static' block ;
fieldDecl       : modifier* type varDeclarator (',' varDeclarator)* ';' ;
constructorDecl : modifier* ID '(' formalParams? ')' block ;
varDeclarator   : ID ('=' variableInit)? ;
variableInit    : expression | arrayInit ;
arrayInit       : '{' (variableInit (',' variableInit)*)? '}' ;
typeOrVoid      : type | 'void' ;
type            : primitiveType ('[' ']')* | qualifiedName ('[' ']')* ;
primitiveType   : 'int' | 'bool' | 'char' | 'long' | 'double' | 'float'
                | 'string' | 'object' | 'decimal' | 'byte' | 'short' ;
formalParams    : formalParam (',' formalParam)* ;
formalParam     : ('ref' | 'out')? type ID ;

block     : '{' statement* '}' ;
statement : block
          | 'if' parExpr statement ('else' statement)?
          | 'while' parExpr statement
          | 'do' statement 'while' parExpr ';'
          | 'for' '(' forInit? ';' expression? ';' expressionList? ')'
            statement
          | 'foreach' '(' type ID 'in' expression ')' statement
          | 'switch' parExpr '{' switchGroup* '}'
          | 'try' block (catchClause+ finallyClause? | finallyClause)
          | 'using' '(' localVarDecl ')' statement
          | 'lock' parExpr statement
          | 'return' expression? ';'
          | 'break' ';'
          | 'continue' ';'
          | 'throw' expression ';'
          | ';'
          | (localVarDecl ';')=> localVarDecl ';'
          | statementExpression ';'
          ;
switchGroup   : switchLabel+ statement* ;
switchLabel   : 'case' expression ':' | 'default' ':' ;
catchClause   : 'catch' ('(' type ID? ')')? block ;
finallyClause : 'finally' block ;
parExpr             : '(' expression ')' ;
forInit             : (localVarDecl)=> localVarDecl | expressionList ;
localVarDecl        : type varDeclarator (',' varDeclarator)* ;
expressionList      : expression (',' expression)* ;
statementExpression : expression ;

expression     : conditional (assignOp expression)? ;
assignOp       : '=' | '+=' | '-=' | '*=' | '/=' | '%=' ;
conditional    : nullCoalesce ('?' expression ':' conditional)? ;
nullCoalesce   : logicalOr ('??' logicalOr)* ;
logicalOr      : logicalAnd ('||' logicalAnd)* ;
logicalAnd     : bitOr ('&&' bitOr)* ;
bitOr          : bitAnd ('|' bitAnd)* ;
bitAnd         : equality ('&' equality)* ;
equality       : relational (('==' | '!=') relational)* ;
relational     : additive (('<' | '>' | '<=' | '>=') additive
                          | ('is' | 'as') type)* ;
additive       : multiplicative (('+' | '-') multiplicative)* ;
multiplicative : unary (('*' | '/' | '%') unary)* ;
unary          : ('+' | '-' | '!' | '~') unary
               | ('++' | '--') postfix
               | (castExpr)=> castExpr
               | postfix
               ;
castExpr       : '(' type ')' unary ;
postfix        : primary postfixOp* ('++' | '--')? ;
postfixOp      : '.' ID arguments? | '[' expression ']' ;
arguments      : '(' expressionList? ')' ;
primary        : literal
               | 'new' creator
               | 'this' arguments?
               | 'base' '.' ID arguments?
               | 'typeof' '(' type ')'
               | '(' expression ')'
               | ID arguments?
               ;
creator        : qualifiedName arguments
               | primitiveType ('[' expression ']')+
               | qualifiedName ('[' expression ']')+
               ;
literal        : INT_LIT | FLOAT_LIT | STRING_LIT | CHAR_LIT | 'true'
               | 'false' | 'null' ;

ID         : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT    : [0-9]+ | '0' ('x'|'X') [0-9a-fA-F]+ ;
FLOAT_LIT  : [0-9]+ '.' [0-9]+ ([eE] [+\-]? [0-9]+)? [fFdDmM]? ;
STRING_LIT : '"' (~["\\\n] | '\\' .)* '"' ;
CHAR_LIT   : '\'' (~['\\\n] | '\\' .) '\'' ;
WS         : [ \t\r\n]+ -> skip ;
LINE_COMMENT  : '//' ~[\n]* -> skip ;
BLOCK_COMMENT : '/*' ~[*]* '*'+ (~[*/] ~[*]* '*'+)* '/' -> skip ;
)GRAMMAR";

} // namespace bench
} // namespace llstar
