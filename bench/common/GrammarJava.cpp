//===- bench/common/GrammarJava.cpp - Java benchmark grammars -------------===//
//
// The Java-subset grammar (paper analog: Java1.5) and its PEG-mode twin
// (paper analog: RatsJava). The hand-tuned version uses explicit syntactic
// predicates where Java genuinely needs unbounded or structural lookahead
// (local declarations vs expression statements, object casts vs
// parenthesized expressions, enhanced-for vs classic-for) and relies on
// cyclic DFAs for the member-declaration decisions; the PEG version turns
// on backtrack mode and drops the hand predicates, mirroring a mechanical
// Rats! conversion.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"

namespace llstar {
namespace bench {

// Shared body: everything below `compilationUnit` is identical between the
// two variants except the three hand predicates, which the PEG twin
// replaces with plain ordered alternatives.
#define JAVA_BODY(STMT_LOCAL, FOR_EACH, CAST_ALT)                             \
  "\n"                                                                        \
  "compilationUnit : packageDecl? importDecl* typeDecl* EOF ;\n"              \
  "packageDecl     : 'package' qualifiedName ';' ;\n"                         \
  "importDecl      : 'import' 'static'? qualifiedName ('.' '*')? ';' ;\n"     \
  "qualifiedName   : ID ('.' ID)* ;\n"                                        \
  "\n"                                                                        \
  "typeDecl      : classDecl | interfaceDecl | enumDecl | ';' ;\n"            \
  "classDecl     : modifier* 'class' ID ('extends' type)?\n"                  \
  "                ('implements' typeList)? classBody ;\n"                    \
  "interfaceDecl : modifier* 'interface' ID ('extends' typeList)?\n"          \
  "                '{' interfaceMember* '}' ;\n"                              \
  "interfaceMember : modifier* typeOrVoid ID '(' formalParams? ')' ';'\n"     \
  "                | modifier* type ID '=' expression ';'\n"                  \
  "                ;\n"                                                       \
  "enumDecl      : modifier* 'enum' ID '{' ID (',' ID)*\n"                    \
  "                (';' memberDecl*)? '}' ;\n"                                \
  "modifier      : 'public' | 'private' | 'protected' | 'static' | 'final'\n" \
  "              | 'abstract' | 'synchronized' | 'native' | 'transient'\n"    \
  "              | 'volatile' ;\n"                                            \
  "typeList      : type (',' type)* ;\n"                                      \
  "classBody     : '{' memberDecl* '}' ;\n"                                   \
  "\n"                                                                        \
  "memberDecl      : methodDecl | fieldDecl | constructorDecl\n"              \
  "                | staticInit | typeDecl ;\n"                               \
  "methodDecl      : modifier* typeOrVoid ID '(' formalParams? ')'\n"         \
  "                  ('throws' typeList)? (block | ';') ;\n"                  \
  "fieldDecl       : modifier* type varDeclarator (',' varDeclarator)*\n"     \
  "                  ';' ;\n"                                                 \
  "constructorDecl : modifier* ID '(' formalParams? ')'\n"                    \
  "                  ('throws' typeList)? block ;\n"                          \
  "staticInit      : 'static' block ;\n"                                      \
  "varDeclarator   : ID ('[' ']')* ('=' variableInit)? ;\n"                   \
  "variableInit    : expression | arrayInit ;\n"                              \
  "arrayInit       : '{' (variableInit (',' variableInit)* ','?)? '}' ;\n"    \
  "typeOrVoid      : type | 'void' ;\n"                                       \
  "type            : primitiveType ('[' ']')*\n"                              \
  "                | qualifiedName ('[' ']')* ;\n"                            \
  "primitiveType   : 'int' | 'boolean' | 'char' | 'long' | 'double'\n"        \
  "                | 'float' | 'byte' | 'short' ;\n"                          \
  "formalParams    : formalParam (',' formalParam)* ;\n"                      \
  "formalParam     : 'final'? type ID ('[' ']')* ;\n"                         \
  "\n"                                                                        \
  "block     : '{' statement* '}' ;\n"                                       \
  "statement : block\n"                                                      \
  "          | 'if' parExpr statement ('else' statement)?\n"                  \
  "          | 'while' parExpr statement\n"                                   \
  "          | 'do' statement 'while' parExpr ';'\n"                          \
  "          | 'for' '(' forControl ')' statement\n"                          \
  "          | 'switch' parExpr '{' switchGroup* '}'\n"                       \
  "          | 'try' block (catchClause+ finallyClause? | finallyClause)\n"   \
  "          | 'throw' expression ';'\n"                                      \
  "          | 'synchronized' parExpr block\n"                                \
  "          | 'return' expression? ';'\n"                                    \
  "          | 'break' ID? ';'\n"                                             \
  "          | 'continue' ID? ';'\n"                                          \
  "          | 'assert' expression (':' expression)? ';'\n"                   \
  "          | ';'\n"                                                         \
  "          | " STMT_LOCAL "\n"                                              \
  "          | statementExpression ';'\n"                                     \
  "          ;\n"                                                             \
  "switchGroup   : switchLabel+ statement* ;\n"                               \
  "switchLabel   : 'case' expression ':' | 'default' ':' ;\n"                 \
  "catchClause   : 'catch' '(' type ID ')' block ;\n"                         \
  "finallyClause : 'finally' block ;\n"                                       \
  "parExpr       : '(' expression ')' ;\n"                                    \
  "forControl    : " FOR_EACH "\n"                                            \
  "              | forInit? ';' expression? ';' expressionList? ;\n"          \
  "forInit       : " STMT_LOCAL_FORINIT " ;\n"                                \
  "localVarDecl  : 'final'? type varDeclarator (',' varDeclarator)* ;\n"      \
  "expressionList      : expression (',' expression)* ;\n"                    \
  "statementExpression : expression ;\n"                                      \
  "\n"                                                                        \
  "expression     : conditional (assignOp expression)? ;\n"                   \
  "assignOp       : '=' | '+=' | '-=' | '*=' | '/=' | '%=' | '&='\n"          \
  "               | '|=' | '^=' ;\n"                                          \
  "conditional    : logicalOr ('?' expression ':' conditional)? ;\n"          \
  "logicalOr      : logicalAnd ('||' logicalAnd)* ;\n"                        \
  "logicalAnd     : bitOr ('&&' bitOr)* ;\n"                                  \
  "bitOr          : bitXor ('|' bitXor)* ;\n"                                 \
  "bitXor         : bitAnd ('^' bitAnd)* ;\n"                                 \
  "bitAnd         : equality ('&' equality)* ;\n"                             \
  "equality       : relational (('==' | '!=') relational)* ;\n"               \
  "relational     : shift (('<' | '>' | '<=' | '>=') shift\n"                 \
  "                       | 'instanceof' type)* ;\n"                          \
  "shift          : additive (('<<' | '>>') additive)* ;\n"                   \
  "additive       : multiplicative (('+' | '-') multiplicative)* ;\n"         \
  "multiplicative : unary (('*' | '/' | '%') unary)* ;\n"                     \
  "unary          : ('+' | '-' | '!' | '~') unary\n"                          \
  "               | ('++' | '--') postfix\n"                                  \
  "               | " CAST_ALT "\n"                                           \
  "               | postfix\n"                                                \
  "               ;\n"                                                        \
  "castExpr       : '(' type ')' unary ;\n"                                   \
  "postfix        : primary postfixOp* ('++' | '--')? ;\n"                    \
  "postfixOp      : '.' ID arguments? | '[' expression ']' ;\n"               \
  "arguments      : '(' expressionList? ')' ;\n"                              \
  "primary        : literal\n"                                                \
  "               | 'new' creator\n"                                          \
  "               | 'this' arguments?\n"                                      \
  "               | 'super' '.' ID arguments?\n"                              \
  "               | '(' expression ')'\n"                                     \
  "               | ID arguments?\n"                                          \
  "               ;\n"                                                        \
  "creator        : qualifiedName arguments\n"                                \
  "               | primitiveType ('[' expression ']')+\n"                    \
  "               | qualifiedName ('[' expression ']')+\n"                    \
  "               ;\n"                                                        \
  "literal        : INT_LIT | FLOAT_LIT | STRING_LIT | CHAR_LIT | 'true'\n"   \
  "               | 'false' | 'null' ;\n"                                     \
  "\n"                                                                        \
  "ID         : [a-zA-Z_$] [a-zA-Z0-9_$]* ;\n"                                \
  "INT_LIT    : [0-9]+ | '0' ('x'|'X') [0-9a-fA-F]+ ;\n"                      \
  "FLOAT_LIT  : [0-9]+ '.' [0-9]+ ([eE] [+\\-]? [0-9]+)? [fFdD]? ;\n"         \
  "STRING_LIT : '\"' (~[\"\\\\\\n] | '\\\\' .)* '\"' ;\n"                     \
  "CHAR_LIT   : '\\'' (~['\\\\\\n] | '\\\\' .) '\\'' ;\n"                     \
  "WS         : [ \\t\\r\\n]+ -> skip ;\n"                                    \
  "LINE_COMMENT  : '//' ~[\\n]* -> skip ;\n"                                  \
  "BLOCK_COMMENT : '/*' ~[*]* '*'+ (~[*/] ~[*]* '*'+)* '/' -> skip ;\n"

#define STMT_LOCAL_FORINIT FOR_INIT_BODY

// Hand-tuned variant: explicit syntactic predicates.
#define FOR_INIT_BODY "(localVarDecl)=> localVarDecl | expressionList"
const char *JavaGrammarText =
    "grammar Java;\n" JAVA_BODY(
        /*STMT_LOCAL=*/"(localVarDecl)=> localVarDecl ';'",
        /*FOR_EACH=*/"('final'? type ID ':')=> 'final'? type ID ':' expression",
        /*CAST_ALT=*/"(castExpr)=> castExpr");
#undef FOR_INIT_BODY

// Mechanical PEG conversion: backtrack mode, ordered choice instead of the
// hand predicates, structure otherwise preserved — the paper's RatsJava
// treatment.
#define FOR_INIT_BODY "localVarDecl | expressionList"
const char *RatsJavaGrammarText =
    "grammar RatsJava;\noptions { backtrack=true; memoize=true; }\n" JAVA_BODY(
        /*STMT_LOCAL=*/"localVarDecl ';'",
        /*FOR_EACH=*/"'final'? type ID ':' expression",
        /*CAST_ALT=*/"castExpr");
#undef FOR_INIT_BODY

} // namespace bench
} // namespace llstar
