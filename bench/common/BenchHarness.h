//===- bench/common/BenchHarness.h - Shared bench plumbing ------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the benchmark binaries: analyze a benchmark grammar,
/// bind its semantic environment (the C grammar's isTypeName predicate),
/// lex a workload, run the LL(*) parser with statistics, and format table
/// rows.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_BENCH_BENCHHARNESS_H
#define LLSTAR_BENCH_BENCHHARNESS_H

#include "BenchGrammars.h"

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"
#include "runtime/SemanticEnv.h"

#include <memory>
#include <string>

namespace llstar {
namespace bench {

/// A fully prepared benchmark grammar: analysis result + compiled lexer +
/// semantic bindings.
struct PreparedGrammar {
  const BenchGrammar *Spec = nullptr;
  std::unique_ptr<AnalyzedGrammar> AG;
  std::unique_ptr<Lexer> Lex;
  SemanticEnv Env;
  /// Lines of grammar text (Table 1's "Lines" column).
  int64_t GrammarLines = 0;
  /// set per parse by bindEnv: the token stream the predicates inspect.
  TokenStream *CurrentStream = nullptr;

  /// Parses + analyzes; aborts with a message on grammar errors.
  static PreparedGrammar prepare(const BenchGrammar &Spec);

  /// Lexes input; aborts on lex errors.
  TokenStream tokenize(const std::string &Input);

  /// Runs one full parse collecting stats into \p P. Returns success.
  bool runParse(TokenStream &Stream, LLStarParser &P);
};

/// Number of newline-terminated lines in \p Text.
int64_t countLines(const std::string &Text);

} // namespace bench
} // namespace llstar

#endif // LLSTAR_BENCH_BENCHHARNESS_H
