//===- bench/common/GrammarBasicSql.cpp - Basic and SQL grammars ----------===//
//
// Basic (paper analog: VB.NET): keyword-led statement language; nearly
// every decision is LL(1), matching the paper's 95% fixed / 89% LL(1)
// profile for VB.NET.
//
// Sql (paper analog: TSQL): DML/DDL statement language with deep fixed-k
// keyword decisions (CREATE TABLE/INDEX/VIEW, LEFT OUTER JOIN) and a
// left-recursive boolean expression rule exercising the precedence
// rewrite.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"

namespace llstar {
namespace bench {

const char *BasicGrammarText = R"GRAMMAR(
grammar Basic;

program   : statement* EOF ;
statement : 'DIM' ID 'AS' typeName ('=' expression)?
          | 'REDIM' ID '(' expression ')'
          | 'CONST' ID 'AS' typeName '=' expression
          | 'IF' expression 'THEN' statement* elseClause? 'END' 'IF'
          | 'FOR' 'EACH' ID 'IN' expression statement* 'NEXT'
          | 'FOR' ID '=' expression 'TO' expression ('STEP' expression)?
            statement* 'NEXT'
          | 'WHILE' expression statement* 'WEND'
          | 'DO' statement* 'LOOP' ('WHILE' | 'UNTIL') expression
          | 'SUB' ID '(' paramList? ')' statement* 'END' 'SUB'
          | 'FUNCTION' ID '(' paramList? ')' 'AS' typeName statement*
            'END' 'FUNCTION'
          | 'RETURN' expression
          | 'PRINT' expressionList
          | 'CALL' qualified '(' expressionList? ')'
          | 'SELECT' 'CASE' expression caseClause* 'END' 'SELECT'
          | 'EXIT' ('FOR' | 'SUB' | 'FUNCTION' | 'DO')
          | 'WITH' qualified statement* 'END' 'WITH'
          | 'ON' 'ERROR' ('RESUME' 'NEXT' | 'GOTO' INT_LIT)
          // Member assignment vs method-call statement: both begin with an
          // arbitrarily long dotted name. The hand syntactic predicate
          // mirrors the manually specified predicates of the commercial
          // grammars the paper benchmarks.
          | (qualified '=')=> qualified '=' expression
          | qualified '(' expressionList? ')'
          ;
qualified  : ID ('.' ID)* ;
elseClause : 'ELSEIF' expression 'THEN' statement* elseClause?
           | 'ELSE' statement*
           ;
caseClause : 'CASE' ('ELSE' | expression (',' expression)*) statement* ;
paramList  : param (',' param)* ;
param      : ('BYVAL' | 'BYREF')? ID 'AS' typeName ;
typeName   : 'INTEGER' | 'LONG' | 'SINGLE' | 'DOUBLE' | 'STRING'
           | 'BOOLEAN' | ID ;

expressionList : expression (',' expression)* ;
expression     : orExpr ;
orExpr         : andExpr ('OR' andExpr)* ;
andExpr        : notExpr ('AND' notExpr)* ;
notExpr        : 'NOT' notExpr | comparison ;
comparison     : concat (('=' | '<>' | '<' | '>' | '<=' | '>=') concat)? ;
concat         : additive ('&' additive)* ;
additive       : multiplicative (('+' | '-') multiplicative)* ;
multiplicative : unary (('*' | '/' | 'MOD') unary)* ;
unary          : '-' unary | power ;
power          : atom ('^' unary)? ;
atom           : INT_LIT | REAL_LIT | STRING_LIT | 'TRUE' | 'FALSE'
               | qualified ('(' expressionList? ')')?
               | '(' expression ')'
               ;

ID         : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT    : [0-9]+ ;
REAL_LIT   : [0-9]+ '.' [0-9]+ ;
STRING_LIT : '"' (~["\n])* '"' ;
WS         : [ \t\r\n]+ -> skip ;
COMMENT    : '\'' ~[\n]* -> skip ;
)GRAMMAR";

const char *SqlGrammarText = R"GRAMMAR(
grammar Sql;

batch        : sqlStatement* EOF ;
sqlStatement : ( selectStatement
               | insertStatement
               | updateStatement
               | deleteStatement
               | createStatement
               | alterStatement
               | dropStatement
               | declareStatement
               | setStatement
               | ifStatement
               | whileStatement
               | beginEndBlock
               | 'PRINT' expression
               | 'TRUNCATE' 'TABLE' qualifiedName
               ) ';'? ;

ifStatement    : 'IF' expression sqlStatement ('ELSE' sqlStatement)? ;
whileStatement : 'WHILE' expression sqlStatement ;
beginEndBlock  : 'BEGIN' sqlStatement* 'END' ;

selectStatement : 'SELECT' ('DISTINCT' | 'ALL')? ('TOP' INT_LIT)?
                  selectList
                  'FROM' tableSources
                  ('WHERE' expression)?
                  ('GROUP' 'BY' expressionList ('HAVING' expression)?)?
                  ('ORDER' 'BY' orderItem (',' orderItem)*)?
                ;
selectList   : '*' | selectItem (',' selectItem)* ;
selectItem   : expression ('AS'? ID)? ;
orderItem    : expression ('ASC' | 'DESC')? ;
tableSources : tableSource (',' tableSource)* ;
tableSource  : tablePrimary joinClause* ;
tablePrimary : qualifiedName ('AS'? ID)?
             | '(' selectStatement ')' 'AS'? ID
             ;
joinClause   : ('INNER'
               | 'LEFT' 'OUTER'?
               | 'RIGHT' 'OUTER'?
               | 'FULL' 'OUTER'?
               | 'CROSS'
               )? 'JOIN' tablePrimary 'ON' expression ;

insertStatement : 'INSERT' 'INTO' qualifiedName ('(' idList ')')?
                  ('VALUES' '(' expressionList ')' | selectStatement) ;
updateStatement : 'UPDATE' qualifiedName 'SET' setClause (',' setClause)*
                  ('WHERE' expression)? ;
setClause       : qualifiedName '=' expression ;
deleteStatement : 'DELETE' 'FROM' qualifiedName ('WHERE' expression)? ;

createStatement : 'CREATE' 'TABLE' qualifiedName
                  '(' columnDef (',' columnDef)* ')'
                | 'CREATE' 'UNIQUE'? 'CLUSTERED'? 'INDEX' ID
                  'ON' qualifiedName '(' idList ')'
                | 'CREATE' 'VIEW' qualifiedName 'AS' selectStatement
                | 'CREATE' 'PROCEDURE' qualifiedName
                  ('@' ID typeSpec (',' '@' ID typeSpec)*)? 'AS'
                  sqlStatement+
                ;
alterStatement  : 'ALTER' 'TABLE' qualifiedName
                  ( 'ADD' columnDef
                  | 'DROP' 'COLUMN' ID
                  | 'ALTER' 'COLUMN' columnDef
                  | 'ADD' 'CONSTRAINT' ID ('PRIMARY' 'KEY' | 'UNIQUE')
                    '(' idList ')'
                  )
                | 'ALTER' 'VIEW' qualifiedName 'AS' selectStatement
                ;
dropStatement   : 'DROP' ('TABLE' | 'INDEX' | 'VIEW' | 'PROCEDURE')
                  qualifiedName ;
declareStatement: 'DECLARE' '@' ID typeSpec ('=' expression)? ;
setStatement    : 'SET' '@' ID '=' expression ;

columnDef    : ID typeSpec columnOption* ;
columnOption : 'NOT' 'NULL' | 'NULL' | 'PRIMARY' 'KEY' | 'UNIQUE'
             | 'DEFAULT' literal ;
typeSpec     : ('INT' | 'BIGINT' | 'BIT' | 'FLOAT' | 'DATETIME' | 'TEXT'
               | 'VARCHAR' '(' INT_LIT ')'
               | 'DECIMAL' '(' INT_LIT ',' INT_LIT ')'
               ) ;
idList        : ID (',' ID)* ;
qualifiedName : ID ('.' ID)* ;

// Left-recursive boolean/arithmetic expressions; highest precedence first.
// The analyzer rewrites this into precedence loops automatically.
expression : expression ('*' | '/') expression
           | expression ('+' | '-') expression
           | expression ('=' | '<>' | '<' | '>' | '<=' | '>=') expression
           | 'NOT' expression
           | expression 'AND' expression
           | expression 'OR' expression
           | predicate
           ;
// Row-value comparison vs parenthesized scalar: both alternatives begin
// '(' expression, and telling them apart means scanning past an
// arbitrarily nested expression to the ',' — beyond any regular
// approximation, hence the hand syntactic predicate (backtracking).
predicate  : ('(' expression ',')=>
             '(' expressionList ')' '=' '(' expressionList ')'
           | operand ('BETWEEN' operand 'AND' operand
                     | 'IN' '(' expressionList ')'
                     | 'LIKE' STRING_LIT
                     | 'IS' 'NOT'? 'NULL'
                     )? ;
operand    : literal
           | '@' ID
           | qualifiedName ('(' expressionList? ')')?
           | 'EXISTS' '(' selectStatement ')'
           | 'CASE' ('WHEN' expression 'THEN' expression)+
             ('ELSE' expression)? 'END'
           | '(' selectStatement ')'
           | '(' expression ')'
           ;
literal    : INT_LIT | STRING_LIT | 'NULL' ;
expressionList : expression (',' expression)* ;

ID         : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT    : [0-9]+ ;
STRING_LIT : '\'' (~['\n])* '\'' ;
WS         : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '--' ~[\n]* -> skip ;
)GRAMMAR";

} // namespace bench
} // namespace llstar
