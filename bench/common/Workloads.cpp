//===- bench/common/Workloads.cpp - Synthetic benchmark inputs ------------===//
//
// Deterministic workload generators, one per benchmark grammar. These
// substitute for the paper's Figure 13 sample inputs (JDK sources,
// Microsoft sample code): same construct mix — nested declarations,
// statements, and expressions in realistic proportions — reproducible from
// a seed.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"

#include <random>

namespace llstar {
namespace bench {

namespace {

/// Tiny helper wrapping the RNG and an output buffer with indentation.
class Writer {
public:
  explicit Writer(unsigned Seed) : Rng(Seed) {}

  std::string Out;
  int Indent = 0;

  void line(const std::string &S) {
    for (int I = 0; I < Indent; ++I)
      Out += "  ";
    Out += S;
    Out += "\n";
  }
  /// Uniform integer in [0, N).
  int pick(int N) { return int(Rng() % unsigned(N)); }
  bool chance(int Percent) { return pick(100) < Percent; }
  std::string ident(const char *Prefix) {
    return std::string(Prefix) + std::to_string(pick(26));
  }
  std::string number() { return std::to_string(pick(1000)); }

private:
  std::mt19937 Rng;
};

} // namespace

//===----------------------------------------------------------------------===//
// Java / RatsJava / (shared shape with CSharp)
//===----------------------------------------------------------------------===//

namespace {

std::string javaExpr(Writer &W, int Depth);

/// The Java statement generator is shared with the CSharp workload; this
/// flag switches the few constructs whose spelling differs (foreach).
bool &csharpDialect() {
  static bool Flag = false;
  return Flag;
}

std::string javaPrimary(Writer &W, int Depth) {
  switch (W.pick(Depth > 2 ? 4 : 6)) {
  case 0:
    return W.number();
  case 1:
    return W.ident("v");
  case 2:
    return "\"s" + W.number() + "\"";
  case 3:
    return W.ident("f") + "(" + (W.chance(60) ? javaExpr(W, Depth + 1) : "") +
           ")";
  case 4:
    return "(" + javaExpr(W, Depth + 1) + ")";
  default:
    return "new " + W.ident("C") + "(" + javaExpr(W, Depth + 1) + ")";
  }
}

std::string javaExpr(Writer &W, int Depth) {
  std::string E = javaPrimary(W, Depth);
  static const char *Ops[] = {"+", "-", "*", "/", "==", "<", "&&", "||"};
  while (Depth < 3 && W.chance(35))
    E += std::string(" ") + Ops[W.pick(8)] + " " + javaPrimary(W, Depth + 1);
  if (W.chance(20))
    E += "." + W.ident("m") + "(" + (W.chance(50) ? W.ident("v") : "") + ")";
  return E;
}

const char *javaType(Writer &W) {
  static const char *Types[] = {"int",     "boolean", "long",
                                "double",  "String",  "Foo",
                                "Bar",     "java.util.List"};
  return Types[W.pick(8)];
}

void javaStatement(Writer &W, int Depth);

void javaBlock(Writer &W, int Depth, int MinStatements = 1) {
  W.line("{");
  ++W.Indent;
  int N = MinStatements + W.pick(4);
  for (int I = 0; I < N; ++I)
    javaStatement(W, Depth);
  --W.Indent;
  W.line("}");
}

void javaStatement(Writer &W, int Depth) {
  if (Depth > 3) {
    W.line(W.ident("v") + " = " + javaExpr(W, 2) + ";");
    return;
  }
  switch (W.pick(17)) {
  case 0:
    W.line(std::string(javaType(W)) + " " + W.ident("v") + " = " +
           javaExpr(W, 1) + ";");
    break;
  case 1:
    W.line("if (" + javaExpr(W, 1) + ")");
    javaBlock(W, Depth + 1);
    if (W.chance(40)) {
      W.line("else");
      javaBlock(W, Depth + 1);
    }
    break;
  case 2:
    W.line("while (" + W.ident("v") + " < " + W.number() + ")");
    javaBlock(W, Depth + 1);
    break;
  case 3:
    W.line("for (int i = 0; i < " + W.number() + "; i = i + 1)");
    javaBlock(W, Depth + 1);
    break;
  case 4:
    W.line("return " + javaExpr(W, 1) + ";");
    break;
  case 5:
    W.line(W.ident("f") + "(" + javaExpr(W, 2) + ");");
    break;
  case 6:
    W.line("this." + W.ident("m") + "(" + W.ident("v") + ");");
    break;
  case 7: {
    W.line("switch (" + W.ident("v") + ") {");
    ++W.Indent;
    int Cases = 1 + W.pick(3);
    for (int I = 0; I < Cases; ++I) {
      W.line("case " + W.number() + ":");
      ++W.Indent;
      W.line(W.ident("v") + " = " + javaExpr(W, 2) + ";");
      W.line("break;");
      --W.Indent;
    }
    W.line("default:");
    ++W.Indent;
    W.line("break;");
    --W.Indent;
    --W.Indent;
    W.line("}");
    break;
  }
  case 8:
    W.line("try");
    javaBlock(W, Depth + 1);
    W.line("catch (Exception e)");
    javaBlock(W, Depth + 1);
    if (W.chance(30)) {
      W.line("finally");
      javaBlock(W, Depth + 1);
    }
    break;
  case 9:
    W.line("do");
    javaBlock(W, Depth + 1);
    W.line("while (" + W.ident("v") + " > 0);");
    break;
  case 10:
    if (csharpDialect())
      W.line("foreach (" + std::string(javaType(W)) + " e in " +
             W.ident("items") + ")");
    else
      W.line("for (" + std::string(javaType(W)) + " e : " + W.ident("items") +
             ")");
    javaBlock(W, Depth + 1);
    break;
  case 11:
    W.line(W.ident("v") + " += (" + std::string(javaType(W)) + ") " +
           W.ident("raw") + ";");
    break;
  case 12:
    W.line("int[] arr" + W.number() + " = { " + W.number() + ", " +
           W.number() + " };");
    break;
  case 13:
    W.line(std::string("throw new ") +
           (csharpDialect() ? "InvalidOperationException" :
                              "IllegalStateException") +
           "(\"bad " + W.number() + "\");");
    break;
  case 14:
    W.line(W.ident("v") + "++;");
    break;
  default:
    W.line(W.ident("v") + " = " + javaExpr(W, 1) + ";");
    break;
  }
}

} // namespace

std::string generateJava(int Units, unsigned Seed) {
  Writer W(Seed);
  W.line("package com.example.generated;");
  W.line("import java.util.List;");
  W.line("import static java.lang.Math.*;");
  W.line("");
  for (int C = 0; C < Units; ++C) {
    // A sprinkling of interfaces and enums among the classes.
    if (C % 9 == 4) {
      W.line("public interface Iface" + std::to_string(C) + " {");
      ++W.Indent;
      W.line("int compute(int a);");
      W.line("void visit(" + std::string(javaType(W)) + " node);");
      W.line("int LIMIT = " + W.number() + ";");
      --W.Indent;
      W.line("}");
      continue;
    }
    if (C % 11 == 6) {
      W.line("enum Color" + std::to_string(C) + " { RED, GREEN, BLUE }");
      continue;
    }
    W.line("public class Class" + std::to_string(C) +
           (W.chance(30) ? " extends Base" : "") +
           (W.chance(20) ? " implements Iface4" : "") + " {");
    ++W.Indent;
    int Fields = 1 + W.pick(4);
    for (int F = 0; F < Fields; ++F)
      W.line(std::string("private ") + javaType(W) + " " + W.ident("fld") +
             (W.chance(50) ? " = " + javaExpr(W, 1) : "") + ";");
    if (W.chance(20)) {
      W.line("static");
      javaBlock(W, 1, 1);
    }
    int Methods = 1 + W.pick(4);
    for (int M = 0; M < Methods; ++M) {
      W.line(std::string("public ") + (W.chance(30) ? "void" : javaType(W)) +
             " method" + std::to_string(M) + "(" +
             (W.chance(70) ? std::string(javaType(W)) + " a" : "") + ")" +
             (W.chance(20) ? " throws Exception" : ""));
      javaBlock(W, 0, 2);
    }
    if (W.chance(50)) {
      W.line("Class" + std::to_string(C) + "(int x)");
      javaBlock(W, 0, 1);
    }
    --W.Indent;
    W.line("}");
  }
  return W.Out;
}

//===----------------------------------------------------------------------===//
// C (RatsC)
//===----------------------------------------------------------------------===//

namespace {

std::string cExpr(Writer &W, int Depth);

std::string cPrimary(Writer &W, int Depth) {
  switch (W.pick(Depth > 2 ? 3 : 5)) {
  case 0:
    return W.number();
  case 1:
    return W.ident("v");
  case 2:
    return "\"s" + W.number() + "\"";
  case 3:
    return W.ident("f") + "(" + (W.chance(60) ? cExpr(W, Depth + 1) : "") +
           ")";
  default:
    return "(" + cExpr(W, Depth + 1) + ")";
  }
}

std::string cExpr(Writer &W, int Depth) {
  std::string E = cPrimary(W, Depth);
  static const char *Ops[] = {"+", "-", "*", "/", "==", "<", "&&", "|"};
  while (Depth < 3 && W.chance(35))
    E += std::string(" ") + Ops[W.pick(8)] + " " + cPrimary(W, Depth + 1);
  if (W.chance(15))
    E = "p->" + W.ident("fld") + " + " + E;
  return E;
}

/// Type specifier; type names use the T prefix recognized by the
/// benchmark's isTypeName predicate binding.
std::string cType(Writer &W) {
  static const char *Types[] = {"int",           "unsigned int", "char",
                                "long",          "double",       "Tsize",
                                "Tnode",         "struct point"};
  return Types[W.pick(8)];
}

void cStatement(Writer &W, int Depth);

void cBlock(Writer &W, int Depth, int MinStatements = 1) {
  W.line("{");
  ++W.Indent;
  int N = MinStatements + W.pick(5);
  for (int I = 0; I < N; ++I)
    cStatement(W, Depth);
  --W.Indent;
  W.line("}");
}

void cStatement(Writer &W, int Depth) {
  if (Depth > 3) {
    W.line(W.ident("v") + " = " + cExpr(W, 2) + ";");
    return;
  }
  switch (W.pick(12)) {
  case 0:
    W.line(cType(W) + " " + W.ident("v") + " = " + cExpr(W, 1) + ";");
    break;
  case 9: {
    W.line("switch (" + W.ident("v") + ") {");
    ++W.Indent;
    W.line("case " + W.number() + ":");
    ++W.Indent;
    W.line(W.ident("v") + " = " + cExpr(W, 2) + ";");
    W.line("break;");
    --W.Indent;
    W.line("default:");
    ++W.Indent;
    W.line("break;");
    --W.Indent;
    --W.Indent;
    W.line("}");
    break;
  }
  case 10:
    W.line("do");
    cBlock(W, Depth + 1);
    W.line("while (" + W.ident("v") + " > 0);");
    break;
  case 11:
    W.line(W.ident("v") + " += (int) " + W.ident("raw") + "++;");
    break;
  case 1:
    W.line("if (" + cExpr(W, 1) + ")");
    cBlock(W, Depth + 1);
    break;
  case 2:
    W.line("while (" + W.ident("v") + " < " + W.number() + ")");
    cBlock(W, Depth + 1);
    break;
  case 3:
    W.line("for (i = 0; i < " + W.number() + "; i += 1)");
    cBlock(W, Depth + 1);
    break;
  case 4:
    W.line("return " + cExpr(W, 1) + ";");
    break;
  case 5:
    W.line(W.ident("f") + "(" + cExpr(W, 2) + ");");
    break;
  case 6:
    W.line("*" + W.ident("p") + " = " + cExpr(W, 1) + ";");
    break;
  default:
    W.line(W.ident("v") + " = " + cExpr(W, 1) + ";");
    break;
  }
}

} // namespace

std::string generateC(int Units, unsigned Seed) {
  Writer W(Seed);
  W.line("typedef unsigned int Tsize;");
  W.line("struct point { int x; int y; };");
  W.line("enum color { RED, GREEN = 3, BLUE };");
  W.line("static int counter;");
  W.line("");
  for (int F = 0; F < Units; ++F) {
    // Mix prototypes (declarations) with definitions: the decision the
    // paper highlights for RatsC.
    if (W.chance(25)) {
      W.line("int proto" + std::to_string(F) + "(int a, char b);");
      continue;
    }
    W.line((W.chance(30) ? std::string("static ") : std::string()) +
           cType(W) + " func" + std::to_string(F) + "(int a, Tsize n)");
    cBlock(W, 0, 2);
  }
  return W.Out;
}

//===----------------------------------------------------------------------===//
// Basic
//===----------------------------------------------------------------------===//

namespace {

std::string basicExpr(Writer &W, int Depth) {
  std::string E;
  switch (W.pick(Depth > 2 ? 3 : 4)) {
  case 0:
    E = W.number();
    break;
  case 1:
    E = W.ident("V");
    break;
  case 2:
    E = "\"s" + W.number() + "\"";
    break;
  default:
    E = "(" + basicExpr(W, Depth + 1) + ")";
    break;
  }
  // At most one comparison operator per chain: Basic's comparison rule is
  // non-associative (a < b >= c is a syntax error, as in VB).
  static const char *Arith[] = {"+", "-", "*", "&"};
  while (Depth < 3 && W.chance(30))
    E += std::string(" ") + Arith[W.pick(4)] + " " +
         (W.chance(50) ? W.ident("V") : W.number());
  if (W.chance(25))
    E += std::string(" ") + (W.chance(50) ? "<" : ">=") + " " + W.number();
  if (Depth < 2 && W.chance(20))
    E += std::string(" ") + (W.chance(50) ? "AND" : "OR") + " " +
         W.ident("V");
  return E;
}

void basicStatement(Writer &W, int Depth) {
  if (Depth > 3) {
    W.line(W.ident("V") + " = " + basicExpr(W, 2));
    return;
  }
  switch (W.pick(12)) {
  case 0:
    W.line("DIM " + W.ident("V") + " AS INTEGER = " + basicExpr(W, 1));
    break;
  case 8:
    W.line(W.ident("Obj") + "." + W.ident("Fld") + " = " + basicExpr(W, 1));
    break;
  case 9:
    W.line(W.ident("Obj") + "." + W.ident("M") + "(" + basicExpr(W, 1) +
           ")");
    break;
  case 10:
    W.line("WITH " + W.ident("Obj") + "." + W.ident("Sub"));
    ++W.Indent;
    W.line(W.ident("V") + " = " + basicExpr(W, 2));
    --W.Indent;
    W.line("END WITH");
    break;
  case 11:
    W.line("FOR EACH E IN " + W.ident("Col"));
    ++W.Indent;
    W.line("PRINT E");
    --W.Indent;
    W.line("NEXT");
    break;
  case 1: {
    W.line("IF " + basicExpr(W, 1) + " THEN");
    ++W.Indent;
    basicStatement(W, Depth + 1);
    --W.Indent;
    if (W.chance(40)) {
      W.line("ELSE");
      ++W.Indent;
      basicStatement(W, Depth + 1);
      --W.Indent;
    }
    W.line("END IF");
    break;
  }
  case 2:
    W.line("FOR I = 1 TO " + W.number());
    ++W.Indent;
    basicStatement(W, Depth + 1);
    --W.Indent;
    W.line("NEXT");
    break;
  case 3:
    W.line("WHILE " + W.ident("V") + " < " + W.number());
    ++W.Indent;
    basicStatement(W, Depth + 1);
    --W.Indent;
    W.line("WEND");
    break;
  case 4:
    W.line("PRINT " + basicExpr(W, 1) + ", " + basicExpr(W, 2));
    break;
  case 5:
    W.line("CALL Proc" + std::to_string(W.pick(10)) + "(" +
           basicExpr(W, 1) + ")");
    break;
  default:
    W.line(W.ident("V") + " = " + basicExpr(W, 1));
    break;
  }
}

} // namespace

std::string generateBasic(int Units, unsigned Seed) {
  Writer W(Seed);
  for (int S = 0; S < Units; ++S) {
    if (S % 7 == 3) {
      W.line("SUB Proc" + std::to_string(S) + "(BYVAL X AS INTEGER)");
      ++W.Indent;
      basicStatement(W, 1);
      basicStatement(W, 1);
      W.line("RETURN X + 1");
      --W.Indent;
      W.line("END SUB");
    } else if (S % 11 == 5) {
      W.line("FUNCTION Fn" + std::to_string(S) +
             "(BYREF Y AS DOUBLE) AS DOUBLE");
      ++W.Indent;
      basicStatement(W, 1);
      W.line("RETURN Y * 2");
      --W.Indent;
      W.line("END FUNCTION");
    } else {
      basicStatement(W, 0);
    }
  }
  return W.Out;
}

//===----------------------------------------------------------------------===//
// Sql
//===----------------------------------------------------------------------===//

namespace {

std::string sqlCondition(Writer &W, int Depth) {
  std::string E = W.ident("col") + " " +
                  std::string(W.chance(50) ? "=" : ">") + " " + W.number();
  if (Depth < 2 && W.chance(10)) // row-value comparison (backtracks)
    E = "(" + W.ident("col") + ", " + W.ident("col") + ") = (" +
        W.number() + ", " + W.number() + ")";
  if (Depth < 2 && W.chance(40))
    E += std::string(W.chance(50) ? " AND " : " OR ") +
         sqlCondition(W, Depth + 1);
  if (W.chance(15))
    E += " AND name" + std::to_string(W.pick(5)) + " IS NOT NULL";
  if (Depth < 1 && W.chance(8))
    E += " AND EXISTS (SELECT id FROM tbl" + std::to_string(W.pick(9)) +
         " WHERE flag = 1)";
  return E;
}

std::string sqlSelect(Writer &W, int Depth) {
  std::string S = "SELECT ";
  if (W.chance(20))
    S += "DISTINCT ";
  if (W.chance(15))
    S += "TOP " + W.number() + " ";
  if (W.chance(20)) {
    S += "*";
  } else {
    S += W.ident("col");
    int Extra = W.pick(3);
    for (int I = 0; I < Extra; ++I)
      S += ", " + W.ident("col") + (W.chance(30) ? " AS alias" : "");
  }
  S += " FROM tbl" + std::to_string(W.pick(9));
  if (W.chance(35)) {
    static const char *Joins[] = {"INNER JOIN", "LEFT JOIN",
                                  "LEFT OUTER JOIN", "RIGHT OUTER JOIN",
                                  "JOIN"};
    S += std::string(" ") + Joins[W.pick(5)] + " tbl" +
         std::to_string(W.pick(9)) + " ON " + W.ident("col") + " = " +
         W.ident("col");
  }
  if (W.chance(60))
    S += " WHERE " + sqlCondition(W, Depth);
  if (W.chance(20))
    S += " GROUP BY " + W.ident("col");
  if (W.chance(25))
    S += " ORDER BY " + W.ident("col") + (W.chance(50) ? " DESC" : "");
  return S;
}

} // namespace

std::string generateSql(int Units, unsigned Seed) {
  Writer W(Seed);
  W.line("CREATE TABLE tbl0 (id INT NOT NULL PRIMARY KEY, name VARCHAR(64), "
         "amount DECIMAL(10, 2) DEFAULT 0);");
  W.line("CREATE UNIQUE INDEX idx0 ON tbl0 (id, name);");
  W.line("DECLARE @total INT = 0;");
  for (int S = 0; S < Units; ++S) {
    switch (W.pick(12)) {
    case 8:
      W.line("ALTER TABLE tbl" + std::to_string(W.pick(9)) +
             " ADD extra" + W.number() + " INT NULL;");
      break;
    case 9:
      W.line("IF @total > " + W.number() + " BEGIN SET @total = 0; " +
             sqlSelect(W, 1) + "; END");
      break;
    case 10:
      W.line("WHILE @total < " + W.number() + " SET @total = @total + 1;");
      break;
    case 11:
      W.line("PRINT @total;");
      break;
    case 0:
    case 1:
    case 2:
    case 3:
      W.line(sqlSelect(W, 0) + ";");
      break;
    case 4:
      W.line("INSERT INTO tbl" + std::to_string(W.pick(9)) +
             " (a, b) VALUES (" + W.number() + ", 'x" + W.number() + "');");
      break;
    case 5:
      W.line("UPDATE tbl" + std::to_string(W.pick(9)) + " SET " +
             W.ident("col") + " = " + W.number() + " WHERE " +
             sqlCondition(W, 1) + ";");
      break;
    case 6:
      W.line("DELETE FROM tbl" + std::to_string(W.pick(9)) + " WHERE " +
             sqlCondition(W, 1) + ";");
      break;
    default:
      W.line("SET @total = @total + " + W.number() + ";");
      break;
    }
  }
  return W.Out;
}

//===----------------------------------------------------------------------===//
// CSharp
//===----------------------------------------------------------------------===//

std::string generateCSharp(int Units, unsigned Seed) {
  Writer W(Seed);
  csharpDialect() = true;
  W.line("using System;");
  W.line("using System.Collections.Generic;");
  W.line("");
  W.line("namespace Generated.Sample {");
  ++W.Indent;
  for (int C = 0; C < Units; ++C) {
    W.line("public class Class" + std::to_string(C) + " {");
    ++W.Indent;
    int Fields = 1 + W.pick(3);
    for (int F = 0; F < Fields; ++F)
      W.line(std::string("private ") + javaType(W) + " " + W.ident("fld") +
             " = " + W.number() + ";");
    // Properties: the CSharp-specific member kind.
    int Props = 1 + W.pick(2);
    for (int P = 0; P < Props; ++P) {
      W.line("public int Prop" + std::to_string(P) + " {");
      ++W.Indent;
      W.line("get { return " + W.ident("fld") + "; }");
      W.line("set { " + W.ident("fld") + " = " + W.number() + "; }");
      --W.Indent;
      W.line("}");
    }
    int Methods = 1 + W.pick(3);
    for (int M = 0; M < Methods; ++M) {
      W.line("public " + std::string(W.chance(40) ? "void" : "int") +
             " Method" + std::to_string(M) + "(int a)");
      javaBlock(W, 0, 2);
    }
    --W.Indent;
    W.line("}");
  }
  --W.Indent;
  W.line("}");
  csharpDialect() = false;
  return W.Out;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

extern const char *JavaGrammarText;
extern const char *RatsJavaGrammarText;
extern const char *RatsCGrammarText;
extern const char *BasicGrammarText;
extern const char *SqlGrammarText;
extern const char *CSharpGrammarText;

const std::vector<BenchGrammar> &benchGrammars() {
  static const std::vector<BenchGrammar> Grammars = {
      {"Java", "Java1.5", JavaGrammarText, generateJava, "compilationUnit"},
      {"RatsC", "RatsC", RatsCGrammarText, generateC, "translationUnit"},
      {"RatsJava", "RatsJava", RatsJavaGrammarText, generateJava,
       "compilationUnit"},
      {"Basic", "VB.NET", BasicGrammarText, generateBasic, "program"},
      {"Sql", "TSQL", SqlGrammarText, generateSql, "batch"},
      {"CSharp", "C#", CSharpGrammarText, generateCSharp, "compilationUnit"},
  };
  return Grammars;
}

const BenchGrammar &benchGrammar(const std::string &Name) {
  for (const BenchGrammar &G : benchGrammars())
    if (Name == G.Name)
      return G;
  std::abort();
}

} // namespace bench
} // namespace llstar
