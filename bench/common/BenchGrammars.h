//===- bench/common/BenchGrammars.h - Benchmark grammar suite ---*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six-grammar benchmark suite standing in for the paper's Figure 12
/// grammars (Java1.5, RatsC, RatsJava, VB.NET, TSQL, C#). Each grammar is
/// written in this toolkit's meta-language and recreates the construct mix
/// that gives the paper's Table 1/2 decision-class distributions:
///
///  - Java:    hand-tuned grammar with explicit syntactic predicates and
///             cyclic member-declaration decisions (paper: Java1.5);
///  - RatsC:   C subset in PEG mode (backtrack=true) with the
///             declaration-vs-definition ambiguity (paper: RatsC);
///  - RatsJava:the Java grammar converted to PEG mode (paper: RatsJava);
///  - Basic:   keyword-led, line-oriented language, almost all LL(1)
///             (paper: VB.NET);
///  - Sql:     SELECT/DML/DDL with deep fixed-k keyword decisions and
///             left-recursive expressions (paper: TSQL);
///  - CSharp:  Java-like plus properties/namespaces, a few predicates
///             (paper: C#).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_BENCH_BENCHGRAMMARS_H
#define LLSTAR_BENCH_BENCHGRAMMARS_H

#include <string>
#include <vector>

namespace llstar {
namespace bench {

/// One benchmark grammar plus its workload generator hook.
struct BenchGrammar {
  const char *Name;      ///< paper-analog name
  const char *PaperName; ///< the grammar it stands in for
  const char *Text;      ///< meta-language source
  /// Generates a deterministic synthetic input of roughly \p Units
  /// top-level declarations/statements.
  std::string (*Workload)(int Units, unsigned Seed);
  const char *StartRule;
};

/// All six grammars, in the paper's Table 1 order.
const std::vector<BenchGrammar> &benchGrammars();

/// Lookup by name; aborts if unknown.
const BenchGrammar &benchGrammar(const std::string &Name);

// Individual workload generators (also used by the examples/tests).
std::string generateJava(int Units, unsigned Seed);
std::string generateC(int Units, unsigned Seed);
std::string generateBasic(int Units, unsigned Seed);
std::string generateSql(int Units, unsigned Seed);
std::string generateCSharp(int Units, unsigned Seed);

} // namespace bench
} // namespace llstar

#endif // LLSTAR_BENCH_BENCHGRAMMARS_H
