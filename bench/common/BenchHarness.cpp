#include "BenchHarness.h"

#include <cstdio>
#include <cstdlib>

using namespace llstar;
using namespace llstar::bench;

int64_t llstar::bench::countLines(const std::string &Text) {
  int64_t N = 0;
  for (char C : Text)
    N += C == '\n';
  return N;
}

PreparedGrammar PreparedGrammar::prepare(const BenchGrammar &Spec) {
  PreparedGrammar P;
  P.Spec = &Spec;
  P.GrammarLines = countLines(Spec.Text);

  DiagnosticEngine Diags;
  P.AG = analyzeGrammarText(Spec.Text, Diags);
  if (!P.AG) {
    std::fprintf(stderr, "grammar %s failed to analyze:\n%s\n", Spec.Name,
                 Diags.str().c_str());
    std::abort();
  }

  DiagnosticEngine LexDiags;
  P.Lex = std::make_unique<Lexer>(P.AG->grammar().lexerSpec(), LexDiags);
  if (LexDiags.hasErrors()) {
    std::fprintf(stderr, "grammar %s lexer failed:\n%s\n", Spec.Name,
                 LexDiags.str().c_str());
    std::abort();
  }

  // The C grammar's single semantic predicate (paper Section 4.2): a
  // symbol-table lookup, simulated here by the workload's naming
  // convention — type names start with 'T' or are known typedefs.
  P.Env.definePredicate("isTypeName", [&P] {
    if (!P.CurrentStream)
      return false;
    const Token &T = P.CurrentStream->LT(1);
    return !T.Text.empty() && T.Text[0] == 'T';
  });
  return P;
}

TokenStream PreparedGrammar::tokenize(const std::string &Input) {
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = Lex->tokenize(Input, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "grammar %s: workload failed to lex:\n%s\n",
                 Spec->Name, Diags.str().c_str());
    std::abort();
  }
  return TokenStream(std::move(Tokens));
}

bool PreparedGrammar::runParse(TokenStream &Stream, LLStarParser &P) {
  CurrentStream = &Stream;
  P.parse(Spec->StartRule);
  CurrentStream = nullptr;
  return P.ok();
}
