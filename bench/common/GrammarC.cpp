//===- bench/common/GrammarC.cpp - C benchmark grammar (PEG mode) ---------===//
//
// A C subset in PEG mode (paper analog: RatsC). Function definitions come
// before declarations in externalDecl, so — exactly as the paper observes
// of the RatsC grammar — distinguishing `int f();` from `int f() {...}`
// speculates across the entire function body. The single semantic
// predicate {isTypeName}? mirrors the one predicate in the ANTLR C grammar
// (paper Section 4.2).
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"

namespace llstar {
namespace bench {

const char *RatsCGrammarText = R"GRAMMAR(
grammar RatsC;
options { backtrack=true; memoize=true; }

translationUnit : externalDecl* EOF ;
externalDecl    : functionDef | declaration ;
functionDef     : declSpecifier+ declarator compoundStatement ;
declaration     : declSpecifier+ initDeclarator (',' initDeclarator)* ';'
                | declSpecifier+ ';'
                ;

declSpecifier   : 'typedef' | 'extern' | 'static' | 'const' | 'volatile'
                | 'inline' | 'register'
                | 'unsigned' | 'signed' | 'void' | 'char' | 'short' | 'int'
                | 'long' | 'float' | 'double'
                | structSpecifier
                | enumSpecifier
                | {isTypeName}? ID
                ;
enumSpecifier   : 'enum' ID ('{' enumerator (',' enumerator)* '}')?
                | 'enum' '{' enumerator (',' enumerator)* '}'
                ;
enumerator      : ID ('=' conditionalExpression)? ;
structSpecifier : ('struct' | 'union') ID ('{' structDeclaration+ '}')?
                | ('struct' | 'union') '{' structDeclaration+ '}'
                ;
structDeclaration : declSpecifier+ declarator (',' declarator)* ';' ;

declarator        : '*' 'const'? declarator | directDeclarator ;
directDeclarator  : (ID | '(' declarator ')') declaratorSuffix* ;
declaratorSuffix  : '[' conditionalExpression? ']'
                  | '(' paramList? ')'
                  ;
paramList         : paramDecl (',' paramDecl)* ;
paramDecl         : declSpecifier+ declarator ;
initDeclarator    : declarator ('=' initializer)? ;
initializer       : assignmentExpression
                  | '{' initializer (',' initializer)* '}'
                  ;

compoundStatement : '{' blockItem* '}' ;
blockItem         : declaration | statement ;
statement         : compoundStatement
                  | 'if' '(' expression ')' statement ('else' statement)?
                  | 'while' '(' expression ')' statement
                  | 'do' statement 'while' '(' expression ')' ';'
                  | 'for' '(' expression? ';' expression? ';' expression? ')'
                    statement
                  | 'switch' '(' expression ')' '{' switchGroup* '}'
                  | 'goto' ID ';'
                  | 'return' expression? ';'
                  | 'break' ';'
                  | 'continue' ';'
                  | ';'
                  | expression ';'
                  ;
switchGroup       : switchLabel+ blockItem* ;
switchLabel       : 'case' conditionalExpression ':' | 'default' ':' ;

expression            : assignmentExpression (',' assignmentExpression)* ;
assignmentExpression  : unaryExpression assignOp assignmentExpression
                      | conditionalExpression
                      ;
assignOp              : '=' | '+=' | '-=' | '*=' | '/=' ;
conditionalExpression : logicalOr ('?' expression ':' conditionalExpression)? ;
logicalOr             : logicalAnd ('||' logicalAnd)* ;
logicalAnd            : bitOr ('&&' bitOr)* ;
bitOr                 : bitAnd ('|' bitAnd)* ;
bitAnd                : equality ('&' equality)* ;
equality              : relational (('==' | '!=') relational)* ;
relational            : additive (('<' | '>' | '<=' | '>=') additive)* ;
additive              : multiplicative (('+' | '-') multiplicative)* ;
multiplicative        : castExpression (('*' | '/' | '%') castExpression)* ;
castExpression        : '(' typeNameDecl ')' castExpression
                      | unaryExpression
                      ;
typeNameDecl          : declSpecifier+ '*'* ;
unaryExpression       : ('+' | '-' | '!' | '~' | '*' | '&') castExpression
                      | ('++' | '--') unaryExpression
                      | 'sizeof' unaryExpression
                      | postfixExpression
                      ;
postfixExpression     : primaryExpression postfixSuffix* ('++' | '--')? ;
postfixSuffix         : '[' expression ']'
                      | '(' argumentList? ')'
                      | '.' ID
                      | '->' ID
                      ;
argumentList          : assignmentExpression (',' assignmentExpression)* ;
primaryExpression     : ID | INT_LIT | STRING_LIT | '(' expression ')' ;

ID         : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT    : [0-9]+ ;
STRING_LIT : '"' (~["\\\n] | '\\' .)* '"' ;
WS         : [ \t\r\n]+ -> skip ;
LINE_COMMENT  : '//' ~[\n]* -> skip ;
BLOCK_COMMENT : '/*' ~[*]* '*'+ (~[*/] ~[*]* '*'+)* '/' -> skip ;
)GRAMMAR";

} // namespace bench
} // namespace llstar
