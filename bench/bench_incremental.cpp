//===- bench/bench_incremental.cpp - Edit-loop reparse throughput ---------===//
//
// Measures the incremental subsystem (src/incremental/) on its target
// workload: a long-lived session absorbing a stream of small edits, the
// way an editor integration would drive it. For the two largest synthetic
// corpus inputs (json and lua, the same generators bench_compiled sizes
// by --units) it replays an identical sequence of single-byte edits
// through two sessions that differ only in SessionOptions::Reuse:
//
//   full — Reuse off: every edit re-lexes and re-parses the whole text
//          (the from-scratch cost an editor would pay without this
//          subsystem);
//   inc  — Reuse on: the damaged window is re-lexed, disjoint subtrees
//          are spliced, and only the seam is re-predicted.
//
// Edits are digit-for-digit replacements, so the text stays valid and
// both sessions do identical semantic work; every edit is <= 16 bytes
// (they are 1 byte). Per-edit wall time comes from EditOutcome::Millis
// (relex + reparse only), best-of --repeat over the whole edit sequence.
// The reuse counters in the report prove the incremental side actually
// spliced (nodesReused) instead of winning by measurement error.
//
//   bench_incremental [--units N] [--edits N] [--repeat N] [--json FILE]
//
// BENCH_incremental.json at the repo root is a committed baseline.
//
//===----------------------------------------------------------------------===//

#include "incremental/IncrementalSession.h"
#include "service/GrammarBundleCache.h"

#include "CompiledManifest.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;
using namespace llstar::incremental;

namespace {

// The two largest bench workloads, same shapes as bench_compiled's.
std::string jsonWorkload(int Units) {
  std::string Out = "{\"items\": [";
  for (int I = 0; I < Units; ++I) {
    if (I)
      Out += ", ";
    Out += "{\"id\": " + std::to_string(I) +
           ", \"name\": \"item" + std::to_string(I) +
           "\", \"score\": " + std::to_string(I % 10) + "." +
           std::to_string(I % 100) +
           ", \"tags\": [\"a\", \"b\"], \"ok\": " +
           (I % 2 ? "true" : "false") + ", \"extra\": null}";
  }
  Out += "], \"total\": " + std::to_string(Units) + "}";
  return Out;
}

std::string luaWorkload(int Units) {
  std::string Out;
  for (int I = 0; I < Units; ++I) {
    std::string N = std::to_string(I);
    Out += "local acc" + N + " = obj.field[" + N + "].next\n";
    Out += "acc" + N + ".slot, t = 1 + 2 * " + N + " ^ 2, \"s\" .. \"t\"\n";
    Out += "obj:method(acc" + N + ", { k = " + N + ", [2] = false })\n";
    Out += "if acc" + N + " ~= nil and " + N +
           " < 10 then\n  print(acc" + N + ")\nelse\n  call(" + N +
           ")\nend\n";
    Out += "for i = 1, " + N + ", 2 do work(i) end\n";
  }
  Out += "return acc0\n";
  return Out;
}

struct Workload {
  const char *File; ///< grammars/<File>.g
  std::string (*Generate)(int Units);
};

const Workload Workloads[] = {
    {"json", jsonWorkload},
    {"lua", luaWorkload},
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Single-byte digit replacements spread across the input: edit K rotates
/// the K-th sampled digit position to a different digit, so the text stays
/// valid for every grammar that accepts the original.
std::vector<Edit> makeEdits(const std::string &Text, int Count) {
  std::vector<size_t> Digits;
  for (size_t I = 0; I < Text.size(); ++I)
    if (std::isdigit(uint8_t(Text[I])))
      Digits.push_back(I);
  std::vector<Edit> Edits;
  if (Digits.empty())
    return Edits;
  size_t Stride = Digits.size() / size_t(Count) + 1;
  for (int K = 0; K < Count; ++K) {
    size_t At = Digits[(size_t(K) * Stride + 7) % Digits.size()];
    char Old = Text[At];
    // Replacements stay in 1-9: a 0 at a number's first digit would split
    // the token under grammars that forbid leading zeros (json).
    char New = char('1' + (Old - '0' + K) % 9);
    Edits.push_back({int64_t(At), 1, std::string(1, New)});
  }
  return Edits;
}

struct EngineReport {
  const char *Engine = "";
  double FullMsPerEdit = 0, IncMsPerEdit = 0, Speedup = 0;
  long long NodesReused = 0, TokensRelexed = 0, DecisionsReparsed = 0;
};

struct WorkloadReport {
  std::string Name;
  long long Bytes = 0, Tokens = 0;
  std::vector<EngineReport> Engines;
};

/// Total EditOutcome::Millis of replaying \p Edits once, best of \p Repeat
/// full replays. Each replay starts from a fresh reset so every repetition
/// does identical work. Counters are captured from the last replay.
double replay(std::shared_ptr<const GrammarBundle> Bundle,
              const std::string &Base, const std::vector<Edit> &Edits,
              const SessionOptions &SO, int Repeat, EngineReport *Counters) {
  double Best = 1e18;
  for (int Rep = 0; Rep < Repeat; ++Rep) {
    IncrementalSession S(Bundle, SO);
    EditOutcome R = S.reset(Base);
    if (R.Error != EditScriptError::None || !R.ParseOk) {
      std::fprintf(stderr, "error: workload does not parse:\n%s",
                   S.diags().str().c_str());
      std::exit(1);
    }
    double Total = 0;
    long long Reused = 0, Relexed = 0, Decisions = 0;
    for (const Edit &E : Edits) {
      EditOutcome O = S.applyEdit(E);
      if (O.Error != EditScriptError::None || !O.ParseOk) {
        std::fprintf(stderr, "error: edit at %lld broke the workload:\n%s",
                     (long long)E.Offset, S.diags().str().c_str());
        std::exit(1);
      }
      Total += O.Millis;
      Reused += O.NodesReused;
      Relexed += O.TokensRelexed;
      Decisions += O.DecisionsReparsed;
    }
    if (Total < Best) {
      Best = Total;
      if (Counters) {
        Counters->NodesReused = Reused;
        Counters->TokensRelexed = Relexed;
        Counters->DecisionsReparsed = Decisions;
      }
    }
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  int Units = 400, NumEdits = 32, Repeat = 5;
  bool UseArena = false;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--units") && I + 1 < Argc)
      Units = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--edits") && I + 1 < Argc)
      NumEdits = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--repeat") && I + 1 < Argc)
      Repeat = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--arena"))
      UseArena = true;
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_incremental [--units N] [--edits N] "
                   "[--repeat N] [--arena] [--json FILE]\n");
      return 2;
    }
  }

  compiled::registerShippedGrammars();
  std::printf("incremental reparse vs full reparse: %d units, %d one-byte "
              "edits, best of %d\n\n",
              Units, NumEdits, Repeat);
  std::printf("%-6s %-9s %9s %8s %12s %12s %8s %10s %9s\n", "input",
              "engine", "bytes", "tokens", "full ms/ed", "inc ms/ed",
              "speedup", "reused", "relexed");

  std::vector<WorkloadReport> Reports;
  for (const Workload &W : Workloads) {
    DiagnosticEngine Diags;
    auto Bundle = makeGrammarBundle(
        readFile(std::string(LLSTAR_SOURCE_DIR) + "/grammars/" + W.File +
                 ".g"),
        Diags);
    if (!Bundle) {
      std::fprintf(stderr, "grammar %s failed to build:\n%s", W.File,
                   Diags.str().c_str());
      return 1;
    }
    std::string Base = W.Generate(Units);
    std::vector<Edit> Edits = makeEdits(Base, NumEdits);

    WorkloadReport R;
    R.Name = W.File;
    R.Bytes = (long long)Base.size();
    {
      ScratchResult SR = scratchParse(*Bundle, Base, SessionOptions());
      R.Tokens = (long long)SR.Tokens.size();
    }
    for (bool Compiled : {false, true}) {
      EngineReport E;
      E.Engine = Compiled ? "compiled" : "interp";
      SessionOptions Full;
      Full.UseCompiled = Compiled;
      Full.UseArena = UseArena;
      Full.Reuse = false;
      SessionOptions Inc = Full;
      Inc.Reuse = true;
      double FullMs = replay(Bundle, Base, Edits, Full, Repeat, nullptr);
      double IncMs = replay(Bundle, Base, Edits, Inc, Repeat, &E);
      E.FullMsPerEdit = FullMs / NumEdits;
      E.IncMsPerEdit = IncMs / NumEdits;
      E.Speedup = FullMs / IncMs;
      std::printf("%-6s %-9s %9lld %8lld %12.4f %12.4f %7.2fx %10lld %9lld\n",
                  W.File, E.Engine, R.Bytes, R.Tokens, E.FullMsPerEdit,
                  E.IncMsPerEdit, E.Speedup, E.NodesReused, E.TokensRelexed);
      R.Engines.push_back(E);
    }
    Reports.push_back(std::move(R));
  }

  if (!JsonPath.empty()) {
    std::string Out = "{\n  \"units\": " + std::to_string(Units) +
                      ",\n  \"edits\": " + std::to_string(NumEdits) +
                      ",\n  \"repeat\": " + std::to_string(Repeat) +
                      ",\n  \"workloads\": [\n";
    char Buf[512];
    for (size_t G = 0; G < Reports.size(); ++G) {
      const WorkloadReport &R = Reports[G];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"name\": \"%s\", \"bytes\": %lld, "
                    "\"tokens\": %lld, \"engines\": [\n",
                    R.Name.c_str(), R.Bytes, R.Tokens);
      Out += Buf;
      for (size_t K = 0; K < R.Engines.size(); ++K) {
        const EngineReport &E = R.Engines[K];
        std::snprintf(
            Buf, sizeof(Buf),
            "     {\"engine\": \"%s\", \"fullMsPerEdit\": %.4f, "
            "\"incMsPerEdit\": %.4f, \"speedup\": %.2f, "
            "\"nodesReused\": %lld, \"tokensRelexed\": %lld, "
            "\"decisionsReparsed\": %lld}%s\n",
            E.Engine, E.FullMsPerEdit, E.IncMsPerEdit, E.Speedup,
            E.NodesReused, E.TokensRelexed, E.DecisionsReparsed,
            K + 1 < R.Engines.size() ? "," : "");
        Out += Buf;
      }
      Out += G + 1 < Reports.size() ? "    ]},\n" : "    ]}\n";
    }
    Out += "  ]\n}\n";
    std::ofstream F(JsonPath);
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    F << Out;
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
