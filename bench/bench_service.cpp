//===- bench/bench_service.cpp - Batch parsing service throughput ---------===//
//
// Benchmarks the src/service/ subsystem rather than a paper table:
//
//   1. throughput scaling — the same workload pushed through ParseService
//      with 1, 2, 4, and 8 workers (tokens/s and speedup over 1 thread);
//   2. arena vs heap parse trees — single-threaded LLStarParser over the
//      identical inputs, tree building on, with and without an Arena.
//
// Workloads are the Basic and Sql benchmark grammars (predicate-free, so
// the service needs no SemanticEnv). `--json FILE` records the results;
// BENCH_service.json at the repo root is a committed baseline. Speedup is
// bounded by the machine: on a single-core container every thread count
// measures ~1x.
//
//   bench_service [--units N] [--inputs N] [--repeat N] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "common/BenchGrammars.h"

#include "runtime/Arena.h"
#include "runtime/LLStarParser.h"
#include "service/ParseService.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace llstar;
using namespace llstar::bench;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScalingRow {
  int Threads;
  double Seconds;
  double TokensPerSec;
  double Speedup;
};

struct GrammarReport {
  std::string Name;
  int64_t Tokens = 0; // per full pass over the workload
  std::vector<ScalingRow> Scaling;
  double HeapSeconds = 0, ArenaSeconds = 0;
  double ArenaSpeedup = 0;
};

/// Best-of-N wall time for one pass of \p Workload through a service with
/// \p Threads workers.
double timedServicePass(const std::shared_ptr<const GrammarBundle> &Bundle,
                        const std::vector<std::string> &Workload,
                        const char *StartRule, int Threads, int Repeat) {
  double Best = 1e9;
  for (int Rep = 0; Rep < Repeat; ++Rep) {
    ServiceConfig Config;
    Config.Threads = Threads;
    Config.QueueCapacity = Workload.size() + 1;
    Config.CollectStats = false;
    ParseService Service(Config);
    std::vector<std::future<ParseResult>> Futures;
    Futures.reserve(Workload.size());
    double T0 = now();
    for (size_t I = 0; I < Workload.size(); ++I) {
      ParseRequest Req;
      Req.Bundle = Bundle;
      Req.Id = std::to_string(I);
      Req.Input = Workload[I];
      Req.StartRule = StartRule;
      Req.WantTree = true;
      Futures.push_back(Service.submit(std::move(Req)));
    }
    for (auto &F : Futures) {
      ParseResult R = F.get();
      if (!R.ok()) {
        std::fprintf(stderr, "bench input failed to parse: %s\n%s",
                     R.Id.c_str(), R.DiagText.c_str());
        std::exit(1);
      }
    }
    Best = std::min(Best, now() - T0);
  }
  return Best;
}

/// Best-of-N single-threaded parse over the workload, tree building on.
/// With \p UseArena, trees go to a recycled arena; otherwise the heap.
double timedDirectPass(const AnalyzedGrammar &AG,
                       std::vector<TokenStream> &Streams,
                       const std::string &StartRule, bool UseArena,
                       int Repeat) {
  double Best = 1e9;
  Arena TreeArena;
  for (int Rep = 0; Rep < Repeat; ++Rep) {
    double T0 = now();
    for (TokenStream &Stream : Streams) {
      Stream.seek(0);
      DiagnosticEngine Diags;
      ParserOptions Opts;
      Opts.CollectStats = false;
      if (UseArena)
        Opts.TreeArena = &TreeArena;
      LLStarParser P(AG, Stream, nullptr, Diags, Opts);
      auto Tree = P.parse(StartRule);
      if (!P.ok()) {
        std::fprintf(stderr, "direct bench parse failed\n%s",
                     Diags.str().c_str());
        std::exit(1);
      }
      if (UseArena)
        TreeArena.reset();
      else
        Tree.reset();
    }
    Best = std::min(Best, now() - T0);
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  int Units = 60, Inputs = 48, Repeat = 3;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--units") && I + 1 < Argc)
      Units = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--inputs") && I + 1 < Argc)
      Inputs = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--repeat") && I + 1 < Argc)
      Repeat = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_service [--units N] [--inputs N] "
                   "[--repeat N] [--json FILE]\n");
      return 2;
    }
  }

  const int ThreadCounts[] = {1, 2, 4, 8};
  std::vector<GrammarReport> Reports;
  std::printf("batch parsing service: %d inputs x %d units, best of %d "
              "(hardware threads: %u)\n\n",
              Inputs, Units, Repeat, std::thread::hardware_concurrency());

  for (const char *Name : {"Basic", "Sql"}) {
    const BenchGrammar &Spec = benchGrammar(Name);
    GrammarBundleCache Cache;
    DiagnosticEngine Diags;
    auto Bundle = Cache.get(Spec.Text, Diags);
    if (!Bundle) {
      std::fprintf(stderr, "grammar %s failed to load:\n%s", Name,
                   Diags.str().c_str());
      return 1;
    }

    GrammarReport Report;
    Report.Name = Name;
    std::vector<std::string> Workload;
    std::vector<TokenStream> Streams;
    for (int I = 0; I < Inputs; ++I) {
      Workload.push_back(Spec.Workload(Units, unsigned(I + 1)));
      DiagnosticEngine LexDiags;
      Streams.emplace_back(Bundle->tokenize(Workload.back(), LexDiags));
      Report.Tokens += int64_t(Streams.back().size()) - 1;
    }

    std::printf("%s (%lld tokens/pass)\n", Name, (long long)Report.Tokens);
    std::printf("  %-8s %10s %14s %8s\n", "threads", "seconds", "tokens/s",
                "speedup");
    double Base = 0;
    for (int Threads : ThreadCounts) {
      double Secs = timedServicePass(Bundle, Workload, Spec.StartRule,
                                     Threads, Repeat);
      if (Threads == 1)
        Base = Secs;
      ScalingRow Row{Threads, Secs, double(Report.Tokens) / Secs,
                     Base / Secs};
      Report.Scaling.push_back(Row);
      std::printf("  %-8d %10.4f %14.0f %7.2fx\n", Row.Threads, Row.Seconds,
                  Row.TokensPerSec, Row.Speedup);
    }

    Report.HeapSeconds =
        timedDirectPass(Bundle->analyzed(), Streams, Spec.StartRule,
                        /*UseArena=*/false, Repeat);
    Report.ArenaSeconds =
        timedDirectPass(Bundle->analyzed(), Streams, Spec.StartRule,
                        /*UseArena=*/true, Repeat);
    Report.ArenaSpeedup = Report.HeapSeconds / Report.ArenaSeconds;
    std::printf("  trees:   heap %.4fs, arena %.4fs (%.2fx)\n\n",
                Report.HeapSeconds, Report.ArenaSeconds,
                Report.ArenaSpeedup);
    Reports.push_back(std::move(Report));
  }

  if (!JsonPath.empty()) {
    std::string Out = "{\n  \"hardwareThreads\": " +
                      std::to_string(std::thread::hardware_concurrency()) +
                      ",\n  \"inputs\": " + std::to_string(Inputs) +
                      ",\n  \"units\": " + std::to_string(Units) +
                      ",\n  \"grammars\": [\n";
    char Buf[256];
    for (size_t G = 0; G < Reports.size(); ++G) {
      const GrammarReport &R = Reports[G];
      Out += "    {\"name\": \"" + R.Name +
             "\", \"tokensPerPass\": " + std::to_string(R.Tokens) +
             ",\n     \"scaling\": [";
      for (size_t I = 0; I < R.Scaling.size(); ++I) {
        const ScalingRow &Row = R.Scaling[I];
        // Rows running more workers than the machine has hardware threads
        // measure scheduler contention, not scaling; flag them so baseline
        // comparisons can discount those points.
        bool Oversubscribed =
            unsigned(Row.Threads) > std::thread::hardware_concurrency();
        std::snprintf(Buf, sizeof(Buf),
                      "%s{\"threads\": %d, \"seconds\": %.4f, "
                      "\"tokensPerSec\": %.0f, \"speedup\": %.2f%s}",
                      I ? ", " : "", Row.Threads, Row.Seconds,
                      Row.TokensPerSec, Row.Speedup,
                      Oversubscribed ? ", \"oversubscribed\": true" : "");
        Out += Buf;
      }
      std::snprintf(Buf, sizeof(Buf),
                    "],\n     \"treeHeapSeconds\": %.4f, "
                    "\"treeArenaSeconds\": %.4f, \"arenaSpeedup\": %.2f}%s\n",
                    R.HeapSeconds, R.ArenaSeconds, R.ArenaSpeedup,
                    G + 1 < Reports.size() ? "," : "");
      Out += Buf;
    }
    Out += "  ]\n}\n";
    std::ofstream F(JsonPath);
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    F << Out;
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
