//===- bench/bench_llstar_vs_packrat.cpp - Speculation reduction ----------===//
//
// Quantifies the paper's headline claim: by statically removing as much
// speculation as possible, LL(*) provides PEG expressivity with far less
// speculative work (Sections 1, 6.2; the v3-vs-v2 2.5x speed observation
// is the same effect end to end).
//
// Both parsers run the *same* PEG-mode grammar (RatsJava) over the same
// inputs. We report recognition time and, more tellingly, the volume of
// speculative work: packrat rule attempts vs LL(*) syntactic-predicate
// evaluations.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"
#include "peg/PackratParser.h"

#include <chrono>
#include <cstdio>

using namespace llstar;
using namespace llstar::bench;

int main() {
  std::printf("=== LL(*) vs pure packrat on the same PEG-mode grammar "
              "(RatsJava) ===\n\n");
  std::printf("%-7s %8s %12s %12s %8s %14s %14s\n", "units", "lines",
              "LL(*) ms", "packrat ms", "ratio", "LL(*) synpred",
              "packrat tries");

  PreparedGrammar P = PreparedGrammar::prepare(benchGrammar("RatsJava"));

  for (int Units : {20, 40, 80, 160}) {
    std::string Input = generateJava(Units, 99);
    int64_t Lines = countLines(Input);
    TokenStream Stream = P.tokenize(Input);

    // LL(*) (recognition only, to match the packrat configuration).
    double LLTime = 0;
    int64_t SynPreds = 0;
    {
      Stream.seek(0);
      DiagnosticEngine Diags;
      ParserOptions Opts;
      Opts.BuildTree = false;
      LLStarParser Parser(*P.AG, Stream, &P.Env, Diags, Opts);
      auto Start = std::chrono::steady_clock::now();
      bool Ok = P.runParse(Stream, Parser);
      LLTime = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
      if (!Ok) {
        std::fprintf(stderr, "LL(*) failed:\n%s\n", Diags.str().c_str());
        return 1;
      }
      SynPreds = Parser.stats().SynPredEvals;
    }

    // Packrat.
    double PegTime = 0;
    int64_t Attempts = 0;
    {
      Stream.seek(0);
      DiagnosticEngine Diags;
      PackratParser Parser(P.AG->grammar(), Stream, &P.Env, Diags);
      auto Start = std::chrono::steady_clock::now();
      Parser.parse(P.Spec->StartRule);
      PegTime = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
      if (!Parser.ok()) {
        std::fprintf(stderr, "packrat failed\n");
        return 1;
      }
      Attempts = Parser.stats().AltAttempts;
    }

    std::printf("%-7d %8lld %10.2fms %10.2fms %7.2fx %14lld %14lld\n",
                Units, (long long)Lines, LLTime * 1000, PegTime * 1000,
                LLTime > 0 ? PegTime / LLTime : 0.0, (long long)SynPreds,
                (long long)Attempts);
  }

  std::printf("\nShape check: LL(*) wins and the gap comes from removed "
              "speculation — synpred evaluations are orders of magnitude "
              "rarer than packrat alternative attempts. (Paper: ANTLR v3 "
              "LL(*) parsers were ~2.5x faster than the always-"
              "backtracking v2 strategy.)\n");
  return 0;
}
