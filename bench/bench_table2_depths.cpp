//===- bench/bench_table2_depths.cpp - Paper Table 2 ----------------------===//
//
// Regenerates paper Table 2, "Fixed lookahead decision characteristics":
// the fraction of decisions that are fixed LL(k), the fraction that are
// LL(1), and the histogram of decisions per lookahead depth k.
//
// Expected shape (paper): 77-95% of decisions fixed, 72-89% LL(1), and a
// rapidly decaying tail over k = 2..6.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"

#include <cstdio>

using namespace llstar;
using namespace llstar::bench;

int main() {
  std::printf("=== Table 2: fixed lookahead decision characteristics ===\n");
  std::printf("%-10s %8s %8s   decisions at depth k = 1..8+\n", "Grammar",
              "LL(k)%", "LL(1)%");

  for (const BenchGrammar &Spec : benchGrammars()) {
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Spec.Text, Diags);
    if (!AG) {
      std::fprintf(stderr, "grammar %s failed:\n%s\n", Spec.Name,
                   Diags.str().c_str());
      return 1;
    }
    const StaticStats &S = AG->stats();
    std::printf("%-10s %7.2f%% %7.2f%%   ", Spec.Name,
                100.0 * S.fixedFraction(), 100.0 * S.ll1Fraction());
    int64_t Tail = 0;
    for (auto &[K, Count] : S.FixedKHistogram)
      if (K > 8)
        Tail += Count;
    for (int K = 1; K <= 8; ++K) {
      auto It = S.FixedKHistogram.find(K);
      std::printf("%4d", It == S.FixedKHistogram.end() ? 0 : It->second);
    }
    std::printf("  (k>8: %lld)\n", (long long)Tail);
  }

  std::printf("\n--- paper reference ---\n");
  std::printf("Java1.5  88.24%% 74.71%%  k-histogram 127 20 2 0 0 1\n");
  std::printf("RatsC    77.62%% 72.03%%  k-histogram 103 7 1\n");
  std::printf("RatsJava 83.91%% 73.56%%  k-histogram 64 8 1\n");
  std::printf("VB.NET   95.40%% 88.79%%  k-histogram 309 18 4 1\n");
  std::printf("TSQL     94.02%% 83.48%%  k-histogram 935 78 11 14 9 6\n");
  std::printf("C#       87.10%% 78.34%%  k-histogram 170 19\n");
  std::printf("\nShape check: most decisions LL(1); histogram decays "
              "fast with k.\n");
  return 0;
}
