//===- bench/bench_compiled.cpp - Compiled fast path vs interpreter -------===//
//
// Measures the ahead-of-time compiled parser fast path (src/compiled/,
// grammars/compiled/) against the interpreting runtime on every shipped
// grammar, split the way the subsystem is layered:
//
//   1. lexer — the grammar's spec-compiled CharDfa vs the generated dense
//      byte-DFA tables of the registered module (tokens/s);
//   2. full parse — LLStarParser vs CompiledParser over the same token
//      stream, trees and stats off, so the number isolates prediction and
//      matching throughput (the layer the dense tables and generated
//      predictors replace; tree building costs the same in both engines).
//
// Workloads are synthetic but idiomatic per grammar, sized by --units.
// `--json FILE` records the results; BENCH_compiled.json at the repo root
// is a committed baseline. Every shipped grammar is expected to resolve
// its checked-in module (hash gate open); the report says so per grammar.
//
//   bench_compiled [--units N] [--repeat N] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "codegen/Serializer.h"
#include "compiled/CompiledParser.h"
#include "compiled/CompiledRegistry.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include "CompiledManifest.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// Per-grammar workloads
//===----------------------------------------------------------------------===//

std::string csvWorkload(int Units) {
  std::string Out = "name,kind,count,comment\n";
  for (int I = 0; I < Units; ++I) {
    Out += "row" + std::to_string(I) + ",\"quoted \"\"v" +
           std::to_string(I % 7) + "\"\" field\"," + std::to_string(I * 3) +
           ",plain text\n";
  }
  return Out;
}

std::string dotWorkload(int Units) {
  std::string Out = "digraph bench {\n  graph [rankdir=LR, label=\"b\"]\n";
  for (int I = 0; I < Units; ++I) {
    std::string A = "n" + std::to_string(I);
    std::string B = "n" + std::to_string((I + 1) % Units);
    Out += "  " + A + " [shape=box, weight=" + std::to_string(I % 9) +
           "]\n";
    Out += "  " + A + " -> " + B + " -> n" +
           std::to_string((I + 2) % Units) + " [color=\"red\"]\n";
    if (I % 8 == 0)
      Out += "  subgraph c" + std::to_string(I) + " { " + A + ":p -> " + B +
             " }\n";
  }
  Out += "}\n";
  return Out;
}

std::string iniWorkload(int Units) {
  std::string Out;
  for (int I = 0; I < Units; ++I) {
    Out += "[section" + std::to_string(I) + "]\n";
    Out += "count = " + std::to_string(I * 17) + "\n";
    Out += "name = \"value " + std::to_string(I) + "\"\n";
    Out += "tags = alpha, beta, gamma\n";
    Out += "path = usr.local.share\n";
  }
  return Out;
}

std::string jsonWorkload(int Units) {
  std::string Out = "{\"items\": [";
  for (int I = 0; I < Units; ++I) {
    if (I)
      Out += ", ";
    Out += "{\"id\": " + std::to_string(I) +
           ", \"name\": \"item" + std::to_string(I) +
           "\", \"score\": " + std::to_string(I % 10) + "." +
           std::to_string(I % 100) +
           ", \"tags\": [\"a\", \"b\"], \"ok\": " +
           (I % 2 ? "true" : "false") + ", \"extra\": null}";
  }
  Out += "], \"total\": " + std::to_string(Units) + "}";
  return Out;
}

std::string lambdaWorkload(int Units) {
  std::string Out;
  for (int I = 0; I < Units; ++I)
    Out += "let f" + std::to_string(I) +
           " = lambda x. lambda y. f x (y " + std::to_string(I) + ") in\n";
  Out += "f0 ";
  for (int I = 0; I < Units; ++I)
    Out += "(g " + std::to_string(I) + ") ";
  return Out;
}

std::string luaWorkload(int Units) {
  std::string Out;
  for (int I = 0; I < Units; ++I) {
    std::string N = std::to_string(I);
    Out += "local acc" + N + " = obj.field[" + N + "].next\n";
    Out += "acc" + N + ".slot, t = 1 + 2 * " + N + " ^ 2, \"s\" .. \"t\"\n";
    Out += "obj:method(acc" + N + ", { k = " + N + ", [2] = false })\n";
    Out += "if acc" + N + " ~= nil and " + N +
           " < 10 then\n  print(acc" + N + ")\nelse\n  call(" + N +
           ")\nend\n";
    Out += "for i = 1, " + N + ", 2 do work(i) end\n";
  }
  Out += "return acc0\n";
  return Out;
}

std::string sexprWorkload(int Units) {
  std::string Out;
  for (int I = 0; I < Units; ++I)
    Out += "(define (fn" + std::to_string(I) + " x y) (+ (* x " +
           std::to_string(I) + ") (- y 1.5) 'sym \"str\"))\n";
  return Out;
}

struct Workload {
  const char *File; ///< grammars/<File>.g
  std::string (*Generate)(int Units);
};

const Workload Workloads[] = {
    {"csv", csvWorkload},     {"dot", dotWorkload},
    {"ini", iniWorkload},     {"json", jsonWorkload},
    {"lambda", lambdaWorkload}, {"lua", luaWorkload},
    {"sexpr", sexprWorkload},
};

//===----------------------------------------------------------------------===//
// Timing
//===----------------------------------------------------------------------===//

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Best-of-N wall time of \p Fn.
template <class FnT> double bestOf(int Repeat, FnT &&Fn) {
  double Best = 1e9;
  for (int Rep = 0; Rep < Repeat; ++Rep) {
    double T0 = now();
    Fn();
    Best = std::min(Best, now() - T0);
  }
  return Best;
}

struct Split {
  double InterpSecs = 0, CompiledSecs = 0;
  double InterpTps = 0, CompiledTps = 0;
  double Speedup = 0;

  void finish(int64_t Tokens) {
    InterpTps = double(Tokens) / InterpSecs;
    CompiledTps = double(Tokens) / CompiledSecs;
    Speedup = InterpSecs / CompiledSecs;
  }
};

struct GrammarReport {
  std::string Name;
  bool FromModule = false;
  int NativePredictors = 0;
  int Decisions = 0;
  int64_t Tokens = 0;
  Split Lex, Parse;
};

} // namespace

int main(int Argc, char **Argv) {
  int Units = 400, Repeat = 5;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--units") && I + 1 < Argc)
      Units = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--repeat") && I + 1 < Argc)
      Repeat = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_compiled [--units N] [--repeat N] "
                   "[--json FILE]\n");
      return 2;
    }
  }

  compiled::registerShippedGrammars();
  std::vector<GrammarReport> Reports;
  std::printf("compiled fast path vs interpreter: %d units, best of %d\n\n",
              Units, Repeat);
  std::printf("%-8s %-7s %-8s %12s %12s %8s %12s %12s %8s\n", "grammar",
              "module", "native", "lex-int t/s", "lex-cmp t/s", "lex-x",
              "par-int t/s", "par-cmp t/s", "par-x");

  for (const Workload &W : Workloads) {
    std::string Text = readFile(std::string(LLSTAR_SOURCE_DIR) +
                                "/grammars/" + W.File + ".g");
    DiagnosticEngine GDiags;
    auto AG = analyzeGrammarText(Text, GDiags);
    if (!AG) {
      std::fprintf(stderr, "grammar %s failed to analyze:\n%s", W.File,
                   GDiags.str().c_str());
      return 1;
    }
    compiled::CompiledResolution Res =
        compiled::resolveCompiledTables(*AG, serializeGrammar(*AG));

    GrammarReport R;
    R.Name = AG->grammar().Name;
    R.FromModule = Res.fromModule();
    R.Decisions = int(AG->numDecisions());
    if (Res.Native)
      for (int32_t D = 0; D < int32_t(AG->numDecisions()); ++D)
        if (Res.Native[D])
          ++R.NativePredictors;

    std::string Input = W.Generate(Units);
    DiagnosticEngine LexDiags;
    Lexer SpecLex(AG->grammar().lexerSpec(), LexDiags);
    auto ModuleLex = Res.fromModule() ? compiled::makeModuleLexer(*Res.Module)
                                      : nullptr;
    std::vector<Token> Tokens = SpecLex.tokenize(Input, LexDiags);
    if (LexDiags.hasErrors()) {
      std::fprintf(stderr, "%s workload does not lex:\n%s", W.File,
                   LexDiags.str().c_str());
      return 1;
    }
    R.Tokens = int64_t(Tokens.size()) - 1; // exclude EOF

    // Lexer split. Without a module (stale hash) the compiled side runs
    // the same spec lexer; the speedup column then honestly reads ~1x.
    R.Lex.InterpSecs = bestOf(Repeat, [&] {
      DiagnosticEngine D;
      SpecLex.tokenize(Input, D);
    });
    const Lexer &CompiledLex = ModuleLex ? *ModuleLex : SpecLex;
    R.Lex.CompiledSecs = bestOf(Repeat, [&] {
      DiagnosticEngine D;
      CompiledLex.tokenize(Input, D);
    });
    R.Lex.finish(R.Tokens);

    // Full-parse split: trees and stats off so the measurement isolates
    // prediction + matching, the layer the compiled tables replace.
    TokenStream Stream(std::move(Tokens));
    ParserOptions Opts;
    Opts.Memoize = AG->grammar().Options.Memoize;
    Opts.BuildTree = false;
    Opts.CollectStats = false;
    auto CheckOk = [&](bool Ok, const DiagnosticEngine &D,
                       const char *Engine) {
      if (!Ok) {
        std::fprintf(stderr, "%s workload does not parse (%s):\n%s", W.File,
                     Engine, D.str().c_str());
        std::exit(1);
      }
    };
    R.Parse.InterpSecs = bestOf(Repeat, [&] {
      Stream.seek(0);
      DiagnosticEngine D;
      LLStarParser P(*AG, Stream, nullptr, D, Opts);
      P.parse();
      CheckOk(P.ok(), D, "interpreted");
    });
    R.Parse.CompiledSecs = bestOf(Repeat, [&] {
      Stream.seek(0);
      DiagnosticEngine D;
      compiled::CompiledParser P(*AG, Res.View, Stream, nullptr, D, Opts,
                                 Res.Native, Res.Rules);
      P.parse();
      CheckOk(P.ok(), D, "compiled");
    });
    R.Parse.finish(R.Tokens);

    char Native[16];
    std::snprintf(Native, sizeof(Native), "%d/%d", R.NativePredictors,
                  R.Decisions);
    std::printf("%-8s %-7s %-8s %12.0f %12.0f %7.2fx %12.0f %12.0f %7.2fx\n",
                R.Name.c_str(), R.FromModule ? "yes" : "STALE", Native,
                R.Lex.InterpTps, R.Lex.CompiledTps, R.Lex.Speedup,
                R.Parse.InterpTps, R.Parse.CompiledTps, R.Parse.Speedup);
    Reports.push_back(std::move(R));
  }

  if (!JsonPath.empty()) {
    std::string Out = "{\n  \"units\": " + std::to_string(Units) +
                      ",\n  \"repeat\": " + std::to_string(Repeat) +
                      ",\n  \"grammars\": [\n";
    char Buf[512];
    auto SplitJson = [&](const char *Key, const Split &S) {
      std::snprintf(Buf, sizeof(Buf),
                    "     \"%s\": {\"interpSecs\": %.6f, "
                    "\"compiledSecs\": %.6f, \"interpTokensPerSec\": %.0f, "
                    "\"compiledTokensPerSec\": %.0f, \"speedup\": %.2f}",
                    Key, S.InterpSecs, S.CompiledSecs, S.InterpTps,
                    S.CompiledTps, S.Speedup);
      Out += Buf;
    };
    for (size_t G = 0; G < Reports.size(); ++G) {
      const GrammarReport &R = Reports[G];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"name\": \"%s\", \"module\": %s, "
                    "\"nativePredictors\": %d, \"decisions\": %d, "
                    "\"tokens\": %lld,\n",
                    R.Name.c_str(), R.FromModule ? "true" : "false",
                    R.NativePredictors, R.Decisions, (long long)R.Tokens);
      Out += Buf;
      SplitJson("lexer", R.Lex);
      Out += ",\n";
      SplitJson("parse", R.Parse);
      Out += G + 1 < Reports.size() ? "},\n" : "}\n";
    }
    Out += "  ]\n}\n";
    std::ofstream F(JsonPath);
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    F << Out;
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
