//===- bench/bench_micro.cpp - Google-benchmark microbenchmarks -----------===//
//
// Microbenchmarks of the toolkit's hot paths using google-benchmark:
// lexing throughput, adaptive prediction, full LL(*) parses, packrat
// parses, whole-grammar analysis, and the regex-DFA substrate. These
// complement the table reproductions with stable, statistically sound
// timings for regression tracking.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"
#include "peg/PackratParser.h"
#include "regex/CharDFA.h"
#include "regex/RegexParser.h"

#include <benchmark/benchmark.h>

using namespace llstar;
using namespace llstar::bench;

namespace {

PreparedGrammar &javaGrammar() {
  static PreparedGrammar P = PreparedGrammar::prepare(benchGrammar("Java"));
  return P;
}
PreparedGrammar &ratsCGrammar() {
  static PreparedGrammar P = PreparedGrammar::prepare(benchGrammar("RatsC"));
  return P;
}

const std::string &javaInput() {
  static std::string S = generateJava(40, 11);
  return S;
}
const std::string &cInput() {
  static std::string S = generateC(60, 11);
  return S;
}

void BM_AnalyzeJavaGrammar(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(benchGrammar("Java").Text, Diags);
    benchmark::DoNotOptimize(AG);
  }
}
BENCHMARK(BM_AnalyzeJavaGrammar)->Unit(benchmark::kMillisecond);

void BM_LexJava(benchmark::State &State) {
  PreparedGrammar &P = javaGrammar();
  const std::string &Input = javaInput();
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Tokens = P.Lex->tokenize(Input, Diags);
    benchmark::DoNotOptimize(Tokens);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          int64_t(Input.size()));
}
BENCHMARK(BM_LexJava)->Unit(benchmark::kMillisecond);

void BM_ParseJavaLLStar(benchmark::State &State) {
  PreparedGrammar &P = javaGrammar();
  TokenStream Stream = P.tokenize(javaInput());
  for (auto _ : State) {
    Stream.seek(0);
    DiagnosticEngine Diags;
    ParserOptions Opts;
    Opts.BuildTree = false;
    Opts.CollectStats = false;
    LLStarParser Parser(*P.AG, Stream, &P.Env, Diags, Opts);
    P.runParse(Stream, Parser);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Stream.size());
}
BENCHMARK(BM_ParseJavaLLStar)->Unit(benchmark::kMillisecond);

void BM_ParseJavaLLStarWithTree(benchmark::State &State) {
  PreparedGrammar &P = javaGrammar();
  TokenStream Stream = P.tokenize(javaInput());
  for (auto _ : State) {
    Stream.seek(0);
    DiagnosticEngine Diags;
    LLStarParser Parser(*P.AG, Stream, &P.Env, Diags);
    P.runParse(Stream, Parser);
  }
}
BENCHMARK(BM_ParseJavaLLStarWithTree)->Unit(benchmark::kMillisecond);

void BM_ParseCLLStar(benchmark::State &State) {
  PreparedGrammar &P = ratsCGrammar();
  TokenStream Stream = P.tokenize(cInput());
  for (auto _ : State) {
    Stream.seek(0);
    DiagnosticEngine Diags;
    ParserOptions Opts;
    Opts.BuildTree = false;
    Opts.CollectStats = false;
    LLStarParser Parser(*P.AG, Stream, &P.Env, Diags, Opts);
    P.runParse(Stream, Parser);
  }
}
BENCHMARK(BM_ParseCLLStar)->Unit(benchmark::kMillisecond);

void BM_ParseCPackrat(benchmark::State &State) {
  PreparedGrammar &P = ratsCGrammar();
  TokenStream Stream = P.tokenize(cInput());
  for (auto _ : State) {
    Stream.seek(0);
    DiagnosticEngine Diags;
    P.CurrentStream = &Stream;
    PackratParser Parser(P.AG->grammar(), Stream, &P.Env, Diags);
    Parser.parse("translationUnit");
    P.CurrentStream = nullptr;
  }
}
BENCHMARK(BM_ParseCPackrat)->Unit(benchmark::kMillisecond);

void BM_RegexDfaConstruction(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto Re = regex::parseRegex("(a|b)*abb(a|b)*|[0-9]+(\\.[0-9]+)?", Diags);
  for (auto _ : State) {
    regex::Nfa N;
    N.addPattern(*Re, 0, 0);
    auto Dfa = regex::CharDfa::fromNfa(N).minimized();
    benchmark::DoNotOptimize(Dfa);
  }
}
BENCHMARK(BM_RegexDfaConstruction);

void BM_AdaptivePredictHotLoop(benchmark::State &State) {
  // Dominated by the statement-dispatch decision of the Java grammar.
  PreparedGrammar &P = javaGrammar();
  TokenStream Stream = P.tokenize(javaInput());
  for (auto _ : State) {
    Stream.seek(0);
    DiagnosticEngine Diags;
    ParserOptions Opts;
    Opts.BuildTree = false;
    LLStarParser Parser(*P.AG, Stream, &P.Env, Diags, Opts);
    P.runParse(Stream, Parser);
    benchmark::DoNotOptimize(Parser.stats().totalEvents());
  }
}
BENCHMARK(BM_AdaptivePredictHotLoop)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
