//===- bench/bench_fig1_dfa.cpp - Paper Figure 1 + Section 2 DFA ----------===//
//
// Regenerates paper Figure 1 — the cyclic lookahead DFA for
//
//   s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
//
// and the Section 2 cyclic DFA for the grammar that is LL(*) but not
// LALR(k) for any k:
//
//   a : b A+ X | c A+ Y ;   b : ;   c : ;
//
// (The paper demonstrates LPG rejecting the latter even at k = 10000.)
// Output: the DFA in text and Graphviz form plus a prediction trace per
// interesting input prefix.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace llstar;

namespace {

void showPrediction(const AnalyzedGrammar &AG, int32_t Decision,
                    const std::vector<std::string> &Tokens) {
  const LookaheadDfa &Dfa = AG.dfa(Decision);
  const Vocabulary &V = AG.grammar().vocabulary();
  int32_t S = 0;
  std::string Trace = "s0";
  size_t Used = 0;
  while (!Dfa.state(S).isAccept() && Used < Tokens.size()) {
    TokenType T = Tokens[Used] == "EOF" ? TokenEof : V.lookup(Tokens[Used]);
    int32_t Next = Dfa.state(S).edgeOn(T);
    if (Next < 0)
      break;
    Trace += " -" + Tokens[Used] + "-> s" + std::to_string(Next);
    S = Next;
    ++Used;
  }
  std::string Input;
  for (const std::string &T : Tokens)
    Input += T + " ";
  if (Dfa.state(S).isAccept())
    std::printf("  upon %-40s predict alternative %d (k=%zu) via %s\n",
                Input.c_str(), Dfa.state(S).PredictedAlt, Used,
                Trace.c_str());
  else
    std::printf("  upon %-40s stuck at %s (predicate edges: %zu)\n",
                Input.c_str(), Trace.c_str(),
                Dfa.state(S).PredEdges.size());
}

} // namespace

int main() {
  std::printf("=== Figure 1: LL(*) lookahead DFA for rule s ===\n\n");
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(R"(
grammar S;
s    : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
expr : INT ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)",
                               Diags);
  if (!AG) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return 1;
  }
  int32_t D = AG->atn().state(AG->atn().ruleStart(AG->grammar().findRule("s")))
                  .Decision;
  std::printf("%s\n", AG->dfa(D).str(AG->atn()).c_str());
  std::printf("class: %s (paper: cyclic DFA with minimum lookahead per "
              "input sequence)\n\n",
              AG->dfa(D).decisionClass() == DecisionClass::Cyclic ? "cyclic"
                                                                  : "OTHER");
  showPrediction(*AG, D, {"'int'"});
  showPrediction(*AG, D, {"ID", "EOF"});
  showPrediction(*AG, D, {"ID", "'='"});
  showPrediction(*AG, D, {"ID", "ID"});
  showPrediction(*AG, D, {"'unsigned'", "'unsigned'", "'int'"});
  showPrediction(*AG, D, {"'unsigned'", "'unsigned'", "'unsigned'", "ID"});

  std::printf("\nGraphviz:\n%s\n", AG->dfa(D).dot(AG->atn()).c_str());

  std::printf("=== Section 2: cyclic DFA where LALR(k) fails for all k ===\n\n");
  DiagnosticEngine Diags2;
  auto AG2 = analyzeGrammarText(R"(
grammar T;
a : b A+ X | c A+ Y ;
b : ;
c : ;
A : 'a' ; X : 'x' ; Y : 'y' ;
)",
                                Diags2);
  if (!AG2) {
    std::fprintf(stderr, "%s\n", Diags2.str().c_str());
    return 1;
  }
  int32_t D2 =
      AG2->atn().state(AG2->atn().ruleStart(AG2->grammar().findRule("a")))
          .Decision;
  std::printf("%s\n", AG2->dfa(D2).str(AG2->atn()).c_str());
  std::printf("class: %s\n", AG2->dfa(D2).decisionClass() ==
                                     DecisionClass::Cyclic
                                 ? "cyclic (as the paper shows; LPG core-"
                                   "dumps at k=100000 on this grammar)"
                                 : "OTHER");
  showPrediction(*AG2, D2, {"A", "A", "A", "X"});
  showPrediction(*AG2, D2, {"A", "A", "A", "A", "A", "Y"});
  return 0;
}
