//===- bench/bench_ablation_m.cpp - Recursion-depth constant ablation -----===//
//
// Ablates the paper's internal constant m (Sections 2, 5.3): how far
// closure unwinds recursive rules before marking recursion overflow and
// failing over to backtracking. Larger m buys more fixed lookahead (fewer
// runtime speculations) at the cost of bigger DFAs and longer analysis;
// the paper fixes m=1 "for this example" (Figure 2) and argues
// hard-limiting depth is not a serious restriction in practice.
//
// Sweeps m over the Figure 2 grammar and the RatsC benchmark grammar,
// reporting DFA sizes, decision classes, analysis time, and the runtime
// backtracking fraction on a fixed workload.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace llstar;
using namespace llstar::bench;

namespace {

std::string withM(const char *Text, int M) {
  // The grammars set options at the top; append an options block right
  // after the grammar declaration line.
  std::string S(Text);
  size_t Pos = S.find(';');
  S.insert(Pos + 1, "\noptions { m=" + std::to_string(M) + "; }");
  return S;
}

const char *Fig2NoOptions = R"(
grammar T;
options { backtrack=true; }
t    : '-'* ID | expr ;
expr : INT | '-' expr ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

} // namespace

int main() {
  std::printf("=== Ablation: recursion-depth constant m ===\n\n");

  std::printf("Figure 2 grammar ('-'* ID vs recursive expr):\n");
  std::printf("%-4s %10s %12s %20s\n", "m", "DFA states",
              "max fixed '-'", "still backtracks?");
  for (int M = 1; M <= 5; ++M) {
    std::string Patched(Fig2NoOptions);
    Patched.insert(Patched.find("backtrack=true;") + 15,
                   " m=" + std::to_string(M) + ";");
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Patched, Diags);
    if (!AG) {
      std::fprintf(stderr, "m=%d failed:\n%s\n", M, Diags.str().c_str());
      return 1;
    }
    int32_t D =
        AG->atn().state(AG->atn().ruleStart(AG->grammar().findRule("t")))
            .Decision;
    const LookaheadDfa &Dfa = AG->dfa(D);
    // Count the '-' spine: walk '-' edges from s0 until they stop.
    TokenType Dash = AG->grammar().vocabulary().lookupLiteral("-");
    int Spine = 0;
    int32_t S = 0;
    while (true) {
      int32_t Next = Dfa.state(S).edgeOn(Dash);
      if (Next < 0 || Dfa.state(Next).isAccept())
        break;
      S = Next;
      ++Spine;
    }
    std::printf("%-4d %10zu %12d %20s\n", M, Dfa.numStates(), Spine,
                Dfa.hasSynPredEdges() ? "yes" : "no");
  }
  std::printf("(larger m pushes the fail-over point deeper: more '-' "
              "handled by pure DFA lookahead before speculating)\n\n");

  std::printf("RatsC grammar, workload of 150 units:\n");
  std::printf("%-4s %6s %8s %10s %12s %14s %12s\n", "m", "n", "backtr.",
              "analysis", "DFA states", "events backtr.", "parse time");
  for (int M = 1; M <= 4; ++M) {
    std::string Text = withM(benchGrammar("RatsC").Text, M);
    // RatsC already has an options block; the inserted one comes first and
    // both apply (later keys win only per-key), so m is taken from ours.
    auto Start = std::chrono::steady_clock::now();
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Text, Diags);
    double AnalysisTime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    if (!AG) {
      std::fprintf(stderr, "m=%d failed:\n%s\n", M, Diags.str().c_str());
      return 1;
    }
    size_t TotalStates = 0;
    for (size_t D = 0; D < AG->numDecisions(); ++D)
      TotalStates += AG->dfa(int32_t(D)).numStates();

    DiagnosticEngine LexDiags;
    Lexer L(AG->grammar().lexerSpec(), LexDiags);
    std::string Input = generateC(150, 3);
    DiagnosticEngine PD;
    TokenStream Stream(L.tokenize(Input, PD));
    SemanticEnv Env;
    Env.definePredicate("isTypeName", [&Stream] {
      const Token &T = Stream.LT(1);
      return !T.Text.empty() && T.Text[0] == 'T';
    });
    LLStarParser P(*AG, Stream, &Env, PD);
    auto PStart = std::chrono::steady_clock::now();
    P.parse("translationUnit");
    double ParseTime = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - PStart)
                           .count();
    if (!P.ok()) {
      std::fprintf(stderr, "m=%d parse failed:\n%s\n", M,
                   PD.str().c_str());
      return 1;
    }
    std::printf("%-4d %6zu %8d %8.3fms %12zu %13.2f%% %10.2fms\n", M,
                AG->numDecisions(), AG->stats().NumBacktrack,
                AnalysisTime * 1000, TotalStates,
                100.0 * P.stats().backtrackEventFraction(),
                ParseTime * 1000);
  }
  std::printf("\nShape check: increasing m grows DFAs and analysis time "
              "while (weakly) reducing runtime speculation — the paper's "
              "rationale for a small fixed m.\n");
  return 0;
}
