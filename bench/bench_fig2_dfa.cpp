//===- bench/bench_fig2_dfa.cpp - Paper Figure 2 --------------------------===//
//
// Regenerates paper Figure 2 — the mixed fixed-lookahead + backtracking
// decision DFA for
//
//   options { backtrack=true; m=1; }
//   t    : '-'* ID | expr ;
//   expr : INT | '-' expr ;
//
// The DFA decides on the first symbol for x / 1, matches a bounded number
// of '-' (controlled by the recursion constant m), and fails over to a
// state whose only outgoing transitions are syntactic-predicate edges.
// We print the DFA, then profile how often the decision actually
// backtracks across inputs with increasing '-' depth — the paper's point
// that a decision that *can* backtrack rarely *does*.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include <cstdio>
#include <string>

using namespace llstar;

int main() {
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(R"(
grammar T;
options { backtrack=true; m=1; }
t    : '-'* ID | expr ;
expr : INT | '-' expr ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)",
                               Diags);
  if (!AG) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return 1;
  }

  int32_t D = AG->atn().state(AG->atn().ruleStart(AG->grammar().findRule("t")))
                  .Decision;
  const LookaheadDfa &Dfa = AG->dfa(D);

  std::printf("=== Figure 2: decision DFA for rule t (m=1) ===\n\n");
  std::printf("%s\n", Dfa.str(AG->atn()).c_str());
  std::printf("class: %s, overflowed: %s, synpred edges: %s\n\n",
              Dfa.decisionClass() == DecisionClass::Backtrack
                  ? "backtrack (mixed lookahead + speculation)"
                  : "OTHER",
              Dfa.overflowed() ? "yes" : "no",
              Dfa.hasSynPredEdges() ? "yes" : "no");

  DiagnosticEngine LexDiags;
  Lexer L(AG->grammar().lexerSpec(), LexDiags);

  std::printf("%-24s %-6s %-12s %s\n", "input", "parsed", "backtracked?",
              "(paper: only inputs starting '--' speculate)");
  for (int Dashes = 0; Dashes <= 5; ++Dashes) {
    for (const char *Tail : {"x", "1"}) {
      std::string Input;
      for (int I = 0; I < Dashes; ++I)
        Input += "- ";
      Input += Tail;
      DiagnosticEngine PDiags;
      TokenStream Stream(L.tokenize(Input, PDiags));
      LLStarParser P(*AG, Stream, nullptr, PDiags);
      P.parse("t");
      std::printf("%-24s %-6s %-12s\n", Input.c_str(),
                  P.ok() ? "ok" : "FAIL",
                  P.stats().backtrackEvents() > 0 ? "yes" : "no");
    }
  }

  std::printf("\nGraphviz:\n%s", Dfa.dot(AG->atn()).c_str());
  return 0;
}
