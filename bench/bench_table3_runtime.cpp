//===- bench/bench_table3_runtime.cpp - Paper Table 3 ---------------------===//
//
// Regenerates paper Table 3, "Parser decision lookahead depth": for each
// grammar, a synthetic workload is generated, lexed, and parsed by the
// LL(*) parser; we report input size, parse time, the number of decisions
// covered, the average lookahead depth per decision event, the average
// speculation depth over backtracking events only, and the deepest
// lookahead observed.
//
// Expected shape (paper): avg k is ~1 token (PEG-mode grammars closer to
// 2); backtracking avg k stays small (< 6) even though individual
// speculations can scan far; max k is much larger for the PEG-mode
// grammars (RatsC speculated 7,968 tokens in the paper).
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"

#include <chrono>
#include <cstdio>

using namespace llstar;
using namespace llstar::bench;

namespace {

/// Workload sizes tuned to produce a few thousand lines per grammar.
int workloadUnits(const std::string &Name) {
  if (Name == "Java" || Name == "RatsJava")
    return 120;
  if (Name == "RatsC")
    return 250;
  if (Name == "Basic")
    return 900;
  if (Name == "Sql")
    return 900;
  return 100; // CSharp
}

} // namespace

int main() {
  std::printf("=== Table 3: parser decision lookahead depth ===\n");
  std::printf("%-10s %8s %10s %8s %7s %7s %7s %12s\n", "Grammar", "lines",
              "parse", "n", "avg k", "back k", "max k", "lines/sec");

  for (const BenchGrammar &Spec : benchGrammars()) {
    PreparedGrammar P = PreparedGrammar::prepare(Spec);
    std::string Input = Spec.Workload(workloadUnits(Spec.Name), 20110604);
    int64_t Lines = countLines(Input);

    // Lex once; parse three times (median). Times include prediction,
    // speculation, and tree construction, mirroring the paper's setup.
    TokenStream Stream = P.tokenize(Input);
    double Times[3];
    ParserStats Stats;
    for (double &T : Times) {
      Stream.seek(0);
      DiagnosticEngine Diags;
      LLStarParser Parser(*P.AG, Stream, &P.Env, Diags);
      auto Start = std::chrono::steady_clock::now();
      bool Ok = P.runParse(Stream, Parser);
      T = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
      if (!Ok) {
        std::fprintf(stderr, "grammar %s: workload failed to parse:\n%s\n",
                     Spec.Name, Diags.str().c_str());
        return 1;
      }
      Stats = Parser.stats();
    }
    std::sort(std::begin(Times), std::end(Times));

    std::printf("%-10s %8lld %8.1fms %8lld %7.2f %7.2f %7lld %12.0f\n",
                Spec.Name, (long long)Lines, Times[1] * 1000,
                (long long)Stats.decisionsCovered(), Stats.avgLookahead(),
                Stats.avgBacktrackLookahead(),
                (long long)Stats.maxLookahead(),
                Times[1] > 0 ? double(Lines) / Times[1] : 0.0);
  }

  std::printf("\n--- paper reference ---\n");
  std::printf("Java1.5  12416 lines   78ms n=111 avg k 1.09 back k 3.95 "
              "max k 114\n");
  std::printf("RatsC    37019 lines  771ms n=131 avg k 1.88 back k 5.87 "
              "max k 7968\n");
  std::printf("RatsJava 12416 lines  412ms n=78  avg k 1.85 back k 5.95 "
              "max k 1313\n");
  std::printf("VB.NET    4649 lines  351ms n=166 avg k 1.07 back k 3.25 "
              "max k 12\n");
  std::printf("TSQL       794 lines   13ms n=309 avg k 1.08 back k 2.63 "
              "max k 20\n");
  std::printf("C#        3807 lines  524ms n=146 avg k 1.04 back k 1.60 "
              "max k 9\n");
  std::printf("\nShape check: avg k ~1-2 tokens; PEG-mode grammars have "
              "the largest max k.\n");
  return 0;
}
