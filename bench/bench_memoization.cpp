//===- bench/bench_memoization.cpp - Section 6.2 memoization ablation -----===//
//
// Reproduces the paper's Section 6.2 memoization observations:
//
//  1. "Without memoization, backtracking parsers are exponentially complex
//     in the worst case. The RatsC grammar appears not to terminate if we
//     turn off ANTLR memoization support." — we run a nested-backtracking
//     grammar over inputs of growing depth with memoization on and off
//     (the off runs under an invocation budget) and report the blow-up.
//
//  2. "The less we backtrack, the smaller the cache since ANTLR only
//     memoizes while speculating." — we report memo-cache traffic for the
//     LL(*) parser vs a pure packrat parser on the same input.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"
#include "peg/PackratParser.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace llstar;
using namespace llstar::bench;

namespace {

/// The textbook exponential PEG: `e : t '+' e | t` retries the whole of t
/// after failing to find '+', so every nesting level doubles the work
/// without memoization (cf. RatsC "appears not to terminate", paper 6.2).
const char *NestedGrammarText = R"(
grammar Nested;
options { backtrack=true; }
s : e EOF ;
e : t '+' e | t ;
t : '(' e ')' | ID ;
ID : [a-z]+ ;
WS : [ \t\r\n]+ -> skip ;
)";

std::string nestedInput(int Depth) {
  std::string S;
  for (int I = 0; I < Depth; ++I)
    S += "(";
  S += "x";
  for (int I = 0; I < Depth; ++I)
    S += ")";
  return S; // no '+' anywhere: alternative one always fails at the top
}

} // namespace

int main() {
  std::printf("=== Memoization ablation (paper Section 6.2) ===\n\n");
  std::printf("Part 1: packrat parser on nested input, memoize on vs off\n");
  std::printf("%-6s %14s %14s %16s %16s\n", "depth", "invoc(memo)",
              "invoc(none)", "time(memo)", "time(none)");

  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(NestedGrammarText, Diags);
  if (!AG) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return 1;
  }
  DiagnosticEngine LexDiags;
  Lexer L(AG->grammar().lexerSpec(), LexDiags);

  for (int Depth : {4, 8, 12, 16, 20}) {
    std::string Input = nestedInput(Depth);
    DiagnosticEngine D1;
    TokenStream S1(L.tokenize(Input, D1));

    auto RunPackrat = [&](bool Memoize, int64_t &Invocations,
                          double &Seconds) {
      S1.seek(0);
      PackratParser::Options Opts;
      Opts.Memoize = Memoize;
      Opts.MaxRuleInvocations = 20 * 1000 * 1000; // budget for the off runs
      DiagnosticEngine PD;
      PackratParser P(AG->grammar(), S1, nullptr, PD, Opts);
      auto Start = std::chrono::steady_clock::now();
      P.parse("s");
      Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
      Invocations = P.stats().RuleInvocations;
      return P.ok();
    };

    int64_t MemoInvoc = 0, RawInvoc = 0;
    double MemoTime = 0, RawTime = 0;
    bool MemoOk = RunPackrat(true, MemoInvoc, MemoTime);
    bool RawOk = RunPackrat(false, RawInvoc, RawTime);
    std::printf("%-6d %14lld %14lld%s %13.3fms %13.3fms\n", Depth,
                (long long)MemoInvoc, (long long)RawInvoc,
                RawOk ? " " : "*", MemoTime * 1000, RawTime * 1000);
    (void)MemoOk;
  }
  std::printf("(* = invocation budget exhausted: the non-memoized parser "
              "is effectively non-terminating, as the paper observed for "
              "RatsC)\n\n");

  std::printf("Part 2: LL(*) memoizes only while speculating\n");
  std::printf("%-10s %12s %12s %12s %14s\n", "parser", "synpreds",
              "memo hits", "memo misses", "alt attempts");

  PreparedGrammar P = PreparedGrammar::prepare(benchGrammar("RatsC"));
  std::string Input = generateC(150, 7);
  {
    TokenStream Stream = P.tokenize(Input);
    DiagnosticEngine PD;
    LLStarParser Parser(*P.AG, Stream, &P.Env, PD);
    if (!P.runParse(Stream, Parser)) {
      std::fprintf(stderr, "LL(*) parse failed:\n%s\n", PD.str().c_str());
      return 1;
    }
    std::printf("%-10s %12lld %12lld %12lld %14s\n", "LL(*)",
                (long long)Parser.stats().SynPredEvals,
                (long long)Parser.stats().MemoHits,
                (long long)Parser.stats().MemoMisses, "-");
  }
  {
    TokenStream Stream = P.tokenize(Input);
    DiagnosticEngine PD;
    PackratParser::Options Opts;
    PackratParser Packrat(P.AG->grammar(), Stream, &P.Env, PD, Opts);
    // Bind the type-name predicate for the packrat run too.
    P.CurrentStream = &Stream;
    Packrat.parse("translationUnit");
    P.CurrentStream = nullptr;
    std::printf("%-10s %12s %12lld %12lld %14lld\n", "packrat", "-",
                (long long)Packrat.stats().MemoHits,
                (long long)Packrat.stats().MemoMisses,
                (long long)Packrat.stats().AltAttempts);
  }
  std::printf("\nShape check: the LL(*) cache stays far smaller than the "
              "packrat cache because most decisions never speculate "
              "(paper: 'the less we backtrack, the smaller the cache').\n");
  return 0;
}
