//===- bench/bench_backends.cpp - llstar vs llfinite analysis -------------===//
//
// Compares the two prediction-analysis backends (src/analysis/backend/)
// across every shipped grammar (grammars/*.g) and the whole fuzz corpus
// (tests/corpus/*.g). For each grammar and each backend it reports the
// static shape of the decision tables — total DFA states, backtrack-free
// decision count, fixed-lookahead k histogram, max/mean k — plus best-of-N
// wall-clock analysis time and, for llfinite, how many decisions exceeded
// the MaxFiniteK cap and were rebuilt with the llstar construction.
//
// `--json FILE` records the results; BENCH_backends.json at the repo root
// is a committed baseline (regenerate with:
//   ./build/bench/bench_backends --json BENCH_backends.json).
//
//   bench_backends [--repeat N] [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

// Shipped grammars first, then the fuzz corpus, each sorted by name.
std::vector<std::filesystem::path> grammarFiles() {
  std::vector<std::filesystem::path> Files;
  for (const char *Dir : {"grammars", "tests/corpus"}) {
    std::vector<std::filesystem::path> Group;
    auto Root = std::filesystem::path(LLSTAR_SOURCE_DIR) / Dir;
    for (const auto &Entry : std::filesystem::directory_iterator(Root))
      if (Entry.path().extension() == ".g")
        Group.push_back(Entry.path());
    std::sort(Group.begin(), Group.end());
    Files.insert(Files.end(), Group.begin(), Group.end());
  }
  return Files;
}

/// One backend's view of one grammar.
struct BackendReport {
  StaticStats Stats;
  double AnalysisSecs = 0; ///< best-of-N, re-analyzing from grammar text
};

struct GrammarRow {
  std::string Name;
  std::string File; ///< repo-relative path
  BackendReport Star, Finite;
};

bool runBackend(const std::string &Text, BackendKind Backend, int Repeat,
                BackendReport &R, std::string &Err) {
  double Best = 1e9;
  for (int Rep = 0; Rep < Repeat; ++Rep) {
    DiagnosticEngine Diags;
    double T0 = now();
    auto AG = analyzeGrammarText(Text, Diags, Backend);
    Best = std::min(Best, now() - T0);
    if (!AG || Diags.hasErrors()) {
      Err = Diags.str();
      return false;
    }
    if (Rep == 0)
      R.Stats = AG->stats();
  }
  R.AnalysisSecs = Best;
  return true;
}

std::string histJson(const std::map<int32_t, int32_t> &Hist) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, N] : Hist) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "\"" + std::to_string(K) + "\": " + std::to_string(N);
  }
  return Out + "}";
}

std::string backendJson(const BackendReport &R) {
  const StaticStats &S = R.Stats;
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "{\"decisions\": %d, \"dfaStates\": %lld, "
                "\"backtrackFree\": %d, \"fixed\": %d, \"cyclic\": %d, "
                "\"backtrack\": %d, \"maxK\": %d, \"meanK\": %.2f, "
                "\"capExceeded\": %d, \"analysisSecs\": %.6f, "
                "\"kHistogram\": ",
                S.NumDecisions, (long long)S.TotalDfaStates, S.BacktrackFree,
                S.NumFixed, S.NumCyclic, S.NumBacktrack, S.MaxK, S.MeanK,
                S.CapExceeded, R.AnalysisSecs);
  return std::string(Buf) + histJson(S.FixedKHistogram) + "}";
}

} // namespace

int main(int Argc, char **Argv) {
  int Repeat = 5;
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--repeat") && I + 1 < Argc)
      Repeat = std::atoi(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_backends [--repeat N] [--json FILE]\n");
      return 2;
    }
  }

  std::vector<GrammarRow> Rows;
  std::printf("prediction-analysis backends: llstar vs llfinite, "
              "best of %d\n\n",
              Repeat);
  std::printf("%-10s %5s | %7s %6s %4s %5s | %7s %6s %4s %5s %4s | %7s\n",
              "grammar", "dec", "st-dfa", "st-bf", "st-k", "st-ms", "fi-dfa",
              "fi-bf", "fi-k", "fi-ms", "cap", "dfa-x");

  for (const std::filesystem::path &Path : grammarFiles()) {
    std::string Text = readFile(Path);
    GrammarRow Row;
    Row.File = std::filesystem::relative(Path, LLSTAR_SOURCE_DIR).string();

    std::string Err;
    if (!runBackend(Text, BackendKind::LLStar, Repeat, Row.Star, Err) ||
        !runBackend(Text, BackendKind::LLFinite, Repeat, Row.Finite, Err)) {
      std::fprintf(stderr, "grammar %s failed to analyze:\n%s",
                   Row.File.c_str(), Err.c_str());
      return 1;
    }
    Row.Name = Path.stem().string();

    double DfaRatio = Row.Star.Stats.TotalDfaStates
                          ? double(Row.Finite.Stats.TotalDfaStates) /
                                double(Row.Star.Stats.TotalDfaStates)
                          : 1.0;
    std::printf(
        "%-10s %5d | %7lld %6d %4d %5.1f | %7lld %6d %4d %5.1f %4d | "
        "%6.2fx\n",
        Row.Name.c_str(), Row.Star.Stats.NumDecisions,
        (long long)Row.Star.Stats.TotalDfaStates, Row.Star.Stats.BacktrackFree,
        Row.Star.Stats.MaxK, Row.Star.AnalysisSecs * 1e3,
        (long long)Row.Finite.Stats.TotalDfaStates,
        Row.Finite.Stats.BacktrackFree, Row.Finite.Stats.MaxK,
        Row.Finite.AnalysisSecs * 1e3, Row.Finite.Stats.CapExceeded, DfaRatio);
    Rows.push_back(std::move(Row));
  }

  // Aggregates over the whole set (the numbers README quotes).
  StaticStats TotStar, TotFinite;
  double SecsStar = 0, SecsFinite = 0;
  for (const GrammarRow &R : Rows) {
    auto Add = [](StaticStats &T, const StaticStats &S) {
      T.NumDecisions += S.NumDecisions;
      T.TotalDfaStates += S.TotalDfaStates;
      T.BacktrackFree += S.BacktrackFree;
      T.MaxK = std::max(T.MaxK, S.MaxK);
      T.CapExceeded += S.CapExceeded;
    };
    Add(TotStar, R.Star.Stats);
    Add(TotFinite, R.Finite.Stats);
    SecsStar += R.Star.AnalysisSecs;
    SecsFinite += R.Finite.AnalysisSecs;
  }
  std::printf("\ntotal: %zu grammars, %d decisions\n", Rows.size(),
              TotStar.NumDecisions);
  std::printf("  llstar:   %6lld DFA states, %4d backtrack-free, max k %2d, "
              "%.1f ms\n",
              (long long)TotStar.TotalDfaStates, TotStar.BacktrackFree,
              TotStar.MaxK, SecsStar * 1e3);
  std::printf("  llfinite: %6lld DFA states, %4d backtrack-free, max k %2d, "
              "%.1f ms, %d decisions past cap\n",
              (long long)TotFinite.TotalDfaStates, TotFinite.BacktrackFree,
              TotFinite.MaxK, SecsFinite * 1e3, TotFinite.CapExceeded);

  if (!JsonPath.empty()) {
    std::string Out = "{\n  \"repeat\": " + std::to_string(Repeat) +
                      ",\n  \"grammars\": [\n";
    for (size_t G = 0; G < Rows.size(); ++G) {
      const GrammarRow &R = Rows[G];
      Out += "    {\"name\": \"" + R.Name + "\", \"file\": \"" + R.File +
             "\",\n     \"llstar\": " + backendJson(R.Star) +
             ",\n     \"llfinite\": " + backendJson(R.Finite);
      Out += G + 1 < Rows.size() ? "},\n" : "}\n";
    }
    Out += "  ]\n}\n";
    std::ofstream F(JsonPath);
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    F << Out;
    std::printf("\nwrote %s\n", JsonPath.c_str());
  }
  return 0;
}
