//===- bench/bench_table4_backtracking.cpp - Paper Table 4 ----------------===//
//
// Regenerates paper Table 4, "Parser decision backtracking behavior": the
// number of decisions that *can* backtrack (static, = Table 1's Backtrack
// column), how many of those *did* backtrack on the sample input, the
// total number of decision events, the fraction of events that
// backtracked, and the backtrack rate — the likelihood that a potentially
// backtracking decision actually backtracks when triggered.
//
// Expected shape (paper): parsers backtrack in only a few percent of
// decision events (PEG-mode grammars the most, up to ~17%); potentially
// backtracking decisions trigger speculation well under half the time for
// hand-tuned grammars.
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"

#include <cstdio>

using namespace llstar;
using namespace llstar::bench;

namespace {

int workloadUnits(const std::string &Name) {
  if (Name == "Java" || Name == "RatsJava")
    return 120;
  if (Name == "RatsC")
    return 250;
  if (Name == "Basic" || Name == "Sql")
    return 900;
  return 100;
}

} // namespace

int main() {
  std::printf("=== Table 4: parser decision backtracking behavior ===\n");
  std::printf("%-10s %9s %9s %10s %10s %10s\n", "Grammar", "Can back.",
              "Did back.", "events", "Backtrack", "Back rate");

  for (const BenchGrammar &Spec : benchGrammars()) {
    PreparedGrammar P = PreparedGrammar::prepare(Spec);
    std::string Input = Spec.Workload(workloadUnits(Spec.Name), 20110604);
    TokenStream Stream = P.tokenize(Input);
    DiagnosticEngine Diags;
    LLStarParser Parser(*P.AG, Stream, &P.Env, Diags);
    if (!P.runParse(Stream, Parser)) {
      std::fprintf(stderr, "grammar %s: workload failed:\n%s\n", Spec.Name,
                   Diags.str().c_str());
      return 1;
    }
    const ParserStats &S = Parser.stats();

    int64_t CanBacktrack = 0, DidBacktrack = 0;
    int64_t EventsAtPbd = 0, BacktrackEventsAtPbd = 0;
    for (size_t D = 0; D < P.AG->numDecisions(); ++D) {
      if (P.AG->dfa(int32_t(D)).decisionClass() != DecisionClass::Backtrack)
        continue;
      ++CanBacktrack;
      const DecisionStats &DS = S.Decisions[D];
      EventsAtPbd += DS.Events;
      BacktrackEventsAtPbd += DS.BacktrackEvents;
      if (DS.BacktrackEvents > 0)
        ++DidBacktrack;
    }

    std::printf("%-10s %9lld %9lld %10lld %9.2f%% %9.2f%%\n", Spec.Name,
                (long long)CanBacktrack, (long long)DidBacktrack,
                (long long)S.totalEvents(),
                100.0 * S.backtrackEventFraction(),
                EventsAtPbd ? 100.0 * BacktrackEventsAtPbd / EventsAtPbd
                            : 0.0);
  }

  std::printf("\n--- paper reference ---\n");
  std::printf("Java1.5  can 19 did 16 events 462975  backtrack  2.36%% "
              "rate 45.22%%\n");
  std::printf("RatsC    can 30 did 24 events 1343176 backtrack 16.85%% "
              "rate 65.27%%\n");
  std::printf("RatsJava can  8 did  7 events 628340  backtrack 14.07%% "
              "rate 74.68%%\n");
  std::printf("VB.NET   can  6 did  3 events 109257  backtrack  0.46%% "
              "rate 20.84%%\n");
  std::printf("TSQL     can 29 did 19 events 17394   backtrack  3.38%% "
              "rate 27.01%%\n");
  std::printf("C#       can 24 did 19 events 141055  backtrack  3.68%% "
              "rate 40.22%%\n");
  std::printf("\nShape check: events backtracked stays in the single-digit "
              "percents except PEG-mode grammars; not every potentially "
              "backtracking decision triggers.\n");
  return 0;
}
