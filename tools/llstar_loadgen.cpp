//===- tools/llstar_loadgen.cpp - llstard load generator ------------------===//
//
// The `llstar-loadgen` tool: drives an llstard daemon over the wire with
// pipelined parse requests from concurrent connections, and reports
// throughput plus p50/p90/p99 latency (optionally as JSON, the shape
// committed as BENCH_daemon.json).
//
//   llstar-loadgen <grammar.g> [options]
//
// Inputs are seeded sentences sampled from the grammar itself, so runs
// are reproducible. With --spawn the tool hosts an in-process Daemon on
// an ephemeral port — the same library code path as llstard — which is
// how the CI smoke test runs without process orchestration; --host/--port
// target an external daemon instead.
//
//===----------------------------------------------------------------------===//

#include "CompiledManifest.h"
#include "fuzz/FuzzRandom.h"
#include "fuzz/SentenceSampler.h"
#include "net/Daemon.h"
#include "net/LlstarClient.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace llstar;
using namespace llstar::net;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: llstar-loadgen <grammar.g> [options]\n"
      "  --spawn           host an in-process daemon on an ephemeral port\n"
      "  --host ADDR       daemon address (default 127.0.0.1)\n"
      "  --port N          daemon port (required unless --spawn)\n"
      "  --requests N      total parse requests (default 2000)\n"
      "  --connections C   concurrent client connections (default 4)\n"
      "  --pipeline P      max in-flight requests per connection (default 32)\n"
      "  --seed S          sentence-sampling seed (default 1)\n"
      "  --recover         issue ParseRecover instead of Parse\n"
      "  --trees           request parse trees\n"
      "  --threads N       daemon worker threads (--spawn only)\n"
      "  --compiled        daemon compiled fast path (--spawn only)\n"
      "  --edit-mix R      percent of each connection's requests issued as\n"
      "                    incremental Edit ops against a per-connection\n"
      "                    session (0-100, default 0) — exercises the\n"
      "                    daemon's stateful sessions under load\n"
      "  --json F          write the benchmark report JSON to F (- = stdout)\n"
      "  --stats-out F     after the run, fetch the daemon's merged\n"
      "                    per-decision parser stats and write them as a\n"
      "                    decision-keyed profile consumable by\n"
      "                    `llstar lint --profile F` (assumes the daemon\n"
      "                    served only this grammar, as --spawn does)\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

struct Options {
  std::string GrammarPath;
  bool Spawn = false;
  std::string Host = "127.0.0.1";
  int Port = 0;
  int64_t Requests = 2000;
  int Connections = 4;
  int Pipeline = 32;
  uint64_t Seed = 1;
  bool Recover = false;
  bool Trees = false;
  int Threads = 0;
  bool UseCompiled = false;
  int EditMix = 0; ///< percent of requests issued as Edit ops
  std::string JsonPath;
  std::string StatsOut;
};

/// --stats-out: re-keys the daemon's merged per-decision stats with the
/// locally analyzed grammar's stable DecisionKeys and writes the profile
/// wrapper `llstar lint --profile` consumes. The daemon reply is
/// index-keyed; decision numbering is deterministic for a given grammar
/// text, so the local analysis supplies identical indices.
bool writeStatsProfile(const std::string &Path, const GrammarBundle &Bundle,
                       const std::string &DaemonStatsJson) {
  json::Value Doc;
  std::string Err;
  if (!json::parse(DaemonStatsJson, Doc, &Err)) {
    std::fprintf(stderr, "error: bad daemon stats reply: %s\n", Err.c_str());
    return false;
  }
  const json::Value &P = Doc.has("parser") ? Doc.key("parser") : Doc;
  ParserStats S;
  S.SynPredEvals = P.key("synPredEvals").integer(0);
  S.MemoHits = P.key("memoHits").integer(0);
  S.MemoMisses = P.key("memoMisses").integer(0);
  S.TokensConsumed = P.key("tokensConsumed").integer(0);
  S.SyntaxErrors = P.key("syntaxErrors").integer(0);
  S.TokensDeleted = P.key("tokensDeleted").integer(0);
  S.TokensInserted = P.key("tokensInserted").integer(0);
  S.PanicSyncs = P.key("panicSyncs").integer(0);
  S.NodesReused = P.key("nodesReused").integer(0);
  S.TokensRelexed = P.key("tokensRelexed").integer(0);
  S.DecisionsReparsed = P.key("decisionsReparsed").integer(0);
  for (const json::Value &D : P.key("decisions").elements()) {
    int64_t Idx = D.key("decision").integer(-1);
    if (Idx < 0)
      continue;
    S.ensure(size_t(Idx) + 1);
    DecisionStats &DS = S.Decisions[size_t(Idx)];
    DS.Events = D.key("events").integer(0);
    DS.TotalK = D.key("totalK").integer(0);
    DS.MaxK = D.key("maxK").integer(0);
    DS.BacktrackEvents = D.key("backtrackEvents").integer(0);
    DS.BacktrackTotalK = D.key("backtrackTotalK").integer(0);
    size_t Bucket = 0;
    for (const json::Value &H : D.key("kHistogram").elements())
      if (Bucket < DS.KHist.size())
        DS.KHist[Bucket++] = H.integer(0);
    for (const json::Value &A : D.key("altEvents").elements())
      DS.AltEvents.push_back(A.integer(0));
  }
  std::vector<DecisionKey> Keys = Bundle.analyzed().decisionKeys();
  std::string Json = "{\"llstarProfile\":1,\"grammar\":\"" + Bundle.name() +
                     "\",\"stats\":" +
                     S.json(/*IncludeDecisions=*/true, &Keys,
                            Bundle.analyzed().backendName()) +
                     "}";
  if (Path == "-") {
    std::printf("%s\n", Json.c_str());
    return true;
  }
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Json << "\n";
  return true;
}

/// One connection-thread's share of the run.
struct WorkerReport {
  std::vector<double> LatenciesMs;
  std::map<std::string, int64_t> Statuses;
  int64_t Tokens = 0;
  std::string Error;
};

void runWorker(const Options &O, uint16_t Port, uint64_t BundleHash,
               const std::vector<std::string> &Inputs, size_t Begin,
               size_t End, WorkerReport &Report) {
  LlstarClient Client;
  std::string Err;
  if (!Client.connect(O.Host, Port, &Err)) {
    Report.Error = Err;
    return;
  }
  using Clock = std::chrono::steady_clock;
  std::unordered_map<uint64_t, Clock::time_point> SubmitAt;

  auto Collect = [&](bool &Ok) {
    wire::Message Reply;
    if (!Client.waitAny(Reply, &Err)) {
      Report.Error = Err;
      Ok = false;
      return;
    }
    auto It = SubmitAt.find(Reply.Hdr.RequestId);
    if (It != SubmitAt.end()) {
      Report.LatenciesMs.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - It->second)
              .count());
      SubmitAt.erase(It);
    }
    if (Reply.Hdr.Op == wire::Opcode::ErrorReply) {
      Report.Statuses[std::string("wire-") +
                      wire::wireErrorName(Reply.Error.Code)]++;
    } else {
      Report.Statuses[statusName(ParseStatus(Reply.Parse.Status))]++;
      Report.Tokens += Reply.Parse.NumTokens;
    }
  };

  // --edit-mix state: one incremental session per connection, with a
  // local shadow of its text so generated edit offsets stay in range.
  fuzz::FuzzRng Rng(fuzz::FuzzRng::mix(O.Seed, uint64_t(Begin) + 0xed17));
  std::string Shadow;
  bool SessionLive = false;
  auto EditOp = [&](size_t I, bool &Ok) {
    wire::EditArgs Args;
    Args.SessionId = 1;
    Args.BundleHash = BundleHash;
    Args.Mode = wire::EditModeRecover;
    Args.WantTree = O.Trees;
    if (!SessionLive) {
      Args.Action = wire::EditActionReset;
      Args.NewText = Inputs[I % Inputs.size()];
      Shadow = Args.NewText;
    } else {
      Args.Action = wire::EditActionApply;
      uint64_t Op = Rng.below(3);
      if (Op == 0 || Shadow.empty()) {
        Args.Offset = Rng.below(Shadow.size() + 1);
      } else {
        Args.Offset = Rng.below(Shadow.size());
        Args.OldLen = 1 + Rng.below(
            std::min<uint64_t>(4, Shadow.size() - Args.Offset));
      }
      if (Op != 1) {
        const std::string &Pool = Inputs[Rng.below(Inputs.size())];
        Args.NewText = Pool.empty() ? " " : " " + Pool.substr(
            0, 1 + Rng.below(std::min<size_t>(Pool.size(), 5)));
      }
      Shadow.replace(size_t(Args.Offset), size_t(Args.OldLen), Args.NewText);
    }
    auto T0 = Clock::now();
    wire::Message Reply;
    if (!Client.edit(Args, Reply, &Err)) {
      Report.Error = Err;
      Ok = false;
      return;
    }
    Report.LatenciesMs.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - T0).count());
    if (Reply.Hdr.Op == wire::Opcode::ErrorReply) {
      Report.Statuses[std::string("wire-") +
                      wire::wireErrorName(Reply.Error.Code)]++;
    } else {
      Report.Statuses[statusName(ParseStatus(Reply.Edit.Status))]++;
      Report.Tokens += Reply.Edit.NumTokens;
      SessionLive = true;
    }
  };

  bool Ok = true;
  for (size_t I = Begin; I < End && Ok; ++I) {
    if (O.EditMix > 0 && Rng.below(100) < uint64_t(O.EditMix)) {
      // Edit ops are synchronous RPCs (a session's edits are ordered);
      // pipelined parse replies arriving meanwhile are buffered by the
      // client and claimed by later Collect calls.
      EditOp(I, Ok);
      continue;
    }
    while (SubmitAt.size() >= size_t(O.Pipeline) && Ok)
      Collect(Ok);
    if (!Ok)
      break;
    wire::ParseArgs Args;
    Args.BundleHash = BundleHash;
    Args.WantTree = O.Trees;
    Args.Input = Inputs[I % Inputs.size()];
    uint64_t Id = Client.submitParse(Args, O.Recover, &Err);
    if (Id == 0) {
      Report.Error = Err;
      return;
    }
    SubmitAt[Id] = Clock::now();
  }
  while (!SubmitAt.empty() && Ok)
    Collect(Ok);
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Rank = P * double(Sorted.size() - 1);
  size_t Lo = size_t(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - double(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  Options O;

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Value = [&](int64_t &Out) {
      if (I + 1 >= Args.size())
        return false;
      Out = std::atoll(Args[++I].c_str());
      return true;
    };
    int64_t V;
    if (A == "--spawn")
      O.Spawn = true;
    else if (A == "--host" && I + 1 < Args.size())
      O.Host = Args[++I];
    else if (A == "--port" && Value(V))
      O.Port = int(V);
    else if (A == "--requests" && Value(V))
      O.Requests = std::max<int64_t>(V, 1);
    else if (A == "--connections" && Value(V))
      O.Connections = int(std::max<int64_t>(V, 1));
    else if (A == "--pipeline" && Value(V))
      O.Pipeline = int(std::max<int64_t>(V, 1));
    else if (A == "--seed" && Value(V))
      O.Seed = uint64_t(V);
    else if (A == "--recover")
      O.Recover = true;
    else if (A == "--trees")
      O.Trees = true;
    else if (A == "--threads" && Value(V))
      O.Threads = int(V);
    else if (A == "--compiled")
      O.UseCompiled = true;
    else if (A == "--edit-mix" && Value(V))
      O.EditMix = int(std::clamp<int64_t>(V, 0, 100));
    else if (A == "--json" && I + 1 < Args.size())
      O.JsonPath = Args[++I];
    else if (A == "--stats-out" && I + 1 < Args.size())
      O.StatsOut = Args[++I];
    else if (!A.empty() && A[0] == '-' && A != "-")
      return usage();
    else if (O.GrammarPath.empty())
      O.GrammarPath = A;
    else
      return usage();
  }
  if (O.GrammarPath.empty() || (!O.Spawn && O.Port == 0))
    return usage();

  std::string GrammarBytes;
  if (!readFile(O.GrammarPath, GrammarBytes)) {
    std::fprintf(stderr, "error: cannot read %s\n", O.GrammarPath.c_str());
    return 1;
  }

  // Sample the workload locally (sentences need rule bodies, so the
  // grammar must be .g source, not a compiled bundle).
  std::vector<std::string> Inputs;
  std::string GrammarName;
  std::shared_ptr<const GrammarBundle> LocalBundle;
  {
    DiagnosticEngine Diags;
    auto Bundle = makeGrammarBundle(GrammarBytes, Diags);
    if (!Bundle) {
      std::fprintf(stderr, "error: failed to load %s\n%s",
                   O.GrammarPath.c_str(), Diags.str().c_str());
      return 1;
    }
    GrammarName = Bundle->name();
    LocalBundle = Bundle;
    const Grammar &G = Bundle->grammar();
    if (G.numRules() == 0 || G.rule(0).Alts.empty()) {
      std::fprintf(stderr,
                   "error: %s has no rule bodies to sample from; "
                   "the load generator needs a .g source grammar\n",
                   GrammarName.c_str());
      return 2;
    }
    fuzz::SentenceSampler Sampler(G, O.Seed);
    size_t Distinct = std::min<size_t>(size_t(O.Requests), 512);
    for (size_t I = 0; I < Distinct; ++I)
      Inputs.push_back(fuzz::SentenceSampler::render(Sampler.sample()));
  }

  std::unique_ptr<Daemon> Local;
  uint16_t Port = uint16_t(O.Port);
  if (O.Spawn) {
    DaemonConfig Config;
    Config.Service.Threads = O.Threads;
    Config.Service.UseCompiled = O.UseCompiled;
    if (O.UseCompiled)
      compiled::registerShippedGrammars();
    Local = std::make_unique<Daemon>(Config);
    std::string Error;
    if (!Local->start(&Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    Port = Local->port();
  }

  // One control connection loads the bundle; workers address it by hash.
  uint64_t BundleHash = 0;
  int DaemonThreads = 0;
  {
    LlstarClient Control;
    std::string Err;
    wire::LoadBundleReply Loaded;
    if (!Control.connect(O.Host, Port, &Err) ||
        !Control.loadBundle(GrammarBytes, Loaded, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    BundleHash = Loaded.Hash;
    std::string StatsJson;
    if (Control.stats(false, StatsJson, &Err)) {
      // Cheap extraction; the stats JSON is flat.
      size_t At = StatsJson.find("\"threads\":");
      if (At != std::string::npos)
        DaemonThreads = std::atoi(StatsJson.c_str() + At + 10);
    }
  }

  std::vector<WorkerReport> Reports(size_t(O.Connections));
  std::vector<std::thread> Threads;
  size_t PerConn = size_t(O.Requests) / size_t(O.Connections);
  size_t Extra = size_t(O.Requests) % size_t(O.Connections);
  auto Start = std::chrono::steady_clock::now();
  size_t Begin = 0;
  for (int C = 0; C < O.Connections; ++C) {
    size_t Count = PerConn + (size_t(C) < Extra ? 1 : 0);
    size_t End = Begin + Count;
    Threads.emplace_back([&, C, Begin, End] {
      runWorker(O, Port, BundleHash, Inputs, Begin, End, Reports[size_t(C)]);
    });
    Begin = End;
  }
  for (std::thread &T : Threads)
    T.join();
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  // Harvest the daemon-side merged profile before shutting anything down:
  // drain first so every in-flight parse has folded its worker stats into
  // the service metrics the Stats reply snapshots.
  if (!O.StatsOut.empty()) {
    // Connect before draining (a draining daemon refuses new connections),
    // then drain over the wire so the snapshot includes every in-flight
    // parse, then fetch. Works identically against --spawn and external
    // daemons.
    LlstarClient Control;
    std::string Err, StatsJson;
    if (!Control.connect(O.Host, Port, &Err) || !Control.drain(&Err) ||
        !Control.stats(/*IncludeDecisions=*/true, StatsJson, &Err)) {
      std::fprintf(stderr, "error: stats fetch failed: %s\n", Err.c_str());
      return 1;
    }
    if (!writeStatsProfile(O.StatsOut, *LocalBundle, StatsJson))
      return 1;
  }

  if (Local) {
    Local->drain();
    Local->stop();
  }

  std::vector<double> Latencies;
  std::map<std::string, int64_t> Statuses;
  int64_t Tokens = 0;
  for (const WorkerReport &R : Reports) {
    if (!R.Error.empty()) {
      std::fprintf(stderr, "error: worker failed: %s\n", R.Error.c_str());
      return 1;
    }
    Latencies.insert(Latencies.end(), R.LatenciesMs.begin(),
                     R.LatenciesMs.end());
    for (const auto &KV : R.Statuses)
      Statuses[KV.first] += KV.second;
    Tokens += R.Tokens;
  }
  std::sort(Latencies.begin(), Latencies.end());
  double Mean = 0;
  for (double L : Latencies)
    Mean += L;
  if (!Latencies.empty())
    Mean /= double(Latencies.size());
  double P50 = percentile(Latencies, 0.50);
  double P90 = percentile(Latencies, 0.90);
  double P99 = percentile(Latencies, 0.99);

  std::printf("loadgen: %lld requests over %d connections (pipeline %d) "
              "in %.3fs — %.0f req/s, %.0f tokens/s\n",
              (long long)Latencies.size(), O.Connections, O.Pipeline, Seconds,
              Seconds > 0 ? double(Latencies.size()) / Seconds : 0,
              Seconds > 0 ? double(Tokens) / Seconds : 0);
  std::printf("latency ms: mean %.3f  p50 %.3f  p90 %.3f  p99 %.3f\n", Mean,
              P50, P90, P99);
  for (const auto &KV : Statuses)
    std::printf("  %-18s %lld\n", KV.first.c_str(), (long long)KV.second);

  if (!O.JsonPath.empty()) {
    std::ostringstream Json;
    Json << "{\"benchmark\":\"llstar-loadgen\",\"grammar\":\"" << GrammarName
         << "\",\"requests\":" << Latencies.size()
         << ",\"connections\":" << O.Connections
         << ",\"pipeline\":" << O.Pipeline
         << ",\"daemonThreads\":" << DaemonThreads
         << ",\"compiled\":" << (O.UseCompiled ? "true" : "false")
         << ",\"recover\":" << (O.Recover ? "true" : "false")
         << ",\"editMix\":" << O.EditMix
         << ",\"seconds\":" << Seconds << ",\"requestsPerSec\":"
         << (Seconds > 0 ? double(Latencies.size()) / Seconds : 0)
         << ",\"tokensPerSec\":"
         << (Seconds > 0 ? double(Tokens) / Seconds : 0)
         << ",\"tokens\":" << Tokens << ",\"latencyMs\":{\"mean\":" << Mean
         << ",\"p50\":" << P50 << ",\"p90\":" << P90 << ",\"p99\":" << P99
         << "},\"statuses\":{";
    bool First = true;
    for (const auto &KV : Statuses) {
      if (!First)
        Json << ",";
      First = false;
      Json << "\"" << KV.first << "\":" << KV.second;
    }
    Json << "}}";
    if (O.JsonPath == "-") {
      std::printf("%s\n", Json.str().c_str());
    } else {
      std::ofstream Out(O.JsonPath);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n", O.JsonPath.c_str());
        return 1;
      }
      Out << Json.str() << "\n";
    }
  }

  // Any wire-level error or unexpected parse status is a failure.
  for (const auto &KV : Statuses)
    if (KV.first != "ok" && KV.first != "recovered" &&
        KV.first != "syntax-error")
      return 1;
  return 0;
}
