//===- tools/llstard.cpp - Networked parse daemon -------------------------===//
//
// The `llstard` daemon: the ParseService behind a TCP socket speaking the
// record-marked binary protocol of net/WireFormat.h.
//
//   llstard [grammar.g|bundle.llb ...] [options]
//
// Grammars named on the command line are preloaded into the bundle cache
// (the last one becomes the default for requests with bundle hash 0);
// clients can load more over the wire with the LoadBundle opcode. SIGTERM
// and SIGINT trigger a graceful drain: in-flight requests finish and
// their replies flush before the listener goes down.
//
//===----------------------------------------------------------------------===//

#include "CompiledManifest.h"
#include "net/Daemon.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/select.h>
#include <unistd.h>
#include <vector>

using namespace llstar;
using namespace llstar::net;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: llstard [grammar.g|bundle.llb ...] [options]\n"
      "  --bind ADDR       address to bind (default 127.0.0.1)\n"
      "  --port N          TCP port (default 0 = ephemeral)\n"
      "  --port-file F     write the bound port to F (for port 0)\n"
      "  --threads N       parse worker threads (default: hardware)\n"
      "  --queue N         service queue capacity (default 1024)\n"
      "  --deadline-ms D   default per-request parse deadline\n"
      "  --max-tokens N    reject inputs longer than N tokens\n"
      "  --max-inflight N  per-connection pipeline cap (default 256)\n"
      "  --compiled        parse with the compiled fast path\n"
      "  --backend NAME    prediction-analysis backend for .g grammars\n"
      "                    (llstar or llfinite; default llstar — .llb\n"
      "                    bundles carry their backend in the header)\n"
      "  --once-drained    exit once a client sends the Drain opcode\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

// Signal handlers may only do async-signal-safe work: write a byte to a
// self-pipe and let main() do the actual drain.
int SignalPipe[2] = {-1, -1};

void onSignal(int) {
  char Byte = 1;
  ssize_t Ignored = ::write(SignalPipe[1], &Byte, 1);
  (void)Ignored;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);

  DaemonConfig Config;
  std::vector<std::string> GrammarPaths;
  std::string PortFile;
  bool OnceDrained = false;

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Value = [&](int64_t &Out) {
      if (I + 1 >= Args.size())
        return false;
      Out = std::atoll(Args[++I].c_str());
      return true;
    };
    int64_t V;
    if (A == "--bind" && I + 1 < Args.size())
      Config.BindAddress = Args[++I];
    else if (A == "--port" && Value(V))
      Config.Port = uint16_t(V);
    else if (A == "--port-file" && I + 1 < Args.size())
      PortFile = Args[++I];
    else if (A == "--threads" && Value(V))
      Config.Service.Threads = int(V);
    else if (A == "--queue" && Value(V))
      Config.Service.QueueCapacity = size_t(std::max<int64_t>(V, 1));
    else if (A == "--deadline-ms" && Value(V))
      Config.Service.DefaultDeadline = std::chrono::milliseconds(V);
    else if (A == "--max-tokens" && Value(V))
      Config.Service.MaxTokens = V;
    else if (A == "--max-inflight" && Value(V))
      Config.MaxInFlightPerConn = size_t(std::max<int64_t>(V, 1));
    else if (A == "--compiled")
      Config.Service.UseCompiled = true;
    else if (A == "--backend" && I + 1 < Args.size()) {
      const AnalysisBackend *B = findAnalysisBackend(Args[++I]);
      if (!B) {
        std::fprintf(stderr, "error: unknown backend '%s' (valid: %s)\n",
                     Args[I].c_str(), analysisBackendNames());
        return 2;
      }
      Config.Backend = B->kind();
    } else if (A == "--once-drained")
      OnceDrained = true;
    else if (!A.empty() && A[0] == '-')
      return usage();
    else
      GrammarPaths.push_back(A);
  }

  if (Config.Service.UseCompiled)
    compiled::registerShippedGrammars();

  Daemon Server(Config);

  for (const std::string &Path : GrammarPaths) {
    std::string Bytes;
    if (!readFile(Path, Bytes)) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return 1;
    }
    DiagnosticEngine Diags;
    auto Bundle = Server.loadBundleBytes(Bytes, Diags);
    if (!Bundle) {
      std::fprintf(stderr, "error: failed to load %s\n%s", Path.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    std::fprintf(stderr, "llstard: loaded %s (hash %llu) from %s\n",
                 Bundle->name().c_str(),
                 (unsigned long long)Bundle->contentHash(), Path.c_str());
  }

  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr, "llstard: listening on %s:%u (%d worker threads)\n",
               Config.BindAddress.c_str(), unsigned(Server.port()),
               Server.service().threads());

  if (!PortFile.empty()) {
    std::ofstream Out(PortFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", PortFile.c_str());
      return 1;
    }
    Out << Server.port() << "\n";
  }

  if (::pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "error: pipe failed\n");
    return 1;
  }
  struct sigaction Sa {};
  Sa.sa_handler = onSignal;
  sigemptyset(&Sa.sa_mask);
  sigaction(SIGTERM, &Sa, nullptr);
  sigaction(SIGINT, &Sa, nullptr);

  // Block until a signal arrives (or, with --once-drained, a client asks
  // for the drain — poll the flag so CI scripts can shut the daemon down
  // over the wire without process signalling).
  if (OnceDrained) {
    timeval Tv;
    while (!Server.draining()) {
      fd_set Fds;
      FD_ZERO(&Fds);
      FD_SET(SignalPipe[0], &Fds);
      Tv.tv_sec = 0;
      Tv.tv_usec = 50 * 1000;
      int N = ::select(SignalPipe[0] + 1, &Fds, nullptr, nullptr, &Tv);
      if (N > 0)
        break;
    }
  } else {
    char Byte;
    ssize_t Ignored = ::read(SignalPipe[0], &Byte, 1);
    (void)Ignored;
  }

  std::fprintf(stderr, "llstard: draining...\n");
  Server.drain();
  Server.stop();
  std::fprintf(stderr, "llstard: stopped\n");
  return 0;
}
