//===- tools/llstar_batch.cpp - Batch parsing driver ----------------------===//
//
// The `llstar-batch` tool: parse many inputs concurrently through the
// ParseService, with shared grammar bundles, per-request deadlines, token
// limits, and merged JSON metrics.
//
//   llstar-batch <grammar.g|bundle.llb|dir> [inputs...] [options]
//
// Inputs are files, directories (every regular file inside, recursively),
// or @manifest files listing one input path per line. With --sample N no
// inputs are read: N sentences per grammar are derived from the grammar
// itself with a seeded sampler — the multi-threaded fuzz-replay mode CI
// runs under ThreadSanitizer. When the grammar argument is a directory
// (sample mode only), every *.g / *.llb inside becomes a bundle.
//
//===----------------------------------------------------------------------===//

#include "CompiledManifest.h"
#include "fuzz/SentenceSampler.h"
#include "incremental/IncrementalSession.h"
#include "service/ParseService.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;
namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: llstar-batch <grammar.g|bundle.llb|dir> [inputs...] [options]\n"
      "  inputs: files, directories (recursed), or @manifest list files\n"
      "  --sample N        derive N seeded sentences per grammar instead of\n"
      "                    reading inputs (grammar may then be a directory)\n"
      "  --seed S          sentence-sampling seed (default 1)\n"
      "  --threads N       worker threads (default: hardware concurrency)\n"
      "  --deadline-ms D   per-request parse deadline\n"
      "  --max-tokens N    reject inputs longer than N tokens\n"
      "  --queue N         request-queue capacity (default 1024)\n"
      "  --start RULE      start rule (default: the grammar's first rule)\n"
      "  --trees           request parse trees (printed unless --quiet)\n"
      "  --recover         parse with error recovery: syntax errors come\n"
      "                    back as partial trees (status `recovered`, not\n"
      "                    failures)\n"
      "  --compiled        parse with the compiled fast path (checked-in\n"
      "                    dense-table modules when available; identical\n"
      "                    results, higher throughput)\n"
      "  --backend NAME    prediction-analysis backend for .g grammars\n"
      "                    (llstar or llfinite; default llstar — .llb\n"
      "                    bundles carry their backend in the header)\n"
      "  --json-metrics F  write merged service metrics JSON to F (- = stdout)\n"
      "  --stats-out F     write a decision-keyed parse profile to F, the\n"
      "                    merged ParserStats of every worker with stable\n"
      "                    (rule, decisionInRule) identities, consumable by\n"
      "                    `llstar lint --profile F` (single grammar only)\n"
      "  --edit-script F   incremental mode: replay the JSON edit trace F\n"
      "                    against one incremental session (single .g\n"
      "                    grammar; inputs come from the trace, not operands).\n"
      "                    Prints per-batch timing plus reuse counters;\n"
      "                    --json-metrics then reports the session's parser\n"
      "                    stats (nodesReused / tokensRelexed /\n"
      "                    decisionsReparsed included)\n"
      "  --no-reuse        edit-script mode: full reparse per edit (baseline)\n"
      "  --arena           edit-script mode: arena parse trees\n"
      "  --quiet           per-input lines off; summary only\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

/// Expands one command-line input operand into concrete file paths.
bool expandInput(const std::string &Operand, std::vector<std::string> &Paths) {
  if (!Operand.empty() && Operand[0] == '@') {
    std::ifstream In(Operand.substr(1));
    if (!In) {
      std::fprintf(stderr, "error: cannot read manifest %s\n",
                   Operand.c_str() + 1);
      return false;
    }
    std::string Line;
    while (std::getline(In, Line)) {
      while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
        Line.pop_back();
      if (!Line.empty() && Line[0] != '#')
        Paths.push_back(Line);
    }
    return true;
  }
  std::error_code Ec;
  if (fs::is_directory(Operand, Ec)) {
    for (const auto &Entry : fs::recursive_directory_iterator(Operand, Ec))
      if (Entry.is_regular_file())
        Paths.push_back(Entry.path().string());
    return true;
  }
  Paths.push_back(Operand);
  return true;
}

struct Options {
  std::string GrammarArg;
  std::vector<std::string> InputOperands;
  BackendKind Backend = BackendKind::LLStar;
  int Sample = 0;
  uint64_t Seed = 1;
  int Threads = 0;
  int64_t DeadlineMs = 0;
  int64_t MaxTokens = 0;
  size_t Queue = 1024;
  std::string StartRule;
  bool Trees = false;
  bool Recover = false;
  bool UseCompiled = false;
  std::string JsonMetrics;
  std::string StatsOut;
  std::string EditScriptPath;
  bool NoReuse = false;
  bool UseArena = false;
  bool Quiet = false;
};

/// Writes a decision-keyed parse profile: the profile wrapper object with
/// the grammar name and the merged ParserStats, each per-decision entry
/// tagged (rule, decisionInRule, line, column) so `llstar lint --profile`
/// can join it to a re-analyzed grammar by identity, not index.
bool writeProfile(const std::string &Path, const GrammarBundle &Bundle,
                  const ParserStats &Stats) {
  std::vector<DecisionKey> Keys = Bundle.analyzed().decisionKeys();
  std::string Json = "{\"llstarProfile\":1,\"grammar\":\"" + Bundle.name() +
                     "\",\"stats\":" +
                     Stats.json(/*IncludeDecisions=*/true, &Keys,
                                Bundle.analyzed().backendName()) +
                     "}";
  if (Path == "-") {
    std::printf("%s\n", Json.c_str());
    return true;
  }
  std::ofstream Out(Path, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Json << "\n";
  return true;
}

/// --edit-script: replay a JSON edit trace against one incremental session
/// and report per-batch cost plus the session's reuse counters.
int runEditScript(std::shared_ptr<const GrammarBundle> Bundle,
                  const Options &O) {
  std::string TraceText;
  if (!readFile(O.EditScriptPath, TraceText)) {
    std::fprintf(stderr, "error: cannot read %s\n", O.EditScriptPath.c_str());
    return 1;
  }
  incremental::EditScriptParseResult Parsed =
      incremental::parseEditScript(TraceText);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s: invalid edit script (%s): %s\n",
                 O.EditScriptPath.c_str(),
                 incremental::editScriptErrorName(Parsed.Error),
                 Parsed.Message.c_str());
    return 2;
  }

  incremental::SessionOptions SO;
  SO.Recover = O.Recover;
  SO.UseCompiled = O.UseCompiled;
  SO.UseArena = O.UseArena;
  SO.Reuse = !O.NoReuse;
  SO.StartRule = O.StartRule;
  incremental::IncrementalSession Session(Bundle, SO);

  auto StatusName = [&](const incremental::EditOutcome &R) {
    if (R.ParseOk)
      return "ok";
    return O.Recover && R.TreeNodes > 0 ? "recovered" : "failed";
  };

  int64_t Failed = 0;
  incremental::EditOutcome R = Session.reset(Parsed.Script.Initial);
  if (!R.ParseOk && !O.Recover)
    ++Failed;
  if (!O.Quiet)
    std::printf("%-10s %-10s %7lld tokens %9.3f ms\n", "initial",
                StatusName(R), (long long)R.NumTokens, R.Millis);
  for (size_t B = 0; B < Parsed.Script.Batches.size(); ++B) {
    R = Session.applyBatch(Parsed.Script.Batches[B]);
    if (R.Error != incremental::EditScriptError::None) {
      // parseEditScript validates shape; only out-of-range offsets against
      // the *evolving* text can surface here.
      std::fprintf(stderr, "error: batch %zu rejected at apply time (%s)\n",
                   B, incremental::editScriptErrorName(R.Error));
      return 2;
    }
    if (!R.ParseOk && !O.Recover)
      ++Failed;
    if (!O.Quiet)
      std::printf("batch %-4zu %-10s %7lld tokens %9.3f ms  "
                  "%lld reused, %lld relexed, %lld decisions\n",
                  B, StatusName(R), (long long)R.NumTokens, R.Millis,
                  (long long)R.NodesReused, (long long)R.TokensRelexed,
                  (long long)R.DecisionsReparsed);
    if (O.Trees && !O.Quiet)
      std::printf("  %s\n", Session.treeText().c_str());
  }

  const ParserStats &S = Session.stats();
  std::printf("edit-script: %zu batches on %s, %lld failed; %lld subtrees "
              "reused, %lld tokens relexed, %lld decisions reparsed\n",
              Parsed.Script.Batches.size(), Bundle->name().c_str(),
              (long long)Failed, (long long)S.NodesReused,
              (long long)S.TokensRelexed, (long long)S.DecisionsReparsed);

  if (!O.JsonMetrics.empty()) {
    std::vector<DecisionKey> Keys = Bundle->analyzed().decisionKeys();
    std::string Json = S.json(/*IncludeDecisions=*/true, &Keys);
    if (O.JsonMetrics == "-") {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(O.JsonMetrics);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     O.JsonMetrics.c_str());
        return 1;
      }
      Out << Json << "\n";
    }
  }
  if (!O.StatsOut.empty() && !writeProfile(O.StatsOut, *Bundle, S))
    return 1;
  return Failed == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  Options O;

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Value = [&](int64_t &Out) {
      if (I + 1 >= Args.size())
        return false;
      Out = std::atoll(Args[++I].c_str());
      return true;
    };
    int64_t V;
    if (A == "--sample" && Value(V))
      O.Sample = int(V);
    else if (A == "--seed" && Value(V))
      O.Seed = uint64_t(V);
    else if (A == "--threads" && Value(V))
      O.Threads = int(V);
    else if (A == "--deadline-ms" && Value(V))
      O.DeadlineMs = V;
    else if (A == "--max-tokens" && Value(V))
      O.MaxTokens = V;
    else if (A == "--queue" && Value(V))
      O.Queue = size_t(std::max<int64_t>(V, 1));
    else if (A == "--start" && I + 1 < Args.size())
      O.StartRule = Args[++I];
    else if (A == "--backend" && I + 1 < Args.size()) {
      const AnalysisBackend *B = findAnalysisBackend(Args[++I]);
      if (!B) {
        std::fprintf(stderr, "error: unknown backend '%s' (valid: %s)\n",
                     Args[I].c_str(), analysisBackendNames());
        return 2;
      }
      O.Backend = B->kind();
    }
    else if (A == "--trees")
      O.Trees = true;
    else if (A == "--recover")
      O.Recover = true;
    else if (A == "--compiled")
      O.UseCompiled = true;
    else if (A == "--json-metrics" && I + 1 < Args.size())
      O.JsonMetrics = Args[++I];
    else if (A == "--stats-out" && I + 1 < Args.size())
      O.StatsOut = Args[++I];
    else if (A == "--edit-script" && I + 1 < Args.size())
      O.EditScriptPath = Args[++I];
    else if (A == "--no-reuse")
      O.NoReuse = true;
    else if (A == "--arena")
      O.UseArena = true;
    else if (A == "--quiet")
      O.Quiet = true;
    else if (!A.empty() && A[0] == '-' && A != "-")
      return usage();
    else if (O.GrammarArg.empty())
      O.GrammarArg = A;
    else
      O.InputOperands.push_back(A);
  }
  if (O.GrammarArg.empty())
    return usage();
  if (O.InputOperands.empty() && O.Sample <= 0 && O.EditScriptPath.empty())
    return usage();

  // Load grammar bundles through the shared cache.
  GrammarBundleCache Cache;
  std::vector<std::shared_ptr<const GrammarBundle>> Bundles;
  std::error_code Ec;
  if (fs::is_directory(O.GrammarArg, Ec)) {
    if (O.Sample <= 0) {
      std::fprintf(stderr,
                   "error: a grammar directory requires --sample mode\n");
      return 2;
    }
    std::vector<std::string> GrammarPaths;
    for (const auto &Entry : fs::directory_iterator(O.GrammarArg, Ec)) {
      std::string Ext = Entry.path().extension().string();
      if (Entry.is_regular_file() && (Ext == ".g" || Ext == ".llb"))
        GrammarPaths.push_back(Entry.path().string());
    }
    std::sort(GrammarPaths.begin(), GrammarPaths.end());
    for (const std::string &Path : GrammarPaths) {
      DiagnosticEngine Diags;
      auto Bundle = Cache.getFile(Path, Diags, O.Backend);
      if (!Bundle) {
        std::fprintf(stderr, "error: failed to load %s\n%s", Path.c_str(),
                     Diags.str().c_str());
        return 1;
      }
      Bundles.push_back(std::move(Bundle));
    }
  } else {
    DiagnosticEngine Diags;
    auto Bundle = Cache.getFile(O.GrammarArg, Diags, O.Backend);
    if (!Bundle) {
      std::fprintf(stderr, "error: failed to load %s\n%s",
                   O.GrammarArg.c_str(), Diags.str().c_str());
      return 1;
    }
    Bundles.push_back(std::move(Bundle));
  }

  if (!O.EditScriptPath.empty()) {
    if (Bundles.size() != 1) {
      std::fprintf(stderr,
                   "error: --edit-script needs exactly one grammar\n");
      return 2;
    }
    if (O.UseCompiled)
      compiled::registerShippedGrammars();
    return runEditScript(Bundles.front(), O);
  }

  // Materialize the request list.
  struct Work {
    std::shared_ptr<const GrammarBundle> Bundle;
    std::string Id, Input;
  };
  std::vector<Work> Workload;
  if (O.Sample > 0) {
    for (const auto &Bundle : Bundles) {
      // Compiled .llb bundles carry only analysis tables, not rule bodies,
      // so there is nothing to sample sentences from.
      const Grammar &G = Bundle->grammar();
      if (G.numRules() == 0 || G.rule(0).Alts.empty()) {
        std::fprintf(stderr,
                     "error: %s has no rule bodies to sample from; "
                     "--sample needs a .g source grammar\n",
                     Bundle->name().c_str());
        return 2;
      }
      fuzz::SentenceSampler Sampler(G, O.Seed);
      for (int I = 0; I < O.Sample; ++I)
        Workload.push_back({Bundle,
                            Bundle->name() + "#" + std::to_string(I),
                            fuzz::SentenceSampler::render(Sampler.sample())});
    }
  } else {
    std::vector<std::string> Paths;
    for (const std::string &Operand : O.InputOperands)
      if (!expandInput(Operand, Paths))
        return 1;
    std::sort(Paths.begin(), Paths.end());
    for (const std::string &Path : Paths) {
      std::string Text;
      if (!readFile(Path, Text)) {
        std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
        return 1;
      }
      Workload.push_back({Bundles.front(), Path, std::move(Text)});
    }
  }

  ServiceConfig Config;
  Config.Threads = O.Threads;
  Config.QueueCapacity = O.Queue;
  Config.MaxTokens = O.MaxTokens;
  Config.DefaultDeadline = std::chrono::milliseconds(O.DeadlineMs);
  Config.UseCompiled = O.UseCompiled;
  if (O.UseCompiled)
    compiled::registerShippedGrammars();
  ParseService Service(Config);

  auto Start = std::chrono::steady_clock::now();
  // Submit with a sliding window one smaller than the queue so the bounded
  // queue throttles the driver instead of bouncing requests.
  std::deque<std::future<ParseResult>> Inflight;
  std::vector<ParseResult> Results;
  Results.reserve(Workload.size());
  auto Drain = [&](size_t DownTo) {
    while (Inflight.size() > DownTo) {
      Results.push_back(Inflight.front().get());
      Inflight.pop_front();
    }
  };
  for (Work &W : Workload) {
    ParseRequest Req;
    Req.Bundle = W.Bundle;
    Req.Id = std::move(W.Id);
    Req.Input = std::move(W.Input);
    Req.StartRule = O.StartRule;
    Req.WantTree = O.Trees;
    Req.Recover = O.Recover;
    Inflight.push_back(Service.submit(std::move(Req)));
    if (Inflight.size() >= O.Queue)
      Drain(O.Queue / 2);
  }
  Drain(0);
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  int64_t CountOk = 0, CountRecovered = 0, Failed = 0, Rejected = 0,
          TotalTokens = 0;
  for (const ParseResult &R : Results) {
    switch (R.Status) {
    case ParseStatus::Ok:
      ++CountOk;
      break;
    case ParseStatus::Recovered:
      // Tolerated by --recover: a partial tree came back, not a failure.
      ++CountRecovered;
      break;
    case ParseStatus::SyntaxError:
    case ParseStatus::LexError:
    case ParseStatus::BadRequest:
      ++Failed;
      break;
    default:
      ++Rejected;
      break;
    }
    TotalTokens += R.NumTokens;
    if (!O.Quiet) {
      std::printf("%-40s %-18s %7lld tokens %9.3f ms\n", R.Id.c_str(),
                  statusName(R.Status), (long long)R.NumTokens,
                  R.ParseMillis);
      if (O.Trees && !R.TreeText.empty())
        std::printf("  %s\n", R.TreeText.c_str());
    }
  }

  ServiceMetrics Metrics = Service.metrics();
  std::printf("batch: %zu inputs, %lld ok, %lld recovered, %lld failed, "
              "%lld rejected; %lld tokens in %.3fs (%.0f tokens/s, "
              "%d threads)\n",
              Results.size(), (long long)CountOk, (long long)CountRecovered,
              (long long)Failed, (long long)Rejected, (long long)TotalTokens,
              Seconds, Seconds > 0 ? double(TotalTokens) / Seconds : 0,
              Service.threads());

  if (!O.JsonMetrics.empty()) {
    // Per-decision identities are only meaningful when every worker
    // parsed the same grammar; multi-grammar runs stay index-keyed.
    std::vector<DecisionKey> Keys;
    if (Bundles.size() == 1)
      Keys = Bundles.front()->analyzed().decisionKeys();
    std::string Json =
        Metrics.json(/*IncludeDecisions=*/true, Keys.empty() ? nullptr : &Keys);
    if (O.JsonMetrics == "-") {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(O.JsonMetrics);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     O.JsonMetrics.c_str());
        return 1;
      }
      Out << Json << "\n";
    }
  }
  if (!O.StatsOut.empty()) {
    if (Bundles.size() != 1) {
      std::fprintf(stderr,
                   "error: --stats-out profiles exactly one grammar; got "
                   "%zu bundles\n",
                   Bundles.size());
      return 1;
    }
    if (!writeProfile(O.StatsOut, *Bundles.front(), Metrics.Parser))
      return 1;
  }
  return Failed == 0 && Rejected == 0 ? 0 : 1;
}
