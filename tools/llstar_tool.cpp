//===- tools/llstar_tool.cpp - Command-line driver ------------------------===//
//
// The `llstar` command-line tool: analyze grammar files, inspect lookahead
// DFAs and ATNs, tokenize and parse input files, and compare against the
// packrat baseline — without writing any C++.
//
//   llstar analyze <grammar.g> [--dfa [rule]] [--dot <decision>] [--atn]
//   llstar tokens  <grammar.g> <input>
//   llstar parse   <grammar.g> <input> [--start <rule>] [--tree]
//                  [--stats] [--stats-json] [--peg] [--no-memoize]
//   llstar compile <grammar.g> -o <out.llb>
//
// Semantic predicates evaluate as `true` with a warning (bind real
// callbacks through the C++ API when your grammar needs them).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "codegen/CppGenerator.h"
#include "codegen/Serializer.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "peg/PackratParser.h"
#include "runtime/LLStarParser.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: llstar <command> ...\n"
      "  analyze <grammar.g> [--dfa [rule]] [--dot <decision>] [--atn]\n"
      "      analyze a grammar; print the decision summary, optionally the\n"
      "      lookahead DFA of every decision (or just one rule's), a\n"
      "      Graphviz dump of one decision, or the whole ATN\n"
      "  tokens <grammar.g> <input>\n"
      "      tokenize an input file with the grammar's lexer rules\n"
      "  parse <grammar.g> <input> [--start <rule>] [--tree] [--stats]\n"
      "        [--stats-json] [--peg] [--no-memoize]\n"
      "      parse an input file; --peg uses the packrat baseline;\n"
      "      --stats-json prints the full ParserStats as JSON\n"
      "  compile <grammar.g> -o <out.llb>\n"
      "      analyze once and write a versioned grammar bundle that\n"
      "      llstar-batch and the ParseService load without re-analysis\n"
      "  generate <grammar.g> <ClassName> [-o <dir>]\n"
      "      emit <dir>/<ClassName>.h/.cpp embedding the precompiled\n"
      "      grammar tables (link against the llstar runtime)\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

void printDiags(const DiagnosticEngine &Diags) {
  if (!Diags.empty())
    std::fprintf(stderr, "%s", Diags.str().c_str());
}

std::unique_ptr<AnalyzedGrammar> loadGrammar(const std::string &Path) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return nullptr;
  }
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(Text, Diags);
  printDiags(Diags);
  return AG;
}

const char *className(DecisionClass C) {
  switch (C) {
  case DecisionClass::FixedK:
    return "fixed";
  case DecisionClass::Cyclic:
    return "cyclic";
  case DecisionClass::Backtrack:
    return "backtrack";
  }
  return "?";
}

int cmdAnalyze(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  auto AG = loadGrammar(Args[0]);
  if (!AG)
    return 1;

  bool ShowDfa = false, ShowAtn = false;
  std::string DfaRule;
  int32_t DotDecision = -1;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--dfa") {
      ShowDfa = true;
      if (I + 1 < Args.size() && Args[I + 1][0] != '-')
        DfaRule = Args[++I];
    } else if (Args[I] == "--atn") {
      ShowAtn = true;
    } else if (Args[I] == "--dot" && I + 1 < Args.size()) {
      DotDecision = std::atoi(Args[++I].c_str());
    } else {
      return usage();
    }
  }

  std::printf("%s\n", AG->summary().c_str());
  std::printf("\n%-5s %-20s %-10s %s\n", "dec", "rule", "class", "k");
  for (size_t D = 0; D < AG->numDecisions(); ++D) {
    const LookaheadDfa &Dfa = AG->dfa(int32_t(D));
    int32_t State = AG->atn().decisionState(int32_t(D));
    int32_t Rule = AG->atn().state(State).RuleIndex;
    std::string RuleName =
        Rule >= 0 ? AG->grammar().rule(Rule).Name : "<none>";
    std::printf("%-5zu %-20s %-10s %s%s\n", D, RuleName.c_str(),
                className(Dfa.decisionClass()),
                Dfa.fixedK() >= 0 ? std::to_string(Dfa.fixedK()).c_str()
                                  : "*",
                Dfa.usedFallback() ? " (LL(1) fallback)" : "");
    if (ShowDfa && (DfaRule.empty() || DfaRule == RuleName))
      std::printf("%s", Dfa.str(AG->atn()).c_str());
  }
  if (DotDecision >= 0 && size_t(DotDecision) < AG->numDecisions())
    std::printf("\n%s", AG->dfa(DotDecision).dot(AG->atn()).c_str());
  if (ShowAtn)
    std::printf("\n%s", AG->atn().str().c_str());
  return 0;
}

int cmdTokens(const std::vector<std::string> &Args) {
  if (Args.size() != 2)
    return usage();
  auto AG = loadGrammar(Args[0]);
  if (!AG)
    return 1;
  std::string Input;
  if (!readFile(Args[1], Input)) {
    std::fprintf(stderr, "error: cannot read %s\n", Args[1].c_str());
    return 1;
  }
  DiagnosticEngine Diags;
  Lexer L(AG->grammar().lexerSpec(), Diags);
  std::vector<Token> Tokens = L.tokenize(Input, Diags);
  printDiags(Diags);
  for (const Token &T : Tokens)
    std::printf("%5lld %-16s %s  @%s\n", (long long)T.Index,
                AG->grammar().vocabulary().name(T.Type).c_str(),
                escapeString(T.Text).c_str(), T.Loc.str().c_str());
  return Diags.hasErrors() ? 1 : 0;
}

int cmdParse(const std::vector<std::string> &Args) {
  if (Args.size() < 2)
    return usage();
  auto AG = loadGrammar(Args[0]);
  if (!AG)
    return 1;
  std::string Input;
  if (!readFile(Args[1], Input)) {
    std::fprintf(stderr, "error: cannot read %s\n", Args[1].c_str());
    return 1;
  }

  std::string Start;
  bool ShowTree = false, ShowStats = false, StatsJson = false,
       UsePeg = false, Memoize = true;
  for (size_t I = 2; I < Args.size(); ++I) {
    if (Args[I] == "--start" && I + 1 < Args.size())
      Start = Args[++I];
    else if (Args[I] == "--tree")
      ShowTree = true;
    else if (Args[I] == "--stats")
      ShowStats = true;
    else if (Args[I] == "--stats-json")
      StatsJson = true;
    else if (Args[I] == "--peg")
      UsePeg = true;
    else if (Args[I] == "--no-memoize")
      Memoize = false;
    else
      return usage();
  }

  DiagnosticEngine LexDiags;
  Lexer L(AG->grammar().lexerSpec(), LexDiags);
  TokenStream Stream(L.tokenize(Input, LexDiags));
  printDiags(LexDiags);
  if (LexDiags.hasErrors())
    return 1;

  DiagnosticEngine Diags;
  auto Start0 = std::chrono::steady_clock::now();
  bool Ok;
  std::unique_ptr<ParseTree> Tree;
  ParserStats Stats;
  if (UsePeg) {
    PackratParser::Options Opts;
    Opts.Memoize = Memoize;
    Opts.BuildTree = ShowTree;
    PackratParser P(AG->grammar(), Stream, nullptr, Diags, Opts);
    Tree = P.parse(Start);
    Ok = P.ok();
  } else {
    ParserOptions Opts;
    Opts.Memoize = Memoize;
    LLStarParser P(*AG, Stream, nullptr, Diags, Opts);
    Tree = P.parse(Start);
    Ok = P.ok();
    Stats = P.stats();
  }
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start0)
                       .count();
  printDiags(Diags);
  std::printf("%s in %.3f ms (%lld tokens)\n",
              Ok ? "parse succeeded" : "parse FAILED", Seconds * 1000,
              (long long)(Stream.size() - 1));
  if (ShowTree && Tree)
    std::printf("%s\n", Tree->str(AG->grammar()).c_str());
  if (ShowStats && !UsePeg) {
    std::printf("decision events: %lld, avg k %.2f, max k %lld, "
                "backtracked %.2f%%, memo %lld/%lld\n",
                (long long)Stats.totalEvents(), Stats.avgLookahead(),
                (long long)Stats.maxLookahead(),
                100.0 * Stats.backtrackEventFraction(),
                (long long)Stats.MemoHits, (long long)Stats.MemoMisses);
  }
  if (StatsJson && !UsePeg)
    std::printf("%s\n", Stats.json(/*IncludeDecisions=*/true).c_str());
  return Ok ? 0 : 1;
}

int cmdCompile(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  std::string OutPath;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "-o" && I + 1 < Args.size())
      OutPath = Args[++I];
    else
      return usage();
  }
  if (OutPath.empty())
    return usage();
  auto AG = loadGrammar(Args[0]);
  if (!AG)
    return 1;
  std::string Bundle = writeBundle(*AG);
  std::ofstream Out(OutPath, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  Out << Bundle;
  std::printf("wrote %s (%zu bytes, format v%lld)\n", OutPath.c_str(),
              Bundle.size(), (long long)BundleFormatVersion);
  return 0;
}

int cmdGenerate(const std::vector<std::string> &Args) {
  if (Args.size() < 2)
    return usage();
  auto AG = loadGrammar(Args[0]);
  if (!AG)
    return 1;
  std::string ClassName = Args[1];
  std::string Dir = ".";
  for (size_t I = 2; I < Args.size(); ++I) {
    if (Args[I] == "-o" && I + 1 < Args.size())
      Dir = Args[++I];
    else
      return usage();
  }
  GeneratedParser P = generateCppParser(*AG, ClassName);
  for (auto [Suffix, Contents] :
       {std::make_pair(".h", &P.Header), std::make_pair(".cpp", &P.Source)}) {
    std::string Path = Dir + "/" + ClassName + Suffix;
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return 1;
    }
    Out << *Contents;
    std::printf("wrote %s (%zu bytes)\n", Path.c_str(), Contents->size());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty())
    return usage();
  std::string Cmd = Args[0];
  Args.erase(Args.begin());
  if (Cmd == "analyze")
    return cmdAnalyze(Args);
  if (Cmd == "tokens")
    return cmdTokens(Args);
  if (Cmd == "parse")
    return cmdParse(Args);
  if (Cmd == "compile")
    return cmdCompile(Args);
  if (Cmd == "generate")
    return cmdGenerate(Args);
  return usage();
}
