//===- tools/llstar_tool.cpp - Command-line driver ------------------------===//
//
// The `llstar` command-line tool: analyze grammar files, inspect lookahead
// DFAs and ATNs, tokenize and parse input files, and compare against the
// packrat baseline — without writing any C++.
//
//   llstar analyze <grammar.g> [--backend <name>] [--dfa [rule]]
//                  [--dot <decision>] [--atn]
//   llstar tokens  <grammar.g> <input>
//   llstar parse   <grammar.g> <input> [--backend <name>] [--start <rule>]
//                  [--tree] [--stats] [--stats-json] [--peg] [--no-memoize]
//                  [--recover]
//   llstar compile <grammar.g> [--backend <name>] -o <out.llb>
//   llstar lint    <grammar.g> [--backend <name>]
//                  [--format=text|json|sarif] [--werror]
//                  [--budget <k>] [--dfa-budget <n>] [--profile-notes]
//                  [--profile <stats.json>]... [--fixes]
//                  [--apply [--dry-run] [--fix-id <id>]...]
//                  [--disable <id>[,id...]] [-o <file>]
//
// `--backend {llstar,llfinite}` selects the prediction-analysis backend
// (analyze/parse/compile/lint); every subcommand answers `--help` with its
// own usage plus the uniform exit-code table.
//
// Exit codes (all commands): 0 clean, 1 warnings under --werror, 2 errors
// (unreadable files, grammar errors, failed parses), 3 usage errors.
// `parse --recover` tolerates syntax errors: the recovered parse lists its
// diagnostics and exits 0 (1 under --werror, which treats a recovered
// parse as strictly as a warning); without --recover a failed parse stays
// exit 2.
//
// Semantic predicates evaluate as `true` with a warning (bind real
// callbacks through the C++ API when your grammar needs them).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "codegen/CompiledModuleEmitter.h"
#include "codegen/CppGenerator.h"
#include "codegen/Serializer.h"
#include "compiled/CompiledParser.h"
#include "compiled/CompiledRegistry.h"
#include "CompiledManifest.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "lint/Fix.h"
#include "lint/Lint.h"
#include "lint/Profile.h"
#include "lint/SarifWriter.h"
#include "peg/PackratParser.h"
#include "runtime/LLStarParser.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;

namespace {

/// Exit codes shared by every subcommand; documented in usage() and README.
enum ExitCode {
  ExitClean = 0,    ///< no findings (or warnings without --werror)
  ExitWarnings = 1, ///< warnings under --werror
  ExitErrors = 2,   ///< errors: unreadable files, bad grammars, failed parses
  ExitUsage = 3,    ///< bad command line
};

/// The uniform exit-code contract, printed by the global usage text and by
/// every subcommand's --help.
const char ExitCodesLine[] =
    "exit codes: 0 clean, 1 warnings under --werror, 2 errors, 3 usage\n";

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: llstar <command> ...\n"
      "  analyze <grammar.g> [--backend <name>] [--dfa [rule]]\n"
      "          [--dot <decision>] [--atn]\n"
      "      analyze a grammar; print the decision summary, optionally the\n"
      "      lookahead DFA of every decision (or just one rule's), a\n"
      "      Graphviz dump of one decision, or the whole ATN\n"
      "  tokens <grammar.g> <input>\n"
      "      tokenize an input file with the grammar's lexer rules\n"
      "  parse <grammar.g> <input> [--backend <name>] [--start <rule>]\n"
      "        [--tree] [--stats] [--stats-json] [--peg] [--no-memoize]\n"
      "        [--recover] [--compiled]\n"
      "      parse an input file; --peg uses the packrat baseline;\n"
      "      --compiled runs the dense-table fast path (a checked-in\n"
      "      compiled module when its payload hash matches, else tables\n"
      "      flattened at load time) with identical output and exit codes;\n"
      "      --stats-json prints the full ParserStats as JSON;\n"
      "      --recover repairs syntax errors (error leaves in the tree,\n"
      "      sorted diagnostics) and exits 0 instead of 2 (1 with --werror)\n"
      "  compile <grammar.g> [--backend <name>] -o <out.llb>\n"
      "      analyze once and write a versioned grammar bundle that\n"
      "      llstar-batch and the ParseService load without re-analysis\n"
      "      (the v3 bundle header records the producing backend)\n"
      "  compile <grammar.g> --emit-cpp -o <out.cpp>\n"
      "      emit a self-contained C++ module: dense dispatch tables and\n"
      "      switch predictors feeding the compiled parser fast path\n"
      "      (see grammars/compiled/ for the checked-in registry)\n"
      "  generate <grammar.g> <ClassName> [-o <dir>]\n"
      "      emit <dir>/<ClassName>.h/.cpp embedding the precompiled\n"
      "      grammar tables (link against the llstar runtime)\n"
      "  lint <grammar.g> [--backend <name>] [--format=text|json|sarif]\n"
      "       [--werror]\n"
      "       [--budget <k>] [--dfa-budget <n>] [--profile-notes]\n"
      "       [--profile <stats.json>]... [--fixes]\n"
      "       [--apply [--dry-run] [--fix-id <id>]...]\n"
      "       [--disable <id>[,id...]] [-o <file>]\n"
      "      run the grammar static-analysis passes; --werror promotes\n"
      "      warnings to a failing exit code; --profile loads decision-\n"
      "      keyed runtime profiles (parse --stats-json, llstar-batch /\n"
      "      llstar-loadgen --stats-out, llstard stats) and re-ranks\n"
      "      findings by observed cost; --fixes computes machine-verified\n"
      "      auto-fixes; --apply writes verified fixes back to the\n"
      "      grammar (--dry-run prints a unified diff instead, --fix-id\n"
      "      selects specific fixes)\n"
      "analyze/parse/compile/lint accept --backend {%s}: the\n"
      "prediction-analysis backend building the lookahead DFAs (default\n"
      "llstar); every subcommand answers --help with its own usage\n"
      "%s",
      analysisBackendNames(), ExitCodesLine);
}

int usage() {
  printUsage(stderr);
  return ExitUsage;
}

/// Per-subcommand --help: the subcommand's synopsis plus the uniform
/// exit-code table. Printed to stdout; exits clean.
int subcommandHelp(const std::string &Cmd) {
  std::string Synopsis;
  if (Cmd == "analyze")
    Synopsis =
        "usage: llstar analyze <grammar.g> [--backend <name>] [--dfa [rule]]\n"
        "                      [--dot <decision>] [--atn] [--werror]\n"
        "analyze a grammar and print the decision summary and per-decision\n"
        "classes; --dfa prints lookahead DFAs, --dot one decision as\n"
        "Graphviz, --atn the whole ATN\n";
  else if (Cmd == "tokens")
    Synopsis = "usage: llstar tokens <grammar.g> <input>\n"
               "tokenize an input file with the grammar's lexer rules\n";
  else if (Cmd == "parse")
    Synopsis =
        "usage: llstar parse <grammar.g> <input> [--backend <name>]\n"
        "                    [--start <rule>] [--tree] [--stats]\n"
        "                    [--stats-json] [--peg] [--no-memoize]\n"
        "                    [--recover] [--compiled] [--werror]\n"
        "parse an input file; --peg uses the packrat baseline, --compiled\n"
        "the dense-table fast path, --recover repairs syntax errors\n";
  else if (Cmd == "compile")
    Synopsis =
        "usage: llstar compile <grammar.g> [--backend <name>] -o <out.llb>\n"
        "       llstar compile <grammar.g> --emit-cpp -o <out.cpp>\n"
        "write a versioned grammar bundle (the v3 header records the\n"
        "producing backend) or emit a self-contained C++ module\n";
  else if (Cmd == "generate")
    Synopsis =
        "usage: llstar generate <grammar.g> <ClassName> [-o <dir>]\n"
        "emit <dir>/<ClassName>.h/.cpp embedding the precompiled tables\n";
  else if (Cmd == "lint")
    Synopsis =
        "usage: llstar lint <grammar.g> [--backend <name>]\n"
        "                   [--format=text|json|sarif] [--werror]\n"
        "                   [--budget <k>] [--dfa-budget <n>]\n"
        "                   [--profile-notes] [--profile <stats.json>]...\n"
        "                   [--fixes] [--apply [--dry-run]\n"
        "                   [--fix-id <id>]...] [--disable <id>[,id...]]\n"
        "                   [-o <file>]\n"
        "run the grammar static-analysis passes; --apply writes verified\n"
        "fixes back to the grammar\n";
  bool TakesBackend = Cmd == "analyze" || Cmd == "parse" ||
                      Cmd == "compile" || Cmd == "lint";
  std::printf("%s%s%s", Synopsis.c_str(),
              TakesBackend
                  ? formatString("--backend selects the prediction analysis: "
                                 "%s (default llstar)\n",
                                 analysisBackendNames())
                        .c_str()
                  : "",
              ExitCodesLine);
  return ExitClean;
}

/// True when \p Args asks for --help.
bool wantsHelp(const std::vector<std::string> &Args) {
  for (const std::string &A : Args)
    if (A == "--help" || A == "-h")
      return true;
  return false;
}

/// Pulls `--backend <name>` out of \p Args (analyze/parse/compile/lint).
/// Returns false on an unknown backend name (a usage error).
bool extractBackend(std::vector<std::string> &Args, BackendKind &Backend) {
  for (size_t I = 0; I + 1 < Args.size(); ++I) {
    if (Args[I] != "--backend")
      continue;
    const AnalysisBackend *B = findAnalysisBackend(Args[I + 1]);
    if (!B) {
      std::fprintf(stderr, "error: unknown backend '%s' (valid: %s)\n",
                   Args[I + 1].c_str(), analysisBackendNames());
      return false;
    }
    Backend = B->kind();
    Args.erase(Args.begin() + long(I), Args.begin() + long(I) + 2);
    return true;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

void printDiags(const DiagnosticEngine &Diags) {
  if (!Diags.empty())
    std::fprintf(stderr, "%s", Diags.str().c_str());
}

std::unique_ptr<AnalyzedGrammar>
loadGrammar(const std::string &Path, unsigned *WarningsOut = nullptr,
            BackendKind Backend = BackendKind::LLStar) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return nullptr;
  }
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(Text, Diags, Backend);
  printDiags(Diags);
  if (WarningsOut)
    *WarningsOut = Diags.warningCount();
  return AG;
}

const char *className(DecisionClass C) {
  switch (C) {
  case DecisionClass::FixedK:
    return "fixed";
  case DecisionClass::Cyclic:
    return "cyclic";
  case DecisionClass::Backtrack:
    return "backtrack";
  }
  return "?";
}

int cmdAnalyze(std::vector<std::string> Args) {
  BackendKind Backend = BackendKind::LLStar;
  if (!extractBackend(Args, Backend))
    return usage();
  if (Args.empty())
    return usage();
  unsigned Warnings = 0;
  auto AG = loadGrammar(Args[0], &Warnings, Backend);
  if (!AG)
    return ExitErrors;

  bool ShowDfa = false, ShowAtn = false, WError = false;
  std::string DfaRule;
  int32_t DotDecision = -1;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--dfa") {
      ShowDfa = true;
      if (I + 1 < Args.size() && Args[I + 1][0] != '-')
        DfaRule = Args[++I];
    } else if (Args[I] == "--atn") {
      ShowAtn = true;
    } else if (Args[I] == "--werror") {
      WError = true;
    } else if (Args[I] == "--dot" && I + 1 < Args.size()) {
      DotDecision = std::atoi(Args[++I].c_str());
    } else {
      return usage();
    }
  }

  std::printf("%s\n", AG->summary().c_str());
  std::printf("\n%-5s %-20s %-10s %s\n", "dec", "rule", "class", "k");
  for (size_t D = 0; D < AG->numDecisions(); ++D) {
    const LookaheadDfa &Dfa = AG->dfa(int32_t(D));
    int32_t State = AG->atn().decisionState(int32_t(D));
    int32_t Rule = AG->atn().state(State).RuleIndex;
    std::string RuleName =
        Rule >= 0 ? AG->grammar().rule(Rule).Name : "<none>";
    std::printf("%-5zu %-20s %-10s %s%s\n", D, RuleName.c_str(),
                className(Dfa.decisionClass()),
                Dfa.fixedK() >= 0 ? std::to_string(Dfa.fixedK()).c_str()
                                  : "*",
                Dfa.usedFallback() ? " (LL(1) fallback)" : "");
    if (ShowDfa && (DfaRule.empty() || DfaRule == RuleName))
      std::printf("%s", Dfa.str(AG->atn()).c_str());
  }
  if (DotDecision >= 0 && size_t(DotDecision) < AG->numDecisions())
    std::printf("\n%s", AG->dfa(DotDecision).dot(AG->atn()).c_str());
  if (ShowAtn)
    std::printf("\n%s", AG->atn().str().c_str());
  return WError && Warnings ? ExitWarnings : ExitClean;
}

int cmdTokens(const std::vector<std::string> &Args) {
  if (Args.size() != 2)
    return usage();
  auto AG = loadGrammar(Args[0]);
  if (!AG)
    return ExitErrors;
  std::string Input;
  if (!readFile(Args[1], Input)) {
    std::fprintf(stderr, "error: cannot read %s\n", Args[1].c_str());
    return ExitErrors;
  }
  DiagnosticEngine Diags;
  Lexer L(AG->grammar().lexerSpec(), Diags);
  std::vector<Token> Tokens = L.tokenize(Input, Diags);
  printDiags(Diags);
  for (const Token &T : Tokens)
    std::printf("%5lld %-16s %s  @%s\n", (long long)T.Index,
                AG->grammar().vocabulary().name(T.Type).c_str(),
                escapeString(T.Text).c_str(), T.Loc.str().c_str());
  return Diags.hasErrors() ? ExitErrors : ExitClean;
}

int cmdParse(std::vector<std::string> Args) {
  BackendKind Backend = BackendKind::LLStar;
  if (!extractBackend(Args, Backend))
    return usage();
  if (Args.size() < 2)
    return usage();
  unsigned GrammarWarnings = 0;
  auto AG = loadGrammar(Args[0], &GrammarWarnings, Backend);
  if (!AG)
    return ExitErrors;
  std::string Input;
  if (!readFile(Args[1], Input)) {
    std::fprintf(stderr, "error: cannot read %s\n", Args[1].c_str());
    return ExitErrors;
  }

  std::string Start;
  bool ShowTree = false, ShowStats = false, StatsJson = false,
       UsePeg = false, Memoize = true, WError = false, Recover = false,
       UseCompiled = false;
  for (size_t I = 2; I < Args.size(); ++I) {
    if (Args[I] == "--start" && I + 1 < Args.size())
      Start = Args[++I];
    else if (Args[I] == "--tree")
      ShowTree = true;
    else if (Args[I] == "--stats")
      ShowStats = true;
    else if (Args[I] == "--stats-json")
      StatsJson = true;
    else if (Args[I] == "--peg")
      UsePeg = true;
    else if (Args[I] == "--no-memoize")
      Memoize = false;
    else if (Args[I] == "--werror")
      WError = true;
    else if (Args[I] == "--recover")
      Recover = true;
    else if (Args[I] == "--compiled")
      UseCompiled = true;
    else
      return usage();
  }
  if (Recover && UsePeg)
    return usage(); // the packrat baseline has no error recovery
  if (UseCompiled && UsePeg)
    return usage(); // the fast path accelerates the LL(*) engine only

  compiled::CompiledResolution Compiled;
  if (UseCompiled) {
    compiled::registerShippedGrammars();
    Compiled = compiled::resolveCompiledTables(*AG, serializeGrammar(*AG));
  }

  DiagnosticEngine LexDiags;
  std::vector<Token> Toks;
  if (Compiled.fromModule()) {
    // Hash-matched module: tokenize with its embedded lexer tables (same
    // DFA the spec compiles to; exercises the generated data end to end).
    Toks = compiled::makeModuleLexer(*Compiled.Module)
               ->tokenize(Input, LexDiags);
  } else {
    Lexer L(AG->grammar().lexerSpec(), LexDiags);
    Toks = L.tokenize(Input, LexDiags);
  }
  TokenStream Stream(std::move(Toks));
  printDiags(LexDiags);
  if (LexDiags.hasErrors())
    return ExitErrors;

  DiagnosticEngine Diags;
  auto Start0 = std::chrono::steady_clock::now();
  bool Ok;
  std::unique_ptr<ParseTree> Tree;
  ParserStats Stats;
  if (UsePeg) {
    PackratParser::Options Opts;
    Opts.Memoize = Memoize;
    Opts.BuildTree = ShowTree;
    PackratParser P(AG->grammar(), Stream, nullptr, Diags, Opts);
    Tree = P.parse(Start);
    Ok = P.ok();
  } else if (UseCompiled) {
    ParserOptions Opts;
    Opts.Memoize = Memoize;
    Opts.Recover = Recover;
    compiled::CompiledParser P(*AG, Compiled.View, Stream, nullptr, Diags,
                               Opts, Compiled.Native, Compiled.Rules);
    Tree = P.parse(Start);
    Ok = P.ok();
    Stats = P.stats();
  } else {
    ParserOptions Opts;
    Opts.Memoize = Memoize;
    Opts.Recover = Recover;
    LLStarParser P(*AG, Stream, nullptr, Diags, Opts);
    Tree = P.parse(Start);
    Ok = P.ok();
    Stats = P.stats();
  }
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start0)
                       .count();
  // printDiags renders DiagnosticEngine::str(): diagnostics sorted by
  // (line, column), so a recovered parse lists its errors in source order.
  printDiags(Diags);
  std::string Verdict = Ok ? "parse succeeded" : "parse FAILED";
  if (!Ok && Recover)
    Verdict = "parse recovered (" + std::to_string(Diags.errorCount()) +
              (Diags.errorCount() == 1 ? " error)" : " errors)");
  std::printf("%s in %.3f ms (%lld tokens)\n", Verdict.c_str(),
              Seconds * 1000, (long long)(Stream.size() - 1));
  if (ShowTree && Tree)
    std::printf("%s\n", Tree->str(AG->grammar()).c_str());
  if (ShowStats && !UsePeg) {
    std::printf("decision events: %lld, avg k %.2f, max k %lld, "
                "backtracked %.2f%%, memo %lld/%lld\n",
                (long long)Stats.totalEvents(), Stats.avgLookahead(),
                (long long)Stats.maxLookahead(),
                100.0 * Stats.backtrackEventFraction(),
                (long long)Stats.MemoHits, (long long)Stats.MemoMisses);
  }
  if (StatsJson && !UsePeg) {
    // Keyed per-decision output: (rule, decisionInRule, line, column) make
    // the profile joinable by `llstar lint --profile` across runs, worker
    // pools, and daemon fleets.
    std::vector<DecisionKey> Keys = AG->decisionKeys();
    std::printf("%s\n", Stats.json(/*IncludeDecisions=*/true, &Keys,
                                   AG->backendName())
                            .c_str());
  }
  if (!Ok && !Recover)
    return ExitErrors;
  unsigned Warnings =
      GrammarWarnings + LexDiags.warningCount() + Diags.warningCount();
  // --werror strictness treats a recovered parse like a warning: exit 1.
  return WError && (Warnings || !Ok) ? ExitWarnings : ExitClean;
}

int cmdCompile(std::vector<std::string> Args) {
  BackendKind Backend = BackendKind::LLStar;
  if (!extractBackend(Args, Backend))
    return usage();
  if (Args.empty())
    return usage();
  std::string OutPath;
  bool WError = false, EmitCpp = false;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "-o" && I + 1 < Args.size())
      OutPath = Args[++I];
    else if (Args[I] == "--werror")
      WError = true;
    else if (Args[I] == "--emit-cpp")
      EmitCpp = true;
    else
      return usage();
  }
  if (OutPath.empty())
    return usage();
  unsigned Warnings = 0;
  auto AG = loadGrammar(Args[0], &Warnings, Backend);
  if (!AG)
    return ExitErrors;
  if (EmitCpp) {
    EmittedCompiledModule Module = emitCompiledModule(*AG);
    std::ofstream Out(OutPath, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
      return ExitErrors;
    }
    Out << Module.Source;
    std::printf("wrote %s (%zu bytes, %s, %d/%d decisions native, "
                "%d/%d rules native, %zu table bytes)\n",
                OutPath.c_str(), Module.Source.size(),
                Module.SymbolName.c_str(), Module.NumNativePredictors,
                Module.NumDecisions, Module.NumNativeRules, Module.NumRules,
                Module.TableBytes);
    return WError && Warnings ? ExitWarnings : ExitClean;
  }
  std::string Bundle = writeBundle(*AG);
  std::ofstream Out(OutPath, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return ExitErrors;
  }
  Out << Bundle;
  std::printf("wrote %s (%zu bytes, format v%lld)\n", OutPath.c_str(),
              Bundle.size(), (long long)BundleFormatVersion);
  return WError && Warnings ? ExitWarnings : ExitClean;
}

int cmdGenerate(const std::vector<std::string> &Args) {
  if (Args.size() < 2)
    return usage();
  auto AG = loadGrammar(Args[0]);
  if (!AG)
    return ExitErrors;
  std::string ClassName = Args[1];
  std::string Dir = ".";
  for (size_t I = 2; I < Args.size(); ++I) {
    if (Args[I] == "-o" && I + 1 < Args.size())
      Dir = Args[++I];
    else
      return usage();
  }
  GeneratedParser P = generateCppParser(*AG, ClassName);
  for (auto [Suffix, Contents] :
       {std::make_pair(".h", &P.Header), std::make_pair(".cpp", &P.Source)}) {
    std::string Path = Dir + "/" + ClassName + Suffix;
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return ExitErrors;
    }
    Out << *Contents;
    std::printf("wrote %s (%zu bytes)\n", Path.c_str(), Contents->size());
  }
  return ExitClean;
}

int cmdLint(std::vector<std::string> Args) {
  BackendKind Backend = BackendKind::LLStar;
  if (!extractBackend(Args, Backend))
    return usage();
  if (Args.empty())
    return usage();
  std::string Format = "text", OutPath;
  bool WError = false, WantFixes = false, Apply = false, DryRun = false;
  std::vector<std::string> ProfilePaths, FixIds;
  LintOptions Opts;
  for (size_t I = 1; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A.rfind("--format=", 0) == 0)
      Format = A.substr(9);
    else if (A == "--format" && I + 1 < Args.size())
      Format = Args[++I];
    else if (A == "--werror")
      WError = true;
    else if (A == "--profile" && I + 1 < Args.size())
      ProfilePaths.push_back(Args[++I]);
    else if (A == "--profile-notes")
      Opts.Profile = true;
    else if (A == "--fixes")
      WantFixes = true;
    else if (A == "--apply")
      Apply = true;
    else if (A == "--dry-run")
      DryRun = true;
    else if (A == "--fix-id" && I + 1 < Args.size())
      FixIds.push_back(Args[++I]);
    else if (A == "--budget" && I + 1 < Args.size())
      Opts.LookaheadBudget = std::atoi(Args[++I].c_str());
    else if (A == "--dfa-budget" && I + 1 < Args.size())
      Opts.DfaStateBudget = std::atoi(Args[++I].c_str());
    else if (A == "--disable" && I + 1 < Args.size()) {
      std::string Ids = Args[++I];
      size_t Pos = 0;
      while (Pos <= Ids.size()) {
        size_t Comma = Ids.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Ids.size();
        if (Comma > Pos)
          Opts.Disabled.insert(Ids.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    } else if (A == "-o" && I + 1 < Args.size())
      OutPath = Args[++I];
    else
      return usage();
  }
  if (Format != "text" && Format != "json" && Format != "sarif")
    return usage();
  if ((DryRun || !FixIds.empty()) && !Apply)
    return usage(); // --dry-run / --fix-id only make sense with --apply

  std::string Source;
  if (!readFile(Args[0], Source)) {
    std::fprintf(stderr, "error: cannot read %s\n", Args[0].c_str());
    return ExitErrors;
  }
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(Source, Diags, Backend);
  if (!AG || Diags.hasErrors()) {
    // Grammar does not even build: report the front end's errors directly.
    printDiags(Diags);
    return ExitErrors;
  }
  // Analysis warnings (ambiguity etc.) are not printed here: the lint
  // passes re-derive them as structured diagnostics with witnesses.

  // One or more --profile files merge into a single decision-keyed
  // profile; entries join to this grammar's decisions by (rule,
  // decisionInRule) identity, falling back to decision index.
  LintProfile Profile;
  for (const std::string &Path : ProfilePaths) {
    std::string Text, Err;
    if (!readFile(Path, Text)) {
      std::fprintf(stderr, "error: cannot read profile %s\n", Path.c_str());
      return ExitErrors;
    }
    if (!Profile.load(Text, &Err)) {
      std::fprintf(stderr, "error: bad profile %s: %s\n", Path.c_str(),
                   Err.c_str());
      return ExitErrors;
    }
  }

  LintEngine Engine(Opts);
  LintResult R = Engine.run(*AG, Source);
  if (!ProfilePaths.empty())
    applyProfile(R, Profile, *AG);

  std::vector<Fix> Fixes;
  bool ComputedFixes = WantFixes || Apply;
  if (ComputedFixes)
    Fixes = computeFixes(*AG, R, Source,
                         ProfilePaths.empty() ? nullptr : &Profile);

  std::string Rendered;
  if (Format == "sarif")
    Rendered = renderSarif(R, Args[0], Fixes);
  else if (Format == "json")
    Rendered = renderLintJson(R, Args[0], ComputedFixes ? &Fixes : nullptr);
  else {
    Rendered = renderLintText(R, Args[0]);
    if (ComputedFixes)
      Rendered += renderFixesText(Fixes);
  }

  if (!OutPath.empty()) {
    std::ofstream Out(OutPath, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
      return ExitErrors;
    }
    Out << Rendered;
  } else {
    std::printf("%s", Rendered.c_str());
  }
  if (Format == "text") {
    std::fprintf(stderr, "%d error(s), %d warning(s), %d suppressed\n",
                 R.errorCount(), R.warningCount(), R.NumSuppressed);
  }

  if (Apply) {
    // Only machine-verified fixes are ever written back. --fix-id selects
    // a subset and fails loudly on unknown or unverified ids; the default
    // is every verified fix.
    std::vector<const Fix *> Chosen;
    if (!FixIds.empty()) {
      for (const std::string &Id : FixIds) {
        const Fix *Found = nullptr;
        for (const Fix &F : Fixes)
          if (F.Id == Id) {
            Found = &F;
            break;
          }
        if (!Found) {
          std::fprintf(stderr, "error: no such fix: %s\n", Id.c_str());
          return ExitErrors;
        }
        if (!Found->Verified) {
          std::fprintf(stderr, "error: fix %s is unverified (%s); not applying\n",
                       Id.c_str(), Found->VerifyNote.c_str());
          return ExitErrors;
        }
        Chosen.push_back(Found);
      }
    } else {
      for (const Fix &F : Fixes)
        if (F.Verified)
          Chosen.push_back(&F);
    }

    std::vector<std::string> Rejected;
    std::string NewText = applyFixes(Source, Chosen, &Rejected);
    for (const std::string &Id : Rejected)
      std::fprintf(stderr, "note: skipped %s: overlaps an earlier fix\n",
                   Id.c_str());
    if (DryRun) {
      std::string Diff = renderUnifiedDiff(Source, NewText, Args[0]);
      if (!Diff.empty())
        std::printf("%s", Diff.c_str());
      std::fprintf(stderr, "%zu fix(es) would be applied, %zu skipped\n",
                   Chosen.size() - Rejected.size(), Rejected.size());
    } else if (NewText != Source) {
      std::ofstream Out(Args[0], std::ios::binary);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n", Args[0].c_str());
        return ExitErrors;
      }
      Out << NewText;
      std::fprintf(stderr, "applied %zu fix(es) to %s (%zu skipped)\n",
                   Chosen.size() - Rejected.size(), Args[0].c_str(),
                   Rejected.size());
    } else {
      std::fprintf(stderr, "no verified fixes to apply\n");
    }
  }

  if (R.errorCount())
    return ExitErrors;
  if (WError && R.warningCount())
    return ExitWarnings;
  return ExitClean;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty())
    return usage();
  std::string Cmd = Args[0];
  Args.erase(Args.begin());
  if (Cmd == "--help" || Cmd == "-h") {
    printUsage(stdout);
    return ExitClean;
  }
  bool Known = Cmd == "analyze" || Cmd == "tokens" || Cmd == "parse" ||
               Cmd == "compile" || Cmd == "generate" || Cmd == "lint";
  if (Known && wantsHelp(Args))
    return subcommandHelp(Cmd);
  if (Cmd == "analyze")
    return cmdAnalyze(Args);
  if (Cmd == "tokens")
    return cmdTokens(Args);
  if (Cmd == "parse")
    return cmdParse(Args);
  if (Cmd == "compile")
    return cmdCompile(Args);
  if (Cmd == "generate")
    return cmdGenerate(Args);
  if (Cmd == "lint")
    return cmdLint(Args);
  return usage();
}
