//===- tools/llstar_fuzz.cpp - Differential grammar fuzzer ----------------===//
//
// The `llstar-fuzz` driver: generates random predicated grammars, samples
// in-language sentences and out-of-language mutation candidates, and
// cross-checks the LL(*) predictor-driven parser against the packrat/PEG
// baseline, analysis determinism, and the serializer round-trip. Failures
// are minimized and printed (and optionally written out) as replayable
// reproducers.
//
//   llstar-fuzz [--seed N] [--iters K] [--sentences S] [--mutations M]
//               [--max-rules R] [--no-minimize] [--no-grammar-checks]
//               [--no-leftrec] [--no-preds] [--no-blocks]
//               [--dump-dir DIR] [--emit-corpus DIR COUNT]
//               [--lint-smoke] [--recover-smoke] [--quiet]
//
// Exit status: 0 when every check passed, 1 on any oracle failure, 2 on
// usage errors. Runs are deterministic: the same flags and seed replay
// bit-identically.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/SentenceGen.h"
#include "fuzz/SentenceSampler.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "lint/Lint.h"
#include "lint/SarifWriter.h"
#include "peg/PackratParser.h"
#include "runtime/LLStarParser.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace llstar;
using namespace llstar::fuzz;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: llstar-fuzz [options]\n"
      "  --seed N            master seed (default 0)\n"
      "  --iters K           grammars to generate (default 1000)\n"
      "  --sentences S       in-language samples per grammar (default 4)\n"
      "  --mutations M       mutation candidates per sample (default 2)\n"
      "  --max-rules R       parser rules per grammar (default 6)\n"
      "  --no-minimize       report failures unshrunk\n"
      "  --no-grammar-checks skip determinism + serializer oracles\n"
      "  --no-leftrec        drop left-recursive rules from the envelope\n"
      "  --no-preds          drop syntactic/semantic predicates\n"
      "  --no-blocks         drop EBNF blocks\n"
      "  --dump-dir DIR      write each failure as DIR/fail-N.g + .input\n"
      "  --emit-corpus DIR COUNT\n"
      "                      generate COUNT valid grammars into DIR and "
      "exit\n"
      "  --lint-smoke        lint each generated grammar instead of the\n"
      "                      differential checks: asserts the lint engine\n"
      "                      never crashes and is run-to-run deterministic\n"
      "  --recover-smoke     mutate valid sentences and parse the mutants\n"
      "                      with error recovery on: asserts recovery\n"
      "                      terminates, reports >=1 error per rejected\n"
      "                      mutant, keeps error spans sorted, and renders\n"
      "                      heap and arena trees identically\n"
      "  --quiet             suppress progress output\n");
  return 2;
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Contents;
  return true;
}

int emitCorpus(const FuzzConfig &Config, const std::string &Dir, int Count) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  int Written = 0;
  // Probe sub-seeds until Count grammars pass full analysis; any skip is a
  // generator bug, but the corpus emitter should not wedge on one.
  for (uint64_t Probe = 0; Written < Count && Probe < uint64_t(Count) * 4;
       ++Probe) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, Probe);
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    DifferentialOracle Oracle(G.text());
    if (!Oracle.valid()) {
      std::fprintf(stderr, "warning: seed %llu generated invalid grammar\n",
                   (unsigned long long)SubSeed);
      continue;
    }
    char Name[64];
    std::snprintf(Name, sizeof(Name), "fuzz_%03d.g", Written);
    std::string Header =
        "// fuzz corpus grammar " + std::to_string(Written) + " (seed " +
        std::to_string(SubSeed) + ", master seed " +
        std::to_string(Config.Seed) + ")\n";
    if (!writeFile(Dir + "/" + Name, Header + G.text())) {
      std::fprintf(stderr, "error: cannot write %s/%s\n", Dir.c_str(), Name);
      return 1;
    }
    ++Written;
  }
  std::printf("wrote %d corpus grammars to %s\n", Written, Dir.c_str());
  return Written == Count ? 0 : 1;
}

// --lint-smoke: generate grammars and push each through the full lint
// pipeline (all passes + all three renderers) twice, asserting the two
// runs render identically. Crashes surface as a nonzero exit from the
// harness; nondeterminism fails here.
int lintSmoke(const FuzzConfig &Config, bool Quiet) {
  int Failures = 0;
  int Linted = 0;
  for (int I = 0; I < Config.Iterations; ++I) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, uint64_t(I));
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    std::string Text = G.text();
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Text, Diags);
    if (!AG || Diags.hasErrors())
      continue; // generator emitted an invalid grammar; other modes report it
    ++Linted;
    LintOptions Opts;
    Opts.Profile = true;       // exercise every pass
    Opts.LookaheadBudget = 1;  // and both budget checks
    Opts.DfaStateBudget = 4;
    LintEngine Engine(Opts);
    auto RenderAll = [&](const LintResult &R) {
      return renderLintText(R, "fuzz.g") + renderLintJson(R, "fuzz.g") +
             renderSarif(R, "fuzz.g");
    };
    std::string First = RenderAll(Engine.run(*AG, Text));
    std::string Second = RenderAll(Engine.run(*AG, Text));
    if (First != Second) {
      ++Failures;
      std::printf("=== lint nondeterminism (seed %llu) ===\n--- grammar "
                  "---\n%s--- first ---\n%s--- second ---\n%s\n",
                  (unsigned long long)SubSeed, Text.c_str(), First.c_str(),
                  Second.c_str());
    }
    if (!Quiet && Config.Iterations >= 20 &&
        (I + 1) % (Config.Iterations / 10) == 0)
      std::printf("[%d/%d] linted %d grammars, %d failures\n", I + 1,
                  Config.Iterations, Linted, Failures);
  }
  std::printf("lint smoke done: seed %llu, %d/%d grammars linted, "
              "%d failure%s\n",
              (unsigned long long)Config.Seed, Linted, Config.Iterations,
              Failures, Failures == 1 ? "" : "s");
  return Failures ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// --recover-smoke
//===----------------------------------------------------------------------===//

/// One mutant pushed through the error-recovering parser. Returns a
/// non-empty failure detail when any recovery invariant breaks.
std::string checkRecoverOnce(const AnalyzedGrammar &AG,
                             const std::string &Input) {
  // Lex once up front; a mutation cannot produce unlexable text (token
  // texts are drawn from the grammar), but stay defensive.
  DiagnosticEngine LexDiags;
  Lexer L(AG.grammar().lexerSpec(), LexDiags);
  std::vector<Token> Tokens = L.tokenize(Input, LexDiags);
  if (LexDiags.hasErrors())
    return "";

  // Label the mutant with the packrat baseline: mutations may stay inside
  // the language, in which case recovery must report nothing.
  bool InLanguage;
  {
    TokenStream Stream{std::vector<Token>(Tokens)};
    DiagnosticEngine Diags;
    PackratParser::Options Opts;
    PackratParser P(AG.grammar(), Stream, nullptr, Diags, Opts);
    P.parse();
    InLanguage = P.ok();
  }

  // Heap-tree recovering parse.
  std::string HeapTree;
  size_t HeapErrorNodes = 0;
  size_t NumErrors = 0;
  {
    TokenStream Stream{std::vector<Token>(Tokens)};
    DiagnosticEngine Diags;
    ParserOptions Opts;
    Opts.BuildTree = true;
    Opts.Recover = true;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    auto Tree = P.parse();
    NumErrors = Diags.errorCount();
    if (!InLanguage && NumErrors == 0)
      return "packrat rejects the mutant but the recovering parse "
             "reported no syntax error";
    if (InLanguage && NumErrors > 0)
      return "packrat accepts the mutant but the recovering parse "
             "reported " +
             std::to_string(NumErrors) + " error(s)";
    if (!Tree)
      return "recovering parse returned no tree";
    if (NumErrors > 0 && Tree->numErrorNodes() == 0)
      return "syntax errors were reported but the partial tree has no "
             "error nodes";
    HeapTree = Tree->str(AG.grammar());
    HeapErrorNodes = Tree->numErrorNodes();

    // Error spans must come back sorted by source position.
    SourceLocation Prev;
    bool HavePrev = false;
    for (const Diagnostic &D : Diags.sorted()) {
      if (D.Severity != DiagSeverity::Error)
        continue;
      if (HavePrev && (D.Loc.Line < Prev.Line ||
                       (D.Loc.Line == Prev.Line &&
                        D.Loc.Column < Prev.Column)))
        return "sorted error list is out of source order";
      Prev = D.Loc;
      HavePrev = true;
    }
  }

  // Arena-tree recovering parse: byte-identical rendering, same repairs.
  {
    TokenStream Stream{std::vector<Token>(Tokens)};
    DiagnosticEngine Diags;
    Arena TreeArena;
    ParserOptions Opts;
    Opts.BuildTree = true;
    Opts.Recover = true;
    Opts.TreeArena = &TreeArena;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    P.parse();
    if (!P.arenaTree())
      return "arena recovering parse returned no tree";
    if (Diags.errorCount() != NumErrors)
      return "heap and arena parses disagree on the error count";
    if (P.arenaTree()->numErrorNodes() != HeapErrorNodes)
      return "heap and arena trees disagree on error-node count";
    std::string ArenaTree = P.arenaTree()->str(AG.grammar(), Stream);
    if (ArenaTree != HeapTree)
      return "heap tree <" + HeapTree + "> != arena tree <" + ArenaTree +
             ">";
  }
  return "";
}

// --recover-smoke: derive minimal valid sentences per decision (SentenceGen
// seeds, sampler fallback), mutate each 1-3 times, and parse every mutant
// with recovery enabled in both heap and arena tree modes. Crashes and
// hangs surface through the harness; invariant breaks fail here.
int recoverSmoke(const FuzzConfig &Config, bool Quiet) {
  int Failures = 0;
  int Tested = 0;
  long long Mutants = 0;
  for (int I = 0; I < Config.Iterations; ++I) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, uint64_t(I));
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    std::string Text = G.text();
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Text, Diags);
    if (!AG || Diags.hasErrors())
      continue; // generator emitted an invalid grammar; other modes report it
    ++Tested;

    SentenceGen SeedGen(*AG);
    std::vector<std::vector<std::string>> Seeds =
        SeedGen.seeds(size_t(std::max(Config.SentencesPerGrammar, 1)));
    SentenceSampler Sampler(AG->grammar(), SubSeed);
    while (Seeds.size() < size_t(std::max(Config.SentencesPerGrammar, 1)))
      Seeds.push_back(Sampler.sample());

    FuzzRng Rng(FuzzRng::mix(SubSeed, 0x5eed));
    for (const std::vector<std::string> &Seed : Seeds) {
      for (int M = 0; M < std::max(Config.MutationsPerSentence, 1); ++M) {
        std::vector<std::string> Mutant = Seed;
        int Edits = 1 + int(Rng.below(3));
        for (int E = 0; E < Edits; ++E)
          Mutant = Sampler.mutate(Mutant);
        ++Mutants;
        std::string Input = SentenceSampler::render(Mutant);
        std::string Detail = checkRecoverOnce(*AG, Input);
        if (!Detail.empty()) {
          ++Failures;
          std::printf("=== recover failure (seed %llu) ===\n%s\n"
                      "--- grammar ---\n%s--- input ---\n%s\n",
                      (unsigned long long)SubSeed, Detail.c_str(),
                      Text.c_str(), Input.c_str());
        }
      }
    }
    if (!Quiet && Config.Iterations >= 20 &&
        (I + 1) % (Config.Iterations / 10) == 0)
      std::printf("[%d/%d] %d grammars, %lld mutants, %d failures\n", I + 1,
                  Config.Iterations, Tested, Mutants, Failures);
  }
  std::printf("recover smoke done: seed %llu, %d/%d grammars, %lld mutants "
              "recovered, %d failure%s\n",
              (unsigned long long)Config.Seed, Tested, Config.Iterations,
              Mutants, Failures, Failures == 1 ? "" : "s");
  return Failures ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzConfig Config;
  Config.Iterations = 1000;
  bool Quiet = false, LintSmoke = false, RecoverSmoke = false;
  std::string DumpDir, CorpusDir;
  int CorpusCount = 0;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto Next = [&]() -> const char * {
      return I + 1 < Args.size() ? Args[++I].c_str() : nullptr;
    };
    if (Args[I] == "--seed") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Seed = std::strtoull(V, nullptr, 10);
    } else if (Args[I] == "--iters") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Iterations = std::atoi(V);
    } else if (Args[I] == "--sentences") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.SentencesPerGrammar = std::atoi(V);
    } else if (Args[I] == "--mutations") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.MutationsPerSentence = std::atoi(V);
    } else if (Args[I] == "--max-rules") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Envelope.MaxRules = std::atoi(V);
    } else if (Args[I] == "--no-minimize") {
      Config.Minimize = false;
    } else if (Args[I] == "--no-grammar-checks") {
      Config.CheckGrammarLevel = false;
    } else if (Args[I] == "--no-leftrec") {
      Config.Envelope.LeftRecursion = false;
    } else if (Args[I] == "--no-preds") {
      Config.Envelope.SynPreds = Config.Envelope.SemPreds = false;
    } else if (Args[I] == "--no-blocks") {
      Config.Envelope.EbnfBlocks = false;
    } else if (Args[I] == "--dump-dir") {
      const char *V = Next();
      if (!V)
        return usage();
      DumpDir = V;
    } else if (Args[I] == "--emit-corpus") {
      const char *D = Next();
      const char *C = Next();
      if (!D || !C)
        return usage();
      CorpusDir = D;
      CorpusCount = std::atoi(C);
    } else if (Args[I] == "--lint-smoke") {
      LintSmoke = true;
    } else if (Args[I] == "--recover-smoke") {
      RecoverSmoke = true;
    } else if (Args[I] == "--quiet") {
      Quiet = true;
    } else {
      return usage();
    }
  }

  if (!CorpusDir.empty())
    return emitCorpus(Config, CorpusDir, CorpusCount);
  if (LintSmoke)
    return lintSmoke(Config, Quiet);
  if (RecoverSmoke)
    return recoverSmoke(Config, Quiet);

  Fuzzer F(Config);
  if (!Quiet) {
    int Every = Config.Iterations >= 20 ? Config.Iterations / 10 : 1;
    F.Progress = [&](int Iteration, const FuzzRunStats &S) {
      if ((Iteration + 1) % Every == 0)
        std::printf("[%d/%d] grammars %lld, sentences %lld, mutants %lld, "
                    "accepted %lld, rejected %lld, failures %lld\n",
                    Iteration + 1, Config.Iterations, (long long)S.Grammars,
                    (long long)S.Sentences, (long long)S.Mutants,
                    (long long)S.Accepted, (long long)S.Rejected,
                    (long long)S.Failures);
    };
  }

  int NumFailures = F.run();
  const FuzzRunStats &S = F.stats();
  std::printf("fuzz done: seed %llu, %lld grammars, %lld sentences, %lld "
              "mutants (%lld in-language, %lld out-of-language), "
              "%d failure%s\n",
              (unsigned long long)Config.Seed, (long long)S.Grammars,
              (long long)S.Sentences, (long long)S.Mutants,
              (long long)S.Accepted, (long long)S.Rejected, NumFailures,
              NumFailures == 1 ? "" : "s");

  if (!DumpDir.empty() && NumFailures) {
    std::error_code Ec;
    std::filesystem::create_directories(DumpDir, Ec);
  }
  for (size_t I = 0; I < F.failures().size(); ++I) {
    const FuzzFailure &Fail = F.failures()[I];
    std::printf("\n=== failure %zu: %s (grammar seed %llu) ===\n%s\n"
                "--- grammar ---\n%s--- input ---\n%s\n",
                I, Fail.Check.c_str(), (unsigned long long)Fail.GrammarSeed,
                Fail.Detail.c_str(), Fail.GrammarText.c_str(),
                Fail.Input.c_str());
    if (!DumpDir.empty()) {
      std::string Stem = DumpDir + "/fail-" + std::to_string(I);
      writeFile(Stem + ".g", Fail.GrammarText);
      writeFile(Stem + ".input", Fail.Input + "\n");
    }
  }
  return NumFailures ? 1 : 0;
}
