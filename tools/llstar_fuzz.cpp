//===- tools/llstar_fuzz.cpp - Differential grammar fuzzer ----------------===//
//
// The `llstar-fuzz` driver: generates random predicated grammars, samples
// in-language sentences and out-of-language mutation candidates, and
// cross-checks the LL(*) predictor-driven parser against the packrat/PEG
// baseline, analysis determinism, and the serializer round-trip. Failures
// are minimized and printed (and optionally written out) as replayable
// reproducers.
//
//   llstar-fuzz [--seed N] [--iters K] [--sentences S] [--mutations M]
//               [--max-rules R] [--no-minimize] [--no-grammar-checks]
//               [--no-leftrec] [--no-preds] [--no-blocks]
//               [--dump-dir DIR] [--emit-corpus DIR COUNT]
//               [--lint-smoke] [--quiet]
//
// Exit status: 0 when every check passed, 1 on any oracle failure, 2 on
// usage errors. Runs are deterministic: the same flags and seed replay
// bit-identically.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "lint/Lint.h"
#include "lint/SarifWriter.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace llstar;
using namespace llstar::fuzz;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: llstar-fuzz [options]\n"
      "  --seed N            master seed (default 0)\n"
      "  --iters K           grammars to generate (default 1000)\n"
      "  --sentences S       in-language samples per grammar (default 4)\n"
      "  --mutations M       mutation candidates per sample (default 2)\n"
      "  --max-rules R       parser rules per grammar (default 6)\n"
      "  --no-minimize       report failures unshrunk\n"
      "  --no-grammar-checks skip determinism + serializer oracles\n"
      "  --no-leftrec        drop left-recursive rules from the envelope\n"
      "  --no-preds          drop syntactic/semantic predicates\n"
      "  --no-blocks         drop EBNF blocks\n"
      "  --dump-dir DIR      write each failure as DIR/fail-N.g + .input\n"
      "  --emit-corpus DIR COUNT\n"
      "                      generate COUNT valid grammars into DIR and "
      "exit\n"
      "  --lint-smoke        lint each generated grammar instead of the\n"
      "                      differential checks: asserts the lint engine\n"
      "                      never crashes and is run-to-run deterministic\n"
      "  --quiet             suppress progress output\n");
  return 2;
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Contents;
  return true;
}

int emitCorpus(const FuzzConfig &Config, const std::string &Dir, int Count) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  int Written = 0;
  // Probe sub-seeds until Count grammars pass full analysis; any skip is a
  // generator bug, but the corpus emitter should not wedge on one.
  for (uint64_t Probe = 0; Written < Count && Probe < uint64_t(Count) * 4;
       ++Probe) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, Probe);
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    DifferentialOracle Oracle(G.text());
    if (!Oracle.valid()) {
      std::fprintf(stderr, "warning: seed %llu generated invalid grammar\n",
                   (unsigned long long)SubSeed);
      continue;
    }
    char Name[64];
    std::snprintf(Name, sizeof(Name), "fuzz_%03d.g", Written);
    std::string Header =
        "// fuzz corpus grammar " + std::to_string(Written) + " (seed " +
        std::to_string(SubSeed) + ", master seed " +
        std::to_string(Config.Seed) + ")\n";
    if (!writeFile(Dir + "/" + Name, Header + G.text())) {
      std::fprintf(stderr, "error: cannot write %s/%s\n", Dir.c_str(), Name);
      return 1;
    }
    ++Written;
  }
  std::printf("wrote %d corpus grammars to %s\n", Written, Dir.c_str());
  return Written == Count ? 0 : 1;
}

// --lint-smoke: generate grammars and push each through the full lint
// pipeline (all passes + all three renderers) twice, asserting the two
// runs render identically. Crashes surface as a nonzero exit from the
// harness; nondeterminism fails here.
int lintSmoke(const FuzzConfig &Config, bool Quiet) {
  int Failures = 0;
  int Linted = 0;
  for (int I = 0; I < Config.Iterations; ++I) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, uint64_t(I));
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    std::string Text = G.text();
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Text, Diags);
    if (!AG || Diags.hasErrors())
      continue; // generator emitted an invalid grammar; other modes report it
    ++Linted;
    LintOptions Opts;
    Opts.Profile = true;       // exercise every pass
    Opts.LookaheadBudget = 1;  // and both budget checks
    Opts.DfaStateBudget = 4;
    LintEngine Engine(Opts);
    auto RenderAll = [&](const LintResult &R) {
      return renderLintText(R, "fuzz.g") + renderLintJson(R, "fuzz.g") +
             renderSarif(R, "fuzz.g");
    };
    std::string First = RenderAll(Engine.run(*AG, Text));
    std::string Second = RenderAll(Engine.run(*AG, Text));
    if (First != Second) {
      ++Failures;
      std::printf("=== lint nondeterminism (seed %llu) ===\n--- grammar "
                  "---\n%s--- first ---\n%s--- second ---\n%s\n",
                  (unsigned long long)SubSeed, Text.c_str(), First.c_str(),
                  Second.c_str());
    }
    if (!Quiet && Config.Iterations >= 20 &&
        (I + 1) % (Config.Iterations / 10) == 0)
      std::printf("[%d/%d] linted %d grammars, %d failures\n", I + 1,
                  Config.Iterations, Linted, Failures);
  }
  std::printf("lint smoke done: seed %llu, %d/%d grammars linted, "
              "%d failure%s\n",
              (unsigned long long)Config.Seed, Linted, Config.Iterations,
              Failures, Failures == 1 ? "" : "s");
  return Failures ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzConfig Config;
  Config.Iterations = 1000;
  bool Quiet = false, LintSmoke = false;
  std::string DumpDir, CorpusDir;
  int CorpusCount = 0;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto Next = [&]() -> const char * {
      return I + 1 < Args.size() ? Args[++I].c_str() : nullptr;
    };
    if (Args[I] == "--seed") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Seed = std::strtoull(V, nullptr, 10);
    } else if (Args[I] == "--iters") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Iterations = std::atoi(V);
    } else if (Args[I] == "--sentences") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.SentencesPerGrammar = std::atoi(V);
    } else if (Args[I] == "--mutations") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.MutationsPerSentence = std::atoi(V);
    } else if (Args[I] == "--max-rules") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Envelope.MaxRules = std::atoi(V);
    } else if (Args[I] == "--no-minimize") {
      Config.Minimize = false;
    } else if (Args[I] == "--no-grammar-checks") {
      Config.CheckGrammarLevel = false;
    } else if (Args[I] == "--no-leftrec") {
      Config.Envelope.LeftRecursion = false;
    } else if (Args[I] == "--no-preds") {
      Config.Envelope.SynPreds = Config.Envelope.SemPreds = false;
    } else if (Args[I] == "--no-blocks") {
      Config.Envelope.EbnfBlocks = false;
    } else if (Args[I] == "--dump-dir") {
      const char *V = Next();
      if (!V)
        return usage();
      DumpDir = V;
    } else if (Args[I] == "--emit-corpus") {
      const char *D = Next();
      const char *C = Next();
      if (!D || !C)
        return usage();
      CorpusDir = D;
      CorpusCount = std::atoi(C);
    } else if (Args[I] == "--lint-smoke") {
      LintSmoke = true;
    } else if (Args[I] == "--quiet") {
      Quiet = true;
    } else {
      return usage();
    }
  }

  if (!CorpusDir.empty())
    return emitCorpus(Config, CorpusDir, CorpusCount);
  if (LintSmoke)
    return lintSmoke(Config, Quiet);

  Fuzzer F(Config);
  if (!Quiet) {
    int Every = Config.Iterations >= 20 ? Config.Iterations / 10 : 1;
    F.Progress = [&](int Iteration, const FuzzRunStats &S) {
      if ((Iteration + 1) % Every == 0)
        std::printf("[%d/%d] grammars %lld, sentences %lld, mutants %lld, "
                    "accepted %lld, rejected %lld, failures %lld\n",
                    Iteration + 1, Config.Iterations, (long long)S.Grammars,
                    (long long)S.Sentences, (long long)S.Mutants,
                    (long long)S.Accepted, (long long)S.Rejected,
                    (long long)S.Failures);
    };
  }

  int NumFailures = F.run();
  const FuzzRunStats &S = F.stats();
  std::printf("fuzz done: seed %llu, %lld grammars, %lld sentences, %lld "
              "mutants (%lld in-language, %lld out-of-language), "
              "%d failure%s\n",
              (unsigned long long)Config.Seed, (long long)S.Grammars,
              (long long)S.Sentences, (long long)S.Mutants,
              (long long)S.Accepted, (long long)S.Rejected, NumFailures,
              NumFailures == 1 ? "" : "s");

  if (!DumpDir.empty() && NumFailures) {
    std::error_code Ec;
    std::filesystem::create_directories(DumpDir, Ec);
  }
  for (size_t I = 0; I < F.failures().size(); ++I) {
    const FuzzFailure &Fail = F.failures()[I];
    std::printf("\n=== failure %zu: %s (grammar seed %llu) ===\n%s\n"
                "--- grammar ---\n%s--- input ---\n%s\n",
                I, Fail.Check.c_str(), (unsigned long long)Fail.GrammarSeed,
                Fail.Detail.c_str(), Fail.GrammarText.c_str(),
                Fail.Input.c_str());
    if (!DumpDir.empty()) {
      std::string Stem = DumpDir + "/fail-" + std::to_string(I);
      writeFile(Stem + ".g", Fail.GrammarText);
      writeFile(Stem + ".input", Fail.Input + "\n");
    }
  }
  return NumFailures ? 1 : 0;
}
