//===- tools/llstar_fuzz.cpp - Differential grammar fuzzer ----------------===//
//
// The `llstar-fuzz` driver: generates random predicated grammars, samples
// in-language sentences and out-of-language mutation candidates, and
// cross-checks the LL(*) predictor-driven parser against the packrat/PEG
// baseline, analysis determinism, and the serializer round-trip. Failures
// are minimized and printed (and optionally written out) as replayable
// reproducers.
//
//   llstar-fuzz [--seed N] [--iters K] [--sentences S] [--mutations M]
//               [--max-rules R] [--no-minimize] [--no-grammar-checks]
//               [--no-leftrec] [--no-preds] [--no-blocks]
//               [--dump-dir DIR] [--emit-corpus DIR COUNT]
//               [--lint-smoke] [--recover-smoke]
//               [--edit-smoke] [--corpus DIR] [--edits N] [--quiet]
//
// Exit status: 0 when every check passed, 1 on any oracle failure, 2 on
// usage errors. Runs are deterministic: the same flags and seed replay
// bit-identically.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/SentenceGen.h"
#include "fuzz/SentenceSampler.h"
#include "incremental/IncrementalSession.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "lint/Lint.h"
#include "lint/SarifWriter.h"
#include "peg/PackratParser.h"
#include "runtime/LLStarParser.h"
#include "service/GrammarBundleCache.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace llstar;
using namespace llstar::fuzz;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: llstar-fuzz [options]\n"
      "  --seed N            master seed (default 0)\n"
      "  --iters K           grammars to generate (default 1000)\n"
      "  --sentences S       in-language samples per grammar (default 4)\n"
      "  --mutations M       mutation candidates per sample (default 2)\n"
      "  --max-rules R       parser rules per grammar (default 6)\n"
      "  --no-minimize       report failures unshrunk\n"
      "  --no-grammar-checks skip determinism + serializer oracles\n"
      "  --no-leftrec        drop left-recursive rules from the envelope\n"
      "  --no-preds          drop syntactic/semantic predicates\n"
      "  --no-blocks         drop EBNF blocks\n"
      "  --dump-dir DIR      write each failure as DIR/fail-N.g + .input\n"
      "  --emit-corpus DIR COUNT\n"
      "                      generate COUNT valid grammars into DIR and "
      "exit\n"
      "  --lint-smoke        lint each generated grammar instead of the\n"
      "                      differential checks: asserts the lint engine\n"
      "                      never crashes and is run-to-run deterministic\n"
      "  --recover-smoke     mutate valid sentences and parse the mutants\n"
      "                      with error recovery on: asserts recovery\n"
      "                      terminates, reports >=1 error per rejected\n"
      "                      mutant, keeps error spans sorted, and renders\n"
      "                      heap and arena trees identically\n"
      "  --edit-smoke        drive an incremental session through random\n"
      "                      insert/delete/replace edit scripts (including\n"
      "                      token-splitting and trivia-spanning edits) and\n"
      "                      assert that tokens, tree, and diagnostics stay\n"
      "                      byte-identical to a from-scratch parse after\n"
      "                      every edit, rotating through heap|arena x\n"
      "                      interpreted|compiled x recovery on|off\n"
      "  --corpus DIR        edit-smoke only: take grammars from DIR/*.g\n"
      "                      instead of generating them\n"
      "  --edits N           edit-smoke: edits per session (default 8)\n"
      "  --quiet             suppress progress output\n");
  return 2;
}

bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Contents;
  return true;
}

int emitCorpus(const FuzzConfig &Config, const std::string &Dir, int Count) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  int Written = 0;
  // Probe sub-seeds until Count grammars pass full analysis; any skip is a
  // generator bug, but the corpus emitter should not wedge on one.
  for (uint64_t Probe = 0; Written < Count && Probe < uint64_t(Count) * 4;
       ++Probe) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, Probe);
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    DifferentialOracle Oracle(G.text());
    if (!Oracle.valid()) {
      std::fprintf(stderr, "warning: seed %llu generated invalid grammar\n",
                   (unsigned long long)SubSeed);
      continue;
    }
    char Name[64];
    std::snprintf(Name, sizeof(Name), "fuzz_%03d.g", Written);
    std::string Header =
        "// fuzz corpus grammar " + std::to_string(Written) + " (seed " +
        std::to_string(SubSeed) + ", master seed " +
        std::to_string(Config.Seed) + ")\n";
    if (!writeFile(Dir + "/" + Name, Header + G.text())) {
      std::fprintf(stderr, "error: cannot write %s/%s\n", Dir.c_str(), Name);
      return 1;
    }
    ++Written;
  }
  std::printf("wrote %d corpus grammars to %s\n", Written, Dir.c_str());
  return Written == Count ? 0 : 1;
}

// --lint-smoke: generate grammars and push each through the full lint
// pipeline (all passes + all three renderers) twice, asserting the two
// runs render identically. Crashes surface as a nonzero exit from the
// harness; nondeterminism fails here.
int lintSmoke(const FuzzConfig &Config, bool Quiet) {
  int Failures = 0;
  int Linted = 0;
  for (int I = 0; I < Config.Iterations; ++I) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, uint64_t(I));
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    std::string Text = G.text();
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Text, Diags);
    if (!AG || Diags.hasErrors())
      continue; // generator emitted an invalid grammar; other modes report it
    ++Linted;
    LintOptions Opts;
    Opts.Profile = true;       // exercise every pass
    Opts.LookaheadBudget = 1;  // and both budget checks
    Opts.DfaStateBudget = 4;
    LintEngine Engine(Opts);
    auto RenderAll = [&](const LintResult &R) {
      return renderLintText(R, "fuzz.g") + renderLintJson(R, "fuzz.g") +
             renderSarif(R, "fuzz.g");
    };
    std::string First = RenderAll(Engine.run(*AG, Text));
    std::string Second = RenderAll(Engine.run(*AG, Text));
    if (First != Second) {
      ++Failures;
      std::printf("=== lint nondeterminism (seed %llu) ===\n--- grammar "
                  "---\n%s--- first ---\n%s--- second ---\n%s\n",
                  (unsigned long long)SubSeed, Text.c_str(), First.c_str(),
                  Second.c_str());
    }
    if (!Quiet && Config.Iterations >= 20 &&
        (I + 1) % (Config.Iterations / 10) == 0)
      std::printf("[%d/%d] linted %d grammars, %d failures\n", I + 1,
                  Config.Iterations, Linted, Failures);
  }
  std::printf("lint smoke done: seed %llu, %d/%d grammars linted, "
              "%d failure%s\n",
              (unsigned long long)Config.Seed, Linted, Config.Iterations,
              Failures, Failures == 1 ? "" : "s");
  return Failures ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// --recover-smoke
//===----------------------------------------------------------------------===//

/// One mutant pushed through the error-recovering parser. Returns a
/// non-empty failure detail when any recovery invariant breaks.
std::string checkRecoverOnce(const AnalyzedGrammar &AG,
                             const std::string &Input) {
  // Lex once up front; a mutation cannot produce unlexable text (token
  // texts are drawn from the grammar), but stay defensive.
  DiagnosticEngine LexDiags;
  Lexer L(AG.grammar().lexerSpec(), LexDiags);
  std::vector<Token> Tokens = L.tokenize(Input, LexDiags);
  if (LexDiags.hasErrors())
    return "";

  // Label the mutant with the packrat baseline: mutations may stay inside
  // the language, in which case recovery must report nothing.
  bool InLanguage;
  {
    TokenStream Stream{std::vector<Token>(Tokens)};
    DiagnosticEngine Diags;
    PackratParser::Options Opts;
    PackratParser P(AG.grammar(), Stream, nullptr, Diags, Opts);
    P.parse();
    InLanguage = P.ok();
  }

  // Heap-tree recovering parse.
  std::string HeapTree;
  size_t HeapErrorNodes = 0;
  size_t NumErrors = 0;
  {
    TokenStream Stream{std::vector<Token>(Tokens)};
    DiagnosticEngine Diags;
    ParserOptions Opts;
    Opts.BuildTree = true;
    Opts.Recover = true;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    auto Tree = P.parse();
    NumErrors = Diags.errorCount();
    if (!InLanguage && NumErrors == 0)
      return "packrat rejects the mutant but the recovering parse "
             "reported no syntax error";
    if (InLanguage && NumErrors > 0)
      return "packrat accepts the mutant but the recovering parse "
             "reported " +
             std::to_string(NumErrors) + " error(s)";
    if (!Tree)
      return "recovering parse returned no tree";
    if (NumErrors > 0 && Tree->numErrorNodes() == 0)
      return "syntax errors were reported but the partial tree has no "
             "error nodes";
    HeapTree = Tree->str(AG.grammar());
    HeapErrorNodes = Tree->numErrorNodes();

    // Error spans must come back sorted by source position.
    SourceLocation Prev;
    bool HavePrev = false;
    for (const Diagnostic &D : Diags.sorted()) {
      if (D.Severity != DiagSeverity::Error)
        continue;
      if (HavePrev && (D.Loc.Line < Prev.Line ||
                       (D.Loc.Line == Prev.Line &&
                        D.Loc.Column < Prev.Column)))
        return "sorted error list is out of source order";
      Prev = D.Loc;
      HavePrev = true;
    }
  }

  // Arena-tree recovering parse: byte-identical rendering, same repairs.
  {
    TokenStream Stream{std::vector<Token>(Tokens)};
    DiagnosticEngine Diags;
    Arena TreeArena;
    ParserOptions Opts;
    Opts.BuildTree = true;
    Opts.Recover = true;
    Opts.TreeArena = &TreeArena;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    P.parse();
    if (!P.arenaTree())
      return "arena recovering parse returned no tree";
    if (Diags.errorCount() != NumErrors)
      return "heap and arena parses disagree on the error count";
    if (P.arenaTree()->numErrorNodes() != HeapErrorNodes)
      return "heap and arena trees disagree on error-node count";
    std::string ArenaTree = P.arenaTree()->str(AG.grammar(), Stream);
    if (ArenaTree != HeapTree)
      return "heap tree <" + HeapTree + "> != arena tree <" + ArenaTree +
             ">";
  }
  return "";
}

// --recover-smoke: derive minimal valid sentences per decision (SentenceGen
// seeds, sampler fallback), mutate each 1-3 times, and parse every mutant
// with recovery enabled in both heap and arena tree modes. Crashes and
// hangs surface through the harness; invariant breaks fail here.
int recoverSmoke(const FuzzConfig &Config, bool Quiet) {
  int Failures = 0;
  int Tested = 0;
  long long Mutants = 0;
  for (int I = 0; I < Config.Iterations; ++I) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, uint64_t(I));
    GrammarGenerator Gen(Config.Envelope, SubSeed);
    GeneratedGrammar G = Gen.generate();
    std::string Text = G.text();
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Text, Diags);
    if (!AG || Diags.hasErrors())
      continue; // generator emitted an invalid grammar; other modes report it
    ++Tested;

    SentenceGen SeedGen(*AG);
    std::vector<std::vector<std::string>> Seeds =
        SeedGen.seeds(size_t(std::max(Config.SentencesPerGrammar, 1)));
    SentenceSampler Sampler(AG->grammar(), SubSeed);
    while (Seeds.size() < size_t(std::max(Config.SentencesPerGrammar, 1)))
      Seeds.push_back(Sampler.sample());

    FuzzRng Rng(FuzzRng::mix(SubSeed, 0x5eed));
    for (const std::vector<std::string> &Seed : Seeds) {
      for (int M = 0; M < std::max(Config.MutationsPerSentence, 1); ++M) {
        std::vector<std::string> Mutant = Seed;
        int Edits = 1 + int(Rng.below(3));
        for (int E = 0; E < Edits; ++E)
          Mutant = Sampler.mutate(Mutant);
        ++Mutants;
        std::string Input = SentenceSampler::render(Mutant);
        std::string Detail = checkRecoverOnce(*AG, Input);
        if (!Detail.empty()) {
          ++Failures;
          std::printf("=== recover failure (seed %llu) ===\n%s\n"
                      "--- grammar ---\n%s--- input ---\n%s\n",
                      (unsigned long long)SubSeed, Detail.c_str(),
                      Text.c_str(), Input.c_str());
        }
      }
    }
    if (!Quiet && Config.Iterations >= 20 &&
        (I + 1) % (Config.Iterations / 10) == 0)
      std::printf("[%d/%d] %d grammars, %lld mutants, %d failures\n", I + 1,
                  Config.Iterations, Tested, Mutants, Failures);
  }
  std::printf("recover smoke done: seed %llu, %d/%d grammars, %lld mutants "
              "recovered, %d failure%s\n",
              (unsigned long long)Config.Seed, Tested, Config.Iterations,
              Mutants, Failures, Failures == 1 ? "" : "s");
  return Failures ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// --edit-smoke
//===----------------------------------------------------------------------===//

/// Generates one random edit against \p Text. Insertions draw from whole
/// token texts, token *fragments* (splitting or extending a token under
/// the cursor and flipping maximal-munch winners at the boundary), slices
/// of the input itself (which can span comments/strings and duplicate
/// trivia), bare separators, and bytes the lexer may reject.
incremental::Edit randomEdit(FuzzRng &Rng, const std::string &Text,
                             const std::vector<std::string> &TokenTexts) {
  incremental::Edit E;
  const size_t N = Text.size();
  const uint64_t Op = Rng.below(3); // 0 insert, 1 delete, 2 replace
  if (Op == 0 || N == 0) {
    E.Offset = int64_t(Rng.below(N + 1));
  } else {
    E.Offset = int64_t(Rng.below(N));
    E.OldLen = int64_t(
        1 + Rng.below(std::min<uint64_t>(8, N - uint64_t(E.Offset))));
  }
  if (Op != 1) {
    switch (Rng.below(5)) {
    case 0:
      if (!TokenTexts.empty()) {
        E.NewText = TokenTexts[Rng.below(TokenTexts.size())];
        break;
      }
      [[fallthrough]];
    case 1: {
      if (!TokenTexts.empty()) {
        const std::string &T = TokenTexts[Rng.below(TokenTexts.size())];
        if (!T.empty()) {
          E.NewText = T.substr(0, 1 + Rng.below(T.size()));
          break;
        }
      }
      E.NewText = "x";
      break;
    }
    case 2: {
      if (N > 0) {
        size_t F = Rng.below(N);
        E.NewText = Text.substr(F, 1 + Rng.below(std::min<uint64_t>(6, N - F)));
      } else {
        E.NewText = " ";
      }
      break;
    }
    case 3:
      E.NewText = Rng.below(2) ? "\n" : " ";
      break;
    case 4:
      // Bytes most grammars cannot lex, to exercise error-lexeme
      // retention and diagnostic re-emission.
      E.NewText = std::string(1, "~@#\x01"[Rng.below(4)]);
      break;
    }
  }
  return E;
}

/// One session: reset to \p Base, apply random edits, compare the session
/// against a from-scratch parse after the reset and after every edit.
/// Returns a non-empty failure detail (with the replayable edit history)
/// on the first divergence.
std::string checkEditSessionOnce(std::shared_ptr<const GrammarBundle> Bundle,
                                 const std::string &Base, FuzzRng &Rng,
                                 const incremental::SessionOptions &SO,
                                 int EditsPerSession, long long &EditsRun,
                                 long long &NodesReused) {
  incremental::IncrementalSession S(Bundle, SO);
  std::string History;
  auto Mode = [&]() {
    std::string M = SO.UseCompiled ? "compiled" : "interp";
    M += SO.UseArena ? "+arena" : "+heap";
    M += SO.Recover ? "+recover" : "+strict";
    return M;
  };
  auto Compare = [&](const char *When) -> std::string {
    incremental::ScratchResult R =
        incremental::scratchParse(*Bundle, S.text(), SO);
    std::string Why;
    const std::vector<Token> &T = S.tokens();
    if (S.ok() != R.ParseOk) {
      Why = "ok() diverged";
    } else if (T.size() != R.Tokens.size()) {
      Why = "token count " + std::to_string(T.size()) + " vs scratch " +
            std::to_string(R.Tokens.size());
    } else {
      for (size_t I = 0; I < T.size() && Why.empty(); ++I) {
        const Token &A = T[I];
        const Token &B = R.Tokens[I];
        if (A.Type != B.Type || A.Text != B.Text || A.Offset != B.Offset ||
            A.Loc.Line != B.Loc.Line || A.Loc.Column != B.Loc.Column ||
            A.Index != B.Index)
          Why = "token " + std::to_string(I) + " diverged: <" +
                escapeString(A.Text) + "> type " + std::to_string(A.Type) +
                " off " + std::to_string(A.Offset) + " at " + A.Loc.str() +
                " idx " + std::to_string(A.Index) + " vs scratch <" +
                escapeString(B.Text) + "> type " + std::to_string(B.Type) +
                " off " + std::to_string(B.Offset) + " at " + B.Loc.str() +
                " idx " + std::to_string(B.Index);
      }
      if (Why.empty() && S.treeText() != R.TreeText)
        Why = "tree <" + S.treeText() + "> vs scratch <" + R.TreeText + ">";
      if (Why.empty() && S.diags().str() != R.DiagText)
        Why = "diagnostics <" + S.diags().str() + "> vs scratch <" +
              R.DiagText + ">";
    }
    if (Why.empty())
      return "";
    return std::string(When) + " [" + Mode() + "]: " + Why +
           "\n--- text ---\n" + escapeString(S.text()) +
           "\n--- edit history ---\n" + History;
  };

  incremental::EditOutcome O = S.reset(Base);
  (void)O;
  if (std::string F = Compare("after reset"); !F.empty())
    return F;

  // Token texts feed the edit generator; take them from the base parse.
  std::vector<std::string> TokenTexts;
  for (const Token &T : S.tokens())
    if (!T.isEof())
      TokenTexts.push_back(T.Text);

  for (int K = 0; K < EditsPerSession; ++K) {
    incremental::Edit E = randomEdit(Rng, S.text(), TokenTexts);
    History += "edit " + std::to_string(K) + ": offset " +
               std::to_string(E.Offset) + " oldLen " +
               std::to_string(E.OldLen) + " newText \"" +
               escapeString(E.NewText) + "\"\n";
    O = S.applyEdit(E);
    if (O.Error != incremental::EditScriptError::None)
      return std::string("generated edit was rejected (") +
             incremental::editScriptErrorName(O.Error) + ")\n--- edit "
             "history ---\n" + History;
    ++EditsRun;
    NodesReused += O.NodesReused;
    // The outcome's structural counters must agree with the oracle too.
    incremental::ScratchResult R =
        incremental::scratchParse(*Bundle, S.text(), SO);
    if (O.TreeNodes != R.TreeNodes || O.ErrorLeaves != R.ErrorLeaves)
      return "outcome counters diverged [" + Mode() + "]: nodes " +
             std::to_string(O.TreeNodes) + "/" + std::to_string(R.TreeNodes) +
             " errorLeaves " + std::to_string(O.ErrorLeaves) + "/" +
             std::to_string(R.ErrorLeaves) + "\n--- text ---\n" +
             escapeString(S.text()) + "\n--- edit history ---\n" + History;
    if (std::string F = Compare("after edit"); !F.empty())
      return F;
  }
  return "";
}

// --edit-smoke: for each iteration pick a grammar (generated, or from
// --corpus DIR), derive a base sentence, and run an incremental session
// through a random edit script, checking byte-identical equivalence with
// from-scratch parses after every edit. Iterations rotate through all
// eight engine/tree/recovery mode combinations.
int editSmoke(const FuzzConfig &Config, const std::string &CorpusDir,
              int EditsPerSession, bool Quiet) {
  std::vector<std::pair<std::string, std::shared_ptr<const GrammarBundle>>>
      Corpus;
  if (!CorpusDir.empty()) {
    std::error_code Ec;
    std::vector<std::string> Paths;
    for (const auto &Entry :
         std::filesystem::directory_iterator(CorpusDir, Ec))
      if (Entry.path().extension() == ".g")
        Paths.push_back(Entry.path().string());
    std::sort(Paths.begin(), Paths.end());
    for (const std::string &P : Paths) {
      std::ifstream In(P);
      std::string Text((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
      DiagnosticEngine Diags;
      auto B = makeGrammarBundle(Text, Diags);
      if (B)
        Corpus.emplace_back(P, std::move(B));
      else
        std::fprintf(stderr, "warning: skipping %s: %s\n", P.c_str(),
                     Diags.str().c_str());
    }
    if (Corpus.empty()) {
      std::fprintf(stderr, "error: no loadable grammars in %s\n",
                   CorpusDir.c_str());
      return 2;
    }
  }

  int Failures = 0, Sessions = 0;
  long long Edits = 0, Reused = 0;
  for (int I = 0; I < Config.Iterations; ++I) {
    uint64_t SubSeed = FuzzRng::mix(Config.Seed, uint64_t(I));
    std::shared_ptr<const GrammarBundle> Bundle;
    std::string GrammarName;
    if (!Corpus.empty()) {
      const auto &Pick = Corpus[size_t(I) % Corpus.size()];
      GrammarName = Pick.first;
      Bundle = Pick.second;
    } else {
      GrammarGenerator Gen(Config.Envelope, SubSeed);
      GeneratedGrammar G = Gen.generate();
      DiagnosticEngine Diags;
      Bundle = makeGrammarBundle(G.text(), Diags);
      if (!Bundle)
        continue; // generator emitted an invalid grammar
      GrammarName = "<generated seed " + std::to_string(SubSeed) + ">";
    }

    // Base input: the longest derivable seed sentence, rendered with an
    // occasional newline separator so edits cross line boundaries.
    const AnalyzedGrammar &AG = Bundle->analyzed();
    SentenceGen SeedGen(AG);
    std::vector<std::vector<std::string>> Seeds =
        SeedGen.seeds(size_t(std::max(Config.SentencesPerGrammar, 1)));
    SentenceSampler Sampler(AG.grammar(), SubSeed);
    while (Seeds.size() < size_t(std::max(Config.SentencesPerGrammar, 1)))
      Seeds.push_back(Sampler.sample());
    FuzzRng Rng(FuzzRng::mix(SubSeed, 0xed17));
    std::vector<std::string> Words;
    for (const std::vector<std::string> &Seed : Seeds)
      if (Seed.size() > Words.size())
        Words = Seed;
    if (Rng.chance(25))
      Words = Sampler.mutate(Words); // start some sessions off-language
    std::string Base;
    for (size_t W = 0; W < Words.size(); ++W) {
      if (W)
        Base += Rng.chance(20) ? '\n' : ' ';
      Base += Words[W];
    }

    incremental::SessionOptions SO;
    SO.UseCompiled = (I & 1) != 0;
    SO.UseArena = (I & 2) != 0;
    SO.Recover = (I & 4) == 0;
    ++Sessions;
    std::string Detail = checkEditSessionOnce(Bundle, Base, Rng, SO,
                                              std::max(EditsPerSession, 1),
                                              Edits, Reused);
    if (!Detail.empty()) {
      ++Failures;
      std::printf("=== edit-smoke failure (seed %llu, grammar %s) ===\n%s\n",
                  (unsigned long long)SubSeed, GrammarName.c_str(),
                  Detail.c_str());
    }
    if (!Quiet && Config.Iterations >= 20 &&
        (I + 1) % (Config.Iterations / 10) == 0)
      std::printf("[%d/%d] %d sessions, %lld edits, %lld subtrees reused, "
                  "%d failures\n",
                  I + 1, Config.Iterations, Sessions, Edits, Reused,
                  Failures);
  }
  std::printf("edit smoke done: seed %llu, %d sessions, %lld edits, %lld "
              "subtrees reused, %d failure%s\n",
              (unsigned long long)Config.Seed, Sessions, Edits, Reused,
              Failures, Failures == 1 ? "" : "s");
  return Failures ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzConfig Config;
  Config.Iterations = 1000;
  bool Quiet = false, LintSmoke = false, RecoverSmoke = false;
  bool EditSmoke = false;
  std::string DumpDir, CorpusDir, EditCorpusDir;
  int CorpusCount = 0, EditsPerSession = 8;

  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    auto Next = [&]() -> const char * {
      return I + 1 < Args.size() ? Args[++I].c_str() : nullptr;
    };
    if (Args[I] == "--seed") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Seed = std::strtoull(V, nullptr, 10);
    } else if (Args[I] == "--iters") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Iterations = std::atoi(V);
    } else if (Args[I] == "--sentences") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.SentencesPerGrammar = std::atoi(V);
    } else if (Args[I] == "--mutations") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.MutationsPerSentence = std::atoi(V);
    } else if (Args[I] == "--max-rules") {
      const char *V = Next();
      if (!V)
        return usage();
      Config.Envelope.MaxRules = std::atoi(V);
    } else if (Args[I] == "--no-minimize") {
      Config.Minimize = false;
    } else if (Args[I] == "--no-grammar-checks") {
      Config.CheckGrammarLevel = false;
    } else if (Args[I] == "--no-leftrec") {
      Config.Envelope.LeftRecursion = false;
    } else if (Args[I] == "--no-preds") {
      Config.Envelope.SynPreds = Config.Envelope.SemPreds = false;
    } else if (Args[I] == "--no-blocks") {
      Config.Envelope.EbnfBlocks = false;
    } else if (Args[I] == "--dump-dir") {
      const char *V = Next();
      if (!V)
        return usage();
      DumpDir = V;
    } else if (Args[I] == "--emit-corpus") {
      const char *D = Next();
      const char *C = Next();
      if (!D || !C)
        return usage();
      CorpusDir = D;
      CorpusCount = std::atoi(C);
    } else if (Args[I] == "--lint-smoke") {
      LintSmoke = true;
    } else if (Args[I] == "--recover-smoke") {
      RecoverSmoke = true;
    } else if (Args[I] == "--edit-smoke") {
      EditSmoke = true;
    } else if (Args[I] == "--corpus") {
      const char *V = Next();
      if (!V)
        return usage();
      EditCorpusDir = V;
    } else if (Args[I] == "--edits") {
      const char *V = Next();
      if (!V)
        return usage();
      EditsPerSession = std::atoi(V);
    } else if (Args[I] == "--quiet") {
      Quiet = true;
    } else {
      return usage();
    }
  }

  if (!CorpusDir.empty())
    return emitCorpus(Config, CorpusDir, CorpusCount);
  if (LintSmoke)
    return lintSmoke(Config, Quiet);
  if (RecoverSmoke)
    return recoverSmoke(Config, Quiet);
  if (EditSmoke)
    return editSmoke(Config, EditCorpusDir, EditsPerSession, Quiet);

  Fuzzer F(Config);
  if (!Quiet) {
    int Every = Config.Iterations >= 20 ? Config.Iterations / 10 : 1;
    F.Progress = [&](int Iteration, const FuzzRunStats &S) {
      if ((Iteration + 1) % Every == 0)
        std::printf("[%d/%d] grammars %lld, sentences %lld, mutants %lld, "
                    "accepted %lld, rejected %lld, failures %lld\n",
                    Iteration + 1, Config.Iterations, (long long)S.Grammars,
                    (long long)S.Sentences, (long long)S.Mutants,
                    (long long)S.Accepted, (long long)S.Rejected,
                    (long long)S.Failures);
    };
  }

  int NumFailures = F.run();
  const FuzzRunStats &S = F.stats();
  std::printf("fuzz done: seed %llu, %lld grammars, %lld sentences, %lld "
              "mutants (%lld in-language, %lld out-of-language), "
              "%d failure%s\n",
              (unsigned long long)Config.Seed, (long long)S.Grammars,
              (long long)S.Sentences, (long long)S.Mutants,
              (long long)S.Accepted, (long long)S.Rejected, NumFailures,
              NumFailures == 1 ? "" : "s");

  if (!DumpDir.empty() && NumFailures) {
    std::error_code Ec;
    std::filesystem::create_directories(DumpDir, Ec);
  }
  for (size_t I = 0; I < F.failures().size(); ++I) {
    const FuzzFailure &Fail = F.failures()[I];
    std::printf("\n=== failure %zu: %s (grammar seed %llu) ===\n%s\n"
                "--- grammar ---\n%s--- input ---\n%s\n",
                I, Fail.Check.c_str(), (unsigned long long)Fail.GrammarSeed,
                Fail.Detail.c_str(), Fail.GrammarText.c_str(),
                Fail.Input.c_str());
    if (!DumpDir.empty()) {
      std::string Stem = DumpDir + "/fail-" + std::to_string(I);
      writeFile(Stem + ".g", Fail.GrammarText);
      writeFile(Stem + ".input", Fail.Input + "\n");
    }
  }
  return NumFailures ? 1 : 0;
}
