#!/usr/bin/env bash
# CI fix smoke for the profile-guided auto-fix engine.
#
#   tools/fix_smoke.sh <llstar> <llstar-batch> <llstar-fuzz> <repo-root> <work-dir>
#
# Applies every verified auto-fix to a scratch copy of the repo's grammar
# tree (shipped grammars, examples, fuzz corpus) — profile-guided where a
# replay profile can be collected — then proves the rewritten tree is
# still healthy:
#
#  1. fixes only remove findings: the regenerated corpus baseline after
#     apply has no more findings than the shipped baseline;
#  2. the full lint gate (tools/lint_gate.sh) passes against the
#     post-apply baseline, profiled and unprofiled alike — in particular
#     grammars/ and examples/grammars/ stay --werror clean, which the
#     per-fix verifier guarantees;
#  3. a 500-iteration incremental edit smoke over the applied shipped
#     grammars keeps every parse byte-identical to a from-scratch parse.
#
# Note the corpus baseline is regenerated *after* apply rather than
# diffed against the shipped one: deleting a dead rule shifts the line
# numbers of every finding below it, so position-keyed baseline entries
# legitimately move. The count monotonicity check in (1) is the
# stable invariant.
set -u

LLSTAR=$1
BATCH=$2
FUZZ=$3
ROOT=$4
WORK=$5

fail() {
  echo "FAIL (fix-smoke): $*"
  exit 1
}

rm -rf "$WORK"
mkdir -p "$WORK/examples" "$WORK/tests" "$WORK/profiles"
cp -r "$ROOT/grammars" "$WORK/grammars"
cp -r "$ROOT/examples/grammars" "$WORK/examples/grammars"
cp -r "$ROOT/tests/corpus" "$WORK/tests/corpus"
rm -rf "$WORK/grammars/compiled" "$WORK/tests/corpus/compiled"

BEFORE=$(wc -l <"$ROOT/tests/lint-baseline.txt")

# --- collect profiles and apply verified fixes --------------------------
APPLIED=0
for g in "$WORK"/grammars/*.g "$WORK"/examples/grammars/*.g \
         "$WORK"/tests/corpus/*.g; do
  base=$(basename "$g" .g)
  prof="$WORK/profiles/$base.prof.json"
  PROFILE_ARGS=""
  # Replay a sampled corpus through the parser to collect a
  # decision-keyed profile. Some fuzz grammars sample sentences their
  # own lexer rejects (nonzero exit) — the profile is still written.
  "$BATCH" "$g" --sample 20 --seed 2026 --quiet \
    --stats-out "$prof" >/dev/null 2>&1 || true
  if [ -s "$prof" ]; then
    PROFILE_ARGS="--profile $prof"
  fi
  # shellcheck disable=SC2046
  OUT=$("$LLSTAR" lint "$g" $PROFILE_ARGS --apply 2>&1 >/dev/null) || true
  case "$OUT" in
  *"applied "*) APPLIED=$((APPLIED + 1)) ;;
  esac
done
echo "fix-smoke: applied verified fixes in $APPLIED grammar(s)"

# --- 1. fixes only remove findings --------------------------------------
"$ROOT/tools/lint_gate.sh" "$LLSTAR" "$WORK" "$WORK/lint-artifacts" \
  --update-baseline >/dev/null ||
  fail "could not regenerate baseline on the applied tree"
AFTER=$(wc -l <"$WORK/tests/lint-baseline.txt")
echo "fix-smoke: corpus findings $BEFORE before apply, $AFTER after"
if [ "$AFTER" -gt "$BEFORE" ]; then
  fail "applying fixes added findings ($BEFORE -> $AFTER)"
fi

# --- 2. the lint gate passes on the applied tree, profiled ---------------
LINT_PROFILE_DIR="$WORK/profiles" \
  "$ROOT/tools/lint_gate.sh" "$LLSTAR" "$WORK" "$WORK/lint-artifacts" ||
  fail "lint gate failed on the applied tree"

# --- 3. applied grammars parse byte-identically under incremental edits --
"$FUZZ" --edit-smoke --corpus "$WORK/grammars" --seed 42 --iters 500 \
  --quiet || fail "edit smoke failed on applied grammars"

echo "fix-smoke: OK"
