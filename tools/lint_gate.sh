#!/usr/bin/env bash
# CI lint gate for the llstar repo.
#
#   tools/lint_gate.sh <llstar-binary> <repo-root> <artifact-dir>
#
# Policy:
#  - grammars/*.g and examples/grammars/*.g must lint clean under --werror
#    (real findings there are fixed or suppressed in-grammar);
#  - tests/corpus/*.g are fuzz-generated and legitimately trigger
#    diagnostics (dead rules, unhoisted predicates, ...); they are gated
#    against tests/lint-baseline.txt instead — any diagnostic not in the
#    baseline fails the job, so new findings surface without freezing the
#    corpus. Regenerate the baseline with:
#      tools/lint_gate.sh <llstar> <root> <dir> --update-baseline
#  - a SARIF 2.1.0 log per linted grammar (with verified fixes objects,
#    computed via --fixes) is written to <artifact-dir> for
#    upload;
#  - profiled and unprofiled runs gate identically: when LINT_PROFILE_DIR
#    is set and holds a decision-keyed profile named <grammar>.prof.json
#    (from parse --stats-json / llstar-batch --stats-out), lint runs with
#    --profile — findings gain hotness fields and re-rank by observed
#    cost, but the baseline keys (<path>:<line>:<col>:<id>) are
#    position-based and the baseline is sorted, so the same baseline
#    accepts both modes. Hotness continuation lines ("    hotness: ...")
#    are indented and never match the key pattern;
#  - the gate runs once per prediction-analysis backend (LINT_BACKENDS,
#    default "llstar llfinite") and the corpus key lists must be
#    IDENTICAL across backends: lint witnesses are grammar properties,
#    not artifacts of which backend derived the decision tables.
set -u

LLSTAR=$1
ROOT=$2
ARTIFACTS=$3
UPDATE=${4:-}
BACKENDS=${LINT_BACKENDS:-llstar llfinite}

mkdir -p "$ARTIFACTS"
BASELINE="$ROOT/tests/lint-baseline.txt"
STATUS=0

sarif_name() {
  echo "$ARTIFACTS/$(echo "$1" | sed 's|/|_|g').sarif"
}

# Emits "--profile <file>" when a profile exists for grammar $1.
profile_args() {
  local base
  base=$(basename "$1" .g)
  if [ -n "${LINT_PROFILE_DIR:-}" ] && \
     [ -f "$LINT_PROFILE_DIR/$base.prof.json" ]; then
    echo "--profile $LINT_PROFILE_DIR/$base.prof.json"
  fi
}

# --- strict set: must be clean under --werror, under every backend ------
for g in "$ROOT"/grammars/*.g "$ROOT"/examples/grammars/*.g; do
  rel=${g#"$ROOT"/}
  # shellcheck disable=SC2046
  "$LLSTAR" lint "$g" $(profile_args "$g") --fixes --format=sarif \
    -o "$(sarif_name "$rel")" || true
  for b in $BACKENDS; do
    # shellcheck disable=SC2046
    if ! "$LLSTAR" lint "$g" --backend "$b" $(profile_args "$g") --werror \
        >/dev/null 2>&1; then
      echo "FAIL (lint --werror, --backend $b): $rel"
      "$LLSTAR" lint "$g" --backend "$b" 2>&1 | sed 's/^/    /'
      STATUS=1
    fi
  done
done

# --- corpus: baseline-gated, keys identical across backends -------------
corpus_keys() { # $1 = backend; one line per finding, sorted
  for g in "$ROOT"/tests/corpus/*.g; do
    # One line per finding: <relpath>:<line>:<col>:<id> (message text is
    # not part of the key, so rewording a diagnostic does not churn the
    # baseline; profile re-ranking does not either, since the key list is
    # sorted).
    # shellcheck disable=SC2046
    "$LLSTAR" lint "$g" --backend "$1" $(profile_args "$g") 2>/dev/null |
      sed -n 's|^.*/\([^/]*\.g\):\([0-9]*\):\([0-9]*\): [a-z]*: .* \[\([a-z-]*\)\]$|tests/corpus/\1:\2:\3:\4|p'
  done | sort
}

for g in "$ROOT"/tests/corpus/*.g; do
  rel=${g#"$ROOT"/}
  # shellcheck disable=SC2046
  "$LLSTAR" lint "$g" $(profile_args "$g") --fixes --format=sarif \
    -o "$(sarif_name "$rel")" || true
done

CURRENT=$(mktemp)
FIRST_BACKEND=""
for b in $BACKENDS; do
  if [ -z "$FIRST_BACKEND" ]; then
    FIRST_BACKEND=$b
    corpus_keys "$b" >"$CURRENT"
    continue
  fi
  OTHER=$(mktemp)
  corpus_keys "$b" >"$OTHER"
  if ! diff -u "$CURRENT" "$OTHER" >/dev/null; then
    echo "FAIL: lint findings differ between --backend $FIRST_BACKEND and --backend $b:"
    diff -u "$CURRENT" "$OTHER" | sed 's/^/    /'
    STATUS=1
  fi
  rm -f "$OTHER"
done

if [ "$UPDATE" = "--update-baseline" ]; then
  cp "$CURRENT" "$BASELINE"
  echo "baseline updated: $(wc -l <"$BASELINE") findings"
  rm -f "$CURRENT"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "FAIL: missing $BASELINE (run with --update-baseline)"
  rm -f "$CURRENT"
  exit 1
fi

NEW=$(comm -13 <(sort "$BASELINE") "$CURRENT")
if [ -n "$NEW" ]; then
  echo "FAIL: new lint diagnostics not in tests/lint-baseline.txt:"
  echo "$NEW" | sed 's/^/    /'
  STATUS=1
fi
rm -f "$CURRENT"

exit $STATUS
