//===- codegen/CompiledModuleEmitter.h - Grammar -> C++ module --*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits an analyzed grammar as a self-contained C++ translation unit: the
/// flat dispatch tables of compiled/CompiledTables.h as static arrays, a
/// generated switch-dispatch predictor function per predicate-free
/// decision, the dense lexer byte-DFA, and one extern
/// \ref llstar::compiled::CompiledGrammarModule object stamped with the
/// FNV-1a hash of the grammar's serialized analysis payload. The emitted
/// file compiles against compiled/CompiledRegistry.h only.
///
/// This is the `llstar compile --emit-cpp` backend and the generator for
/// the checked-in grammars/compiled/ registry; emission is deterministic
/// (byte-identical output for an unchanged grammar) so CI can diff
/// regenerated modules against the committed ones to catch staleness.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_CODEGEN_COMPILEDMODULEEMITTER_H
#define LLSTAR_CODEGEN_COMPILEDMODULEEMITTER_H

#include <cstdint>
#include <string>

namespace llstar {

class AnalyzedGrammar;

/// Result of emitting one grammar module.
struct EmittedCompiledModule {
  /// Complete C++ source of the module.
  std::string Source;
  /// Name of the extern module object (`kModule_<grammar>`).
  std::string SymbolName;
  /// Decisions that received a generated switch predictor (the rest use
  /// the dense-table walk at run time).
  int32_t NumNativePredictors = 0;
  int32_t NumDecisions = 0;
  /// Rules that received a generated goto-threaded body (always all of
  /// them; kept as a count for tool diagnostics).
  int32_t NumNativeRules = 0;
  int32_t NumRules = 0;
  /// Approximate static-data footprint of the emitted tables, in bytes.
  size_t TableBytes = 0;
};

/// Emits the compiled module for \p AG.
EmittedCompiledModule emitCompiledModule(const AnalyzedGrammar &AG);

} // namespace llstar

#endif // LLSTAR_CODEGEN_COMPILEDMODULEEMITTER_H
