//===- codegen/Serializer.h - Compiled-grammar serialization ----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an analyzed grammar — vocabulary, rule table, options, the
/// compiled lexer DFA, the ATN, and every decision's lookahead DFA — to a
/// compact line-based text form, and loads it back. This is the ANTLR
/// "serialized ATN" idea: grammar analysis runs once at generation time;
/// deployed parsers just load tables.
///
/// The deserialized \ref CompiledGrammar drives \ref LLStarParser exactly
/// like a freshly analyzed grammar (the Grammar object carries names,
/// vocabulary, and options, but no rule bodies — the ATN is the program).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_CODEGEN_SERIALIZER_H
#define LLSTAR_CODEGEN_SERIALIZER_H

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "regex/CharDFA.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>

namespace llstar {

/// A deserialized grammar package: everything needed to lex and parse.
struct CompiledGrammar {
  std::unique_ptr<AnalyzedGrammar> AG;
  /// The pre-compiled tokenizer (no regex compilation at load time).
  regex::CharDfa LexerDfa;
  std::vector<LexerAction> LexerActions; // per DFA accept tag
  std::vector<TokenType> LexerTypes;     // per DFA accept tag

  /// Tokenizes with the precompiled tables.
  std::vector<Token> tokenize(std::string_view Input,
                              DiagnosticEngine &Diags) const;
};

/// Serializes \p AG plus its compiled lexer \p L into the v1 text format.
std::string serializeGrammar(const AnalyzedGrammar &AG);

/// Parses the v1 text format; returns null and reports to \p Diags on any
/// structural error. All table indices (ATN targets, DFA edges, lexer
/// transitions, rule/predicate/action references) are bounds-checked, so a
/// corrupt payload is a diagnostic, never undefined behavior at parse time.
/// \p Backend records which analysis backend produced the tables (readBundle
/// forwards the v3 header word; bare payloads default to llstar).
std::unique_ptr<CompiledGrammar>
deserializeGrammar(std::string_view Text, DiagnosticEngine &Diags,
                   BackendKind Backend = BackendKind::LLStar);

//===----------------------------------------------------------------------===//
// Bundle container
//===----------------------------------------------------------------------===//
//
// The on-disk / over-the-wire form used by the parse service and the
// `llstar compile` command: a versioned header line
//
//   llstarbundle <format-version> <payload-bytes> <payload-fnv1a> <backend>\n
//
// followed by the serialized-grammar payload. The header lets loaders
// reject wrong-version and corrupt (truncated, bit-flipped) bundles with a
// clean diagnostic before touching the payload parser. The trailing
// backend word is new in v3 and names the prediction-analysis backend
// that produced the lookahead DFAs ("llstar", "llfinite"); it lives in
// the container, not the payload, so payload bytes — and the checked-in
// compiled-module hashes keyed on them — are identical across versions.

/// Version stamped into bundle headers written by \ref writeBundle.
/// v2 added the `recover` payload section (per-state recovery tables);
/// v3 added the producing-backend word to the container header (v2
/// bundles still load, implying the llstar backend).
constexpr int64_t BundleFormatVersion = 3;

/// Serializes \p AG and wraps it in the versioned bundle container.
std::string writeBundle(const AnalyzedGrammar &AG);

/// True if \p Bytes starts with the bundle container magic (cheap sniff
/// used to distinguish bundle files from grammar source).
bool looksLikeBundle(std::string_view Bytes);

/// Verifies the container (magic, version, declared size, content hash)
/// and deserializes the payload. Returns null with a diagnostic on any
/// mismatch.
std::unique_ptr<CompiledGrammar> readBundle(std::string_view Bytes,
                                            DiagnosticEngine &Diags);

} // namespace llstar

#endif // LLSTAR_CODEGEN_SERIALIZER_H
