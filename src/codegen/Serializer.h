//===- codegen/Serializer.h - Compiled-grammar serialization ----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an analyzed grammar — vocabulary, rule table, options, the
/// compiled lexer DFA, the ATN, and every decision's lookahead DFA — to a
/// compact line-based text form, and loads it back. This is the ANTLR
/// "serialized ATN" idea: grammar analysis runs once at generation time;
/// deployed parsers just load tables.
///
/// The deserialized \ref CompiledGrammar drives \ref LLStarParser exactly
/// like a freshly analyzed grammar (the Grammar object carries names,
/// vocabulary, and options, but no rule bodies — the ATN is the program).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_CODEGEN_SERIALIZER_H
#define LLSTAR_CODEGEN_SERIALIZER_H

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "regex/CharDFA.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>

namespace llstar {

/// A deserialized grammar package: everything needed to lex and parse.
struct CompiledGrammar {
  std::unique_ptr<AnalyzedGrammar> AG;
  /// The pre-compiled tokenizer (no regex compilation at load time).
  regex::CharDfa LexerDfa;
  std::vector<LexerAction> LexerActions; // per DFA accept tag
  std::vector<TokenType> LexerTypes;     // per DFA accept tag

  /// Tokenizes with the precompiled tables.
  std::vector<Token> tokenize(std::string_view Input,
                              DiagnosticEngine &Diags) const;
};

/// Serializes \p AG plus its compiled lexer \p L into the v1 text format.
std::string serializeGrammar(const AnalyzedGrammar &AG);

/// Parses the v1 text format; returns null and reports to \p Diags on any
/// structural error.
std::unique_ptr<CompiledGrammar> deserializeGrammar(std::string_view Text,
                                                    DiagnosticEngine &Diags);

} // namespace llstar

#endif // LLSTAR_CODEGEN_SERIALIZER_H
