#include "codegen/Serializer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstring>
#include <sstream>

using namespace llstar;

namespace {

constexpr const char *Magic = "llstar1";

/// Space-separated writer; strings are written length-prefixed
/// (`<len>:<bytes>`) so arbitrary content round-trips.
class Writer {
public:
  void word(const std::string &W) {
    Out += W;
    Out += ' ';
  }
  void num(int64_t V) { word(std::to_string(V)); }
  void str(const std::string &S) {
    Out += std::to_string(S.size());
    Out += ':';
    Out += S;
    Out += ' ';
  }
  void nl() { Out += '\n'; }

  std::string Out;
};

/// Matching reader. All methods report once and go inert on error.
class Reader {
public:
  Reader(std::string_view Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  bool failed() const { return Failed; }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  int64_t num() {
    skipWs();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start)
      return fail("expected a number");
    return std::stoll(std::string(Text.substr(Start, Pos - Start)));
  }

  std::string str() {
    int64_t Len = num();
    if (Failed || Len < 0)
      return "";
    if (Pos >= Text.size() || Text[Pos] != ':') {
      fail("expected ':' in string");
      return "";
    }
    ++Pos;
    if (Pos + size_t(Len) > Text.size()) {
      fail("truncated string");
      return "";
    }
    std::string S(Text.substr(Pos, size_t(Len)));
    Pos += size_t(Len);
    return S;
  }

  bool word(const char *Expected) {
    skipWs();
    size_t Len = std::strlen(Expected);
    if (Text.compare(Pos, Len, Expected) != 0) {
      fail(std::string("expected '") + Expected + "'");
      return false;
    }
    Pos += Len;
    return true;
  }

  int64_t fail(const std::string &Message) {
    if (!Failed)
      Diags.error("compiled grammar: " + Message + " at offset " +
                  std::to_string(Pos));
    Failed = true;
    return 0;
  }

private:
  std::string_view Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string llstar::serializeGrammar(const AnalyzedGrammar &AG) {
  const Grammar &G = AG.grammar();
  const Atn &M = AG.atn();
  Writer W;

  W.word(Magic);
  W.str(G.Name);
  W.num(G.startRule());
  W.num(G.Options.Backtrack);
  W.num(G.Options.Memoize);
  W.num(G.Options.MaxRecursionDepth);
  W.num(G.Options.MaxDfaStates);
  W.nl();

  // Vocabulary, in token-type order so getOrDefine reassigns identically.
  const Vocabulary &V = G.vocabulary();
  W.word("vocab");
  W.num(int64_t(V.size()));
  for (TokenType T = TokenMinUserType; T <= V.maxTokenType(); ++T) {
    W.str(V.name(T));
    W.num(V.isLiteral(T));
  }
  W.nl();

  // Rule table: names and runtime-relevant flags only.
  W.word("rules");
  W.num(int64_t(G.numRules()));
  for (const Rule &R : G.rules()) {
    W.str(R.Name);
    W.num(R.IsSynPredFragment);
    W.num(R.IsPrecedenceRule);
  }
  W.nl();

  // Predicate and action tables.
  W.word("preds");
  W.num(int64_t(M.numPredicates()));
  for (size_t I = 0; I < M.numPredicates(); ++I) {
    W.str(M.predicate(int32_t(I)).Name);
    W.num(M.predicate(int32_t(I)).MinPrecedence);
  }
  W.nl();
  W.word("acts");
  int64_t NumActions = 0;
  {
    // Atn has no numActions(); count by probing is unsafe — walk
    // transitions instead.
    int32_t MaxAction = -1;
    for (size_t S = 0; S < M.numStates(); ++S)
      for (const AtnTransition &T : M.state(int32_t(S)).Transitions)
        if (T.Kind == AtnTransitionKind::Action)
          MaxAction = std::max(MaxAction, T.ActionIndex);
    NumActions = MaxAction + 1;
  }
  W.num(NumActions);
  for (int32_t I = 0; I < NumActions; ++I) {
    W.str(M.action(I).Name);
    W.num(M.action(I).Always);
  }
  W.nl();

  // ATN: states, transitions, rule start/stop arrays, decisions.
  W.word("atn");
  W.num(int64_t(M.numStates()));
  W.num(M.eofState());
  W.nl();
  for (size_t S = 0; S < M.numStates(); ++S) {
    const AtnState &State = M.state(int32_t(S));
    W.num(int64_t(State.Kind));
    W.num(State.RuleIndex);
    W.num(State.EndState);
    W.num(int64_t(State.Transitions.size()));
    for (const AtnTransition &T : State.Transitions) {
      W.num(int64_t(T.Kind));
      W.num(T.Target);
      W.num(T.Label);
      W.num(T.RuleIndex);
      W.num(T.FollowState);
      W.num(T.Precedence);
      W.num(T.PredIndex);
      W.num(T.ActionIndex);
      W.num(int64_t(T.Labels.intervals().size()));
      for (const Interval &I : T.Labels.intervals()) {
        W.num(I.Lo);
        W.num(I.Hi);
      }
    }
    W.nl();
  }
  W.word("rulestates");
  for (size_t R = 0; R < G.numRules(); ++R) {
    W.num(M.ruleStart(int32_t(R)));
    W.num(M.ruleStop(int32_t(R)));
  }
  W.nl();
  W.word("decisions");
  W.num(int64_t(M.numDecisions()));
  for (size_t D = 0; D < M.numDecisions(); ++D)
    W.num(M.decisionState(int32_t(D)));
  W.nl();

  // Lookahead DFAs.
  W.word("dfas");
  W.num(int64_t(AG.numDecisions()));
  W.nl();
  for (size_t D = 0; D < AG.numDecisions(); ++D) {
    const LookaheadDfa &Dfa = AG.dfa(int32_t(D));
    W.num(int64_t(Dfa.numStates()));
    W.num(Dfa.usedFallback());
    W.num(Dfa.overflowed());
    for (size_t S = 0; S < Dfa.numStates(); ++S) {
      const DfaState &St = Dfa.state(int32_t(S));
      W.num(St.PredictedAlt);
      W.num(int64_t(St.Edges.size()));
      for (const DfaEdge &E : St.Edges) {
        W.num(E.Label);
        W.num(E.Target);
      }
      W.num(int64_t(St.PredEdges.size()));
      for (const DfaPredEdge &E : St.PredEdges) {
        W.num(int64_t(E.Pred.K));
        W.num(E.Pred.A);
        W.num(E.Pred.B);
        W.num(E.Alt);
        W.num(E.Target);
      }
    }
    W.nl();
  }

  // Compiled lexer tables (sparse edge encoding).
  DiagnosticEngine LexDiags;
  Lexer L(G.lexerSpec(), LexDiags);
  W.word("lexer");
  W.num(int64_t(L.dfa().size()));
  W.nl();
  for (const regex::CharDfaState &St : L.dfa().states()) {
    W.num(St.AcceptTag);
    int Edges = 0;
    for (int C = 0; C < 256; ++C)
      Edges += St.Next[size_t(C)] >= 0;
    W.num(Edges);
    for (int C = 0; C < 256; ++C)
      if (St.Next[size_t(C)] >= 0) {
        W.num(C);
        W.num(St.Next[size_t(C)]);
      }
    W.nl();
  }
  W.word("lexertags");
  W.num(int64_t(L.actions().size()));
  for (size_t I = 0; I < L.actions().size(); ++I) {
    W.num(int64_t(L.actions()[I]));
    W.num(L.types()[I]);
  }
  W.nl();
  W.word("end");
  W.nl();
  return W.Out;
}

//===----------------------------------------------------------------------===//
// Deserialization
//===----------------------------------------------------------------------===//

std::unique_ptr<CompiledGrammar>
llstar::deserializeGrammar(std::string_view Text, DiagnosticEngine &Diags) {
  Reader R(Text, Diags);
  if (!R.word(Magic))
    return nullptr;

  auto G = std::make_unique<Grammar>();
  G->Name = R.str();
  int32_t StartRule = int32_t(R.num());
  G->Options.Backtrack = R.num() != 0;
  G->Options.Memoize = R.num() != 0;
  G->Options.MaxRecursionDepth = int32_t(R.num());
  G->Options.MaxDfaStates = int32_t(R.num());

  if (!R.word("vocab"))
    return nullptr;
  int64_t NumTokens = R.num();
  for (int64_t I = 0; I < NumTokens && !R.failed(); ++I) {
    std::string Name = R.str();
    bool Literal = R.num() != 0;
    G->vocabulary().getOrDefine(Name, Literal);
  }

  if (!R.word("rules"))
    return nullptr;
  int64_t NumRules = R.num();
  for (int64_t I = 0; I < NumRules && !R.failed(); ++I) {
    std::string Name = R.str();
    int32_t Index = G->addRule(Name);
    G->rule(Index).IsSynPredFragment = R.num() != 0;
    G->rule(Index).IsPrecedenceRule = R.num() != 0;
  }
  if (StartRule >= 0 && StartRule < int32_t(G->numRules()))
    G->setStartRule(StartRule);

  auto M = std::make_unique<Atn>(*G);

  if (!R.word("preds"))
    return nullptr;
  int64_t NumPreds = R.num();
  for (int64_t I = 0; I < NumPreds && !R.failed(); ++I) {
    AtnPredicate P;
    P.Name = R.str();
    P.MinPrecedence = int32_t(R.num());
    M->addPredicate(std::move(P));
  }
  if (!R.word("acts"))
    return nullptr;
  int64_t NumActs = R.num();
  for (int64_t I = 0; I < NumActs && !R.failed(); ++I) {
    AtnAction A;
    A.Name = R.str();
    A.Always = R.num() != 0;
    M->addAction(std::move(A));
  }

  if (!R.word("atn"))
    return nullptr;
  int64_t NumStates = R.num();
  M->setEofState(int32_t(R.num()));
  for (int64_t S = 0; S < NumStates && !R.failed(); ++S) {
    AtnStateKind Kind = AtnStateKind(R.num());
    int32_t RuleIndex = int32_t(R.num());
    int32_t Id = M->addState(Kind, RuleIndex);
    M->state(Id).EndState = int32_t(R.num());
    int64_t NumTrans = R.num();
    for (int64_t T = 0; T < NumTrans && !R.failed(); ++T) {
      AtnTransition Tr;
      Tr.Kind = AtnTransitionKind(R.num());
      Tr.Target = int32_t(R.num());
      Tr.Label = TokenType(R.num());
      Tr.RuleIndex = int32_t(R.num());
      Tr.FollowState = int32_t(R.num());
      Tr.Precedence = int32_t(R.num());
      Tr.PredIndex = int32_t(R.num());
      Tr.ActionIndex = int32_t(R.num());
      int64_t NumIntervals = R.num();
      for (int64_t I = 0; I < NumIntervals && !R.failed(); ++I) {
        int32_t Lo = int32_t(R.num());
        int32_t Hi = int32_t(R.num());
        Tr.Labels.add(Lo, Hi);
      }
      M->state(Id).Transitions.push_back(std::move(Tr));
    }
  }
  if (!R.word("rulestates"))
    return nullptr;
  M->ruleStarts().resize(G->numRules());
  M->ruleStops().resize(G->numRules());
  for (size_t I = 0; I < G->numRules() && !R.failed(); ++I) {
    M->ruleStarts()[I] = int32_t(R.num());
    M->ruleStops()[I] = int32_t(R.num());
  }
  if (!R.word("decisions"))
    return nullptr;
  int64_t NumDecisions = R.num();
  for (int64_t D = 0; D < NumDecisions && !R.failed(); ++D)
    M->addDecision(int32_t(R.num()));
  M->finalize();

  if (!R.word("dfas"))
    return nullptr;
  int64_t NumDfas = R.num();
  if (NumDfas != NumDecisions) {
    R.fail("decision/DFA count mismatch");
    return nullptr;
  }
  std::vector<std::unique_ptr<LookaheadDfa>> Dfas;
  for (int64_t D = 0; D < NumDfas && !R.failed(); ++D) {
    auto Dfa = std::make_unique<LookaheadDfa>(int32_t(D));
    int64_t N = R.num();
    if (R.num() != 0)
      Dfa->setUsedFallback();
    if (R.num() != 0)
      Dfa->setOverflowed();
    for (int64_t S = 0; S < N && !R.failed(); ++S) {
      int32_t Id = Dfa->addState();
      DfaState &St = Dfa->state(Id);
      St.PredictedAlt = int32_t(R.num());
      int64_t NumEdges = R.num();
      for (int64_t E = 0; E < NumEdges && !R.failed(); ++E) {
        DfaEdge Edge;
        Edge.Label = TokenType(R.num());
        Edge.Target = int32_t(R.num());
        St.Edges.push_back(Edge);
      }
      int64_t NumPredEdges = R.num();
      for (int64_t E = 0; E < NumPredEdges && !R.failed(); ++E) {
        DfaPredEdge Edge;
        Edge.Pred.K = SemanticContext::Kind(R.num());
        Edge.Pred.A = int32_t(R.num());
        Edge.Pred.B = int32_t(R.num());
        Edge.Alt = int32_t(R.num());
        Edge.Target = int32_t(R.num());
        St.PredEdges.push_back(Edge);
      }
    }
    Dfa->finish();
    Dfas.push_back(std::move(Dfa));
  }

  if (!R.word("lexer"))
    return nullptr;
  int64_t NumLexStates = R.num();
  std::vector<regex::CharDfaState> LexStates;
  for (int64_t S = 0; S < NumLexStates && !R.failed(); ++S) {
    regex::CharDfaState St;
    St.AcceptTag = int32_t(R.num());
    int64_t NumEdges = R.num();
    for (int64_t E = 0; E < NumEdges && !R.failed(); ++E) {
      int64_t C = R.num();
      int64_t Target = R.num();
      if (C < 0 || C > 255) {
        R.fail("lexer edge byte out of range");
        break;
      }
      St.Next[size_t(C)] = int32_t(Target);
    }
    LexStates.push_back(St);
  }
  if (!R.word("lexertags"))
    return nullptr;
  int64_t NumTags = R.num();
  std::vector<LexerAction> Actions;
  std::vector<TokenType> Types;
  for (int64_t I = 0; I < NumTags && !R.failed(); ++I) {
    Actions.push_back(LexerAction(R.num()));
    Types.push_back(TokenType(R.num()));
  }
  if (!R.word("end") || R.failed())
    return nullptr;

  auto Result = std::make_unique<CompiledGrammar>();
  Result->LexerDfa = regex::CharDfa::fromTables(std::move(LexStates));
  Result->LexerActions = std::move(Actions);
  Result->LexerTypes = std::move(Types);
  Result->AG =
      AnalyzedGrammar::fromParts(std::move(G), std::move(M), std::move(Dfas));
  return Result;
}

std::vector<Token> CompiledGrammar::tokenize(std::string_view Input,
                                             DiagnosticEngine &Diags) const {
  Lexer L(LexerDfa, LexerActions, LexerTypes);
  return L.tokenize(Input, Diags);
}
