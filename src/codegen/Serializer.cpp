#include "codegen/Serializer.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdint>
#include <cstring>
#include <sstream>

using namespace llstar;

namespace {

constexpr const char *Magic = "llstar1";

/// Space-separated writer; strings are written length-prefixed
/// (`<len>:<bytes>`) so arbitrary content round-trips.
class Writer {
public:
  void word(const std::string &W) {
    Out += W;
    Out += ' ';
  }
  void num(int64_t V) { word(std::to_string(V)); }
  void str(const std::string &S) {
    Out += std::to_string(S.size());
    Out += ':';
    Out += S;
    Out += ' ';
  }
  void nl() { Out += '\n'; }

  std::string Out;
};

/// Matching reader. All methods report once and go inert on error.
class Reader {
public:
  Reader(std::string_view Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  bool failed() const { return Failed; }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  /// Parses a decimal integer without std::stoll: hostile bundles contain
  /// digit runs that overflow (stoll would throw) or bare signs (stoll
  /// would throw invalid_argument). Overflow is a clean failure here.
  int64_t num() {
    skipWs();
    bool Negative = false;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+')) {
      Negative = Text[Pos] == '-';
      ++Pos;
    }
    int64_t Value = 0;
    bool AnyDigits = false, Overflow = false;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      AnyDigits = true;
      int Digit = Text[Pos] - '0';
      if (Value > (INT64_MAX - Digit) / 10)
        Overflow = true;
      else
        Value = Value * 10 + Digit;
      ++Pos;
    }
    if (!AnyDigits)
      return fail("expected a number");
    if (Overflow)
      return fail("number out of range");
    return Negative ? -Value : Value;
  }

  std::string str() {
    int64_t Len = num();
    if (Failed || Len < 0)
      return "";
    if (Pos >= Text.size() || Text[Pos] != ':') {
      fail("expected ':' in string");
      return "";
    }
    ++Pos;
    if (Pos + size_t(Len) > Text.size()) {
      fail("truncated string");
      return "";
    }
    std::string S(Text.substr(Pos, size_t(Len)));
    Pos += size_t(Len);
    return S;
  }

  bool word(const char *Expected) {
    skipWs();
    size_t Len = std::strlen(Expected);
    if (Text.compare(Pos, Len, Expected) != 0) {
      fail(std::string("expected '") + Expected + "'");
      return false;
    }
    Pos += Len;
    return true;
  }

  int64_t fail(const std::string &Message) {
    if (!Failed)
      Diags.error("compiled grammar: " + Message + " at offset " +
                  std::to_string(Pos));
    Failed = true;
    return 0;
  }

private:
  std::string_view Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  bool Failed = false;
};

/// Structural bounds-checks over freshly deserialized tables. Without
/// these a mangled payload can decode "cleanly" and then index out of
/// bounds at parse time; every table reference the runtime follows is
/// checked here instead.
bool validateTables(const Grammar &G, const Atn &M, int64_t NumActions,
                    const std::vector<std::unique_ptr<LookaheadDfa>> &Dfas,
                    const std::vector<regex::CharDfaState> &LexStates,
                    size_t NumLexTags, DiagnosticEngine &Diags) {
  auto Bad = [&Diags](const std::string &Message) {
    Diags.error("compiled grammar: invalid tables: " + Message);
    return false;
  };

  const int64_t NumStates = int64_t(M.numStates());
  const int64_t NumRules = int64_t(G.numRules());
  const int64_t NumPreds = int64_t(M.numPredicates());
  const int64_t NumDecisions = int64_t(M.numDecisions());

  if (NumRules == 0)
    return Bad("grammar has no rules");
  if (M.eofState() < 0 || M.eofState() >= NumStates)
    return Bad("EOF state out of range");

  for (int64_t S = 0; S < NumStates; ++S) {
    const AtnState &St = M.state(int32_t(S));
    if (St.Kind > AtnStateKind::LoopEnd)
      return Bad("state " + std::to_string(S) + " has unknown kind");
    if (St.RuleIndex < -1 || St.RuleIndex >= NumRules)
      return Bad("state " + std::to_string(S) + " rule index out of range");
    if (St.EndState < -1 || St.EndState >= NumStates)
      return Bad("state " + std::to_string(S) + " end state out of range");
    for (const AtnTransition &T : St.Transitions) {
      if (T.Kind > AtnTransitionKind::Action)
        return Bad("state " + std::to_string(S) +
                   " transition has unknown kind");
      if (T.Target < 0 || T.Target >= NumStates)
        return Bad("state " + std::to_string(S) +
                   " transition target out of range");
      if (T.Kind == AtnTransitionKind::Rule &&
          (T.RuleIndex < 0 || T.RuleIndex >= NumRules ||
           T.FollowState < 0 || T.FollowState >= NumStates))
        return Bad("state " + std::to_string(S) +
                   " rule transition out of range");
      if (T.Kind == AtnTransitionKind::SynPred &&
          (T.RuleIndex < 0 || T.RuleIndex >= NumRules))
        return Bad("state " + std::to_string(S) +
                   " synpred transition out of range");
      if (T.Kind == AtnTransitionKind::SemPred &&
          (T.PredIndex < 0 || T.PredIndex >= NumPreds))
        return Bad("state " + std::to_string(S) +
                   " predicate index out of range");
      if (T.Kind == AtnTransitionKind::Action &&
          (T.ActionIndex < 0 || T.ActionIndex >= NumActions))
        return Bad("state " + std::to_string(S) +
                   " action index out of range");
    }
  }

  for (int64_t Rl = 0; Rl < NumRules; ++Rl) {
    if (M.ruleStart(int32_t(Rl)) < 0 || M.ruleStart(int32_t(Rl)) >= NumStates ||
        M.ruleStop(int32_t(Rl)) < 0 || M.ruleStop(int32_t(Rl)) >= NumStates)
      return Bad("rule " + std::to_string(Rl) +
                 " start/stop state out of range");
  }

  /// 1-based alternative count of decision \p D (0 when invalid).
  auto DecisionAlts = [&](int64_t D) -> int64_t {
    int32_t State = M.decisionState(int32_t(D));
    if (State < 0 || State >= NumStates)
      return 0;
    return int64_t(M.state(State).Transitions.size());
  };

  for (int64_t D = 0; D < NumDecisions; ++D) {
    int32_t State = M.decisionState(int32_t(D));
    if (State < 0 || State >= NumStates)
      return Bad("decision " + std::to_string(D) + " state out of range");
    const AtnState &St = M.state(State);
    if (St.Transitions.empty())
      return Bad("decision " + std::to_string(D) + " has no alternatives");
    // evalSynPredAlt speculates from the decision to its end state.
    if (St.EndState < 0)
      return Bad("decision " + std::to_string(D) + " lacks an end state");
  }

  for (size_t D = 0; D < Dfas.size(); ++D) {
    const LookaheadDfa &Dfa = *Dfas[D];
    const int64_t N = int64_t(Dfa.numStates());
    const int64_t Alts = DecisionAlts(int64_t(D));
    for (int64_t S = 0; S < N; ++S) {
      const DfaState &St = Dfa.state(int32_t(S));
      if (St.PredictedAlt > Alts)
        return Bad("DFA " + std::to_string(D) +
                   " predicts a nonexistent alternative");
      for (const DfaEdge &E : St.Edges)
        if (E.Target < -1 || E.Target >= N)
          return Bad("DFA " + std::to_string(D) + " edge target out of range");
      for (const DfaPredEdge &E : St.PredEdges) {
        if (E.Target < -1 || E.Target >= N)
          return Bad("DFA " + std::to_string(D) +
                     " predicate edge target out of range");
        if (E.Alt < 1 || E.Alt > Alts)
          return Bad("DFA " + std::to_string(D) +
                     " predicate edge alternative out of range");
        switch (E.Pred.K) {
        case SemanticContext::Kind::None:
          break;
        case SemanticContext::Kind::Pred:
          if (E.Pred.A < 0 || E.Pred.A >= NumPreds)
            return Bad("DFA " + std::to_string(D) +
                       " predicate index out of range");
          break;
        case SemanticContext::Kind::SynPredRule:
          if (E.Pred.A < 0 || E.Pred.A >= NumRules)
            return Bad("DFA " + std::to_string(D) +
                       " synpred fragment rule out of range");
          break;
        case SemanticContext::Kind::SynPredAlt:
          if (E.Pred.A < 0 || E.Pred.A >= NumDecisions || E.Pred.B < 1 ||
              E.Pred.B > DecisionAlts(E.Pred.A))
            return Bad("DFA " + std::to_string(D) +
                       " synpred alternative out of range");
          break;
        default:
          return Bad("DFA " + std::to_string(D) +
                     " has an unknown predicate kind");
        }
      }
    }
  }

  const int64_t NumLexStates = int64_t(LexStates.size());
  for (int64_t S = 0; S < NumLexStates; ++S) {
    const regex::CharDfaState &St = LexStates[size_t(S)];
    if (St.AcceptTag < -1 || St.AcceptTag >= int64_t(NumLexTags))
      return Bad("lexer state " + std::to_string(S) +
                 " accept tag out of range");
    for (int32_t Next : St.Next)
      if (Next < -1 || Next >= NumLexStates)
        return Bad("lexer state " + std::to_string(S) +
                   " transition out of range");
  }

  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string llstar::serializeGrammar(const AnalyzedGrammar &AG) {
  const Grammar &G = AG.grammar();
  const Atn &M = AG.atn();
  Writer W;

  W.word(Magic);
  W.str(G.Name);
  W.num(G.startRule());
  W.num(G.Options.Backtrack);
  W.num(G.Options.Memoize);
  W.num(G.Options.MaxRecursionDepth);
  W.num(G.Options.MaxDfaStates);
  W.nl();

  // Vocabulary, in token-type order so getOrDefine reassigns identically.
  const Vocabulary &V = G.vocabulary();
  W.word("vocab");
  W.num(int64_t(V.size()));
  for (TokenType T = TokenMinUserType; T <= V.maxTokenType(); ++T) {
    W.str(V.name(T));
    W.num(V.isLiteral(T));
  }
  W.nl();

  // Rule table: names and runtime-relevant flags only.
  W.word("rules");
  W.num(int64_t(G.numRules()));
  for (const Rule &R : G.rules()) {
    W.str(R.Name);
    W.num(R.IsSynPredFragment);
    W.num(R.IsPrecedenceRule);
  }
  W.nl();

  // Predicate and action tables.
  W.word("preds");
  W.num(int64_t(M.numPredicates()));
  for (size_t I = 0; I < M.numPredicates(); ++I) {
    W.str(M.predicate(int32_t(I)).Name);
    W.num(M.predicate(int32_t(I)).MinPrecedence);
  }
  W.nl();
  W.word("acts");
  int64_t NumActions = 0;
  {
    // Atn has no numActions(); count by probing is unsafe — walk
    // transitions instead.
    int32_t MaxAction = -1;
    for (size_t S = 0; S < M.numStates(); ++S)
      for (const AtnTransition &T : M.state(int32_t(S)).Transitions)
        if (T.Kind == AtnTransitionKind::Action)
          MaxAction = std::max(MaxAction, T.ActionIndex);
    NumActions = MaxAction + 1;
  }
  W.num(NumActions);
  for (int32_t I = 0; I < NumActions; ++I) {
    W.str(M.action(I).Name);
    W.num(M.action(I).Always);
  }
  W.nl();

  // ATN: states, transitions, rule start/stop arrays, decisions.
  W.word("atn");
  W.num(int64_t(M.numStates()));
  W.num(M.eofState());
  W.nl();
  for (size_t S = 0; S < M.numStates(); ++S) {
    const AtnState &State = M.state(int32_t(S));
    W.num(int64_t(State.Kind));
    W.num(State.RuleIndex);
    W.num(State.EndState);
    W.num(int64_t(State.Transitions.size()));
    for (const AtnTransition &T : State.Transitions) {
      W.num(int64_t(T.Kind));
      W.num(T.Target);
      W.num(T.Label);
      W.num(T.RuleIndex);
      W.num(T.FollowState);
      W.num(T.Precedence);
      W.num(T.PredIndex);
      W.num(T.ActionIndex);
      W.num(int64_t(T.Labels.intervals().size()));
      for (const Interval &I : T.Labels.intervals()) {
        W.num(I.Lo);
        W.num(I.Hi);
      }
    }
    W.nl();
  }
  W.word("rulestates");
  for (size_t R = 0; R < G.numRules(); ++R) {
    W.num(M.ruleStart(int32_t(R)));
    W.num(M.ruleStop(int32_t(R)));
  }
  W.nl();
  W.word("decisions");
  W.num(int64_t(M.numDecisions()));
  for (size_t D = 0; D < M.numDecisions(); ++D)
    W.num(M.decisionState(int32_t(D)));
  W.nl();

  // Lookahead DFAs.
  W.word("dfas");
  W.num(int64_t(AG.numDecisions()));
  W.nl();
  for (size_t D = 0; D < AG.numDecisions(); ++D) {
    const LookaheadDfa &Dfa = AG.dfa(int32_t(D));
    W.num(int64_t(Dfa.numStates()));
    W.num(Dfa.usedFallback());
    W.num(Dfa.overflowed());
    for (size_t S = 0; S < Dfa.numStates(); ++S) {
      const DfaState &St = Dfa.state(int32_t(S));
      W.num(St.PredictedAlt);
      W.num(int64_t(St.Edges.size()));
      for (const DfaEdge &E : St.Edges) {
        W.num(E.Label);
        W.num(E.Target);
      }
      W.num(int64_t(St.PredEdges.size()));
      for (const DfaPredEdge &E : St.PredEdges) {
        W.num(int64_t(E.Pred.K));
        W.num(E.Pred.A);
        W.num(E.Pred.B);
        W.num(E.Alt);
        W.num(E.Target);
      }
    }
    W.nl();
  }

  // Compiled lexer tables (sparse edge encoding).
  DiagnosticEngine LexDiags;
  Lexer L(G.lexerSpec(), LexDiags);
  W.word("lexer");
  W.num(int64_t(L.dfa().size()));
  W.nl();
  for (const regex::CharDfaState &St : L.dfa().states()) {
    W.num(St.AcceptTag);
    int Edges = 0;
    for (int C = 0; C < 256; ++C)
      Edges += St.Next[size_t(C)] >= 0;
    W.num(Edges);
    for (int C = 0; C < 256; ++C)
      if (St.Next[size_t(C)] >= 0) {
        W.num(C);
        W.num(St.Next[size_t(C)]);
      }
    W.nl();
  }
  W.word("lexertags");
  W.num(int64_t(L.actions().size()));
  for (size_t I = 0; I < L.actions().size(); ++I) {
    W.num(int64_t(L.actions()[I]));
    W.num(L.types()[I]);
  }
  W.nl();

  // Per-ATN-state recovery tables (follow sets + end reachability), one
  // state per line: <reachesEnd> <numIntervals> {<lo> <hi>}...
  const RecoverySets &RS = AG.recovery();
  W.word("recover");
  W.num(int64_t(RS.numStates()));
  W.nl();
  for (size_t S = 0; S < RS.numStates(); ++S) {
    W.num(RS.reachesEnd(int32_t(S)) ? 1 : 0);
    const IntervalSet &F = RS.follow(int32_t(S));
    W.num(int64_t(F.intervals().size()));
    for (const Interval &I : F.intervals()) {
      W.num(I.Lo);
      W.num(I.Hi);
    }
    W.nl();
  }

  W.word("end");
  W.nl();
  return W.Out;
}

//===----------------------------------------------------------------------===//
// Deserialization
//===----------------------------------------------------------------------===//

std::unique_ptr<CompiledGrammar>
llstar::deserializeGrammar(std::string_view Text, DiagnosticEngine &Diags,
                           BackendKind Backend) {
  Reader R(Text, Diags);
  if (!R.word(Magic))
    return nullptr;

  auto G = std::make_unique<Grammar>();
  G->Name = R.str();
  int32_t StartRule = int32_t(R.num());
  G->Options.Backtrack = R.num() != 0;
  G->Options.Memoize = R.num() != 0;
  G->Options.MaxRecursionDepth = int32_t(R.num());
  G->Options.MaxDfaStates = int32_t(R.num());

  if (!R.word("vocab"))
    return nullptr;
  int64_t NumTokens = R.num();
  for (int64_t I = 0; I < NumTokens && !R.failed(); ++I) {
    std::string Name = R.str();
    bool Literal = R.num() != 0;
    if (Literal && (Name.size() < 2 || Name.front() != '\'' ||
                    Name.back() != '\'')) {
      R.fail("literal token name lost its quotes");
      break;
    }
    G->vocabulary().getOrDefine(Name, Literal);
  }

  if (!R.word("rules"))
    return nullptr;
  int64_t NumRules = R.num();
  for (int64_t I = 0; I < NumRules && !R.failed(); ++I) {
    std::string Name = R.str();
    if (G->findRule(Name) >= 0) {
      R.fail("duplicate rule name");
      break;
    }
    int32_t Index = G->addRule(Name);
    G->rule(Index).IsSynPredFragment = R.num() != 0;
    G->rule(Index).IsPrecedenceRule = R.num() != 0;
  }
  if (StartRule >= 0 && StartRule < int32_t(G->numRules()))
    G->setStartRule(StartRule);

  auto M = std::make_unique<Atn>(*G);

  if (!R.word("preds"))
    return nullptr;
  int64_t NumPreds = R.num();
  for (int64_t I = 0; I < NumPreds && !R.failed(); ++I) {
    AtnPredicate P;
    P.Name = R.str();
    P.MinPrecedence = int32_t(R.num());
    M->addPredicate(std::move(P));
  }
  if (!R.word("acts"))
    return nullptr;
  int64_t NumActs = R.num();
  for (int64_t I = 0; I < NumActs && !R.failed(); ++I) {
    AtnAction A;
    A.Name = R.str();
    A.Always = R.num() != 0;
    M->addAction(std::move(A));
  }

  if (!R.word("atn"))
    return nullptr;
  int64_t NumStates = R.num();
  M->setEofState(int32_t(R.num()));
  for (int64_t S = 0; S < NumStates && !R.failed(); ++S) {
    AtnStateKind Kind = AtnStateKind(R.num());
    int32_t RuleIndex = int32_t(R.num());
    int32_t Id = M->addState(Kind, RuleIndex);
    M->state(Id).EndState = int32_t(R.num());
    int64_t NumTrans = R.num();
    for (int64_t T = 0; T < NumTrans && !R.failed(); ++T) {
      AtnTransition Tr;
      Tr.Kind = AtnTransitionKind(R.num());
      Tr.Target = int32_t(R.num());
      Tr.Label = TokenType(R.num());
      Tr.RuleIndex = int32_t(R.num());
      Tr.FollowState = int32_t(R.num());
      Tr.Precedence = int32_t(R.num());
      Tr.PredIndex = int32_t(R.num());
      Tr.ActionIndex = int32_t(R.num());
      // finalize() below indexes CallSites by the rule of every Rule
      // transition, so that field cannot wait for the post-pass checks.
      if (Tr.Kind == AtnTransitionKind::Rule &&
          (Tr.RuleIndex < 0 || Tr.RuleIndex >= int32_t(G->numRules()))) {
        R.fail("rule transition index out of range");
        break;
      }
      int64_t NumIntervals = R.num();
      for (int64_t I = 0; I < NumIntervals && !R.failed(); ++I) {
        int32_t Lo = int32_t(R.num());
        int32_t Hi = int32_t(R.num());
        Tr.Labels.add(Lo, Hi);
      }
      M->state(Id).Transitions.push_back(std::move(Tr));
    }
  }
  if (!R.word("rulestates"))
    return nullptr;
  M->ruleStarts().resize(G->numRules());
  M->ruleStops().resize(G->numRules());
  for (size_t I = 0; I < G->numRules() && !R.failed(); ++I) {
    M->ruleStarts()[I] = int32_t(R.num());
    M->ruleStops()[I] = int32_t(R.num());
  }
  if (!R.word("decisions"))
    return nullptr;
  int64_t NumDecisions = R.num();
  for (int64_t D = 0; D < NumDecisions && !R.failed(); ++D) {
    int64_t StateId = R.num();
    // addDecision writes through this index; check before, not in the
    // post-pass.
    if (StateId < 0 || StateId >= int64_t(M->numStates())) {
      R.fail("decision state out of range");
      break;
    }
    M->addDecision(int32_t(StateId));
  }
  if (R.failed())
    return nullptr;
  M->finalize();

  if (!R.word("dfas"))
    return nullptr;
  int64_t NumDfas = R.num();
  if (NumDfas != NumDecisions) {
    R.fail("decision/DFA count mismatch");
    return nullptr;
  }
  std::vector<std::unique_ptr<LookaheadDfa>> Dfas;
  for (int64_t D = 0; D < NumDfas && !R.failed(); ++D) {
    auto Dfa = std::make_unique<LookaheadDfa>(int32_t(D));
    int64_t N = R.num();
    if (R.num() != 0)
      Dfa->setUsedFallback();
    if (R.num() != 0)
      Dfa->setOverflowed();
    for (int64_t S = 0; S < N && !R.failed(); ++S) {
      int32_t Id = Dfa->addState();
      DfaState &St = Dfa->state(Id);
      St.PredictedAlt = int32_t(R.num());
      int64_t NumEdges = R.num();
      for (int64_t E = 0; E < NumEdges && !R.failed(); ++E) {
        DfaEdge Edge;
        Edge.Label = TokenType(R.num());
        Edge.Target = int32_t(R.num());
        // Checked here, not in the post-pass: finish() below walks these
        // targets, so a corrupt index must be caught before it runs.
        if (Edge.Target < 0 || int64_t(Edge.Target) >= N) {
          R.fail("DFA edge target out of range");
          break;
        }
        St.Edges.push_back(Edge);
      }
      int64_t NumPredEdges = R.num();
      for (int64_t E = 0; E < NumPredEdges && !R.failed(); ++E) {
        DfaPredEdge Edge;
        Edge.Pred.K = SemanticContext::Kind(R.num());
        Edge.Pred.A = int32_t(R.num());
        Edge.Pred.B = int32_t(R.num());
        Edge.Alt = int32_t(R.num());
        Edge.Target = int32_t(R.num());
        if (Edge.Target < -1 || int64_t(Edge.Target) >= N) {
          R.fail("DFA predicate-edge target out of range");
          break;
        }
        St.PredEdges.push_back(Edge);
      }
    }
    if (R.failed())
      break;
    Dfa->finish();
    Dfas.push_back(std::move(Dfa));
  }

  if (!R.word("lexer"))
    return nullptr;
  int64_t NumLexStates = R.num();
  std::vector<regex::CharDfaState> LexStates;
  for (int64_t S = 0; S < NumLexStates && !R.failed(); ++S) {
    regex::CharDfaState St;
    St.AcceptTag = int32_t(R.num());
    int64_t NumEdges = R.num();
    for (int64_t E = 0; E < NumEdges && !R.failed(); ++E) {
      int64_t C = R.num();
      int64_t Target = R.num();
      if (C < 0 || C > 255) {
        R.fail("lexer edge byte out of range");
        break;
      }
      St.Next[size_t(C)] = int32_t(Target);
    }
    LexStates.push_back(St);
  }
  if (!R.word("lexertags"))
    return nullptr;
  int64_t NumTags = R.num();
  std::vector<LexerAction> Actions;
  std::vector<TokenType> Types;
  for (int64_t I = 0; I < NumTags && !R.failed(); ++I) {
    int64_t Action = R.num();
    if (Action < 0 || Action > int64_t(LexerAction::Skip)) {
      R.fail("lexer action out of range");
      break;
    }
    Actions.push_back(LexerAction(Action));
    Types.push_back(TokenType(R.num()));
  }

  if (!R.word("recover"))
    return nullptr;
  int64_t NumRecStates = R.num();
  if (!R.failed() && NumRecStates != int64_t(M->numStates()))
    R.fail("recovery table size does not match the ATN");
  std::vector<IntervalSet> Follow;
  std::vector<uint8_t> ReachesEnd;
  const int64_t MaxTok = int64_t(G->vocabulary().maxTokenType());
  for (int64_t S = 0; S < NumRecStates && !R.failed(); ++S) {
    int64_t End = R.num();
    if (End != 0 && End != 1) {
      R.fail("recovery end-reachability flag out of range");
      break;
    }
    ReachesEnd.push_back(uint8_t(End));
    int64_t NumIntervals = R.num();
    IntervalSet F;
    for (int64_t I = 0; I < NumIntervals && !R.failed(); ++I) {
      int64_t Lo = R.num();
      int64_t Hi = R.num();
      if (Lo > Hi || Lo < int64_t(TokenEof) || Hi > MaxTok) {
        R.fail("recovery follow interval out of range");
        break;
      }
      F.add(int32_t(Lo), int32_t(Hi));
    }
    Follow.push_back(std::move(F));
  }

  if (!R.word("end") || R.failed())
    return nullptr;

  if (!validateTables(*G, *M, NumActs, Dfas, LexStates, Actions.size(),
                      Diags))
    return nullptr;

  auto Result = std::make_unique<CompiledGrammar>();
  Result->LexerDfa = regex::CharDfa::fromTables(std::move(LexStates));
  Result->LexerActions = std::move(Actions);
  Result->LexerTypes = std::move(Types);
  Result->AG = AnalyzedGrammar::fromParts(
      std::move(G), std::move(M), std::move(Dfas),
      RecoverySets::fromTables(std::move(Follow), std::move(ReachesEnd)),
      Backend);
  return Result;
}

std::vector<Token> CompiledGrammar::tokenize(std::string_view Input,
                                             DiagnosticEngine &Diags) const {
  Lexer L(LexerDfa, LexerActions, LexerTypes);
  return L.tokenize(Input, Diags);
}

//===----------------------------------------------------------------------===//
// Bundle container
//===----------------------------------------------------------------------===//

namespace {
constexpr const char *BundleMagic = "llstarbundle";
} // namespace

std::string llstar::writeBundle(const AnalyzedGrammar &AG) {
  std::string Payload = serializeGrammar(AG);
  std::string Out = BundleMagic;
  Out += ' ';
  Out += std::to_string(BundleFormatVersion);
  Out += ' ';
  Out += std::to_string(Payload.size());
  Out += ' ';
  Out += std::to_string(hashBytes(Payload));
  Out += ' ';
  Out += AG.backendName();
  Out += '\n';
  Out += Payload;
  return Out;
}

bool llstar::looksLikeBundle(std::string_view Bytes) {
  return Bytes.substr(0, std::strlen(BundleMagic)) == BundleMagic;
}

std::unique_ptr<CompiledGrammar> llstar::readBundle(std::string_view Bytes,
                                                    DiagnosticEngine &Diags) {
  if (!looksLikeBundle(Bytes)) {
    Diags.error("not a grammar bundle (missing 'llstarbundle' header)");
    return nullptr;
  }
  size_t HeaderEnd = Bytes.find('\n');
  if (HeaderEnd == std::string_view::npos) {
    Diags.error("truncated bundle: header line is incomplete");
    return nullptr;
  }

  // Header fields: version, payload size, payload hash — all decimal —
  // plus, in v3, the producing-backend word.
  std::string_view Header = Bytes.substr(
      std::strlen(BundleMagic), HeaderEnd - std::strlen(BundleMagic));
  uint64_t Fields[3] = {0, 0, 0};
  std::string BackendWord;
  {
    size_t P = 0;
    for (uint64_t &F : Fields) {
      while (P < Header.size() && Header[P] == ' ')
        ++P;
      bool Any = false, Overflow = false;
      while (P < Header.size() && Header[P] >= '0' && Header[P] <= '9') {
        uint64_t Digit = uint64_t(Header[P] - '0');
        if (F > (UINT64_MAX - Digit) / 10)
          Overflow = true;
        else
          F = F * 10 + Digit;
        Any = true;
        ++P;
      }
      if (!Any || Overflow) {
        Diags.error("malformed bundle header");
        return nullptr;
      }
    }
    while (P < Header.size() && Header[P] == ' ')
      ++P;
    size_t WordEnd = P;
    while (WordEnd < Header.size() && Header[WordEnd] != ' ')
      ++WordEnd;
    BackendWord = std::string(Header.substr(P, WordEnd - P));
    P = WordEnd;
    while (P < Header.size() && Header[P] == ' ')
      ++P;
    if (P != Header.size()) {
      Diags.error("malformed bundle header");
      return nullptr;
    }
  }

  // v2 headers end at the hash (the backend is implicitly llstar); v3
  // appends the backend word. Everything else is from the future.
  if (int64_t(Fields[0]) != 2 && int64_t(Fields[0]) != BundleFormatVersion) {
    Diags.error("unsupported bundle format version " +
                std::to_string(Fields[0]) + " (this build reads versions 2-" +
                std::to_string(BundleFormatVersion) + ")");
    return nullptr;
  }
  BackendKind Backend = BackendKind::LLStar;
  if (int64_t(Fields[0]) == 2) {
    if (!BackendWord.empty()) {
      Diags.error("malformed bundle header");
      return nullptr;
    }
  } else {
    const AnalysisBackend *B = findAnalysisBackend(BackendWord);
    if (!B) {
      Diags.error("bundle names unknown analysis backend '" + BackendWord +
                  "' (this build knows: " + analysisBackendNames() + ")");
      return nullptr;
    }
    Backend = B->kind();
  }
  std::string_view Payload = Bytes.substr(HeaderEnd + 1);
  if (Payload.size() != Fields[1]) {
    Diags.error("corrupt bundle: payload is " +
                std::to_string(Payload.size()) +
                " bytes but the header declares " + std::to_string(Fields[1]));
    return nullptr;
  }
  if (hashBytes(Payload) != Fields[2]) {
    Diags.error("corrupt bundle: payload hash mismatch");
    return nullptr;
  }
  return deserializeGrammar(Payload, Diags, Backend);
}
