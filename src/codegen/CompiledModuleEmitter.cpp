#include "codegen/CompiledModuleEmitter.h"

#include "analysis/AnalyzedGrammar.h"
#include "codegen/Serializer.h"
#include "compiled/CompiledRegistry.h"
#include "compiled/CompiledTables.h"
#include "dfa/LookaheadDFA.h"
#include "lexer/Lexer.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

using namespace llstar;
using namespace llstar::compiled;

namespace {

std::string sanitizeIdent(std::string_view Name) {
  std::string Out;
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_') ? C : '_';
  if (Out.empty() || std::isdigit(static_cast<unsigned char>(Out[0])))
    Out.insert(Out.begin(), 'g');
  return Out;
}

std::string hex64(uint64_t V) {
  std::ostringstream OS;
  OS << "0x" << std::hex << V << "ull";
  return OS.str();
}

/// Emits `const <Type> kName[] = { ... };` with ~16 values per line, via
/// \p Each writing one element. \p Count == 0 emits a single zero element
/// (C++ forbids empty arrays); consumers never dereference zero-count
/// pools.
template <typename EachFn>
void emitArray(std::ostream &OS, std::string_view Type, std::string_view Name,
               size_t Count, size_t PerLine, EachFn Each) {
  OS << "const " << Type << " " << Name << "[] = {\n";
  if (Count == 0) {
    OS << "    0,\n";
  } else {
    for (size_t I = 0; I < Count; ++I) {
      if (I % PerLine == 0)
        OS << "    ";
      Each(OS, I);
      OS << ",";
      OS << ((I % PerLine == PerLine - 1 || I + 1 == Count) ? "\n" : " ");
    }
  }
  OS << "};\n";
}

/// True when decision \p D qualifies for a generated switch predictor: no
/// predicate edges anywhere, so the DFA walk is deterministic and never
/// re-enters the parser.
bool isNativeEligible(const LookaheadDfa &Dfa) {
  for (size_t S = 0; S < Dfa.numStates(); ++S)
    if (!Dfa.state(int32_t(S)).PredEdges.empty())
      return false;
  return true;
}

/// Emits the switch-dispatch predictor for one decision. Mirrors
/// CompiledParser::adaptivePredict's dense walk exactly: accept states
/// return before reading lookahead; EOF self-loops are omitted statically
/// (the table walk kills them dynamically); dead states report the depth
/// reached and return -1.
void emitNativePredictor(std::ostream &OS, const LookaheadDfa &Dfa,
                         int32_t Decision) {
  // Only reachable states get labels (unreachable labels would warn).
  size_t N = Dfa.numStates();
  std::vector<bool> Reach(N, false);
  std::vector<int32_t> Work{0};
  Reach[0] = true;
  while (!Work.empty()) {
    int32_t S = Work.back();
    Work.pop_back();
    for (const DfaEdge &E : Dfa.state(S).Edges) {
      if (E.Label == TokenEof && E.Target == S)
        continue; // EOF self-loop: statically dead
      if (E.Target >= 0 && size_t(E.Target) < N && !Reach[size_t(E.Target)]) {
        Reach[size_t(E.Target)] = true;
        Work.push_back(E.Target);
      }
    }
  }

  // Only goto targets get labels (an unreferenced label would warn; the
  // start state is entered by fallthrough).
  std::vector<bool> IsTarget(N, false);
  for (size_t S = 0; S < N; ++S) {
    if (!Reach[S])
      continue;
    for (const DfaEdge &E : Dfa.state(int32_t(S)).Edges)
      if (!(E.Label == TokenEof && E.Target == int32_t(S)) && E.Target >= 0 &&
          size_t(E.Target) < N)
        IsTarget[size_t(E.Target)] = true;
  }

  OS << "int32_t Predict" << Decision
     << "(const Token *Toks, int64_t NumToks, int64_t Pos,\n"
     << "                 int64_t &DepthOut) {\n"
     << "  (void)Toks;\n  (void)NumToks;\n  (void)Pos;\n"
     << "  int64_t Depth = 0;\n"
     << "  int32_t T = 0;\n  (void)T;\n";
  for (size_t S = 0; S < N; ++S) {
    if (!Reach[S])
      continue;
    if (IsTarget[S])
      OS << "s" << S << ":\n";
    const DfaState &St = Dfa.state(int32_t(S));
    if (St.PredictedAlt > 0) {
      OS << "  DepthOut = Depth;\n  return " << St.PredictedAlt << ";\n";
      continue;
    }
    OS << "  T = Toks[Pos + Depth < NumToks ? Pos + Depth : NumToks - 1]"
       << ".Type;\n"
       << "  switch (T) {\n";
    // Group case labels by target for compact switches.
    std::map<int32_t, std::vector<int32_t>> ByTarget;
    for (const DfaEdge &E : St.Edges) {
      if (E.Label == TokenEof && E.Target == int32_t(S))
        continue;
      ByTarget[E.Target].push_back(E.Label);
    }
    for (auto &[Target, Labels] : ByTarget) {
      std::sort(Labels.begin(), Labels.end());
      for (size_t I = 0; I < Labels.size(); ++I)
        OS << "  case " << Labels[I] << ":"
           << (I + 1 == Labels.size() ? "\n" : "");
      OS << "    ++Depth;\n    goto s" << Target << ";\n";
    }
    OS << "  default:\n    DepthOut = Depth;\n    return -1;\n  }\n";
  }
  OS << "}\n\n";
}

/// Emits the goto-threaded body for rule \p R over the fused tables \p V:
/// the same state walk CompiledParser::runStates performs, with every state
/// id, jump target, token label, and callee folded to a constant, and every
/// observable effect routed through the engine's generated-code interface
/// (consumeMatched, coldMismatch, predictAtState, callRule, ...) so the
/// body cannot diverge from the table walk.
void emitNativeRule(std::ostream &OS, const TablesView &V, int32_t R,
                    std::string_view RuleName,
                    const std::vector<bool> &HasNative, bool &UsesSetHas) {
  int32_t Start = V.RuleStarts[R];
  int32_t Stop = V.RuleStops[R];

  // Reachable states of the rule submachine in BFS order. Walking the
  // fused tables means bypassed epsilon glue is never even emitted.
  std::vector<int32_t> Order;
  std::vector<bool> Seen(size_t(V.NumStates), false);
  std::vector<bool> Referenced(size_t(V.NumStates), false);
  auto Successors = [&](int32_t K, std::vector<int32_t> &Out) {
    const CState &S = V.States[size_t(K)];
    if (S.Decision >= 0) {
      for (int32_t A = 0; A < S.NumAlts; ++A)
        Out.push_back(V.AltTargets[size_t(S.FirstAltTarget) + size_t(A)]);
      return;
    }
    if (S.TransKind < 0)
      return;
    Out.push_back(S.TransKind == int32_t(AtnTransitionKind::Rule)
                      ? S.FollowState
                      : S.Target);
  };
  if (Start != Stop) {
    Order.push_back(Start);
    Seen[size_t(Start)] = true;
    std::vector<int32_t> Succ;
    for (size_t Q = 0; Q < Order.size(); ++Q) {
      Succ.clear();
      Successors(Order[Q], Succ);
      for (int32_t T : Succ) {
        Referenced[size_t(T)] = true;
        if (T != Stop && !Seen[size_t(T)]) {
          Seen[size_t(T)] = true;
          Order.push_back(T);
        }
      }
    }
  }

  auto IsLoop = [&](const CState &S) {
    return S.Kind == int32_t(AtnStateKind::StarLoopEntry) ||
           S.Kind == int32_t(AtnStateKind::PlusLoopBack);
  };
  // Rule stop: return true. Anything else: jump to its label.
  auto Jump = [&](int32_t T, const char *Indent) {
    std::ostringstream J;
    if (T == Stop)
      J << Indent << "return true;\n";
    else
      J << Indent << "goto s" << T << ";\n";
    return J.str();
  };

  OS << "bool Rule" << R << "(CompiledParser &P, NodeRef Parent) { // "
     << RuleName << "\n"
     << "  (void)P;\n  (void)Parent;\n";
  // Epsilon-loop watermarks (one per loop decision; see runStates). Locals
  // live at function scope, declared before the first label so no goto
  // crosses an initialization.
  for (int32_t K : Order)
    if (V.States[size_t(K)].Decision >= 0 && IsLoop(V.States[size_t(K)]))
      OS << "  int64_t lm" << K << " = -1;\n";

  for (int32_t K : Order) {
    const CState &S = V.States[size_t(K)];
    if (Referenced[size_t(K)])
      OS << "s" << K << ":\n";

    if (S.Decision >= 0) {
      OS << "  {\n"
         << "    if (!P.deadlineOk())\n      return false;\n"
         << "    int32_t Alt;\n";
      if (HasNative[size_t(S.Decision)]) {
        // Same-TU predictor call: inlinable, and with fastPredict() true
        // it is observably identical to the engine path on success. Dead
        // predictions re-run through the engine for reporting + recovery.
        OS << "    if (P.fastPredict()) {\n"
           << "      const std::vector<Token> &Toks = P.stream().tokens();\n"
           << "      int64_t Depth = 0;\n"
           << "      Alt = Predict" << S.Decision
           << "(Toks.data(), int64_t(Toks.size()),\n"
           << "                     P.stream().index(), Depth);\n"
           << "      if (Alt < 0)\n"
           << "        Alt = P.predictAtState(" << S.Decision << ", " << K
           << ", Parent);\n"
           << "    } else {\n"
           << "      Alt = P.predictAtState(" << S.Decision << ", " << K
           << ", Parent);\n"
           << "    }\n";
      } else {
        OS << "    Alt = P.predictAtState(" << S.Decision << ", " << K
           << ", Parent);\n";
      }
      OS << "    if (Alt < 0)\n      return false;\n";
      if (IsLoop(S)) {
        OS << "    if (Alt != " << S.NumAlts << ") {\n"
           << "      if (lm" << K << " < 0)\n"
           << "        lm" << K << " = P.stream().index();\n"
           << "      else if (lm" << K << " == P.stream().index())\n"
           << "        Alt = " << S.NumAlts << "; // no progress: exit\n"
           << "      else\n"
           << "        lm" << K << " = P.stream().index();\n"
           << "    }\n";
      }
      OS << "    switch (Alt) {\n";
      for (int32_t A = 1; A <= S.NumAlts; ++A) {
        int32_t T = V.AltTargets[size_t(S.FirstAltTarget) + size_t(A) - 1];
        OS << "    case " << A << ":\n" << Jump(T, "      ");
      }
      OS << "    }\n"
         << "    return false;\n"
         << "  }\n";
      continue;
    }

    switch (AtnTransitionKind(S.TransKind)) {
    case AtnTransitionKind::Epsilon:
    case AtnTransitionKind::SynPred:
      OS << "  if (!P.deadlineOk())\n    return false;\n"
         << Jump(S.Target, "  ");
      break;
    case AtnTransitionKind::Atom:
    case AtnTransitionKind::Set: {
      bool IsAtom = S.TransKind == int32_t(AtnTransitionKind::Atom);
      OS << "  {\n"
         << "    if (!P.deadlineOk())\n      return false;\n";
      if (IsAtom) {
        OS << "    if (P.stream().LA(1) != " << S.Label << ") {\n";
      } else {
        UsesSetHas = true;
        OS << "    int32_t La = P.stream().LA(1);\n"
           << "    if (La == TokenEof || !setHas(" << S.SetIndex
           << ", La)) {\n";
      }
      OS << "      CompiledParser::ColdMatch M = P.coldMismatch(" << K
         << ", Parent);\n"
         << "      if (M == CompiledParser::ColdMatch::Unwind)\n"
         << "        return false;\n"
         << "      if (M == CompiledParser::ColdMatch::Inserted)\n"
         << Jump(S.Target, "        ") << "    }\n"
         << "    P.consumeMatched(Parent);\n"
         << Jump(S.Target, "    ") << "  }\n";
      break;
    }
    case AtnTransitionKind::Rule:
      OS << "  if (!P.deadlineOk())\n    return false;\n"
         << "  if (!P.callRule(" << S.CalleeRule << ", " << S.Precedence
         << ", " << S.FollowState << ", Parent))\n    return false;\n"
         << Jump(S.FollowState, "  ");
      break;
    case AtnTransitionKind::SemPred:
      OS << "  if (!P.deadlineOk())\n    return false;\n"
         << "  if (!P.checkPredicateAt(" << K << "))\n    return false;\n"
         << Jump(S.Target, "  ");
      break;
    case AtnTransitionKind::Action:
      OS << "  if (!P.deadlineOk())\n    return false;\n"
         << "  P.runAction(" << S.ActionIndex << ");\n"
         << Jump(S.Target, "  ");
      break;
    }
  }
  if (Start == Stop)
    OS << "  return true;\n";
  OS << "}\n\n";
}

} // namespace

EmittedCompiledModule llstar::emitCompiledModule(const AnalyzedGrammar &AG) {
  EmittedCompiledModule Out;
  std::string Name = AG.grammar().Name;
  std::string Ident = sanitizeIdent(Name);
  Out.SymbolName = "kModule_" + Ident;
  Out.NumDecisions = int32_t(AG.numDecisions());

  CompiledTables T = CompiledTables::build(AG);
  const TablesView &V = T.view();
  uint64_t Hash = hashPayload(serializeGrammar(AG));

  // The lexer tables, compiled the same way every loader compiles them.
  DiagnosticEngine LexDiags;
  Lexer Lex(AG.grammar().lexerSpec(), LexDiags);
  const auto &LexStates = Lex.dfa().states();

  std::ostringstream OS;
  OS << "//===- " << Name
     << "_compiled.cpp - Compiled grammar module ------*- C++ -*-===//\n"
     << "//\n"
     << "// GENERATED by `llstar compile --emit-cpp` from grammar '" << Name
     << "'. DO NOT EDIT:\n"
     << "// regenerate with that command (CI diffs this file against a "
        "fresh run).\n"
     << "//\n"
     << "// payload-hash: " << hex64(Hash) << "\n"
     << "//\n"
     << "//===------------------------------------------------------------"
        "----------===//\n\n"
     << "#include \"compiled/CompiledParser.h\"\n"
     << "#include \"compiled/CompiledRegistry.h\"\n\n"
     << "namespace llstar {\n"
     << "namespace compiled {\n"
     << "namespace {\n\n";

  // --- Parser tables ------------------------------------------------------
  emitArray(OS, "CState", "kStates", size_t(V.NumStates), 1,
            [&](std::ostream &O, size_t I) {
              const CState &S = V.States[I];
              O << "{" << S.Kind << ", " << S.TransKind << ", " << S.RuleIndex
                << ", " << S.Decision << ", " << S.EndState << ", " << S.Target
                << ", " << S.Label << ", " << S.SetIndex << ", "
                << S.CalleeRule << ", " << S.FollowState << ", "
                << S.Precedence << ", " << S.PredIndex << ", "
                << S.ActionIndex << ", " << S.FirstAltTarget << ", "
                << S.NumAlts << "}";
            });
  emitArray(OS, "int32_t", "kRuleStarts", size_t(V.NumRules), 16,
            [&](std::ostream &O, size_t I) { O << V.RuleStarts[I]; });
  emitArray(OS, "int32_t", "kRuleStops", size_t(V.NumRules), 16,
            [&](std::ostream &O, size_t I) { O << V.RuleStops[I]; });
  emitArray(OS, "int32_t", "kAltTargets", T.numAltTargets(), 16,
            [&](std::ostream &O, size_t I) { O << V.AltTargets[I]; });
  emitArray(OS, "int32_t", "kDecisionStates", size_t(V.NumDecisions), 16,
            [&](std::ostream &O, size_t I) { O << V.DecisionStates[I]; });
  emitArray(OS, "CDecision", "kDecisions", size_t(V.NumDecisions), 4,
            [&](std::ostream &O, size_t I) {
              const CDecision &D = V.Decisions[I];
              O << "{" << D.NumStates << ", " << D.TransBase << ", "
                << D.MetaBase << "}";
            });
  emitArray(OS, "int32_t", "kDfaTrans", T.numDfaTransEntries(), 16,
            [&](std::ostream &O, size_t I) { O << V.DfaTrans[I]; });
  emitArray(OS, "int32_t", "kDfaAccept", T.numDfaStatesTotal(), 16,
            [&](std::ostream &O, size_t I) { O << V.DfaAccept[I]; });
  emitArray(OS, "int32_t", "kDfaPredFirst", T.numDfaStatesTotal(), 16,
            [&](std::ostream &O, size_t I) { O << V.DfaPredFirst[I]; });
  emitArray(OS, "int32_t", "kDfaPredCount", T.numDfaStatesTotal(), 16,
            [&](std::ostream &O, size_t I) { O << V.DfaPredCount[I]; });
  emitArray(OS, "CPredEdge", "kPredEdges", T.numPredEdges(), 4,
            [&](std::ostream &O, size_t I) {
              const CPredEdge &P = V.PredEdges[I];
              O << "{" << P.Kind << ", " << P.A << ", " << P.B << ", "
                << P.Alt << "}";
            });
  emitArray(OS, "uint64_t", "kSetWords", T.numSetWords(), 4,
            [&](std::ostream &O, size_t I) {
              O << hex64(V.SetWords[I]);
            });
  OS << "\n";

  // --- Native predictors --------------------------------------------------
  std::vector<bool> HasNative(size_t(Out.NumDecisions), false);
  for (int32_t D = 0; D < Out.NumDecisions; ++D) {
    const LookaheadDfa &Dfa = AG.dfa(D);
    if (!isNativeEligible(Dfa))
      continue;
    HasNative[size_t(D)] = true;
    ++Out.NumNativePredictors;
    emitNativePredictor(OS, Dfa, D);
  }
  emitArray(OS, "NativePredictFn", "kNative", size_t(Out.NumDecisions), 4,
            [&](std::ostream &O, size_t I) {
              if (HasNative[I])
                O << "&Predict" << I;
              else
                O << "nullptr";
            });
  OS << "\n";

  // --- Native rule bodies -------------------------------------------------
  Out.NumRules = V.NumRules;
  bool UsesSetHas = false;
  std::ostringstream RuleOS;
  for (int32_t R = 0; R < V.NumRules; ++R) {
    emitNativeRule(RuleOS, V, R, AG.grammar().rule(R).Name, HasNative,
                   UsesSetHas);
    ++Out.NumNativeRules;
  }
  if (UsesSetHas)
    OS << "/// TablesView::setContains against this module's kSetWords.\n"
       << "inline bool setHas(int32_t SetIndex, int32_t T) {\n"
       << "  uint32_t I = uint32_t(T + 1);\n"
       << "  if (I >= " << V.rowWidth() << "u)\n"
       << "    I = 1;\n"
       << "  return (kSetWords[size_t(SetIndex) + size_t(I >> 6)] >> "
          "(I & 63)) & 1;\n"
       << "}\n\n";
  OS << RuleOS.str();
  emitArray(OS, "NativeRuleFn", "kNativeRules", size_t(V.NumRules), 4,
            [&](std::ostream &O, size_t I) { O << "&Rule" << I; });
  OS << "\n";

  // --- Lexer tables -------------------------------------------------------
  emitArray(OS, "int32_t", "kLexNext", LexStates.size() * 256, 16,
            [&](std::ostream &O, size_t I) {
              O << LexStates[I / 256].Next[I % 256];
            });
  emitArray(OS, "int32_t", "kLexAccept", LexStates.size(), 16,
            [&](std::ostream &O, size_t I) {
              O << LexStates[I].AcceptTag;
            });
  emitArray(OS, "uint8_t", "kLexActions", Lex.actions().size(), 16,
            [&](std::ostream &O, size_t I) {
              O << unsigned(static_cast<uint8_t>(Lex.actions()[I]));
            });
  emitArray(OS, "int32_t", "kLexTypes", Lex.types().size(), 16,
            [&](std::ostream &O, size_t I) { O << Lex.types()[I]; });

  OS << "\n} // namespace\n\n";

  // --- The module object --------------------------------------------------
  OS << "extern const CompiledGrammarModule " << Out.SymbolName << ";\n"
     << "const CompiledGrammarModule " << Out.SymbolName << " = {\n"
     << "    /*GrammarName=*/\"" << Name << "\",\n"
     << "    /*PayloadHash=*/" << hex64(Hash) << ",\n"
     << "    /*Tables=*/\n"
     << "    {\n"
     << "        /*NumTokens=*/" << V.NumTokens << ",\n"
     << "        /*NumStates=*/" << V.NumStates << ",\n"
     << "        /*NumRules=*/" << V.NumRules << ",\n"
     << "        /*NumDecisions=*/" << V.NumDecisions << ",\n"
     << "        /*SetWordsPerSet=*/" << V.SetWordsPerSet << ",\n"
     << "        kStates, kRuleStarts, kRuleStops, kAltTargets,\n"
     << "        kDecisionStates, kDecisions, kDfaTrans, kDfaAccept,\n"
     << "        kDfaPredFirst, kDfaPredCount, kPredEdges, kSetWords,\n"
     << "    },\n"
     << "    /*Native=*/kNative,\n"
     << "    /*Rules=*/kNativeRules,\n"
     << "    /*LexNext=*/kLexNext,\n"
     << "    /*LexAccept=*/kLexAccept,\n"
     << "    /*NumLexStates=*/" << LexStates.size() << ",\n"
     << "    /*LexActions=*/kLexActions,\n"
     << "    /*LexTypes=*/kLexTypes,\n"
     << "    /*NumLexTags=*/" << Lex.types().size() << ",\n"
     << "};\n\n"
     << "} // namespace compiled\n"
     << "} // namespace llstar\n";

  Out.Source = OS.str();
  Out.TableBytes = size_t(V.NumStates) * sizeof(CState) +
                   T.numDfaTransEntries() * 4 + T.numDfaStatesTotal() * 12 +
                   T.numAltTargets() * 4 + T.numSetWords() * 8 +
                   T.numPredEdges() * sizeof(CPredEdge) +
                   LexStates.size() * 257 * 4;
  return Out;
}
