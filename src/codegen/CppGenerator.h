//===- codegen/CppGenerator.h - C++ parser emission -------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a self-contained C++ module for an analyzed grammar — the
/// "generator" half of a parser generator. Like ANTLR's serialized-ATN
/// output, the generated code embeds the precomputed tables (ATN,
/// lookahead DFAs, lexer DFA) and links against the llstar runtime; no
/// grammar analysis happens in the deployed program.
///
/// The module defines, inside the requested namespace:
///   - `kGrammarTables` (the serialized blob),
///   - rule- and token-number constants (`RULE_expr`, `TOK_ID`),
///   - a `<ClassName>` facade with `tokenize()` and `parse()`.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_CODEGEN_CPPGENERATOR_H
#define LLSTAR_CODEGEN_CPPGENERATOR_H

#include "analysis/AnalyzedGrammar.h"

#include <string>

namespace llstar {

/// The two emitted files.
struct GeneratedParser {
  std::string Header; ///< contents of <ClassName>.h
  std::string Source; ///< contents of <ClassName>.cpp
};

/// Generates the C++ module. \p ClassName must be a valid C++ identifier;
/// it doubles as the header basename and (lowercased) namespace.
GeneratedParser generateCppParser(const AnalyzedGrammar &AG,
                                  const std::string &ClassName);

} // namespace llstar

#endif // LLSTAR_CODEGEN_CPPGENERATOR_H
