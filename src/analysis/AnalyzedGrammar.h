//===- analysis/AnalyzedGrammar.h - Whole-grammar analysis ------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives LL(*) analysis over every parsing decision of a grammar and
/// packages the results: the ATN, one lookahead DFA per decision, and the
/// static statistics reported in the paper's Tables 1 and 2 (decision
/// classes and fixed-lookahead depths).
///
/// This is the main entry point of the toolkit:
/// \code
///   DiagnosticEngine Diags;
///   auto AG = llstar::analyzeGrammarText(GrammarSource, Diags);
///   LLStarParser P(*AG, Stream, &Env, Diags);
///   auto Tree = P.parse("startRule");
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ANALYSIS_ANALYZEDGRAMMAR_H
#define LLSTAR_ANALYSIS_ANALYZEDGRAMMAR_H

#include "analysis/DecisionAnalyzer.h"
#include "analysis/backend/AnalysisBackend.h"
#include "atn/ATN.h"
#include "dfa/LookaheadDFA.h"
#include "grammar/Grammar.h"
#include "recover/RecoverySets.h"
#include "runtime/ParserStats.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string_view>
#include <vector>

namespace llstar {

/// Aggregate static-analysis statistics (paper Tables 1 and 2), extended
/// with the per-backend comparison fields bench_backends reports.
struct StaticStats {
  int32_t NumDecisions = 0;
  int32_t NumFixed = 0;     ///< acyclic, predicate-free DFAs: pure LL(k)
  int32_t NumCyclic = 0;    ///< cyclic DFAs without backtracking
  int32_t NumBacktrack = 0; ///< DFAs with syntactic-predicate edges
  /// Histogram: fixed lookahead depth k -> number of decisions.
  std::map<int32_t, int32_t> FixedKHistogram;
  /// Wall-clock seconds spent in grammar analysis + DFA construction.
  double AnalysisSeconds = 0;
  /// Name of the producing analysis backend ("llstar", "llfinite").
  std::string Backend = "llstar";
  /// Total lookahead-DFA states across all decisions.
  int64_t TotalDfaStates = 0;
  /// Decisions whose DFA carries no syntactic-predicate edges: resolved
  /// without any possibility of backtracking at runtime.
  int32_t BacktrackFree = 0;
  /// Max / mean fixed lookahead depth k over the FixedK decisions.
  int32_t MaxK = 0;
  double MeanK = 0;
  /// llfinite: decisions that exceeded the MaxFiniteK depth cap and were
  /// rebuilt with the llstar construction (see DecisionReport::CapExceeded).
  int32_t CapExceeded = 0;

  double fixedFraction() const {
    return NumDecisions ? double(NumFixed) / NumDecisions : 0;
  }
  double ll1Fraction() const {
    auto It = FixedKHistogram.find(1);
    int32_t LL1 = It == FixedKHistogram.end() ? 0 : It->second;
    return NumDecisions ? double(LL1) / NumDecisions : 0;
  }
};

/// A grammar plus its ATN and per-decision lookahead DFAs.
class AnalyzedGrammar {
public:
  /// Runs the full pipeline on \p G: validation happened at parse time;
  /// this builds the ATN and a DFA per decision using the prediction
  /// analysis of \p Backend. Returns null only if \p G is null. Analysis
  /// warnings accumulate in \p Diags.
  static std::unique_ptr<AnalyzedGrammar>
  analyze(std::unique_ptr<Grammar> G, DiagnosticEngine &Diags,
          BackendKind Backend = BackendKind::LLStar);

  /// Assembles from already-built parts (the deserializer's entry point;
  /// see codegen/Serializer.h). Recomputes the static statistics. \p
  /// Recovery carries deserialized recovery tables; pass null to recompute
  /// them from the ATN. \p Backend records which backend produced the
  /// tables (bundle v3 headers carry it).
  static std::unique_ptr<AnalyzedGrammar>
  fromParts(std::unique_ptr<Grammar> G, std::unique_ptr<Atn> M,
            std::vector<std::unique_ptr<LookaheadDfa>> Dfas,
            std::unique_ptr<RecoverySets> Recovery = nullptr,
            BackendKind Backend = BackendKind::LLStar);

  const Grammar &grammar() const { return *G; }
  const Atn &atn() const { return *M; }

  /// The analysis backend that produced the lookahead DFAs.
  BackendKind backendKind() const { return Backend; }
  const char *backendName() const { return llstar::backendName(Backend); }

  size_t numDecisions() const { return Dfas.size(); }
  const LookaheadDfa &dfa(int32_t Decision) const {
    return *Dfas[size_t(Decision)];
  }

  /// Resolution verdicts recorded while building \p Decision's DFA. Empty
  /// reports when the grammar was assembled from serialized parts
  /// (fromParts) -- the construction never ran there.
  const DecisionReport &decisionReport(int32_t Decision) const {
    return Reports[size_t(Decision)];
  }

  const StaticStats &stats() const { return Stats; }

  /// Stable per-decision identities — (rule, ordinal within the rule,
  /// source position) — for decision-keyed stats export. Index-aligned
  /// with the DFA vector; pass to ParserStats::json so profiles collected
  /// against the same grammar text join on identity rather than on the
  /// global decision numbering.
  std::vector<DecisionKey> decisionKeys() const;

  /// Per-state follow/recovery tables for the error-recovering runtime.
  const RecoverySets &recovery() const { return *Recovery; }

  /// Renders the Table-1-style one-line summary for this grammar.
  std::string summary() const;

private:
  AnalyzedGrammar() = default;
  void computeStats();

  std::unique_ptr<Grammar> G;
  std::unique_ptr<Atn> M;
  std::vector<std::unique_ptr<LookaheadDfa>> Dfas;
  std::vector<DecisionReport> Reports;
  StaticStats Stats;
  std::unique_ptr<RecoverySets> Recovery;
  BackendKind Backend = BackendKind::LLStar;
};

/// Convenience: parse + analyze grammar text. Returns null on error.
std::unique_ptr<AnalyzedGrammar>
analyzeGrammarText(std::string_view Text, DiagnosticEngine &Diags,
                   BackendKind Backend = BackendKind::LLStar);

} // namespace llstar

#endif // LLSTAR_ANALYSIS_ANALYZEDGRAMMAR_H
