#include "analysis/DecisionAnalyzer.h"

#include "analysis/ATNConfig.h"
#include "analysis/PredictionContext.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace llstar;

void ConfigSet::normalize() {
  std::sort(Configs.begin(), Configs.end());
  Configs.erase(std::unique(Configs.begin(), Configs.end()), Configs.end());
}

namespace {

struct ConfigSetHash {
  size_t operator()(const ConfigSet &S) const { return S.hash(); }
};

struct ConfigSetEq {
  bool operator()(const ConfigSet &X, const ConfigSet &Y) const {
    return X == Y;
  }
};

/// DFA construction for one decision (paper Algorithms 8-11).
class Analyzer {
public:
  Analyzer(const Atn &M, int32_t Decision, const AnalysisOptions &Opts,
           DiagnosticEngine &Diags, DecisionReport *Report)
      : M(M), Decision(Decision), Opts(Opts), Diags(Diags), Report(Report),
        DecisionState(M.decisionState(Decision)) {}

  std::unique_ptr<LookaheadDfa> run() {
    Dfa = std::make_unique<LookaheadDfa>(Decision);
    if (!createDfa()) {
      // LikelyNonLLRegular or resource limit: rebuild as the LL(1)
      // fallback (Section 5.4).
      Dfa = std::make_unique<LookaheadDfa>(Decision);
      Dfa->setUsedFallback();
      buildFallback();
    }
    Dfa->finish();
    if (Report) {
      Report->UsedFallback = Dfa->usedFallback();
      Report->LikelyNonLLRegular = MultiRecursionAbort;
      Report->Overflowed = Dfa->overflowed();
    }
    return std::move(Dfa);
  }

private:
  //===--------------------------------------------------------------------===//
  // Closure (Algorithm 9)
  //===--------------------------------------------------------------------===//

  using BusySet = std::unordered_set<AtnConfig, AtnConfigHash>;

  /// Adds the closure of \p C to \p D. \p RecursiveAlts accumulates the
  /// alternatives in which recursive rule invocation was observed; more
  /// than one aborts construction when \p AbortOnMultiRecursion.
  /// Returns false on abort.
  bool closure(ConfigSet &D, const AtnConfig &C, BusySet &Busy,
               std::set<int32_t> &RecursiveAlts, bool AbortOnMultiRecursion) {
    if (Aborted)
      return false;
    if (!Busy.insert(C).second)
      return true;
    if (int32_t(D.Configs.size()) > Opts.MaxConfigsPerState) {
      // Closure blow-up land mine: treat like a resource abort.
      Aborted = true;
      return false;
    }
    D.Configs.push_back(C);

    const AtnState &S = M.state(C.State);

    if (S.Kind == AtnStateKind::RuleStop) {
      if (!Pool.isEmpty(C.Ctx)) {
        // Pop the most recent invocation and continue past the call.
        AtnConfig Next(Pool.returnState(C.Ctx), C.Alt, Pool.parent(C.Ctx),
                       C.Pred, C.AfterWildcard);
        return closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion);
      }
      // Empty stack: statically unknown caller; chase every call site in
      // the grammar, and also the end-of-input continuation (any rule may
      // be used as a start rule). Configurations beyond this point carry
      // AfterWildcard so foreign predicates are not hoisted into this
      // decision.
      AtnConfig AtEof(M.eofState(), C.Alt, PredictionContextPool::Empty,
                      C.Pred, /*AfterWildcard=*/true);
      if (!closure(D, AtEof, Busy, RecursiveAlts, AbortOnMultiRecursion))
        return false;
      for (auto [SiteState, SiteTrans] : M.callSitesOf(S.RuleIndex)) {
        const AtnTransition &T =
            M.state(SiteState).Transitions[size_t(SiteTrans)];
        AtnConfig Next(T.FollowState, C.Alt, PredictionContextPool::Empty,
                       C.Pred, /*AfterWildcard=*/true);
        if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
          return false;
      }
      return true;
    }

    for (const AtnTransition &T : S.Transitions) {
      switch (T.Kind) {
      case AtnTransitionKind::Atom:
      case AtnTransitionKind::Set:
        break; // terminal edges are handled by move()
      case AtnTransitionKind::Epsilon:
      case AtnTransitionKind::Action: {
        AtnConfig Next(T.Target, C.Alt, C.Ctx, C.Pred, C.AfterWildcard);
        if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
          return false;
        break;
      }
      case AtnTransitionKind::SemPred: {
        // Record only left-edge predicates of this decision's own context;
        // predicates reached through the wildcard follow belong elsewhere.
        SemanticContext Pred = C.Pred.isNone() && !C.AfterWildcard
                                   ? SemanticContext::pred(T.PredIndex)
                                   : C.Pred;
        AtnConfig Next(T.Target, C.Alt, C.Ctx, Pred, C.AfterWildcard);
        if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
          return false;
        break;
      }
      case AtnTransitionKind::SynPred: {
        SemanticContext Pred = C.Pred.isNone() && !C.AfterWildcard
                                   ? SemanticContext::synPredRule(T.RuleIndex)
                                   : C.Pred;
        AtnConfig Next(T.Target, C.Alt, C.Ctx, Pred, C.AfterWildcard);
        if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
          return false;
        break;
      }
      case AtnTransitionKind::Rule: {
        int32_t Follow = T.FollowState;
        int32_t Depth = Pool.countOccurrences(C.Ctx, Follow);
        if (Depth == 1) {
          RecursiveAlts.insert(C.Alt);
          if (AbortOnMultiRecursion && RecursiveAlts.size() > 1) {
            // LikelyNonLLRegular: recursion in more than one alternative.
            Aborted = true;
            MultiRecursionAbort = true;
            return false;
          }
        }
        if (Depth >= Opts.MaxRecursionDepth) {
          // Recursion overflow: stop pursuing this path but keep what we
          // have (Section 5.3).
          D.Overflowed = true;
          D.OverflowedAlts.insert(C.Alt);
          Dfa->setOverflowed();
          continue;
        }
        AtnConfig Next(T.Target, C.Alt, Pool.push(C.Ctx, Follow), C.Pred,
                       C.AfterWildcard);
        if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
          return false;
        break;
      }
      }
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Move
  //===--------------------------------------------------------------------===//

  /// Configurations directly reachable from \p D on terminal \p Label.
  std::vector<AtnConfig> move(const ConfigSet &D, TokenType Label) const {
    std::vector<AtnConfig> Out;
    for (const AtnConfig &C : D.Configs)
      for (const AtnTransition &T : M.state(C.State).Transitions) {
        bool Matches =
            (T.Kind == AtnTransitionKind::Atom && T.Label == Label) ||
            (T.Kind == AtnTransitionKind::Set && T.Labels.contains(Label));
        if (Matches)
          Out.push_back(
              AtnConfig(T.Target, C.Alt, C.Ctx, C.Pred, C.AfterWildcard));
      }
    return Out;
  }

  /// Distinct terminal labels leaving \p D, in stable order.
  std::vector<TokenType> terminalLabels(const ConfigSet &D) const {
    std::set<TokenType> Labels;
    for (const AtnConfig &C : D.Configs)
      for (const AtnTransition &T : M.state(C.State).Transitions) {
        if (T.Kind == AtnTransitionKind::Atom)
          Labels.insert(T.Label);
        else if (T.Kind == AtnTransitionKind::Set)
          T.Labels.forEach([&](int32_t V) { Labels.insert(TokenType(V)); });
      }
    return std::vector<TokenType>(Labels.begin(), Labels.end());
  }

  //===--------------------------------------------------------------------===//
  // Resolve (Algorithms 10 and 11)
  //===--------------------------------------------------------------------===//

  /// Alternatives participating in at least one conflicting configuration
  /// pair (Definition 7): same ATN state, equivalent stacks, different alts.
  /// \p ConflictingConfigs (when non-null) receives the indices into
  /// D.Configs of the configurations that are themselves part of a
  /// conflicting pair.
  std::set<int32_t> conflictSet(const ConfigSet &D,
                                std::set<size_t> *ConflictingConfigs) const {
    std::set<int32_t> Conflicts;
    // Group configs by ATN state, then test pairs within each group.
    std::map<int32_t, std::vector<size_t>> ByState;
    for (size_t I = 0; I < D.Configs.size(); ++I)
      ByState[D.Configs[I].State].push_back(I);
    for (auto &[State, Group] : ByState) {
      (void)State;
      for (size_t I = 0; I < Group.size(); ++I)
        for (size_t J = I + 1; J < Group.size(); ++J) {
          const AtnConfig &A = D.Configs[Group[I]];
          const AtnConfig &B = D.Configs[Group[J]];
          if (A.Alt == B.Alt)
            continue;
          if (Pool.equivalent(A.Ctx, B.Ctx)) {
            Conflicts.insert(A.Alt);
            Conflicts.insert(B.Alt);
            if (ConflictingConfigs) {
              ConflictingConfigs->insert(Group[I]);
              ConflictingConfigs->insert(Group[J]);
            }
          }
        }
    }
    return Conflicts;
  }

  std::set<int32_t> predictedAlts(const ConfigSet &D) const {
    std::set<int32_t> Alts;
    for (const AtnConfig &C : D.Configs)
      Alts.insert(C.Alt);
    return Alts;
  }

  void resolve(ConfigSet &D, const std::vector<TokenType> &Path) {
    std::set<size_t> ConflictingConfigs;
    std::set<int32_t> Conflicts = conflictSet(D, &ConflictingConfigs);
    if (D.Overflowed) {
      // The analysis terminated early (Algorithm 10). An alternative whose
      // own closure hit the recursion limit has incomplete lookahead: it
      // potentially matches anything, so it conflicts with every
      // alternative still present. Alternatives that did not overflow keep
      // their precise lookahead and may still be separated by further
      // expansion (e.g. `local function f...` vs `local x = ...` where the
      // overflow came from a third alternative's closure).
      std::set<int32_t> All = predictedAlts(D);
      bool AnyTainted = false;
      for (int32_t Alt : D.OverflowedAlts)
        if (All.count(Alt))
          AnyTainted = true;
      if (All.size() > 1 && AnyTainted)
        Conflicts = std::move(All);
    }
    if (Conflicts.size() < 2)
      return;
    if (resolveWithPreds(D, Conflicts, Path)) {
      // An overflow-forced resolution makes the state terminal: closure
      // stopped early, so further terminal edges would be built from
      // crippled configurations. Ordinary predicate-resolved states keep
      // expanding (the paper's Algorithm 8 puts them back on the work
      // list); their predicate edges act as a fallback when no terminal
      // edge applies.
      if (D.Overflowed && Conflicts == predictedAlts(D))
        D.FullyPredResolved = true;
      return;
    }

    // Resolve statically in favor of the lowest-numbered alternative
    // (Section 3.1). On recursion overflow the surviving configurations of
    // higher alternatives cannot be trusted (closure stopped early), so the
    // whole alternative is dropped; for ordinary ambiguities only the
    // configurations that actually conflict are removed — non-conflicting
    // continuations of the same alternative stay viable.
    int32_t Min = *Conflicts.begin();
    if (D.Overflowed) {
      D.Configs.erase(std::remove_if(D.Configs.begin(), D.Configs.end(),
                                     [&](const AtnConfig &C) {
                                       return Conflicts.count(C.Alt) &&
                                              C.Alt != Min;
                                     }),
                      D.Configs.end());
    } else {
      std::vector<AtnConfig> Kept;
      Kept.reserve(D.Configs.size());
      for (size_t I = 0; I < D.Configs.size(); ++I) {
        const AtnConfig &C = D.Configs[I];
        if (ConflictingConfigs.count(I) && C.Alt != Min)
          continue;
        Kept.push_back(C);
      }
      D.Configs = std::move(Kept);
    }
    std::set<int32_t> Losers(std::next(Conflicts.begin()), Conflicts.end());
    recordEvent(Conflicts, Min, Losers, D.Overflowed, /*ByPreds=*/false, Path);
    reportResolution(Conflicts, Min, D.Overflowed);
  }

  bool resolveWithPreds(ConfigSet &D, const std::set<int32_t> &Conflicts,
                        const std::vector<TokenType> &Path) {
    // A predicate gates a conflicting alternative only if it *dominates*
    // it: every lookahead-bearing configuration (one with terminal
    // transitions) of that alternative carries the same predicate.
    // Without the dominance requirement, a predicate found on one nested
    // path (e.g. a {isTypeName}? reached through one branch of the
    // follow) would wrongly gate the whole alternative.
    std::map<int32_t, SemanticContext> AltPred;
    std::set<int32_t> Predicated;
    for (int32_t Alt : Conflicts) {
      SemanticContext Common = SemanticContext::none();
      bool Any = false, Dominates = true;
      for (const AtnConfig &C : D.Configs) {
        if (C.Alt != Alt)
          continue;
        bool HasAtom = false;
        for (const AtnTransition &T : M.state(C.State).Transitions)
          if (T.Kind == AtnTransitionKind::Atom ||
              T.Kind == AtnTransitionKind::Set)
            HasAtom = true;
        if (!HasAtom)
          continue;
        if (!Any) {
          Common = C.Pred;
          Any = true;
        } else if (C.Pred != Common) {
          Dominates = false;
        }
      }
      if (Any && Dominates && !Common.isNone()) {
        AltPred.emplace(Alt, Common);
        Predicated.insert(Alt);
      }
    }

    std::vector<int32_t> Unpredicated;
    for (int32_t Alt : Conflicts)
      if (!Predicated.count(Alt))
        Unpredicated.push_back(Alt);

    // Predicates to attach to a representative config per alternative
    // (None = an unconditional last-resort edge).
    std::map<int32_t, SemanticContext> Synthesized;

    if (Opts.Backtrack && !Unpredicated.empty()) {
      // PEG mode: auto-insert a backtracking predicate on every conflicting
      // alternative that lacks one. The highest-numbered alternative acts
      // as the default (PEG ordered choice: if every earlier speculation
      // fails, take the last).
      int32_t Max = *Conflicts.rbegin();
      for (int32_t Alt : Unpredicated)
        Synthesized[Alt] = Alt != Max
                               ? SemanticContext::synPredAlt(Decision, Alt)
                               : SemanticContext::none();
      Unpredicated.clear();
    }

    if (Predicated.empty() && Synthesized.empty())
      return false; // no predicates anywhere: resolve statically by order

    std::set<int32_t> Dropped;
    if (!Unpredicated.empty()) {
      // Gated-predicate semantics: the lowest unpredicated alternative
      // becomes the default (unconditional last-resort edge); any further
      // unpredicated alternatives lose statically. This is what makes
      // left-recursion precedence loops work: "iterate" carries a
      // precedence predicate and "exit" is the unpredicated default.
      int32_t DefaultAlt = Unpredicated.front();
      Synthesized[DefaultAlt] = SemanticContext::none();
      Dropped.insert(Unpredicated.begin() + 1, Unpredicated.end());
      if (!Dropped.empty()) {
        recordEvent(Conflicts, DefaultAlt, Dropped, D.Overflowed,
                    /*ByPreds=*/true, Path);
        reportResolution(Dropped, DefaultAlt, D.Overflowed);
        D.Configs.erase(std::remove_if(D.Configs.begin(), D.Configs.end(),
                                       [&](const AtnConfig &C) {
                                         return Dropped.count(C.Alt) != 0;
                                       }),
                        D.Configs.end());
      }
    }

    // Mark one representative per alternative: a config carrying the
    // dominating predicate where available, else attach the synthesized
    // predicate.
    std::set<int32_t> Done;
    for (AtnConfig &C : D.Configs) {
      if (!Predicated.count(C.Alt) || Done.count(C.Alt))
        continue;
      if (C.Pred == AltPred.at(C.Alt)) {
        C.WasResolved = true;
        Done.insert(C.Alt);
      }
    }
    for (auto &[Alt, Pred] : Synthesized) {
      if (Done.count(Alt))
        continue;
      for (AtnConfig &C : D.Configs)
        if (C.Alt == Alt) {
          C.Pred = Pred;
          C.WasResolved = true;
          Done.insert(Alt);
          break;
        }
    }
    if (Dropped.empty())
      recordEvent(Conflicts, -1, {}, D.Overflowed, /*ByPreds=*/true, Path);
    return true;
  }

  void recordEvent(const std::set<int32_t> &Conflicts, int32_t Chosen,
                   const std::set<int32_t> &Losers, bool Overflowed,
                   bool ByPreds, const std::vector<TokenType> &Path) {
    if (!Report)
      return;
    ResolutionEvent E;
    E.ConflictingAlts.assign(Conflicts.begin(), Conflicts.end());
    E.ChosenAlt = Chosen;
    E.LosingAlts.assign(Losers.begin(), Losers.end());
    E.Overflowed = Overflowed;
    E.ByPredicates = ByPreds;
    E.Path = Path;
    Report->Resolutions.push_back(std::move(E));
  }

  void reportResolution(const std::set<int32_t> &Conflicts, int32_t Min,
                        bool Overflowed) {
    if (ReportedResolution)
      return; // one warning per decision is enough
    ReportedResolution = true;
    std::vector<std::string> AltNames;
    for (int32_t A : Conflicts)
      AltNames.push_back(std::to_string(A));
    const AtnState &S = M.state(DecisionState);
    std::string RuleName =
        S.RuleIndex >= 0 ? M.grammar().rule(S.RuleIndex).Name : "<none>";
    Diags.warning(M.decisionLoc(Decision), formatString(
        "decision %d (rule %s): %s between alternatives {%s}; "
        "resolving in favor of alternative %d",
        Decision, RuleName.c_str(),
        Overflowed ? "recursion overflow makes input ambiguous"
                   : "input can be matched ambiguously",
        join(AltNames, ",").c_str(), Min));
  }

  //===--------------------------------------------------------------------===//
  // createDFA (Algorithm 8)
  //===--------------------------------------------------------------------===//

  int32_t acceptStateFor(int32_t Alt) {
    auto It = AcceptByAlt.find(Alt);
    if (It != AcceptByAlt.end())
      return It->second;
    int32_t Id = Dfa->addState();
    Dfa->state(Id).PredictedAlt = Alt;
    AcceptByAlt.emplace(Alt, Id);
    StateConfigs.resize(size_t(Id) + 1);
    StatePaths.resize(size_t(Id) + 1);
    return Id;
  }

  /// Registers \p D as a DFA state (or finds the identical existing one).
  /// Returns the state id and whether it was new.
  std::pair<int32_t, bool> internState(ConfigSet &&D) {
    std::set<int32_t> Alts = predictedAlts(D);
    if (Alts.size() == 1) {
      // Accept state: no more lookahead needed; map this config set to the
      // shared accept state for the alternative.
      int32_t Id = acceptStateFor(*Alts.begin());
      Known.emplace(std::move(D), Id);
      return {Id, false};
    }
    auto It = Known.find(D);
    if (It != Known.end())
      return {It->second, false};
    int32_t Id = Dfa->addState();
    StateConfigs.resize(size_t(Id) + 1);
    StatePaths.resize(size_t(Id) + 1);
    StateConfigs[size_t(Id)] = D;
    Known.emplace(std::move(D), Id);
    return {Id, true};
  }

  /// Adds the ordered predicate edges for resolved configurations of state
  /// \p Id (the last loop of Algorithm 8).
  void addPredicateEdges(int32_t Id) {
    const ConfigSet &D = StateConfigs[size_t(Id)];
    std::map<int32_t, SemanticContext> ByAlt; // ordered by alternative
    for (const AtnConfig &C : D.Configs)
      if (C.WasResolved)
        ByAlt.emplace(C.Alt, C.Pred);
    for (auto &[Alt, Pred] : ByAlt) {
      DfaPredEdge E;
      E.Pred = Pred;
      E.Alt = Alt;
      E.Target = acceptStateFor(Alt);
      Dfa->state(Id).PredEdges.push_back(E);
    }
  }

  /// Returns false on abort (fallback needed).
  bool createDfa() {
    const AtnState &S = M.state(DecisionState);
    assert(S.isDecision() && "not a decision state");

    ConfigSet D0;
    BusySet Busy;
    std::set<int32_t> RecursiveAlts;
    for (size_t I = 0; I < S.Transitions.size(); ++I) {
      assert(S.Transitions[I].Kind == AtnTransitionKind::Epsilon &&
             "decision transitions must be epsilon");
      AtnConfig C(S.Transitions[I].Target, int32_t(I) + 1,
                  PredictionContextPool::Empty, SemanticContext::none());
      if (!closure(D0, C, Busy, RecursiveAlts, /*AbortOnMultiRecursion=*/true))
        return false;
    }
    resolve(D0, /*Path=*/{});
    D0.normalize();

    auto [D0Id, D0New] = internState(std::move(D0));
    if (D0Id != 0) {
      // The start state resolved to a single alternative (e.g. statically
      // resolved ambiguity); build the trivial DFA with an accepting start.
      // internState created the accept state with some id; remap by making
      // state 0 an alias via an unconditional predicate edge.
      // Simpler: rebuild with state 0 as the accept.
      Dfa = std::make_unique<LookaheadDfa>(Decision);
      int32_t Id = Dfa->addState();
      Dfa->state(Id).PredictedAlt = M.state(DecisionState).isDecision()
                                        ? acceptAltOfTrivial()
                                        : 1;
      return true;
    }
    std::vector<int32_t> Work;
    if (D0New && StateConfigs[0].FullyPredResolved)
      addPredicateEdges(0); // pure-predicate decision: terminal start state
    else
      Work.push_back(0);
    while (!Work.empty()) {
      if (Aborted)
        return false;
      if (int32_t(Dfa->numStates()) > Opts.MaxDfaStates) {
        Aborted = true;
        return false;
      }
      int32_t Id = Work.back();
      Work.pop_back();

      // Copies: internState may reallocate StateConfigs/StatePaths.
      ConfigSet D = StateConfigs[size_t(Id)];
      std::vector<TokenType> Path = StatePaths[size_t(Id)];
      for (TokenType Label : terminalLabels(D)) {
        ConfigSet DNext;
        BusySet NextBusy;
        std::set<int32_t> NextRecursive;
        for (const AtnConfig &C : move(D, Label))
          if (!closure(DNext, C, NextBusy, NextRecursive,
                       /*AbortOnMultiRecursion=*/true))
            return false;
        if (DNext.empty())
          continue;
        std::vector<TokenType> NextPath = Path;
        NextPath.push_back(Label);
        resolve(DNext, NextPath);
        DNext.normalize();
        auto [Target, IsNew] = internState(std::move(DNext));
        if (Label == TokenEof && Target == Id)
          continue; // an EOF self-loop adds no information, only hangs
        DfaEdge E;
        E.Label = Label;
        E.Target = Target;
        Dfa->state(Id).Edges.push_back(E);
        if (IsNew) {
          StatePaths[size_t(Target)] = std::move(NextPath);
          if (StateConfigs[size_t(Target)].FullyPredResolved)
            addPredicateEdges(Target); // terminal: predicate edges only
          else
            Work.push_back(Target);
        }
      }
      addPredicateEdges(Id);
    }
    return true;
  }

  /// When D0 itself resolves to one alternative, find it.
  int32_t acceptAltOfTrivial() {
    // AcceptByAlt holds exactly one entry in this path.
    assert(AcceptByAlt.size() == 1 && "trivial DFA expects one alternative");
    return AcceptByAlt.begin()->first;
  }

  //===--------------------------------------------------------------------===//
  // LL(1) fallback (Section 5.4)
  //===--------------------------------------------------------------------===//

  void buildFallback() {
    // Drop all bookkeeping from the aborted full construction; state ids in
    // those maps refer to the discarded DFA.
    Aborted = false;
    Known.clear();
    StateConfigs.clear();
    StatePaths.clear();
    AcceptByAlt.clear();
    ReportedResolution = false;
    if (Report)
      Report->Resolutions.clear(); // state ids/paths referenced the
                                   // discarded full construction
    const AtnState &S = M.state(DecisionState);
    size_t NumAlts = S.Transitions.size();

    // Approximate per-alternative LL(1) sets with a closure that never
    // aborts (recursion overflow simply stops descent).
    std::vector<std::set<TokenType>> First(NumAlts);
    std::vector<SemanticContext> AltPred(NumAlts, SemanticContext::none());
    for (size_t I = 0; I < NumAlts; ++I) {
      ConfigSet D;
      BusySet Busy;
      std::set<int32_t> RecursiveAlts;
      AtnConfig C(S.Transitions[I].Target, int32_t(I) + 1,
                  PredictionContextPool::Empty, SemanticContext::none());
      closure(D, C, Busy, RecursiveAlts, /*AbortOnMultiRecursion=*/false);
      if (Aborted) {
        // Even the approximation blew up; treat the alternative as
        // matching anything and rely on order/backtracking.
        Aborted = false;
        D.Configs.clear();
      }
      // A discovered predicate is a valid gate for the whole alternative
      // only if it dominates it: every atom-bearing configuration carries
      // the same predicate. (A predicate deep inside one branch of the
      // alternative must not gate the others.)
      SemanticContext Common = SemanticContext::none();
      bool Any = false, Dominates = true;
      for (const AtnConfig &Cfg : D.Configs) {
        bool HasAtom = false;
        for (const AtnTransition &T : M.state(Cfg.State).Transitions) {
          if (T.Kind == AtnTransitionKind::Atom) {
            First[I].insert(T.Label);
            HasAtom = true;
          } else if (T.Kind == AtnTransitionKind::Set) {
            T.Labels.forEach(
                [&](int32_t V) { First[I].insert(TokenType(V)); });
            HasAtom = true;
          }
        }
        if (!HasAtom)
          continue;
        if (!Any) {
          Common = Cfg.Pred;
          Any = true;
        } else if (Cfg.Pred != Common) {
          Dominates = false;
        }
      }
      if (Any && Dominates)
        AltPred[I] = Common;
    }

    int32_t D0 = Dfa->addState();
    assert(D0 == 0 && "fallback start state must be state 0");
    (void)D0;

    // Collect every token and the alternatives it can begin.
    std::map<TokenType, std::vector<int32_t>> AltsOf;
    for (size_t I = 0; I < NumAlts; ++I)
      for (TokenType T : First[I])
        AltsOf[T].push_back(int32_t(I) + 1);

    // Conflicted label sets share intermediate predicate states.
    std::map<std::vector<int32_t>, int32_t> PredStates;
    bool WarnedAmbiguity = false;

    for (auto &[Label, Alts] : AltsOf) {
      int32_t Target;
      if (Alts.size() == 1) {
        Target = acceptStateFor(Alts[0]);
      } else {
        auto It = PredStates.find(Alts);
        if (It != PredStates.end()) {
          Target = It->second;
        } else {
          Target = buildFallbackPredState(Alts, AltPred, Label,
                                          WarnedAmbiguity);
          PredStates.emplace(Alts, Target);
        }
      }
      DfaEdge E;
      E.Label = Label;
      E.Target = Target;
      Dfa->state(0).Edges.push_back(E);
    }
  }

  /// A state whose predicate edges arbitrate between \p Alts.
  int32_t buildFallbackPredState(const std::vector<int32_t> &Alts,
                                 const std::vector<SemanticContext> &AltPred,
                                 TokenType Label, bool &WarnedAmbiguity) {
    std::set<int32_t> AltSet(Alts.begin(), Alts.end());
    // Do all conflicting alternatives have (or can be given) predicates?
    bool AllPredicated = true;
    for (size_t J = 0; J + 1 < Alts.size(); ++J)
      if (AltPred[size_t(Alts[J]) - 1].isNone() && !Opts.Backtrack)
        AllPredicated = false;

    if (!AllPredicated) {
      recordEvent(AltSet, Alts[0],
                  std::set<int32_t>(Alts.begin() + 1, Alts.end()),
                  /*Overflowed=*/true, /*ByPreds=*/false, {Label});
      if (!WarnedAmbiguity) {
        WarnedAmbiguity = true;
        reportResolution(AltSet, Alts[0], /*Overflowed=*/true);
      }
      return acceptStateFor(Alts[0]);
    }
    recordEvent(AltSet, -1, {}, /*Overflowed=*/false, /*ByPreds=*/true,
                {Label});

    int32_t Id = Dfa->addState();
    StateConfigs.resize(Dfa->numStates());
    StatePaths.resize(Dfa->numStates());
    for (size_t J = 0; J < Alts.size(); ++J) {
      int32_t Alt = Alts[J];
      SemanticContext Pred = AltPred[size_t(Alt) - 1];
      if (Pred.isNone() && J + 1 < Alts.size())
        Pred = SemanticContext::synPredAlt(Decision, Alt);
      // The last alternative keeps an unconditional edge (ordered choice).
      DfaPredEdge E;
      E.Pred = Pred;
      E.Alt = Alt;
      E.Target = acceptStateFor(Alt);
      Dfa->state(Id).PredEdges.push_back(E);
    }
    return Id;
  }

  const Atn &M;
  int32_t Decision;
  AnalysisOptions Opts;
  DiagnosticEngine &Diags;
  DecisionReport *Report;
  int32_t DecisionState;

  PredictionContextPool Pool;
  std::unique_ptr<LookaheadDfa> Dfa;
  std::unordered_map<ConfigSet, int32_t, ConfigSetHash, ConfigSetEq> Known;
  std::vector<ConfigSet> StateConfigs;
  /// Terminal labels on the path from DFA state 0 to each interned state;
  /// parallel to StateConfigs. Feeds ResolutionEvent::Path.
  std::vector<std::vector<TokenType>> StatePaths;
  std::map<int32_t, int32_t> AcceptByAlt;
  bool Aborted = false;
  bool MultiRecursionAbort = false;
  bool ReportedResolution = false;
};

} // namespace

std::unique_ptr<LookaheadDfa>
llstar::analyzeDecision(const Atn &M, int32_t Decision,
                        const AnalysisOptions &Opts, DiagnosticEngine &Diags,
                        DecisionReport *Report) {
  return Analyzer(M, Decision, Opts, Diags, Report).run();
}
