#include "analysis/AnalyzedGrammar.h"

#include "atn/ATNBuilder.h"
#include "grammar/GrammarParser.h"
#include "leftrec/LeftRecursionRewriter.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>

using namespace llstar;

std::unique_ptr<AnalyzedGrammar>
AnalyzedGrammar::analyze(std::unique_ptr<Grammar> G, DiagnosticEngine &Diags,
                         BackendKind Backend) {
  if (!G)
    return nullptr;
  auto Start = std::chrono::steady_clock::now();

  // Immediate left recursion is legal input: rewrite it into precedence
  // loops (paper Section 1.1), then reject whatever recursion remains.
  rewriteLeftRecursion(*G, Diags);
  G->validate(Diags);
  if (Diags.hasErrors())
    return nullptr;

  auto AG = std::unique_ptr<AnalyzedGrammar>(new AnalyzedGrammar());
  AG->G = std::move(G);
  AG->M = buildAtn(*AG->G);
  AG->Backend = Backend;

  const AnalysisBackend &B = analysisBackend(Backend);
  AnalysisOptions Opts = AnalysisOptions::fromGrammar(AG->G->Options);
  AG->Reports.resize(AG->M->numDecisions());
  for (size_t D = 0; D < AG->M->numDecisions(); ++D)
    AG->Dfas.push_back(
        B.analyzeDecision(*AG->M, int32_t(D), Opts, Diags, &AG->Reports[D]));

  AG->computeStats();
  AG->Recovery = RecoverySets::compute(*AG->M);
  // Freeze lazy grammar caches so concurrent const use (the parse service
  // sharing one analysis result across workers) never writes.
  AG->G->freeze();
  AG->Stats.AnalysisSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return AG;
}

std::unique_ptr<AnalyzedGrammar>
AnalyzedGrammar::fromParts(std::unique_ptr<Grammar> G, std::unique_ptr<Atn> M,
                           std::vector<std::unique_ptr<LookaheadDfa>> Dfas,
                           std::unique_ptr<RecoverySets> Recovery,
                           BackendKind Backend) {
  auto AG = std::unique_ptr<AnalyzedGrammar>(new AnalyzedGrammar());
  AG->G = std::move(G);
  AG->M = std::move(M);
  AG->Dfas = std::move(Dfas);
  AG->Backend = Backend;
  AG->Reports.resize(AG->Dfas.size());
  AG->computeStats();
  AG->Recovery =
      Recovery ? std::move(Recovery) : RecoverySets::compute(*AG->M);
  AG->G->freeze();
  return AG;
}

void AnalyzedGrammar::computeStats() {
  StaticStats &S = Stats;
  S = StaticStats();
  S.Backend = backendName();
  S.NumDecisions = int32_t(Dfas.size());
  int64_t SumK = 0;
  for (const auto &Dfa : Dfas) {
    S.TotalDfaStates += int64_t(Dfa->numStates());
    switch (Dfa->decisionClass()) {
    case DecisionClass::FixedK:
      ++S.NumFixed;
      ++S.FixedKHistogram[Dfa->fixedK()];
      SumK += Dfa->fixedK();
      S.MaxK = std::max(S.MaxK, Dfa->fixedK());
      break;
    case DecisionClass::Cyclic:
      ++S.NumCyclic;
      break;
    case DecisionClass::Backtrack:
      ++S.NumBacktrack;
      break;
    }
  }
  S.BacktrackFree = S.NumDecisions - S.NumBacktrack;
  S.MeanK = S.NumFixed ? double(SumK) / S.NumFixed : 0;
  for (const DecisionReport &R : Reports)
    S.CapExceeded += R.CapExceeded;
}

std::vector<DecisionKey> AnalyzedGrammar::decisionKeys() const {
  std::vector<DecisionKey> Keys(Dfas.size());
  // Ordinals follow decision-number order, which is ATN construction
  // order: stable across runs, and stable under edits to other rules.
  std::map<int32_t, int32_t> NextInRule;
  for (size_t D = 0; D < Dfas.size(); ++D) {
    const AtnState &St = M->state(M->decisionState(int32_t(D)));
    DecisionKey &K = Keys[D];
    if (St.RuleIndex >= 0 && size_t(St.RuleIndex) < G->numRules())
      K.Rule = G->rule(St.RuleIndex).Name;
    K.DecisionInRule = NextInRule[St.RuleIndex]++;
    SourceLocation Loc = M->decisionLoc(int32_t(D));
    K.Line = Loc.Line;
    K.Column = Loc.Column;
  }
  return Keys;
}

std::string AnalyzedGrammar::summary() const {
  return formatString(
      "grammar %s: %d decisions, %d fixed, %d cyclic, %d backtrack "
      "(%.1f%% fixed, %.1f%% LL(1)), %lld DFA states, analyzed in %.3fs "
      "[backend %s]",
      G->Name.c_str(), Stats.NumDecisions, Stats.NumFixed, Stats.NumCyclic,
      Stats.NumBacktrack, 100 * Stats.fixedFraction(),
      100 * Stats.ll1Fraction(), (long long)Stats.TotalDfaStates,
      Stats.AnalysisSeconds, backendName());
}

std::unique_ptr<AnalyzedGrammar>
llstar::analyzeGrammarText(std::string_view Text, DiagnosticEngine &Diags,
                           BackendKind Backend) {
  std::unique_ptr<Grammar> G =
      parseGrammarText(Text, Diags, /*Validate=*/false);
  if (!G)
    return nullptr;
  return AnalyzedGrammar::analyze(std::move(G), Diags, Backend);
}
