//===- analysis/DecisionAnalyzer.h - LL(*) DFA construction -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: the modified subset construction that
/// builds a lookahead DFA for one parsing decision from the ATN
/// (Algorithms 8-11, Sections 5.2-5.4).
///
/// Key behaviors:
///  - closure simulates rule invocation push/pop over interned stacks; at a
///    rule stop state with an empty stack it chases every call site in the
///    grammar (the empty stack is a wildcard);
///  - recursion depth per call site is capped by the constant m; hitting
///    the cap marks the DFA state "overflowed";
///  - recursion observed in more than one alternative aborts construction
///    (LikelyNonLLRegular) and the analyzer falls back to an LL(1) DFA with
///    predicate/backtracking edges (Section 5.4);
///  - a state whose configurations all predict one alternative becomes an
///    accept state and is not expanded further, which is what makes the DFA
///    match minimal lookahead sets LA_i rather than full continuations;
///  - ambiguities resolve via predicates when available (synthesizing
///    PEG-mode backtracking predicates when the grammar enables
///    backtrack=true), otherwise in favor of the lowest alternative with a
///    warning (Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ANALYSIS_DECISIONANALYZER_H
#define LLSTAR_ANALYSIS_DECISIONANALYZER_H

#include "atn/ATN.h"
#include "dfa/LookaheadDFA.h"
#include "support/Diagnostics.h"

#include <memory>

namespace llstar {

/// Tunables for DFA construction; defaults mirror \ref GrammarOptions.
struct AnalysisOptions {
  /// The recursion-depth constant m (Sections 2, 5.3).
  int32_t MaxRecursionDepth = 1;
  /// Abort DFA construction past this many DFA states (land-mine guard).
  int32_t MaxDfaStates = 2000;
  /// Guard against closure blow-up within a single state.
  int32_t MaxConfigsPerState = 10000;
  /// PEG mode: synthesize auto-backtracking predicates for unresolved
  /// conflicts instead of resolving statically by precedence.
  bool Backtrack = false;
  /// llfinite backend only: hard cap on finite lookahead depth. States
  /// still conflicted after this many terminal edges are closed with
  /// ordered backtracking predicates instead of unrolling further.
  int32_t MaxFiniteK = 16;

  static AnalysisOptions fromGrammar(const GrammarOptions &G) {
    AnalysisOptions O;
    O.MaxRecursionDepth = G.MaxRecursionDepth;
    O.MaxDfaStates = G.MaxDfaStates;
    O.Backtrack = G.Backtrack;
    return O;
  }
};

/// One ambiguity-resolution verdict recorded while building a DFA: at the
/// lookahead prefix \ref Path, the alternatives in \ref ConflictingAlts
/// matched the same input and the construction resolved in favor of
/// \ref ChosenAlt, dropping \ref LosingAlts (empty when predicates carried
/// every conflicting alternative). The lint passes turn these into
/// shadowed-alternative and ambiguity diagnostics with witnesses instead of
/// rediscovering them from the finished DFA.
struct ResolutionEvent {
  std::vector<int32_t> ConflictingAlts; ///< sorted, 1-based
  int32_t ChosenAlt = -1;               ///< winner (lowest alt or default)
  std::vector<int32_t> LosingAlts;      ///< alts dropped by this event
  bool Overflowed = false;     ///< forced by recursion-depth overflow
  bool ByPredicates = false;   ///< predicates gate the conflict at runtime
  /// Terminal labels on the DFA path from the start state to the config
  /// set where the conflict was resolved (the lookahead prefix).
  std::vector<TokenType> Path;
};

/// Everything the analyzer learns about one decision beyond the DFA
/// itself. Previously discarded; retained so diagnostics passes can see
/// resolution verdicts without re-running the subset construction.
struct DecisionReport {
  std::vector<ResolutionEvent> Resolutions;
  /// Full LL(*) construction aborted (LikelyNonLLRegular or a resource
  /// limit); the DFA is the LL(1)-with-predicates fallback.
  bool UsedFallback = false;
  /// Construction aborted specifically because recursion was observed in
  /// more than one alternative (the paper's LikelyNonLLRegular condition).
  bool LikelyNonLLRegular = false;
  /// Closure hit the recursion-depth limit m somewhere.
  bool Overflowed = false;
  /// llfinite backend only: 1 when the decision failed to separate within
  /// the MaxFiniteK depth cap (or a resource limit) and was rebuilt with
  /// the llstar construction instead. A cap artifact of the backend, not
  /// an ambiguity property of the grammar, so it is deliberately not a
  /// \ref Resolutions event — lint witnesses stay backend-stable.
  int32_t CapExceeded = 0;
};

/// Builds the lookahead DFA for \p Decision of \p M. Warnings (ambiguity,
/// recursion overflow, fallback) go to \p Diags. Never fails: when full
/// LL(*) construction aborts, the result is the LL(1)-with-predicates
/// fallback DFA (check \ref LookaheadDfa::usedFallback). When \p Report is
/// non-null it receives the resolution verdicts of the construction.
std::unique_ptr<LookaheadDfa> analyzeDecision(const Atn &M, int32_t Decision,
                                              const AnalysisOptions &Opts,
                                              DiagnosticEngine &Diags,
                                              DecisionReport *Report = nullptr);

} // namespace llstar

#endif // LLSTAR_ANALYSIS_DECISIONANALYZER_H
