//===- analysis/PredictionContext.h - Interned ATN stacks -------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consed immutable stacks of ATN follow states — the gamma component
/// of the paper's ATN configurations (p, i, gamma, pi). Closure pushes a
/// follow state at each rule invocation and pops at rule stop states.
///
/// Interning makes stacks cheap to copy (they are just ids), makes
/// configuration equality O(1), and implements the suffix test of the
/// paper's stack-equivalence relation (Definition 6) in O(depth).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ANALYSIS_PREDICTIONCONTEXT_H
#define LLSTAR_ANALYSIS_PREDICTIONCONTEXT_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace llstar {

/// An interned stack id. Id 0 is the empty stack.
using PredictionContextId = int32_t;

/// Owns all stacks created during one decision's DFA construction.
class PredictionContextPool {
public:
  static constexpr PredictionContextId Empty = 0;

  PredictionContextPool() {
    // Node 0 is the empty stack; fields unused.
    Nodes.push_back({-1, -1, 0});
  }

  /// The stack \p Parent with \p ReturnState pushed on top.
  PredictionContextId push(PredictionContextId Parent, int32_t ReturnState) {
    uint64_t Key = (uint64_t(uint32_t(Parent)) << 32) | uint32_t(ReturnState);
    auto It = Interned.find(Key);
    if (It != Interned.end())
      return It->second;
    Nodes.push_back({ReturnState, Parent, Nodes[size_t(Parent)].Depth + 1});
    PredictionContextId Id = PredictionContextId(Nodes.size()) - 1;
    Interned.emplace(Key, Id);
    return Id;
  }

  bool isEmpty(PredictionContextId Id) const { return Id == Empty; }

  /// Top of stack; only valid on non-empty stacks.
  int32_t returnState(PredictionContextId Id) const {
    return Nodes[size_t(Id)].ReturnState;
  }
  /// Stack with the top popped; only valid on non-empty stacks.
  PredictionContextId parent(PredictionContextId Id) const {
    return Nodes[size_t(Id)].Parent;
  }
  int32_t depth(PredictionContextId Id) const {
    return Nodes[size_t(Id)].Depth;
  }

  /// Number of occurrences of \p ReturnState anywhere in the stack — the
  /// recursion-depth measure of the paper's closure (Section 5.3).
  int32_t countOccurrences(PredictionContextId Id, int32_t ReturnState) const {
    int32_t Count = 0;
    for (PredictionContextId S = Id; S != Empty; S = Nodes[size_t(S)].Parent)
      if (Nodes[size_t(S)].ReturnState == ReturnState)
        ++Count;
    return Count;
  }

  /// Stack equivalence per paper Definition 6: equal, at least one empty,
  /// or one a suffix of the other.
  bool equivalent(PredictionContextId A, PredictionContextId B) const {
    if (A == B || A == Empty || B == Empty)
      return true;
    // Suffix test: strip the longer stack down to the shorter's depth, then
    // compare ids (interning makes equal stacks identical).
    int32_t Da = depth(A), Db = depth(B);
    while (Da > Db) {
      A = parent(A);
      --Da;
    }
    while (Db > Da) {
      B = parent(B);
      --Db;
    }
    return A == B;
  }

  size_t size() const { return Nodes.size(); }

private:
  struct Node {
    int32_t ReturnState;
    PredictionContextId Parent;
    int32_t Depth;
  };

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, PredictionContextId> Interned;
};

} // namespace llstar

#endif // LLSTAR_ANALYSIS_PREDICTIONCONTEXT_H
