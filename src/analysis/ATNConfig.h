//===- analysis/ATNConfig.h - ATN configurations ----------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ATN configuration tuple (p, i, gamma, pi) of paper Section 5.1: ATN
/// state, predicted alternative, interned call stack, and optional
/// predicate. A lookahead-DFA state is a set of these.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ANALYSIS_ATNCONFIG_H
#define LLSTAR_ANALYSIS_ATNCONFIG_H

#include "analysis/PredictionContext.h"
#include "dfa/SemanticContext.h"

#include <cstdint>
#include <set>
#include <vector>

namespace llstar {

/// One ATN configuration.
struct AtnConfig {
  int32_t State = -1;
  /// Predicted alternative, 1-based.
  int32_t Alt = 0;
  PredictionContextId Ctx = PredictionContextPool::Empty;
  SemanticContext Pred;
  /// True once closure popped an empty stack and chased arbitrary call
  /// sites: predicates encountered beyond that point belong to *other*
  /// invocation contexts and must not gate this decision.
  bool AfterWildcard = false;
  /// Resolution mark set by resolveWithPreds (not part of identity).
  bool WasResolved = false;

  AtnConfig() = default;
  AtnConfig(int32_t State, int32_t Alt, PredictionContextId Ctx,
            SemanticContext Pred, bool AfterWildcard = false)
      : State(State), Alt(Alt), Ctx(Ctx), Pred(Pred),
        AfterWildcard(AfterWildcard) {}

  friend bool operator==(const AtnConfig &X, const AtnConfig &Y) {
    return X.State == Y.State && X.Alt == Y.Alt && X.Ctx == Y.Ctx &&
           X.Pred == Y.Pred && X.AfterWildcard == Y.AfterWildcard;
  }
  friend bool operator<(const AtnConfig &X, const AtnConfig &Y) {
    if (X.State != Y.State)
      return X.State < Y.State;
    if (X.Alt != Y.Alt)
      return X.Alt < Y.Alt;
    if (X.Ctx != Y.Ctx)
      return X.Ctx < Y.Ctx;
    if (X.AfterWildcard != Y.AfterWildcard)
      return X.AfterWildcard < Y.AfterWildcard;
    return X.Pred < Y.Pred;
  }

  size_t hash() const {
    size_t H = size_t(uint32_t(State));
    H = H * 0x100000001b3ull ^ size_t(uint32_t(Alt));
    H = H * 0x100000001b3ull ^ size_t(uint32_t(Ctx));
    H = H * 0x100000001b3ull ^ Pred.hash();
    H = H * 0x100000001b3ull ^ size_t(AfterWildcard);
    return H;
  }
};

struct AtnConfigHash {
  size_t operator()(const AtnConfig &C) const { return C.hash(); }
};

/// A sorted, de-duplicated set of configurations (one DFA state's worth).
/// Sorting gives a canonical form so identical sets unify in the DFA-state
/// dedup map.
struct ConfigSet {
  std::vector<AtnConfig> Configs;
  bool Overflowed = false;
  /// Alternatives whose closure hit the recursion-depth limit: their
  /// lookahead beyond this state is incomplete.
  std::set<int32_t> OverflowedAlts;
  /// Set by resolve() when predicate resolution covered every alternative
  /// present: the DFA state becomes terminal (predicate edges only); more
  /// lookahead cannot help, and overflowed configurations would produce
  /// misleading terminal edges.
  bool FullyPredResolved = false;

  bool empty() const { return Configs.empty(); }

  void normalize();

  friend bool operator==(const ConfigSet &X, const ConfigSet &Y) {
    return X.Configs == Y.Configs;
  }

  size_t hash() const {
    size_t H = 0xcbf29ce484222325ull;
    for (const AtnConfig &C : Configs)
      H = H * 0x100000001b3ull ^ C.hash();
    return H;
  }
};

} // namespace llstar

#endif // LLSTAR_ANALYSIS_ATNCONFIG_H
