//===- analysis/backend/AnalysisBackend.h - Prediction backends -*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable prediction-analysis backend interface. A backend turns one
/// parsing decision of an ATN into a \ref LookaheadDfa plus a
/// \ref DecisionReport; everything downstream of analysis — the
/// interpreter, the compiled fast path, recovery, incremental reuse, lint
/// witnesses, serialization — consumes only that shared representation and
/// is backend-agnostic.
///
/// Two backends ship today:
///
///  - \c llstar: the paper's modified subset construction (Algorithms
///    8-11). Produces possibly-cyclic DFAs covering arbitrary regular
///    lookahead, with the LL(1)-with-predicates fallback when construction
///    aborts (LikelyNonLLRegular or a resource limit).
///  - \c llfinite: optimal finite lookahead in the style of LL(finite)
///    (Belcak 2020). Runs the same closure/move/resolve machinery but
///    interns DFA states per (lookahead depth, configuration set), so the
///    result is acyclic by construction and each path stops at the minimal
///    depth that uniquely predicts an alternative. Decisions needing
///    lookahead beyond \ref AnalysisOptions::MaxFiniteK are closed with
///    ordered backtracking predicates (PEG ordered choice) instead of the
///    fallback.
///
/// Both lower into the same \ref LookaheadDfa runtime representation, which
/// is what makes backends swappable per grammar bundle.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ANALYSIS_BACKEND_ANALYSISBACKEND_H
#define LLSTAR_ANALYSIS_BACKEND_ANALYSISBACKEND_H

#include "analysis/DecisionAnalyzer.h"

#include <memory>
#include <string_view>

namespace llstar {

/// The shipped analysis backends.
enum class BackendKind : uint8_t {
  LLStar,   ///< Paper subset construction; cyclic DFAs + LL(1) fallback.
  LLFinite, ///< Optimal finite lookahead; acyclic depth-interned DFAs.
};

/// Stable lowercase name ("llstar", "llfinite"); appears in bundle v3
/// headers, stats JSON, and CLI --backend values.
const char *backendName(BackendKind K);

/// One prediction-analysis strategy. Implementations are stateless
/// singletons; analyzeDecision is safe to call concurrently for different
/// decisions.
class AnalysisBackend {
public:
  virtual ~AnalysisBackend() = default;

  virtual BackendKind kind() const = 0;
  const char *name() const { return backendName(kind()); }

  /// Builds the lookahead DFA for \p Decision of \p M. Never fails: every
  /// backend has a total strategy for conflicts and resource limits (the
  /// llstar fallback; llfinite rebuilds capped decisions with the llstar
  /// construction). Warnings go to \p Diags; \p Report (when non-null)
  /// receives resolution verdicts and per-backend construction facts.
  virtual std::unique_ptr<LookaheadDfa>
  analyzeDecision(const Atn &M, int32_t Decision, const AnalysisOptions &Opts,
                  DiagnosticEngine &Diags,
                  DecisionReport *Report = nullptr) const = 0;
};

/// The singleton backend for \p K.
const AnalysisBackend &analysisBackend(BackendKind K);

/// Name lookup for CLI/daemon flag parsing; null for unknown names.
const AnalysisBackend *findAnalysisBackend(std::string_view Name);

/// Comma-separated list of valid backend names, for usage strings.
const char *analysisBackendNames();

namespace backend {
const AnalysisBackend &llstarBackend();
const AnalysisBackend &llfiniteBackend();
} // namespace backend

} // namespace llstar

#endif // LLSTAR_ANALYSIS_BACKEND_ANALYSISBACKEND_H
