//===- analysis/backend/LLStarBackend.cpp - Paper subset construction -----===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
//
// The llstar backend: the paper's modified subset construction (Algorithm
// 8), interning DFA states by configuration set so common lookahead
// suffixes merge and cyclic (arbitrary regular) lookahead emerges
// naturally. Construction aborts on LikelyNonLLRegular (recursion in more
// than one alternative) or resource limits and rebuilds the decision as
// the LL(1)-with-predicates fallback (Section 5.4).
//
//===----------------------------------------------------------------------===//

#include "analysis/backend/AnalysisBackend.h"
#include "analysis/backend/SubsetConstruction.h"

#include <cassert>
#include <unordered_map>

using namespace llstar;
using namespace llstar::backend;

namespace {

struct ConfigSetHash {
  size_t operator()(const ConfigSet &S) const { return S.hash(); }
};

struct ConfigSetEq {
  bool operator()(const ConfigSet &X, const ConfigSet &Y) const {
    return X == Y;
  }
};

/// DFA construction for one decision (paper Algorithms 8-11).
class LLStarAnalyzer : public SubsetAnalyzer {
public:
  using SubsetAnalyzer::SubsetAnalyzer;

  std::unique_ptr<LookaheadDfa> run() {
    Dfa = std::make_unique<LookaheadDfa>(Decision);
    if (!createDfa()) {
      // LikelyNonLLRegular or resource limit: rebuild as the LL(1)
      // fallback (Section 5.4).
      Dfa = std::make_unique<LookaheadDfa>(Decision);
      Dfa->setUsedFallback();
      buildFallback();
    }
    Dfa->finish();
    if (Report) {
      Report->UsedFallback = Dfa->usedFallback();
      Report->LikelyNonLLRegular = MultiRecursionAbort;
      Report->Overflowed = Dfa->overflowed();
    }
    return std::move(Dfa);
  }

private:
  //===--------------------------------------------------------------------===//
  // createDFA (Algorithm 8)
  //===--------------------------------------------------------------------===//

  /// Registers \p D as a DFA state (or finds the identical existing one).
  /// Returns the state id and whether it was new.
  std::pair<int32_t, bool> internState(ConfigSet &&D) {
    std::set<int32_t> Alts = predictedAlts(D);
    if (Alts.size() == 1) {
      // Accept state: no more lookahead needed; map this config set to the
      // shared accept state for the alternative.
      int32_t Id = acceptStateFor(*Alts.begin());
      Known.emplace(std::move(D), Id);
      return {Id, false};
    }
    auto It = Known.find(D);
    if (It != Known.end())
      return {It->second, false};
    int32_t Id = Dfa->addState();
    StateConfigs.resize(size_t(Id) + 1);
    StatePaths.resize(size_t(Id) + 1);
    StateConfigs[size_t(Id)] = D;
    Known.emplace(std::move(D), Id);
    return {Id, true};
  }

  /// Returns false on abort (fallback needed).
  bool createDfa() {
    const AtnState &S = M.state(DecisionState);
    assert(S.isDecision() && "not a decision state");

    ConfigSet D0;
    BusySet Busy;
    std::set<int32_t> RecursiveAlts;
    for (size_t I = 0; I < S.Transitions.size(); ++I) {
      assert(S.Transitions[I].Kind == AtnTransitionKind::Epsilon &&
             "decision transitions must be epsilon");
      AtnConfig C(S.Transitions[I].Target, int32_t(I) + 1,
                  PredictionContextPool::Empty, SemanticContext::none());
      if (!closure(D0, C, Busy, RecursiveAlts, /*AbortOnMultiRecursion=*/true))
        return false;
    }
    resolve(D0, /*Path=*/{});
    D0.normalize();

    auto [D0Id, D0New] = internState(std::move(D0));
    if (D0Id != 0) {
      // The start state resolved to a single alternative (e.g. statically
      // resolved ambiguity); build the trivial DFA with an accepting start.
      // internState created the accept state with some id; remap by making
      // state 0 an alias via an unconditional predicate edge.
      // Simpler: rebuild with state 0 as the accept.
      Dfa = std::make_unique<LookaheadDfa>(Decision);
      int32_t Id = Dfa->addState();
      Dfa->state(Id).PredictedAlt = M.state(DecisionState).isDecision()
                                        ? acceptAltOfTrivial()
                                        : 1;
      return true;
    }
    std::vector<int32_t> Work;
    if (D0New && StateConfigs[0].FullyPredResolved)
      addPredicateEdges(0); // pure-predicate decision: terminal start state
    else
      Work.push_back(0);
    while (!Work.empty()) {
      if (Aborted)
        return false;
      if (int32_t(Dfa->numStates()) > Opts.MaxDfaStates) {
        Aborted = true;
        return false;
      }
      int32_t Id = Work.back();
      Work.pop_back();

      // Copies: internState may reallocate StateConfigs/StatePaths.
      ConfigSet D = StateConfigs[size_t(Id)];
      std::vector<TokenType> Path = StatePaths[size_t(Id)];
      for (TokenType Label : terminalLabels(D)) {
        ConfigSet DNext;
        BusySet NextBusy;
        std::set<int32_t> NextRecursive;
        for (const AtnConfig &C : move(D, Label))
          if (!closure(DNext, C, NextBusy, NextRecursive,
                       /*AbortOnMultiRecursion=*/true))
            return false;
        if (DNext.empty())
          continue;
        std::vector<TokenType> NextPath = Path;
        NextPath.push_back(Label);
        resolve(DNext, NextPath);
        DNext.normalize();
        auto [Target, IsNew] = internState(std::move(DNext));
        if (Label == TokenEof && Target == Id)
          continue; // an EOF self-loop adds no information, only hangs
        DfaEdge E;
        E.Label = Label;
        E.Target = Target;
        Dfa->state(Id).Edges.push_back(E);
        if (IsNew) {
          StatePaths[size_t(Target)] = std::move(NextPath);
          if (StateConfigs[size_t(Target)].FullyPredResolved)
            addPredicateEdges(Target); // terminal: predicate edges only
          else
            Work.push_back(Target);
        }
      }
      addPredicateEdges(Id);
    }
    return true;
  }

  /// When D0 itself resolves to one alternative, find it.
  int32_t acceptAltOfTrivial() {
    // AcceptByAlt holds exactly one entry in this path.
    assert(AcceptByAlt.size() == 1 && "trivial DFA expects one alternative");
    return AcceptByAlt.begin()->first;
  }

  //===--------------------------------------------------------------------===//
  // LL(1) fallback (Section 5.4)
  //===--------------------------------------------------------------------===//

  void buildFallback() {
    // Drop all bookkeeping from the aborted full construction; state ids in
    // those maps refer to the discarded DFA.
    Aborted = false;
    Known.clear();
    StateConfigs.clear();
    StatePaths.clear();
    AcceptByAlt.clear();
    ReportedResolution = false;
    if (Report)
      Report->Resolutions.clear(); // state ids/paths referenced the
                                   // discarded full construction
    const AtnState &S = M.state(DecisionState);
    size_t NumAlts = S.Transitions.size();

    // Approximate per-alternative LL(1) sets with a closure that never
    // aborts (recursion overflow simply stops descent).
    std::vector<std::set<TokenType>> First(NumAlts);
    std::vector<SemanticContext> AltPred(NumAlts, SemanticContext::none());
    for (size_t I = 0; I < NumAlts; ++I) {
      ConfigSet D;
      BusySet Busy;
      std::set<int32_t> RecursiveAlts;
      AtnConfig C(S.Transitions[I].Target, int32_t(I) + 1,
                  PredictionContextPool::Empty, SemanticContext::none());
      closure(D, C, Busy, RecursiveAlts, /*AbortOnMultiRecursion=*/false);
      if (Aborted) {
        // Even the approximation blew up; treat the alternative as
        // matching anything and rely on order/backtracking.
        Aborted = false;
        D.Configs.clear();
      }
      // A discovered predicate is a valid gate for the whole alternative
      // only if it dominates it: every atom-bearing configuration carries
      // the same predicate. (A predicate deep inside one branch of the
      // alternative must not gate the others.)
      SemanticContext Common = SemanticContext::none();
      bool Any = false, Dominates = true;
      for (const AtnConfig &Cfg : D.Configs) {
        bool HasAtom = false;
        for (const AtnTransition &T : M.state(Cfg.State).Transitions) {
          if (T.Kind == AtnTransitionKind::Atom) {
            First[I].insert(T.Label);
            HasAtom = true;
          } else if (T.Kind == AtnTransitionKind::Set) {
            T.Labels.forEach(
                [&](int32_t V) { First[I].insert(TokenType(V)); });
            HasAtom = true;
          }
        }
        if (!HasAtom)
          continue;
        if (!Any) {
          Common = Cfg.Pred;
          Any = true;
        } else if (Cfg.Pred != Common) {
          Dominates = false;
        }
      }
      if (Any && Dominates)
        AltPred[I] = Common;
    }

    int32_t D0 = Dfa->addState();
    assert(D0 == 0 && "fallback start state must be state 0");
    (void)D0;

    // Collect every token and the alternatives it can begin.
    std::map<TokenType, std::vector<int32_t>> AltsOf;
    for (size_t I = 0; I < NumAlts; ++I)
      for (TokenType T : First[I])
        AltsOf[T].push_back(int32_t(I) + 1);

    // Conflicted label sets share intermediate predicate states.
    std::map<std::vector<int32_t>, int32_t> PredStates;
    bool WarnedAmbiguity = false;

    for (auto &[Label, Alts] : AltsOf) {
      int32_t Target;
      if (Alts.size() == 1) {
        Target = acceptStateFor(Alts[0]);
      } else {
        auto It = PredStates.find(Alts);
        if (It != PredStates.end()) {
          Target = It->second;
        } else {
          Target = buildFallbackPredState(Alts, AltPred, Label,
                                          WarnedAmbiguity);
          PredStates.emplace(Alts, Target);
        }
      }
      DfaEdge E;
      E.Label = Label;
      E.Target = Target;
      Dfa->state(0).Edges.push_back(E);
    }
  }

  /// A state whose predicate edges arbitrate between \p Alts.
  int32_t buildFallbackPredState(const std::vector<int32_t> &Alts,
                                 const std::vector<SemanticContext> &AltPred,
                                 TokenType Label, bool &WarnedAmbiguity) {
    std::set<int32_t> AltSet(Alts.begin(), Alts.end());
    // Do all conflicting alternatives have (or can be given) predicates?
    bool AllPredicated = true;
    for (size_t J = 0; J + 1 < Alts.size(); ++J)
      if (AltPred[size_t(Alts[J]) - 1].isNone() && !Opts.Backtrack)
        AllPredicated = false;

    if (!AllPredicated) {
      recordEvent(AltSet, Alts[0],
                  std::set<int32_t>(Alts.begin() + 1, Alts.end()),
                  /*Overflowed=*/true, /*ByPreds=*/false, {Label});
      if (!WarnedAmbiguity) {
        WarnedAmbiguity = true;
        reportResolution(AltSet, Alts[0], /*Overflowed=*/true);
      }
      return acceptStateFor(Alts[0]);
    }
    recordEvent(AltSet, -1, {}, /*Overflowed=*/false, /*ByPreds=*/true,
                {Label});

    int32_t Id = Dfa->addState();
    StateConfigs.resize(Dfa->numStates());
    StatePaths.resize(Dfa->numStates());
    for (size_t J = 0; J < Alts.size(); ++J) {
      int32_t Alt = Alts[J];
      SemanticContext Pred = AltPred[size_t(Alt) - 1];
      if (Pred.isNone() && J + 1 < Alts.size())
        Pred = SemanticContext::synPredAlt(Decision, Alt);
      // The last alternative keeps an unconditional edge (ordered choice).
      DfaPredEdge E;
      E.Pred = Pred;
      E.Alt = Alt;
      E.Target = acceptStateFor(Alt);
      Dfa->state(Id).PredEdges.push_back(E);
    }
    return Id;
  }

  std::unordered_map<ConfigSet, int32_t, ConfigSetHash, ConfigSetEq> Known;
};

class LLStarBackend : public AnalysisBackend {
public:
  BackendKind kind() const override { return BackendKind::LLStar; }

  std::unique_ptr<LookaheadDfa>
  analyzeDecision(const Atn &M, int32_t Decision, const AnalysisOptions &Opts,
                  DiagnosticEngine &Diags,
                  DecisionReport *Report) const override {
    return LLStarAnalyzer(M, Decision, Opts, Diags, Report).run();
  }
};

} // namespace

const AnalysisBackend &llstar::backend::llstarBackend() {
  static LLStarBackend B;
  return B;
}

std::unique_ptr<LookaheadDfa>
llstar::analyzeDecision(const Atn &M, int32_t Decision,
                        const AnalysisOptions &Opts, DiagnosticEngine &Diags,
                        DecisionReport *Report) {
  return backend::llstarBackend().analyzeDecision(M, Decision, Opts, Diags,
                                                  Report);
}
