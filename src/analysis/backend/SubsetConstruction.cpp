#include "analysis/backend/SubsetConstruction.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace llstar;
using namespace llstar::backend;

void ConfigSet::normalize() {
  std::sort(Configs.begin(), Configs.end());
  Configs.erase(std::unique(Configs.begin(), Configs.end()), Configs.end());
}

//===----------------------------------------------------------------------===//
// Closure (Algorithm 9)
//===----------------------------------------------------------------------===//

bool SubsetAnalyzer::closure(ConfigSet &D, const AtnConfig &C, BusySet &Busy,
                             std::set<int32_t> &RecursiveAlts,
                             bool AbortOnMultiRecursion) {
  if (Aborted)
    return false;
  if (!Busy.insert(C).second)
    return true;
  if (int32_t(D.Configs.size()) > Opts.MaxConfigsPerState) {
    // Closure blow-up land mine: treat like a resource abort.
    Aborted = true;
    return false;
  }
  D.Configs.push_back(C);

  const AtnState &S = M.state(C.State);

  if (S.Kind == AtnStateKind::RuleStop) {
    if (!Pool.isEmpty(C.Ctx)) {
      // Pop the most recent invocation and continue past the call.
      AtnConfig Next(Pool.returnState(C.Ctx), C.Alt, Pool.parent(C.Ctx),
                     C.Pred, C.AfterWildcard);
      return closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion);
    }
    // Empty stack: statically unknown caller; chase every call site in
    // the grammar, and also the end-of-input continuation (any rule may
    // be used as a start rule). Configurations beyond this point carry
    // AfterWildcard so foreign predicates are not hoisted into this
    // decision.
    AtnConfig AtEof(M.eofState(), C.Alt, PredictionContextPool::Empty,
                    C.Pred, /*AfterWildcard=*/true);
    if (!closure(D, AtEof, Busy, RecursiveAlts, AbortOnMultiRecursion))
      return false;
    for (auto [SiteState, SiteTrans] : M.callSitesOf(S.RuleIndex)) {
      const AtnTransition &T =
          M.state(SiteState).Transitions[size_t(SiteTrans)];
      AtnConfig Next(T.FollowState, C.Alt, PredictionContextPool::Empty,
                     C.Pred, /*AfterWildcard=*/true);
      if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
        return false;
    }
    return true;
  }

  for (const AtnTransition &T : S.Transitions) {
    switch (T.Kind) {
    case AtnTransitionKind::Atom:
    case AtnTransitionKind::Set:
      break; // terminal edges are handled by move()
    case AtnTransitionKind::Epsilon:
    case AtnTransitionKind::Action: {
      AtnConfig Next(T.Target, C.Alt, C.Ctx, C.Pred, C.AfterWildcard);
      if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
        return false;
      break;
    }
    case AtnTransitionKind::SemPred: {
      // Record only left-edge predicates of this decision's own context;
      // predicates reached through the wildcard follow belong elsewhere.
      SemanticContext Pred = C.Pred.isNone() && !C.AfterWildcard
                                 ? SemanticContext::pred(T.PredIndex)
                                 : C.Pred;
      AtnConfig Next(T.Target, C.Alt, C.Ctx, Pred, C.AfterWildcard);
      if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
        return false;
      break;
    }
    case AtnTransitionKind::SynPred: {
      SemanticContext Pred = C.Pred.isNone() && !C.AfterWildcard
                                 ? SemanticContext::synPredRule(T.RuleIndex)
                                 : C.Pred;
      AtnConfig Next(T.Target, C.Alt, C.Ctx, Pred, C.AfterWildcard);
      if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
        return false;
      break;
    }
    case AtnTransitionKind::Rule: {
      int32_t Follow = T.FollowState;
      int32_t Depth = Pool.countOccurrences(C.Ctx, Follow);
      if (Depth == 1) {
        RecursiveAlts.insert(C.Alt);
        if (AbortOnMultiRecursion && RecursiveAlts.size() > 1) {
          // LikelyNonLLRegular: recursion in more than one alternative.
          Aborted = true;
          MultiRecursionAbort = true;
          return false;
        }
      }
      if (Depth >= Opts.MaxRecursionDepth) {
        // Recursion overflow: stop pursuing this path but keep what we
        // have (Section 5.3).
        D.Overflowed = true;
        D.OverflowedAlts.insert(C.Alt);
        Dfa->setOverflowed();
        continue;
      }
      AtnConfig Next(T.Target, C.Alt, Pool.push(C.Ctx, Follow), C.Pred,
                     C.AfterWildcard);
      if (!closure(D, Next, Busy, RecursiveAlts, AbortOnMultiRecursion))
        return false;
      break;
    }
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Move
//===----------------------------------------------------------------------===//

std::vector<AtnConfig> SubsetAnalyzer::move(const ConfigSet &D,
                                            TokenType Label) const {
  std::vector<AtnConfig> Out;
  for (const AtnConfig &C : D.Configs)
    for (const AtnTransition &T : M.state(C.State).Transitions) {
      bool Matches =
          (T.Kind == AtnTransitionKind::Atom && T.Label == Label) ||
          (T.Kind == AtnTransitionKind::Set && T.Labels.contains(Label));
      if (Matches)
        Out.push_back(
            AtnConfig(T.Target, C.Alt, C.Ctx, C.Pred, C.AfterWildcard));
    }
  return Out;
}

std::vector<TokenType>
SubsetAnalyzer::terminalLabels(const ConfigSet &D) const {
  std::set<TokenType> Labels;
  for (const AtnConfig &C : D.Configs)
    for (const AtnTransition &T : M.state(C.State).Transitions) {
      if (T.Kind == AtnTransitionKind::Atom)
        Labels.insert(T.Label);
      else if (T.Kind == AtnTransitionKind::Set)
        T.Labels.forEach([&](int32_t V) { Labels.insert(TokenType(V)); });
    }
  return std::vector<TokenType>(Labels.begin(), Labels.end());
}

//===----------------------------------------------------------------------===//
// Resolve (Algorithms 10 and 11)
//===----------------------------------------------------------------------===//

std::set<int32_t>
SubsetAnalyzer::conflictSet(const ConfigSet &D,
                            std::set<size_t> *ConflictingConfigs) const {
  std::set<int32_t> Conflicts;
  // Group configs by ATN state, then test pairs within each group.
  std::map<int32_t, std::vector<size_t>> ByState;
  for (size_t I = 0; I < D.Configs.size(); ++I)
    ByState[D.Configs[I].State].push_back(I);
  for (auto &[State, Group] : ByState) {
    (void)State;
    for (size_t I = 0; I < Group.size(); ++I)
      for (size_t J = I + 1; J < Group.size(); ++J) {
        const AtnConfig &A = D.Configs[Group[I]];
        const AtnConfig &B = D.Configs[Group[J]];
        if (A.Alt == B.Alt)
          continue;
        if (Pool.equivalent(A.Ctx, B.Ctx)) {
          Conflicts.insert(A.Alt);
          Conflicts.insert(B.Alt);
          if (ConflictingConfigs) {
            ConflictingConfigs->insert(Group[I]);
            ConflictingConfigs->insert(Group[J]);
          }
        }
      }
  }
  return Conflicts;
}

std::set<int32_t> SubsetAnalyzer::predictedAlts(const ConfigSet &D) const {
  std::set<int32_t> Alts;
  for (const AtnConfig &C : D.Configs)
    Alts.insert(C.Alt);
  return Alts;
}

void SubsetAnalyzer::resolve(ConfigSet &D, const std::vector<TokenType> &Path) {
  std::set<size_t> ConflictingConfigs;
  std::set<int32_t> Conflicts = conflictSet(D, &ConflictingConfigs);
  if (D.Overflowed) {
    // The analysis terminated early (Algorithm 10). An alternative whose
    // own closure hit the recursion limit has incomplete lookahead: it
    // potentially matches anything, so it conflicts with every
    // alternative still present. Alternatives that did not overflow keep
    // their precise lookahead and may still be separated by further
    // expansion (e.g. `local function f...` vs `local x = ...` where the
    // overflow came from a third alternative's closure).
    std::set<int32_t> All = predictedAlts(D);
    bool AnyTainted = false;
    for (int32_t Alt : D.OverflowedAlts)
      if (All.count(Alt))
        AnyTainted = true;
    if (All.size() > 1 && AnyTainted)
      Conflicts = std::move(All);
  }
  if (Conflicts.size() < 2)
    return;
  if (resolveWithPreds(D, Conflicts, Path)) {
    // An overflow-forced resolution makes the state terminal: closure
    // stopped early, so further terminal edges would be built from
    // crippled configurations. Ordinary predicate-resolved states keep
    // expanding (the paper's Algorithm 8 puts them back on the work
    // list); their predicate edges act as a fallback when no terminal
    // edge applies.
    if (D.Overflowed && Conflicts == predictedAlts(D))
      D.FullyPredResolved = true;
    return;
  }

  // Resolve statically in favor of the lowest-numbered alternative
  // (Section 3.1). On recursion overflow the surviving configurations of
  // higher alternatives cannot be trusted (closure stopped early), so the
  // whole alternative is dropped; for ordinary ambiguities only the
  // configurations that actually conflict are removed — non-conflicting
  // continuations of the same alternative stay viable.
  int32_t Min = *Conflicts.begin();
  if (D.Overflowed) {
    D.Configs.erase(std::remove_if(D.Configs.begin(), D.Configs.end(),
                                   [&](const AtnConfig &C) {
                                     return Conflicts.count(C.Alt) &&
                                            C.Alt != Min;
                                   }),
                    D.Configs.end());
  } else {
    std::vector<AtnConfig> Kept;
    Kept.reserve(D.Configs.size());
    for (size_t I = 0; I < D.Configs.size(); ++I) {
      const AtnConfig &C = D.Configs[I];
      if (ConflictingConfigs.count(I) && C.Alt != Min)
        continue;
      Kept.push_back(C);
    }
    D.Configs = std::move(Kept);
  }
  std::set<int32_t> Losers(std::next(Conflicts.begin()), Conflicts.end());
  recordEvent(Conflicts, Min, Losers, D.Overflowed, /*ByPreds=*/false, Path);
  reportResolution(Conflicts, Min, D.Overflowed);
}

bool SubsetAnalyzer::resolveWithPreds(ConfigSet &D,
                                      const std::set<int32_t> &Conflicts,
                                      const std::vector<TokenType> &Path) {
  // A predicate gates a conflicting alternative only if it *dominates*
  // it: every lookahead-bearing configuration (one with terminal
  // transitions) of that alternative carries the same predicate.
  // Without the dominance requirement, a predicate found on one nested
  // path (e.g. a {isTypeName}? reached through one branch of the
  // follow) would wrongly gate the whole alternative.
  std::map<int32_t, SemanticContext> AltPred;
  std::set<int32_t> Predicated;
  for (int32_t Alt : Conflicts) {
    SemanticContext Common = SemanticContext::none();
    bool Any = false, Dominates = true;
    for (const AtnConfig &C : D.Configs) {
      if (C.Alt != Alt)
        continue;
      bool HasAtom = false;
      for (const AtnTransition &T : M.state(C.State).Transitions)
        if (T.Kind == AtnTransitionKind::Atom ||
            T.Kind == AtnTransitionKind::Set)
          HasAtom = true;
      if (!HasAtom)
        continue;
      if (!Any) {
        Common = C.Pred;
        Any = true;
      } else if (C.Pred != Common) {
        Dominates = false;
      }
    }
    if (Any && Dominates && !Common.isNone()) {
      AltPred.emplace(Alt, Common);
      Predicated.insert(Alt);
    }
  }

  std::vector<int32_t> Unpredicated;
  for (int32_t Alt : Conflicts)
    if (!Predicated.count(Alt))
      Unpredicated.push_back(Alt);

  // Predicates to attach to a representative config per alternative
  // (None = an unconditional last-resort edge).
  std::map<int32_t, SemanticContext> Synthesized;

  if (Opts.Backtrack && !Unpredicated.empty()) {
    // PEG mode: auto-insert a backtracking predicate on every conflicting
    // alternative that lacks one. The highest-numbered alternative acts
    // as the default (PEG ordered choice: if every earlier speculation
    // fails, take the last).
    int32_t Max = *Conflicts.rbegin();
    for (int32_t Alt : Unpredicated)
      Synthesized[Alt] = Alt != Max
                             ? SemanticContext::synPredAlt(Decision, Alt)
                             : SemanticContext::none();
    Unpredicated.clear();
  }

  if (Predicated.empty() && Synthesized.empty())
    return false; // no predicates anywhere: resolve statically by order

  std::set<int32_t> Dropped;
  if (!Unpredicated.empty()) {
    // Gated-predicate semantics: the lowest unpredicated alternative
    // becomes the default (unconditional last-resort edge); any further
    // unpredicated alternatives lose statically. This is what makes
    // left-recursion precedence loops work: "iterate" carries a
    // precedence predicate and "exit" is the unpredicated default.
    int32_t DefaultAlt = Unpredicated.front();
    Synthesized[DefaultAlt] = SemanticContext::none();
    Dropped.insert(Unpredicated.begin() + 1, Unpredicated.end());
    if (!Dropped.empty()) {
      recordEvent(Conflicts, DefaultAlt, Dropped, D.Overflowed,
                  /*ByPreds=*/true, Path);
      reportResolution(Dropped, DefaultAlt, D.Overflowed);
      D.Configs.erase(std::remove_if(D.Configs.begin(), D.Configs.end(),
                                     [&](const AtnConfig &C) {
                                       return Dropped.count(C.Alt) != 0;
                                     }),
                      D.Configs.end());
    }
  }

  // Mark one representative per alternative: a config carrying the
  // dominating predicate where available, else attach the synthesized
  // predicate.
  std::set<int32_t> Done;
  for (AtnConfig &C : D.Configs) {
    if (!Predicated.count(C.Alt) || Done.count(C.Alt))
      continue;
    if (C.Pred == AltPred.at(C.Alt)) {
      C.WasResolved = true;
      Done.insert(C.Alt);
    }
  }
  for (auto &[Alt, Pred] : Synthesized) {
    if (Done.count(Alt))
      continue;
    for (AtnConfig &C : D.Configs)
      if (C.Alt == Alt) {
        C.Pred = Pred;
        C.WasResolved = true;
        Done.insert(Alt);
        break;
      }
  }
  if (Dropped.empty())
    recordEvent(Conflicts, -1, {}, D.Overflowed, /*ByPreds=*/true, Path);
  return true;
}

void SubsetAnalyzer::recordEvent(const std::set<int32_t> &Conflicts,
                                 int32_t Chosen,
                                 const std::set<int32_t> &Losers,
                                 bool Overflowed, bool ByPreds,
                                 const std::vector<TokenType> &Path) {
  if (!Report)
    return;
  ResolutionEvent E;
  E.ConflictingAlts.assign(Conflicts.begin(), Conflicts.end());
  E.ChosenAlt = Chosen;
  E.LosingAlts.assign(Losers.begin(), Losers.end());
  E.Overflowed = Overflowed;
  E.ByPredicates = ByPreds;
  E.Path = Path;
  Report->Resolutions.push_back(std::move(E));
}

void SubsetAnalyzer::reportResolution(const std::set<int32_t> &Conflicts,
                                      int32_t Min, bool Overflowed) {
  if (ReportedResolution)
    return; // one warning per decision is enough
  ReportedResolution = true;
  std::vector<std::string> AltNames;
  for (int32_t A : Conflicts)
    AltNames.push_back(std::to_string(A));
  const AtnState &S = M.state(DecisionState);
  std::string RuleName =
      S.RuleIndex >= 0 ? M.grammar().rule(S.RuleIndex).Name : "<none>";
  Diags.warning(M.decisionLoc(Decision), formatString(
      "decision %d (rule %s): %s between alternatives {%s}; "
      "resolving in favor of alternative %d",
      Decision, RuleName.c_str(),
      Overflowed ? "recursion overflow makes input ambiguous"
                 : "input can be matched ambiguously",
      join(AltNames, ",").c_str(), Min));
}

//===----------------------------------------------------------------------===//
// Shared DFA-state helpers
//===----------------------------------------------------------------------===//

int32_t SubsetAnalyzer::acceptStateFor(int32_t Alt) {
  auto It = AcceptByAlt.find(Alt);
  if (It != AcceptByAlt.end())
    return It->second;
  int32_t Id = Dfa->addState();
  Dfa->state(Id).PredictedAlt = Alt;
  AcceptByAlt.emplace(Alt, Id);
  StateConfigs.resize(size_t(Id) + 1);
  StatePaths.resize(size_t(Id) + 1);
  return Id;
}

void SubsetAnalyzer::addPredicateEdges(int32_t Id) {
  const ConfigSet &D = StateConfigs[size_t(Id)];
  std::map<int32_t, SemanticContext> ByAlt; // ordered by alternative
  for (const AtnConfig &C : D.Configs)
    if (C.WasResolved)
      ByAlt.emplace(C.Alt, C.Pred);
  for (auto &[Alt, Pred] : ByAlt) {
    DfaPredEdge E;
    E.Pred = Pred;
    E.Alt = Alt;
    E.Target = acceptStateFor(Alt);
    Dfa->state(Id).PredEdges.push_back(E);
  }
}
