//===- analysis/backend/LLFiniteBackend.cpp - Optimal finite lookahead ----===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
//
// The llfinite backend: optimal finite-lookahead decision tables in the
// style of LL(finite) (Belcak 2020). It reuses the llstar closure / move /
// conflict-resolution machinery but interns DFA states per (lookahead
// depth, configuration set), so the resulting automaton is acyclic by
// construction — a DAG whose every path stops at the minimal depth that
// uniquely predicts an alternative. Where llstar merges config sets across
// depths into a cyclic DFA (arbitrary regular lookahead), llfinite keeps
// unrolling until the alternatives separate.
//
// Decisions that do NOT separate within the depth cap MaxFiniteK (or that
// blow a closure resource limit) are not LL(finite) within the cap; for
// those the probe is discarded and the decision is rebuilt with the llstar
// construction. That makes backend equivalence hold by construction: every
// decision's table is either an exact finite unrolling of the same subset
// construction llstar runs (same resolve order, same predicates) or
// llstar's own table. The per-decision report records the delegation in
// DecisionReport::CapExceeded; it is deliberately not a ResolutionEvent —
// hitting the cap is a property of the backend's depth bound, not an
// ambiguity property of the grammar, so lint witnesses stay backend-stable.
//
//===----------------------------------------------------------------------===//

#include "analysis/backend/AnalysisBackend.h"
#include "analysis/backend/SubsetConstruction.h"

#include <cassert>
#include <unordered_map>

using namespace llstar;
using namespace llstar::backend;

namespace {

struct DepthSetKey {
  int32_t Depth;
  ConfigSet Set;
};

struct DepthSetHash {
  size_t operator()(const DepthSetKey &K) const {
    return K.Set.hash() * 0x100000001b3ull ^ size_t(uint32_t(K.Depth));
  }
};

struct DepthSetEq {
  bool operator()(const DepthSetKey &X, const DepthSetKey &Y) const {
    return X.Depth == Y.Depth && X.Set == Y.Set;
  }
};

class LLFiniteAnalyzer : public SubsetAnalyzer {
public:
  using SubsetAnalyzer::SubsetAnalyzer;

  /// Returns the finite DFA, or null when the decision failed to separate
  /// within MaxFiniteK / the state budget (the backend then rebuilds the
  /// decision with the llstar construction).
  std::unique_ptr<LookaheadDfa> run() {
    Dfa = std::make_unique<LookaheadDfa>(Decision);
    createDfa();
    if (Capped)
      return nullptr;
    Dfa->finish();
    if (Report) {
      // A successful finite construction never falls back and never
      // aborts; those llstar verdicts do not apply here.
      Report->UsedFallback = false;
      Report->LikelyNonLLRegular = false;
      Report->Overflowed = Dfa->overflowed();
      Report->CapExceeded = 0;
    }
    return std::move(Dfa);
  }

private:
  /// Registers \p D as a DFA state at lookahead depth \p Depth (or finds
  /// the identical existing one at that depth). Depth is part of the state
  /// identity, which is exactly what makes the automaton acyclic: every
  /// terminal edge strictly increases depth.
  std::pair<int32_t, bool> internState(ConfigSet &&D, int32_t Depth) {
    std::set<int32_t> Alts = predictedAlts(D);
    if (Alts.size() == 1) {
      int32_t Id = acceptStateFor(*Alts.begin());
      Known.emplace(DepthSetKey{Depth, std::move(D)}, Id);
      return {Id, false};
    }
    DepthSetKey Key{Depth, std::move(D)};
    auto It = Known.find(Key);
    if (It != Known.end())
      return {It->second, false};
    int32_t Id = Dfa->addState();
    StateConfigs.resize(size_t(Id) + 1);
    StatePaths.resize(size_t(Id) + 1);
    StateDepths.resize(size_t(Id) + 1, 0);
    StateConfigs[size_t(Id)] = Key.Set;
    StateDepths[size_t(Id)] = Depth;
    Known.emplace(std::move(Key), Id);
    return {Id, true};
  }

  void createDfa() {
    const AtnState &S = M.state(DecisionState);
    assert(S.isDecision() && "not a decision state");

    ConfigSet D0;
    BusySet Busy;
    std::set<int32_t> RecursiveAlts;
    for (size_t I = 0; I < S.Transitions.size(); ++I) {
      assert(S.Transitions[I].Kind == AtnTransitionKind::Epsilon &&
             "decision transitions must be epsilon");
      AtnConfig C(S.Transitions[I].Target, int32_t(I) + 1,
                  PredictionContextPool::Empty, SemanticContext::none());
      if (!closure(D0, C, Busy, RecursiveAlts,
                   /*AbortOnMultiRecursion=*/false)) {
        // Closure blow-up before the first token of lookahead: certainly
        // not LL(finite) within any budget.
        Aborted = false;
        Capped = true;
        return;
      }
    }
    resolve(D0, /*Path=*/{});
    D0.normalize();

    if (predictedAlts(D0).size() == 1) {
      // The start state resolved to a single alternative; the trivial DFA
      // is an accepting start state (mirrors the llstar trivial path).
      Dfa = std::make_unique<LookaheadDfa>(Decision);
      int32_t Id = Dfa->addState();
      Dfa->state(Id).PredictedAlt = *predictedAlts(D0).begin();
      return;
    }

    auto [D0Id, D0New] = internState(std::move(D0), /*Depth=*/0);
    assert(D0Id == 0 && D0New && "llfinite start state must be state 0");
    (void)D0Id;
    (void)D0New;
    std::vector<int32_t> Work;
    if (StateConfigs[0].FullyPredResolved)
      addPredicateEdges(0); // pure-predicate decision: terminal start state
    else
      Work.push_back(0);
    while (!Work.empty()) {
      int32_t Id = Work.back();
      Work.pop_back();

      // Still conflicted past the depth cap or the state budget: this
      // decision is not LL(finite) within the configured limits.
      if (StateDepths[size_t(Id)] >= Opts.MaxFiniteK ||
          int32_t(Dfa->numStates()) > Opts.MaxDfaStates) {
        Capped = true;
        return;
      }

      // Copies: internState may reallocate StateConfigs/StatePaths.
      ConfigSet D = StateConfigs[size_t(Id)];
      std::vector<TokenType> Path = StatePaths[size_t(Id)];
      int32_t Depth = StateDepths[size_t(Id)];
      for (TokenType Label : terminalLabels(D)) {
        ConfigSet DNext;
        BusySet NextBusy;
        std::set<int32_t> NextRecursive;
        for (const AtnConfig &C : move(D, Label))
          if (!closure(DNext, C, NextBusy, NextRecursive,
                       /*AbortOnMultiRecursion=*/false)) {
            Aborted = false;
            Capped = true;
            return;
          }
        if (DNext.empty())
          continue;
        std::vector<TokenType> NextPath = Path;
        NextPath.push_back(Label);
        resolve(DNext, NextPath);
        DNext.normalize();
        auto [Target, IsNew] = internState(std::move(DNext), Depth + 1);
        DfaEdge E;
        E.Label = Label;
        E.Target = Target;
        Dfa->state(Id).Edges.push_back(E);
        if (IsNew) {
          StatePaths[size_t(Target)] = std::move(NextPath);
          if (StateConfigs[size_t(Target)].FullyPredResolved)
            addPredicateEdges(Target); // terminal: predicate edges only
          else
            Work.push_back(Target);
        }
      }
      addPredicateEdges(Id);
    }
  }

  std::unordered_map<DepthSetKey, int32_t, DepthSetHash, DepthSetEq> Known;
  /// Lookahead depth of each interned state; parallel to StateConfigs.
  std::vector<int32_t> StateDepths;
  bool Capped = false;
};

class LLFiniteBackend : public AnalysisBackend {
public:
  BackendKind kind() const override { return BackendKind::LLFinite; }

  std::unique_ptr<LookaheadDfa>
  analyzeDecision(const Atn &M, int32_t Decision, const AnalysisOptions &Opts,
                  DiagnosticEngine &Diags,
                  DecisionReport *Report) const override {
    // Probe with the pure finite construction. Scratch sinks, so a capped
    // attempt leaves no trace in the caller's diagnostics or report.
    DiagnosticEngine ProbeDiags;
    DecisionReport ProbeReport;
    std::unique_ptr<LookaheadDfa> Dfa =
        LLFiniteAnalyzer(M, Decision, Opts, ProbeDiags, &ProbeReport).run();
    if (Dfa) {
      for (const Diagnostic &D : ProbeDiags.diagnostics())
        Diags.report(D.Severity, D.Loc, D.Message);
      if (Report)
        *Report = std::move(ProbeReport);
      return Dfa;
    }
    // Not LL(finite) within MaxFiniteK: rebuild with the llstar cyclic
    // construction (identical tables, hence identical parses, for the
    // decisions finite lookahead cannot cover).
    Dfa = llstarBackend().analyzeDecision(M, Decision, Opts, Diags, Report);
    if (Report)
      Report->CapExceeded = 1;
    return Dfa;
  }
};

} // namespace

const AnalysisBackend &llstar::backend::llfiniteBackend() {
  static LLFiniteBackend B;
  return B;
}
