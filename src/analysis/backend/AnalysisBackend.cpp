#include "analysis/backend/AnalysisBackend.h"

using namespace llstar;

const char *llstar::backendName(BackendKind K) {
  switch (K) {
  case BackendKind::LLStar:
    return "llstar";
  case BackendKind::LLFinite:
    return "llfinite";
  }
  return "llstar";
}

const AnalysisBackend &llstar::analysisBackend(BackendKind K) {
  switch (K) {
  case BackendKind::LLFinite:
    return backend::llfiniteBackend();
  case BackendKind::LLStar:
    break;
  }
  return backend::llstarBackend();
}

const AnalysisBackend *llstar::findAnalysisBackend(std::string_view Name) {
  if (Name == "llstar")
    return &backend::llstarBackend();
  if (Name == "llfinite")
    return &backend::llfiniteBackend();
  return nullptr;
}

const char *llstar::analysisBackendNames() { return "llstar, llfinite"; }
