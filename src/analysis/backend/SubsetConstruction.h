//===- analysis/backend/SubsetConstruction.h - Shared machinery -*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-decision subset-construction machinery shared by the analysis
/// backends: closure over ATN configurations with interned prediction
/// stacks (Algorithm 9), move over terminal labels, conflict detection
/// (Definition 7), and conflict resolution via predicates or static
/// precedence (Algorithms 10-11). \ref backend::SubsetAnalyzer owns the
/// state of one decision's construction; each backend derives from it and
/// supplies its own state-space walk (the llstar worklist of Algorithm 8,
/// or llfinite's depth-interned acyclic expansion).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ANALYSIS_BACKEND_SUBSETCONSTRUCTION_H
#define LLSTAR_ANALYSIS_BACKEND_SUBSETCONSTRUCTION_H

#include "analysis/ATNConfig.h"
#include "analysis/DecisionAnalyzer.h"
#include "analysis/PredictionContext.h"

#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

namespace llstar {
namespace backend {

/// Construction state and shared algorithms for one decision. Not a
/// backend by itself: derive and drive \ref closure / \ref move /
/// \ref resolve from a backend-specific state-space walk.
class SubsetAnalyzer {
public:
  SubsetAnalyzer(const Atn &M, int32_t Decision, const AnalysisOptions &Opts,
                 DiagnosticEngine &Diags, DecisionReport *Report)
      : M(M), Decision(Decision), Opts(Opts), Diags(Diags), Report(Report),
        DecisionState(M.decisionState(Decision)) {}
  ~SubsetAnalyzer() = default;

protected:
  using BusySet = std::unordered_set<AtnConfig, AtnConfigHash>;

  /// Adds the closure of \p C to \p D (Algorithm 9). \p RecursiveAlts
  /// accumulates the alternatives in which recursive rule invocation was
  /// observed; more than one aborts construction when
  /// \p AbortOnMultiRecursion. Returns false on abort.
  bool closure(ConfigSet &D, const AtnConfig &C, BusySet &Busy,
               std::set<int32_t> &RecursiveAlts, bool AbortOnMultiRecursion);

  /// Configurations directly reachable from \p D on terminal \p Label.
  std::vector<AtnConfig> move(const ConfigSet &D, TokenType Label) const;

  /// Distinct terminal labels leaving \p D, in stable order.
  std::vector<TokenType> terminalLabels(const ConfigSet &D) const;

  /// Alternatives participating in at least one conflicting configuration
  /// pair (Definition 7): same ATN state, equivalent stacks, different
  /// alts. \p ConflictingConfigs (when non-null) receives the indices into
  /// D.Configs of the configurations that are themselves part of a
  /// conflicting pair.
  std::set<int32_t> conflictSet(const ConfigSet &D,
                                std::set<size_t> *ConflictingConfigs) const;

  std::set<int32_t> predictedAlts(const ConfigSet &D) const;

  /// Resolves conflicts in \p D (Algorithms 10-11): predicates when they
  /// dominate their alternatives (synthesizing PEG backtracking predicates
  /// when Opts.Backtrack), otherwise statically in favor of the lowest
  /// alternative with a warning.
  void resolve(ConfigSet &D, const std::vector<TokenType> &Path);

  bool resolveWithPreds(ConfigSet &D, const std::set<int32_t> &Conflicts,
                        const std::vector<TokenType> &Path);

  void recordEvent(const std::set<int32_t> &Conflicts, int32_t Chosen,
                   const std::set<int32_t> &Losers, bool Overflowed,
                   bool ByPreds, const std::vector<TokenType> &Path);

  void reportResolution(const std::set<int32_t> &Conflicts, int32_t Min,
                        bool Overflowed);

  /// Shared accept state for \p Alt (created on first use).
  int32_t acceptStateFor(int32_t Alt);

  /// Adds the ordered predicate edges for resolved configurations of state
  /// \p Id (the last loop of Algorithm 8).
  void addPredicateEdges(int32_t Id);

  const Atn &M;
  int32_t Decision;
  AnalysisOptions Opts;
  DiagnosticEngine &Diags;
  DecisionReport *Report;
  int32_t DecisionState;

  PredictionContextPool Pool;
  std::unique_ptr<LookaheadDfa> Dfa;
  std::vector<ConfigSet> StateConfigs;
  /// Terminal labels on the path from DFA state 0 to each interned state;
  /// parallel to StateConfigs. Feeds ResolutionEvent::Path.
  std::vector<std::vector<TokenType>> StatePaths;
  std::map<int32_t, int32_t> AcceptByAlt;
  bool Aborted = false;
  bool MultiRecursionAbort = false;
  bool ReportedResolution = false;
};

} // namespace backend
} // namespace llstar

#endif // LLSTAR_ANALYSIS_BACKEND_SUBSETCONSTRUCTION_H
