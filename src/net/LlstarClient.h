//===- net/LlstarClient.h - llstard client library --------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin blocking client for the llstard wire protocol: one socket, the
/// WireFormat codec on both ends, and just enough bookkeeping to expose
/// pipelining. Two usage styles:
///
///   - synchronous RPC: parse()/loadBundle()/stats()/drain() send one
///     request and block for its reply;
///   - pipelined: submitParse() assigns a request id and returns without
///     reading, wait(id) collects a specific reply (buffering others that
///     arrive first — the daemon completes out of submission order).
///
/// The client is single-threaded by design: the load generator runs one
/// client per connection-thread, and tests drive it deterministically.
/// sendRaw() exists for the over-the-wire fuzz tests, which need to write
/// bytes no well-behaved encoder would produce.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_NET_LLSTARCLIENT_H
#define LLSTAR_NET_LLSTARCLIENT_H

#include "net/WireFormat.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace llstar {
namespace net {

class LlstarClient {
public:
  LlstarClient();
  ~LlstarClient();

  LlstarClient(const LlstarClient &) = delete;
  LlstarClient &operator=(const LlstarClient &) = delete;

  /// Connects to \p Host:\p Port. Returns false with \p Err set on
  /// failure. A receive timeout (default 2 minutes) bounds every blocking
  /// read so a wedged server cannot hang the caller forever.
  bool connect(const std::string &Host, uint16_t Port,
               std::string *Err = nullptr);
  void close();
  bool connected() const { return Fd >= 0; }

  void setRecvTimeout(std::chrono::milliseconds Timeout);

  //===--------------------------------------------------------------------===//
  // Synchronous RPC
  //===--------------------------------------------------------------------===//

  /// Loads grammar text / .llb bytes on the server; fills \p Out with the
  /// assigned content hash. Returns false (with \p Err) on transport or
  /// protocol errors, including an ErrorReply.
  bool loadBundle(std::string_view Bytes, wire::LoadBundleReply &Out,
                  std::string *Err = nullptr);

  /// One parse round-trip. \p Out.Hdr.Op distinguishes a ParseReply from
  /// an ErrorReply; transport failures return false.
  bool parse(const wire::ParseArgs &Args, bool Recover, wire::Message &Out,
             std::string *Err = nullptr);

  /// One incremental-session round-trip (reset / apply / close — see the
  /// Edit opcode). \p Out.Hdr.Op distinguishes an EditReply from an
  /// ErrorReply; transport failures return false.
  bool edit(const wire::EditArgs &Args, wire::Message &Out,
            std::string *Err = nullptr);

  /// Fetches the service metrics JSON.
  bool stats(bool IncludeDecisions, std::string &JsonOut,
             std::string *Err = nullptr);

  /// Asks the daemon to drain (finish in-flight work, refuse new work).
  bool drain(std::string *Err = nullptr);

  //===--------------------------------------------------------------------===//
  // Pipelined API
  //===--------------------------------------------------------------------===//

  /// Sends a parse request without waiting; returns the assigned request
  /// id (0 on send failure).
  uint64_t submitParse(const wire::ParseArgs &Args, bool Recover,
                       std::string *Err = nullptr);

  /// Blocks until the reply for \p RequestId arrives, buffering replies
  /// to other ids (they remain claimable by their own wait() calls).
  bool wait(uint64_t RequestId, wire::Message &Out, std::string *Err = nullptr);

  /// Blocks for the next reply in arrival order — how tests observe
  /// out-of-order completion.
  bool waitAny(wire::Message &Out, std::string *Err = nullptr);

  /// Replies received but not yet claimed by wait()/waitAny().
  size_t pendingReplies() const { return Arrived.size(); }

  //===--------------------------------------------------------------------===//
  // Raw access (fuzzing)
  //===--------------------------------------------------------------------===//

  /// Writes \p Bytes to the socket verbatim — no framing, no validation.
  bool sendRaw(std::string_view Bytes, std::string *Err = nullptr);

  /// Frames and sends an already-encoded record.
  bool sendRecord(std::string_view Record, std::string *Err = nullptr);

  /// Reads one reply record off the socket (or the reassembly buffer).
  bool readReply(wire::Message &Out, std::string *Err = nullptr);

  /// The id the next submitParse()/RPC call will use.
  uint64_t nextRequestId() const { return NextId; }

private:
  bool sendAll(std::string_view Bytes, std::string *Err);
  bool fillError(std::string *Err, const std::string &What);

  int Fd = -1;
  uint64_t NextId = 1;
  wire::RecordReassembler Ra;
  std::deque<wire::Message> Arrived; ///< replies not yet claimed
};

} // namespace net
} // namespace llstar

#endif // LLSTAR_NET_LLSTARCLIENT_H
