//===- net/WireFormat.h - llstard binary wire protocol ----------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `llstard` wire protocol, as pure encode/decode functions with no
/// socket I/O — every byte of the network surface is unit-testable (and
/// fuzzable) offline, the same way ONC-RPC splits `encode_*_args` /
/// `decode_*_reply` from the transport.
///
/// Layer 1 — record marking (RFC 5531 style). A logical record is carried
/// as one or more fragments, each prefixed by a 4-byte big-endian word:
/// the top bit marks the record's last fragment, the low 31 bits are the
/// fragment length. \ref frameRecord splits a record into fragments;
/// \ref RecordReassembler incrementally reassembles the byte stream back
/// into records, enforcing fragment- and record-size limits so a hostile
/// peer cannot balloon memory.
///
/// Layer 2 — messages. Every record is one message: a fixed 16-byte
/// header (magic, protocol version, opcode, flags, request id) followed
/// by an opcode-specific body. Request ids are chosen by the client and
/// echoed in replies, which is what makes pipelining with out-of-order
/// completion possible. All integers are big-endian; strings are a u32
/// length followed by raw bytes. Decoders are strict: truncated bodies,
/// trailing bytes, and out-of-range enum values all fail cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_NET_WIREFORMAT_H
#define LLSTAR_NET_WIREFORMAT_H

#include "service/ParseService.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llstar {
namespace wire {

/// "LLSP" — rejects peers that are not speaking this protocol at all.
constexpr uint32_t Magic = 0x4C4C5350;
/// The protocol version this build speaks. Version negotiation is
/// per-request: a request carrying an unsupported version gets an
/// ErrorReply with code BadVersion whose message names the supported
/// version; the connection stays usable.
constexpr uint16_t ProtocolVersion = 1;

/// Fixed message-header size: magic(4) version(2) opcode(1) flags(1)
/// request-id(8).
constexpr size_t HeaderBytes = 16;

/// Per-fragment size cap (also the cap encoders split at by default).
constexpr size_t DefaultMaxFragmentBytes = 1u << 20;
/// Reassembled-record size cap: bundles can be large, parse inputs too.
constexpr size_t DefaultMaxRecordBytes = 64u << 20;

/// Message opcodes. Replies are the request opcode with the top bit set;
/// ErrorReply answers any request that failed at the protocol level.
enum class Opcode : uint8_t {
  Parse = 1,        ///< parse an input against a loaded bundle
  ParseRecover = 2, ///< same, with error recovery
  LoadBundle = 3,   ///< load grammar text / .llb bytes, keyed by hash
  Stats = 4,        ///< fetch the service metrics JSON
  Drain = 5,        ///< finish in-flight work, then stop accepting
  Edit = 6,         ///< incremental session op: reset / apply edit / close
  ParseReply = 0x81,
  ParseRecoverReply = 0x82,
  LoadBundleReply = 0x83,
  StatsReply = 0x84,
  DrainReply = 0x85,
  EditReply = 0x86,
  ErrorReply = 0xFF,
};

/// Protocol-level error codes carried by ErrorReply.
enum class WireError : uint16_t {
  None = 0,
  BadMagic = 1,
  BadVersion = 2,
  BadOpcode = 3,
  BadBody = 4,           ///< body truncated, trailing bytes, bad enum
  UnknownBundle = 5,     ///< parse referenced an unloaded bundle hash
  DuplicateRequestId = 6,///< id already in flight on this connection
  BadBundle = 7,         ///< LoadBundle bytes failed to load
  Draining = 8,          ///< daemon is draining; no new work
  FrameTooLarge = 9,     ///< fragment/record over the configured cap
  UnknownSession = 10,   ///< Edit referenced a session id with no reset yet
};

const char *wireErrorName(WireError E);

/// Header flag bits (meaning depends on the opcode).
constexpr uint8_t FlagWantTree = 1;         ///< Parse*: render the tree
constexpr uint8_t FlagIncludeDecisions = 1; ///< Stats: per-decision stats

struct MessageHeader {
  uint16_t Version = ProtocolVersion;
  Opcode Op = Opcode::Parse;
  uint8_t Flags = 0;
  uint64_t RequestId = 0;
};

//===----------------------------------------------------------------------===//
// Byte-level primitives
//===----------------------------------------------------------------------===//

void putU8(std::string &Out, uint8_t V);
void putU16(std::string &Out, uint16_t V);
void putU32(std::string &Out, uint32_t V);
void putU64(std::string &Out, uint64_t V);
void putI64(std::string &Out, int64_t V);
void putF64(std::string &Out, double V);
/// u32 length prefix + raw bytes.
void putStr(std::string &Out, std::string_view V);

/// Bounds-checked big-endian reader over one record. Every read returns
/// false instead of walking off the end; a failed reader stays failed.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes) : Bytes(Bytes) {}
  /// A reader is a view: constructing one over a temporary string would
  /// dangle the moment the full-expression ends.
  explicit ByteReader(std::string &&) = delete;

  bool u8(uint8_t &V);
  bool u16(uint16_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  bool i64(int64_t &V);
  bool f64(double &V);
  /// Reads a u32-length-prefixed string. The length is validated against
  /// the remaining bytes, so an oversized prefix fails instead of
  /// allocating.
  bool str(std::string &V);

  size_t remaining() const { return Bytes.size() - Pos; }
  bool done() const { return Pos == Bytes.size(); }
  bool failed() const { return Failed; }

private:
  bool take(size_t N, const char *&P);
  std::string_view Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Record marking
//===----------------------------------------------------------------------===//

/// Appends \p Record to \p Out as one or more length-prefixed fragments
/// of at most \p MaxFragment bytes each. An empty record becomes a single
/// empty last-fragment.
void frameRecord(std::string &Out, std::string_view Record,
                 size_t MaxFragment = DefaultMaxFragmentBytes);

/// Incremental fragment reassembler: feed() raw socket bytes in whatever
/// chunks they arrive, next() yields complete records. Once an input
/// violates a limit the reassembler latches into the error state — a
/// framing error means the stream position is unrecoverable.
class RecordReassembler {
public:
  explicit RecordReassembler(size_t MaxRecord = DefaultMaxRecordBytes,
                             size_t MaxFragment = DefaultMaxFragmentBytes)
      : MaxRecord(MaxRecord), MaxFragment(MaxFragment) {}

  enum class Status {
    NeedMore, ///< no complete record buffered yet
    Record,   ///< a record was written to the out-parameter
    Error,    ///< framing violation; see error()
  };

  void feed(std::string_view Bytes);
  Status next(std::string &Record);
  const std::string &error() const { return Err; }
  /// Bytes buffered but not yet returned as records.
  size_t bufferedBytes() const { return Buffer.size() - Pos + Partial.size(); }

private:
  Status fail(std::string Message);
  size_t MaxRecord, MaxFragment;
  std::string Buffer;  ///< unconsumed raw input
  size_t Pos = 0;      ///< consumed prefix of Buffer
  std::string Partial; ///< fragments of the in-progress record
  bool Failed = false;
  std::string Err;
};

//===----------------------------------------------------------------------===//
// Message bodies
//===----------------------------------------------------------------------===//

struct ParseArgs {
  /// Content hash of a previously loaded bundle; 0 = the connection's
  /// daemon-wide default (the most recently loaded bundle).
  uint64_t BundleHash = 0;
  /// Per-request deadline in milliseconds (0 = service default).
  uint32_t DeadlineMs = 0;
  bool WantTree = false; ///< carried in the header flags
  std::string StartRule; ///< empty = the grammar's start rule
  std::string Input;
};

/// One structured syntax error (mirrors llstar::Diagnostic).
struct WireDiagnostic {
  uint8_t Severity = 2; ///< DiagSeverity: 0 note, 1 warning, 2 error
  uint32_t Line = 0;
  uint32_t Column = 0;
  std::string Message;
};

/// Mirrors ParseResult field-for-field so over-the-wire results can be
/// compared byte-identically against in-process ParseService output.
struct ParseReply {
  uint8_t Status = 0; ///< llstar::ParseStatus
  int64_t NumTokens = 0;
  int64_t TreeNodes = 0;
  double ParseMillis = 0;
  std::string TreeText;
  std::string DiagText;
  std::vector<WireDiagnostic> Errors;
};

struct LoadBundleReply {
  uint64_t Hash = 0;
  uint8_t Cached = 0; ///< 1 if the daemon already had this content
  std::string Name;
};

//===----------------------------------------------------------------------===//
// Edit: stateful incremental sessions
//===----------------------------------------------------------------------===//

/// Edit actions. Sessions are per-connection, keyed by a client-chosen
/// 32-bit id; Reset creates (or re-creates) the session, Apply mutates
/// it, Close discards it. A connection's sessions die with it.
constexpr uint8_t EditActionReset = 0; ///< (re)initialize with NewText
constexpr uint8_t EditActionApply = 1; ///< replace OldLen bytes at Offset
constexpr uint8_t EditActionClose = 2; ///< discard the session

/// Session mode bits, honored at Reset (session creation) only.
constexpr uint8_t EditModeRecover = 1;  ///< error-recovering parses
constexpr uint8_t EditModeCompiled = 2; ///< dense-table engine
constexpr uint8_t EditModeArena = 4;    ///< arena parse trees
constexpr uint8_t EditModeNoReuse = 8;  ///< full reparse per edit (baseline)

struct EditArgs {
  uint32_t SessionId = 0;
  uint8_t Action = EditActionReset;
  uint8_t Mode = EditModeRecover;
  /// Bundle for session creation (Reset); 0 = the daemon-wide default.
  uint64_t BundleHash = 0;
  uint64_t Offset = 0; ///< Apply only
  uint64_t OldLen = 0; ///< Apply only
  bool WantTree = false; ///< carried in the header flags
  std::string StartRule; ///< Reset only; empty = the grammar's first rule
  std::string NewText;   ///< Reset: the whole text; Apply: the replacement
};

/// Mirrors incremental::EditOutcome plus the session's rendered state.
struct EditReplyBody {
  /// incremental::EditScriptError as a stable u16; non-zero means the
  /// edit was rejected and the session is unchanged.
  uint16_t EditError = 0;
  uint8_t Status = 0; ///< llstar::ParseStatus (Ok/Recovered/SyntaxError)
  int64_t NumTokens = 0;
  int64_t TreeNodes = 0;
  int64_t ErrorLeaves = 0;
  int64_t NodesReused = 0;
  int64_t TokensRelexed = 0;
  int64_t DecisionsReparsed = 0;
  double EditMillis = 0;
  std::string TreeText; ///< rendered only under FlagWantTree
  std::string DiagText;
};

struct ErrorReply {
  WireError Code = WireError::None;
  std::string Message;
};

//===----------------------------------------------------------------------===//
// Encoders: each returns a complete record (header + body), ready for
// frameRecord.
//===----------------------------------------------------------------------===//

std::string encodeParseArgs(uint64_t RequestId, const ParseArgs &Args,
                            bool Recover);
std::string encodeParseReply(uint64_t RequestId, const ParseReply &Reply,
                             bool Recover);
std::string encodeLoadBundleArgs(uint64_t RequestId, std::string_view Bytes);
std::string encodeLoadBundleReply(uint64_t RequestId,
                                  const LoadBundleReply &Reply);
std::string encodeStatsArgs(uint64_t RequestId, bool IncludeDecisions);
std::string encodeStatsReply(uint64_t RequestId, std::string_view Json);
std::string encodeDrainArgs(uint64_t RequestId);
std::string encodeDrainReply(uint64_t RequestId);
std::string encodeEditArgs(uint64_t RequestId, const EditArgs &Args);
std::string encodeEditReply(uint64_t RequestId, const EditReplyBody &Reply);
std::string encodeErrorReply(uint64_t RequestId, WireError Code,
                             std::string_view Message);

//===----------------------------------------------------------------------===//
// Decoders. decodeHeader validates magic/version/opcode; the body
// decoders take the reader positioned after the header and require it to
// be fully consumed.
//===----------------------------------------------------------------------===//

/// Returns WireError::None and fills \p Hdr on success. On BadVersion the
/// header is still filled (the request id lets the error reply echo it).
WireError decodeHeader(ByteReader &R, MessageHeader &Hdr);

bool decodeParseArgs(ByteReader &R, uint8_t Flags, ParseArgs &Args);
bool decodeParseReply(ByteReader &R, ParseReply &Reply);
bool decodeLoadBundleArgs(ByteReader &R, std::string &Bytes);
bool decodeLoadBundleReply(ByteReader &R, LoadBundleReply &Reply);
bool decodeStatsArgs(ByteReader &R);
bool decodeStatsReply(ByteReader &R, std::string &Json);
bool decodeDrainBody(ByteReader &R); ///< Drain args and reply: empty body
bool decodeEditArgs(ByteReader &R, uint8_t Flags, EditArgs &Args);
bool decodeEditReply(ByteReader &R, EditReplyBody &Reply);
bool decodeErrorReply(ByteReader &R, ErrorReply &Reply);

/// Any reply message, decoded. Which member is meaningful depends on
/// Hdr.Op.
struct Message {
  MessageHeader Hdr;
  ParseReply Parse;
  LoadBundleReply Load;
  EditReplyBody Edit;
  std::string StatsJson;
  ErrorReply Error;
};

/// Decodes one reply record (client side). Returns false with \p Err set
/// on any protocol violation, including request opcodes.
bool decodeReply(std::string_view Record, Message &Out, std::string &Err);

//===----------------------------------------------------------------------===//
// ParseResult bridging
//===----------------------------------------------------------------------===//

/// Flattens a service result into its wire form (field-for-field).
ParseReply makeParseReply(const ParseResult &R);

} // namespace wire
} // namespace llstar

#endif // LLSTAR_NET_WIREFORMAT_H
