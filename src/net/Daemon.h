//===- net/Daemon.h - llstard network parse daemon --------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `llstard` TCP daemon: the record-marked wire protocol of
/// WireFormat.h served over sockets, in front of the in-process
/// ParseService. The daemon adds only transport concerns — everything a
/// request *means* is delegated to the service, which is what keeps
/// over-the-wire results byte-identical to in-process ones:
///
///   - one reader + one writer thread per connection; requests are
///     decoded off the reassembled record stream and submitted through
///     ParseService::submitAsync, so replies complete out of submission
///     order (request-id pipelining),
///   - per-connection backpressure: at most MaxInFlightPerConn
///     outstanding parses per connection (beyond it requests bounce with
///     QueueFull), on top of the service's own bounded queue,
///   - bundles are loaded over the wire and keyed by content hash via
///     GrammarBundleCache — re-loading identical bytes is a cache hit,
///     loading changed bytes is a hot reload under a new hash while
///     in-flight requests keep their old bundle alive,
///   - Edit requests give each connection stateful incremental sessions
///     (incremental::IncrementalSession keyed by a client-chosen id):
///     Reset creates one, Apply re-lexes and reparses only the damaged
///     region, Close discards it. They run synchronously on the reader
///     thread — a session's edits are inherently ordered — and their
///     parser stats fold into the service metrics via
///     ParseService::recordExternalStats,
///   - drain() (the Drain opcode, or SIGTERM in the llstard tool)
///     finishes every accepted request, flushes its replies, and only
///     then refuses new work.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_NET_DAEMON_H
#define LLSTAR_NET_DAEMON_H

#include "net/WireFormat.h"
#include "service/GrammarBundleCache.h"
#include "service/ParseService.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace llstar {
namespace net {

struct DaemonConfig {
  /// Address to bind; tests and single-host deployments stay on loopback.
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  uint16_t Port = 0;
  /// Configuration of the backing ParseService.
  ServiceConfig Service;
  /// Prediction-analysis backend for grammar *source* loaded over the wire
  /// or preloaded from the command line; serialized .llb bundles carry
  /// their producing backend in the v3 container header and ignore this.
  BackendKind Backend = BackendKind::LLStar;
  /// Outstanding parse requests allowed per connection before the daemon
  /// answers with QueueFull (deterministic per-connection backpressure).
  size_t MaxInFlightPerConn = 256;
  /// Wire limits, enforced by the per-connection reassembler.
  size_t MaxRecordBytes = wire::DefaultMaxRecordBytes;
  size_t MaxFragmentBytes = wire::DefaultMaxFragmentBytes;
};

/// Transport-level counters (service-level ones live in ServiceMetrics).
struct DaemonCounters {
  int64_t ConnectionsAccepted = 0;
  int64_t RequestsDecoded = 0;
  int64_t ProtocolErrors = 0;
  int64_t BundlesLoaded = 0;
  int64_t RejectedPipelineCap = 0;
  int64_t RejectedDraining = 0;
};

class Daemon {
public:
  explicit Daemon(DaemonConfig Config = {});
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds, listens, and starts the accept loop. Returns false with
  /// \p Error set if the socket could not be bound.
  bool start(std::string *Error = nullptr);

  /// The bound port (after start(); meaningful with Config.Port == 0).
  uint16_t port() const { return BoundPort; }

  /// Graceful drain: refuse new work, finish and flush everything
  /// accepted so far, leave connections open. Idempotent.
  void drain();

  /// Full stop: drain-less teardown — closes the listener and every
  /// connection, resolves queued work as ShuttingDown, joins all
  /// threads. Call drain() first for the graceful path. Idempotent.
  void stop();

  bool draining() const { return Draining.load(); }

  /// Loads grammar text or .llb bytes exactly as the LoadBundle opcode
  /// would (cache insert + default-bundle update); used by llstard to
  /// preload grammars from the command line.
  std::shared_ptr<const GrammarBundle> loadBundleBytes(std::string_view Bytes,
                                                       DiagnosticEngine &Diags,
                                                       bool *WasCached = nullptr);

  ParseService &service() { return Service; }
  GrammarBundleCache &bundles() { return Cache; }
  DaemonCounters counters() const;

private:
  struct Connection;

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> Conn);
  void writerLoop(std::shared_ptr<Connection> Conn);
  void handleRecord(const std::shared_ptr<Connection> &Conn,
                    std::string_view Record);
  void handleParse(const std::shared_ptr<Connection> &Conn,
                   const wire::MessageHeader &Hdr, wire::ByteReader &Body,
                   bool Recover);
  void handleLoadBundle(const std::shared_ptr<Connection> &Conn,
                        const wire::MessageHeader &Hdr,
                        wire::ByteReader &Body);
  void handleEdit(const std::shared_ptr<Connection> &Conn,
                  const wire::MessageHeader &Hdr, wire::ByteReader &Body);
  std::shared_ptr<const GrammarBundle> findBundle(uint64_t Hash);
  void reapFinishedConnections();
  void bumpCounter(int64_t DaemonCounters::*Field);

  DaemonConfig Config;
  GrammarBundleCache Cache;
  ParseService Service;

  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::thread Acceptor;
  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopped{false};
  bool AcceptorStarted = false;

  mutable std::mutex ConnsMu;
  std::vector<std::shared_ptr<Connection>> Conns;

  mutable std::mutex BundlesMu;
  std::unordered_map<uint64_t, std::shared_ptr<const GrammarBundle>> ByHash;
  std::shared_ptr<const GrammarBundle> Default; ///< most recently loaded

  mutable std::mutex CountersMu;
  DaemonCounters Counters;
};

} // namespace net
} // namespace llstar

#endif // LLSTAR_NET_DAEMON_H
