#include "net/Daemon.h"

#include "incremental/IncrementalSession.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <unordered_set>

using namespace llstar;
using namespace llstar::net;
using namespace llstar::wire;

//===----------------------------------------------------------------------===//
// Connection state
//===----------------------------------------------------------------------===//

/// One accepted socket. The reader thread decodes requests and submits
/// them; service workers (or the reader, for inline rejections) enqueue
/// replies into Outbox; the writer thread flushes Outbox to the socket.
/// Replies therefore leave in completion order, not submission order —
/// the request id is the client's correlation key.
struct Daemon::Connection {
  int Fd = -1;
  std::thread Reader, Writer;
  std::atomic<bool> ReaderExited{false};
  std::atomic<bool> WriterExited{false};

  std::mutex Mu;
  std::condition_variable OutCv;      ///< writer wakeups
  std::condition_variable InFlightCv; ///< teardown waits for replies
  std::deque<std::string> Outbox;     ///< framed bytes awaiting write
  std::unordered_set<uint64_t> InFlight; ///< parse ids awaiting replies
  bool ReadDone = false; ///< reader finished and every reply is enqueued
  bool Dead = false;     ///< socket unusable; further output is dropped

  /// Incremental edit sessions, keyed by the client-chosen session id.
  /// Touched only by this connection's reader thread (Edit requests run
  /// synchronously there, like LoadBundle), so no lock is needed; the
  /// sessions die with the connection.
  std::unordered_map<uint32_t, std::unique_ptr<incremental::IncrementalSession>>
      EditSessions;

  /// Queues already-framed bytes for the writer (dropped once Dead).
  void enqueue(std::string Bytes) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (Dead)
        return;
      Outbox.push_back(std::move(Bytes));
    }
    OutCv.notify_one();
  }
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Daemon::Daemon(DaemonConfig Config)
    : Config(Config), Service(Config.Service) {}

Daemon::~Daemon() { stop(); }

bool Daemon::start(std::string *Error) {
  auto Fail = [&](const std::string &What) {
    if (Error)
      *Error = What + ": " + std::strerror(errno);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Config.Port);
  if (::inet_pton(AF_INET, Config.BindAddress.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad bind address '" + Config.BindAddress + "'";
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Fail("bind");
  if (::listen(ListenFd, 128) < 0)
    return Fail("listen");

  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0)
    return Fail("getsockname");
  BoundPort = ntohs(Addr.sin_port);

  Acceptor = std::thread([this] { acceptLoop(); });
  AcceptorStarted = true;
  return true;
}

void Daemon::drain() {
  // Refuse new work first so the quiesced state is stable, then wait for
  // everything already accepted — including the flush of its replies
  // into per-connection outboxes (ParseService::drain waits for
  // callbacks, and the callbacks enqueue before releasing their id).
  Draining.store(true);
  Service.drain();
}

void Daemon::stop() {
  if (Stopped.exchange(true))
    return;

  // Unblock and join the acceptor: shutdown() on a listening socket makes
  // a blocked accept() return.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  if (AcceptorStarted)
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }

  std::vector<std::shared_ptr<Connection>> Local;
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    Local = Conns;
  }
  // Stop the readers (blocked recv returns 0), then resolve everything
  // still queued in the service — readers wait for their in-flight
  // replies before exiting, and those replies can only come from the
  // service's workers or its shutdown path.
  for (const auto &Conn : Local)
    ::shutdown(Conn->Fd, SHUT_RDWR);
  Service.shutdown();
  for (const auto &Conn : Local) {
    if (Conn->Reader.joinable())
      Conn->Reader.join();
    if (Conn->Writer.joinable())
      Conn->Writer.join();
    ::close(Conn->Fd);
  }
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    Conns.clear();
  }
}

void Daemon::bumpCounter(int64_t DaemonCounters::*Field) {
  std::lock_guard<std::mutex> Lock(CountersMu);
  Counters.*Field += 1;
}

DaemonCounters Daemon::counters() const {
  std::lock_guard<std::mutex> Lock(CountersMu);
  return Counters;
}

//===----------------------------------------------------------------------===//
// Bundles
//===----------------------------------------------------------------------===//

std::shared_ptr<const GrammarBundle>
Daemon::loadBundleBytes(std::string_view Bytes, DiagnosticEngine &Diags,
                        bool *WasCached) {
  auto Bundle = Cache.get(Bytes, Diags, Config.Backend);
  if (!Bundle)
    return nullptr;
  std::lock_guard<std::mutex> Lock(BundlesMu);
  bool Known = ByHash.count(Bundle->contentHash()) != 0;
  if (WasCached)
    *WasCached = Known;
  // Hot reload: changed content arrives under a new hash and becomes the
  // new default; requests already in flight keep the old bundle alive
  // through their shared_ptr.
  ByHash[Bundle->contentHash()] = Bundle;
  Default = Bundle;
  return Bundle;
}

std::shared_ptr<const GrammarBundle> Daemon::findBundle(uint64_t Hash) {
  std::lock_guard<std::mutex> Lock(BundlesMu);
  if (Hash == 0)
    return Default;
  auto It = ByHash.find(Hash);
  return It == ByHash.end() ? nullptr : It->second;
}

//===----------------------------------------------------------------------===//
// Accepting
//===----------------------------------------------------------------------===//

void Daemon::acceptLoop() {
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // listener shut down (stop()) or fatally broken
    }
    if (Stopped.load() || Draining.load()) {
      ::close(Fd);
      continue;
    }
    reapFinishedConnections();
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      Conns.push_back(Conn);
    }
    bumpCounter(&DaemonCounters::ConnectionsAccepted);
    Conn->Reader = std::thread([this, Conn] { readerLoop(Conn); });
    Conn->Writer = std::thread([this, Conn] { writerLoop(Conn); });
  }
}

void Daemon::reapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> Done;
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (size_t I = 0; I < Conns.size();) {
      if (Conns[I]->ReaderExited.load() && Conns[I]->WriterExited.load()) {
        Done.push_back(std::move(Conns[I]));
        Conns[I] = std::move(Conns.back());
        Conns.pop_back();
      } else {
        ++I;
      }
    }
  }
  for (const auto &Conn : Done) {
    Conn->Reader.join();
    Conn->Writer.join();
    ::close(Conn->Fd);
  }
}

//===----------------------------------------------------------------------===//
// Per-connection I/O
//===----------------------------------------------------------------------===//

void Daemon::writerLoop(std::shared_ptr<Connection> Conn) {
  while (true) {
    std::string Chunk;
    {
      std::unique_lock<std::mutex> Lock(Conn->Mu);
      Conn->OutCv.wait(Lock, [&] {
        return !Conn->Outbox.empty() || Conn->ReadDone || Conn->Dead;
      });
      if (Conn->Outbox.empty()) {
        // ReadDone guarantees no further replies will be enqueued.
        break;
      }
      Chunk = std::move(Conn->Outbox.front());
      Conn->Outbox.pop_front();
    }
    size_t Off = 0;
    while (Off < Chunk.size()) {
      ssize_t N = ::send(Conn->Fd, Chunk.data() + Off, Chunk.size() - Off,
                         MSG_NOSIGNAL);
      if (N <= 0) {
        std::lock_guard<std::mutex> Lock(Conn->Mu);
        Conn->Dead = true;
        Conn->Outbox.clear();
        Conn->InFlightCv.notify_all();
        Off = Chunk.size();
      } else {
        Off += size_t(N);
      }
    }
    {
      std::lock_guard<std::mutex> Lock(Conn->Mu);
      if (Conn->Dead)
        break;
    }
  }
  // The writer owns the send side: once it exits no more bytes can ever go
  // out, so tell the peer with a FIN now. Without this a client on a dead
  // or hung-up connection would block until its receive timeout, because
  // the fd itself is only closed when the acceptor reaps the connection.
  ::shutdown(Conn->Fd, SHUT_WR);
  Conn->WriterExited.store(true);
  Conn->OutCv.notify_all();
}

void Daemon::readerLoop(std::shared_ptr<Connection> Conn) {
  RecordReassembler Ra(Config.MaxRecordBytes, Config.MaxFragmentBytes);
  char Buf[64 * 1024];
  bool StreamOk = true;
  while (StreamOk) {
    ssize_t N = ::recv(Conn->Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Ra.feed(std::string_view(Buf, size_t(N)));
    std::string Record;
    while (StreamOk) {
      RecordReassembler::Status St = Ra.next(Record);
      if (St == RecordReassembler::Status::Record) {
        handleRecord(Conn, Record);
        {
          std::lock_guard<std::mutex> Lock(Conn->Mu);
          if (Conn->Dead)
            StreamOk = false;
        }
      } else if (St == RecordReassembler::Status::Error) {
        // Framing violations are unrecoverable: the stream position is
        // lost. Report and stop reading; pending replies still flush.
        bumpCounter(&DaemonCounters::ProtocolErrors);
        Conn->enqueue([&] {
          std::string Out;
          frameRecord(Out,
                      encodeErrorReply(0, WireError::FrameTooLarge,
                                       Ra.error()),
                      Config.MaxFragmentBytes);
          return Out;
        }());
        StreamOk = false;
      } else {
        break; // NeedMore
      }
    }
  }
  // Let every accepted request finish and enqueue its reply before
  // declaring the outbox complete; the writer drains it and exits.
  {
    std::unique_lock<std::mutex> Lock(Conn->Mu);
    Conn->InFlightCv.wait(
        Lock, [&] { return Conn->InFlight.empty() || Conn->Dead; });
    Conn->ReadDone = true;
  }
  Conn->OutCv.notify_all();
  Conn->ReaderExited.store(true);
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

void Daemon::handleRecord(const std::shared_ptr<Connection> &Conn,
                          std::string_view Record) {
  auto Reply = [&](std::string RecordBytes) {
    std::string Out;
    frameRecord(Out, RecordBytes, Config.MaxFragmentBytes);
    Conn->enqueue(std::move(Out));
  };

  ByteReader R(Record);
  MessageHeader Hdr;
  WireError HdrErr = decodeHeader(R, Hdr);
  if (HdrErr != WireError::None) {
    bumpCounter(&DaemonCounters::ProtocolErrors);
    switch (HdrErr) {
    case WireError::BadMagic:
      // Not our protocol at all: answer once and hang up.
      Reply(encodeErrorReply(0, HdrErr, "expected LLSP magic"));
      {
        std::lock_guard<std::mutex> Lock(Conn->Mu);
        Conn->Dead = true; // stops the reader; outbox already has the reply
      }
      // The writer must still flush the reply before the Dead flag drops
      // output — re-enqueue is impossible now, but the reply above was
      // queued before Dead was set, and the writer drains the queue it
      // already holds. Close the read side so the client sees EOF.
      ::shutdown(Conn->Fd, SHUT_RD);
      return;
    case WireError::BadVersion:
      // Version negotiation: name the version this server speaks; the
      // connection stays usable for correctly-versioned requests.
      Reply(encodeErrorReply(Hdr.RequestId, HdrErr,
                             "server speaks protocol version " +
                                 std::to_string(ProtocolVersion)));
      return;
    default:
      Reply(encodeErrorReply(Hdr.RequestId, HdrErr, "unknown opcode"));
      return;
    }
  }

  bumpCounter(&DaemonCounters::RequestsDecoded);

  // While draining, only observation (Stats) and further Drain requests
  // are served; everything else is refused deterministically.
  if (Draining.load() && Hdr.Op != Opcode::Stats && Hdr.Op != Opcode::Drain) {
    bumpCounter(&DaemonCounters::RejectedDraining);
    Reply(encodeErrorReply(Hdr.RequestId, WireError::Draining,
                           "daemon is draining"));
    return;
  }

  switch (Hdr.Op) {
  case Opcode::Parse:
  case Opcode::ParseRecover:
    handleParse(Conn, Hdr, R, Hdr.Op == Opcode::ParseRecover);
    return;
  case Opcode::LoadBundle:
    handleLoadBundle(Conn, Hdr, R);
    return;
  case Opcode::Edit:
    handleEdit(Conn, Hdr, R);
    return;
  case Opcode::Stats: {
    if (!decodeStatsArgs(R)) {
      bumpCounter(&DaemonCounters::ProtocolErrors);
      Reply(encodeErrorReply(Hdr.RequestId, WireError::BadBody,
                             "stats takes no body"));
      return;
    }
    bool IncludeDecisions = Hdr.Flags & FlagIncludeDecisions;
    Reply(encodeStatsReply(Hdr.RequestId,
                           Service.metrics().json(IncludeDecisions)));
    return;
  }
  case Opcode::Drain: {
    if (!decodeDrainBody(R)) {
      bumpCounter(&DaemonCounters::ProtocolErrors);
      Reply(encodeErrorReply(Hdr.RequestId, WireError::BadBody,
                             "drain takes no body"));
      return;
    }
    // Every parse accepted before this record has its reply enqueued by
    // the time drain() returns, so the DrainReply is ordered after them
    // on every connection's outbox.
    drain();
    Reply(encodeDrainReply(Hdr.RequestId));
    return;
  }
  default:
    // Reply opcodes sent by a confused client.
    bumpCounter(&DaemonCounters::ProtocolErrors);
    Reply(encodeErrorReply(Hdr.RequestId, WireError::BadOpcode,
                           "reply opcode in a request"));
    return;
  }
}

void Daemon::handleParse(const std::shared_ptr<Connection> &Conn,
                         const MessageHeader &Hdr, ByteReader &Body,
                         bool Recover) {
  auto Reply = [&](std::string RecordBytes) {
    std::string Out;
    frameRecord(Out, RecordBytes, Config.MaxFragmentBytes);
    Conn->enqueue(std::move(Out));
  };

  ParseArgs Args;
  if (!decodeParseArgs(Body, Hdr.Flags, Args)) {
    bumpCounter(&DaemonCounters::ProtocolErrors);
    Reply(encodeErrorReply(Hdr.RequestId, WireError::BadBody,
                           "malformed parse arguments"));
    return;
  }

  const uint64_t Id = Hdr.RequestId;
  enum { Accept, Duplicate, OverCap } Decision;
  {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    if (!Conn->InFlight.insert(Id).second) {
      Decision = Duplicate;
    } else if (Conn->InFlight.size() > Config.MaxInFlightPerConn) {
      Conn->InFlight.erase(Id);
      Decision = OverCap;
    } else {
      Decision = Accept;
    }
  }
  if (Decision == Duplicate) {
    bumpCounter(&DaemonCounters::ProtocolErrors);
    Reply(encodeErrorReply(Id, WireError::DuplicateRequestId,
                           "request id already in flight"));
    return;
  }
  if (Decision == OverCap) {
    // Per-connection backpressure, same shape as the service's bounded
    // queue: a well-formed ParseReply carrying QueueFull.
    bumpCounter(&DaemonCounters::RejectedPipelineCap);
    ParseReply Over;
    Over.Status = uint8_t(ParseStatus::QueueFull);
    Over.DiagText = "error: connection pipeline limit of " +
                    std::to_string(Config.MaxInFlightPerConn) +
                    " in-flight requests reached\n";
    Reply(encodeParseReply(Id, Over, Recover));
    return;
  }

  std::shared_ptr<const GrammarBundle> Bundle = findBundle(Args.BundleHash);
  if (!Bundle) {
    {
      std::lock_guard<std::mutex> Lock(Conn->Mu);
      Conn->InFlight.erase(Id);
    }
    Conn->InFlightCv.notify_all();
    Reply(encodeErrorReply(Id, WireError::UnknownBundle,
                           Args.BundleHash == 0
                               ? "no bundle loaded yet"
                               : "no bundle with hash " +
                                     std::to_string(Args.BundleHash)));
    return;
  }

  ParseRequest Req;
  Req.Bundle = std::move(Bundle);
  Req.Id = std::to_string(Id);
  Req.Input = std::move(Args.Input);
  Req.StartRule = std::move(Args.StartRule);
  Req.Deadline = std::chrono::milliseconds(Args.DeadlineMs);
  Req.WantTree = Args.WantTree;
  Req.Recover = Recover;

  size_t MaxFragment = Config.MaxFragmentBytes;
  Service.submitAsync(std::move(Req), [Conn, Id, Recover,
                                       MaxFragment](ParseResult R) {
    // Enqueue before releasing the id: the reader's teardown wait (and
    // drain()) treat an empty InFlight set as "all replies queued".
    std::string Out;
    frameRecord(Out, encodeParseReply(Id, makeParseReply(R), Recover),
                MaxFragment);
    Conn->enqueue(std::move(Out));
    {
      std::lock_guard<std::mutex> Lock(Conn->Mu);
      Conn->InFlight.erase(Id);
    }
    Conn->InFlightCv.notify_all();
  });
}

void Daemon::handleEdit(const std::shared_ptr<Connection> &Conn,
                        const MessageHeader &Hdr, ByteReader &Body) {
  auto Reply = [&](std::string RecordBytes) {
    std::string Out;
    frameRecord(Out, RecordBytes, Config.MaxFragmentBytes);
    Conn->enqueue(std::move(Out));
  };

  EditArgs Args;
  if (!decodeEditArgs(Body, Hdr.Flags, Args)) {
    bumpCounter(&DaemonCounters::ProtocolErrors);
    Reply(encodeErrorReply(Hdr.RequestId, WireError::BadBody,
                           "malformed edit arguments"));
    return;
  }

  // Like LoadBundle, Edit runs synchronously on the reader thread: a
  // session's edits are inherently ordered, and the session itself is
  // reader-thread-local state.
  if (Args.Action == EditActionClose) {
    Conn->EditSessions.erase(Args.SessionId);
    EditReplyBody Out;
    Out.Status = uint8_t(ParseStatus::Ok);
    Reply(encodeEditReply(Hdr.RequestId, Out));
    return;
  }

  incremental::IncrementalSession *Session = nullptr;
  if (Args.Action == EditActionReset) {
    auto Bundle = findBundle(Args.BundleHash);
    if (!Bundle) {
      Reply(encodeErrorReply(Hdr.RequestId, WireError::UnknownBundle,
                             Args.BundleHash == 0
                                 ? "no bundle loaded yet"
                                 : "no bundle with hash " +
                                       std::to_string(Args.BundleHash)));
      return;
    }
    incremental::SessionOptions SO;
    SO.Recover = Args.Mode & EditModeRecover;
    SO.UseCompiled = Args.Mode & EditModeCompiled;
    SO.UseArena = Args.Mode & EditModeArena;
    SO.Reuse = !(Args.Mode & EditModeNoReuse);
    SO.StartRule = Args.StartRule;
    auto Fresh = std::make_unique<incremental::IncrementalSession>(
        std::move(Bundle), std::move(SO));
    Session = Fresh.get();
    Conn->EditSessions[Args.SessionId] = std::move(Fresh);
  } else {
    auto It = Conn->EditSessions.find(Args.SessionId);
    if (It == Conn->EditSessions.end()) {
      Reply(encodeErrorReply(Hdr.RequestId, WireError::UnknownSession,
                             "session " + std::to_string(Args.SessionId) +
                                 " has no reset yet"));
      return;
    }
    Session = It->second.get();
  }

  incremental::EditOutcome O =
      Args.Action == EditActionReset
          ? Session->reset(std::move(Args.NewText))
          : Session->applyEdit({int64_t(Args.Offset), int64_t(Args.OldLen),
                                std::move(Args.NewText)});
  Service.recordExternalStats(Session->takeStatsDelta());

  EditReplyBody Out;
  Out.EditError = uint16_t(O.Error);
  if (O.Error != incremental::EditScriptError::None)
    Out.Status = uint8_t(ParseStatus::BadRequest);
  else if (O.ParseOk)
    Out.Status = uint8_t(ParseStatus::Ok);
  else if (O.NumErrors > 0 && O.TreeNodes > 0)
    Out.Status = uint8_t(ParseStatus::Recovered);
  else
    Out.Status = uint8_t(ParseStatus::SyntaxError);
  Out.NumTokens = O.NumTokens;
  Out.TreeNodes = O.TreeNodes;
  Out.ErrorLeaves = O.ErrorLeaves;
  Out.NodesReused = O.NodesReused;
  Out.TokensRelexed = O.TokensRelexed;
  Out.DecisionsReparsed = O.DecisionsReparsed;
  Out.EditMillis = O.Millis;
  if (O.Error == incremental::EditScriptError::None) {
    if (Args.WantTree)
      Out.TreeText = Session->treeText();
    Out.DiagText = Session->diags().str();
  }
  Reply(encodeEditReply(Hdr.RequestId, Out));
}

void Daemon::handleLoadBundle(const std::shared_ptr<Connection> &Conn,
                              const MessageHeader &Hdr, ByteReader &Body) {
  auto Reply = [&](std::string RecordBytes) {
    std::string Out;
    frameRecord(Out, RecordBytes, Config.MaxFragmentBytes);
    Conn->enqueue(std::move(Out));
  };

  std::string Bytes;
  if (!decodeLoadBundleArgs(Body, Bytes)) {
    bumpCounter(&DaemonCounters::ProtocolErrors);
    Reply(encodeErrorReply(Hdr.RequestId, WireError::BadBody,
                           "malformed load-bundle arguments"));
    return;
  }
  // Loading runs synchronously on the reader thread: analysis can take
  // milliseconds, but ordering a connection's parses after its own
  // load-bundle is exactly what clients want.
  DiagnosticEngine Diags;
  bool WasCached = false;
  auto Bundle = loadBundleBytes(Bytes, Diags, &WasCached);
  if (!Bundle) {
    Reply(encodeErrorReply(Hdr.RequestId, WireError::BadBundle,
                           Diags.str()));
    return;
  }
  if (!WasCached)
    bumpCounter(&DaemonCounters::BundlesLoaded);
  LoadBundleReply Out;
  Out.Hash = Bundle->contentHash();
  Out.Cached = WasCached ? 1 : 0;
  Out.Name = Bundle->name();
  Reply(encodeLoadBundleReply(Hdr.RequestId, Out));
}
