#include "net/WireFormat.h"

#include <cstring>

using namespace llstar;
using namespace llstar::wire;

const char *wire::wireErrorName(WireError E) {
  switch (E) {
  case WireError::None:
    return "none";
  case WireError::BadMagic:
    return "bad-magic";
  case WireError::BadVersion:
    return "bad-version";
  case WireError::BadOpcode:
    return "bad-opcode";
  case WireError::BadBody:
    return "bad-body";
  case WireError::UnknownBundle:
    return "unknown-bundle";
  case WireError::DuplicateRequestId:
    return "duplicate-request-id";
  case WireError::BadBundle:
    return "bad-bundle";
  case WireError::Draining:
    return "draining";
  case WireError::FrameTooLarge:
    return "frame-too-large";
  case WireError::UnknownSession:
    return "unknown-session";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Byte-level primitives
//===----------------------------------------------------------------------===//

void wire::putU8(std::string &Out, uint8_t V) { Out.push_back(char(V)); }

void wire::putU16(std::string &Out, uint16_t V) {
  Out.push_back(char(V >> 8));
  Out.push_back(char(V));
}

void wire::putU32(std::string &Out, uint32_t V) {
  Out.push_back(char(V >> 24));
  Out.push_back(char(V >> 16));
  Out.push_back(char(V >> 8));
  Out.push_back(char(V));
}

void wire::putU64(std::string &Out, uint64_t V) {
  putU32(Out, uint32_t(V >> 32));
  putU32(Out, uint32_t(V));
}

void wire::putI64(std::string &Out, int64_t V) { putU64(Out, uint64_t(V)); }

void wire::putF64(std::string &Out, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

void wire::putStr(std::string &Out, std::string_view V) {
  putU32(Out, uint32_t(V.size()));
  Out.append(V);
}

bool ByteReader::take(size_t N, const char *&P) {
  if (Failed || Bytes.size() - Pos < N) {
    Failed = true;
    return false;
  }
  P = Bytes.data() + Pos;
  Pos += N;
  return true;
}

bool ByteReader::u8(uint8_t &V) {
  const char *P;
  if (!take(1, P))
    return false;
  V = uint8_t(P[0]);
  return true;
}

bool ByteReader::u16(uint16_t &V) {
  const char *P;
  if (!take(2, P))
    return false;
  V = uint16_t(uint8_t(P[0])) << 8 | uint8_t(P[1]);
  return true;
}

bool ByteReader::u32(uint32_t &V) {
  const char *P;
  if (!take(4, P))
    return false;
  V = uint32_t(uint8_t(P[0])) << 24 | uint32_t(uint8_t(P[1])) << 16 |
      uint32_t(uint8_t(P[2])) << 8 | uint32_t(uint8_t(P[3]));
  return true;
}

bool ByteReader::u64(uint64_t &V) {
  uint32_t Hi, Lo;
  if (!u32(Hi) || !u32(Lo))
    return false;
  V = uint64_t(Hi) << 32 | Lo;
  return true;
}

bool ByteReader::i64(int64_t &V) {
  uint64_t U;
  if (!u64(U))
    return false;
  V = int64_t(U);
  return true;
}

bool ByteReader::f64(double &V) {
  uint64_t Bits;
  if (!u64(Bits))
    return false;
  std::memcpy(&V, &Bits, sizeof(V));
  return true;
}

bool ByteReader::str(std::string &V) {
  uint32_t Len;
  if (!u32(Len))
    return false;
  const char *P;
  // An oversized length prefix fails here instead of allocating: take()
  // bounds it against the bytes actually present in the record.
  if (!take(Len, P))
    return false;
  V.assign(P, Len);
  return true;
}

//===----------------------------------------------------------------------===//
// Record marking
//===----------------------------------------------------------------------===//

static constexpr uint32_t LastFragmentBit = 0x80000000u;

void wire::frameRecord(std::string &Out, std::string_view Record,
                       size_t MaxFragment) {
  if (MaxFragment == 0 || MaxFragment > 0x7FFFFFFFu)
    MaxFragment = 0x7FFFFFFFu;
  size_t Off = 0;
  do {
    size_t Len = std::min(MaxFragment, Record.size() - Off);
    bool Last = Off + Len == Record.size();
    putU32(Out, uint32_t(Len) | (Last ? LastFragmentBit : 0));
    Out.append(Record.substr(Off, Len));
    Off += Len;
  } while (Off < Record.size());
}

void RecordReassembler::feed(std::string_view Bytes) {
  if (Failed)
    return;
  // Compact the consumed prefix before it dominates the buffer.
  if (Pos > 4096 && Pos * 2 > Buffer.size()) {
    Buffer.erase(0, Pos);
    Pos = 0;
  }
  Buffer.append(Bytes);
}

RecordReassembler::Status RecordReassembler::fail(std::string Message) {
  Failed = true;
  Err = std::move(Message);
  return Status::Error;
}

RecordReassembler::Status RecordReassembler::next(std::string &Record) {
  if (Failed)
    return Status::Error;
  while (true) {
    if (Buffer.size() - Pos < 4)
      return Status::NeedMore;
    uint32_t Word = uint32_t(uint8_t(Buffer[Pos])) << 24 |
                    uint32_t(uint8_t(Buffer[Pos + 1])) << 16 |
                    uint32_t(uint8_t(Buffer[Pos + 2])) << 8 |
                    uint32_t(uint8_t(Buffer[Pos + 3]));
    bool Last = Word & LastFragmentBit;
    size_t Len = Word & ~LastFragmentBit;
    if (Len > MaxFragment)
      return fail("fragment of " + std::to_string(Len) +
                  " bytes exceeds the " + std::to_string(MaxFragment) +
                  "-byte limit");
    if (Partial.size() + Len > MaxRecord)
      return fail("record exceeds the " + std::to_string(MaxRecord) +
                  "-byte limit");
    if (Buffer.size() - Pos - 4 < Len)
      return Status::NeedMore;
    Partial.append(Buffer, Pos + 4, Len);
    Pos += 4 + Len;
    if (Last) {
      Record = std::move(Partial);
      Partial.clear();
      return Status::Record;
    }
    // Non-final fragment: keep accumulating (zero-length fragments are
    // legal and simply contribute nothing).
  }
}

//===----------------------------------------------------------------------===//
// Header
//===----------------------------------------------------------------------===//

static void putHeader(std::string &Out, Opcode Op, uint64_t RequestId,
                      uint8_t Flags = 0) {
  putU32(Out, Magic);
  putU16(Out, ProtocolVersion);
  putU8(Out, uint8_t(Op));
  putU8(Out, Flags);
  putU64(Out, RequestId);
}

static bool validOpcode(uint8_t Op) {
  switch (Opcode(Op)) {
  case Opcode::Parse:
  case Opcode::ParseRecover:
  case Opcode::LoadBundle:
  case Opcode::Stats:
  case Opcode::Drain:
  case Opcode::Edit:
  case Opcode::ParseReply:
  case Opcode::ParseRecoverReply:
  case Opcode::LoadBundleReply:
  case Opcode::StatsReply:
  case Opcode::DrainReply:
  case Opcode::EditReply:
  case Opcode::ErrorReply:
    return true;
  }
  return false;
}

WireError wire::decodeHeader(ByteReader &R, MessageHeader &Hdr) {
  uint32_t Mag;
  uint8_t Op;
  if (!R.u32(Mag) || !R.u16(Hdr.Version) || !R.u8(Op) || !R.u8(Hdr.Flags) ||
      !R.u64(Hdr.RequestId))
    return WireError::BadMagic; // too short to even be a header
  if (Mag != Magic)
    return WireError::BadMagic;
  if (!validOpcode(Op))
    return WireError::BadOpcode;
  Hdr.Op = Opcode(Op);
  // Version is checked after the opcode so the error reply can echo the
  // request id of a future-versioned but well-formed request.
  if (Hdr.Version != ProtocolVersion)
    return WireError::BadVersion;
  return WireError::None;
}

//===----------------------------------------------------------------------===//
// Bodies
//===----------------------------------------------------------------------===//

std::string wire::encodeParseArgs(uint64_t RequestId, const ParseArgs &Args,
                                  bool Recover) {
  std::string Out;
  putHeader(Out, Recover ? Opcode::ParseRecover : Opcode::Parse, RequestId,
            Args.WantTree ? FlagWantTree : 0);
  putU64(Out, Args.BundleHash);
  putU32(Out, Args.DeadlineMs);
  putStr(Out, Args.StartRule);
  putStr(Out, Args.Input);
  return Out;
}

bool wire::decodeParseArgs(ByteReader &R, uint8_t Flags, ParseArgs &Args) {
  Args.WantTree = Flags & FlagWantTree;
  return R.u64(Args.BundleHash) && R.u32(Args.DeadlineMs) &&
         R.str(Args.StartRule) && R.str(Args.Input) && R.done();
}

std::string wire::encodeParseReply(uint64_t RequestId, const ParseReply &Reply,
                                   bool Recover) {
  std::string Out;
  putHeader(Out, Recover ? Opcode::ParseRecoverReply : Opcode::ParseReply,
            RequestId);
  putU8(Out, Reply.Status);
  putI64(Out, Reply.NumTokens);
  putI64(Out, Reply.TreeNodes);
  putF64(Out, Reply.ParseMillis);
  putStr(Out, Reply.TreeText);
  putStr(Out, Reply.DiagText);
  putU32(Out, uint32_t(Reply.Errors.size()));
  for (const WireDiagnostic &D : Reply.Errors) {
    putU8(Out, D.Severity);
    putU32(Out, D.Line);
    putU32(Out, D.Column);
    putStr(Out, D.Message);
  }
  return Out;
}

bool wire::decodeParseReply(ByteReader &R, ParseReply &Reply) {
  if (!R.u8(Reply.Status) || !R.i64(Reply.NumTokens) ||
      !R.i64(Reply.TreeNodes) || !R.f64(Reply.ParseMillis) ||
      !R.str(Reply.TreeText) || !R.str(Reply.DiagText))
    return false;
  if (Reply.Status > uint8_t(ParseStatus::BadRequest))
    return false;
  uint32_t N;
  if (!R.u32(N))
    return false;
  // Each error is at least 13 bytes; an absurd count fails before any
  // allocation instead of after.
  if (N > R.remaining() / 13)
    return false;
  Reply.Errors.resize(N);
  for (WireDiagnostic &D : Reply.Errors) {
    if (!R.u8(D.Severity) || !R.u32(D.Line) || !R.u32(D.Column) ||
        !R.str(D.Message))
      return false;
    if (D.Severity > 2)
      return false;
  }
  return R.done();
}

std::string wire::encodeLoadBundleArgs(uint64_t RequestId,
                                       std::string_view Bytes) {
  std::string Out;
  putHeader(Out, Opcode::LoadBundle, RequestId);
  putStr(Out, Bytes);
  return Out;
}

bool wire::decodeLoadBundleArgs(ByteReader &R, std::string &Bytes) {
  return R.str(Bytes) && R.done();
}

std::string wire::encodeLoadBundleReply(uint64_t RequestId,
                                        const LoadBundleReply &Reply) {
  std::string Out;
  putHeader(Out, Opcode::LoadBundleReply, RequestId);
  putU64(Out, Reply.Hash);
  putU8(Out, Reply.Cached);
  putStr(Out, Reply.Name);
  return Out;
}

bool wire::decodeLoadBundleReply(ByteReader &R, LoadBundleReply &Reply) {
  return R.u64(Reply.Hash) && R.u8(Reply.Cached) && R.str(Reply.Name) &&
         R.done() && Reply.Cached <= 1;
}

std::string wire::encodeStatsArgs(uint64_t RequestId, bool IncludeDecisions) {
  std::string Out;
  putHeader(Out, Opcode::Stats, RequestId,
            IncludeDecisions ? FlagIncludeDecisions : 0);
  return Out;
}

bool wire::decodeStatsArgs(ByteReader &R) { return R.done(); }

std::string wire::encodeStatsReply(uint64_t RequestId, std::string_view Json) {
  std::string Out;
  putHeader(Out, Opcode::StatsReply, RequestId);
  putStr(Out, Json);
  return Out;
}

bool wire::decodeStatsReply(ByteReader &R, std::string &Json) {
  return R.str(Json) && R.done();
}

std::string wire::encodeDrainArgs(uint64_t RequestId) {
  std::string Out;
  putHeader(Out, Opcode::Drain, RequestId);
  return Out;
}

std::string wire::encodeDrainReply(uint64_t RequestId) {
  std::string Out;
  putHeader(Out, Opcode::DrainReply, RequestId);
  return Out;
}

bool wire::decodeDrainBody(ByteReader &R) { return R.done(); }

std::string wire::encodeEditArgs(uint64_t RequestId, const EditArgs &Args) {
  std::string Out;
  putHeader(Out, Opcode::Edit, RequestId, Args.WantTree ? FlagWantTree : 0);
  putU32(Out, Args.SessionId);
  putU8(Out, Args.Action);
  putU8(Out, Args.Mode);
  putU64(Out, Args.BundleHash);
  putU64(Out, Args.Offset);
  putU64(Out, Args.OldLen);
  putStr(Out, Args.StartRule);
  putStr(Out, Args.NewText);
  return Out;
}

bool wire::decodeEditArgs(ByteReader &R, uint8_t Flags, EditArgs &Args) {
  Args.WantTree = Flags & FlagWantTree;
  if (!R.u32(Args.SessionId) || !R.u8(Args.Action) || !R.u8(Args.Mode) ||
      !R.u64(Args.BundleHash) || !R.u64(Args.Offset) || !R.u64(Args.OldLen) ||
      !R.str(Args.StartRule) || !R.str(Args.NewText) || !R.done())
    return false;
  return Args.Action <= EditActionClose && Args.Mode <= 0xF;
}

std::string wire::encodeEditReply(uint64_t RequestId,
                                  const EditReplyBody &Reply) {
  std::string Out;
  putHeader(Out, Opcode::EditReply, RequestId);
  putU16(Out, Reply.EditError);
  putU8(Out, Reply.Status);
  putI64(Out, Reply.NumTokens);
  putI64(Out, Reply.TreeNodes);
  putI64(Out, Reply.ErrorLeaves);
  putI64(Out, Reply.NodesReused);
  putI64(Out, Reply.TokensRelexed);
  putI64(Out, Reply.DecisionsReparsed);
  putF64(Out, Reply.EditMillis);
  putStr(Out, Reply.TreeText);
  putStr(Out, Reply.DiagText);
  return Out;
}

bool wire::decodeEditReply(ByteReader &R, EditReplyBody &Reply) {
  if (!R.u16(Reply.EditError) || !R.u8(Reply.Status) ||
      !R.i64(Reply.NumTokens) || !R.i64(Reply.TreeNodes) ||
      !R.i64(Reply.ErrorLeaves) || !R.i64(Reply.NodesReused) ||
      !R.i64(Reply.TokensRelexed) || !R.i64(Reply.DecisionsReparsed) ||
      !R.f64(Reply.EditMillis) || !R.str(Reply.TreeText) ||
      !R.str(Reply.DiagText) || !R.done())
    return false;
  // EditError values mirror incremental::EditScriptError (None..OutOfRange).
  return Reply.EditError <= 7 &&
         Reply.Status <= uint8_t(ParseStatus::BadRequest);
}

std::string wire::encodeErrorReply(uint64_t RequestId, WireError Code,
                                   std::string_view Message) {
  std::string Out;
  putHeader(Out, Opcode::ErrorReply, RequestId);
  putU16(Out, uint16_t(Code));
  putStr(Out, Message);
  return Out;
}

bool wire::decodeErrorReply(ByteReader &R, ErrorReply &Reply) {
  uint16_t Code;
  if (!R.u16(Code) || !R.str(Reply.Message) || !R.done())
    return false;
  // Unknown codes are preserved, not rejected: a newer server may grow
  // codes this client has no name for.
  Reply.Code = WireError(Code);
  return true;
}

bool wire::decodeReply(std::string_view Record, Message &Out,
                       std::string &Err) {
  ByteReader R(Record);
  WireError HdrErr = decodeHeader(R, Out.Hdr);
  if (HdrErr != WireError::None) {
    Err = std::string("bad reply header: ") + wireErrorName(HdrErr);
    return false;
  }
  bool Ok = false;
  switch (Out.Hdr.Op) {
  case Opcode::ParseReply:
  case Opcode::ParseRecoverReply:
    Ok = decodeParseReply(R, Out.Parse);
    break;
  case Opcode::LoadBundleReply:
    Ok = decodeLoadBundleReply(R, Out.Load);
    break;
  case Opcode::StatsReply:
    Ok = decodeStatsReply(R, Out.StatsJson);
    break;
  case Opcode::DrainReply:
    Ok = decodeDrainBody(R);
    break;
  case Opcode::EditReply:
    Ok = decodeEditReply(R, Out.Edit);
    break;
  case Opcode::ErrorReply:
    Ok = decodeErrorReply(R, Out.Error);
    break;
  default:
    Err = "expected a reply opcode, got a request";
    return false;
  }
  if (!Ok) {
    Err = "malformed reply body (opcode " +
          std::to_string(unsigned(Out.Hdr.Op)) + ")";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ParseResult bridging
//===----------------------------------------------------------------------===//

ParseReply wire::makeParseReply(const ParseResult &R) {
  ParseReply Reply;
  Reply.Status = uint8_t(R.Status);
  Reply.NumTokens = R.NumTokens;
  Reply.TreeNodes = R.TreeNodes;
  Reply.ParseMillis = R.ParseMillis;
  Reply.TreeText = R.TreeText;
  Reply.DiagText = R.DiagText;
  Reply.Errors.reserve(R.Errors.size());
  for (const Diagnostic &D : R.Errors)
    Reply.Errors.push_back({uint8_t(D.Severity), D.Loc.Line, D.Loc.Column,
                            D.Message});
  return Reply;
}
