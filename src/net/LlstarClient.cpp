#include "net/LlstarClient.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace llstar;
using namespace llstar::net;
using namespace llstar::wire;

LlstarClient::LlstarClient() = default;

LlstarClient::~LlstarClient() { close(); }

bool LlstarClient::fillError(std::string *Err, const std::string &What) {
  if (Err)
    *Err = What;
  return false;
}

bool LlstarClient::connect(const std::string &Host, uint16_t Port,
                           std::string *Err) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return fillError(Err, std::string("socket: ") + std::strerror(errno));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    close();
    return fillError(Err, "bad address '" + Host + "'");
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::string What = std::string("connect: ") + std::strerror(errno);
    close();
    return fillError(Err, What);
  }
  // Small request/reply exchanges benefit from immediate sends.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  setRecvTimeout(std::chrono::minutes(2));
  Ra = RecordReassembler();
  Arrived.clear();
  return true;
}

void LlstarClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void LlstarClient::setRecvTimeout(std::chrono::milliseconds Timeout) {
  if (Fd < 0)
    return;
  timeval Tv{};
  Tv.tv_sec = Timeout.count() / 1000;
  Tv.tv_usec = (Timeout.count() % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

bool LlstarClient::sendAll(std::string_view Bytes, std::string *Err) {
  if (Fd < 0)
    return fillError(Err, "not connected");
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N =
        ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N <= 0)
      return fillError(Err, std::string("send: ") + std::strerror(errno));
    Off += size_t(N);
  }
  return true;
}

bool LlstarClient::sendRaw(std::string_view Bytes, std::string *Err) {
  return sendAll(Bytes, Err);
}

bool LlstarClient::sendRecord(std::string_view Record, std::string *Err) {
  std::string Out;
  frameRecord(Out, Record);
  return sendAll(Out, Err);
}

bool LlstarClient::readReply(Message &Out, std::string *Err) {
  if (Fd < 0)
    return fillError(Err, "not connected");
  std::string Record;
  char Buf[64 * 1024];
  while (true) {
    RecordReassembler::Status St = Ra.next(Record);
    if (St == RecordReassembler::Status::Record) {
      std::string DecodeErr;
      if (!decodeReply(Record, Out, DecodeErr))
        return fillError(Err, "bad reply: " + DecodeErr);
      return true;
    }
    if (St == RecordReassembler::Status::Error)
      return fillError(Err, "bad framing from server: " + Ra.error());
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0)
      return fillError(Err, "server closed the connection");
    if (N < 0)
      return fillError(Err, std::string("recv: ") + std::strerror(errno));
    Ra.feed(std::string_view(Buf, size_t(N)));
  }
}

//===----------------------------------------------------------------------===//
// Pipelined API
//===----------------------------------------------------------------------===//

uint64_t LlstarClient::submitParse(const ParseArgs &Args, bool Recover,
                                   std::string *Err) {
  uint64_t Id = NextId++;
  if (!sendRecord(encodeParseArgs(Id, Args, Recover), Err))
    return 0;
  return Id;
}

bool LlstarClient::wait(uint64_t RequestId, Message &Out, std::string *Err) {
  while (true) {
    for (size_t I = 0; I < Arrived.size(); ++I) {
      if (Arrived[I].Hdr.RequestId == RequestId) {
        Out = std::move(Arrived[I]);
        Arrived.erase(Arrived.begin() + long(I));
        return true;
      }
    }
    Message Next;
    if (!readReply(Next, Err))
      return false;
    Arrived.push_back(std::move(Next));
  }
}

bool LlstarClient::waitAny(Message &Out, std::string *Err) {
  if (!Arrived.empty()) {
    Out = std::move(Arrived.front());
    Arrived.pop_front();
    return true;
  }
  return readReply(Out, Err);
}

//===----------------------------------------------------------------------===//
// Synchronous RPC
//===----------------------------------------------------------------------===//

bool LlstarClient::loadBundle(std::string_view Bytes, LoadBundleReply &Out,
                              std::string *Err) {
  uint64_t Id = NextId++;
  if (!sendRecord(encodeLoadBundleArgs(Id, Bytes), Err))
    return false;
  Message Reply;
  if (!wait(Id, Reply, Err))
    return false;
  if (Reply.Hdr.Op == Opcode::ErrorReply)
    return fillError(Err, std::string(wireErrorName(Reply.Error.Code)) + ": " +
                              Reply.Error.Message);
  if (Reply.Hdr.Op != Opcode::LoadBundleReply)
    return fillError(Err, "unexpected reply opcode");
  Out = std::move(Reply.Load);
  return true;
}

bool LlstarClient::parse(const ParseArgs &Args, bool Recover, Message &Out,
                         std::string *Err) {
  uint64_t Id = submitParse(Args, Recover, Err);
  if (Id == 0)
    return false;
  return wait(Id, Out, Err);
}

bool LlstarClient::edit(const EditArgs &Args, Message &Out, std::string *Err) {
  uint64_t Id = NextId++;
  if (!sendRecord(encodeEditArgs(Id, Args), Err))
    return false;
  return wait(Id, Out, Err);
}

bool LlstarClient::stats(bool IncludeDecisions, std::string &JsonOut,
                         std::string *Err) {
  uint64_t Id = NextId++;
  if (!sendRecord(encodeStatsArgs(Id, IncludeDecisions), Err))
    return false;
  Message Reply;
  if (!wait(Id, Reply, Err))
    return false;
  if (Reply.Hdr.Op == Opcode::ErrorReply)
    return fillError(Err, std::string(wireErrorName(Reply.Error.Code)) + ": " +
                              Reply.Error.Message);
  if (Reply.Hdr.Op != Opcode::StatsReply)
    return fillError(Err, "unexpected reply opcode");
  JsonOut = std::move(Reply.StatsJson);
  return true;
}

bool LlstarClient::drain(std::string *Err) {
  uint64_t Id = NextId++;
  if (!sendRecord(encodeDrainArgs(Id), Err))
    return false;
  Message Reply;
  if (!wait(Id, Reply, Err))
    return false;
  if (Reply.Hdr.Op == Opcode::ErrorReply)
    return fillError(Err, std::string(wireErrorName(Reply.Error.Code)) + ": " +
                              Reply.Error.Message);
  if (Reply.Hdr.Op != Opcode::DrainReply)
    return fillError(Err, "unexpected reply opcode");
  return true;
}
