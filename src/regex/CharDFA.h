//===- regex/CharDFA.h - Deterministic char automaton -----------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic finite automaton over bytes, produced from an \ref Nfa by
/// the classic subset construction (the same algorithm the paper's grammar
/// analysis modifies for ATNs; here it appears in its textbook form as the
/// lexer substrate). Optionally minimized by Hopcroft-style partition
/// refinement.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_REGEX_CHARDFA_H
#define LLSTAR_REGEX_CHARDFA_H

#include "regex/NFA.h"

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace llstar {
namespace regex {

/// A DFA state: dense 256-way transition table plus an accept tag.
struct CharDfaState {
  /// Transition per input byte; -1 means no transition.
  std::array<int32_t, 256> Next;
  /// Pattern tag accepted here, or -1.
  int32_t AcceptTag = -1;

  CharDfaState() { Next.fill(-1); }
};

/// A deterministic automaton over bytes with tagged accept states.
class CharDfa {
public:
  /// Builds the DFA for \p N via subset construction. Overlapping accepts
  /// resolve to the smallest priority (then smallest tag).
  static CharDfa fromNfa(const Nfa &N);

  /// Returns an equivalent DFA with the minimum number of states.
  CharDfa minimized() const;

  /// Wraps precomputed state tables (deserialized automata).
  static CharDfa fromTables(std::vector<CharDfaState> States) {
    CharDfa D;
    D.States = std::move(States);
    return D;
  }

  size_t size() const { return States.size(); }
  const std::vector<CharDfaState> &states() const { return States; }
  uint32_t startState() const { return 0; }

  /// Does the whole of \p Input match? Returns the tag or -1.
  int32_t matchWhole(std::string_view Input) const;

  /// Maximal-munch match at the front of \p Input: returns the length of the
  /// longest prefix ending in an accept state and sets \p Tag, or returns -1
  /// and leaves \p Tag untouched if not even the empty prefix accepts.
  int64_t matchLongestPrefix(std::string_view Input, int32_t &Tag) const;

private:
  std::vector<CharDfaState> States;
};

} // namespace regex
} // namespace llstar

#endif // LLSTAR_REGEX_CHARDFA_H
