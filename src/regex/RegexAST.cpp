#include "regex/RegexAST.h"

#include "support/StringUtils.h"

using namespace llstar;
using namespace llstar::regex;

RegexNode::Ptr RegexNode::string(const std::string &S) {
  if (S.empty())
    return epsilon();
  std::vector<Ptr> Parts;
  Parts.reserve(S.size());
  for (char C : S)
    Parts.push_back(literal(C));
  return concat(std::move(Parts));
}

RegexNode::Ptr RegexNode::concat(std::vector<Ptr> Children) {
  if (Children.empty())
    return epsilon();
  if (Children.size() == 1)
    return Children.front();
  auto N = std::make_shared<RegexNode>(RegexKind::Concat);
  N->Children = std::move(Children);
  return N;
}

RegexNode::Ptr RegexNode::alt(std::vector<Ptr> Children) {
  if (Children.empty())
    return epsilon();
  if (Children.size() == 1)
    return Children.front();
  auto N = std::make_shared<RegexNode>(RegexKind::Alt);
  N->Children = std::move(Children);
  return N;
}

bool RegexNode::matchesEmpty() const {
  switch (Kind) {
  case RegexKind::Epsilon:
  case RegexKind::Star:
  case RegexKind::Optional:
    return true;
  case RegexKind::CharSet:
    return false;
  case RegexKind::Plus:
    return Children[0]->matchesEmpty();
  case RegexKind::Concat:
    for (const Ptr &C : Children)
      if (!C->matchesEmpty())
        return false;
    return true;
  case RegexKind::Alt:
    for (const Ptr &C : Children)
      if (C->matchesEmpty())
        return true;
    return false;
  }
  return false;
}

std::string RegexNode::str() const {
  switch (Kind) {
  case RegexKind::Epsilon:
    return "ε";
  case RegexKind::CharSet:
    return Set.str(/*AsChar=*/true);
  case RegexKind::Concat: {
    std::string Result;
    for (const Ptr &C : Children)
      Result += C->str();
    return Result;
  }
  case RegexKind::Alt: {
    std::string Result = "(";
    for (size_t I = 0; I < Children.size(); ++I) {
      if (I)
        Result += "|";
      Result += Children[I]->str();
    }
    return Result + ")";
  }
  case RegexKind::Star:
    return "(" + Children[0]->str() + ")*";
  case RegexKind::Plus:
    return "(" + Children[0]->str() + ")+";
  case RegexKind::Optional:
    return "(" + Children[0]->str() + ")?";
  }
  return "?";
}
