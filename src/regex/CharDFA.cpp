#include "regex/CharDFA.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

using namespace llstar;
using namespace llstar::regex;

namespace {

/// Hash for a sorted NFA state set.
struct SetHash {
  size_t operator()(const std::vector<uint32_t> &Set) const {
    size_t H = 0xcbf29ce484222325ull;
    for (uint32_t S : Set) {
      H ^= S;
      H *= 0x100000001b3ull;
    }
    return H;
  }
};

} // namespace

CharDfa CharDfa::fromNfa(const Nfa &N) {
  const std::vector<NfaState> &NStates = N.states();

  auto Closure = [&](std::vector<uint32_t> &Set) {
    std::vector<uint32_t> Work(Set);
    std::vector<bool> Seen(NStates.size(), false);
    for (uint32_t S : Set)
      Seen[S] = true;
    while (!Work.empty()) {
      uint32_t S = Work.back();
      Work.pop_back();
      for (uint32_t T : NStates[S].EpsilonTargets) {
        if (Seen[T])
          continue;
        Seen[T] = true;
        Set.push_back(T);
        Work.push_back(T);
      }
    }
    std::sort(Set.begin(), Set.end());
  };

  auto AcceptOf = [&](const std::vector<uint32_t> &Set) -> int32_t {
    int32_t BestTag = -1, BestPriority = 0;
    for (uint32_t S : Set) {
      const NfaState &State = NStates[S];
      if (State.AcceptTag < 0)
        continue;
      if (BestTag < 0 || State.AcceptPriority < BestPriority ||
          (State.AcceptPriority == BestPriority && State.AcceptTag < BestTag)) {
        BestTag = State.AcceptTag;
        BestPriority = State.AcceptPriority;
      }
    }
    return BestTag;
  };

  CharDfa Result;
  std::unordered_map<std::vector<uint32_t>, int32_t, SetHash> Known;
  std::vector<std::vector<uint32_t>> Work;

  std::vector<uint32_t> StartSet{N.startState()};
  Closure(StartSet);
  Known.emplace(StartSet, 0);
  Result.States.emplace_back();
  Result.States[0].AcceptTag = AcceptOf(StartSet);
  Work.push_back(std::move(StartSet));

  while (!Work.empty()) {
    std::vector<uint32_t> Current = std::move(Work.back());
    Work.pop_back();
    int32_t CurrentId = Known.at(Current);

    // Compute, per input byte, the successor NFA state set. Walking the
    // interval edges once per byte would be O(256 * edges); instead expand
    // each interval edge into the per-byte target buckets.
    std::array<std::vector<uint32_t>, 256> Targets;
    for (uint32_t S : Current) {
      for (const NfaState::Edge &E : NStates[S].Edges) {
        for (const Interval &I : E.Label.intervals()) {
          int32_t Lo = std::max<int32_t>(I.Lo, 0);
          int32_t Hi = std::min<int32_t>(I.Hi, 255);
          for (int32_t V = Lo; V <= Hi; ++V)
            Targets[size_t(V)].push_back(E.Target);
        }
      }
    }

    for (int V = 0; V < 256; ++V) {
      std::vector<uint32_t> &T = Targets[size_t(V)];
      if (T.empty())
        continue;
      std::sort(T.begin(), T.end());
      T.erase(std::unique(T.begin(), T.end()), T.end());
      Closure(T);
      auto [It, Inserted] = Known.emplace(T, int32_t(Result.States.size()));
      if (Inserted) {
        Result.States.emplace_back();
        Result.States.back().AcceptTag = AcceptOf(T);
        Work.push_back(T);
      }
      Result.States[size_t(CurrentId)].Next[size_t(V)] = It->second;
    }
  }
  return Result;
}

CharDfa CharDfa::minimized() const {
  // Hopcroft-style refinement on the partition {states by accept tag}.
  size_t N = States.size();
  std::vector<int32_t> Block(N);
  std::map<int32_t, int32_t> TagBlock;
  int32_t NumBlocks = 0;
  for (size_t S = 0; S < N; ++S) {
    auto [It, Inserted] = TagBlock.emplace(States[S].AcceptTag, NumBlocks);
    if (Inserted)
      ++NumBlocks;
    Block[S] = It->second;
  }

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Signature of a state: its block + blocks of all 256 successors.
    std::unordered_map<std::string, int32_t> SigBlock;
    std::vector<int32_t> NewBlock(N);
    int32_t NewNumBlocks = 0;
    for (size_t S = 0; S < N; ++S) {
      std::string Sig;
      Sig.reserve((256 + 1) * sizeof(int32_t));
      auto Append = [&Sig](int32_t V) {
        Sig.append(reinterpret_cast<const char *>(&V), sizeof(V));
      };
      Append(Block[S]);
      for (int V = 0; V < 256; ++V) {
        int32_t T = States[S].Next[size_t(V)];
        Append(T < 0 ? -1 : Block[size_t(T)]);
      }
      auto [It, Inserted] = SigBlock.emplace(Sig, NewNumBlocks);
      if (Inserted)
        ++NewNumBlocks;
      NewBlock[S] = It->second;
    }
    if (NewNumBlocks != NumBlocks)
      Changed = true;
    Block = std::move(NewBlock);
    NumBlocks = NewNumBlocks;
  }

  // Rebuild with block of the start state as state 0.
  std::vector<int32_t> BlockToState(size_t(NumBlocks), -1);
  CharDfa Result;
  // Make sure the start block maps to new state 0 by visiting start first.
  std::vector<size_t> Order(N);
  for (size_t S = 0; S < N; ++S)
    Order[S] = S;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return (Block[A] == Block[0]) > (Block[B] == Block[0]);
  });
  for (size_t S : Order) {
    int32_t B = Block[S];
    if (BlockToState[size_t(B)] >= 0)
      continue;
    BlockToState[size_t(B)] = int32_t(Result.States.size());
    Result.States.emplace_back();
  }
  for (size_t S = 0; S < N; ++S) {
    CharDfaState &Out = Result.States[size_t(BlockToState[size_t(Block[S])])];
    Out.AcceptTag = States[S].AcceptTag;
    for (int V = 0; V < 256; ++V) {
      int32_t T = States[S].Next[size_t(V)];
      Out.Next[size_t(V)] = T < 0 ? -1 : BlockToState[size_t(Block[size_t(T)])];
    }
  }
  return Result;
}

int32_t CharDfa::matchWhole(std::string_view Input) const {
  int32_t S = 0;
  for (char C : Input) {
    S = States[size_t(S)].Next[static_cast<unsigned char>(C)];
    if (S < 0)
      return -1;
  }
  return States[size_t(S)].AcceptTag;
}

int64_t CharDfa::matchLongestPrefix(std::string_view Input,
                                    int32_t &Tag) const {
  int32_t S = 0;
  int64_t BestLen = -1;
  if (States[0].AcceptTag >= 0) {
    BestLen = 0;
    Tag = States[0].AcceptTag;
  }
  for (size_t I = 0; I < Input.size(); ++I) {
    S = States[size_t(S)].Next[static_cast<unsigned char>(Input[I])];
    if (S < 0)
      break;
    if (States[size_t(S)].AcceptTag >= 0) {
      BestLen = int64_t(I) + 1;
      Tag = States[size_t(S)].AcceptTag;
    }
  }
  return BestLen;
}
