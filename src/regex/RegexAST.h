//===- regex/RegexAST.h - Regular-expression syntax trees -------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntax trees for the regular expressions that define lexer tokens.
///
/// The grammar front end builds these directly from lexer-rule bodies; the
/// standalone \ref llstar::regex::parseRegex in RegexParser.h builds them
/// from a conventional regex string. Either way they compile through the
/// Thompson construction in NFA.h and the subset construction in CharDFA.h.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_REGEX_REGEXAST_H
#define LLSTAR_REGEX_REGEXAST_H

#include "support/IntervalSet.h"

#include <memory>
#include <string>
#include <vector>

namespace llstar {
namespace regex {

/// Discriminator for \ref RegexNode.
enum class RegexKind {
  Epsilon,  ///< Matches the empty string.
  CharSet,  ///< Matches one character from an interval set.
  Concat,   ///< Matches children in sequence.
  Alt,      ///< Matches any one child.
  Star,     ///< Zero or more of the child.
  Plus,     ///< One or more of the child.
  Optional, ///< Zero or one of the child.
};

/// One node of a regular-expression tree. Immutable after construction.
class RegexNode {
public:
  using Ptr = std::shared_ptr<RegexNode>;

  static Ptr epsilon() {
    return std::make_shared<RegexNode>(RegexKind::Epsilon);
  }
  static Ptr charSet(IntervalSet Set) {
    auto N = std::make_shared<RegexNode>(RegexKind::CharSet);
    N->Set = std::move(Set);
    return N;
  }
  static Ptr literal(char C) {
    return charSet(IntervalSet::of(static_cast<unsigned char>(C)));
  }
  /// A sequence of the characters of \p S (epsilon when empty).
  static Ptr string(const std::string &S);
  static Ptr concat(std::vector<Ptr> Children);
  static Ptr alt(std::vector<Ptr> Children);
  static Ptr star(Ptr Child) { return unary(RegexKind::Star, std::move(Child)); }
  static Ptr plus(Ptr Child) { return unary(RegexKind::Plus, std::move(Child)); }
  static Ptr optional(Ptr Child) {
    return unary(RegexKind::Optional, std::move(Child));
  }

  explicit RegexNode(RegexKind Kind) : Kind(Kind) {}

  RegexKind kind() const { return Kind; }
  const IntervalSet &set() const { return Set; }
  const std::vector<Ptr> &children() const { return Children; }

  /// Can this expression match the empty string?
  bool matchesEmpty() const;

  /// Renders a canonical textual form, for debugging and tests.
  std::string str() const;

private:
  static Ptr unary(RegexKind Kind, Ptr Child) {
    auto N = std::make_shared<RegexNode>(Kind);
    N->Children.push_back(std::move(Child));
    return N;
  }

  RegexKind Kind;
  IntervalSet Set;             // CharSet only
  std::vector<Ptr> Children;   // Concat/Alt/unary
};

} // namespace regex
} // namespace llstar

#endif // LLSTAR_REGEX_REGEXAST_H
