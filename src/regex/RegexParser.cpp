#include "regex/RegexParser.h"

#include "support/StringUtils.h"

using namespace llstar;
using namespace llstar::regex;

namespace {

/// Recursive-descent parser over a regex pattern string.
class Parser {
public:
  Parser(std::string_view Pattern, DiagnosticEngine &Diags)
      : Pattern(Pattern), Diags(Diags) {}

  RegexNode::Ptr parse() {
    RegexNode::Ptr Result = parseAlt();
    if (!Result)
      return nullptr;
    if (Pos != Pattern.size()) {
      error("unexpected character '" + escapeChar(Pattern[Pos]) + "'");
      return nullptr;
    }
    return Result;
  }

private:
  bool atEnd() const { return Pos >= Pattern.size(); }
  char peek() const { return Pattern[Pos]; }
  char take() { return Pattern[Pos++]; }

  void error(const std::string &Message) {
    Diags.error(SourceLocation(1, uint32_t(Pos)),
                "regex: " + Message + " in /" + std::string(Pattern) + "/");
  }

  RegexNode::Ptr parseAlt() {
    std::vector<RegexNode::Ptr> Alts;
    RegexNode::Ptr First = parseConcat();
    if (!First)
      return nullptr;
    Alts.push_back(std::move(First));
    while (!atEnd() && peek() == '|') {
      take();
      RegexNode::Ptr Next = parseConcat();
      if (!Next)
        return nullptr;
      Alts.push_back(std::move(Next));
    }
    return RegexNode::alt(std::move(Alts));
  }

  RegexNode::Ptr parseConcat() {
    std::vector<RegexNode::Ptr> Parts;
    while (!atEnd() && peek() != '|' && peek() != ')') {
      RegexNode::Ptr Part = parsePostfix();
      if (!Part)
        return nullptr;
      Parts.push_back(std::move(Part));
    }
    return RegexNode::concat(std::move(Parts));
  }

  RegexNode::Ptr parsePostfix() {
    RegexNode::Ptr Atom = parseAtom();
    if (!Atom)
      return nullptr;
    while (!atEnd()) {
      char C = peek();
      if (C == '*')
        Atom = RegexNode::star(std::move(Atom));
      else if (C == '+')
        Atom = RegexNode::plus(std::move(Atom));
      else if (C == '?')
        Atom = RegexNode::optional(std::move(Atom));
      else
        break;
      take();
    }
    return Atom;
  }

  RegexNode::Ptr parseAtom() {
    if (atEnd()) {
      error("unexpected end of pattern");
      return nullptr;
    }
    char C = take();
    switch (C) {
    case '(': {
      RegexNode::Ptr Inner = parseAlt();
      if (!Inner)
        return nullptr;
      if (atEnd() || take() != ')') {
        error("missing ')'");
        return nullptr;
      }
      return Inner;
    }
    case '[':
      return parseClass();
    case '.':
      return RegexNode::charSet(IntervalSet::range(0, 255));
    case '\\': {
      int32_t V = parseEscape();
      if (V < 0)
        return nullptr;
      return RegexNode::charSet(IntervalSet::of(V));
    }
    case '*':
    case '+':
    case '?':
      error("quantifier with nothing to repeat");
      return nullptr;
    default:
      return RegexNode::literal(C);
    }
  }

  /// Parses the remainder of a [...] class (the '[' is already consumed).
  RegexNode::Ptr parseClass() {
    bool Negated = false;
    if (!atEnd() && peek() == '^') {
      Negated = true;
      take();
    }
    IntervalSet Set;
    bool First = true;
    while (true) {
      if (atEnd()) {
        error("missing ']'");
        return nullptr;
      }
      char C = peek();
      if (C == ']' && !First) {
        take();
        break;
      }
      First = false;
      int32_t Lo = parseClassChar();
      if (Lo < 0)
        return nullptr;
      if (!atEnd() && peek() == '-' && Pos + 1 < Pattern.size() &&
          Pattern[Pos + 1] != ']') {
        take(); // '-'
        int32_t Hi = parseClassChar();
        if (Hi < 0)
          return nullptr;
        if (Hi < Lo) {
          error("reversed range in character class");
          return nullptr;
        }
        Set.add(Lo, Hi);
      } else {
        Set.add(Lo);
      }
    }
    if (Negated)
      Set = Set.complement(0, 255);
    return RegexNode::charSet(std::move(Set));
  }

  int32_t parseClassChar() {
    char C = take();
    if (C == '\\')
      return parseEscape();
    return static_cast<unsigned char>(C);
  }

  /// Parses the char after a backslash; returns -1 on error.
  int32_t parseEscape() {
    if (atEnd()) {
      error("dangling '\\'");
      return -1;
    }
    char C = take();
    switch (C) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case 'f':
      return '\f';
    case 'v':
      return '\v';
    case '0':
      return '\0';
    case 'x': {
      if (Pos + 1 >= Pattern.size()) {
        error("truncated \\x escape");
        return -1;
      }
      auto Hex = [this](char H) -> int {
        if (H >= '0' && H <= '9')
          return H - '0';
        if (H >= 'a' && H <= 'f')
          return H - 'a' + 10;
        if (H >= 'A' && H <= 'F')
          return H - 'A' + 10;
        error("bad hex digit in \\x escape");
        return -1;
      };
      int Hi = Hex(take());
      int Lo = Hex(take());
      if (Hi < 0 || Lo < 0)
        return -1;
      return Hi * 16 + Lo;
    }
    default:
      // Any other escaped char stands for itself (covers \\, \., \[, \-, ...).
      return static_cast<unsigned char>(C);
    }
  }

  std::string_view Pattern;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

RegexNode::Ptr regex::parseRegex(std::string_view Pattern,
                                 DiagnosticEngine &Diags) {
  return Parser(Pattern, Diags).parse();
}
