#include "regex/NFA.h"

#include <algorithm>
#include <cassert>

using namespace llstar;
using namespace llstar::regex;

void Nfa::addPattern(const RegexNode &Pattern, int32_t Tag, int32_t Priority) {
  auto [Entry, Exit] = build(Pattern);
  States[Start].EpsilonTargets.push_back(Entry);
  States[Exit].AcceptTag = Tag;
  States[Exit].AcceptPriority = Priority;
}

std::pair<uint32_t, uint32_t> Nfa::build(const RegexNode &Node) {
  switch (Node.kind()) {
  case RegexKind::Epsilon: {
    uint32_t S = newState();
    return {S, S};
  }
  case RegexKind::CharSet: {
    uint32_t Entry = newState();
    uint32_t Exit = newState();
    States[Entry].Edges.push_back({Node.set(), Exit});
    return {Entry, Exit};
  }
  case RegexKind::Concat: {
    uint32_t Entry = 0, Exit = 0;
    bool First = true;
    for (const RegexNode::Ptr &Child : Node.children()) {
      auto [CEntry, CExit] = build(*Child);
      if (First) {
        Entry = CEntry;
        First = false;
      } else {
        States[Exit].EpsilonTargets.push_back(CEntry);
      }
      Exit = CExit;
    }
    assert(!First && "Concat node must have children");
    return {Entry, Exit};
  }
  case RegexKind::Alt: {
    uint32_t Entry = newState();
    uint32_t Exit = newState();
    for (const RegexNode::Ptr &Child : Node.children()) {
      auto [CEntry, CExit] = build(*Child);
      States[Entry].EpsilonTargets.push_back(CEntry);
      States[CExit].EpsilonTargets.push_back(Exit);
    }
    return {Entry, Exit};
  }
  case RegexKind::Star: {
    uint32_t Entry = newState();
    uint32_t Exit = newState();
    auto [CEntry, CExit] = build(*Node.children()[0]);
    States[Entry].EpsilonTargets.push_back(CEntry);
    States[Entry].EpsilonTargets.push_back(Exit);
    States[CExit].EpsilonTargets.push_back(CEntry);
    States[CExit].EpsilonTargets.push_back(Exit);
    return {Entry, Exit};
  }
  case RegexKind::Plus: {
    uint32_t Exit = newState();
    auto [CEntry, CExit] = build(*Node.children()[0]);
    States[CExit].EpsilonTargets.push_back(CEntry);
    States[CExit].EpsilonTargets.push_back(Exit);
    return {CEntry, Exit};
  }
  case RegexKind::Optional: {
    uint32_t Entry = newState();
    uint32_t Exit = newState();
    auto [CEntry, CExit] = build(*Node.children()[0]);
    States[Entry].EpsilonTargets.push_back(CEntry);
    States[Entry].EpsilonTargets.push_back(Exit);
    States[CExit].EpsilonTargets.push_back(Exit);
    return {Entry, Exit};
  }
  }
  assert(false && "unknown regex node kind");
  return {0, 0};
}

void Nfa::closure(std::vector<uint32_t> &Set) const {
  std::vector<uint32_t> Work(Set);
  std::vector<bool> Seen(States.size(), false);
  for (uint32_t S : Set)
    Seen[S] = true;
  while (!Work.empty()) {
    uint32_t S = Work.back();
    Work.pop_back();
    for (uint32_t T : States[S].EpsilonTargets) {
      if (Seen[T])
        continue;
      Seen[T] = true;
      Set.push_back(T);
      Work.push_back(T);
    }
  }
  std::sort(Set.begin(), Set.end());
}

int32_t Nfa::matchWhole(std::string_view Input) const {
  std::vector<uint32_t> Current{Start};
  closure(Current);
  for (char C : Input) {
    int32_t V = static_cast<unsigned char>(C);
    std::vector<uint32_t> Next;
    for (uint32_t S : Current)
      for (const NfaState::Edge &E : States[S].Edges)
        if (E.Label.contains(V))
          Next.push_back(E.Target);
    std::sort(Next.begin(), Next.end());
    Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
    if (Next.empty())
      return -1;
    closure(Next);
    Current = std::move(Next);
  }
  int32_t BestTag = -1, BestPriority = 0;
  for (uint32_t S : Current) {
    const NfaState &State = States[S];
    if (State.AcceptTag < 0)
      continue;
    if (BestTag < 0 || State.AcceptPriority < BestPriority) {
      BestTag = State.AcceptTag;
      BestPriority = State.AcceptPriority;
    }
  }
  return BestTag;
}
