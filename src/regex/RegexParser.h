//===- regex/RegexParser.h - Parse regex strings ----------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a conventional regular-expression string into a \ref RegexNode
/// tree. Supported syntax: alternation `|`, grouping `(...)`, postfix
/// `* + ?`, character classes `[a-z0-9_]` and negated classes `[^...]`,
/// the wildcard `.` (any char), and escapes `\n \t \r \\ \. \[ ...`.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_REGEX_REGEXPARSER_H
#define LLSTAR_REGEX_REGEXPARSER_H

#include "regex/RegexAST.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace llstar {
namespace regex {

/// Parses \p Pattern; reports syntax problems to \p Diags and returns null
/// on error.
RegexNode::Ptr parseRegex(std::string_view Pattern, DiagnosticEngine &Diags);

} // namespace regex
} // namespace llstar

#endif // LLSTAR_REGEX_REGEXPARSER_H
