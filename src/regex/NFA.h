//===- regex/NFA.h - Thompson NFA for lexical analysis ----------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A nondeterministic finite automaton over byte characters, built from
/// \ref RegexNode trees by the Thompson construction.
///
/// Several tagged patterns can share one NFA (one per token type); the
/// subset construction in CharDFA.h then resolves overlaps by priority,
/// which is how the lexer generator implements "first rule wins" on ties.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_REGEX_NFA_H
#define LLSTAR_REGEX_NFA_H

#include "regex/RegexAST.h"
#include "support/IntervalSet.h"

#include <cstdint>
#include <vector>

namespace llstar {
namespace regex {

/// An NFA state: epsilon successors plus labeled (interval set) edges.
struct NfaState {
  struct Edge {
    IntervalSet Label;
    uint32_t Target;
  };

  std::vector<uint32_t> EpsilonTargets;
  std::vector<Edge> Edges;

  /// Pattern tag accepted at this state, or -1.
  int32_t AcceptTag = -1;
  /// Lower wins when several tags accept the same string.
  int32_t AcceptPriority = 0;
};

/// A multi-pattern Thompson NFA.
class Nfa {
public:
  /// Adds a pattern; strings matching it are tagged \p Tag. On overlap the
  /// pattern with the smaller \p Priority wins.
  void addPattern(const RegexNode &Pattern, int32_t Tag, int32_t Priority);

  uint32_t startState() const { return Start; }
  const std::vector<NfaState> &states() const { return States; }
  size_t size() const { return States.size(); }

  /// Reference matcher: does the whole of \p Input match some pattern?
  /// Returns the winning tag or -1. Used as a test oracle for the DFA.
  int32_t matchWhole(std::string_view Input) const;

private:
  uint32_t newState() {
    States.emplace_back();
    return uint32_t(States.size() - 1);
  }

  /// Builds the fragment for \p Node; returns (entry, exit).
  std::pair<uint32_t, uint32_t> build(const RegexNode &Node);

  /// Epsilon-closure of \p Set, in place (sorted unique).
  void closure(std::vector<uint32_t> &Set) const;

  std::vector<NfaState> States{1}; // state 0 is the shared start
  uint32_t Start = 0;
};

} // namespace regex
} // namespace llstar

#endif // LLSTAR_REGEX_NFA_H
