#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace llstar;

std::string llstar::escapeChar(char C) {
  switch (C) {
  case '\n':
    return "\\n";
  case '\t':
    return "\\t";
  case '\r':
    return "\\r";
  case '\\':
    return "\\\\";
  case '\'':
    return "\\'";
  case '"':
    return "\\\"";
  case '\0':
    return "\\0";
  default:
    break;
  }
  unsigned char U = static_cast<unsigned char>(C);
  if (U < 0x20 || U >= 0x7f) {
    char Buf[8];
    std::snprintf(Buf, sizeof(Buf), "\\x%02x", U);
    return Buf;
  }
  return std::string(1, C);
}

std::string llstar::escapeString(std::string_view S) {
  std::string Result;
  Result.reserve(S.size());
  for (char C : S)
    Result += escapeChar(C);
  return Result;
}

std::string llstar::join(const std::vector<std::string> &Parts,
                         std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string llstar::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Len > 0) {
    Result.resize(size_t(Len));
    std::vsnprintf(Result.data(), size_t(Len) + 1, Fmt, ArgsCopy);
  }
  va_end(ArgsCopy);
  return Result;
}
