//===- support/SourceLocation.h - Source positions --------------*- C++ -*-===//
//
// Part of the llstar project: a reproduction of "LL(*): The Foundation of the
// ANTLR Parser Generator" (Parr & Fisher, PLDI 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source positions shared by the grammar
/// meta-language front end, the lexer runtime, and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_SUPPORT_SOURCELOCATION_H
#define LLSTAR_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace llstar {

/// A 1-based line and 0-based column position in some input text.
///
/// An invalid (unknown) location is represented by line 0.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLocation() = default;
  constexpr SourceLocation(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  constexpr bool isValid() const { return Line != 0; }

  friend constexpr bool operator==(SourceLocation A, SourceLocation B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
  friend constexpr bool operator!=(SourceLocation A, SourceLocation B) {
    return !(A == B);
  }
  friend constexpr bool operator<(SourceLocation A, SourceLocation B) {
    return A.Line != B.Line ? A.Line < B.Line : A.Column < B.Column;
  }

  /// Renders as "line:column", or "<unknown>" when invalid.
  std::string str() const;
};

} // namespace llstar

#endif // LLSTAR_SUPPORT_SOURCELOCATION_H
