//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String escaping and formatting helpers shared across the toolkit.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_SUPPORT_STRINGUTILS_H
#define LLSTAR_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llstar {

/// FNV-1a 64-bit hash of \p Bytes. Stable across platforms; used as the
/// grammar-bundle content key and integrity check (not cryptographic).
constexpr uint64_t hashBytes(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Bytes) {
    H ^= uint8_t(C);
    H *= 1099511628211ull;
  }
  return H;
}

/// Escapes one character for display inside quotes ("\n", "\t", "\\", ...).
std::string escapeChar(char C);

/// Escapes a whole string for display inside double quotes.
std::string escapeString(std::string_view S);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace llstar

#endif // LLSTAR_SUPPORT_STRINGUTILS_H
