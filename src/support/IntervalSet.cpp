#include "support/IntervalSet.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace llstar;

bool IntervalSet::contains(int32_t V) const {
  // Binary search for the first interval with Hi >= V.
  auto It = std::lower_bound(
      Intervals.begin(), Intervals.end(), V,
      [](const Interval &I, int32_t Value) { return I.Hi < Value; });
  return It != Intervals.end() && It->contains(V);
}

void IntervalSet::add(int32_t Lo, int32_t Hi) {
  if (Hi < Lo)
    return;

  // Find the insertion window: all intervals overlapping or adjacent to
  // [Lo, Hi] get merged into one.
  auto First = std::lower_bound(Intervals.begin(), Intervals.end(), Lo,
                                [](const Interval &I, int32_t Value) {
                                  // Adjacent (I.Hi + 1 == Lo) still merges;
                                  // beware overflow at INT32_MAX.
                                  return I.Hi < Value && I.Hi + 1LL < Value;
                                });
  auto Last = First;
  int32_t NewLo = Lo, NewHi = Hi;
  while (Last != Intervals.end() && int64_t(Last->Lo) <= int64_t(Hi) + 1) {
    NewLo = std::min(NewLo, Last->Lo);
    NewHi = std::max(NewHi, Last->Hi);
    ++Last;
  }
  if (First == Last) {
    Intervals.insert(First, Interval(NewLo, NewHi));
    return;
  }
  *First = Interval(NewLo, NewHi);
  Intervals.erase(First + 1, Last);
}

void IntervalSet::addSet(const IntervalSet &Other) {
  for (const Interval &I : Other.Intervals)
    add(I.Lo, I.Hi);
}

void IntervalSet::remove(int32_t V) {
  auto It = std::lower_bound(
      Intervals.begin(), Intervals.end(), V,
      [](const Interval &I, int32_t Value) { return I.Hi < Value; });
  if (It == Intervals.end() || !It->contains(V))
    return;
  if (It->Lo == V && It->Hi == V) {
    Intervals.erase(It);
    return;
  }
  if (It->Lo == V) {
    It->Lo = V + 1;
    return;
  }
  if (It->Hi == V) {
    It->Hi = V - 1;
    return;
  }
  Interval Right(V + 1, It->Hi);
  It->Hi = V - 1;
  Intervals.insert(It + 1, Right);
}

IntervalSet IntervalSet::unionWith(const IntervalSet &Other) const {
  IntervalSet Result = *this;
  Result.addSet(Other);
  return Result;
}

IntervalSet IntervalSet::intersectWith(const IntervalSet &Other) const {
  IntervalSet Result;
  size_t I = 0, J = 0;
  while (I < Intervals.size() && J < Other.Intervals.size()) {
    const Interval &A = Intervals[I];
    const Interval &B = Other.Intervals[J];
    int32_t Lo = std::max(A.Lo, B.Lo);
    int32_t Hi = std::min(A.Hi, B.Hi);
    if (Lo <= Hi)
      Result.Intervals.push_back(Interval(Lo, Hi));
    if (A.Hi < B.Hi)
      ++I;
    else
      ++J;
  }
  return Result;
}

IntervalSet IntervalSet::subtract(const IntervalSet &Other) const {
  IntervalSet Result;
  size_t J = 0;
  for (Interval A : Intervals) {
    // Skip Other intervals entirely before A.
    while (J < Other.Intervals.size() && Other.Intervals[J].Hi < A.Lo)
      ++J;
    size_t K = J;
    int32_t Lo = A.Lo;
    while (K < Other.Intervals.size() && Other.Intervals[K].Lo <= A.Hi) {
      const Interval &B = Other.Intervals[K];
      if (B.Lo > Lo)
        Result.Intervals.push_back(Interval(Lo, B.Lo - 1));
      Lo = std::max(Lo, B.Hi < INT32_MAX ? B.Hi + 1 : INT32_MAX);
      if (B.Hi >= A.Hi) {
        Lo = A.Hi + 1; // fully consumed
        break;
      }
      ++K;
    }
    if (Lo <= A.Hi)
      Result.Intervals.push_back(Interval(Lo, A.Hi));
  }
  return Result;
}

IntervalSet IntervalSet::complement(int32_t UniverseLo,
                                    int32_t UniverseHi) const {
  return range(UniverseLo, UniverseHi).subtract(*this);
}

std::string IntervalSet::str(bool AsChar) const {
  std::string Result = "{";
  bool First = true;
  for (const Interval &I : Intervals) {
    if (!First)
      Result += ", ";
    First = false;
    auto One = [&](int32_t V) {
      if (AsChar)
        Result += "'" + escapeChar(char(V)) + "'";
      else
        Result += std::to_string(V);
    };
    One(I.Lo);
    if (I.Hi != I.Lo) {
      Result += "..";
      One(I.Hi);
    }
  }
  Result += "}";
  return Result;
}
