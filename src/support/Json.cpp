#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

using namespace llstar;
using namespace llstar::json;

const Value &Value::key(const std::string &Name) const {
  static const Value Null;
  if (K != Kind::Object)
    return Null;
  auto It = Members.find(Name);
  return It == Members.end() ? Null : It->second;
}

const Value &Value::at(size_t I) const {
  static const Value Null;
  if (K != Kind::Array || I >= Elements.size())
    return Null;
  return Elements[I];
}

namespace {

class Parser {
public:
  Parser(std::string_view Text) : Text(Text) {}

  bool run(Value &Out, std::string *Error) {
    if (!parseValue(Out)) {
      if (Error)
        *Error = Message + " at offset " + std::to_string(Pos);
      return false;
    }
    skipWs();
    if (Pos != Text.size()) {
      if (Error)
        *Error = "trailing characters at offset " + std::to_string(Pos);
      return false;
    }
    return true;
  }

private:
  bool fail(const char *Why) {
    if (Message.empty())
      Message = Why;
    return false;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  bool eat(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  bool eatWord(const char *W) {
    size_t Len = std::char_traits<char>::length(W);
    if (Text.substr(Pos, Len) != W)
      return false;
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = peek();
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      return parseString(Out);
    case 't':
      if (!eatWord("true"))
        return fail("bad literal");
      Out = Value::makeBool(true);
      return true;
    case 'f':
      if (!eatWord("false"))
        return fail("bad literal");
      Out = Value::makeBool(false);
      return true;
    case 'n':
      if (!eatWord("null"))
        return fail("bad literal");
      Out = Value::makeNull();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out) {
    ++Pos; // '{'
    std::map<std::string, Value> Members;
    skipWs();
    if (eat('}')) {
      Out = Value::makeObject(std::move(Members));
      return true;
    }
    while (true) {
      skipWs();
      Value KeyVal;
      if (peek() != '"' || !parseString(KeyVal))
        return fail("expected object key");
      skipWs();
      if (!eat(':'))
        return fail("expected ':' after object key");
      Value Member;
      if (!parseValue(Member))
        return false;
      Members[KeyVal.str()] = std::move(Member);
      skipWs();
      if (eat(','))
        continue;
      if (eat('}'))
        break;
      return fail("expected ',' or '}' in object");
    }
    Out = Value::makeObject(std::move(Members));
    return true;
  }

  bool parseArray(Value &Out) {
    ++Pos; // '['
    std::vector<Value> Elems;
    skipWs();
    if (eat(']')) {
      Out = Value::makeArray(std::move(Elems));
      return true;
    }
    while (true) {
      Value Elem;
      if (!parseValue(Elem))
        return false;
      Elems.push_back(std::move(Elem));
      skipWs();
      if (eat(','))
        continue;
      if (eat(']'))
        break;
      return fail("expected ',' or ']' in array");
    }
    Out = Value::makeArray(std::move(Elems));
    return true;
  }

  bool parseString(Value &Out) {
    ++Pos; // '"'
    std::string S;
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        break;
      if (C != '\\') {
        S += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        S += E;
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'n':
        S += '\n';
        break;
      case 'r':
        S += '\r';
        break;
      case 't':
        S += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        uint32_t Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= uint32_t(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= uint32_t(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= uint32_t(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // UTF-8 encode (surrogate pairs are not combined; the project never
        // writes them).
        if (Code < 0x80) {
          S += char(Code);
        } else if (Code < 0x800) {
          S += char(0xC0 | (Code >> 6));
          S += char(0x80 | (Code & 0x3F));
        } else {
          S += char(0xE0 | (Code >> 12));
          S += char(0x80 | ((Code >> 6) & 0x3F));
          S += char(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("bad escape character");
      }
    }
    Out = Value::makeString(std::move(S));
    return true;
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0' || !std::isfinite(D))
      return fail("malformed number");
    Out = Value::makeNumber(D);
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Message;
};

} // namespace

bool llstar::json::parse(std::string_view Text, Value &Out,
                         std::string *Error) {
  return Parser(Text).run(Out, Error);
}
