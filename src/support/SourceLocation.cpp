#include "support/SourceLocation.h"

using namespace llstar;

std::string SourceLocation::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}
