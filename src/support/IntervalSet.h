//===- support/IntervalSet.h - Sorted integer interval sets -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set of integers stored as sorted, disjoint, closed intervals.
///
/// Used for character classes in the regex/lexer substrate and for token-type
/// lookahead sets in the LL(*) analysis (where sets like "any identifier
/// character" or "FOLLOW(expr)" are dense ranges).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_SUPPORT_INTERVALSET_H
#define LLSTAR_SUPPORT_INTERVALSET_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace llstar {

/// A closed interval [Lo, Hi] of int32 values.
struct Interval {
  int32_t Lo = 0;
  int32_t Hi = -1; // empty when Hi < Lo

  constexpr Interval() = default;
  constexpr Interval(int32_t Lo, int32_t Hi) : Lo(Lo), Hi(Hi) {}

  constexpr bool empty() const { return Hi < Lo; }
  constexpr int64_t size() const {
    return empty() ? 0 : int64_t(Hi) - int64_t(Lo) + 1;
  }
  constexpr bool contains(int32_t V) const { return Lo <= V && V <= Hi; }

  friend constexpr bool operator==(Interval A, Interval B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
};

/// A set of int32 values kept as sorted disjoint closed intervals.
///
/// All mutating operations preserve the invariant that intervals are sorted,
/// non-empty, non-overlapping, and non-adjacent (adjacent runs are merged).
class IntervalSet {
public:
  IntervalSet() = default;

  /// Singleton {V}.
  static IntervalSet of(int32_t V) { return range(V, V); }

  /// Closed range [Lo, Hi]; empty set when Hi < Lo.
  static IntervalSet range(int32_t Lo, int32_t Hi) {
    IntervalSet S;
    if (Lo <= Hi)
      S.Intervals.push_back(Interval(Lo, Hi));
    return S;
  }

  bool empty() const { return Intervals.empty(); }

  /// Total number of members.
  int64_t size() const {
    int64_t N = 0;
    for (const Interval &I : Intervals)
      N += I.size();
    return N;
  }

  bool contains(int32_t V) const;

  /// Adds the closed range [Lo, Hi], merging as needed.
  void add(int32_t Lo, int32_t Hi);
  void add(int32_t V) { add(V, V); }
  void addSet(const IntervalSet &Other);

  /// Removes a single value, splitting an interval if needed.
  void remove(int32_t V);

  void clear() { Intervals.clear(); }

  /// Set union.
  IntervalSet unionWith(const IntervalSet &Other) const;
  /// Set intersection.
  IntervalSet intersectWith(const IntervalSet &Other) const;
  /// Elements of this set not in \p Other.
  IntervalSet subtract(const IntervalSet &Other) const;
  /// Complement relative to [UniverseLo, UniverseHi].
  IntervalSet complement(int32_t UniverseLo, int32_t UniverseHi) const;

  bool intersects(const IntervalSet &Other) const {
    return !intersectWith(Other).empty();
  }

  /// Smallest member; asserts on empty set.
  int32_t min() const {
    assert(!empty() && "min() of empty IntervalSet");
    return Intervals.front().Lo;
  }
  /// Largest member; asserts on empty set.
  int32_t max() const {
    assert(!empty() && "max() of empty IntervalSet");
    return Intervals.back().Hi;
  }

  const std::vector<Interval> &intervals() const { return Intervals; }

  /// Calls \p Fn for every member in ascending order.
  void forEach(const std::function<void(int32_t)> &Fn) const {
    for (const Interval &I : Intervals)
      for (int64_t V = I.Lo; V <= I.Hi; ++V)
        Fn(int32_t(V));
  }

  /// Renders like "{1..3, 7, 9..12}". With \p AsChar, printable members are
  /// shown as quoted characters.
  std::string str(bool AsChar = false) const;

  friend bool operator==(const IntervalSet &A, const IntervalSet &B) {
    return A.Intervals == B.Intervals;
  }

private:
  std::vector<Interval> Intervals;
};

} // namespace llstar

#endif // LLSTAR_SUPPORT_INTERVALSET_H
