//===- support/Diagnostics.h - Diagnostic collection ------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Every phase of the toolkit (grammar parsing,
/// LL(*) analysis, and the parser runtime) reports problems here instead of
/// writing to stderr, so library clients and tests can inspect them.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_SUPPORT_DIAGNOSTICS_H
#define LLSTAR_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace llstar {

/// Severity of a reported diagnostic.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// One reported problem: a severity, an optional location, and a message.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "<severity>: <loc>: <message>" in the usual tool style.
  std::string str() const;
};

/// Collects diagnostics produced by a phase.
///
/// The engine never throws and never exits; callers check \ref hasErrors
/// after running a fallible phase.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLocation Loc, std::string Message) {
    if (Severity == DiagSeverity::Error)
      ++NumErrors;
    else if (Severity == DiagSeverity::Warning)
      ++NumWarnings;
    Diags.push_back({Severity, Loc, std::move(Message)});
  }

  void error(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void error(std::string Message) { error(SourceLocation(), std::move(Message)); }
  void warning(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void warning(std::string Message) {
    warning(SourceLocation(), std::move(Message));
  }
  void note(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  void clear() {
    Diags.clear();
    NumErrors = NumWarnings = 0;
  }

  /// All diagnostics rendered one per line, sorted by (line, column,
  /// severity) with emission order as the stable tie-break, so output is
  /// deterministic regardless of pass ordering. Unlocated diagnostics sort
  /// first; errors sort before warnings before notes at the same location.
  /// \ref diagnostics keeps emission order.
  std::string str() const;

  /// The diagnostics in the deterministic order \ref str renders them.
  std::vector<Diagnostic> sorted() const;

  /// Returns true if any diagnostic message contains \p Needle.
  bool contains(const std::string &Needle) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace llstar

#endif // LLSTAR_SUPPORT_DIAGNOSTICS_H
