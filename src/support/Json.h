//===- support/Json.h - Minimal JSON document model -------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader and immutable value tree. The
/// project emits JSON by hand (ParserStats, ServiceMetrics, SARIF); this is
/// the consuming side, used by `llstar lint --profile` and the loadgen
/// stats export to read those documents back. It supports exactly the JSON
/// the project writes: objects, arrays, strings with \uXXXX escapes,
/// doubles, bools, null. Duplicate object keys keep the last value.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_SUPPORT_JSON_H
#define LLSTAR_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace llstar {
namespace json {

enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

/// One JSON value. Parsed documents are trees of these; accessors are
/// null-tolerant so lookups chain without intermediate checks:
/// `Doc.key("parser").key("decisions").at(0).key("rule").str()`.
class Value {
public:
  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  /// Bool value (false unless this is a Bool).
  bool boolean() const { return K == Kind::Bool && Num != 0; }
  /// Numeric value (\p Default unless this is a Number).
  double number(double Default = 0) const {
    return K == Kind::Number ? Num : Default;
  }
  int64_t integer(int64_t Default = 0) const {
    return K == Kind::Number ? int64_t(Num) : Default;
  }
  /// String value (\p Default unless this is a String).
  const std::string &str() const {
    static const std::string Empty;
    return K == Kind::String ? Str : Empty;
  }

  /// Object member lookup; returns a shared Null value when absent or when
  /// this is not an object.
  const Value &key(const std::string &Name) const;
  bool has(const std::string &Name) const {
    return K == Kind::Object && Members.count(Name) != 0;
  }
  /// Array element; the shared Null value when out of range.
  const Value &at(size_t I) const;
  size_t size() const {
    return K == Kind::Array ? Elements.size()
                            : (K == Kind::Object ? Members.size() : 0);
  }
  const std::vector<Value> &elements() const { return Elements; }
  const std::map<std::string, Value> &members() const { return Members; }

  // Construction (used by the parser; also handy in tests).
  static Value makeNull() { return Value(); }
  static Value makeBool(bool B) {
    Value V;
    V.K = Kind::Bool;
    V.Num = B ? 1 : 0;
    return V;
  }
  static Value makeNumber(double N) {
    Value V;
    V.K = Kind::Number;
    V.Num = N;
    return V;
  }
  static Value makeString(std::string S) {
    Value V;
    V.K = Kind::String;
    V.Str = std::move(S);
    return V;
  }
  static Value makeArray(std::vector<Value> Elems) {
    Value V;
    V.K = Kind::Array;
    V.Elements = std::move(Elems);
    return V;
  }
  static Value makeObject(std::map<std::string, Value> M) {
    Value V;
    V.K = Kind::Object;
    V.Members = std::move(M);
    return V;
  }

private:
  Kind K = Kind::Null;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elements;
  std::map<std::string, Value> Members;
};

/// Parses \p Text into \p Out. Returns false (with a human-readable message
/// in \p Error when non-null) on malformed input; trailing non-whitespace
/// after the document is an error.
bool parse(std::string_view Text, Value &Out, std::string *Error = nullptr);

} // namespace json
} // namespace llstar

#endif // LLSTAR_SUPPORT_JSON_H
