#include "support/Diagnostics.h"

#include <algorithm>
#include <numeric>

using namespace llstar;

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Result = severityName(Severity);
  Result += ": ";
  if (Loc.isValid()) {
    Result += Loc.str();
    Result += ": ";
  }
  Result += Message;
  return Result;
}

std::vector<Diagnostic> DiagnosticEngine::sorted() const {
  // Errors outrank warnings outrank notes when tied on location.
  auto Rank = [](DiagSeverity S) {
    switch (S) {
    case DiagSeverity::Error:
      return 0;
    case DiagSeverity::Warning:
      return 1;
    case DiagSeverity::Note:
      return 2;
    }
    return 3;
  };
  std::vector<size_t> Order(Diags.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const Diagnostic &DA = Diags[A], &DB = Diags[B];
    if (DA.Loc != DB.Loc)
      return DA.Loc < DB.Loc;
    return Rank(DA.Severity) < Rank(DB.Severity);
  });
  std::vector<Diagnostic> Result;
  Result.reserve(Diags.size());
  for (size_t I : Order)
    Result.push_back(Diags[I]);
  return Result;
}

std::string DiagnosticEngine::str() const {
  std::string Result;
  for (const Diagnostic &D : sorted()) {
    Result += D.str();
    Result += '\n';
  }
  return Result;
}

bool DiagnosticEngine::contains(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}
