#include "support/Diagnostics.h"

using namespace llstar;

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Result = severityName(Severity);
  Result += ": ";
  if (Loc.isValid()) {
    Result += Loc.str();
    Result += ": ";
  }
  Result += Message;
  return Result;
}

std::string DiagnosticEngine::str() const {
  std::string Result;
  for (const Diagnostic &D : Diags) {
    Result += D.str();
    Result += '\n';
  }
  return Result;
}

bool DiagnosticEngine::contains(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}
