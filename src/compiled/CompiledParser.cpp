//===- compiled/CompiledParser.cpp - Dense-table LL(*) parser -------------===//
//
// A behavioral mirror of runtime/LLStarParser.cpp over flat tables. The
// control flow, diagnostics text, stats recording, and recovery logic are
// kept line-for-line parallel with the interpreter on purpose: the
// conformance suite asserts byte-identical output, so when the interpreter
// changes, change this file the same way.
//
//===----------------------------------------------------------------------===//

#include "compiled/CompiledParser.h"

#include "analysis/AnalyzedGrammar.h"

#include <cassert>

using namespace llstar;
using namespace llstar::compiled;

namespace {

/// Smallest user-defined token type in \p S (the token conjured for a
/// single-token insertion against a set edge). The strategy only requests
/// insertion when one exists.
TokenType firstUserToken(const IntervalSet &S) {
  for (const Interval &I : S.intervals())
    if (I.Hi >= TokenMinUserType)
      return std::max(I.Lo, TokenMinUserType);
  return TokenInvalid;
}

} // namespace

CompiledParser::CompiledParser(const AnalyzedGrammar &AG,
                               const TablesView &Tables, TokenStream &Stream,
                               SemanticEnv *Env, DiagnosticEngine &Diags,
                               ParserOptions Opts,
                               const NativePredictFn *Native,
                               const NativeRuleFn *NativeRules)
    : AG(AG), CT(Tables), Stream(Stream), Env(Env), Diags(Diags), Opts(Opts),
      Native(Native), NativeRules(NativeRules) {
  Stats.ensure(size_t(CT.NumDecisions));
  NoDeadline =
      this->Opts.Deadline == std::chrono::steady_clock::time_point::max();
  // Reuse hooks observe every prediction event, so generated bodies must
  // not shortcut prediction past the engine when one is installed.
  FastPredictOk =
      NoDeadline && !this->Opts.CollectStats && !this->Opts.Hooks;
}

std::unique_ptr<ParseTree> CompiledParser::parse(const std::string &RuleName) {
  int32_t Rule = RuleName.empty() ? AG.grammar().startRule()
                                  : AG.grammar().findRule(RuleName);
  if (Rule < 0) {
    Diags.error("unknown start rule '" + RuleName + "'");
    LastParseOk = false;
    return nullptr;
  }
  Memo.clear();
  ArenaRoot = nullptr;
  DeadlineHit = false;
  DeadlinePollCountdown = DeadlinePollInterval;
  FollowStack.clear();
  LastErrorIndex = -1;
  InsertionsSinceConsume = 0;

  std::unique_ptr<ParseTree> HeapRoot;
  NodeRef Root;
  if (Opts.TreeArena) {
    if (Opts.BuildTree) {
      ArenaRoot = ArenaParseTree::ruleNode(*Opts.TreeArena, Rule);
      Root.InArena = ArenaRoot;
    }
  } else {
    HeapRoot = ParseTree::ruleNode(Rule);
    if (Opts.BuildTree)
      Root.Heap = HeapRoot.get();
  }
  unsigned ErrorsBefore = Diags.errorCount();
  bool Ok = runBody(Rule, Root);
  if (!Ok && canRecover()) {
    // Top-level sync: the invocation stack is empty, so the recovery set is
    // {EOF} and this drains the remaining input as error leaves.
    syncAfterRuleFailure(Root);
    Ok = true;
  }
  LastParseOk = Ok && Diags.errorCount() == ErrorsBefore;
  return HeapRoot;
}

//===----------------------------------------------------------------------===//
// Core interpretation
//===----------------------------------------------------------------------===//

bool CompiledParser::runRule(int32_t RuleIndex, int32_t Precedence,
                             NodeRef Parent) {
  const Rule &R = AG.grammar().rule(RuleIndex);

  uint64_t Key = 0;
  bool UseMemo = speculating() && Opts.Memoize;
  if (UseMemo) {
    Key = memoKey(RuleIndex, Precedence, Stream.index());
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      ++Stats.MemoHits;
      if (It->second < 0)
        return false;
      Stream.seek(It->second);
      if (SpecMaxIndex < It->second)
        SpecMaxIndex = It->second;
      return true;
    }
    ++Stats.MemoMisses;
  }

  // Incremental reparse: splice a recorded subtree instead of running the
  // body when the subscriber vouches for it (see runtime/ReuseHooks.h).
  if (Opts.Hooks && !speculating() && Parent) {
    ReuseHooks::Splice Sp;
    if (Opts.Hooks->tryReuse(RuleIndex, Precedence, Stream.index(), Sp)) {
      if (Parent.Heap)
        Parent.Heap->addChild(std::move(Sp.Heap));
      else if (Parent.InArena)
        Parent.InArena->addChild(Sp.InArena);
      Stream.seek(Sp.NextIndex);
      InsertionsSinceConsume = 0;
      ++Stats.NodesReused;
      return true;
    }
  }

  NodeRef Node;
  if (Parent && !speculating())
    Node = addRuleChild(Parent, RuleIndex);

  bool Hooked = Opts.Hooks && !speculating();
  if (Hooked)
    Opts.Hooks->enterRule(RuleIndex, Precedence, Stream.index());

  if (R.IsPrecedenceRule)
    PrecStack.push_back(Precedence);
  bool Ok = runBody(RuleIndex, Node);
  if (R.IsPrecedenceRule)
    PrecStack.pop_back();

  if (!Ok && canRecover()) {
    syncAfterRuleFailure(Node);
    Ok = true;
  }

  if (Hooked)
    Opts.Hooks->exitRule(RuleIndex, Stream.index(), Node.Heap, Node.InArena);

  if (UseMemo)
    Memo[Key] = Ok ? Stream.index() : -1;
  return Ok;
}

bool CompiledParser::runStates(int32_t From, int32_t Until, NodeRef Parent) {
  int32_t P = From;
  // Guards against loop decisions that iterate without consuming input
  // (an epsilon-matching loop body). A rule body holds at most a few loop
  // decisions, so a linear-scan array replaces the interpreter's hash map.
  LoopMark MarksInline[4];
  size_t NumMarks = 0;
  std::vector<LoopMark> MarksSpill;

  const CState *States = CT.States;
  while (P != Until) {
    if (!deadlineOk())
      return false;
    const CState &S = States[P];

    if (S.Decision >= 0) {
      int32_t Alt = predictAtState(S.Decision, P, Parent);
      if (Alt < 0)
        return false;
      bool IsLoop = S.Kind == int32_t(AtnStateKind::StarLoopEntry) ||
                    S.Kind == int32_t(AtnStateKind::PlusLoopBack);
      if (IsLoop) {
        int32_t ExitAlt = S.NumAlts;
        if (Alt != ExitAlt) {
          LoopMark *Found = nullptr;
          for (size_t I = 0; I < NumMarks && I < 4; ++I)
            if (MarksInline[I].State == P)
              Found = &MarksInline[I];
          if (!Found)
            for (LoopMark &LM : MarksSpill)
              if (LM.State == P)
                Found = &LM;
          if (!Found) {
            if (NumMarks < 4)
              MarksInline[NumMarks] = {P, Stream.index()};
            else
              MarksSpill.push_back({P, Stream.index()});
            ++NumMarks;
          } else if (Found->Index == Stream.index()) {
            Alt = ExitAlt; // no progress since last iteration: exit
          } else {
            Found->Index = Stream.index();
          }
        }
      }
      P = CT.AltTargets[size_t(S.FirstAltTarget) + size_t(Alt) - 1];
      continue;
    }

    switch (AtnTransitionKind(S.TransKind)) {
    case AtnTransitionKind::Epsilon:
    case AtnTransitionKind::SynPred:
      // Syntactic predicates were consulted during prediction; once an
      // alternative is chosen the gate is a no-op.
      P = S.Target;
      break;
    case AtnTransitionKind::Set:
    case AtnTransitionKind::Atom: {
      TokenType La = Stream.LA(1);
      bool IsAtom = S.TransKind == int32_t(AtnTransitionKind::Atom);
      bool Matches = IsAtom ? La == S.Label
                            : (La != TokenEof && CT.setContains(S.SetIndex, La));
      if (!Matches) {
        ColdMatch Act = coldMismatch(P, Parent);
        if (Act == ColdMatch::Unwind)
          return false; // unwind to the rule-level sync
        if (Act == ColdMatch::Inserted) {
          P = S.Target;
          break;
        }
        // DeleteToken dropped the spurious token; fall through to match
        // the one now at the front.
      }
      consumeMatched(Parent);
      P = S.Target;
      break;
    }
    case AtnTransitionKind::Rule:
      if (!callRule(S.CalleeRule, S.Precedence, S.FollowState, Parent))
        return false;
      P = S.FollowState;
      break;
    case AtnTransitionKind::SemPred:
      if (!checkPredicateAt(P))
        return false;
      P = S.Target;
      break;
    case AtnTransitionKind::Action:
      runAction(S.ActionIndex);
      P = S.Target;
      break;
    }
  }
  return true;
}

CompiledParser::ColdMatch CompiledParser::coldMismatch(int32_t StateId,
                                                       NodeRef Parent) {
  if (speculating() || DeadlineHit)
    return ColdMatch::Unwind;
  const CState &S = CT.States[StateId];
  bool IsAtom = S.TransKind == int32_t(AtnTransitionKind::Atom);
  reportMismatch(IsAtom ? S.Label : TokenInvalid);
  if (!canRecover())
    return ColdMatch::Unwind;
  // The repair strategy wants the expected set as an IntervalSet, which
  // the flat tables do not carry — read it back from the source ATN.
  IntervalSet Expected = IsAtom
                             ? IntervalSet::of(S.Label)
                             : AG.atn().state(StateId).Transitions[0].Labels;
  RepairContext Ctx{Stream.LA(1), Stream.LA(2), Expected,
                    viableAfter(S.Target), InsertionsSinceConsume};
  RepairAction Act = strategy().onMismatch(Ctx);
  if (Act == RepairAction::DeleteToken) {
    // The next token matches: the current one is spurious.
    Diags.note(Stream.LT(1).Loc,
               "deleted '" + Stream.LT(1).Text + "' to recover");
    skipTokenAsError(Parent);
    ++Stats.TokensDeleted;
    return ColdMatch::MatchNow;
  }
  if (Act == RepairAction::InsertToken) {
    // Conjure the expected token: the parse continues as if it were
    // present, leaving a zero-width Missing error leaf.
    TokenType Conjured = IsAtom ? S.Label : firstUserToken(Expected);
    Diags.note(Stream.LT(1).Loc,
               "inserted missing " +
                   AG.grammar().vocabulary().name(Conjured) + " to recover");
    addMissingTokenChild(Parent, Conjured);
    ++Stats.TokensInserted;
    ++InsertionsSinceConsume;
    return ColdMatch::Inserted;
  }
  return ColdMatch::Unwind;
}

int32_t CompiledParser::predictAtState(int32_t Decision, int32_t StateId,
                                       NodeRef Parent) {
  int32_t Alt = adaptivePredict(Decision);
  if (Alt < 0) {
    // Panic recovery: drop tokens nobody can accept, then retry the
    // prediction once if the resync token is matchable right here.
    // A second failure unwinds to the rule-level sync in runRule.
    if (!canRecover() || !recoverAtDecision(StateId, Parent))
      return -1;
    Alt = adaptivePredict(Decision);
  }
  return Alt;
}

bool CompiledParser::checkPredicateAt(int32_t StateId) {
  const CState &S = CT.States[StateId];
  if (evalNamedPredicate(S.PredIndex))
    return true;
  if (!speculating()) {
    const AtnPredicate &Pred = AG.atn().predicate(S.PredIndex);
    Diags.error(Stream.LT(1).Loc,
                "rule " + AG.grammar().rule(S.RuleIndex).Name +
                    " failed predicate {" + Pred.Name + "}?");
  }
  return false;
}

NodeRef CompiledParser::addRuleChild(NodeRef Parent, int32_t RuleIndex) {
  NodeRef Node;
  if (Parent.Heap)
    Node.Heap = Parent.Heap->addChild(ParseTree::ruleNode(RuleIndex));
  else if (Parent.InArena)
    Node.InArena = Parent.InArena->addChild(
        ArenaParseTree::ruleNode(*Opts.TreeArena, RuleIndex));
  return Node;
}

void CompiledParser::addTokenChild(NodeRef Parent) {
  if (Parent.Heap)
    Parent.Heap->addChild(ParseTree::tokenNode(Stream.LT(1)));
  else if (Parent.InArena)
    Parent.InArena->addChild(
        ArenaParseTree::tokenNode(*Opts.TreeArena, Stream.index()));
}

void CompiledParser::addErrorTokenChild(NodeRef Parent) {
  if (Parent.Heap)
    Parent.Heap->addChild(
        ParseTree::errorNode(Stream.LT(1), ErrorNodeKind::Skipped));
  else if (Parent.InArena)
    Parent.InArena->addChild(
        ArenaParseTree::errorNode(*Opts.TreeArena, Stream.index()));
}

void CompiledParser::addMissingTokenChild(NodeRef Parent, TokenType Missing) {
  if (Parent.Heap) {
    // Borrow the span of the token at the repair point; the text marks the
    // leaf as synthetic.
    Token Tok = Stream.LT(1);
    Tok.Type = Missing;
    Tok.Text = "<missing " + AG.grammar().vocabulary().name(Missing) + ">";
    Parent.Heap->addChild(
        ParseTree::errorNode(std::move(Tok), ErrorNodeKind::Missing));
  } else if (Parent.InArena) {
    Parent.InArena->addChild(
        ArenaParseTree::missingNode(*Opts.TreeArena, Missing, Stream.index()));
  }
}

void CompiledParser::addMarkerChild(NodeRef Parent) {
  if (Parent.Heap) {
    Token Tok = Stream.LT(1);
    Tok.Type = TokenInvalid;
    Tok.Text.clear();
    Parent.Heap->addChild(
        ParseTree::errorNode(std::move(Tok), ErrorNodeKind::Marker));
  } else if (Parent.InArena) {
    Parent.InArena->addChild(
        ArenaParseTree::markerNode(*Opts.TreeArena, Stream.index()));
  }
}

bool CompiledParser::deadlinePoll() {
  DeadlinePollCountdown = DeadlinePollInterval;
  if (Opts.Deadline == std::chrono::steady_clock::time_point::max() ||
      std::chrono::steady_clock::now() <= Opts.Deadline)
    return true;
  DeadlineHit = true;
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  Diags.error(Stream.LT(1).Loc, "parse deadline exceeded");
  return false;
}

bool CompiledParser::deadlineOkSteps(int64_t Steps) {
  if (DeadlineHit)
    return false;
  if (int64_t(DeadlinePollCountdown) > Steps) {
    DeadlinePollCountdown -= int32_t(Steps);
    return true;
  }
  DeadlinePollCountdown = DeadlinePollInterval;
  if (Opts.Deadline == std::chrono::steady_clock::time_point::max() ||
      std::chrono::steady_clock::now() <= Opts.Deadline)
    return true;
  DeadlineHit = true;
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  Diags.error(Stream.LT(1).Loc, "parse deadline exceeded");
  return false;
}

//===----------------------------------------------------------------------===//
// Prediction
//===----------------------------------------------------------------------===//

int32_t CompiledParser::adaptivePredict(int32_t Decision) {
  if (Native && Native[Decision]) {
    // Generated switch predictor: only emitted for predicate-free DFAs, so
    // the walk is deterministic and never speculates.
    if (!deadlineOk())
      return -1;
    const std::vector<Token> &Toks = Stream.tokens();
    int64_t Depth = 0;
    int32_t Alt = Native[Decision](Toks.data(), int64_t(Toks.size()),
                                   Stream.index(), Depth);
    if (!deadlineOkSteps(Depth))
      return -1;
    if (Opts.Hooks)
      Opts.Hooks->lookahead(Stream.index() + std::max<int64_t>(Depth, 1));
    if (Opts.CollectStats)
      Stats.Decisions[size_t(Decision)].record(std::max<int64_t>(Depth, 1),
                                               /*Backtracked=*/false, Alt);
    if (Alt < 0 && !speculating() && !DeadlineHit)
      reportNoViableAlt(Decision, Depth);
    return Alt;
  }

  const CDecision &D = CT.Decisions[Decision];
  const int32_t MetaBase = D.MetaBase;
  int32_t S = 0;
  int64_t Depth = 0;
  int64_t StartIndex = Stream.index();
  bool Backtracked = false;

  auto Record = [&](int64_t UsedK, int32_t Alt) {
    // The reuse subscriber needs every decision's lookahead extent, stats
    // on or off, speculative or not (StartIndex + max(K,1) inclusively
    // over-approximates the deepest token examined by at most one).
    if (Opts.Hooks)
      Opts.Hooks->lookahead(StartIndex + std::max<int64_t>(UsedK, 1));
    if (!Opts.CollectStats)
      return;
    Stats.Decisions[size_t(Decision)].record(std::max<int64_t>(UsedK, 1),
                                             Backtracked, Alt);
  };

  while (true) {
    if (!deadlineOk())
      return -1;
    int32_t Accept = CT.DfaAccept[size_t(MetaBase) + size_t(S)];
    if (Accept > 0) {
      Record(Depth, Accept);
      return Accept;
    }
    TokenType T = Stream.LA(Depth + 1);
    int32_t Next = CT.dfaNext(D, S, T);
    if (Next == S && T == TokenEof)
      Next = -1; // EOF self-loops cannot make progress
    if (Next >= 0) {
      ++Depth;
      S = Next;
      continue;
    }
    // No terminal edge applies: try the predicate edges in alternative
    // order (ordered choice; lower alternatives take precedence).
    int32_t PredFirst = CT.DfaPredFirst[size_t(MetaBase) + size_t(S)];
    int32_t PredCount = CT.DfaPredCount[size_t(MetaBase) + size_t(S)];
    for (int32_t E = 0; E < PredCount; ++E) {
      const CPredEdge &PE = CT.PredEdges[size_t(PredFirst) + size_t(E)];
      int64_t SpecBefore = SpecMaxIndex;
      SpecMaxIndex = StartIndex + Depth;
      bool IsSyn =
          PE.Kind == int32_t(SemanticContext::Kind::SynPredRule) ||
          PE.Kind == int32_t(SemanticContext::Kind::SynPredAlt);
      bool Holds = evalSemanticContext(PE);
      int64_t Reach = SpecMaxIndex - StartIndex;
      SpecMaxIndex = std::max(SpecBefore, SpecMaxIndex);
      if (IsSyn) {
        Backtracked = true;
        Depth = std::max(Depth, Reach);
      }
      if (Holds) {
        Record(Depth, PE.Alt);
        return PE.Alt;
      }
    }
    Record(Depth, /*Alt=*/-1);
    if (!speculating() && !DeadlineHit)
      reportNoViableAlt(Decision, Depth);
    return -1;
  }
}

bool CompiledParser::evalSemanticContext(const CPredEdge &Pred) {
  switch (SemanticContext::Kind(Pred.Kind)) {
  case SemanticContext::Kind::None:
    return true;
  case SemanticContext::Kind::Pred:
    return evalNamedPredicate(Pred.A);
  case SemanticContext::Kind::SynPredRule:
    return evalSynPredRule(Pred.A);
  case SemanticContext::Kind::SynPredAlt:
    return evalSynPredAlt(Pred.A, Pred.B);
  }
  return true;
}

bool CompiledParser::evalNamedPredicate(int32_t PredIndex) {
  const AtnPredicate &P = AG.atn().predicate(PredIndex);
  if (P.isPrecedence()) {
    // Precedence gates read only the invocation's precedence argument,
    // which is part of the reuse key — no poisoning needed.
    int32_t Current = PrecStack.empty() ? 0 : PrecStack.back();
    return Current <= P.MinPrecedence;
  }
  // A named predicate makes the decision depend on ambient semantic state;
  // nodes above this point must not be reused.
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  if (Env)
    if (const SemanticEnv::Predicate *Fn = Env->findPredicate(P.Name))
      return (*Fn)();
  if (ReportedUnbound.insert(P.Name).second)
    Diags.warning("predicate '" + P.Name +
                  "' is not bound in the semantic environment; assuming true");
  return true;
}

bool CompiledParser::evalSynPredRule(int32_t FragmentRule) {
  ++Stats.SynPredEvals;
  int64_t Mark = Stream.index();
  ++SpecDepth;
  bool Ok = runRule(FragmentRule, 0, NodeRef());
  --SpecDepth;
  Stream.seek(Mark);
  return Ok;
}

bool CompiledParser::evalSynPredAlt(int32_t Decision, int32_t Alt) {
  ++Stats.SynPredEvals;
  const CState &S = CT.States[CT.DecisionStates[Decision]];
  assert(Alt >= 1 && Alt <= S.NumAlts && "alternative out of range");
  assert(S.EndState >= 0 && "decision has no end state");
  int64_t Mark = Stream.index();
  ++SpecDepth;
  bool Ok = runStates(CT.AltTargets[size_t(S.FirstAltTarget) + size_t(Alt) - 1],
                      S.EndState, NodeRef());
  --SpecDepth;
  Stream.seek(Mark);
  return Ok;
}

void CompiledParser::runAction(int32_t ActionIndex) {
  // Actions mutate ambient state; conservatively poison even when the
  // action is skipped during speculation (it would run on re-execution).
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  const AtnAction &A = AG.atn().action(ActionIndex);
  if (speculating() && !A.Always)
    return; // mutators are deactivated during speculation (Section 4.3)
  if (Env)
    if (const SemanticEnv::Action *Fn = Env->findAction(A.Name)) {
      (*Fn)();
      return;
    }
  if (ReportedUnbound.insert(A.Name).second)
    Diags.warning("action '" + A.Name +
                  "' is not bound in the semantic environment; skipping");
}

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

void CompiledParser::reportMismatch(TokenType Expected) {
  // Errors (and any recovery that follows) depend on the dynamic follow
  // stack, not just this rule's token window: never reuse across them.
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  ++Stats.SyntaxErrors;
  const Token &T = Stream.LT(1);
  // TokenInvalid marks a token-set mismatch; name the token, not the set.
  Diags.error(T.Loc, "mismatched input '" + T.Text + "' expecting " +
                         (Expected == TokenInvalid
                              ? std::string("a different token")
                              : AG.grammar().vocabulary().name(Expected)));
}

void CompiledParser::reportNoViableAlt(int32_t Decision,
                                       int64_t DepthReached) {
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  ++Stats.SyntaxErrors;
  // Report at the token that killed the DFA walk, not at the decision start
  // (paper Section 4.4).
  const Token &T = Stream.LT(DepthReached + 1);
  const CState &S = CT.States[CT.DecisionStates[Decision]];
  std::string RuleName =
      S.RuleIndex >= 0 ? AG.grammar().rule(S.RuleIndex).Name : "<none>";
  Diags.error(T.Loc, "no viable alternative at input '" + T.Text +
                         "' (rule " + RuleName + ")");
}

//===----------------------------------------------------------------------===//
// Recovery
//===----------------------------------------------------------------------===//

IntervalSet CompiledParser::viableAfter(int32_t State) const {
  const RecoverySets &RS = AG.recovery();
  IntervalSet V = RS.follow(State);
  // While the rule end is reachable without consuming, tokens viable at the
  // pending return sites are viable here too.
  bool Open = RS.reachesEnd(State);
  for (auto It = FollowStack.rbegin(); Open && It != FollowStack.rend();
       ++It) {
    V.addSet(RS.follow(*It));
    Open = RS.reachesEnd(*It);
  }
  if (Open)
    V.add(TokenEof);
  return V;
}

IntervalSet CompiledParser::recoverySet() const {
  const RecoverySets &RS = AG.recovery();
  IntervalSet R;
  for (int32_t F : FollowStack)
    R.addSet(RS.follow(F));
  // EOF always synchronizes; with an empty invocation stack it is the only
  // member, so a top-level sync drains the input.
  R.add(TokenEof);
  return R;
}

void CompiledParser::skipTokenAsError(NodeRef Parent) {
  addErrorTokenChild(Parent);
  Stream.consume();
  InsertionsSinceConsume = 0;
}

void CompiledParser::syncAfterRuleFailure(NodeRef Node) {
  ++Stats.PanicSyncs;
  size_t Skipped = 0;
  // Failing twice at the same position means the recovery set itself is
  // not parsable here; force one token of progress so recovery terminates.
  if (Stream.index() == LastErrorIndex && Stream.LA(1) != TokenEof) {
    skipTokenAsError(Node);
    ++Skipped;
  }
  IntervalSet R = recoverySet();
  while (Stream.LA(1) != TokenEof && !R.contains(Stream.LA(1))) {
    skipTokenAsError(Node);
    ++Skipped;
  }
  LastErrorIndex = Stream.index();
  if (Skipped == 0) {
    // Nothing consumed: leave a zero-width marker so every reported error
    // still has at least one error leaf in the tree.
    addMarkerChild(Node);
  } else {
    Diags.note(Stream.LT(1).Loc,
               "skipped " + std::to_string(Skipped) +
                   (Skipped == 1 ? " token" : " tokens") +
                   " to resynchronize");
  }
}

bool CompiledParser::recoverAtDecision(int32_t State, NodeRef Parent) {
  const RecoverySets &RS = AG.recovery();
  const IntervalSet &Here = RS.follow(State);
  IntervalSet R = recoverySet();
  size_t Skipped = 0;
  while (Stream.LA(1) != TokenEof && !Here.contains(Stream.LA(1)) &&
         !R.contains(Stream.LA(1))) {
    skipTokenAsError(Parent);
    ++Skipped;
  }
  if (Skipped) {
    ++Stats.PanicSyncs;
    Diags.note(Stream.LT(1).Loc,
               "skipped " + std::to_string(Skipped) +
                   (Skipped == 1 ? " token" : " tokens") +
                   " to resynchronize");
  }
  // Retry only when we made progress and landed on a token this decision
  // can start with; otherwise unwind to the rule-level sync.
  return Skipped > 0 && Stream.LA(1) != TokenEof &&
         Here.contains(Stream.LA(1));
}
