#include "compiled/CompiledTables.h"

#include "analysis/AnalyzedGrammar.h"

#include <cassert>
#include <map>

using namespace llstar;
using namespace llstar::compiled;

void CompiledTables::moveFrom(CompiledTables &&O) {
  States = std::move(O.States);
  RuleStarts = std::move(O.RuleStarts);
  RuleStops = std::move(O.RuleStops);
  AltTargets = std::move(O.AltTargets);
  DecisionStates = std::move(O.DecisionStates);
  Decisions = std::move(O.Decisions);
  DfaTrans = std::move(O.DfaTrans);
  DfaAccept = std::move(O.DfaAccept);
  DfaPredFirst = std::move(O.DfaPredFirst);
  DfaPredCount = std::move(O.DfaPredCount);
  PredEdges = std::move(O.PredEdges);
  SetWords = std::move(O.SetWords);
  View = O.View;
  refreshView();
}

void CompiledTables::refreshView() {
  View.States = States.data();
  View.RuleStarts = RuleStarts.data();
  View.RuleStops = RuleStops.data();
  View.AltTargets = AltTargets.data();
  View.DecisionStates = DecisionStates.data();
  View.Decisions = Decisions.data();
  View.DfaTrans = DfaTrans.data();
  View.DfaAccept = DfaAccept.data();
  View.DfaPredFirst = DfaPredFirst.data();
  View.DfaPredCount = DfaPredCount.data();
  View.PredEdges = PredEdges.data();
  View.SetWords = SetWords.data();
  View.NumStates = int32_t(States.size());
  View.NumRules = int32_t(RuleStarts.size());
  View.NumDecisions = int32_t(Decisions.size());
}

CompiledTables CompiledTables::build(const AnalyzedGrammar &AG) {
  const Atn &M = AG.atn();
  CompiledTables T;
  int32_t NumTokens = AG.grammar().vocabulary().maxTokenType();
  T.View.NumTokens = NumTokens;
  int32_t W = T.View.rowWidth();
  T.View.SetWordsPerSet = (W + 63) / 64;

  // Rule start/stop states.
  for (size_t R = 0; R < AG.grammar().numRules(); ++R) {
    T.RuleStarts.push_back(M.ruleStart(int32_t(R)));
    T.RuleStops.push_back(M.ruleStop(int32_t(R)));
  }

  // ATN states. Identical Set labels share one bitset.
  std::map<std::vector<uint64_t>, int32_t> SetPool;
  T.States.resize(M.numStates());
  for (size_t I = 0; I < M.numStates(); ++I) {
    const AtnState &S = M.state(int32_t(I));
    CState &C = T.States[I];
    C.Kind = int32_t(S.Kind);
    C.RuleIndex = S.RuleIndex;
    C.Decision = S.Decision;
    C.EndState = S.EndState;
    if (S.isDecision()) {
      C.FirstAltTarget = int32_t(T.AltTargets.size());
      C.NumAlts = int32_t(S.Transitions.size());
      for (const AtnTransition &Tr : S.Transitions)
        T.AltTargets.push_back(Tr.Target);
      continue;
    }
    if (S.Transitions.empty())
      continue; // rule stop states have no outgoing transition
    assert(S.Transitions.size() == 1 &&
           "non-decision states have exactly one transition");
    const AtnTransition &Tr = S.Transitions[0];
    C.TransKind = int32_t(Tr.Kind);
    C.Target = Tr.Target;
    C.Label = Tr.Label;
    C.CalleeRule = Tr.RuleIndex;
    C.FollowState = Tr.FollowState;
    C.Precedence = Tr.Precedence;
    C.PredIndex = Tr.PredIndex;
    C.ActionIndex = Tr.ActionIndex;
    if (Tr.Kind == AtnTransitionKind::Set) {
      std::vector<uint64_t> Bits(size_t(T.View.SetWordsPerSet), 0);
      for (const Interval &Iv : Tr.Labels.intervals()) {
        int32_t Lo = std::max(Iv.Lo, -1), Hi = std::min(Iv.Hi, NumTokens);
        for (int32_t V = Lo; V <= Hi; ++V) {
          uint32_t Idx = uint32_t(V + 1);
          Bits[Idx >> 6] |= uint64_t(1) << (Idx & 63);
        }
      }
      auto [It, Inserted] =
          SetPool.emplace(std::move(Bits), int32_t(T.SetWords.size()));
      if (Inserted)
        T.SetWords.insert(T.SetWords.end(), It->first.begin(),
                          It->first.end());
      C.SetIndex = It->second;
    }
  }

  // Epsilon-chain fusion: rewrite every jump target to bypass runs of pure
  // epsilon glue (block starts/ends, loop-back plumbing). Those states have
  // no observable effect — no token match, no tree node, no stats — so
  // skipping them statically preserves behavior while removing most of the
  // per-token state walk. Chains stop at decision states, states with
  // effects (matches, rule calls, predicates, actions), rule stops, and
  // decision end states: runStates and evalSynPredAlt use the latter two as
  // loop sentinels, so control must genuinely land on them.
  {
    std::vector<uint8_t> IsStop(M.numStates(), 0);
    for (const CState &C : T.States)
      if (C.EndState >= 0)
        IsStop[size_t(C.EndState)] = 1;
    for (int32_t Stop : T.RuleStops)
      IsStop[size_t(Stop)] = 1;
    auto Fusable = [&](int32_t I) {
      const CState &C = T.States[size_t(I)];
      return !IsStop[size_t(I)] && C.Decision < 0 &&
             C.TransKind == int32_t(AtnTransitionKind::Epsilon);
    };
    std::vector<int32_t> Fused(M.numStates(), -1);
    std::vector<int32_t> Path;
    auto Resolve = [&](int32_t Start) {
      if (Start < 0 || Fused[size_t(Start)] >= 0)
        return Start < 0 ? Start : Fused[size_t(Start)];
      Path.clear();
      int32_t S = Start;
      while (Fusable(S) && Fused[size_t(S)] < 0 &&
             Path.size() < M.numStates()) {
        Path.push_back(S);
        S = T.States[size_t(S)].Target;
      }
      int32_t End = Fused[size_t(S)] >= 0 ? Fused[size_t(S)] : S;
      for (int32_t P : Path)
        Fused[size_t(P)] = End;
      return End;
    };
    for (CState &C : T.States) {
      if (C.Decision >= 0 || C.TransKind < 0)
        continue;
      // Rule transitions resume at FollowState, which recovery also keys
      // follow sets on; it stays unfused (its own Target is, so the chain
      // still collapses to a single hop at runtime).
      if (C.TransKind != int32_t(AtnTransitionKind::Rule))
        C.Target = Resolve(C.Target);
    }
    for (int32_t &A : T.AltTargets)
      A = Resolve(A);
  }

  // Lookahead DFAs: one dense state-major block per decision.
  for (size_t D = 0; D < AG.numDecisions(); ++D) {
    const LookaheadDfa &Dfa = AG.dfa(int32_t(D));
    CDecision CD;
    CD.NumStates = int32_t(Dfa.numStates());
    CD.TransBase = int32_t(T.DfaTrans.size());
    CD.MetaBase = int32_t(T.DfaAccept.size());
    T.DfaTrans.resize(T.DfaTrans.size() +
                          size_t(CD.NumStates) * size_t(W),
                      -1);
    for (int32_t S = 0; S < CD.NumStates; ++S) {
      const DfaState &St = Dfa.state(S);
      T.DfaAccept.push_back(St.PredictedAlt > 0 ? St.PredictedAlt : -1);
      T.DfaPredFirst.push_back(int32_t(T.PredEdges.size()));
      T.DfaPredCount.push_back(int32_t(St.PredEdges.size()));
      for (const DfaPredEdge &E : St.PredEdges) {
        CPredEdge P;
        P.Kind = int32_t(E.Pred.K);
        P.A = E.Pred.A;
        P.B = E.Pred.B;
        P.Alt = E.Alt;
        T.PredEdges.push_back(P);
      }
      int32_t *Row =
          T.DfaTrans.data() + CD.TransBase + size_t(S) * size_t(W);
      for (const DfaEdge &E : St.Edges) {
        int32_t Idx = E.Label + 1;
        if (Idx >= 0 && Idx < W)
          Row[Idx] = E.Target;
      }
    }
    T.Decisions.push_back(CD);
    T.DecisionStates.push_back(M.decisionState(int32_t(D)));
  }

  T.refreshView();
  return T;
}
