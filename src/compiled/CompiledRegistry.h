//===- compiled/CompiledRegistry.h - Compiled-grammar registry --*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conformance-gated registry of ahead-of-time compiled grammar
/// modules. `llstar compile --emit-cpp` turns a grammar into a
/// self-contained C++ module holding the flat dispatch tables of
/// compiled/CompiledTables.h as static data, generated switch predictors
/// for its predicate-free decisions, and the dense lexer byte-DFA; the
/// module registers itself here under the grammar's name plus the FNV-1a
/// hash of its serialized analysis payload.
///
/// The hash is the gate: \ref resolveCompiledTables only serves a module
/// when the payload hash of the grammar just loaded matches the hash the
/// module was generated from. A stale module (grammar edited after the
/// last `--emit-cpp` run) silently falls back to flattening the fresh
/// analysis at load time — same engine, same behavior, only the zero-cost
/// static tables and native predictors are skipped. CI additionally fails
/// the build when regenerating a module produces a diff, so shipped
/// modules cannot go stale unnoticed.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_COMPILED_COMPILEDREGISTRY_H
#define LLSTAR_COMPILED_COMPILEDREGISTRY_H

#include "compiled/CompiledTables.h"

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace llstar {

class AnalyzedGrammar;
class Lexer;

namespace compiled {

/// One generated grammar module: every pointer references static storage
/// inside the generated translation unit, so modules are trivially
/// shareable across threads and live for the whole process.
struct CompiledGrammarModule {
  const char *GrammarName = nullptr;
  /// FNV-1a hash of serializeGrammar() output for the grammar this module
  /// was generated from (see \ref hashPayload).
  uint64_t PayloadHash = 0;

  /// The flat parser tables (static-storage twin of CompiledTables).
  TablesView Tables;
  /// Per decision: generated switch predictor, or null for decisions that
  /// need the table walk (predicated DFAs). Null when none were generated.
  const NativePredictFn *Native = nullptr;
  /// Per rule: generated goto-threaded rule body (every jump target and
  /// token label folded to a constant), or null to fall back to the table
  /// walk. Null when none were generated.
  const NativeRuleFn *Rules = nullptr;

  /// Dense lexer byte-DFA: NumLexStates rows of 256 next-state entries
  /// plus one accept tag per state, and per-tag actions/token types.
  const int32_t *LexNext = nullptr;
  const int32_t *LexAccept = nullptr;
  int32_t NumLexStates = 0;
  const uint8_t *LexActions = nullptr; ///< LexerAction per accept tag
  const int32_t *LexTypes = nullptr;   ///< TokenType per accept tag
  int32_t NumLexTags = 0;
};

/// FNV-1a over \p Bytes; the hash \ref CompiledGrammarModule::PayloadHash
/// is computed with (matches the bundle-container content hash).
uint64_t hashPayload(std::string_view Bytes);

/// Registers \p M (idempotent per grammar name + hash; a new hash for an
/// existing name replaces the older module). \p M must live for the whole
/// process — generated modules pass static-storage objects.
void registerCompiledModule(const CompiledGrammarModule &M);

/// Module registered under \p GrammarName, or null.
const CompiledGrammarModule *findCompiledModule(std::string_view GrammarName);

/// All registered modules (stable registration order).
std::vector<const CompiledGrammarModule *> compiledModules();

/// A resolved set of compiled tables for one grammar: either a registered
/// module whose payload hash matched (zero-cost static tables + native
/// predictors) or a load-time flattening of the analysis.
struct CompiledResolution {
  /// Owns the tables when flattened at load time; null for module hits.
  std::shared_ptr<const CompiledTables> Owned;
  TablesView View;
  const NativePredictFn *Native = nullptr;
  const NativeRuleFn *Rules = nullptr;
  /// The matched module, or null when flattened at load time.
  const CompiledGrammarModule *Module = nullptr;

  bool fromModule() const { return Module != nullptr; }
};

/// Resolves tables for \p AG. \p SerializedPayload is the output of
/// serializeGrammar(AG) (the caller computes it because this library must
/// not depend on the serializer); pass empty to skip the module lookup and
/// always flatten.
CompiledResolution resolveCompiledTables(const AnalyzedGrammar &AG,
                                         std::string_view SerializedPayload);

/// Builds a \ref Lexer from \p M's dense lexer tables (same tables the
/// grammar's LexerSpec compiles to; the payload-hash gate guarantees it).
std::unique_ptr<Lexer> makeModuleLexer(const CompiledGrammarModule &M);

} // namespace compiled
} // namespace llstar

#endif // LLSTAR_COMPILED_COMPILEDREGISTRY_H
