//===- compiled/CompiledTables.h - Dense parser dispatch tables -*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat, cache-friendly table layout behind the compiled parser fast
/// path. LL(*) analysis produces pointer-rich structures (ATN states with
/// transition vectors, lookahead-DFA states with edge lists, IntervalSet
/// labels); the interpreting runtime chases those pointers and scans those
/// lists on every decision. \ref CompiledTables flattens them once into
/// dense arrays:
///
///   - per-decision lookahead DFAs become dense `state x token` next-state
///     tables (one int32 load per lookahead step instead of an edge scan),
///   - Set-transition labels become token-indexed bitsets (one shift+mask
///     instead of an IntervalSet interval scan),
///   - the ATN becomes one flat \ref CState record per state with every
///     transition field inlined (no per-state heap vectors).
///
/// Tokens are indexed as `type + 1`, mapping TokenEof (-1) to row 0 and
/// user types [1, NumTokens] to [2, NumTokens+1]; the row width is
/// NumTokens + 2.
///
/// The same layout has two producers: \ref CompiledTables::build flattens
/// any \ref AnalyzedGrammar at load time, and `llstar compile --emit-cpp`
/// emits the arrays as static data in a self-contained C++ module (see
/// codegen/CompiledModuleEmitter.h). Both feed the engine through the
/// non-owning \ref TablesView, so generated modules and load-time builds
/// run the identical \ref CompiledParser code path.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_COMPILED_COMPILEDTABLES_H
#define LLSTAR_COMPILED_COMPILEDTABLES_H

#include "lexer/Token.h"

#include <cstdint>
#include <vector>

namespace llstar {

class AnalyzedGrammar;
class ArenaParseTree;
class ParseTree;
struct Token;

namespace compiled {

class CompiledParser;

/// A parse-tree attachment point, valid for whichever tree representation
/// the parse was configured with (heap nodes, arena nodes, or neither when
/// tree building is off or the parser is speculating).
struct NodeRef {
  ParseTree *Heap = nullptr;
  ArenaParseTree *InArena = nullptr;
  explicit operator bool() const { return Heap || InArena; }
};

/// Signature of a generated rule body: runs rule's ATN submachine from its
/// start state to its stop state against \p P, attaching children to
/// \p Parent, with every state id, token label, and jump target folded to a
/// constant. Behaviorally identical to CompiledParser::runStates over the
/// same tables — generated bodies call back into the engine's public
/// primitives (consumeMatched, coldMismatch, predictAtState, callRule, ...)
/// for everything observable, so trees, stats, diagnostics, and recovery
/// cannot diverge. Returns false to unwind to the caller's rule-level sync.
using NativeRuleFn = bool (*)(CompiledParser &P, NodeRef Parent);

/// One flattened ATN state: the \ref AtnState fields plus its single
/// non-decision transition (or its decision metadata) inlined. Plain
/// aggregate so generated modules can emit arrays of these statically.
struct CState {
  /// AtnStateKind as int (avoid enum-class header coupling in generated
  /// data); see atn/ATN.h.
  int32_t Kind = 0;
  /// AtnTransitionKind of the single outgoing transition, or -1 for
  /// decision states and rule-stop states.
  int32_t TransKind = -1;
  int32_t RuleIndex = -1;
  /// Decision number, or -1.
  int32_t Decision = -1;
  /// Where a speculated alternative ends (decision states only).
  int32_t EndState = -1;
  /// Single-transition target.
  int32_t Target = -1;
  /// Atom transitions: the token type to match.
  int32_t Label = 0;
  /// Set transitions: word offset of this set's bitset in TablesView::
  /// SetWords, or -1.
  int32_t SetIndex = -1;
  /// Rule transitions: invoked rule / follow state / precedence argument.
  int32_t CalleeRule = -1;
  int32_t FollowState = -1;
  int32_t Precedence = 0;
  /// SemPred / Action transitions.
  int32_t PredIndex = -1;
  int32_t ActionIndex = -1;
  /// Decision states: offset into TablesView::AltTargets and the number of
  /// alternatives (loop decisions: the exit alternative is NumAlts).
  int32_t FirstAltTarget = -1;
  int32_t NumAlts = 0;
};

/// One flattened lookahead-DFA predicate edge, mirroring \ref DfaPredEdge
/// with the SemanticContext inlined (Kind is SemanticContext::Kind as int).
struct CPredEdge {
  int32_t Kind = 0;
  int32_t A = -1;
  int32_t B = -1;
  int32_t Alt = -1;
};

/// Table offsets of one decision's dense lookahead DFA.
struct CDecision {
  int32_t NumStates = 0;
  /// Offset into TablesView::DfaTrans; the decision occupies
  /// NumStates * rowWidth() consecutive entries (state-major).
  int32_t TransBase = 0;
  /// Offset into the per-state metadata arrays (DfaAccept, DfaPredFirst,
  /// DfaPredCount).
  int32_t MetaBase = 0;
};

/// Signature of a generated native predictor for one decision: walks the
/// decision's lookahead DFA over \p Toks starting at \p Pos (LA(1) ==
/// Toks[Pos], clamped to the trailing EOF) and returns the predicted
/// 1-based alternative, or -1 when the walk dies. \p DepthOut receives the
/// number of terminal edges taken (the lookahead depth used, also the
/// depth reached on failure). Generated only for decisions whose DFA has
/// no predicate edges, so the walk is deterministic.
using NativePredictFn = int32_t (*)(const Token *Toks, int64_t NumToks,
                                    int64_t Pos, int64_t &DepthOut);

/// Non-owning view over a complete table set. The engine and the generated
/// modules both speak this; all pointers must outlive the view.
struct TablesView {
  /// Largest token type of the vocabulary; token row width is NumTokens+2.
  int32_t NumTokens = 0;
  int32_t NumStates = 0;
  int32_t NumRules = 0;
  int32_t NumDecisions = 0;
  /// Words per Set-transition bitset: (rowWidth() + 63) / 64.
  int32_t SetWordsPerSet = 0;

  const CState *States = nullptr;
  const int32_t *RuleStarts = nullptr; ///< per rule: start state
  const int32_t *RuleStops = nullptr;  ///< per rule: stop state
  /// Pool of decision-alternative targets (see CState::FirstAltTarget).
  const int32_t *AltTargets = nullptr;
  /// Per decision: ATN decision-state id.
  const int32_t *DecisionStates = nullptr;
  const CDecision *Decisions = nullptr;
  /// Dense lookahead-DFA transitions: next state or -1.
  const int32_t *DfaTrans = nullptr;
  /// Per DFA state: predicted 1-based alternative, or -1.
  const int32_t *DfaAccept = nullptr;
  /// Per DFA state: offset/count into PredEdges.
  const int32_t *DfaPredFirst = nullptr;
  const int32_t *DfaPredCount = nullptr;
  const CPredEdge *PredEdges = nullptr;
  /// Bitset pool for Set transitions, indexed by CState::SetIndex.
  const uint64_t *SetWords = nullptr;

  int32_t rowWidth() const { return NumTokens + 2; }

  /// Token type -> table column. TokenEof (-1) maps to 0; anything outside
  /// the vocabulary clamps to the (always-empty) TokenInvalid column.
  int32_t tokenIndex(TokenType T) const {
    int32_t I = T + 1;
    return I >= 0 && I < rowWidth() ? I : 1;
  }

  /// Membership test for the Set-transition bitset at \p SetIndex.
  bool setContains(int32_t SetIndex, TokenType T) const {
    uint32_t I = uint32_t(tokenIndex(T));
    return (SetWords[size_t(SetIndex) + (I >> 6)] >> (I & 63)) & 1;
  }

  /// Dense next-state lookup for \p DfaState of \p Decision on \p T.
  int32_t dfaNext(const CDecision &D, int32_t DfaState, TokenType T) const {
    return DfaTrans[size_t(D.TransBase) +
                    size_t(DfaState) * size_t(rowWidth()) +
                    size_t(tokenIndex(T))];
  }
};

/// Owning storage for one grammar's flattened tables.
class CompiledTables {
public:
  /// Flattens \p AG. The result references nothing in \p AG; the grammar
  /// object is still needed alongside for names, vocabulary, predicates,
  /// actions, and recovery sets (cold paths).
  static CompiledTables build(const AnalyzedGrammar &AG);

  const TablesView &view() const { return View; }

  /// Pool sizes the view does not carry; the module emitter needs them to
  /// write the arrays out as static data.
  size_t numAltTargets() const { return AltTargets.size(); }
  size_t numDfaTransEntries() const { return DfaTrans.size(); }
  size_t numDfaStatesTotal() const { return DfaAccept.size(); }
  size_t numPredEdges() const { return PredEdges.size(); }
  size_t numSetWords() const { return SetWords.size(); }

  /// Total int32-equivalent table entries (size diagnostics for tools).
  size_t tableEntries() const {
    return States.size() * (sizeof(CState) / sizeof(int32_t)) +
           DfaTrans.size() + DfaAccept.size() * 3 + AltTargets.size() +
           SetWords.size() * 2 + PredEdges.size() * 4;
  }

  CompiledTables(CompiledTables &&O) noexcept { moveFrom(std::move(O)); }
  CompiledTables &operator=(CompiledTables &&O) noexcept {
    moveFrom(std::move(O));
    return *this;
  }
  CompiledTables(const CompiledTables &) = delete;
  CompiledTables &operator=(const CompiledTables &) = delete;

private:
  CompiledTables() = default;
  void moveFrom(CompiledTables &&O);
  void refreshView();

  std::vector<CState> States;
  std::vector<int32_t> RuleStarts, RuleStops;
  std::vector<int32_t> AltTargets;
  std::vector<int32_t> DecisionStates;
  std::vector<CDecision> Decisions;
  std::vector<int32_t> DfaTrans, DfaAccept, DfaPredFirst, DfaPredCount;
  std::vector<CPredEdge> PredEdges;
  std::vector<uint64_t> SetWords;
  TablesView View;
};

} // namespace compiled
} // namespace llstar

#endif // LLSTAR_COMPILED_COMPILEDTABLES_H
