//===- compiled/CompiledParser.h - Dense-table LL(*) parser -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled fast path of the LL(*) runtime: the same parsing algorithm
/// as \ref LLStarParser (paper Section 4), driven by the flat dispatch
/// tables of \ref CompiledTables instead of the pointer-rich analysis
/// structures, and optionally by generated native (switch-dispatch)
/// predictors for predicate-free decisions.
///
/// Behavior is contractually identical to the interpreter: same
/// ParserOptions, same parse trees (heap and arena, byte-identical str()),
/// same diagnostics text and ordering, same error recovery, same
/// ParserStats counters. CompiledConformanceTests enforces this over the
/// fuzz corpus and the recovery golden snapshots; treat any divergence as
/// a bug in this file.
///
/// What is different is dispatch cost only:
///   - adaptivePredict does one dense-table load per lookahead token
///     (or runs a generated switch predictor) instead of scanning edge
///     lists,
///   - Set transitions test a token bitset instead of an IntervalSet,
///   - the ATN walk reads one flat CState record per step instead of
///     chasing per-state transition vectors,
///   - epsilon-loop watermarks live in a small linear-scan array instead
///     of a per-rule-invocation hash map.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_COMPILED_COMPILEDPARSER_H
#define LLSTAR_COMPILED_COMPILEDPARSER_H

#include "compiled/CompiledTables.h"
#include "lexer/TokenStream.h"
#include "recover/ErrorStrategy.h"
#include "runtime/LLStarParser.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace llstar {
namespace compiled {

/// An LL(*) parser over flattened tables. Construct one per parse job;
/// the tables view (and whatever owns it) must outlive the parser.
class CompiledParser {
public:
  /// \p Native, when non-null, holds one generated predictor per decision
  /// (null entries fall back to the dense-table walk); \p NativeRules, when
  /// non-null, one generated body per rule (null entries fall back to the
  /// table-driven state walk). \p Env may be null when the grammar has no
  /// predicates or actions. Reuses the interpreter's \ref ParserOptions so
  /// callers configure both paths identically.
  CompiledParser(const AnalyzedGrammar &AG, const TablesView &Tables,
                 TokenStream &Stream, SemanticEnv *Env,
                 DiagnosticEngine &Diags, ParserOptions Opts,
                 const NativePredictFn *Native = nullptr,
                 const NativeRuleFn *NativeRules = nullptr);

  /// Same contract as LLStarParser::parse.
  std::unique_ptr<ParseTree> parse(const std::string &RuleName = "");

  bool ok() const { return LastParseOk; }
  const ArenaParseTree *arenaTree() const { return ArenaRoot; }
  bool deadlineExpired() const { return DeadlineHit; }
  const ParserStats &stats() const { return Stats; }
  ParserStats &stats() { return Stats; }

  //===--------------------------------------------------------------------===//
  // Generated-code interface
  //
  // Everything a generated rule body (NativeRuleFn) needs. runStates is
  // implemented on the same primitives, so both dispatch styles share one
  // source of truth for all observable behavior (trees, stats, diagnostics,
  // recovery). Hot members are inline; cold paths stay out of line.
  //===--------------------------------------------------------------------===//

  /// Outcome of the cold mismatch path (see \ref coldMismatch).
  enum class ColdMatch {
    Unwind,   ///< no repair: return false to the rule-level sync
    MatchNow, ///< a token was deleted; match the token now at the front
    Inserted  ///< the expected token was conjured; skip the match
  };

  /// The cold path behind a failed Atom/Set match at \p StateId: reports
  /// the mismatch and asks the repair strategy for a single-token fix.
  ColdMatch coldMismatch(int32_t StateId, NodeRef Parent);

  /// The hot path after a successful Atom/Set lookahead test: records the
  /// tree child and stats, then consumes the token.
  void consumeMatched(NodeRef Parent) {
    if (Parent && !speculating())
      addTokenChild(Parent);
    if (speculating() && SpecMaxIndex < Stream.index() + 1)
      SpecMaxIndex = Stream.index() + 1;
    Stream.consume();
    ++Stats.TokensConsumed;
    InsertionsSinceConsume = 0;
  }

  /// Predicts at decision \p Decision (ATN state \p StateId), running the
  /// panic-mode resync + one retry on a dead prediction when recovery is
  /// on. Returns the 1-based alternative, or -1 to unwind.
  int32_t predictAtState(int32_t Decision, int32_t StateId, NodeRef Parent);

  /// Invokes rule \p Callee with \p Prec, keeping \p FollowState on the
  /// recovery follow stack for the duration of the call.
  bool callRule(int32_t Callee, int32_t Prec, int32_t FollowState,
                NodeRef Parent) {
    FollowStack.push_back(FollowState);
    bool Ok = runRule(Callee, Prec, Parent);
    FollowStack.pop_back();
    return Ok;
  }

  /// Evaluates the SemPred transition at \p StateId, reporting the failure
  /// (outside speculation) like the interpreter does.
  bool checkPredicateAt(int32_t StateId);

  void runAction(int32_t ActionIndex);

  bool deadlineOk() {
    if (NoDeadline)
      return true; // no deadline configured: the poll can never fail
    if (DeadlineHit)
      return false;
    if (--DeadlinePollCountdown > 0)
      return true;
    return deadlinePoll();
  }

  /// True when a generated body may predict through a direct (inlined)
  /// call to its own predictor and skip the engine's per-decision
  /// bookkeeping: no deadline to poll against and no stats to record, so
  /// the fast path is observably identical to \ref predictAtState on any
  /// successful prediction. Failed predictions must still go through
  /// \ref predictAtState for reporting and recovery.
  bool fastPredict() const { return FastPredictOk; }

  TokenStream &stream() { return Stream; }

private:
  /// Epsilon-loop watermark entry (see runStates); rule bodies hold at
  /// most a handful of loop decisions, so linear scan beats hashing.
  struct LoopMark {
    int32_t State;
    int64_t Index;
  };

  bool runRule(int32_t RuleIndex, int32_t Precedence, NodeRef Parent);
  bool runStates(int32_t From, int32_t Until, NodeRef Parent);
  /// Runs rule \p RuleIndex's body: the generated native body when one
  /// exists, the table-driven state walk otherwise.
  bool runBody(int32_t RuleIndex, NodeRef Node) {
    if (NativeRules && NativeRules[RuleIndex])
      return NativeRules[RuleIndex](*this, Node);
    return runStates(CT.RuleStarts[RuleIndex], CT.RuleStops[RuleIndex], Node);
  }

  NodeRef addRuleChild(NodeRef Parent, int32_t RuleIndex);
  void addTokenChild(NodeRef Parent);
  void addErrorTokenChild(NodeRef Parent);
  void addMissingTokenChild(NodeRef Parent, TokenType Missing);
  void addMarkerChild(NodeRef Parent);

  /// Slow tail of \ref deadlineOk: the countdown expired, check the clock.
  bool deadlinePoll();
  /// Bulk-accounts \p Steps lookahead steps against the deadline poll
  /// countdown after a native predictor ran (the table walk polls once per
  /// step like the interpreter; native predictors poll in one batch).
  bool deadlineOkSteps(int64_t Steps);

  int32_t adaptivePredict(int32_t Decision);

  bool evalSemanticContext(const CPredEdge &Pred);
  bool evalNamedPredicate(int32_t PredIndex);
  bool evalSynPredRule(int32_t FragmentRule);
  bool evalSynPredAlt(int32_t Decision, int32_t Alt);

  bool speculating() const { return SpecDepth > 0; }

  void reportMismatch(TokenType Expected);
  void reportNoViableAlt(int32_t Decision, int64_t DepthReached);

  bool canRecover() const {
    return Opts.Recover && !speculating() && !DeadlineHit;
  }
  ErrorStrategy &strategy() {
    return Opts.Strategy ? *Opts.Strategy : DefaultStrategy;
  }

  IntervalSet viableAfter(int32_t State) const;
  IntervalSet recoverySet() const;
  void skipTokenAsError(NodeRef Parent);
  void syncAfterRuleFailure(NodeRef Node);
  bool recoverAtDecision(int32_t State, NodeRef Parent);

  static uint64_t memoKey(int32_t Rule, int32_t Precedence, int64_t Start) {
    return (uint64_t(uint32_t(Rule)) << 40) ^
           (uint64_t(uint32_t(Precedence)) << 56) ^ uint64_t(Start);
  }

  const AnalyzedGrammar &AG;
  const TablesView &CT;
  TokenStream &Stream;
  SemanticEnv *Env;
  DiagnosticEngine &Diags;
  ParserOptions Opts;
  ParserStats Stats;
  const NativePredictFn *Native;
  const NativeRuleFn *NativeRules;

  ErrorStrategy DefaultStrategy;
  std::vector<int32_t> FollowStack;
  int64_t LastErrorIndex = -1;
  int32_t InsertionsSinceConsume = 0;

  int32_t SpecDepth = 0;
  int64_t SpecMaxIndex = 0;
  std::vector<int32_t> PrecStack;
  std::unordered_map<uint64_t, int64_t> Memo;
  std::unordered_set<std::string> ReportedUnbound;
  bool LastParseOk = false;
  ArenaParseTree *ArenaRoot = nullptr;
  bool NoDeadline = false;
  bool FastPredictOk = false;
  bool DeadlineHit = false;
  int32_t DeadlinePollCountdown = DeadlinePollInterval;
  static constexpr int32_t DeadlinePollInterval = 256;
};

} // namespace compiled
} // namespace llstar

#endif // LLSTAR_COMPILED_COMPILEDPARSER_H
