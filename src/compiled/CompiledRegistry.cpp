#include "compiled/CompiledRegistry.h"

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"

#include <mutex>

using namespace llstar;
using namespace llstar::compiled;

uint64_t llstar::compiled::hashPayload(std::string_view Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {
struct Registry {
  std::mutex Lock;
  std::vector<const CompiledGrammarModule *> Modules;
};

Registry &registry() {
  static Registry R;
  return R;
}
} // namespace

void llstar::compiled::registerCompiledModule(const CompiledGrammarModule &M) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (const CompiledGrammarModule *&Existing : R.Modules) {
    if (std::string_view(Existing->GrammarName) ==
        std::string_view(M.GrammarName)) {
      Existing = &M;
      return;
    }
  }
  R.Modules.push_back(&M);
}

const CompiledGrammarModule *
llstar::compiled::findCompiledModule(std::string_view GrammarName) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (const CompiledGrammarModule *M : R.Modules)
    if (std::string_view(M->GrammarName) == GrammarName)
      return M;
  return nullptr;
}

std::vector<const CompiledGrammarModule *> llstar::compiled::compiledModules() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  return R.Modules;
}

CompiledResolution
llstar::compiled::resolveCompiledTables(const AnalyzedGrammar &AG,
                                        std::string_view SerializedPayload) {
  CompiledResolution Res;
  if (!SerializedPayload.empty()) {
    if (const CompiledGrammarModule *M =
            findCompiledModule(AG.grammar().Name)) {
      if (M->PayloadHash == hashPayload(SerializedPayload)) {
        Res.View = M->Tables;
        Res.Native = M->Native;
        Res.Rules = M->Rules;
        Res.Module = M;
        return Res;
      }
    }
  }
  auto Owned = std::make_shared<CompiledTables>(CompiledTables::build(AG));
  Res.View = Owned->view();
  Res.Owned = std::move(Owned);
  return Res;
}

std::unique_ptr<Lexer>
llstar::compiled::makeModuleLexer(const CompiledGrammarModule &M) {
  std::vector<regex::CharDfaState> States(size_t(M.NumLexStates));
  for (int32_t S = 0; S < M.NumLexStates; ++S) {
    regex::CharDfaState &St = States[size_t(S)];
    const int32_t *Row = M.LexNext + size_t(S) * 256;
    for (int32_t B = 0; B < 256; ++B)
      St.Next[size_t(B)] = Row[B];
    St.AcceptTag = M.LexAccept[S];
  }
  std::vector<LexerAction> Actions(size_t(M.NumLexTags));
  std::vector<TokenType> Types(size_t(M.NumLexTags));
  for (int32_t T = 0; T < M.NumLexTags; ++T) {
    Actions[size_t(T)] = LexerAction(M.LexActions[T]);
    Types[size_t(T)] = TokenType(M.LexTypes[T]);
  }
  return std::make_unique<Lexer>(
      regex::CharDfa::fromTables(std::move(States)), std::move(Actions),
      std::move(Types));
}
