#include "atn/ATNBuilder.h"

#include <cassert>
#include <map>

using namespace llstar;

namespace {

/// Builds ATN submachines per the paper's Figure 7 transformation, with
/// EBNF cycles per Section 5.5.
///
/// Invariants relied upon by the analysis and the interpreter:
///  - every non-decision state has exactly one outgoing transition
///    (rule-stop states have none);
///  - decision-state transitions are plain epsilons, one per alternative,
///    in alternative order (loop decisions: body alternatives first, exit
///    last).
class Builder {
public:
  explicit Builder(const Grammar &G) : G(G), Result(std::make_unique<Atn>(G)) {}

  std::unique_ptr<Atn> run() {
    // Create all rule start/stop states first so rule references can be
    // wired regardless of definition order.
    Result->ruleStarts().resize(G.numRules());
    Result->ruleStops().resize(G.numRules());
    for (size_t R = 0; R < G.numRules(); ++R) {
      Result->ruleStarts()[R] =
          Result->addState(AtnStateKind::RuleStart, int32_t(R));
      Result->ruleStops()[R] =
          Result->addState(AtnStateKind::RuleStop, int32_t(R));
    }
    for (size_t R = 0; R < G.numRules(); ++R)
      buildRule(int32_t(R));

    // Synthetic end-of-input state (see Atn::eofState).
    int32_t Eof = Result->addState(AtnStateKind::Basic, -1);
    AtnTransition EofLoop;
    EofLoop.Kind = AtnTransitionKind::Atom;
    EofLoop.Label = TokenEof;
    EofLoop.Target = Eof;
    Result->state(Eof).Transitions.push_back(EofLoop);
    Result->setEofState(Eof);

    Result->finalize();
    return std::move(Result);
  }

private:
  void addEpsilon(int32_t From, int32_t To) {
    AtnTransition T;
    T.Kind = AtnTransitionKind::Epsilon;
    T.Target = To;
    Result->state(From).Transitions.push_back(T);
  }

  void buildRule(int32_t RuleIndex) {
    const Rule &R = G.rule(RuleIndex);
    int32_t Start = Result->ruleStart(RuleIndex);
    int32_t Stop = Result->ruleStop(RuleIndex);
    Result->state(Start).Loc = R.Loc;
    Result->state(Stop).Loc = R.Loc;
    if (R.Alts.empty()) {
      // Tolerated only for fragments mid-construction; validate() rejects
      // empty ordinary rules earlier.
      addEpsilon(Start, Stop);
      return;
    }
    if (R.Alts.size() > 1) {
      Result->addDecision(Start);
      Result->state(Start).EndState = Stop;
    }
    for (const Alternative &A : R.Alts) {
      int32_t Left = Result->addState(AtnStateKind::Basic, RuleIndex);
      Result->state(Left).Loc = A.Loc.isValid() ? A.Loc : R.Loc;
      addEpsilon(Start, Left);
      int32_t End = buildSequence(A.Elements, Left, RuleIndex);
      addEpsilon(End, Stop);
    }
  }

  /// Chains \p Elements starting at \p From; returns the final state.
  int32_t buildSequence(const std::vector<Element> &Elements, int32_t From,
                        int32_t RuleIndex) {
    int32_t Cur = From;
    for (const Element &E : Elements)
      Cur = buildElement(E, Cur, RuleIndex);
    return Cur;
  }

  int32_t buildElement(const Element &E, int32_t Cur, int32_t RuleIndex) {
    switch (E.Kind) {
    case ElementKind::TokenRef: {
      int32_t Next = Result->addState(AtnStateKind::Basic, RuleIndex);
      Result->state(Next).Loc = E.Loc;
      AtnTransition T;
      T.Kind = AtnTransitionKind::Atom;
      T.Label = E.TokType;
      T.Target = Next;
      Result->state(Cur).Transitions.push_back(T);
      return Next;
    }
    case ElementKind::TokenSet: {
      int32_t Next = Result->addState(AtnStateKind::Basic, RuleIndex);
      Result->state(Next).Loc = E.Loc;
      AtnTransition T;
      T.Kind = AtnTransitionKind::Set;
      // Resolve negation against the final vocabulary; EOF (< 1) is never
      // matched by a set.
      T.Labels = E.Negated
                     ? E.TokSet.complement(TokenMinUserType,
                                           G.vocabulary().maxTokenType())
                     : E.TokSet;
      T.Target = Next;
      Result->state(Cur).Transitions.push_back(T);
      return Next;
    }
    case ElementKind::RuleRef: {
      int32_t Next = Result->addState(AtnStateKind::Basic, RuleIndex);
      Result->state(Next).Loc = E.Loc;
      AtnTransition T;
      T.Kind = AtnTransitionKind::Rule;
      T.RuleIndex = E.RuleIndex;
      T.Target = Result->ruleStart(E.RuleIndex);
      T.FollowState = Next;
      T.Precedence = E.Precedence;
      Result->state(Cur).Transitions.push_back(T);
      return Next;
    }
    case ElementKind::SemPred: {
      int32_t Next = Result->addState(AtnStateKind::Basic, RuleIndex);
      Result->state(Next).Loc = E.Loc;
      AtnTransition T;
      T.Kind = AtnTransitionKind::SemPred;
      T.PredIndex = internPredicate(E);
      T.Target = Next;
      Result->state(Cur).Transitions.push_back(T);
      return Next;
    }
    case ElementKind::SynPred: {
      int32_t Next = Result->addState(AtnStateKind::Basic, RuleIndex);
      Result->state(Next).Loc = E.Loc;
      AtnTransition T;
      T.Kind = AtnTransitionKind::SynPred;
      T.RuleIndex = E.SynPredRule;
      T.Target = Next;
      Result->state(Cur).Transitions.push_back(T);
      return Next;
    }
    case ElementKind::Action: {
      int32_t Next = Result->addState(AtnStateKind::Basic, RuleIndex);
      Result->state(Next).Loc = E.Loc;
      AtnTransition T;
      T.Kind = AtnTransitionKind::Action;
      T.ActionIndex = internAction(E);
      T.Target = Next;
      Result->state(Cur).Transitions.push_back(T);
      return Next;
    }
    case ElementKind::Block:
      return buildBlock(E, Cur, RuleIndex);
    }
    assert(false && "unknown element kind");
    return Cur;
  }

  int32_t buildBlock(const Element &E, int32_t Cur, int32_t RuleIndex) {
    assert(E.Kind == ElementKind::Block);

    // Plain single-alternative groups are pure parentheses: inline them.
    if (E.Repeat == BlockRepeat::None && E.Alts.size() == 1)
      return buildSequence(E.Alts[0].Elements, Cur, RuleIndex);

    switch (E.Repeat) {
    case BlockRepeat::None: {
      int32_t BlockStart = Result->addState(AtnStateKind::BlockStart, RuleIndex);
      int32_t BlockEnd = Result->addState(AtnStateKind::BlockEnd, RuleIndex);
      Result->state(BlockStart).Loc = E.Loc;
      Result->state(BlockEnd).Loc = E.Loc;
      addEpsilon(Cur, BlockStart);
      Result->addDecision(BlockStart);
      Result->state(BlockStart).EndState = BlockEnd;
      for (const Alternative &A : E.Alts) {
        int32_t Left = Result->addState(AtnStateKind::Basic, RuleIndex);
        Result->state(Left).Loc = A.Loc.isValid() ? A.Loc : E.Loc;
        addEpsilon(BlockStart, Left);
        int32_t End = buildSequence(A.Elements, Left, RuleIndex);
        addEpsilon(End, BlockEnd);
      }
      return BlockEnd;
    }
    case BlockRepeat::Optional: {
      int32_t BlockStart = Result->addState(AtnStateKind::BlockStart, RuleIndex);
      int32_t BlockEnd = Result->addState(AtnStateKind::BlockEnd, RuleIndex);
      Result->state(BlockStart).Loc = E.Loc;
      Result->state(BlockEnd).Loc = E.Loc;
      addEpsilon(Cur, BlockStart);
      Result->addDecision(BlockStart);
      Result->state(BlockStart).EndState = BlockEnd;
      for (const Alternative &A : E.Alts) {
        int32_t Left = Result->addState(AtnStateKind::Basic, RuleIndex);
        Result->state(Left).Loc = A.Loc.isValid() ? A.Loc : E.Loc;
        addEpsilon(BlockStart, Left);
        int32_t End = buildSequence(A.Elements, Left, RuleIndex);
        addEpsilon(End, BlockEnd);
      }
      addEpsilon(BlockStart, BlockEnd); // exit = last alternative
      return BlockEnd;
    }
    case BlockRepeat::Star: {
      int32_t Entry = Result->addState(AtnStateKind::StarLoopEntry, RuleIndex);
      int32_t End = Result->addState(AtnStateKind::LoopEnd, RuleIndex);
      Result->state(Entry).Loc = E.Loc;
      Result->state(End).Loc = E.Loc;
      addEpsilon(Cur, Entry);
      Result->addDecision(Entry);
      Result->state(Entry).EndState = Entry; // body alternatives loop back
      for (const Alternative &A : E.Alts) {
        int32_t Left = Result->addState(AtnStateKind::Basic, RuleIndex);
        Result->state(Left).Loc = A.Loc.isValid() ? A.Loc : E.Loc;
        addEpsilon(Entry, Left);
        int32_t AltEnd = buildSequence(A.Elements, Left, RuleIndex);
        addEpsilon(AltEnd, Entry); // loop back
      }
      addEpsilon(Entry, End); // exit = last alternative
      return End;
    }
    case BlockRepeat::Plus: {
      int32_t BodyStart = Result->addState(AtnStateKind::BlockStart, RuleIndex);
      int32_t LoopBack = Result->addState(AtnStateKind::PlusLoopBack, RuleIndex);
      int32_t End = Result->addState(AtnStateKind::LoopEnd, RuleIndex);
      Result->state(BodyStart).Loc = E.Loc;
      Result->state(LoopBack).Loc = E.Loc;
      Result->state(End).Loc = E.Loc;
      addEpsilon(Cur, BodyStart);
      if (E.Alts.size() > 1) {
        Result->addDecision(BodyStart);
        Result->state(BodyStart).EndState = LoopBack;
      }
      for (const Alternative &A : E.Alts) {
        int32_t Left = Result->addState(AtnStateKind::Basic, RuleIndex);
        Result->state(Left).Loc = A.Loc.isValid() ? A.Loc : E.Loc;
        addEpsilon(BodyStart, Left);
        int32_t AltEnd = buildSequence(A.Elements, Left, RuleIndex);
        addEpsilon(AltEnd, LoopBack);
      }
      Result->addDecision(LoopBack);
      Result->state(LoopBack).EndState = LoopBack; // body loops back here
      addEpsilon(LoopBack, BodyStart); // alternative 1: iterate
      addEpsilon(LoopBack, End);       // alternative 2: exit
      return End;
    }
    }
    assert(false && "unknown block repeat");
    return Cur;
  }

  int32_t internPredicate(const Element &E) {
    auto Key = std::make_pair(E.Name, E.MinPrecedence);
    auto It = PredIds.find(Key);
    if (It != PredIds.end())
      return It->second;
    AtnPredicate P;
    P.Name = E.Name;
    P.MinPrecedence = E.MinPrecedence;
    int32_t Id = Result->addPredicate(std::move(P));
    PredIds.emplace(Key, Id);
    return Id;
  }

  int32_t internAction(const Element &E) {
    auto Key = std::make_pair(E.Name, E.AlwaysAction);
    auto It = ActionIds.find(Key);
    if (It != ActionIds.end())
      return It->second;
    AtnAction A;
    A.Name = E.Name;
    A.Always = E.AlwaysAction;
    int32_t Id = Result->addAction(std::move(A));
    ActionIds.emplace(Key, Id);
    return Id;
  }

  const Grammar &G;
  std::unique_ptr<Atn> Result;
  std::map<std::pair<std::string, int32_t>, int32_t> PredIds;
  std::map<std::pair<std::string, bool>, int32_t> ActionIds;
};

} // namespace

std::unique_ptr<Atn> llstar::buildAtn(const Grammar &G) {
  return Builder(G).run();
}
