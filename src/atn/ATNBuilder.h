//===- atn/ATNBuilder.h - Grammar -> ATN transformation ---------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the ATN for a grammar following the transformation of paper
/// Figure 7, extended with cycles for the EBNF operators (Section 5.5).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ATN_ATNBUILDER_H
#define LLSTAR_ATN_ATNBUILDER_H

#include "atn/ATN.h"
#include "grammar/Grammar.h"

#include <memory>

namespace llstar {

/// Builds and finalizes the ATN for \p G. The grammar must outlive the ATN.
std::unique_ptr<Atn> buildAtn(const Grammar &G);

} // namespace llstar

#endif // LLSTAR_ATN_ATNBUILDER_H
