//===- atn/ATN.h - Augmented transition networks ----------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The augmented transition network (ATN) of paper Section 5.1: one
/// submachine per grammar rule, with epsilon, terminal (atom), rule
/// invocation, predicate, and action transitions. EBNF subrules become
/// cycles (Section 5.5). Decision states — rule starts with several
/// alternatives, block starts, and loop entries/back-edges — are numbered;
/// the LL(*) analysis builds one lookahead DFA per decision, and the
/// runtime interpreter consults that DFA whenever it stands on the
/// decision state.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_ATN_ATN_H
#define LLSTAR_ATN_ATN_H

#include "grammar/Grammar.h"
#include "lexer/Token.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llstar {

/// Role of an ATN state; used for diagnostics and interpreter bookkeeping.
enum class AtnStateKind : uint8_t {
  Basic,
  RuleStart,     ///< Entry p_A of a rule submachine.
  RuleStop,      ///< Exit p'_A of a rule submachine.
  BlockStart,    ///< Entry of a (...) subrule.
  BlockEnd,      ///< Merge point of a (...) subrule.
  StarLoopEntry, ///< Decision of a (...)* loop: iterate or exit.
  PlusLoopBack,  ///< Decision after a (...)+ body: iterate or exit.
  LoopEnd,       ///< Exit state of a loop.
};

/// Kind of an ATN transition.
enum class AtnTransitionKind : uint8_t {
  Epsilon,
  Atom,    ///< Consumes one token of type Label.
  Set,     ///< Consumes one token whose type is in Labels (never EOF).
  Rule,    ///< Invokes rule RuleIndex; continues at FollowState on return.
  SemPred, ///< Gated on predicate PredIndex (semantic or precedence).
  SynPred, ///< Gated on a speculative parse of fragment rule RuleIndex.
  Action,  ///< Runs action ActionIndex.
};

/// One ATN transition. Only the fields relevant to its kind are meaningful.
struct AtnTransition {
  AtnTransitionKind Kind = AtnTransitionKind::Epsilon;
  /// Target state. For Rule transitions this is the rule-start state of the
  /// invoked rule; execution continues at FollowState after the rule.
  int32_t Target = -1;

  TokenType Label = TokenInvalid; ///< Atom
  IntervalSet Labels;             ///< Set
  int32_t RuleIndex = -1;         ///< Rule (invoked) or SynPred (fragment)
  int32_t FollowState = -1;       ///< Rule
  /// Rule: precedence argument for calls into precedence-rewritten rules
  /// (0 = unconstrained).
  int32_t Precedence = 0;
  int32_t PredIndex = -1;   ///< SemPred
  int32_t ActionIndex = -1; ///< Action
};

/// A registered semantic predicate: either a named callback or, when
/// MinPrecedence >= 0, a precedence predicate `{prec <= MinPrecedence}?`
/// synthesized by the left-recursion rewrite.
struct AtnPredicate {
  std::string Name;
  int32_t MinPrecedence = -1;

  bool isPrecedence() const { return MinPrecedence >= 0; }
};

/// A registered action (mutator). Always-actions run even while speculating.
struct AtnAction {
  std::string Name;
  bool Always = false;
};

/// One ATN state.
struct AtnState {
  int32_t Id = -1;
  AtnStateKind Kind = AtnStateKind::Basic;
  int32_t RuleIndex = -1;
  /// Source position this state was built from: the rule header for rule
  /// start/stop states, the alternative for per-alternative entry states,
  /// the element for everything else. Lets diagnostics point at the
  /// offending alternative instead of just the rule. Invalid for synthetic
  /// states (EOF, rewritten constructs without a source span).
  SourceLocation Loc;
  /// Decision number, or -1. Decision states own one lookahead DFA each;
  /// their transitions are ordered by alternative number (loop decisions:
  /// body alternatives first, exit last).
  int32_t Decision = -1;
  /// For decision states: where a speculated alternative ends — the rule
  /// stop for rule-start decisions, the block end for subrule decisions,
  /// or the decision state itself for loop decisions (the body loops back).
  /// Used to evaluate auto-inserted PEG-mode syntactic predicates.
  int32_t EndState = -1;
  std::vector<AtnTransition> Transitions;

  bool isDecision() const { return Decision >= 0; }
};

/// The augmented transition network for one grammar.
class Atn {
public:
  explicit Atn(const Grammar &G) : G(&G) {}

  const Grammar &grammar() const { return *G; }

  int32_t addState(AtnStateKind Kind, int32_t RuleIndex) {
    AtnState S;
    S.Id = int32_t(States.size());
    S.Kind = Kind;
    S.RuleIndex = RuleIndex;
    States.push_back(std::move(S));
    return int32_t(States.size()) - 1;
  }

  AtnState &state(int32_t Id) { return States[size_t(Id)]; }
  const AtnState &state(int32_t Id) const { return States[size_t(Id)]; }
  size_t numStates() const { return States.size(); }

  int32_t ruleStart(int32_t Rule) const { return RuleStarts[size_t(Rule)]; }
  int32_t ruleStop(int32_t Rule) const { return RuleStops[size_t(Rule)]; }

  /// Decision -> decision state id.
  const std::vector<int32_t> &decisions() const { return DecisionStates; }
  size_t numDecisions() const { return DecisionStates.size(); }
  int32_t decisionState(int32_t Decision) const {
    return DecisionStates[size_t(Decision)];
  }

  /// Source position of alternative \p Alt (1-based) of \p Decision: the
  /// location of the per-alternative entry state, falling back to the
  /// decision state itself when the alternative has no span of its own.
  SourceLocation decisionAltLoc(int32_t Decision, int32_t Alt) const {
    const AtnState &S = state(decisionState(Decision));
    if (Alt >= 1 && size_t(Alt) <= S.Transitions.size()) {
      const AtnState &Entry = state(S.Transitions[size_t(Alt) - 1].Target);
      if (Entry.Loc.isValid())
        return Entry.Loc;
    }
    return S.Loc;
  }

  /// Source position of \p Decision's decision state, falling back to the
  /// owning rule's header location.
  SourceLocation decisionLoc(int32_t Decision) const {
    const AtnState &S = state(decisionState(Decision));
    if (S.Loc.isValid())
      return S.Loc;
    if (S.RuleIndex >= 0)
      return G->rule(S.RuleIndex).Loc;
    return SourceLocation();
  }

  /// Registers \p S as the next decision; returns the decision number.
  int32_t addDecision(int32_t StateId) {
    States[size_t(StateId)].Decision = int32_t(DecisionStates.size());
    DecisionStates.push_back(StateId);
    return States[size_t(StateId)].Decision;
  }

  int32_t addPredicate(AtnPredicate P) {
    Predicates.push_back(std::move(P));
    return int32_t(Predicates.size()) - 1;
  }
  const AtnPredicate &predicate(int32_t Index) const {
    return Predicates[size_t(Index)];
  }
  size_t numPredicates() const { return Predicates.size(); }

  int32_t addAction(AtnAction A) {
    Actions.push_back(std::move(A));
    return int32_t(Actions.size()) - 1;
  }
  const AtnAction &action(int32_t Index) const {
    return Actions[size_t(Index)];
  }

  /// Call sites of \p Rule: (state, transition index) pairs whose transition
  /// invokes it. Used by closure when it reaches a rule stop state with an
  /// empty stack (paper Section 5.2).
  const std::vector<std::pair<int32_t, int32_t>> &
  callSitesOf(int32_t Rule) const {
    return CallSites[size_t(Rule)];
  }

  /// Must be called once after construction; indexes call sites.
  void finalize();

  /// Synthetic state modeling end-of-input: a single Atom(EOF) self-loop.
  /// Closure lands here when a rule with no call sites pops an empty stack,
  /// so "nothing follows" behaves as an endless stream of EOF tokens.
  int32_t eofState() const { return EofState; }
  void setEofState(int32_t Id) { EofState = Id; }

  /// Mutable access for the builder.
  std::vector<int32_t> &ruleStarts() { return RuleStarts; }
  std::vector<int32_t> &ruleStops() { return RuleStops; }

  /// Human-readable dump for debugging and tests.
  std::string str() const;

private:
  const Grammar *G;
  std::vector<AtnState> States;
  std::vector<int32_t> RuleStarts;
  std::vector<int32_t> RuleStops;
  std::vector<int32_t> DecisionStates;
  std::vector<AtnPredicate> Predicates;
  std::vector<AtnAction> Actions;
  std::vector<std::vector<std::pair<int32_t, int32_t>>> CallSites;
  int32_t EofState = -1;
};

} // namespace llstar

#endif // LLSTAR_ATN_ATN_H
