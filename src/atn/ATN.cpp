#include "atn/ATN.h"

#include "support/StringUtils.h"

using namespace llstar;

void Atn::finalize() {
  CallSites.assign(G->numRules(), {});
  for (const AtnState &S : States)
    for (size_t T = 0; T < S.Transitions.size(); ++T) {
      const AtnTransition &Tr = S.Transitions[T];
      if (Tr.Kind == AtnTransitionKind::Rule)
        CallSites[size_t(Tr.RuleIndex)].push_back({S.Id, int32_t(T)});
    }
}

static const char *stateKindName(AtnStateKind Kind) {
  switch (Kind) {
  case AtnStateKind::Basic:
    return "basic";
  case AtnStateKind::RuleStart:
    return "ruleStart";
  case AtnStateKind::RuleStop:
    return "ruleStop";
  case AtnStateKind::BlockStart:
    return "blockStart";
  case AtnStateKind::BlockEnd:
    return "blockEnd";
  case AtnStateKind::StarLoopEntry:
    return "starLoopEntry";
  case AtnStateKind::PlusLoopBack:
    return "plusLoopBack";
  case AtnStateKind::LoopEnd:
    return "loopEnd";
  }
  return "?";
}

std::string Atn::str() const {
  std::string Out;
  for (const AtnState &S : States) {
    Out += formatString("s%d [%s, rule %s", S.Id, stateKindName(S.Kind),
                        S.RuleIndex >= 0
                            ? G->rule(S.RuleIndex).Name.c_str()
                            : "<none>");
    if (S.isDecision())
      Out += formatString(", decision %d", S.Decision);
    Out += "]\n";
    for (const AtnTransition &T : S.Transitions) {
      switch (T.Kind) {
      case AtnTransitionKind::Epsilon:
        Out += formatString("  -eps-> s%d\n", T.Target);
        break;
      case AtnTransitionKind::Atom:
        Out += formatString("  -%s-> s%d",
                            G->vocabulary().name(T.Label).c_str(), T.Target);
        Out += "\n";
        break;
      case AtnTransitionKind::Set:
        Out += formatString("  -set%s-> s%d", T.Labels.str().c_str(),
                            T.Target);
        Out += "\n";
        break;
      case AtnTransitionKind::Rule:
        Out += formatString("  -rule(%s)-> s%d follow s%d",
                            G->rule(T.RuleIndex).Name.c_str(), T.Target,
                            T.FollowState);
        if (T.Precedence > 0)
          Out += formatString(" prec %d", T.Precedence);
        Out += "\n";
        break;
      case AtnTransitionKind::SemPred: {
        const AtnPredicate &P = Predicates[size_t(T.PredIndex)];
        if (P.isPrecedence())
          Out += formatString("  -{prec<=%d}?-> s%d\n", P.MinPrecedence,
                              T.Target);
        else
          Out += formatString("  -{%s}?-> s%d\n", P.Name.c_str(), T.Target);
        break;
      }
      case AtnTransitionKind::SynPred:
        Out += formatString("  -(%s)=>-> s%d\n",
                            G->rule(T.RuleIndex).Name.c_str(), T.Target);
        break;
      case AtnTransitionKind::Action: {
        const AtnAction &A = Actions[size_t(T.ActionIndex)];
        Out += formatString("  -%s%s%s-> s%d\n", A.Always ? "{{" : "{",
                            A.Name.c_str(), A.Always ? "}}" : "}", T.Target);
        break;
      }
      }
    }
  }
  return Out;
}
