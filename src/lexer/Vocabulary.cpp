#include "lexer/Vocabulary.h"

#include <cassert>

using namespace llstar;

TokenType Vocabulary::getOrDefine(const std::string &Name, bool Literal) {
  auto It = ByName.find(Name);
  if (It != ByName.end())
    return It->second;
  Names.push_back(Name);
  LiteralFlags.push_back(Literal);
  if (Literal) {
    assert(Name.size() >= 2 && Name.front() == '\'' && Name.back() == '\'' &&
           "literal token names carry their quotes");
    LiteralTexts.push_back(Name.substr(1, Name.size() - 2));
  } else {
    LiteralTexts.push_back("");
  }
  TokenType Type = TokenType(Names.size());
  ByName.emplace(Name, Type);
  return Type;
}

TokenType Vocabulary::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? TokenInvalid : It->second;
}

TokenType Vocabulary::lookupLiteral(const std::string &Text) const {
  return lookup("'" + Text + "'");
}

const std::string &Vocabulary::name(TokenType Type) const {
  static const std::string EofName = "EOF";
  static const std::string InvalidName = "<invalid>";
  if (Type == TokenEof)
    return EofName;
  if (Type < TokenMinUserType || size_t(Type) > Names.size())
    return InvalidName;
  return Names[size_t(Type) - 1];
}

bool Vocabulary::isLiteral(TokenType Type) const {
  if (Type < TokenMinUserType || size_t(Type) > Names.size())
    return false;
  return LiteralFlags[size_t(Type) - 1];
}

const std::string &Vocabulary::literalText(TokenType Type) const {
  static const std::string Empty;
  if (!isLiteral(Type))
    return Empty;
  return LiteralTexts[size_t(Type) - 1];
}
