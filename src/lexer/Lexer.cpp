#include "lexer/Lexer.h"

#include "support/StringUtils.h"

using namespace llstar;

Lexer::Lexer(const LexerSpec &Spec, DiagnosticEngine &Diags) {
  regex::Nfa N;
  for (size_t I = 0; I < Spec.Rules.size(); ++I) {
    const LexerRule &Rule = Spec.Rules[I];
    if (!Rule.Pattern) {
      Diags.error("lexer rule for token type " + std::to_string(Rule.Type) +
                  " has no pattern");
      continue;
    }
    if (Rule.Pattern->matchesEmpty())
      Diags.error("lexer rule for token type " + std::to_string(Rule.Type) +
                  " can match the empty string");
    N.addPattern(*Rule.Pattern, int32_t(I), Rule.Priority);
    Actions.push_back(Rule.Action);
    Types.push_back(Rule.Type);
  }
  Dfa = regex::CharDfa::fromNfa(N).minimized();
}

std::vector<Token> Lexer::tokenize(std::string_view Input,
                                   DiagnosticEngine &Diags,
                                   std::vector<Token> *HiddenOut) const {
  std::vector<Token> Result;
  const std::vector<regex::CharDfaState> &States = Dfa.states();
  size_t Pos = 0;
  uint32_t Line = 1, Column = 0;

  while (Pos < Input.size()) {
    // One fused pass per token: the maximal-munch DFA walk (see
    // CharDfa::matchLongestPrefix) with line/column tracking folded in.
    // The walk may overshoot the last accept before dying, so the
    // position is snapshotted at every accept and restored from the
    // snapshot instead of re-walking the matched bytes.
    int32_t State = 0;
    int32_t Tag = States[0].AcceptTag;
    int64_t BestLen = Tag >= 0 ? 0 : -1;
    uint32_t BestLine = Line, BestCol = Column;
    uint32_t CurLine = Line, CurCol = Column;
    for (size_t I = Pos; I < Input.size(); ++I) {
      State = States[size_t(State)].Next[static_cast<unsigned char>(Input[I])];
      if (State < 0)
        break;
      if (Input[I] == '\n') {
        ++CurLine;
        CurCol = 0;
      } else {
        ++CurCol;
      }
      int32_t Accept = States[size_t(State)].AcceptTag;
      if (Accept >= 0) {
        BestLen = int64_t(I - Pos) + 1;
        Tag = Accept;
        BestLine = CurLine;
        BestCol = CurCol;
      }
    }
    if (BestLen <= 0) {
      Diags.error(SourceLocation(Line, Column),
                  "unrecognized character '" + escapeChar(Input[Pos]) + "'");
      if (Input[Pos] == '\n') {
        ++Line;
        Column = 0;
      } else {
        ++Column;
      }
      ++Pos;
      continue;
    }
    LexerAction Action = Actions[size_t(Tag)];
    if (Action == LexerAction::Emit) {
      Token T(Types[size_t(Tag)],
              std::string(Input.substr(Pos, size_t(BestLen))),
              SourceLocation(Line, Column));
      T.Offset = int64_t(Pos);
      Result.push_back(std::move(T));
    } else if (Action == LexerAction::Hidden && HiddenOut) {
      Token T(Types[size_t(Tag)],
              std::string(Input.substr(Pos, size_t(BestLen))),
              SourceLocation(Line, Column));
      T.Offset = int64_t(Pos);
      T.Channel = TokenChannel::Hidden;
      HiddenOut->push_back(std::move(T));
    }
    // Hidden and Skip tokens are both invisible to the parsers; hidden
    // ones are preserved in HiddenOut for trivia-aware tooling.
    Pos += size_t(BestLen);
    Line = BestLine;
    Column = BestCol;
  }

  Token Eof(TokenEof, "<EOF>", SourceLocation(Line, Column));
  Eof.Offset = int64_t(Input.size());
  Result.push_back(std::move(Eof));
  for (size_t I = 0; I < Result.size(); ++I)
    Result[I].Index = int64_t(I);
  return Result;
}
