#include "lexer/Lexer.h"

#include "support/StringUtils.h"

using namespace llstar;

Lexer::Lexer(const LexerSpec &Spec, DiagnosticEngine &Diags) {
  regex::Nfa N;
  for (size_t I = 0; I < Spec.Rules.size(); ++I) {
    const LexerRule &Rule = Spec.Rules[I];
    if (!Rule.Pattern) {
      Diags.error("lexer rule for token type " + std::to_string(Rule.Type) +
                  " has no pattern");
      continue;
    }
    if (Rule.Pattern->matchesEmpty())
      Diags.error("lexer rule for token type " + std::to_string(Rule.Type) +
                  " can match the empty string");
    N.addPattern(*Rule.Pattern, int32_t(I), Rule.Priority);
    Actions.push_back(Rule.Action);
    Types.push_back(Rule.Type);
  }
  Dfa = regex::CharDfa::fromNfa(N).minimized();
}

std::vector<Token> Lexer::tokenize(std::string_view Input,
                                   DiagnosticEngine &Diags,
                                   std::vector<Token> *HiddenOut) const {
  std::vector<Token> Result;
  size_t Pos = 0;
  uint32_t Line = 1, Column = 0;

  auto Advance = [&](size_t Len) {
    for (size_t I = 0; I < Len; ++I) {
      if (Input[Pos + I] == '\n') {
        ++Line;
        Column = 0;
      } else {
        ++Column;
      }
    }
    Pos += Len;
  };

  while (Pos < Input.size()) {
    int32_t Tag = -1;
    int64_t Len = Dfa.matchLongestPrefix(Input.substr(Pos), Tag);
    if (Len <= 0) {
      Diags.error(SourceLocation(Line, Column),
                  "unrecognized character '" + escapeChar(Input[Pos]) + "'");
      Advance(1);
      continue;
    }
    LexerAction Action = Actions[size_t(Tag)];
    if (Action == LexerAction::Emit) {
      Token T(Types[size_t(Tag)], std::string(Input.substr(Pos, size_t(Len))),
              SourceLocation(Line, Column));
      Result.push_back(std::move(T));
    } else if (Action == LexerAction::Hidden && HiddenOut) {
      Token T(Types[size_t(Tag)], std::string(Input.substr(Pos, size_t(Len))),
              SourceLocation(Line, Column));
      T.Channel = TokenChannel::Hidden;
      HiddenOut->push_back(std::move(T));
    }
    // Hidden and Skip tokens are both invisible to the parsers; hidden
    // ones are preserved in HiddenOut for trivia-aware tooling.
    Advance(size_t(Len));
  }

  Token Eof(TokenEof, "<EOF>", SourceLocation(Line, Column));
  Result.push_back(std::move(Eof));
  for (size_t I = 0; I < Result.size(); ++I)
    Result[I].Index = int64_t(I);
  return Result;
}
