//===- lexer/Lexer.h - DFA-driven tokenizer ---------------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a \ref LexerSpec into a single byte-DFA (via the regex
/// substrate) and tokenizes input text with maximal munch; ties resolve by
/// rule priority. Unrecognized characters produce a diagnostic and are
/// skipped so lexing always terminates.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LEXER_LEXER_H
#define LLSTAR_LEXER_LEXER_H

#include "lexer/LexerSpec.h"
#include "lexer/Token.h"
#include "regex/CharDFA.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace llstar {

/// A compiled tokenizer.
class Lexer {
public:
  /// Compiles \p Spec; reports problems (e.g. a rule matching the empty
  /// string) to \p Diags.
  Lexer(const LexerSpec &Spec, DiagnosticEngine &Diags);

  /// Constructs from precompiled tables (deserialized grammars; see
  /// codegen/Serializer.h).
  Lexer(regex::CharDfa Dfa, std::vector<LexerAction> Actions,
        std::vector<TokenType> Types)
      : Dfa(std::move(Dfa)), Actions(std::move(Actions)),
        Types(std::move(Types)) {}

  /// Tokenizes all of \p Input. The result always ends with an EOF token.
  /// Skipped tokens are dropped. Hidden-channel tokens (whitespace,
  /// comments marked `-> hidden`) are omitted from the parse stream but
  /// collected into \p HiddenOut when provided — the hook tools use to
  /// preserve trivia for reformatting or comment extraction.
  std::vector<Token> tokenize(std::string_view Input, DiagnosticEngine &Diags,
                              std::vector<Token> *HiddenOut = nullptr) const;

  /// Number of DFA states in the compiled automaton (after minimization).
  size_t numDfaStates() const { return Dfa.size(); }

  /// Table access for serialization.
  const regex::CharDfa &dfa() const { return Dfa; }
  const std::vector<LexerAction> &actions() const { return Actions; }
  const std::vector<TokenType> &types() const { return Types; }

private:
  regex::CharDfa Dfa;
  std::vector<LexerAction> Actions; // indexed by rule tag
  std::vector<TokenType> Types;     // indexed by rule tag
};

} // namespace llstar

#endif // LLSTAR_LEXER_LEXER_H
