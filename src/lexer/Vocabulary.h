//===- lexer/Vocabulary.h - Token type names --------------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps token types to symbolic names ("ID") and display names ("'int'").
/// The grammar front end populates one vocabulary per grammar; the lexer,
/// the analysis, and error messages all render token types through it.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LEXER_VOCABULARY_H
#define LLSTAR_LEXER_VOCABULARY_H

#include "lexer/Token.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace llstar {

/// The token vocabulary of one grammar.
class Vocabulary {
public:
  /// Returns the existing type for \p Name or defines a new one.
  /// \p Literal marks types that came from quoted strings in the grammar.
  TokenType getOrDefine(const std::string &Name, bool Literal = false);

  /// Returns the type for \p Name or TokenInvalid if unknown.
  TokenType lookup(const std::string &Name) const;

  /// Returns the type defined for the quoted literal text \p Text
  /// (without quotes), or TokenInvalid.
  TokenType lookupLiteral(const std::string &Text) const;

  /// Symbolic name for \p Type ("ID", "'int'", "EOF", "<invalid>").
  const std::string &name(TokenType Type) const;

  /// True if \p Type was defined from a quoted literal.
  bool isLiteral(TokenType Type) const;

  /// For literal types, the raw text the literal matches (no quotes).
  const std::string &literalText(TokenType Type) const;

  /// Number of defined types; valid types are [1, size()].
  size_t size() const { return Names.size(); }

  /// Largest assigned token type.
  TokenType maxTokenType() const { return TokenType(Names.size()); }

private:
  std::vector<std::string> Names;        // index = type - 1
  std::vector<bool> LiteralFlags;        // parallel to Names
  std::vector<std::string> LiteralTexts; // parallel; empty when not literal
  std::unordered_map<std::string, TokenType> ByName;
};

} // namespace llstar

#endif // LLSTAR_LEXER_VOCABULARY_H
