//===- lexer/TokenStream.h - Buffered token stream --------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A buffered token stream with arbitrary lookahead and mark/rewind, the
/// input interface of LL(*) parsers. Lookahead DFAs scan ahead without
/// consuming; syntactic predicates mark, speculate, and rewind.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LEXER_TOKENSTREAM_H
#define LLSTAR_LEXER_TOKENSTREAM_H

#include "lexer/Token.h"

#include <cassert>
#include <vector>

namespace llstar {

/// A random-access view over a fully lexed token vector.
///
/// The last token must be EOF; LA/LT calls past the end keep returning it.
class TokenStream {
public:
  explicit TokenStream(std::vector<Token> Tokens)
      : Owned(std::move(Tokens)), Toks(&Owned) {
    assert(!Owned.empty() && Owned.back().isEof() &&
           "token stream must end with EOF");
  }

  /// Tag selecting the non-owning constructor.
  struct Borrow {};
  /// A view over a caller-owned vector, which must outlive the stream and
  /// not be resized while any parse is running. The incremental session
  /// parses straight out of its master token vector this way instead of
  /// copying thousands of tokens per edit.
  TokenStream(const std::vector<Token> &Tokens, Borrow) : Toks(&Tokens) {
    assert(!Tokens.empty() && Tokens.back().isEof() &&
           "token stream must end with EOF");
  }

  TokenStream(TokenStream &&O) noexcept
      : Owned(std::move(O.Owned)),
        Toks(O.Toks == &O.Owned ? &Owned : O.Toks), Pos(O.Pos) {}
  TokenStream(const TokenStream &) = delete;
  TokenStream &operator=(const TokenStream &) = delete;
  TokenStream &operator=(TokenStream &&) = delete;

  /// Current position (index of the next token to consume).
  int64_t index() const { return Pos; }

  /// Repositions the stream; used to rewind after speculation.
  void seek(int64_t Index) {
    assert(Index >= 0 && size_t(Index) < Toks->size() && "seek out of range");
    Pos = Index;
  }

  /// Token \p I ahead of the current position; LT(1) is the next token.
  const Token &LT(int64_t I) const { return at(Pos + I - 1); }

  /// Type of the token \p I ahead.
  TokenType LA(int64_t I) const { return LT(I).Type; }

  /// Token at absolute index \p Index (clamped to EOF).
  const Token &at(int64_t Index) const {
    if (Index < 0)
      Index = 0;
    if (size_t(Index) >= Toks->size())
      Index = int64_t(Toks->size()) - 1;
    return (*Toks)[size_t(Index)];
  }

  /// Consumes one token (never moves past EOF).
  void consume() {
    if (size_t(Pos) + 1 < Toks->size())
      ++Pos;
  }

  /// Total number of tokens including EOF.
  int64_t size() const { return int64_t(Toks->size()); }

  const std::vector<Token> &tokens() const { return *Toks; }

private:
  std::vector<Token> Owned;          ///< empty for borrowed streams
  const std::vector<Token> *Toks;    ///< &Owned, or the borrowed vector
  int64_t Pos = 0;
};

} // namespace llstar

#endif // LLSTAR_LEXER_TOKENSTREAM_H
