//===- lexer/LexerSpec.h - Declarative tokenizer definition -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A declarative lexer definition: one regex per token type, plus channel
/// commands. The grammar front end fills a LexerSpec from the lexer rules of
/// a grammar file; \ref Lexer compiles it to a DFA tokenizer.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LEXER_LEXERSPEC_H
#define LLSTAR_LEXER_LEXERSPEC_H

#include "lexer/Token.h"
#include "regex/RegexAST.h"
#include "support/SourceLocation.h"

#include <vector>

namespace llstar {

/// What the lexer does with a matched token.
enum class LexerAction : uint8_t {
  Emit,   ///< Emit on the default channel.
  Hidden, ///< Emit on the hidden channel.
  Skip,   ///< Discard entirely.
};

/// One token-producing rule.
struct LexerRule {
  TokenType Type = TokenInvalid;
  regex::RegexNode::Ptr Pattern;
  LexerAction Action = LexerAction::Emit;
  /// Tie-break priority on equal match length; lower wins. The grammar
  /// front end gives implicit literals ('if', '+') lower numbers than
  /// named rules so keywords beat identifiers.
  int32_t Priority = 0;
  /// Where the rule (or the first reference to the literal) appears in the
  /// grammar source; invalid for rules assembled programmatically.
  SourceLocation Loc;
};

/// The full tokenizer definition for one grammar.
struct LexerSpec {
  std::vector<LexerRule> Rules;

  void addRule(TokenType Type, regex::RegexNode::Ptr Pattern,
               LexerAction Action = LexerAction::Emit, int32_t Priority = 0,
               SourceLocation Loc = SourceLocation()) {
    Rules.push_back({Type, std::move(Pattern), Action, Priority, Loc});
  }
};

} // namespace llstar

#endif // LLSTAR_LEXER_LEXERSPEC_H
