//===- lexer/Token.h - Tokens and token type constants ----------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The token record produced by the lexer and consumed by parsers, plus the
/// distinguished token-type constants.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LEXER_TOKEN_H
#define LLSTAR_LEXER_TOKEN_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <string>

namespace llstar {

/// Token types are small integers assigned by the grammar's vocabulary.
using TokenType = int32_t;

/// End of input. Every token stream ends with exactly one EOF token.
constexpr TokenType TokenEof = -1;
/// Never assigned to a real token; the "no type" sentinel.
constexpr TokenType TokenInvalid = 0;
/// First token type available for user-defined tokens.
constexpr TokenType TokenMinUserType = 1;

/// Which stream a token is visible on.
enum class TokenChannel : uint8_t {
  Default, ///< Visible to the parser.
  Hidden,  ///< Kept in the stream but skipped by parsers (whitespace etc.).
};

/// One lexed token.
struct Token {
  TokenType Type = TokenInvalid;
  std::string Text;
  SourceLocation Loc;
  /// Byte offset of the token's first character in the original input (the
  /// EOF token's offset is the input length). Edit-range mapping in
  /// src/incremental/ relies on this being set uniformly by every lexer
  /// path, interpreted and compiled alike; -1 only for hand-built tokens.
  int64_t Offset = -1;
  /// Index within the (channel-filtered) token stream; set by TokenStream.
  int64_t Index = -1;
  TokenChannel Channel = TokenChannel::Default;

  Token() = default;
  Token(TokenType Type, std::string Text, SourceLocation Loc)
      : Type(Type), Text(std::move(Text)), Loc(Loc) {}

  bool isEof() const { return Type == TokenEof; }
};

} // namespace llstar

#endif // LLSTAR_LEXER_TOKEN_H
