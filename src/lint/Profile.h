//===- lint/Profile.h - Runtime profiles for lint ranking -------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loading and joining of runtime decision profiles for `llstar lint
/// --profile`. A profile is the `decisions` array of any ParserStats JSON
/// the toolkit emits — `llstar parse --stats-json`, `llstar-batch
/// --json-metrics`/`--stats-out`, `llstar-loadgen --stats-out`, or an
/// llstard Stats reply — possibly nested under a `parser` key
/// (ServiceMetrics) or a `stats` key (the profile wrapper). Entries join
/// to the grammar's decisions by stable identity (rule name + ordinal)
/// when the profile carries DecisionKeys, falling back to the raw decision
/// index otherwise. Multiple profiles merge by summing counters, so a
/// fleet of stats files aggregates into one ranking signal.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LINT_PROFILE_H
#define LLSTAR_LINT_PROFILE_H

#include "analysis/AnalyzedGrammar.h"
#include "lint/Lint.h"
#include "runtime/ParserStats.h"

#include <string>
#include <string_view>
#include <vector>

namespace llstar {

/// One profile entry, pre-join: counters plus whatever identity the stats
/// file carried.
struct ProfileEntry {
  int32_t Decision = -1; ///< raw index in the producing run (-1 = absent)
  std::string Rule;      ///< stable identity ("" = index-only profile)
  int32_t DecisionInRule = 0;
  int64_t Events = 0;
  int64_t TotalK = 0;
  int64_t MaxK = 0;
  int64_t BacktrackEvents = 0;
  int64_t BacktrackTotalK = 0;
  std::vector<int64_t> AltEvents;
};

/// An accumulated runtime profile over one grammar.
class LintProfile {
public:
  /// Parses one stats JSON document and merges its decision entries in.
  /// Accepts raw ParserStats JSON, ServiceMetrics JSON (decisions under
  /// "parser"), and the `{"llstarProfile":1,...,"stats":{...}}` wrapper.
  /// Returns false with \p Error set when the text is not JSON or has no
  /// recognizable decisions array.
  bool load(std::string_view JsonText, std::string *Error = nullptr);

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  const std::vector<ProfileEntry> &entries() const { return Entries; }

  /// Total prediction events across all loaded entries.
  int64_t totalEvents() const;

  /// Joins the profile against \p AG's decisions: result[d] points to the
  /// merged entry for decision d, or null when the profile never saw it.
  /// Entries with a rule name join on (rule, decisionInRule); bare
  /// entries join on the decision index.
  std::vector<const ProfileEntry *> joinTo(const AnalyzedGrammar &AG) const;

private:
  void mergeEntry(ProfileEntry E);

  std::vector<ProfileEntry> Entries;
};

/// The ranking score for one profile entry: total lookahead tokens
/// examined, with speculated tokens weighted 10x (backtracking is the
/// paper's expensive case). Null entries score -1.
int64_t hotnessScore(const ProfileEntry *E);

/// Attributes \p P's counters to each finding in \p R that names a
/// decision (HotEvents/HotMaxK/HotBacktracks/HotScore), then re-ranks
/// \p R's findings: severity first, observed cost descending within a
/// severity, the standard (location, id) order as tiebreak. Findings
/// without a decision keep score -1 and sort after profiled ones of the
/// same severity.
void applyProfile(LintResult &R, const LintProfile &P,
                  const AnalyzedGrammar &AG);

} // namespace llstar

#endif // LLSTAR_LINT_PROFILE_H
