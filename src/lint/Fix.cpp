//===- lint/Fix.cpp - Fix generation, verification, application -----------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//

#include "lint/Fix.h"

#include "fuzz/SentenceGen.h"
#include "fuzz/SentenceSampler.h"
#include "grammar/SourceRewriter.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "peg/PackratParser.h"
#include "runtime/LLStarParser.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>

using namespace llstar;

//===----------------------------------------------------------------------===//
// Application
//===----------------------------------------------------------------------===//

std::string llstar::applyFixes(std::string_view Source,
                               const std::vector<const Fix *> &Chosen,
                               std::vector<std::string> *RejectedIds) {
  // Accept fixes first-come-first-served; a fix touching bytes an earlier
  // fix already owns is rejected whole (partial application would not be
  // the repair that was verified).
  std::vector<const FixEdit *> Accepted;
  auto Overlaps = [&](const FixEdit &E) {
    for (const FixEdit *H : Accepted)
      if (E.Begin < H->End && H->Begin < E.End)
        return true;
    return false;
  };
  for (const Fix *F : Chosen) {
    bool Clash = false;
    for (const FixEdit &E : F->Edits)
      if (Overlaps(E)) {
        Clash = true;
        break;
      }
    if (Clash) {
      if (RejectedIds)
        RejectedIds->push_back(F->Id);
      continue;
    }
    for (const FixEdit &E : F->Edits)
      Accepted.push_back(&E);
  }
  std::sort(Accepted.begin(), Accepted.end(),
            [](const FixEdit *A, const FixEdit *B) {
              return A->Begin > B->Begin; // apply back to front
            });
  std::string Out(Source);
  for (const FixEdit *E : Accepted)
    Out.replace(E->Begin, E->End - E->Begin, E->Replacement);
  return Out;
}

std::string llstar::renderFixesText(const std::vector<Fix> &Fixes) {
  std::string Out;
  if (Fixes.empty())
    return Out;
  Out += "fixes:\n";
  for (const Fix &F : Fixes) {
    Out += "  " + F.Id;
    if (F.Verified)
      Out += " [verified]";
    else
      Out += " [unverified: " + (F.VerifyNote.empty()
                                     ? std::string("not checked")
                                     : F.VerifyNote) +
             "]";
    Out += " " + F.Description + '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Unified diff
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string_view> splitLines(std::string_view Text) {
  std::vector<std::string_view> Lines;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos) {
      Lines.push_back(Text.substr(Pos));
      break;
    }
    Lines.push_back(Text.substr(Pos, Eol - Pos));
    Pos = Eol + 1;
  }
  return Lines;
}

} // namespace

std::string llstar::renderUnifiedDiff(std::string_view Before,
                                      std::string_view After,
                                      const std::string &Path) {
  if (Before == After)
    return std::string();
  std::vector<std::string_view> A = splitLines(Before);
  std::vector<std::string_view> B = splitLines(After);
  // Trim the common prefix and suffix; the middle becomes one hunk. Fixes
  // are localized, so this stays readable without a full LCS.
  size_t Pre = 0;
  while (Pre < A.size() && Pre < B.size() && A[Pre] == B[Pre])
    ++Pre;
  size_t Suf = 0;
  while (Suf < A.size() - Pre && Suf < B.size() - Pre &&
         A[A.size() - 1 - Suf] == B[B.size() - 1 - Suf])
    ++Suf;
  size_t CtxPre = Pre >= 2 ? 2 : Pre; // two lines of leading context
  size_t CtxSuf = Suf >= 2 ? 2 : Suf;
  size_t AFrom = Pre - CtxPre, ATo = A.size() - Suf + CtxSuf;
  size_t BFrom = Pre - CtxPre, BTo = B.size() - Suf + CtxSuf;

  std::ostringstream Out;
  Out << "--- a/" << Path << "\n+++ b/" << Path << "\n";
  Out << "@@ -" << (AFrom + 1) << ',' << (ATo - AFrom) << " +" << (BFrom + 1)
      << ',' << (BTo - BFrom) << " @@\n";
  for (size_t I = AFrom; I < Pre; ++I)
    Out << ' ' << A[I] << '\n';
  for (size_t I = Pre; I < A.size() - Suf; ++I)
    Out << '-' << A[I] << '\n';
  for (size_t I = Pre; I < B.size() - Suf; ++I)
    Out << '+' << B[I] << '\n';
  for (size_t I = A.size() - Suf; I < ATo; ++I)
    Out << ' ' << A[I] << '\n';
  return Out.str();
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

namespace {

/// Verdict + rendered tree of parsing one input with one engine.
struct ParseOutcome {
  bool LexOk = false;
  bool Ok = false;
  std::string Tree;
};

ParseOutcome runLL(const AnalyzedGrammar &AG, const std::string &Input) {
  ParseOutcome O;
  DiagnosticEngine LexDiags;
  Lexer L(AG.grammar().lexerSpec(), LexDiags);
  std::vector<Token> Toks = L.tokenize(Input, LexDiags);
  if (LexDiags.hasErrors())
    return O;
  O.LexOk = true;
  TokenStream Stream(std::move(Toks));
  DiagnosticEngine Diags;
  LLStarParser P(AG, Stream, nullptr, Diags, ParserOptions());
  std::unique_ptr<ParseTree> Tree = P.parse("");
  O.Ok = P.ok() && !Diags.hasErrors();
  if (O.Ok && Tree)
    O.Tree = Tree->str(AG.grammar());
  return O;
}

ParseOutcome runPeg(const AnalyzedGrammar &AG, const std::string &Input) {
  ParseOutcome O;
  DiagnosticEngine LexDiags;
  Lexer L(AG.grammar().lexerSpec(), LexDiags);
  std::vector<Token> Toks = L.tokenize(Input, LexDiags);
  if (LexDiags.hasErrors())
    return O;
  O.LexOk = true;
  TokenStream Stream(std::move(Toks));
  DiagnosticEngine Diags;
  PackratParser::Options Opts;
  Opts.BuildTree = true;
  PackratParser P(AG.grammar(), Stream, nullptr, Diags, Opts);
  std::unique_ptr<ParseTree> Tree = P.parse("");
  O.Ok = P.ok() && !Diags.hasErrors();
  if (O.Ok && Tree)
    O.Tree = Tree->str(AG.grammar());
  return O;
}

bool hasPrecedenceRules(const Grammar &G) {
  for (const Rule &R : G.rules())
    if (R.IsPrecedenceRule)
      return true;
  return false;
}

/// The shared verification corpus: SentenceGen seeds plus a deterministic
/// sampler/mutation burst, rendered and deduplicated.
std::vector<std::string> buildCorpus(const AnalyzedGrammar &AG,
                                     const FixOptions &Opts) {
  std::set<std::string> Seen;
  std::vector<std::string> Corpus;
  auto Add = [&](const std::vector<std::string> &Tokens) {
    std::string Text = fuzz::SentenceSampler::render(Tokens);
    if (Seen.insert(Text).second)
      Corpus.push_back(std::move(Text));
  };
  fuzz::SentenceGen Gen(AG);
  for (const std::vector<std::string> &Seed : Gen.seeds(Opts.MaxSeeds))
    Add(Seed);
  fuzz::SentenceSampler Sampler(AG.grammar(), Opts.FuzzSeed);
  for (int I = 0; I < Opts.FuzzIters; ++I) {
    std::vector<std::string> S = Sampler.sample();
    Add(S);
    Add(Sampler.mutate(S));
  }
  return Corpus;
}

/// Runs the full verification pipeline for one fix. Returns "" on
/// success, else the reason verification failed.
std::string verifyFix(const AnalyzedGrammar &AG, std::string_view Source,
                      const Fix &F, const std::vector<std::string> &Corpus,
                      const std::vector<std::string> &ExtraInputs,
                      int32_t OrigWarnings) {
  std::string Fixed = applyFixes(Source, {&F});

  DiagnosticEngine Diags;
  std::unique_ptr<AnalyzedGrammar> FixedAG = analyzeGrammarText(Fixed, Diags);
  if (!FixedAG || Diags.hasErrors())
    return "rewritten grammar failed analysis: " +
           (Diags.empty() ? std::string("no grammar") : Diags.str());

  // The repair must not trade one finding for another: no errors, and no
  // more warnings than the original grammar had.
  LintResult FixedLint = LintEngine().run(*FixedAG, Fixed);
  if (FixedLint.errorCount() > 0)
    return "rewritten grammar has lint errors";
  if (FixedLint.warningCount() > OrigWarnings)
    return "rewritten grammar has new lint warnings";

  bool CompareTrees =
      !hasPrecedenceRules(AG.grammar()) &&
      !hasPrecedenceRules(FixedAG->grammar());
  auto Check = [&](const std::string &Input) -> std::string {
    ParseOutcome Orig = runLL(AG, Input);
    ParseOutcome New = runLL(*FixedAG, Input);
    if (Orig.LexOk != New.LexOk || Orig.Ok != New.Ok)
      return "verdict changed on \"" + Input + "\"";
    if (Orig.Ok && New.Ok && Orig.Tree != New.Tree)
      return "parse tree changed on \"" + Input + "\"";
    // Differential oracle on the rewritten grammar: its LL(*) and packrat
    // engines must agree, so the repair did not introduce an
    // analysis/runtime divergence.
    ParseOutcome Peg = runPeg(*FixedAG, Input);
    if (New.LexOk != Peg.LexOk || New.Ok != Peg.Ok)
      return "LL(*)/packrat verdict divergence on \"" + Input + "\"";
    if (CompareTrees && New.Ok && Peg.Ok && New.Tree != Peg.Tree)
      return "LL(*)/packrat tree divergence on \"" + Input + "\"";
    return std::string();
  };
  for (const std::string &Input : Corpus) {
    std::string Err = Check(Input);
    if (!Err.empty())
      return Err;
  }
  for (const std::string &Input : ExtraInputs) {
    std::string Err = Check(Input);
    if (!Err.empty())
      return Err;
  }
  return std::string();
}

//===----------------------------------------------------------------------===//
// Candidate generation
//===----------------------------------------------------------------------===//

/// The exact string a pure-literal regex matches, or nullopt (mirrors the
/// dead-symbols pass; kept local to avoid a public regex dependency).
std::optional<std::string> literalTextOf(const regex::RegexNode &N) {
  switch (N.kind()) {
  case regex::RegexKind::Epsilon:
    return std::string();
  case regex::RegexKind::CharSet:
    if (N.set().size() != 1)
      return std::nullopt;
    return std::string(1, char(N.set().min()));
  case regex::RegexKind::Concat: {
    std::string Out;
    for (const auto &C : N.children()) {
      auto Part = literalTextOf(*C);
      if (!Part)
        return std::nullopt;
      Out += *Part;
    }
    return Out;
  }
  default:
    return std::nullopt;
  }
}

/// Quotes \p Text as a grammar string literal.
std::string quoteLiteral(const std::string &Text) {
  std::string Out = "'";
  for (char C : Text) {
    switch (C) {
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\'':
      Out += "\\'";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      Out += C;
    }
  }
  Out += '\'';
  return Out;
}

void sortEdits(Fix &F) {
  std::sort(F.Edits.begin(), F.Edits.end(),
            [](const FixEdit &A, const FixEdit &B) { return A.Begin < B.Begin; });
}

/// dead-rule -> delete the rule's source lines.
bool makeDeleteRule(const SourceRewriter &SR, const LintDiagnostic &D,
                    Fix &F) {
  SourceSpan S = SR.ruleSpan(D.RuleName);
  if (!S.valid())
    return false;
  F.Kind = "delete-dead-rule";
  F.Id = F.Kind + ":" + D.RuleName;
  F.Description = "delete unreachable rule '" + D.RuleName + "'";
  F.Edits.push_back({S.Begin, S.End, ""});
  return true;
}

/// dead-token -> delete the lexer rule's source lines. Implicit literal
/// tokens have no standalone rule and produce no fix.
bool makeDeleteToken(const SourceRewriter &SR, const LintDiagnostic &D,
                     Fix &F) {
  SourceSpan S = SR.ruleSpan(D.RuleName);
  if (!S.valid())
    return false;
  F.Kind = "delete-dead-token";
  F.Id = F.Kind + ":" + D.RuleName;
  F.Description = "delete lexer rule " + D.RuleName +
                  "; its token is never referenced by a parser rule";
  F.Edits.push_back({S.Begin, S.End, ""});
  return true;
}

/// synpred-redundant -> delete the `( ... )=>` element. The finding's
/// location is the predicate's '(' (the hoisted fragment rule's Loc).
bool makeRemoveSynpred(const SourceRewriter &SR, const LintDiagnostic &D,
                       Fix &F) {
  SourceSpan S = SR.synPredSpan(D.Loc);
  if (!S.valid())
    return false;
  F.Kind = "remove-synpred";
  F.Id = F.Kind + ":" + std::to_string(D.Loc.Line) + ":" +
         std::to_string(D.Loc.Column);
  F.Description =
      "remove redundant syntactic predicate; the decision is deterministic";
  F.Edits.push_back({S.Begin, S.End, ""});
  return true;
}

/// shadowed-token -> replace parser references with the literal spelling
/// (implicit literals out-prioritize named lexer rules, so the references
/// become matchable again) and delete the shadowed lexer rule.
bool makeInlineShadowedLiteral(const AnalyzedGrammar &AG,
                               const SourceRewriter &SR,
                               const LintDiagnostic &D, Fix &F) {
  const Grammar &G = AG.grammar();
  const LexerRule *LR = nullptr;
  for (const LexerRule &Cand : G.lexerSpec().Rules)
    if (G.vocabulary().name(Cand.Type) == D.RuleName) {
      LR = &Cand;
      break;
    }
  if (!LR || !LR->Pattern)
    return false;
  std::optional<std::string> Text = literalTextOf(*LR->Pattern);
  if (!Text || Text->empty())
    return false;
  SourceSpan RuleS = SR.ruleSpan(D.RuleName);
  if (!RuleS.valid())
    return false;
  std::vector<SourceSpan> Refs = SR.tokenRefSpans(D.RuleName);
  // References inside the deleted rule's own span do not count.
  Refs.erase(std::remove_if(Refs.begin(), Refs.end(),
                            [&](const SourceSpan &S) {
                              return S.Begin >= RuleS.Begin &&
                                     S.End <= RuleS.End;
                            }),
             Refs.end());
  if (Refs.empty())
    return false; // nothing references it; the dead-token fix handles that
  F.Kind = "inline-shadowed-literal";
  F.Id = F.Kind + ":" + D.RuleName;
  F.Description = "inline shadowed token " + D.RuleName + " as " +
                  quoteLiteral(*Text) + " and delete the unmatchable rule";
  for (const SourceSpan &S : Refs)
    F.Edits.push_back({S.Begin, S.End, quoteLiteral(*Text)});
  F.Edits.push_back({RuleS.Begin, RuleS.End, ""});
  return true;
}

/// Profile-driven: reorder a rule's top-level alternatives by descending
/// observed hit count, where the analysis proves order-independence (no
/// resolution events, no predicate edges, no backtracking).
void collectReorderFixes(const AnalyzedGrammar &AG, const LintResult &R,
                         const LintProfile &Profile, const SourceRewriter &SR,
                         std::string_view Source, std::vector<Fix> &Out) {
  const Grammar &G = AG.grammar();
  const Atn &M = AG.atn();
  std::vector<const ProfileEntry *> Joined = Profile.joinTo(AG);
  std::vector<DecisionKey> Keys = AG.decisionKeys();

  for (size_t D = 0; D < Joined.size(); ++D) {
    const ProfileEntry *E = Joined[D];
    if (!E || E->AltEvents.empty())
      continue;
    const AtnState &St = M.state(M.decisionState(int32_t(D)));
    // Only whole-rule alternations: subrule/loop decisions renumber exits
    // and bodies, where source order is load-bearing.
    if (St.Kind != AtnStateKind::RuleStart || St.RuleIndex < 0)
      continue;
    const Rule &Ru = G.rule(St.RuleIndex);
    if (Ru.IsPrecedenceRule || Ru.IsSynPredFragment)
      continue;
    // Order-independence: the subset construction resolved no conflicts
    // (alternatives have disjoint lookahead languages) and prediction
    // never consults predicates or speculates.
    const DecisionReport &Rep = AG.decisionReport(int32_t(D));
    if (!Rep.Resolutions.empty() || Rep.UsedFallback)
      continue;
    const LookaheadDfa &Dfa = AG.dfa(int32_t(D));
    if (Dfa.hasSynPredEdges() || Dfa.hasSemPredEdges() ||
        Dfa.decisionClass() == DecisionClass::Backtrack)
      continue;
    std::vector<SourceSpan> Alts = SR.altSpans(Ru.Name);
    if (Alts.size() != Ru.Alts.size())
      continue;
    bool Rewritable = true;
    for (const SourceSpan &S : Alts)
      Rewritable = Rewritable && S.valid();
    if (!Rewritable)
      continue;

    std::vector<int64_t> Counts(Alts.size(), 0);
    for (size_t A = 0; A < E->AltEvents.size() && A < Counts.size(); ++A)
      Counts[A] = E->AltEvents[A];
    std::vector<size_t> Perm(Alts.size());
    std::iota(Perm.begin(), Perm.end(), 0);
    std::stable_sort(Perm.begin(), Perm.end(), [&](size_t A, size_t B) {
      return Counts[A] > Counts[B];
    });
    bool Identity = true;
    for (size_t I = 0; I < Perm.size(); ++I)
      Identity = Identity && Perm[I] == I;
    if (Identity)
      continue;

    Fix F;
    F.Kind = "reorder-alts";
    F.Id = F.Kind + ":" + Ru.Name + ":" +
           std::to_string(Keys[D].DecisionInRule);
    std::ostringstream Desc;
    Desc << "reorder alternatives of '" << Ru.Name
         << "' by observed hit frequency (";
    for (size_t I = 0; I < Perm.size(); ++I)
      Desc << (I ? ", " : "") << "alt " << (Perm[I] + 1) << ": "
           << Counts[Perm[I]];
    Desc << ")";
    F.Description = Desc.str();
    for (size_t Slot = 0; Slot < Perm.size(); ++Slot) {
      if (Perm[Slot] == Slot)
        continue; // byte-identical; no edit needed
      const SourceSpan &Dst = Alts[Slot];
      const SourceSpan &Src = Alts[Perm[Slot]];
      F.Edits.push_back(
          {Dst.Begin, Dst.End,
           std::string(Source.substr(Src.Begin, Src.length()))});
    }
    // Anchor to a finding at this decision when one exists (budget
    // warnings first; profile notes otherwise) so SARIF can attach the
    // fix to a result.
    for (const char *Want : {"lookahead-budget", "lookahead-profile",
                             "ambiguity"}) {
      for (size_t I = 0; I < R.Diagnostics.size() && F.FindingIndex < 0; ++I)
        if (R.Diagnostics[I].Decision == int32_t(D) &&
            R.Diagnostics[I].Id == Want)
          F.FindingIndex = int32_t(I);
      if (F.FindingIndex >= 0)
        break;
    }
    sortEdits(F);
    Out.push_back(std::move(F));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// computeFixes
//===----------------------------------------------------------------------===//

std::vector<Fix> llstar::computeFixes(const AnalyzedGrammar &AG,
                                      const LintResult &R,
                                      std::string_view Source,
                                      const LintProfile *Profile,
                                      const FixOptions &Opts) {
  std::vector<Fix> Out;
  SourceRewriter SR(Source);
  if (!SR.ok())
    return Out;

  for (size_t I = 0; I < R.Diagnostics.size(); ++I) {
    const LintDiagnostic &D = R.Diagnostics[I];
    Fix F;
    bool Made = false;
    if (D.Id == "dead-rule")
      Made = makeDeleteRule(SR, D, F);
    else if (D.Id == "dead-token")
      Made = makeDeleteToken(SR, D, F);
    else if (D.Id == "synpred-redundant")
      Made = makeRemoveSynpred(SR, D, F);
    else if (D.Id == "shadowed-token")
      Made = makeInlineShadowedLiteral(AG, SR, D, F);
    if (!Made)
      continue;
    F.FindingIndex = int32_t(I);
    sortEdits(F);
    Out.push_back(std::move(F));
  }

  if (Profile && !Profile->empty())
    collectReorderFixes(AG, R, *Profile, SR, Source, Out);

  // Drop duplicate ids (two findings can target the same symbol) keeping
  // the first.
  std::set<std::string> SeenIds;
  Out.erase(std::remove_if(Out.begin(), Out.end(),
                           [&](const Fix &F) {
                             return !SeenIds.insert(F.Id).second;
                           }),
            Out.end());

  if (!Opts.Verify) {
    for (Fix &F : Out)
      F.VerifyNote = "verification skipped";
    return Out;
  }

  std::vector<std::string> Corpus = buildCorpus(AG, Opts);
  LintResult OrigLint = LintEngine().run(AG, Source);
  fuzz::SentenceGen Gen(AG);
  for (Fix &F : Out) {
    // Reorder fixes add per-alternative steering sentences for their
    // decision, so each alternative's behavior is witnessed even when the
    // global seed cap trimmed them.
    std::vector<std::string> Extra;
    if (F.Kind == "reorder-alts") {
      // Steer every decision alternative (bounded by the walker's own
      // budget) so each reordered alternative's behavior is witnessed even
      // when the global seed cap trimmed it.
      for (size_t D = 0; D < AG.numDecisions(); ++D)
        for (int32_t Alt = 1; Alt <= 8; ++Alt) {
          std::vector<std::string> Toks;
          if (Gen.sentenceFor(int32_t(D), Alt, Toks))
            Extra.push_back(fuzz::SentenceSampler::render(Toks));
        }
    }
    std::string Err =
        verifyFix(AG, Source, F, Corpus, Extra, OrigLint.warningCount());
    F.Verified = Err.empty();
    F.VerifyNote = Err;
  }
  return Out;
}
