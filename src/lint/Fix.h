//===- lint/Fix.h - Verified grammar auto-fixes -----------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint auto-fix engine: mechanical source repairs for a subset of
/// lint findings, each expressed as byte-exact replacement regions against
/// the grammar source (the shape SARIF 2.1.0 `fixes` objects want) and
/// gated by a machine verifier before anything is emitted or applied.
///
/// Fix kinds:
///   reorder-alts             reorder a rule's alternatives by observed hit
///                            frequency (profile-driven; only where the DFA
///                            proves order-independence)
///   delete-dead-rule         delete a rule unreachable from the start rule
///   delete-dead-token        delete a lexer rule whose token no parser
///                            rule references
///   remove-synpred           delete a `( ... )=>` predicate on a decision
///                            that is deterministic without it
///   inline-shadowed-literal  replace references to a shadowed literal
///                            token with the literal itself (literals out-
///                            prioritize named rules) and delete the rule
///
/// Verification re-parses the rewritten grammar, re-runs LL(*) analysis
/// and the lint passes (no new errors, no new warnings), then proves
/// behavioral equivalence on the SentenceGen seed corpus plus a
/// differential-fuzz burst: original-grammar LL(*), rewritten-grammar
/// LL(*), and rewritten-grammar packrat must agree on accept/reject for
/// every input, and on the rendered parse tree when all accept. Fixes
/// that fail any step stay suggestion-only: Verified=false, no SARIF
/// `fixes` object, never applied.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LINT_FIX_H
#define LLSTAR_LINT_FIX_H

#include "analysis/AnalyzedGrammar.h"
#include "lint/Lint.h"
#include "lint/Profile.h"

#include <string>
#include <string_view>
#include <vector>

namespace llstar {

/// One replacement region: bytes [Begin, End) of the original source are
/// replaced by \p Replacement (empty = deletion).
struct FixEdit {
  size_t Begin = 0;
  size_t End = 0;
  std::string Replacement;
};

/// One candidate repair.
struct Fix {
  /// Stable id for --fix-id selection, e.g. "delete-dead-rule:helper" or
  /// "reorder-alts:expr:0".
  std::string Id;
  std::string Kind; ///< one of the kinds documented above
  std::string Description;
  /// Index of the finding this fix repairs in LintResult::Diagnostics, or
  /// -1 for fixes not anchored to one finding (profile-driven reorders
  /// when no finding names the decision).
  int32_t FindingIndex = -1;
  std::vector<FixEdit> Edits; ///< disjoint, sorted by Begin
  bool Verified = false;
  /// Why verification failed or was skipped ("" when Verified).
  std::string VerifyNote;
};

/// Verifier knobs.
struct FixOptions {
  bool Verify = true;     ///< run the equivalence verifier (tests disable)
  size_t MaxSeeds = 64;   ///< SentenceGen seed corpus cap
  int FuzzIters = 24;     ///< sampler sentences (each also mutated once)
  uint64_t FuzzSeed = 1;  ///< deterministic burst seed
};

/// Computes candidate fixes for \p R's findings against \p Source (the
/// exact text \p AG was analyzed from), verifies each per \ref FixOptions,
/// and returns them in a deterministic order. \p Profile enables the
/// profile-driven reorder-alts fixes (null = none). Suppressed findings
/// never reach \p R, so suppression blocks their fixes for free.
std::vector<Fix> computeFixes(const AnalyzedGrammar &AG, const LintResult &R,
                              std::string_view Source,
                              const LintProfile *Profile,
                              const FixOptions &Opts = FixOptions());

/// Applies \p Chosen (in order) to \p Source and returns the new text.
/// A fix whose edits overlap an earlier accepted fix's edits is skipped
/// whole; skipped ids are appended to \p RejectedIds when non-null.
std::string applyFixes(std::string_view Source,
                       const std::vector<const Fix *> &Chosen,
                       std::vector<std::string> *RejectedIds = nullptr);

/// Renders a unified diff (---/+++/@@ hunks) between two texts, labeled
/// with \p Path. Empty string when the texts are identical.
std::string renderUnifiedDiff(std::string_view Before, std::string_view After,
                              const std::string &Path);

/// Human-readable fix listing for `lint --fixes` text output: one line per
/// fix with its id, verification status, and description.
std::string renderFixesText(const std::vector<Fix> &Fixes);

} // namespace llstar

#endif // LLSTAR_LINT_FIX_H
