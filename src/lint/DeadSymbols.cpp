//===- lint/DeadSymbols.cpp - Unreachable rules and dead tokens -----------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 2: symbols that cannot contribute to any parse. Three checks:
///
///  - dead-rule: parser rules unreachable from the start rule over rule
///    references (including through blocks and syntactic-predicate
///    fragments);
///  - dead-token: lexer rules that emit a token no parser rule references
///    (hidden/skip rules are exempt — they never reach the parser);
///  - shadowed-token: lexer rules whose pattern is a plain literal that an
///    earlier (higher-priority or earlier-defined) rule already matches, so
///    the rule can never win maximal-munch tie-breaking. Detected
///    precisely, by tokenizing the literal text with the grammar's own
///    compiled lexer and checking which rule wins.
///
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"
#include "lint/Lint.h"

#include <optional>

using namespace llstar;

namespace {

void markReachable(const Grammar &G, int32_t RuleIndex,
                   std::vector<char> &Reach);

void markElement(const Grammar &G, const Element &E, std::vector<char> &Reach) {
  switch (E.Kind) {
  case ElementKind::RuleRef:
    markReachable(G, E.RuleIndex, Reach);
    break;
  case ElementKind::SynPred:
    markReachable(G, E.SynPredRule, Reach);
    break;
  case ElementKind::Block:
    for (const Alternative &A : E.Alts)
      for (const Element &Sub : A.Elements)
        markElement(G, Sub, Reach);
    break;
  default:
    break;
  }
}

void markReachable(const Grammar &G, int32_t RuleIndex,
                   std::vector<char> &Reach) {
  if (RuleIndex < 0 || RuleIndex >= int32_t(G.numRules()) ||
      Reach[size_t(RuleIndex)])
    return;
  Reach[size_t(RuleIndex)] = 1;
  for (const Alternative &A : G.rule(RuleIndex).Alts)
    for (const Element &E : A.Elements)
      markElement(G, E, Reach);
}

void markTokens(const Element &E, TokenType MaxType, std::vector<char> &Used) {
  switch (E.Kind) {
  case ElementKind::TokenRef:
    if (E.TokType >= 1 && E.TokType <= MaxType)
      Used[size_t(E.TokType)] = 1;
    break;
  case ElementKind::TokenSet:
    if (E.Negated) {
      // `~X` and `.` match everything outside the set: every token type is
      // potentially consumed, so none is dead.
      for (TokenType T = 1; T <= MaxType; ++T)
        Used[size_t(T)] = 1;
    } else {
      for (TokenType T = 1; T <= MaxType; ++T)
        if (E.TokSet.contains(T))
          Used[size_t(T)] = 1;
    }
    break;
  case ElementKind::Block:
    for (const Alternative &A : E.Alts)
      for (const Element &Sub : A.Elements)
        markTokens(Sub, MaxType, Used);
    break;
  default:
    break;
  }
}

/// The exact string a pure-literal regex matches, or nullopt when the
/// pattern is anything richer than a concatenation of single characters.
std::optional<std::string> literalTextOf(const regex::RegexNode &N) {
  switch (N.kind()) {
  case regex::RegexKind::Epsilon:
    return std::string();
  case regex::RegexKind::CharSet: {
    if (N.set().size() != 1)
      return std::nullopt;
    return std::string(1, char(N.set().min()));
  }
  case regex::RegexKind::Concat: {
    std::string Out;
    for (const auto &C : N.children()) {
      auto Part = literalTextOf(*C);
      if (!Part)
        return std::nullopt;
      Out += *Part;
    }
    return Out;
  }
  default:
    return std::nullopt;
  }
}

} // namespace

void llstar::lintDeadSymbols(const AnalyzedGrammar &AG, const LintOptions &,
                             std::vector<LintDiagnostic> &Out) {
  const Grammar &G = AG.grammar();

  // --- dead-rule ---------------------------------------------------------
  std::vector<char> Reach(G.numRules(), 0);
  if (G.numRules())
    markReachable(G, G.startRule(), Reach);
  for (int32_t R = 0; R < int32_t(G.numRules()); ++R) {
    const Rule &Rule = G.rule(R);
    // A dead synpred fragment is just its owner's deadness; skip the noise.
    if (Reach[size_t(R)] || Rule.IsSynPredFragment)
      continue;
    LintDiagnostic Diag;
    Diag.Id = "dead-rule";
    Diag.Severity = DiagSeverity::Warning;
    Diag.Loc = Rule.Loc;
    Diag.RuleName = Rule.Name;
    Diag.Message = "rule '" + Rule.Name + "' is unreachable from start rule '" +
                   G.rule(G.startRule()).Name + "'";
    Out.push_back(std::move(Diag));
  }

  // --- dead-token --------------------------------------------------------
  // Used-set over *all* rules, reachable or not: a token referenced only by
  // a dead rule gets one diagnostic (the dead rule), not two.
  TokenType MaxType = G.vocabulary().maxTokenType();
  std::vector<char> Used(size_t(MaxType) + 1, 0);
  for (const Rule &Rule : G.rules())
    for (const Alternative &A : Rule.Alts)
      for (const Element &E : A.Elements)
        markTokens(E, MaxType, Used);
  for (const LexerRule &LR : G.lexerSpec().Rules) {
    if (LR.Action != LexerAction::Emit)
      continue; // hidden/skip rules never reach the parser
    if (LR.Type >= 1 && LR.Type <= MaxType && !Used[size_t(LR.Type)]) {
      LintDiagnostic Diag;
      Diag.Id = "dead-token";
      Diag.Severity = DiagSeverity::Warning;
      Diag.Loc = LR.Loc;
      Diag.RuleName = G.vocabulary().name(LR.Type);
      Diag.Message = "token " + G.vocabulary().name(LR.Type) +
                     " is never used by any parser rule";
      Out.push_back(std::move(Diag));
    }
  }

  // --- shadowed-token ----------------------------------------------------
  // Compile the spec and let maximal munch + priority decide who wins each
  // pure-literal text. Compilation errors (if any) were already reported
  // when the grammar was analyzed; swallow them here.
  DiagnosticEngine Scratch;
  Lexer Compiled(G.lexerSpec(), Scratch);
  for (const LexerRule &LR : G.lexerSpec().Rules) {
    auto Text = LR.Pattern ? literalTextOf(*LR.Pattern) : std::nullopt;
    if (!Text || Text->empty())
      continue;
    DiagnosticEngine TokDiags;
    std::vector<Token> Hidden;
    std::vector<Token> Toks = Compiled.tokenize(*Text, TokDiags, &Hidden);
    // The winning token for this exact text: the first emitted or hidden
    // token. A skip-rule win leaves only EOF in Toks.
    TokenType Winner = TokenInvalid;
    if (!Toks.empty() && Toks.front().Type != TokenEof)
      Winner = Toks.front().Type;
    else if (!Hidden.empty())
      Winner = Hidden.front().Type;
    if (Winner == TokenInvalid || Winner == LR.Type)
      continue;
    LintDiagnostic Diag;
    Diag.Id = "shadowed-token";
    Diag.Severity = DiagSeverity::Warning;
    Diag.Loc = LR.Loc;
    Diag.RuleName = G.vocabulary().name(LR.Type);
    Diag.Message = "lexer rule " + G.vocabulary().name(LR.Type) +
                   " can never match: '" + *Text + "' is matched by rule " +
                   G.vocabulary().name(Winner);
    Out.push_back(std::move(Diag));
  }
}
