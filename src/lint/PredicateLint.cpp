//===- lint/PredicateLint.cpp - Predicate usefulness analysis -------------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 4: predicates that do no predictive work.
///
///  - pred-never-hoisted: a semantic predicate `{p}?` that appears on no
///    lookahead-DFA predicate edge. Hoisting (paper Section 4.2) found no
///    decision whose resolution needs it, so it only runs as a validating
///    predicate during the parse — often a sign the author expected it to
///    disambiguate something.
///  - synpred-redundant: a user-written syntactic predicate `(alpha)=>`
///    whose fragment rule gates no DFA edge. Analysis proved the decision
///    deterministic without speculation, so the predicate only costs
///    (potential) backtracking setup.
///
/// Precedence predicates synthesized by the left-recursion rewrite and
/// PEG-mode auto-backtrack predicates are exempt: the toolkit inserted
/// them, the author cannot remove them.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

using namespace llstar;

void llstar::lintPredicates(const AnalyzedGrammar &AG, const LintOptions &,
                            std::vector<LintDiagnostic> &Out) {
  const Atn &M = AG.atn();
  const Grammar &G = AG.grammar();

  // Which predicate indices / synpred fragments gate some DFA edge?
  std::vector<char> PredHoisted(M.numPredicates(), 0);
  std::vector<char> SynPredUsed(G.numRules(), 0);
  for (size_t D = 0; D < AG.numDecisions(); ++D) {
    const LookaheadDfa &Dfa = AG.dfa(int32_t(D));
    for (size_t S = 0; S < Dfa.numStates(); ++S)
      for (const DfaPredEdge &E : Dfa.state(int32_t(S)).PredEdges) {
        if (E.Pred.K == SemanticContext::Kind::Pred && E.Pred.A >= 0 &&
            E.Pred.A < int32_t(PredHoisted.size()))
          PredHoisted[size_t(E.Pred.A)] = 1;
        else if (E.Pred.K == SemanticContext::Kind::SynPredRule &&
                 E.Pred.A >= 0 && E.Pred.A < int32_t(SynPredUsed.size()))
          SynPredUsed[size_t(E.Pred.A)] = 1;
      }
  }

  // Where does each predicate appear in the grammar? The ATN keeps the
  // element location on the SemPred transition's target state.
  std::vector<SourceLocation> PredLoc(M.numPredicates());
  std::vector<std::string> PredRule(M.numPredicates());
  for (size_t S = 0; S < M.numStates(); ++S) {
    const AtnState &St = M.state(int32_t(S));
    for (const AtnTransition &T : St.Transitions) {
      if (T.Kind != AtnTransitionKind::SemPred || T.PredIndex < 0)
        continue;
      SourceLocation Loc = M.state(T.Target).Loc;
      if (!Loc.isValid())
        Loc = St.Loc;
      if (!PredLoc[size_t(T.PredIndex)].isValid()) {
        PredLoc[size_t(T.PredIndex)] = Loc;
        if (St.RuleIndex >= 0)
          PredRule[size_t(T.PredIndex)] = G.rule(St.RuleIndex).Name;
      }
    }
  }

  for (size_t P = 0; P < M.numPredicates(); ++P) {
    const AtnPredicate &Pred = M.predicate(int32_t(P));
    if (Pred.isPrecedence() || PredHoisted[P])
      continue;
    LintDiagnostic Diag;
    Diag.Id = "pred-never-hoisted";
    Diag.Severity = DiagSeverity::Warning;
    Diag.Loc = PredLoc[P];
    Diag.RuleName = PredRule[P];
    Diag.Message = "semantic predicate '{" + Pred.Name +
                   "}?' never gates a prediction: no decision hoists it (it "
                   "still runs as a validating predicate during the parse)";
    Out.push_back(std::move(Diag));
  }

  for (int32_t R = 0; R < int32_t(G.numRules()); ++R) {
    const Rule &Rule = G.rule(R);
    if (!Rule.IsSynPredFragment || SynPredUsed[size_t(R)])
      continue;
    LintDiagnostic Diag;
    Diag.Id = "synpred-redundant";
    Diag.Severity = DiagSeverity::Warning;
    Diag.Loc = Rule.Loc;
    Diag.RuleName = Rule.Name;
    Diag.Message =
        "syntactic predicate is redundant: the decision it guards is "
        "deterministic without backtracking";
    Out.push_back(std::move(Diag));
  }
}
