//===- lint/SarifWriter.h - SARIF 2.1.0 output ------------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a \ref LintResult as a SARIF 2.1.0 log (the OASIS static-analysis
/// interchange format) so CI systems and code-review UIs can ingest lint
/// findings. One run, one tool (`llstar`), the full rule catalog in the
/// driver's rules array, one result per diagnostic with a physicalLocation
/// region when the finding has a source position; witnesses and hotness
/// travel in the result's property bag. Verified auto-fixes become SARIF
/// `fixes` objects (charOffset/charLength replacements against the grammar
/// artifact) on the result they repair; unverified fixes are never emitted
/// as `fixes` — they stay suggestion-only in the property bag.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LINT_SARIFWRITER_H
#define LLSTAR_LINT_SARIFWRITER_H

#include "lint/Fix.h"
#include "lint/Lint.h"

#include <string>
#include <vector>

namespace llstar {

/// Renders \p R as a complete SARIF 2.1.0 JSON document. \p File becomes
/// the result locations' artifactLocation uri. \p Fixes (may be empty)
/// attaches each *verified* fix with FindingIndex >= 0 to its result as a
/// SARIF fix; unverified fixes surface as a "suggestedFix" property
/// instead.
std::string renderSarif(const LintResult &R, const std::string &File,
                        const std::vector<Fix> &Fixes = {});

} // namespace llstar

#endif // LLSTAR_LINT_SARIFWRITER_H
