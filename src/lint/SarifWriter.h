//===- lint/SarifWriter.h - SARIF 2.1.0 output ------------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a \ref LintResult as a SARIF 2.1.0 log (the OASIS static-analysis
/// interchange format) so CI systems and code-review UIs can ingest lint
/// findings. One run, one tool (`llstar`), the full rule catalog in the
/// driver's rules array, one result per diagnostic with a physicalLocation
/// region when the finding has a source position; witnesses travel in the
/// result's property bag.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LINT_SARIFWRITER_H
#define LLSTAR_LINT_SARIFWRITER_H

#include "lint/Lint.h"

#include <string>

namespace llstar {

/// Renders \p R as a complete SARIF 2.1.0 JSON document. \p File becomes
/// the result locations' artifactLocation uri.
std::string renderSarif(const LintResult &R, const std::string &File);

} // namespace llstar

#endif // LLSTAR_LINT_SARIFWRITER_H
