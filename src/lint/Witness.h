//===- lint/Witness.h - Counterexample extraction ---------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the lookahead-DFA paths recorded by the analyzer's resolution
/// events into witness token sequences for shadowed-alternative and
/// ambiguity diagnostics: the shortest lookahead prefix on which the
/// conflicting alternatives matched the same input and production order
/// picked the winner. Feeding the witness back through the decision's DFA
/// (\ref LookaheadDfa::simulate) reproduces the earlier alternative's win,
/// which is how tests validate every emitted witness.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LINT_WITNESS_H
#define LLSTAR_LINT_WITNESS_H

#include "analysis/DecisionAnalyzer.h"
#include "lexer/Token.h"
#include "lexer/Vocabulary.h"

#include <string>
#include <vector>

namespace llstar {

/// Picks the minimal recorded witness for \p Alt losing in \p Report: the
/// shortest resolution-event path whose losers include \p Alt. Returns the
/// winning alternative and fills \p PathOut, or returns -1 when no event
/// involved \p Alt (PathOut is cleared).
int32_t shadowedAltWitness(const DecisionReport &Report, int32_t Alt,
                           std::vector<TokenType> &PathOut);

/// Display names for a witness sequence ("'a'", "ID", "EOF").
std::vector<std::string> witnessNames(const std::vector<TokenType> &Path,
                                      const Vocabulary &Vocab);

} // namespace llstar

#endif // LLSTAR_LINT_WITNESS_H
