//===- lint/LintEngine.cpp - Pass driver, suppression, rendering ----------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//

#include "lint/Fix.h"
#include "lint/Lint.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

using namespace llstar;

//===----------------------------------------------------------------------===//
// Rule catalog
//===----------------------------------------------------------------------===//

const std::vector<LintRuleInfo> &llstar::lintRuleCatalog() {
  static const std::vector<LintRuleInfo> Catalog = {
      {"shadowed-alt",
       "Alternative can never be matched: production-order ambiguity "
       "resolution always selects an earlier alternative.",
       DiagSeverity::Warning},
      {"ambiguity",
       "Alternatives match the same input; the conflict is resolved in "
       "favor of the earliest alternative.",
       DiagSeverity::Warning},
      {"dead-rule", "Rule is unreachable from the start rule.",
       DiagSeverity::Warning},
      {"dead-token",
       "Token is emitted by the lexer but never referenced by any parser "
       "rule.",
       DiagSeverity::Warning},
      {"shadowed-token",
       "Lexer rule can never produce a token: an earlier rule matches its "
       "text.",
       DiagSeverity::Warning},
      {"lookahead-budget",
       "Decision exceeds the configured lookahead or DFA-size budget.",
       DiagSeverity::Warning},
      {"lookahead-profile",
       "Lookahead classification of a decision: LL(1), LL(k), LL(*) "
       "cyclic, or backtracking.",
       DiagSeverity::Note},
      {"pred-never-hoisted",
       "Semantic predicate never gates a prediction decision; it only "
       "validates during the parse.",
       DiagSeverity::Warning},
      {"synpred-redundant",
       "Syntactic predicate is redundant: the decision is deterministic "
       "without backtracking.",
       DiagSeverity::Warning},
      {"left-recursion",
       "Rule is left-recursive and was rewritten into a precedence loop.",
       DiagSeverity::Note},
      {"non-ll-regular",
       "Full LL(*) analysis aborted for this decision; it uses the "
       "LL(1)-with-predicates fallback.",
       DiagSeverity::Warning},
  };
  return Catalog;
}

int32_t llstar::lintRuleIndex(const std::string &Id) {
  const auto &Catalog = lintRuleCatalog();
  for (size_t I = 0; I < Catalog.size(); ++I)
    if (Id == Catalog[I].Id)
      return int32_t(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// LintDiagnostic rendering
//===----------------------------------------------------------------------===//

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string LintDiagnostic::str() const {
  std::string Result;
  if (Loc.isValid()) {
    Result += Loc.str();
    Result += ": ";
  }
  Result += severityName(Severity);
  Result += ": ";
  Result += Message;
  Result += " [";
  Result += Id;
  Result += ']';
  return Result;
}

//===----------------------------------------------------------------------===//
// Suppression directives
//===----------------------------------------------------------------------===//

namespace {

/// Suppressions harvested from grammar-source comments.
struct SuppressionMap {
  /// Ids suppressed for the whole file ("" = all ids).
  std::set<std::string> File;
  /// Line -> ids suppressed on that line ("" = all ids).
  std::map<uint32_t, std::set<std::string>> Lines;

  bool suppresses(const LintDiagnostic &D) const {
    if (File.count("") || File.count(D.Id))
      return true;
    if (!D.Loc.isValid())
      return false;
    auto It = Lines.find(D.Loc.Line);
    if (It == Lines.end())
      return false;
    return It->second.count("") || It->second.count(D.Id);
  }
};

std::set<std::string> parseIdList(std::string_view Rest) {
  std::set<std::string> Ids;
  std::string Cur;
  for (char C : Rest) {
    if (C == ' ' || C == '\t' || C == ',') {
      if (!Cur.empty())
        Ids.insert(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Ids.insert(Cur);
  if (Ids.empty())
    Ids.insert(""); // bare directive: suppress everything
  return Ids;
}

SuppressionMap scanSuppressions(std::string_view Source) {
  SuppressionMap Map;
  uint32_t Line = 1;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    std::string_view Text = Source.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    // Longest directive name first so "-file"/"-line" are not mistaken for
    // the bare next-line form.
    static constexpr std::string_view FileDir = "llstar-lint-disable-file";
    static constexpr std::string_view LineDir = "llstar-lint-disable-line";
    static constexpr std::string_view NextDir = "llstar-lint-disable";
    size_t At;
    if ((At = Text.find(FileDir)) != std::string_view::npos) {
      for (const std::string &Id : parseIdList(Text.substr(At + FileDir.size())))
        Map.File.insert(Id);
    } else if ((At = Text.find(LineDir)) != std::string_view::npos) {
      auto &Ids = Map.Lines[Line];
      for (const std::string &Id : parseIdList(Text.substr(At + LineDir.size())))
        Ids.insert(Id);
    } else if ((At = Text.find(NextDir)) != std::string_view::npos) {
      auto &Ids = Map.Lines[Line + 1];
      for (const std::string &Id : parseIdList(Text.substr(At + NextDir.size())))
        Ids.insert(Id);
    }
    if (Eol == std::string_view::npos)
      break;
    Pos = Eol + 1;
    ++Line;
  }
  return Map;
}

int severityRank(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Error:
    return 0;
  case DiagSeverity::Warning:
    return 1;
  case DiagSeverity::Note:
    return 2;
  }
  return 3;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

LintResult LintEngine::run(const AnalyzedGrammar &AG,
                           std::string_view Source) const {
  std::vector<LintDiagnostic> All;
  lintShadowedAlts(AG, Opts, All);
  lintDeadSymbols(AG, Opts, All);
  lintLookaheadProfile(AG, Opts, All);
  lintPredicates(AG, Opts, All);
  lintStructure(AG, Opts, All);

  LintResult R;
  SuppressionMap Sup = scanSuppressions(Source);

  // Deterministic order: location (unlocated first), then severity (errors
  // first), then id, decision, alt, message as stable tie-breaks.
  std::stable_sort(All.begin(), All.end(),
                   [](const LintDiagnostic &A, const LintDiagnostic &B) {
                     return std::make_tuple(A.Loc.Line, A.Loc.Column,
                                            severityRank(A.Severity), A.Id,
                                            A.Decision, A.Alt, A.Message) <
                            std::make_tuple(B.Loc.Line, B.Loc.Column,
                                            severityRank(B.Severity), B.Id,
                                            B.Decision, B.Alt, B.Message);
                   });

  std::set<std::tuple<std::string, uint32_t, uint32_t, int32_t, int32_t,
                      std::string>>
      Seen;
  for (LintDiagnostic &D : All) {
    if (Opts.Disabled.count(D.Id) || Sup.suppresses(D)) {
      ++R.NumSuppressed;
      continue;
    }
    auto Key = std::make_tuple(D.Id, D.Loc.Line, D.Loc.Column, D.Decision,
                               D.Alt, D.Message);
    if (!Seen.insert(std::move(Key)).second)
      continue; // duplicate from overlapping passes
    R.Diagnostics.push_back(std::move(D));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Text / JSON renderers
//===----------------------------------------------------------------------===//

std::string llstar::renderLintText(const LintResult &R,
                                   const std::string &File) {
  std::string Out;
  for (const LintDiagnostic &D : R.Diagnostics) {
    if (!File.empty()) {
      Out += File;
      Out += ':';
    }
    Out += D.str();
    Out += '\n';
    if (!D.Witness.empty()) {
      Out += "    witness:";
      for (const std::string &W : D.Witness) {
        Out += ' ';
        Out += W;
      }
      Out += '\n';
    }
    if (D.hasHotness()) {
      Out += "    hotness: events=" + std::to_string(D.HotEvents) +
             " maxK=" + std::to_string(D.HotMaxK) +
             " backtracks=" + std::to_string(D.HotBacktracks) +
             " score=" + std::to_string(D.HotScore) + '\n';
    }
  }
  return Out;
}

std::string llstar::jsonQuote(std::string_view S) {
  std::string Out = "\"";
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        static const char *Hex = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += char(C);
      }
    }
  }
  Out += '"';
  return Out;
}

std::string llstar::renderLintJson(const LintResult &R,
                                   const std::string &File,
                                   const std::vector<Fix> *Fixes) {
  std::ostringstream Out;
  Out << "{\n  \"file\": " << jsonQuote(File) << ",\n  \"diagnostics\": [";
  for (size_t I = 0; I < R.Diagnostics.size(); ++I) {
    const LintDiagnostic &D = R.Diagnostics[I];
    Out << (I ? ",\n    " : "\n    ");
    Out << "{\"id\": " << jsonQuote(D.Id)
        << ", \"severity\": " << jsonQuote(severityName(D.Severity));
    if (D.Loc.isValid())
      Out << ", \"line\": " << D.Loc.Line << ", \"column\": " << D.Loc.Column;
    if (!D.RuleName.empty())
      Out << ", \"rule\": " << jsonQuote(D.RuleName);
    if (D.Decision >= 0)
      Out << ", \"decision\": " << D.Decision;
    if (D.Alt >= 0)
      Out << ", \"alt\": " << D.Alt;
    Out << ", \"message\": " << jsonQuote(D.Message);
    if (!D.Witness.empty()) {
      Out << ", \"witness\": [";
      for (size_t J = 0; J < D.Witness.size(); ++J)
        Out << (J ? ", " : "") << jsonQuote(D.Witness[J]);
      Out << ']';
    }
    if (D.hasHotness())
      Out << ", \"hotness\": {\"events\": " << D.HotEvents
          << ", \"maxK\": " << D.HotMaxK
          << ", \"backtracks\": " << D.HotBacktracks
          << ", \"score\": " << D.HotScore << '}';
    Out << '}';
  }
  Out << (R.Diagnostics.empty() ? "]" : "\n  ]");
  if (Fixes) {
    Out << ",\n  \"fixes\": [";
    for (size_t I = 0; I < Fixes->size(); ++I) {
      const Fix &F = (*Fixes)[I];
      Out << (I ? ",\n    " : "\n    ");
      Out << "{\"id\": " << jsonQuote(F.Id) << ", \"kind\": "
          << jsonQuote(F.Kind) << ", \"description\": "
          << jsonQuote(F.Description)
          << ", \"findingIndex\": " << F.FindingIndex
          << ", \"verified\": " << (F.Verified ? "true" : "false");
      if (!F.VerifyNote.empty())
        Out << ", \"note\": " << jsonQuote(F.VerifyNote);
      Out << ", \"edits\": [";
      for (size_t J = 0; J < F.Edits.size(); ++J)
        Out << (J ? ", " : "") << "{\"charOffset\": " << F.Edits[J].Begin
            << ", \"charLength\": " << (F.Edits[J].End - F.Edits[J].Begin)
            << ", \"insertedContent\": " << jsonQuote(F.Edits[J].Replacement)
            << '}';
      Out << "]}";
    }
    Out << (Fixes->empty() ? "]" : "\n  ]");
  }
  Out << ",\n  \"suppressed\": " << R.NumSuppressed << "\n}\n";
  return Out.str();
}
