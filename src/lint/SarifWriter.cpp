#include "lint/SarifWriter.h"

#include <sstream>

using namespace llstar;

namespace {

/// SARIF levels: error / warning / note.
const char *sarifLevel(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Note:
    return "note";
  }
  return "none";
}

/// One SARIF fix object: a single artifactChange on \p File whose
/// replacements are the fix's byte-exact edits. SARIF wants 0-based
/// charOffset + charLength deletedRegions, which is exactly FixEdit.
void emitFix(std::ostringstream &Out, const Fix &F, const std::string &File) {
  Out << "{\"description\": {\"text\": " << jsonQuote(F.Description)
      << "}, \"artifactChanges\": [{\"artifactLocation\": {\"uri\": "
      << jsonQuote(File) << "}, \"replacements\": [";
  for (size_t I = 0; I < F.Edits.size(); ++I) {
    const FixEdit &E = F.Edits[I];
    Out << (I ? ", " : "") << "{\"deletedRegion\": {\"charOffset\": "
        << E.Begin << ", \"charLength\": " << (E.End - E.Begin) << "}";
    if (!E.Replacement.empty())
      Out << ", \"insertedContent\": {\"text\": " << jsonQuote(E.Replacement)
          << "}";
    Out << "}";
  }
  Out << "]}]}";
}

} // namespace

std::string llstar::renderSarif(const LintResult &R, const std::string &File,
                                const std::vector<Fix> &Fixes) {
  std::ostringstream Out;
  Out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"llstar\",\n"
      << "          \"informationUri\": "
         "\"https://www.antlr.org/papers/LL-star-PLDI11.pdf\",\n"
      << "          \"version\": \"0.4.0\",\n"
      << "          \"rules\": [";
  const auto &Catalog = lintRuleCatalog();
  for (size_t I = 0; I < Catalog.size(); ++I) {
    Out << (I ? ",\n            " : "\n            ");
    Out << "{\"id\": " << jsonQuote(Catalog[I].Id)
        << ", \"shortDescription\": {\"text\": "
        << jsonQuote(Catalog[I].Summary) << "}, "
        << "\"defaultConfiguration\": {\"level\": "
        << jsonQuote(sarifLevel(Catalog[I].DefaultSeverity)) << "}}";
  }
  Out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"columnKind\": \"utf16CodeUnits\",\n"
      << "      \"results\": [";
  for (size_t I = 0; I < R.Diagnostics.size(); ++I) {
    const LintDiagnostic &D = R.Diagnostics[I];
    Out << (I ? ",\n        " : "\n        ");
    Out << "{\n          \"ruleId\": " << jsonQuote(D.Id);
    int32_t RuleIdx = lintRuleIndex(D.Id);
    if (RuleIdx >= 0)
      Out << ",\n          \"ruleIndex\": " << RuleIdx;
    Out << ",\n          \"level\": " << jsonQuote(sarifLevel(D.Severity))
        << ",\n          \"message\": {\"text\": " << jsonQuote(D.Message)
        << "}";
    Out << ",\n          \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": " << jsonQuote(File) << "}";
    if (D.Loc.isValid())
      // SARIF regions are 1-based in both dimensions; our columns are
      // 0-based.
      Out << ", \"region\": {\"startLine\": " << D.Loc.Line
          << ", \"startColumn\": " << (D.Loc.Column + 1) << "}";
    Out << "}}]";

    // Verified fixes anchored to this finding become SARIF fixes;
    // unverified ones stay suggestion-only (surfaced in the property bag).
    const Fix *Suggested = nullptr;
    bool AnyVerified = false;
    for (const Fix &F : Fixes)
      if (F.FindingIndex == int32_t(I)) {
        if (F.Verified)
          AnyVerified = true;
        else if (!Suggested)
          Suggested = &F;
      }
    if (AnyVerified) {
      Out << ",\n          \"fixes\": [";
      bool FirstFix = true;
      for (const Fix &F : Fixes) {
        if (F.FindingIndex != int32_t(I) || !F.Verified)
          continue;
        Out << (FirstFix ? "" : ", ");
        FirstFix = false;
        emitFix(Out, F, File);
      }
      Out << "]";
    }

    bool HasProps = !D.Witness.empty() || D.Decision >= 0 || D.Alt >= 0 ||
                    !D.RuleName.empty() || D.hasHotness() || Suggested;
    if (HasProps) {
      Out << ",\n          \"properties\": {";
      bool First = true;
      auto Sep = [&]() {
        Out << (First ? "" : ", ");
        First = false;
      };
      if (!D.RuleName.empty()) {
        Sep();
        Out << "\"rule\": " << jsonQuote(D.RuleName);
      }
      if (D.Decision >= 0) {
        Sep();
        Out << "\"decision\": " << D.Decision;
      }
      if (D.Alt >= 0) {
        Sep();
        Out << "\"alt\": " << D.Alt;
      }
      if (D.hasHotness()) {
        Sep();
        Out << "\"hotness\": {\"events\": " << D.HotEvents
            << ", \"maxK\": " << D.HotMaxK
            << ", \"backtracks\": " << D.HotBacktracks
            << ", \"score\": " << D.HotScore << '}';
      }
      if (Suggested) {
        Sep();
        Out << "\"suggestedFix\": {\"id\": " << jsonQuote(Suggested->Id)
            << ", \"unverified\": " << jsonQuote(Suggested->VerifyNote)
            << '}';
      }
      if (!D.Witness.empty()) {
        Sep();
        Out << "\"witness\": [";
        for (size_t J = 0; J < D.Witness.size(); ++J)
          Out << (J ? ", " : "") << jsonQuote(D.Witness[J]);
        Out << ']';
      }
      Out << "}";
    }
    Out << "\n        }";
  }
  Out << (R.Diagnostics.empty() ? "]\n" : "\n      ]\n");
  Out << "    }\n  ]\n}\n";
  return Out.str();
}
