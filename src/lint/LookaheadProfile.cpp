//===- lint/LookaheadProfile.cpp - Per-decision lookahead cost ------------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 3: classify every decision as LL(1) / LL(k) / LL(*)-cyclic /
/// backtracking with its DFA size (the paper's Table 1 data, per decision
/// instead of aggregated), and flag decisions that exceed the configured
/// lookahead or DFA-size budget. LL(finite) (Belcak 2020) argues exactly
/// this per-decision profile is what makes an LL strategy's cost visible;
/// Ford's packrat work motivates calling out silent backtracking.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <sstream>

using namespace llstar;

namespace {

std::string describeClass(const LookaheadDfa &Dfa) {
  std::ostringstream Out;
  switch (Dfa.decisionClass()) {
  case DecisionClass::FixedK:
    if (Dfa.fixedK() == 1)
      Out << "LL(1)";
    else
      Out << "LL(" << Dfa.fixedK() << ")";
    break;
  case DecisionClass::Cyclic:
    Out << "LL(*) cyclic";
    break;
  case DecisionClass::Backtrack:
    Out << "backtracking";
    break;
  }
  Out << ", " << Dfa.numStates() << " DFA state"
      << (Dfa.numStates() == 1 ? "" : "s");
  if (Dfa.hasSemPredEdges())
    Out << ", semantic predicates";
  return Out.str();
}

} // namespace

void llstar::lintLookaheadProfile(const AnalyzedGrammar &AG,
                                  const LintOptions &Opts,
                                  std::vector<LintDiagnostic> &Out) {
  const Atn &M = AG.atn();
  const Grammar &G = AG.grammar();
  for (int32_t D = 0; D < int32_t(AG.numDecisions()); ++D) {
    const LookaheadDfa &Dfa = AG.dfa(D);
    const AtnState &DS = M.state(M.decisionState(D));
    std::string RuleName =
        DS.RuleIndex >= 0 ? G.rule(DS.RuleIndex).Name : std::string();

    if (Opts.Profile) {
      LintDiagnostic Diag;
      Diag.Id = "lookahead-profile";
      Diag.Severity = DiagSeverity::Note;
      Diag.Loc = M.decisionLoc(D);
      Diag.RuleName = RuleName;
      Diag.Decision = D;
      std::ostringstream Msg;
      Msg << "decision " << D << " in rule '" << RuleName
          << "': " << describeClass(Dfa);
      Diag.Message = Msg.str();
      Out.push_back(std::move(Diag));
    }

    if (Opts.LookaheadBudget > 0) {
      std::string Over;
      switch (Dfa.decisionClass()) {
      case DecisionClass::FixedK:
        if (Dfa.fixedK() > Opts.LookaheadBudget) {
          std::ostringstream S;
          S << "needs k=" << Dfa.fixedK() << " lookahead, over budget "
            << Opts.LookaheadBudget;
          Over = S.str();
        }
        break;
      case DecisionClass::Cyclic:
        Over = "uses unbounded (cyclic) lookahead, over fixed budget " +
               std::to_string(Opts.LookaheadBudget);
        break;
      case DecisionClass::Backtrack:
        Over = "may backtrack (syntactic predicates), over lookahead budget " +
               std::to_string(Opts.LookaheadBudget);
        break;
      }
      if (!Over.empty()) {
        LintDiagnostic Diag;
        Diag.Id = "lookahead-budget";
        Diag.Severity = DiagSeverity::Warning;
        Diag.Loc = M.decisionLoc(D);
        Diag.RuleName = RuleName;
        Diag.Decision = D;
        std::ostringstream Msg;
        Msg << "decision " << D << " in rule '" << RuleName << "' " << Over;
        Diag.Message = Msg.str();
        Out.push_back(std::move(Diag));
      }
    }

    if (Opts.DfaStateBudget > 0 &&
        int32_t(Dfa.numStates()) > Opts.DfaStateBudget) {
      LintDiagnostic Diag;
      Diag.Id = "lookahead-budget";
      Diag.Severity = DiagSeverity::Warning;
      Diag.Loc = M.decisionLoc(D);
      Diag.RuleName = RuleName;
      Diag.Decision = D;
      std::ostringstream Msg;
      Msg << "decision " << D << " in rule '" << RuleName << "' lookahead DFA "
          << "has " << Dfa.numStates() << " states, over budget "
          << Opts.DfaStateBudget;
      Diag.Message = Msg.str();
      Out.push_back(std::move(Diag));
    }
  }
}
