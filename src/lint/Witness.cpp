#include "lint/Witness.h"

#include <algorithm>

using namespace llstar;

int32_t llstar::shadowedAltWitness(const DecisionReport &Report, int32_t Alt,
                                   std::vector<TokenType> &PathOut) {
  PathOut.clear();
  const ResolutionEvent *Best = nullptr;
  for (const ResolutionEvent &E : Report.Resolutions) {
    if (E.ChosenAlt < 0)
      continue; // resolved entirely by predicates; nothing lost
    if (std::find(E.LosingAlts.begin(), E.LosingAlts.end(), Alt) ==
        E.LosingAlts.end())
      continue;
    if (!Best || E.Path.size() < Best->Path.size())
      Best = &E;
  }
  if (!Best)
    return -1;
  PathOut = Best->Path;
  return Best->ChosenAlt;
}

std::vector<std::string>
llstar::witnessNames(const std::vector<TokenType> &Path,
                     const Vocabulary &Vocab) {
  std::vector<std::string> Names;
  Names.reserve(Path.size());
  for (TokenType T : Path)
    Names.push_back(T == TokenEof ? std::string("EOF") : Vocab.name(T));
  return Names;
}
