//===- lint/StructureLint.cpp - Left recursion & non-LL-regular -----------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 5: structural findings mapped back to rule source spans.
///
///  - left-recursion: rules the front end rewrote into precedence loops
///    (LL(*) cannot parse left recursion directly; the rewrite changes
///    tree shape, which authors should know about);
///  - non-ll-regular: decisions where the full LL(*) subset construction
///    aborted — recursion in more than one alternative (the paper's
///    LikelyNonLLRegular condition, Section 5.3) or a resource limit —
///    leaving the LL(1)-with-predicates fallback of Section 5.4.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include <sstream>

using namespace llstar;

void llstar::lintStructure(const AnalyzedGrammar &AG, const LintOptions &,
                           std::vector<LintDiagnostic> &Out) {
  const Atn &M = AG.atn();
  const Grammar &G = AG.grammar();

  for (const Rule &Rule : G.rules()) {
    if (!Rule.IsPrecedenceRule)
      continue;
    LintDiagnostic Diag;
    Diag.Id = "left-recursion";
    Diag.Severity = DiagSeverity::Note;
    Diag.Loc = Rule.Loc;
    Diag.RuleName = Rule.Name;
    Diag.Message = "rule '" + Rule.Name +
                   "' is left-recursive; rewritten into a precedence loop "
                   "(LL(*) cannot parse left recursion directly)";
    Out.push_back(std::move(Diag));
  }

  for (int32_t D = 0; D < int32_t(AG.numDecisions()); ++D) {
    const DecisionReport &Rep = AG.decisionReport(D);
    if (!Rep.UsedFallback)
      continue;
    const AtnState &DS = M.state(M.decisionState(D));
    // Precedence loops synthesized by the left-recursion rewrite always
    // trip the multi-alternative-recursion abort; the left-recursion note
    // already tells that story, and the precedence predicates the fallback
    // installs are the designed mechanism, not a degradation.
    if (DS.RuleIndex >= 0 && G.rule(DS.RuleIndex).IsPrecedenceRule)
      continue;
    std::string RuleName =
        DS.RuleIndex >= 0 ? G.rule(DS.RuleIndex).Name : std::string();
    LintDiagnostic Diag;
    Diag.Id = "non-ll-regular";
    Diag.Severity = DiagSeverity::Warning;
    Diag.Loc = M.decisionLoc(D);
    Diag.RuleName = RuleName;
    Diag.Decision = D;
    std::ostringstream Msg;
    Msg << "decision " << D << " in rule '" << RuleName << "' ";
    if (Rep.LikelyNonLLRegular)
      Msg << "is likely non-LL-regular (recursion in more than one "
             "alternative); ";
    else
      Msg << "exceeded analysis resource limits; ";
    Msg << "using the LL(1)-with-predicates fallback, which may backtrack";
    Diag.Message = Msg.str();
    Out.push_back(std::move(Diag));
  }
}
