//===- lint/Profile.cpp - Profile loading, joining, ranking ---------------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//

#include "lint/Profile.h"

#include "support/Json.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace llstar;

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

bool LintProfile::load(std::string_view JsonText, std::string *Error) {
  // Redirected `llstar parse --stats-json` output carries the parse
  // verdict line before the JSON document; profiles are always objects,
  // so skip to the first '{'.
  size_t At = JsonText.find('{');
  if (At == std::string_view::npos) {
    if (Error)
      *Error = "no JSON object found";
    return false;
  }
  json::Value Doc;
  if (!json::parse(JsonText.substr(At), Doc, Error))
    return false;

  // Find the stats object: the document itself, its "stats" member (the
  // profile wrapper written by --stats-out), or its "parser" member
  // (ServiceMetrics / llstard Stats replies).
  const json::Value *Stats = &Doc;
  if (Doc.has("stats"))
    Stats = &Doc.key("stats");
  else if (Doc.has("parser"))
    Stats = &Doc.key("parser");

  const json::Value &Decisions = Stats->key("decisions");
  if (!Decisions.isArray()) {
    if (Error)
      *Error = "no decisions array; re-run the stats producer with "
               "per-decision output enabled";
    return false;
  }
  for (const json::Value &D : Decisions.elements()) {
    ProfileEntry E;
    E.Decision = int32_t(D.key("decision").integer(-1));
    E.Rule = D.key("rule").str();
    E.DecisionInRule = int32_t(D.key("decisionInRule").integer(0));
    E.Events = D.key("events").integer(0);
    E.TotalK = D.key("totalK").integer(0);
    E.MaxK = D.key("maxK").integer(0);
    E.BacktrackEvents = D.key("backtrackEvents").integer(0);
    E.BacktrackTotalK = D.key("backtrackTotalK").integer(0);
    for (const json::Value &A : D.key("altEvents").elements())
      E.AltEvents.push_back(A.integer(0));
    if (E.Events > 0)
      mergeEntry(std::move(E));
  }
  return true;
}

void LintProfile::mergeEntry(ProfileEntry E) {
  for (ProfileEntry &Have : Entries) {
    bool Same = !E.Rule.empty() && !Have.Rule.empty()
                    ? (Have.Rule == E.Rule &&
                       Have.DecisionInRule == E.DecisionInRule)
                    : (E.Rule.empty() && Have.Rule.empty() &&
                       Have.Decision == E.Decision && E.Decision >= 0);
    if (!Same)
      continue;
    Have.Events += E.Events;
    Have.TotalK += E.TotalK;
    Have.MaxK = std::max(Have.MaxK, E.MaxK);
    Have.BacktrackEvents += E.BacktrackEvents;
    Have.BacktrackTotalK += E.BacktrackTotalK;
    if (Have.AltEvents.size() < E.AltEvents.size())
      Have.AltEvents.resize(E.AltEvents.size());
    for (size_t I = 0; I < E.AltEvents.size(); ++I)
      Have.AltEvents[I] += E.AltEvents[I];
    return;
  }
  Entries.push_back(std::move(E));
}

int64_t LintProfile::totalEvents() const {
  int64_t N = 0;
  for (const ProfileEntry &E : Entries)
    N += E.Events;
  return N;
}

//===----------------------------------------------------------------------===//
// Joining and ranking
//===----------------------------------------------------------------------===//

std::vector<const ProfileEntry *>
LintProfile::joinTo(const AnalyzedGrammar &AG) const {
  std::vector<const ProfileEntry *> Joined(AG.numDecisions(), nullptr);
  std::vector<DecisionKey> Keys = AG.decisionKeys();
  std::map<std::pair<std::string, int32_t>, size_t> ByIdentity;
  for (size_t D = 0; D < Keys.size(); ++D)
    if (!Keys[D].Rule.empty())
      ByIdentity[{Keys[D].Rule, Keys[D].DecisionInRule}] = D;

  for (const ProfileEntry &E : Entries) {
    size_t D = Joined.size(); // invalid
    if (!E.Rule.empty()) {
      auto It = ByIdentity.find({E.Rule, E.DecisionInRule});
      if (It != ByIdentity.end())
        D = It->second;
    } else if (E.Decision >= 0 && size_t(E.Decision) < Joined.size()) {
      D = size_t(E.Decision);
    }
    if (D < Joined.size())
      Joined[D] = &E;
  }
  return Joined;
}

int64_t llstar::hotnessScore(const ProfileEntry *E) {
  if (!E)
    return -1;
  return E->TotalK + 10 * E->BacktrackTotalK;
}

namespace {

int severityRank(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Error:
    return 0;
  case DiagSeverity::Warning:
    return 1;
  case DiagSeverity::Note:
    return 2;
  }
  return 3;
}

} // namespace

void llstar::applyProfile(LintResult &R, const LintProfile &P,
                          const AnalyzedGrammar &AG) {
  std::vector<const ProfileEntry *> Joined = P.joinTo(AG);
  for (LintDiagnostic &D : R.Diagnostics) {
    if (D.Decision < 0 || size_t(D.Decision) >= Joined.size())
      continue;
    const ProfileEntry *E = Joined[size_t(D.Decision)];
    if (!E)
      continue;
    D.HotEvents = E->Events;
    D.HotMaxK = E->MaxK;
    D.HotBacktracks = E->BacktrackEvents;
    D.HotScore = hotnessScore(E);
  }
  // Re-rank: severity, then observed cost descending; the engine's
  // (location, id, ...) order survives as the stable tie-break.
  std::stable_sort(R.Diagnostics.begin(), R.Diagnostics.end(),
                   [](const LintDiagnostic &A, const LintDiagnostic &B) {
                     return std::make_tuple(severityRank(A.Severity),
                                            -A.HotScore) <
                            std::make_tuple(severityRank(B.Severity),
                                            -B.HotScore);
                   });
}
