//===- lint/ShadowedAlts.cpp - Dead & ambiguous alternatives --------------===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pass 1: alternatives dead under production-order ambiguity resolution
/// (paper Section 3.1) and conflicts that were resolved by order while the
/// losing alternative stays reachable on other input. A decision
/// alternative is shadowed exactly when the finished lookahead DFA can
/// never predict it — no accept state and no predicate edge carries its
/// number. Witnesses come from the resolution events the subset
/// construction recorded (see Witness.h).
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "lint/Witness.h"

#include <map>
#include <sstream>

using namespace llstar;

namespace {

std::string altList(const std::vector<int32_t> &Alts) {
  std::string Out = "{";
  for (size_t I = 0; I < Alts.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Alts[I]);
  }
  Out += '}';
  return Out;
}

/// Loop decisions number the exit branch last; name alternatives the way
/// the grammar author sees them.
bool isLoopDecision(const AtnState &S) {
  return S.Kind == AtnStateKind::StarLoopEntry ||
         S.Kind == AtnStateKind::PlusLoopBack;
}

} // namespace

void llstar::lintShadowedAlts(const AnalyzedGrammar &AG, const LintOptions &,
                              std::vector<LintDiagnostic> &Out) {
  const Atn &M = AG.atn();
  const Grammar &G = AG.grammar();
  for (int32_t D = 0; D < int32_t(AG.numDecisions()); ++D) {
    const AtnState &DS = M.state(M.decisionState(D));
    size_t NumAlts = DS.Transitions.size();
    if (NumAlts < 2)
      continue;
    const LookaheadDfa &Dfa = AG.dfa(D);
    const DecisionReport &Rep = AG.decisionReport(D);
    std::set<int32_t> Reachable = Dfa.reachableAlts();
    std::string RuleName =
        DS.RuleIndex >= 0 ? G.rule(DS.RuleIndex).Name : std::string();

    // Fully shadowed alternatives: never predicted by the DFA.
    for (int32_t Alt = 1; Alt <= int32_t(NumAlts); ++Alt) {
      if (Reachable.count(Alt))
        continue;
      LintDiagnostic Diag;
      Diag.Id = "shadowed-alt";
      Diag.Severity = DiagSeverity::Warning;
      Diag.Loc = M.decisionAltLoc(D, Alt);
      Diag.RuleName = RuleName;
      Diag.Decision = D;
      Diag.Alt = Alt;
      std::vector<TokenType> Path;
      int32_t Chosen = shadowedAltWitness(Rep, Alt, Path);
      std::ostringstream Msg;
      if (isLoopDecision(DS) && Alt == int32_t(NumAlts)) {
        Msg << "loop exit of rule '" << RuleName
            << "' can never be taken: the loop body matches every "
               "continuation";
      } else {
        Msg << "alternative " << Alt << " of rule '" << RuleName
            << "' can never be matched";
        if (Chosen > 0)
          Msg << ": input matching it always selects alternative " << Chosen;
      }
      Diag.Message = Msg.str();
      if (Chosen > 0) {
        Diag.WitnessTypes = Path;
        Diag.Witness = witnessNames(Path, G.vocabulary());
      }
      Out.push_back(std::move(Diag));
    }

    // Order-resolved conflicts whose losers stay reachable elsewhere:
    // genuine ambiguity on that prefix, not dead code. One diagnostic per
    // conflicting-alternative set, keeping the shortest witness.
    std::map<std::vector<int32_t>, const ResolutionEvent *> BestPerConflict;
    for (const ResolutionEvent &E : Rep.Resolutions) {
      if (E.LosingAlts.empty())
        continue; // carried entirely by predicates
      bool AnyLiveLoser = false;
      for (int32_t L : E.LosingAlts)
        AnyLiveLoser |= Reachable.count(L) != 0;
      if (!AnyLiveLoser)
        continue; // all losers dead: reported as shadowed-alt above
      auto [It, Inserted] = BestPerConflict.emplace(E.ConflictingAlts, &E);
      if (!Inserted && E.Path.size() < It->second->Path.size())
        It->second = &E;
    }
    for (const auto &[Alts, E] : BestPerConflict) {
      LintDiagnostic Diag;
      Diag.Id = "ambiguity";
      Diag.Severity = DiagSeverity::Warning;
      Diag.Loc = M.decisionLoc(D);
      Diag.RuleName = RuleName;
      Diag.Decision = D;
      std::ostringstream Msg;
      Msg << "alternatives " << altList(Alts) << " of rule '" << RuleName
          << "' match the same input";
      if (E->Overflowed)
        Msg << " within the lookahead recursion limit";
      if (E->ByPredicates && E->ChosenAlt > 0)
        Msg << "; unpredicated alternative " << E->ChosenAlt
            << " wins when no predicate holds";
      else if (E->ChosenAlt > 0)
        Msg << "; resolved in favor of alternative " << E->ChosenAlt;
      Diag.Message = Msg.str();
      Diag.Alt = E->ChosenAlt;
      Diag.WitnessTypes = E->Path;
      Diag.Witness = witnessNames(E->Path, G.vocabulary());
      Out.push_back(std::move(Diag));
    }
  }
}
