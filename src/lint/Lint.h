//===- lint/Lint.h - Grammar static-analysis diagnostics --------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The grammar lint engine: a pipeline of static-analysis passes over an
/// \ref AnalyzedGrammar (grammar + ATN + per-decision lookahead DFAs and
/// resolution reports) that emits structured, source-located diagnostics —
/// the byproducts of the paper's Section 5 analysis surfaced as a developer
/// tool instead of discarded as pass/fail internals.
///
/// Diagnostic classes (stable ids, see \ref lintRuleCatalog):
///   shadowed-alt        alternative dead under production-order resolution
///   ambiguity           conflict resolved by order; losing alt still live
///   dead-rule           rule unreachable from the start rule
///   dead-token          emitted token never referenced by a parser rule
///   shadowed-token      lexer rule whose literal an earlier rule matches
///   lookahead-budget    decision exceeds --budget / --dfa-budget limits
///   lookahead-profile   per-decision LL(1)/LL(k)/LL(*)/backtrack class
///   pred-never-hoisted  semantic predicate that gates no decision
///   synpred-redundant   syntactic predicate on a deterministic decision
///   left-recursion      rule rewritten into a precedence loop
///   non-ll-regular      decision where full LL(*) construction aborted
///
/// Shadowed-alternative and ambiguity diagnostics carry a witness: a
/// minimal lookahead token sequence, extracted from the DFA path recorded
/// at resolution time, on which prediction demonstrably selects the earlier
/// alternative (see Witness.h).
///
/// Suppression: a grammar comment containing `llstar-lint-disable <ids>`
/// suppresses the listed ids (all when none listed) on the next source
/// line; `llstar-lint-disable-line <ids>` on its own line;
/// `llstar-lint-disable-file <ids>` everywhere in the file.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LINT_LINT_H
#define LLSTAR_LINT_LINT_H

#include "analysis/AnalyzedGrammar.h"
#include "support/Diagnostics.h"
#include "support/SourceLocation.h"

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace llstar {

/// One lint finding. Unlike the free-form \ref Diagnostic, every finding
/// has a stable rule id and, where applicable, the decision/alternative it
/// concerns and a witness token sequence.
struct LintDiagnostic {
  std::string Id;
  DiagSeverity Severity = DiagSeverity::Warning;
  SourceLocation Loc;
  std::string RuleName; ///< Grammar rule the finding concerns (may be empty).
  int32_t Decision = -1;
  int32_t Alt = -1; ///< 1-based alternative, or -1.
  std::string Message;
  /// Witness lookahead sequence as display token names ("'a'", "ID").
  std::vector<std::string> Witness;
  /// The same sequence as raw token types, for programmatic verification
  /// (e.g. replaying it through the decision's DFA).
  std::vector<TokenType> WitnessTypes;

  /// Profile attribution (lint --profile): observed traffic at the
  /// finding's decision. -1 = no profile loaded or no decision to join on.
  int64_t HotEvents = -1;     ///< prediction events observed
  int64_t HotMaxK = -1;       ///< deepest observed lookahead
  int64_t HotBacktracks = -1; ///< observed backtracking events
  /// Ranking score: TotalK + 10 * BacktrackTotalK (tokens of lookahead
  /// work, with speculation weighted as 10x). -1 = unprofiled.
  int64_t HotScore = -1;

  bool hasHotness() const { return HotScore >= 0; }

  /// Renders "line:col: severity: message [id]" (no trailing newline).
  std::string str() const;
};

/// Tunables for a lint run.
struct LintOptions {
  /// Flag decisions whose fixed lookahead k exceeds this, and cyclic or
  /// backtracking decisions (unbounded cost). 0 disables the check.
  int32_t LookaheadBudget = 0;
  /// Flag decisions whose DFA has more states than this. 0 disables.
  int32_t DfaStateBudget = 0;
  /// Emit a lookahead-profile note for every decision.
  bool Profile = false;
  /// Rule ids disabled wholesale (--disable on the command line).
  std::set<std::string> Disabled;
};

/// Outcome of a lint run: deduplicated findings in deterministic
/// (location, severity, id) order.
struct LintResult {
  std::vector<LintDiagnostic> Diagnostics;
  /// Findings dropped by in-source suppression comments or --disable.
  int32_t NumSuppressed = 0;

  int32_t errorCount() const {
    return count(DiagSeverity::Error);
  }
  int32_t warningCount() const {
    return count(DiagSeverity::Warning);
  }
  bool empty() const { return Diagnostics.empty(); }

private:
  int32_t count(DiagSeverity S) const {
    int32_t N = 0;
    for (const LintDiagnostic &D : Diagnostics)
      N += D.Severity == S;
    return N;
  }
};

/// Catalog entry for one diagnostic class; the SARIF writer renders the
/// whole catalog as the tool's rule table so ruleIndex is stable.
struct LintRuleInfo {
  const char *Id;
  const char *Summary;
  DiagSeverity DefaultSeverity;
};

/// All known diagnostic classes, in stable order.
const std::vector<LintRuleInfo> &lintRuleCatalog();

/// Index of \p Id in \ref lintRuleCatalog, or -1.
int32_t lintRuleIndex(const std::string &Id);

/// Runs all lint passes over \p AG. \p Source is the grammar text, used
/// only to honor suppression comments (pass empty to skip that).
class LintEngine {
public:
  explicit LintEngine(LintOptions Opts = LintOptions()) : Opts(std::move(Opts)) {}

  LintResult run(const AnalyzedGrammar &AG,
                 std::string_view Source = std::string_view()) const;

private:
  LintOptions Opts;
};

//===----------------------------------------------------------------------===//
// Individual passes (exposed for targeted testing; LintEngine runs all).
//===----------------------------------------------------------------------===//

void lintShadowedAlts(const AnalyzedGrammar &AG, const LintOptions &Opts,
                      std::vector<LintDiagnostic> &Out);
void lintDeadSymbols(const AnalyzedGrammar &AG, const LintOptions &Opts,
                     std::vector<LintDiagnostic> &Out);
void lintLookaheadProfile(const AnalyzedGrammar &AG, const LintOptions &Opts,
                          std::vector<LintDiagnostic> &Out);
void lintPredicates(const AnalyzedGrammar &AG, const LintOptions &Opts,
                    std::vector<LintDiagnostic> &Out);
void lintStructure(const AnalyzedGrammar &AG, const LintOptions &Opts,
                   std::vector<LintDiagnostic> &Out);

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

/// One diagnostic per line, prefixed with \p File, witnesses on an
/// indented continuation line.
std::string renderLintText(const LintResult &R, const std::string &File);

/// Machine-readable JSON (single object; stable key order). When \p Fixes
/// is non-null a "fixes" array follows the diagnostics, one entry per
/// candidate fix with its verification status and byte-exact edits.
struct Fix;
std::string renderLintJson(const LintResult &R, const std::string &File,
                           const std::vector<Fix> *Fixes = nullptr);

/// Escapes \p S for embedding in a JSON string literal (quotes included).
std::string jsonQuote(std::string_view S);

} // namespace llstar

#endif // LLSTAR_LINT_LINT_H
