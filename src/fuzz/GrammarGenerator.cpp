#include "fuzz/GrammarGenerator.h"

using namespace llstar;
using namespace llstar::fuzz;

std::string GeneratedGrammar::text() const {
  std::string Out = "grammar " + Name + ";\n";
  for (const GeneratedRule &R : Rules) {
    Out += R.Name + " : ";
    for (size_t A = 0; A < R.Alts.size(); ++A) {
      if (A)
        Out += " | ";
      Out += R.Alts[A];
    }
    Out += " ;\n";
  }
  Out += "ID : [a-z] [a-z0-9]* ;\n"
         "INT : [0-9]+ ;\n"
         "WS : [ \\t\\r\\n]+ -> skip ;\n";
  return Out;
}

std::string GrammarGenerator::freshLiteral() {
  return "k" + std::to_string(NextLiteral++);
}

/// A random tail: elements after an alternative's distinguishing literal.
/// Tail positions are never decision-entry positions, so anything goes:
/// more literals, lexer tokens, rule references, nested blocks, actions.
std::string GrammarGenerator::sampleTail(FuzzRng &Rng, int MaxRuleRef,
                                         int Depth) {
  std::string Out;
  int Len = Rng.range(0, Env.MaxSeqLen);
  for (int I = 0; I < Len; ++I) {
    int Roll = int(Rng.below(100));
    if (Roll < 40) {
      Out += " '" + freshLiteral() + "'";
    } else if (Roll < 55 && Env.LexerTokens) {
      Out += " ID";
    } else if (Roll < 65 && Env.LexerTokens) {
      Out += " INT";
    } else if (Roll < 80 && MaxRuleRef > RefBase) {
      // Reference any later rule (DAG order keeps recursion terminating).
      Out += " " + RefNames[size_t(Rng.range(RefBase, MaxRuleRef - 1))];
    } else if (Roll < 95 && Env.EbnfBlocks && Depth < Env.MaxBlockDepth) {
      Out += " " + sampleBlock(Rng, MaxRuleRef, Depth + 1);
    } else if (Env.Actions) {
      bool Always = Rng.chance(30);
      std::string Name = "a" + std::to_string(NextAction++);
      Out += Always ? " {{" + Name + "}}" : " {" + Name + "}";
    } else {
      Out += " '" + freshLiteral() + "'";
    }
  }
  return Out;
}

/// An EBNF block `( alts ) suffix`. Every block-body alternative starts
/// with a fresh literal so the enter/exit/iterate decisions stay disjoint
/// from anything that can follow the block.
std::string GrammarGenerator::sampleBlock(FuzzRng &Rng, int MaxRuleRef,
                                          int Depth) {
  int NAlts = Rng.range(1, 2);
  std::string Out = "(";
  for (int A = 0; A < NAlts; ++A) {
    if (A)
      Out += " |";
    Out += " '" + freshLiteral() + "'" + sampleTail(Rng, MaxRuleRef, Depth);
  }
  Out += " )";
  switch (Rng.below(4)) {
  case 0:
    break;
  case 1:
    Out += "?";
    break;
  case 2:
    Out += "*";
    break;
  case 3:
    Out += "+";
    break;
  }
  return Out;
}

/// The alternatives of one rule-level choice. An optional shared prefix
/// (plain literals, possibly starred) pushes the decision past LL(1);
/// each alternative then diverges at a globally fresh literal.
std::vector<std::string> GrammarGenerator::sampleChoice(FuzzRng &Rng,
                                                        int MaxRuleRef) {
  int NAlts = Rng.range(1, Env.MaxAlts);
  std::string Prefix;
  if (NAlts >= 2 && Env.CommonPrefixes && Rng.chance(45)) {
    int Len = Rng.range(1, Env.MaxPrefixLen);
    for (int I = 0; I < Len; ++I) {
      if (Env.StarPrefixes && Rng.chance(35))
        Prefix += "'" + freshLiteral() + "'* ";
      else
        Prefix += "'" + freshLiteral() + "' ";
    }
  }

  std::vector<std::string> Alts;
  bool UsedRefFirst = false;
  for (int A = 0; A < NAlts; ++A) {
    std::string Alt = Prefix;
    // At most one alternative per choice may start with a rule reference,
    // and only to a rule whose own FIRST is all-fresh literals; everything
    // else diverges at a fresh literal of its own.
    bool RefFirst = Prefix.empty() && !UsedRefFirst &&
                    !LiteralFirstRefs.empty() && Rng.chance(15);
    if (RefFirst) {
      Alt += LiteralFirstRefs[Rng.below(LiteralFirstRefs.size())];
      UsedRefFirst = true;
    } else {
      std::string Lit = freshLiteral();
      if (A == 0 && NAlts >= 2 && Env.SynPreds && Rng.chance(20))
        Alt += "('" + Lit + "')=> ";
      if (Env.SemPreds && Rng.chance(10))
        Alt += "{p" + std::to_string(NextPred++) + "}? ";
      Alt += "'" + Lit + "'";
    }
    Alt += sampleTail(Rng, MaxRuleRef, 0);
    Alts.push_back(Alt);
  }
  if (UsedRefFirst)
    HasRefFirstAlt = true;
  return Alts;
}

/// An immediately-left-recursive binary-operator rule in the paper's
/// Section 1.1 shape; the analyzer rewrites it into a precedence loop.
GeneratedRule GrammarGenerator::makeExpressionRule(FuzzRng &Rng,
                                                   const std::string &Name) {
  GeneratedRule R;
  R.Name = Name;
  int NumOps = Rng.range(1, 3);
  for (int I = 0; I < NumOps; ++I)
    R.Alts.push_back(Name + " '" + freshLiteral() + "' " + Name);
  if (Rng.chance(40)) // a unary prefix operator
    R.Alts.push_back("'" + freshLiteral() + "' " + Name);
  if (Rng.chance(60)) // parenthesized form
    R.Alts.push_back("'" + freshLiteral() + "' " + Name + " '" +
                     freshLiteral() + "'");
  R.Alts.push_back(Env.LexerTokens ? "INT" : "'" + freshLiteral() + "'");
  return R;
}

GeneratedGrammar GrammarGenerator::generate() {
  FuzzRng Rng(Seed);
  NextLiteral = NextPred = NextAction = 0;
  LiteralFirstRefs.clear();
  RefNames.clear();
  RefBase = 0;

  GeneratedGrammar G;
  G.Seed = Seed;
  G.Name = "F" + std::to_string(Seed % 1000000);

  int NumRules = Rng.range(Env.MinRules, Env.MaxRules);
  bool WithExpr = Env.LeftRecursion && Rng.chance(40);
  G.HasLeftRecursion = WithExpr;

  // RefNames[i] is the name of rule index i (r1..rN, then the expression
  // rule); rule i may reference indices > i only, so generate from the
  // highest index down and record which rules are safe ref-first targets.
  for (int I = 1; I <= NumRules; ++I)
    RefNames.push_back("r" + std::to_string(I));
  if (WithExpr)
    RefNames.push_back("ex");

  std::vector<GeneratedRule> Body(RefNames.size());
  if (WithExpr)
    Body.back() = makeExpressionRule(Rng, "ex");

  for (int I = NumRules - 1; I >= 0; --I) {
    RefBase = I + 1;
    HasRefFirstAlt = false;
    GeneratedRule R;
    R.Name = RefNames[size_t(I)];
    R.Alts = sampleChoice(Rng, int(RefNames.size()));
    Body[size_t(I)] = R;
    // A rule qualifies as a ref-first target only when every alternative
    // of its choice starts with a fresh literal of its own.
    if (!HasRefFirstAlt)
      LiteralFirstRefs.push_back(R.Name);
  }
  RefBase = 0;

  // Start rule: one or two distinct whole-rule entry points, each ending
  // at EOF so acceptance means "the entire input".
  GeneratedRule S;
  S.Name = "s";
  if (NumRules >= 2 && LiteralFirstRefs.size() >= 2 && Rng.chance(35)) {
    S.Alts.push_back(LiteralFirstRefs[0] + " EOF");
    S.Alts.push_back(LiteralFirstRefs[1] + " EOF");
  } else {
    S.Alts.push_back(RefNames[0] + " EOF");
  }

  G.Rules.push_back(S);
  for (GeneratedRule &R : Body)
    G.Rules.push_back(std::move(R));
  return G;
}
