//===- fuzz/SentenceGen.h - Decision-guided minimal sentences ---*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic minimal-sentence generation guided by the LL(*) analysis:
/// for each (decision, alternative) whose lookahead DFA actually reaches an
/// accept state for that alternative (\ref LookaheadDfa::shortestPathToAlt),
/// derive one short valid sentence of the whole grammar that steers the
/// parse through that alternative.
///
/// Unlike \ref SentenceSampler (random bounded derivation over the grammar
/// object model), SentenceGen walks the ATN with a precomputed minimal
/// token-cost table, so its output is reproducible without a seed and
/// biased toward the shortest witnesses. The recovery fuzz oracle mutates
/// these seeds; tests use them as a per-decision conformance corpus.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_FUZZ_SENTENCEGEN_H
#define LLSTAR_FUZZ_SENTENCEGEN_H

#include "analysis/AnalyzedGrammar.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llstar {
namespace fuzz {

/// Derives minimal valid sentences per lookahead decision.
class SentenceGen {
public:
  explicit SentenceGen(const AnalyzedGrammar &AG);

  /// Derives one sentence (token texts) from the grammar's start rule that
  /// reaches \p Decision and takes its 1-based \p Alt there. Returns false
  /// when no bounded derivation exists (unreachable decision, budget
  /// exhausted, or a non-terminating alternative).
  bool sentenceFor(int32_t Decision, int32_t Alt,
                   std::vector<std::string> &Out) const;

  /// Deterministic seed corpus: one sentence per (decision, alternative)
  /// pair whose DFA can predict that alternative, deduplicated by rendered
  /// text and capped at \p MaxSeeds. Each candidate is lexed back with the
  /// grammar's real lexer and dropped unless the token texts round-trip to
  /// the intended token-type sequence.
  std::vector<std::vector<std::string>> seeds(size_t MaxSeeds = 64) const;

private:
  /// The guided ATN walk behind \ref sentenceFor; also records the intended
  /// token type of every emitted text (for the seeds() lex-back check).
  bool walk(int32_t Decision, int32_t Alt, std::vector<std::string> &Texts,
            std::vector<TokenType> &Types) const;
  /// States from which \p Target is reachable in the call-collapsed ATN
  /// graph (rule transitions contribute both the entry edge and, for
  /// terminating rules, the return edge).
  std::vector<uint8_t> reachable(int32_t Target) const;

  /// Deterministic text for one token (no RNG; mirrors the sampler's
  /// conventions so seed corpora lex identically).
  std::string tokenText(TokenType Type) const;

  const AnalyzedGrammar &AG;
  /// Minimal tokens from a state to its own rule's stop state (Inf when
  /// the suffix cannot terminate).
  std::vector<int64_t> StateCost;
  /// Reverse adjacency of the call-collapsed graph, built once.
  std::vector<std::vector<int32_t>> Rev;
};

} // namespace fuzz
} // namespace llstar

#endif // LLSTAR_FUZZ_SENTENCEGEN_H
