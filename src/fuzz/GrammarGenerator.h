//===- fuzz/GrammarGenerator.h - Random predicated grammars -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random predicated grammars for differential fuzzing. The
/// generator is constrained so that LL(*) prediction and the packrat/PEG
/// baseline accept exactly the same language *by construction*:
///
///  - every decision-entry position (an alternative of a choice after its
///    shared prefix, or the start of an EBNF block body) begins with a
///    keyword literal that is globally unique within the grammar, so FIRST
///    sets at every choice point are pairwise disjoint and never collide
///    with follow sets (possessive PEG loops then match exactly what a
///    general CFG loop would);
///  - shared multi-token prefixes (optionally a starred literal) in front
///    of the distinguishing literal push decisions to LL(k>1) and cyclic
///    lookahead without breaking the disjointness argument, because a
///    packrat parser recovers from a literal-only prefix by rewinding;
///  - rule references form a DAG (rule i references only rules j > i),
///    except for one optional immediately-left-recursive expression rule,
///    which the analyzer's precedence rewrite handles;
///  - syntactic predicates `('k')=> 'k' ...` duplicate the alternative's
///    own distinguishing literal, and semantic predicates / actions are
///    unbound (both engines treat them as `true` / no-op).
///
/// Under these constraints, any accept/reject or parse-tree disagreement
/// between the two engines is a real bug in one of them — which is what
/// the differential oracle exploits.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_FUZZ_GRAMMARGENERATOR_H
#define LLSTAR_FUZZ_GRAMMARGENERATOR_H

#include "fuzz/FuzzRandom.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llstar {
namespace fuzz {

/// The feature envelope: which grammar constructs the generator may use
/// and how big grammars get. All features default on; the fuzz driver can
/// narrow the envelope to isolate a misbehaving construct.
struct GrammarEnvelope {
  int MinRules = 2;      ///< parser rules, excluding the start rule
  int MaxRules = 6;
  int MaxAlts = 3;       ///< alternatives per choice
  int MaxSeqLen = 3;     ///< tail elements after the distinguishing literal
  int MaxBlockDepth = 2; ///< nesting of EBNF blocks
  int MaxPrefixLen = 2;  ///< shared decision-prefix literals

  bool EbnfBlocks = true;     ///< `( ... )` with `?` `*` `+` suffixes
  bool CommonPrefixes = true; ///< LL(k>1) decisions via shared prefixes
  bool StarPrefixes = true;   ///< `'m'* ...` prefixes -> cyclic DFAs
  bool LeftRecursion = true;  ///< one binary-operator expression rule
  bool SynPreds = true;       ///< `('k')=>` gates on first alternatives
  bool SemPreds = true;       ///< unbound `{p}?` gates (always true)
  bool Actions = true;        ///< unbound `{a}` / `{{a}}` mutators (no-ops)
  bool LexerTokens = true;    ///< ID / INT references in tail positions
};

/// One generated rule, kept structured (name + alternative texts) so the
/// minimizer can drop alternatives or rules and re-render.
struct GeneratedRule {
  std::string Name;
  std::vector<std::string> Alts;
};

/// A generated grammar: structured rules plus the rendering to grammar
/// meta-language text that the rest of the toolkit consumes.
struct GeneratedGrammar {
  std::string Name;
  uint64_t Seed = 0;
  std::vector<GeneratedRule> Rules; ///< Rules[0] is the start rule `s`.
  bool HasLeftRecursion = false;

  /// Renders the full grammar text (rules + the fixed lexer section).
  std::string text() const;
};

/// Generates one random grammar per call.
class GrammarGenerator {
public:
  GrammarGenerator(const GrammarEnvelope &Envelope, uint64_t Seed)
      : Env(Envelope), Seed(Seed) {}

  /// Generates the grammar for this generator's seed. Deterministic: the
  /// same envelope + seed always produce the same grammar.
  GeneratedGrammar generate();

private:
  std::string freshLiteral();
  std::string sampleTail(FuzzRng &Rng, int MaxRuleRef, int Depth);
  std::string sampleBlock(FuzzRng &Rng, int MaxRuleRef, int Depth);
  std::vector<std::string> sampleChoice(FuzzRng &Rng, int MaxRuleRef);
  GeneratedRule makeExpressionRule(FuzzRng &Rng, const std::string &Name);

  GrammarEnvelope Env;
  uint64_t Seed;
  int NextLiteral = 0;
  int NextPred = 0;
  int NextAction = 0;

  /// Names of rules by index (r1..rN, then the expression rule).
  std::vector<std::string> RefNames;
  /// First rule index the rule being generated may reference (its own + 1).
  int RefBase = 0;
  /// Already-generated rules whose FIRST is all-fresh literals: the only
  /// legal targets for an alternative that *starts* with a rule reference.
  std::vector<std::string> LiteralFirstRefs;
  /// Set when the current choice used a ref-first alternative (the rule is
  /// then itself disqualified as a ref-first target).
  bool HasRefFirstAlt = false;
};

} // namespace fuzz
} // namespace llstar

#endif // LLSTAR_FUZZ_GRAMMARGENERATOR_H
