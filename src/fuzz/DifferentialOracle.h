//===- fuzz/DifferentialOracle.h - Cross-engine conformance -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conformance oracle of the fuzzing harness. For one grammar it runs
/// four classes of checks, any failure of which is a bug somewhere in the
/// toolkit (given a generator-envelope grammar, see GrammarGenerator.h):
///
///  1. **Differential (three-way)**: every sentence is parsed by the LL(*)
///     predictor-driven parser, by the same runtime over LL(finite)
///     decision tables, and by the packrat/PEG baseline; all three
///     verdicts must agree, and when they accept (and the grammar has no
///     precedence-rewritten rules, whose trees legitimately differ) the
///     parse trees must be identical.
///  2. **Determinism**: analyzing the same grammar text twice — under
///     either backend — must produce byte-identical serialized automata
///     (ATN + every lookahead DFA + lexer DFA).
///  3. **Serializer round-trip**: serialize -> reload -> the compiled
///     grammar must tokenize identically and its LL(*) parser must return
///     the same verdict and tree as the freshly analyzed grammar.
///  4. **Backend totality**: a grammar that analyzes under llstar must
///     analyze under llfinite too (the finite construction never aborts;
///     anything else is a backend bug).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_FUZZ_DIFFERENTIALORACLE_H
#define LLSTAR_FUZZ_DIFFERENTIALORACLE_H

#include "analysis/AnalyzedGrammar.h"
#include "codegen/Serializer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace llstar {
namespace fuzz {

/// Outcome of one oracle check. `Check` is a stable failure-kind tag so
/// minimizers can verify a shrunken case still fails *the same way*.
struct OracleVerdict {
  bool Failed = false;
  std::string Check;  ///< e.g. "accept-mismatch", "tree-mismatch"
  std::string Detail; ///< human-readable explanation

  static OracleVerdict ok() { return {}; }
  static OracleVerdict fail(std::string Check, std::string Detail) {
    return {true, std::move(Check), std::move(Detail)};
  }
};

/// Conformance oracle for one grammar text.
class DifferentialOracle {
public:
  /// Analyzes \p GrammarText once (plus the serializer round-trip). Check
  /// \ref valid() before calling the per-sentence oracle.
  explicit DifferentialOracle(std::string GrammarText);

  /// False when the grammar failed to parse/analyze; \ref grammarError
  /// then explains why. For generator-produced grammars this is itself a
  /// generator bug.
  bool valid() const { return AG != nullptr; }
  const std::string &grammarError() const { return GrammarErr; }

  /// Grammar-level checks: analysis determinism and serializer reload.
  OracleVerdict checkGrammar();

  /// Sentence-level checks: differential verdict/tree agreement plus
  /// re-prediction through the deserialized grammar.
  OracleVerdict checkSentence(const std::string &Input);

  /// Packrat verdict of the most recent checkSentence (in-language
  /// labeling for samplers/mutators).
  bool lastAccepted() const { return LastAccepted; }

  const AnalyzedGrammar &analyzed() const { return *AG; }

  /// The LL(finite)-analyzed twin driving the three-way comparison (null
  /// only when llfinite analysis failed; checkGrammar reports that).
  const AnalyzedGrammar *finiteAnalyzed() const { return FiniteAG.get(); }

  /// True when LL(*) and packrat trees are expected to match: grammars
  /// with precedence-rewritten rules nest operators differently (packrat
  /// ignores precedence predicates), so only verdicts are compared there.
  bool treesComparable() const { return TreesCmp; }

private:
  std::string Text;
  std::string GrammarErr;
  std::string FiniteErr;
  std::unique_ptr<AnalyzedGrammar> AG;
  std::unique_ptr<AnalyzedGrammar> FiniteAG;
  std::unique_ptr<CompiledGrammar> CG;
  bool TreesCmp = true;
  bool LastAccepted = false;
};

} // namespace fuzz
} // namespace llstar

#endif // LLSTAR_FUZZ_DIFFERENTIALORACLE_H
