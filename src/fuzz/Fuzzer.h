//===- fuzz/Fuzzer.h - Differential fuzzing orchestration -------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzz loop: per iteration, generate a grammar from the envelope, run
/// the grammar-level oracle checks (determinism, serializer reload), then
/// sample in-language sentences and mutation candidates and run the
/// differential sentence oracle on each. Failures are minimized — first
/// the input (token ddmin), then the grammar (dropping alternatives and
/// unreferenced rules) — and collected as replayable reproducers.
///
/// Everything is driven by one seed: iteration i uses sub-seed
/// mix(Seed, i), so any failure replays from (envelope, seed, iteration)
/// alone.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_FUZZ_FUZZER_H
#define LLSTAR_FUZZ_FUZZER_H

#include "fuzz/DifferentialOracle.h"
#include "fuzz/GrammarGenerator.h"
#include "fuzz/SentenceSampler.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace llstar {
namespace fuzz {

struct FuzzConfig {
  uint64_t Seed = 0;
  int Iterations = 100;           ///< grammars to generate
  int SentencesPerGrammar = 4;    ///< in-language samples per grammar
  int MutationsPerSentence = 2;   ///< mutation candidates per sample
  bool CheckGrammarLevel = true;  ///< determinism + serializer reload
  bool Minimize = true;           ///< shrink failures before reporting
  GrammarEnvelope Envelope;
};

/// One minimized, replayable failure.
struct FuzzFailure {
  uint64_t GrammarSeed = 0;  ///< sub-seed that generated the grammar
  std::string Check;         ///< oracle failure kind
  std::string Detail;
  std::string GrammarText;   ///< minimized grammar
  std::string Input;         ///< minimized sentence (empty for
                             ///< grammar-level failures)
};

struct FuzzRunStats {
  int64_t Grammars = 0;
  int64_t GrammarFailures = 0; ///< generator produced an invalid grammar
  int64_t Sentences = 0;       ///< derived in-language samples checked
  int64_t Mutants = 0;         ///< mutation candidates checked
  int64_t Accepted = 0;        ///< oracle inputs labeled in-language
  int64_t Rejected = 0;        ///< oracle inputs labeled out-of-language
  int64_t Failures = 0;
};

/// ddmin-style shrink of a failing sentence: repeatedly deletes token
/// chunks while the oracle still fails with the same check kind.
std::vector<std::string>
minimizeSentence(DifferentialOracle &Oracle, std::vector<std::string> Tokens,
                 const std::string &Check);

/// Shrinks a failing grammar by dropping alternatives and rules while a
/// fresh oracle over the re-rendered text still fails with the same check
/// kind on \p Input (which is re-minimized by the caller afterwards).
GeneratedGrammar minimizeGrammar(const GeneratedGrammar &G,
                                 const std::string &Input,
                                 const std::string &Check);

class Fuzzer {
public:
  explicit Fuzzer(FuzzConfig Config) : Config(Config) {}

  /// Runs the loop; returns the number of (minimized) failures.
  int run();

  const FuzzRunStats &stats() const { return Stats; }
  const std::vector<FuzzFailure> &failures() const { return Failures; }

  /// Optional progress hook, called once per iteration.
  std::function<void(int Iteration, const FuzzRunStats &)> Progress;

private:
  void runIteration(int Iteration);
  void reportFailure(uint64_t GrammarSeed, const GeneratedGrammar &G,
                     const std::vector<std::string> &Tokens,
                     const OracleVerdict &V, DifferentialOracle &Oracle);

  FuzzConfig Config;
  FuzzRunStats Stats;
  std::vector<FuzzFailure> Failures;
};

} // namespace fuzz
} // namespace llstar

#endif // LLSTAR_FUZZ_FUZZER_H
