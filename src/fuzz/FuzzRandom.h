//===- fuzz/FuzzRandom.h - Deterministic fuzzing PRNG -----------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small splitmix64-based PRNG for the fuzzing subsystem. The standard
/// <random> engines are deterministic, but their distributions are
/// implementation-defined; fuzz runs must replay bit-identically from a
/// seed across compilers and standard libraries, so everything here is
/// spelled out.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_FUZZ_FUZZRANDOM_H
#define LLSTAR_FUZZ_FUZZRANDOM_H

#include <cstdint>

namespace llstar {
namespace fuzz {

/// splitmix64: tiny, fast, and good enough for test-case generation.
class FuzzRng {
public:
  explicit FuzzRng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, N). N must be > 0.
  uint64_t below(uint64_t N) { return next() % N; }

  /// Uniform value in [Lo, Hi] inclusive.
  int range(int Lo, int Hi) {
    if (Hi <= Lo)
      return Lo;
    return Lo + int(below(uint64_t(Hi - Lo + 1)));
  }

  /// True with probability Percent/100.
  bool chance(int Percent) { return int(below(100)) < Percent; }

  /// Derives an independent sub-seed (for per-iteration generators).
  static uint64_t mix(uint64_t Seed, uint64_t Salt) {
    FuzzRng R(Seed ^ (0x5851f42d4c957f2dULL * (Salt + 1)));
    return R.next();
  }

private:
  uint64_t State;
};

} // namespace fuzz
} // namespace llstar

#endif // LLSTAR_FUZZ_FUZZRANDOM_H
