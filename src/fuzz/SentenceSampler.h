//===- fuzz/SentenceSampler.h - Bounded sentence derivation -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Samples sentences from a \ref Grammar by random bounded derivation and
/// produces out-of-language mutation candidates from them.
///
/// Derivation walks the grammar object model choosing random alternatives
/// and loop counts; past the depth budget it switches to each rule's
/// minimum-height alternative (precomputed by fixpoint), so derivation
/// terminates even for (immediately) left-recursive rules. Sentences are
/// token-text vectors; predicates and actions contribute nothing.
///
/// Mutations (delete / insert / replace / swap / duplicate) produce
/// *candidate* negatives: a mutant may still be in the language, so the
/// differential oracle labels it with the packrat baseline rather than
/// trusting the mutation.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_FUZZ_SENTENCESAMPLER_H
#define LLSTAR_FUZZ_SENTENCESAMPLER_H

#include "fuzz/FuzzRandom.h"
#include "grammar/Grammar.h"

#include <string>
#include <vector>

namespace llstar {
namespace fuzz {

struct SamplerOptions {
  int MaxDepth = 10;   ///< derivation depth before min-height fallback
  int MaxTokens = 200; ///< soft cap; derivation turns minimal beyond it
};

/// Samples sentences (token-text vectors) from one grammar.
class SentenceSampler {
public:
  SentenceSampler(const Grammar &G, uint64_t Seed, SamplerOptions Opts = {});

  /// Derives one sentence from \p RuleIndex (the start rule when -1).
  std::vector<std::string> sample(int32_t RuleIndex = -1);

  /// Applies one random mutation; returns the mutant (input unchanged).
  std::vector<std::string> mutate(const std::vector<std::string> &Tokens);

  /// Joins tokens with single spaces (the lexable input form).
  static std::string render(const std::vector<std::string> &Tokens);

  /// Text for one random terminal of the grammar (mutation insertions).
  std::string sampleTerminalText();

private:
  void deriveRule(int32_t Rule, std::vector<std::string> &Out, int Depth);
  void deriveAlt(const Alternative &A, std::vector<std::string> &Out,
                 int Depth);
  void deriveElement(const Element &E, std::vector<std::string> &Out,
                     int Depth);
  std::string tokenText(TokenType Type);
  bool overBudget(const std::vector<std::string> &Out, int Depth) const;

  /// Fixpoint: minimal derivation height per rule / per alternative
  /// (INT_MAX/2 when an alternative cannot terminate).
  void computeMinHeights();
  int altHeight(const Alternative &A) const;
  int elementHeight(const Element &E) const;

  const Grammar &G;
  FuzzRng Rng;
  SamplerOptions Opts;
  std::vector<int> RuleMinHeight;
  std::vector<std::string> TerminalPool; ///< literal texts + ID/INT samples
};

} // namespace fuzz
} // namespace llstar

#endif // LLSTAR_FUZZ_SENTENCESAMPLER_H
