#include "fuzz/DifferentialOracle.h"

#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "peg/PackratParser.h"
#include "runtime/LLStarParser.h"

using namespace llstar;
using namespace llstar::fuzz;

DifferentialOracle::DifferentialOracle(std::string GrammarText)
    : Text(std::move(GrammarText)) {
  DiagnosticEngine Diags;
  AG = analyzeGrammarText(Text, Diags);
  if (!AG || Diags.hasErrors()) {
    AG = nullptr;
    GrammarErr = Diags.str();
    return;
  }
  for (const Rule &R : AG->grammar().rules())
    if (R.IsPrecedenceRule)
      TreesCmp = false;

  // The LL(finite) twin for the three-way comparison. llstar accepted the
  // grammar, so llfinite must too; a failure here is reported by
  // checkGrammar as a backend bug, not a generator bug.
  DiagnosticEngine FiniteDiags;
  FiniteAG = analyzeGrammarText(Text, FiniteDiags, BackendKind::LLFinite);
  if (!FiniteAG || FiniteDiags.hasErrors()) {
    FiniteAG = nullptr;
    FiniteErr = FiniteDiags.str();
  }
}

OracleVerdict DifferentialOracle::checkGrammar() {
  // Determinism: a second analysis of the same text must serialize to the
  // same bytes — ATN construction, subset construction, and DFA encoding
  // may not depend on iteration order of hashed containers.
  std::string First = serializeGrammar(*AG);
  {
    DiagnosticEngine Diags;
    auto AG2 = analyzeGrammarText(Text, Diags);
    if (!AG2 || Diags.hasErrors())
      return OracleVerdict::fail("nondeterministic-analysis",
                                 "second analysis of the same text failed:\n" +
                                     Diags.str());
    std::string Second = serializeGrammar(*AG2);
    if (First != Second) {
      size_t At = 0;
      while (At < First.size() && At < Second.size() &&
             First[At] == Second[At])
        ++At;
      return OracleVerdict::fail(
          "nondeterministic-analysis",
          "two DFA constructions differ at serialized offset " +
              std::to_string(At));
    }
  }

  // Backend totality: llstar analyzed this grammar, so llfinite must too.
  if (!FiniteAG)
    return OracleVerdict::fail("backend-analyze",
                               "llfinite backend failed on a grammar llstar "
                               "accepted:\n" +
                                   FiniteErr);

  // llfinite determinism, same contract as llstar above.
  {
    std::string FiniteFirst = serializeGrammar(*FiniteAG);
    DiagnosticEngine Diags;
    auto F2 = analyzeGrammarText(Text, Diags, BackendKind::LLFinite);
    if (!F2 || Diags.hasErrors() || serializeGrammar(*F2) != FiniteFirst)
      return OracleVerdict::fail(
          "nondeterministic-analysis",
          "two llfinite DFA constructions of the same text differ");
  }

  // Serializer round-trip: the compiled form must load back cleanly. The
  // loaded grammar also drives the per-sentence re-prediction check.
  DiagnosticEngine Diags;
  CG = deserializeGrammar(First, Diags);
  if (!CG || Diags.hasErrors()) {
    CG = nullptr;
    return OracleVerdict::fail("serializer-reload",
                               "deserializeGrammar rejected its own output:\n" +
                                   Diags.str());
  }
  return OracleVerdict::ok();
}

namespace {

struct ParseOutcome {
  bool LexOk = false;
  bool Ok = false;
  std::string Tree;
  std::string Diags;
};

ParseOutcome runLLStar(const AnalyzedGrammar &AG, const std::string &Input) {
  ParseOutcome R;
  DiagnosticEngine LexDiags;
  Lexer L(AG.grammar().lexerSpec(), LexDiags);
  std::vector<Token> Tokens = L.tokenize(Input, LexDiags);
  if (LexDiags.hasErrors()) {
    R.Diags = LexDiags.str();
    return R;
  }
  R.LexOk = true;
  TokenStream Stream(std::move(Tokens));
  DiagnosticEngine Diags;
  ParserOptions Opts;
  Opts.BuildTree = true;
  Opts.CollectStats = false;
  Opts.Recover = false; // recovery would mask accept/reject disagreements
  LLStarParser P(AG, Stream, nullptr, Diags, Opts);
  auto Tree = P.parse();
  R.Ok = P.ok();
  R.Diags = Diags.str();
  if (R.Ok && Tree)
    R.Tree = Tree->str(AG.grammar());
  return R;
}

ParseOutcome runPackrat(const Grammar &G, const std::string &Input) {
  ParseOutcome R;
  DiagnosticEngine LexDiags;
  Lexer L(G.lexerSpec(), LexDiags);
  std::vector<Token> Tokens = L.tokenize(Input, LexDiags);
  if (LexDiags.hasErrors()) {
    R.Diags = LexDiags.str();
    return R;
  }
  R.LexOk = true;
  TokenStream Stream(std::move(Tokens));
  DiagnosticEngine Diags;
  PackratParser::Options Opts;
  Opts.BuildTree = true;
  PackratParser P(G, Stream, nullptr, Diags, Opts);
  auto Tree = P.parse();
  R.Ok = P.ok();
  R.Diags = Diags.str();
  if (R.Ok && Tree)
    R.Tree = Tree->str(G);
  return R;
}

} // namespace

OracleVerdict DifferentialOracle::checkSentence(const std::string &Input) {
  ParseOutcome LL = runLLStar(*AG, Input);
  ParseOutcome Peg = runPackrat(AG->grammar(), Input);
  LastAccepted = Peg.LexOk && Peg.Ok;

  if (LL.LexOk != Peg.LexOk)
    return OracleVerdict::fail("lex-mismatch",
                               "lexers disagree on input <" + Input + ">");
  if (!LL.LexOk)
    // Both lexers reject: mutation produced unlexable text; not a parser
    // disagreement. (Generator-envelope inputs are always lexable.)
    return OracleVerdict::ok();

  if (LL.Ok != Peg.Ok)
    return OracleVerdict::fail(
        "accept-mismatch", "LL(*) " + std::string(LL.Ok ? "accepts" : "rejects") +
                               " but packrat " +
                               std::string(Peg.Ok ? "accepts" : "rejects") +
                               " input <" + Input + ">\nLL(*): " + LL.Diags +
                               "packrat: " + Peg.Diags);

  if (LL.Ok && TreesCmp && LL.Tree != Peg.Tree)
    return OracleVerdict::fail("tree-mismatch",
                               "parse trees differ on input <" + Input +
                                   ">\nLL(*):   " + LL.Tree +
                                   "\npackrat: " + Peg.Tree);

  // Third leg: the same runtime over LL(finite) decision tables must agree
  // with LL(*) on verdict and tree.
  if (FiniteAG) {
    ParseOutcome Fin = runLLStar(*FiniteAG, Input);
    if (Fin.Ok != LL.Ok)
      return OracleVerdict::fail(
          "backend-accept-mismatch",
          "llfinite " + std::string(Fin.Ok ? "accepts" : "rejects") +
              " but llstar " + std::string(LL.Ok ? "accepts" : "rejects") +
              " input <" + Input + ">\nllfinite: " + Fin.Diags +
              "llstar: " + LL.Diags);
    if (Fin.Ok && TreesCmp && Fin.Tree != LL.Tree)
      return OracleVerdict::fail("backend-tree-mismatch",
                                 "backends build different trees on input <" +
                                     Input + ">\nllstar:   " + LL.Tree +
                                     "\nllfinite: " + Fin.Tree);
  }

  // Serializer re-prediction: the deserialized tables must behave like the
  // fresh analysis — same tokens, same verdict, same tree.
  if (CG) {
    DiagnosticEngine LexDiags;
    std::vector<Token> Reloaded = CG->tokenize(Input, LexDiags);
    if (LexDiags.hasErrors())
      return OracleVerdict::fail("serializer-tokens",
                                 "compiled lexer rejects input <" + Input +
                                     ">:\n" + LexDiags.str());
    {
      DiagnosticEngine FreshDiags;
      Lexer L(AG->grammar().lexerSpec(), FreshDiags);
      std::vector<Token> Fresh = L.tokenize(Input, FreshDiags);
      if (Fresh.size() != Reloaded.size())
        return OracleVerdict::fail(
            "serializer-tokens",
            "compiled lexer token count differs on input <" + Input + ">");
      for (size_t I = 0; I < Fresh.size(); ++I)
        if (Fresh[I].Type != Reloaded[I].Type ||
            Fresh[I].Text != Reloaded[I].Text)
          return OracleVerdict::fail(
              "serializer-tokens",
              "compiled lexer token " + std::to_string(I) +
                  " differs on input <" + Input + ">: '" + Fresh[I].Text +
                  "' vs '" + Reloaded[I].Text + "'");
    }

    // Parse through the reloaded tables. The deserialized Grammar carries
    // no LexerSpec — tokens must come from the precompiled lexer DFA.
    ParseOutcome Re;
    Re.LexOk = true;
    {
      TokenStream Stream{std::vector<Token>(Reloaded)};
      DiagnosticEngine Diags;
      ParserOptions Opts;
      Opts.BuildTree = true;
      Opts.CollectStats = false;
      Opts.Recover = false;
      LLStarParser P(*CG->AG, Stream, nullptr, Diags, Opts);
      auto Tree = P.parse();
      Re.Ok = P.ok();
      if (Re.Ok && Tree)
        Re.Tree = Tree->str(CG->AG->grammar());
    }
    if (Re.Ok != LL.Ok)
      return OracleVerdict::fail(
          "serializer-verdict",
          "reloaded grammar " + std::string(Re.Ok ? "accepts" : "rejects") +
              " but fresh analysis " +
              std::string(LL.Ok ? "accepts" : "rejects") + " input <" + Input +
              ">");
    if (Re.Ok && Re.Tree != LL.Tree)
      return OracleVerdict::fail("serializer-tree",
                                 "reloaded grammar builds a different tree "
                                 "on input <" +
                                     Input + ">\nfresh:    " + LL.Tree +
                                     "\nreloaded: " + Re.Tree);
  }

  return OracleVerdict::ok();
}
