#include "fuzz/Fuzzer.h"

#include <algorithm>

using namespace llstar;
using namespace llstar::fuzz;

//===----------------------------------------------------------------------===//
// Minimization
//===----------------------------------------------------------------------===//

namespace {

/// Does the oracle still fail the same way on this exact input?
bool failsSameWay(DifferentialOracle &Oracle,
                  const std::vector<std::string> &Tokens,
                  const std::string &Check) {
  OracleVerdict V = Oracle.checkSentence(SentenceSampler::render(Tokens));
  return V.Failed && V.Check == Check;
}

} // namespace

std::vector<std::string>
llstar::fuzz::minimizeSentence(DifferentialOracle &Oracle,
                               std::vector<std::string> Tokens,
                               const std::string &Check) {
  // Classic ddmin sweep: chunk sizes from half down to single tokens;
  // restart at the current chunk size after any successful removal.
  for (size_t Chunk = std::max<size_t>(Tokens.size() / 2, 1); Chunk >= 1;
       Chunk /= 2) {
    bool Removed = true;
    while (Removed) {
      Removed = false;
      for (size_t At = 0; At + Chunk <= Tokens.size();) {
        std::vector<std::string> Candidate;
        Candidate.reserve(Tokens.size() - Chunk);
        Candidate.insert(Candidate.end(), Tokens.begin(),
                         Tokens.begin() + long(At));
        Candidate.insert(Candidate.end(), Tokens.begin() + long(At + Chunk),
                         Tokens.end());
        if (failsSameWay(Oracle, Candidate, Check)) {
          Tokens = std::move(Candidate);
          Removed = true;
        } else {
          At += Chunk;
        }
      }
    }
    if (Chunk == 1)
      break;
  }
  return Tokens;
}

GeneratedGrammar llstar::fuzz::minimizeGrammar(const GeneratedGrammar &G,
                                               const std::string &Input,
                                               const std::string &Check) {
  auto StillFails = [&](const GeneratedGrammar &Candidate) {
    DifferentialOracle Oracle(Candidate.text());
    if (!Oracle.valid())
      return false; // dropping broke the grammar (dangling reference etc.)
    OracleVerdict V = Oracle.checkGrammar();
    if (!V.Failed)
      V = Oracle.checkSentence(Input);
    return V.Failed && V.Check == Check;
  };

  GeneratedGrammar Best = G;
  bool Shrunk = true;
  while (Shrunk) {
    Shrunk = false;
    // Drop whole rules (works only when nothing references them — the
    // validity probe rejects candidates with dangling references).
    for (size_t R = 1; R < Best.Rules.size(); ++R) {
      GeneratedGrammar Candidate = Best;
      Candidate.Rules.erase(Candidate.Rules.begin() + long(R));
      if (StillFails(Candidate)) {
        Best = std::move(Candidate);
        Shrunk = true;
        break;
      }
    }
    if (Shrunk)
      continue;
    // Drop single alternatives from multi-alternative rules.
    for (size_t R = 0; R < Best.Rules.size(); ++R) {
      if (Best.Rules[R].Alts.size() < 2)
        continue;
      for (size_t A = 0; A < Best.Rules[R].Alts.size(); ++A) {
        GeneratedGrammar Candidate = Best;
        Candidate.Rules[R].Alts.erase(Candidate.Rules[R].Alts.begin() +
                                      long(A));
        if (StillFails(Candidate)) {
          Best = std::move(Candidate);
          Shrunk = true;
          break;
        }
      }
      if (Shrunk)
        break;
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// The fuzz loop
//===----------------------------------------------------------------------===//

void Fuzzer::reportFailure(uint64_t GrammarSeed, const GeneratedGrammar &G,
                           const std::vector<std::string> &Tokens,
                           const OracleVerdict &V,
                           DifferentialOracle &Oracle) {
  ++Stats.Failures;
  FuzzFailure F;
  F.GrammarSeed = GrammarSeed;
  F.Check = V.Check;
  F.Detail = V.Detail;
  F.GrammarText = G.text();
  F.Input = SentenceSampler::render(Tokens);

  if (Config.Minimize) {
    std::vector<std::string> MinTokens =
        Tokens.empty() ? Tokens : minimizeSentence(Oracle, Tokens, V.Check);
    GeneratedGrammar MinG =
        minimizeGrammar(G, SentenceSampler::render(MinTokens), V.Check);
    // The smaller grammar may admit an even smaller input.
    DifferentialOracle MinOracle(MinG.text());
    if (MinOracle.valid()) {
      if (Config.CheckGrammarLevel)
        MinOracle.checkGrammar();
      if (!MinTokens.empty())
        MinTokens = minimizeSentence(MinOracle, MinTokens, V.Check);
    }
    F.GrammarText = MinG.text();
    F.Input = SentenceSampler::render(MinTokens);
  }
  Failures.push_back(std::move(F));
}

void Fuzzer::runIteration(int Iteration) {
  uint64_t SubSeed = FuzzRng::mix(Config.Seed, uint64_t(Iteration));
  GrammarGenerator Gen(Config.Envelope, SubSeed);
  GeneratedGrammar G = Gen.generate();
  ++Stats.Grammars;

  DifferentialOracle Oracle(G.text());
  if (!Oracle.valid()) {
    // The generator promised a valid grammar and the front end disagreed:
    // report as a failure of the harness contract.
    ++Stats.GrammarFailures;
    reportFailure(SubSeed, G, {},
                  OracleVerdict::fail("grammar-error", Oracle.grammarError()),
                  Oracle);
    return;
  }

  if (Config.CheckGrammarLevel) {
    OracleVerdict V = Oracle.checkGrammar();
    if (V.Failed) {
      reportFailure(SubSeed, G, {}, V, Oracle);
      return;
    }
  }

  SentenceSampler Sampler(Oracle.analyzed().grammar(),
                          FuzzRng::mix(SubSeed, 0x5a5a5a5aULL));
  for (int S = 0; S < Config.SentencesPerGrammar; ++S) {
    std::vector<std::string> Tokens = Sampler.sample();
    ++Stats.Sentences;
    OracleVerdict V = Oracle.checkSentence(SentenceSampler::render(Tokens));
    if (Oracle.lastAccepted())
      ++Stats.Accepted;
    else
      ++Stats.Rejected;
    if (V.Failed) {
      reportFailure(SubSeed, G, Tokens, V, Oracle);
      continue;
    }

    for (int M = 0; M < Config.MutationsPerSentence; ++M) {
      std::vector<std::string> Mutant = Sampler.mutate(Tokens);
      ++Stats.Mutants;
      OracleVerdict MV =
          Oracle.checkSentence(SentenceSampler::render(Mutant));
      if (Oracle.lastAccepted())
        ++Stats.Accepted;
      else
        ++Stats.Rejected;
      if (MV.Failed)
        reportFailure(SubSeed, G, Mutant, MV, Oracle);
    }
  }
}

int Fuzzer::run() {
  for (int I = 0; I < Config.Iterations; ++I) {
    runIteration(I);
    if (Progress)
      Progress(I, Stats);
  }
  return int(Failures.size());
}
