#include "fuzz/SentenceSampler.h"

#include <algorithm>
#include <climits>

using namespace llstar;
using namespace llstar::fuzz;

// Heights are "nested rule expansions"; this sentinel means "cannot
// terminate from here" and never survives the fixpoint for well-formed
// grammars.
static constexpr int InfHeight = INT_MAX / 2;

SentenceSampler::SentenceSampler(const Grammar &G, uint64_t Seed,
                                 SamplerOptions Opts)
    : G(G), Rng(Seed), Opts(Opts) {
  computeMinHeights();

  const Vocabulary &V = G.vocabulary();
  bool HasId = false, HasInt = false;
  for (TokenType T = TokenMinUserType; T <= V.maxTokenType(); ++T) {
    if (V.isLiteral(T))
      TerminalPool.push_back(V.literalText(T));
    HasId |= V.name(T) == "ID";
    HasInt |= V.name(T) == "INT";
  }
  if (HasId) {
    TerminalPool.push_back("x1");
    TerminalPool.push_back("w9");
  }
  if (HasInt) {
    TerminalPool.push_back("7");
    TerminalPool.push_back("301");
  }
}

//===----------------------------------------------------------------------===//
// Minimum derivation heights
//===----------------------------------------------------------------------===//

int SentenceSampler::elementHeight(const Element &E) const {
  switch (E.Kind) {
  case ElementKind::RuleRef:
    return RuleMinHeight[size_t(E.RuleIndex)];
  case ElementKind::Block: {
    if (E.Repeat == BlockRepeat::Optional || E.Repeat == BlockRepeat::Star)
      return 0; // zero iterations always terminate
    int Best = InfHeight;
    for (const Alternative &A : E.Alts)
      Best = std::min(Best, altHeight(A));
    return Best;
  }
  default:
    return 0; // terminals, predicates, actions
  }
}

int SentenceSampler::altHeight(const Alternative &A) const {
  int H = 0;
  for (const Element &E : A.Elements)
    H = std::max(H, elementHeight(E));
  return H;
}

void SentenceSampler::computeMinHeights() {
  RuleMinHeight.assign(G.numRules(), InfHeight);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t R = 0; R < G.numRules(); ++R) {
      int Best = InfHeight;
      for (const Alternative &A : G.rule(int32_t(R)).Alts)
        Best = std::min(Best, altHeight(A));
      if (Best < InfHeight)
        ++Best;
      if (Best < RuleMinHeight[R]) {
        RuleMinHeight[R] = Best;
        Changed = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Derivation
//===----------------------------------------------------------------------===//

bool SentenceSampler::overBudget(const std::vector<std::string> &Out,
                                 int Depth) const {
  return Depth > Opts.MaxDepth || int(Out.size()) > Opts.MaxTokens;
}

std::vector<std::string> SentenceSampler::sample(int32_t RuleIndex) {
  std::vector<std::string> Out;
  deriveRule(RuleIndex < 0 ? G.startRule() : RuleIndex, Out, 0);
  return Out;
}

void SentenceSampler::deriveRule(int32_t Rule, std::vector<std::string> &Out,
                                 int Depth) {
  const ::llstar::Rule &R = G.rule(Rule);
  size_t Pick;
  if (overBudget(Out, Depth)) {
    // Minimal-height alternative: guarantees termination past the budget
    // (ties broken toward the first alternative).
    Pick = 0;
    int Best = InfHeight;
    for (size_t A = 0; A < R.Alts.size(); ++A) {
      int H = altHeight(R.Alts[A]);
      if (H < Best) {
        Best = H;
        Pick = A;
      }
    }
  } else {
    Pick = size_t(Rng.below(R.Alts.size()));
  }
  deriveAlt(R.Alts[Pick], Out, Depth);
}

void SentenceSampler::deriveAlt(const Alternative &A,
                                std::vector<std::string> &Out, int Depth) {
  for (const Element &E : A.Elements)
    deriveElement(E, Out, Depth);
}

std::string SentenceSampler::tokenText(TokenType Type) {
  const Vocabulary &V = G.vocabulary();
  if (V.isLiteral(Type))
    return V.literalText(Type);
  const std::string &Name = V.name(Type);
  if (Name == "ID")
    return "x" + std::to_string(Rng.below(10));
  if (Name == "INT")
    return std::to_string(Rng.below(100));
  return Name; // best effort for unknown named tokens
}

void SentenceSampler::deriveElement(const Element &E,
                                    std::vector<std::string> &Out,
                                    int Depth) {
  switch (E.Kind) {
  case ElementKind::TokenRef:
    if (E.TokType != TokenEof)
      Out.push_back(tokenText(E.TokType));
    return;
  case ElementKind::TokenSet: {
    // Pick any concrete vocabulary token the set admits.
    const Vocabulary &V = G.vocabulary();
    std::vector<TokenType> Candidates;
    for (TokenType T = TokenMinUserType; T <= V.maxTokenType(); ++T)
      if (E.Negated ? !E.TokSet.contains(T) : E.TokSet.contains(T))
        Candidates.push_back(T);
    if (!Candidates.empty())
      Out.push_back(tokenText(Candidates[Rng.below(Candidates.size())]));
    return;
  }
  case ElementKind::RuleRef:
    deriveRule(E.RuleIndex, Out, Depth + 1);
    return;
  case ElementKind::Block: {
    int Reps = 1;
    bool Tight = overBudget(Out, Depth);
    switch (E.Repeat) {
    case BlockRepeat::None:
      Reps = 1;
      break;
    case BlockRepeat::Optional:
      Reps = Tight ? 0 : Rng.range(0, 1);
      break;
    case BlockRepeat::Star:
      Reps = Tight ? 0 : Rng.range(0, 2);
      break;
    case BlockRepeat::Plus:
      Reps = Tight ? 1 : Rng.range(1, 2);
      break;
    }
    for (int I = 0; I < Reps; ++I) {
      size_t Pick = 0;
      if (Tight) {
        int Best = InfHeight;
        for (size_t A = 0; A < E.Alts.size(); ++A)
          if (altHeight(E.Alts[A]) < Best) {
            Best = altHeight(E.Alts[A]);
            Pick = A;
          }
      } else {
        Pick = size_t(Rng.below(E.Alts.size()));
      }
      deriveAlt(E.Alts[Pick], Out, Depth + 1);
    }
    return;
  }
  case ElementKind::SemPred:
  case ElementKind::SynPred:
  case ElementKind::Action:
    return; // invisible to derivation
  }
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

std::string SentenceSampler::sampleTerminalText() {
  if (TerminalPool.empty())
    return "z";
  return TerminalPool[Rng.below(TerminalPool.size())];
}

std::vector<std::string>
SentenceSampler::mutate(const std::vector<std::string> &Tokens) {
  std::vector<std::string> M = Tokens;
  // Insertions always apply; the other operators need a non-empty input.
  int Op = M.empty() ? 1 : int(Rng.below(6));
  switch (Op) {
  case 0: // delete one token
    M.erase(M.begin() + long(Rng.below(M.size())));
    break;
  case 1: // insert a random terminal
    M.insert(M.begin() + long(Rng.below(M.size() + 1)), sampleTerminalText());
    break;
  case 2: // replace one token
    M[Rng.below(M.size())] = sampleTerminalText();
    break;
  case 3: // swap adjacent tokens
    if (M.size() >= 2) {
      size_t I = Rng.below(M.size() - 1);
      std::swap(M[I], M[I + 1]);
    } else {
      M.insert(M.begin(), sampleTerminalText());
    }
    break;
  case 4: // duplicate one token
    {
      size_t I = Rng.below(M.size());
      M.insert(M.begin() + long(I), M[I]);
    }
    break;
  case 5: // truncate a suffix
    M.resize(Rng.below(M.size()));
    break;
  }
  return M;
}

std::string SentenceSampler::render(const std::vector<std::string> &Tokens) {
  std::string Out;
  for (size_t I = 0; I < Tokens.size(); ++I) {
    if (I)
      Out += ' ';
    Out += Tokens[I];
  }
  return Out;
}
