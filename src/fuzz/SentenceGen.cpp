#include "fuzz/SentenceGen.h"

#include "fuzz/SentenceSampler.h"
#include "lexer/Lexer.h"

#include <deque>
#include <unordered_set>

using namespace llstar;
using namespace llstar::fuzz;

namespace {

constexpr int64_t Inf = int64_t(1) << 30;
constexpr int MaxSteps = 100000;
constexpr size_t MaxSentenceTokens = 512;

/// Smallest user-defined token type a Set transition admits.
TokenType firstUserTokenIn(const IntervalSet &S) {
  for (const Interval &I : S.intervals())
    if (I.Hi >= TokenMinUserType)
      return std::max(I.Lo, TokenMinUserType);
  return TokenInvalid;
}

/// A readable character from \p Set: prefer 'x', then lowercase letters,
/// then digits, then any printable ASCII, then the set minimum.
char pickChar(const IntervalSet &Set) {
  if (Set.contains('x'))
    return 'x';
  for (auto [Lo, Hi] : {std::pair<int32_t, int32_t>{'a', 'z'},
                        {'0', '9'},
                        {33, 126}})
    for (const Interval &I : Set.intervals()) {
      int32_t From = std::max(I.Lo, Lo), To = std::min(I.Hi, Hi);
      if (From <= To)
        return char(From);
    }
  return char(Set.min());
}

/// Appends the shortest string \p N matches to \p Out. \p Budget bounds
/// both output length and Alt fan-out; returns false when exhausted or the
/// node cannot match anything (empty char set).
bool shortestRegexMatch(const regex::RegexNode &N, std::string &Out,
                        int Budget) {
  if (int(Out.size()) > Budget)
    return false;
  switch (N.kind()) {
  case regex::RegexKind::Epsilon:
  case regex::RegexKind::Star:
  case regex::RegexKind::Optional:
    return true; // match empty
  case regex::RegexKind::CharSet:
    if (N.set().empty())
      return false;
    Out += pickChar(N.set());
    return true;
  case regex::RegexKind::Plus:
    return shortestRegexMatch(*N.children()[0], Out, Budget);
  case regex::RegexKind::Concat:
    for (const auto &C : N.children())
      if (!shortestRegexMatch(*C, Out, Budget))
        return false;
    return true;
  case regex::RegexKind::Alt: {
    std::string Best;
    bool Found = false;
    for (const auto &C : N.children()) {
      std::string Candidate;
      if (shortestRegexMatch(*C, Candidate, Budget) &&
          (!Found || Candidate.size() < Best.size())) {
        Best = std::move(Candidate);
        Found = true;
      }
    }
    if (Found)
      Out += Best;
    return Found;
  }
  }
  return false;
}

/// Cost of traversing \p T given the current cost table: emitted tokens
/// plus the minimal remainder of whatever the transition enters.
int64_t edgeCost(const Atn &M, const AtnTransition &T,
                 const std::vector<int64_t> &Cost) {
  switch (T.Kind) {
  case AtnTransitionKind::Atom:
    return (T.Label == TokenEof ? 0 : 1) + Cost[size_t(T.Target)];
  case AtnTransitionKind::Set:
    return 1 + Cost[size_t(T.Target)];
  case AtnTransitionKind::Rule:
    return Cost[size_t(M.ruleStart(T.RuleIndex))] +
           Cost[size_t(T.FollowState)];
  default:
    return Cost[size_t(T.Target)];
  }
}

} // namespace

SentenceGen::SentenceGen(const AnalyzedGrammar &AG) : AG(AG) {
  const Atn &M = AG.atn();
  size_t N = M.numStates();

  // Fixpoint: minimal tokens from each state to its own rule stop. Costs
  // only decrease, so iteration terminates.
  StateCost.assign(N, Inf);
  for (size_t S = 0; S < N; ++S)
    if (M.state(int32_t(S)).Kind == AtnStateKind::RuleStop)
      StateCost[S] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t S = 0; S < N; ++S) {
      const AtnState &St = M.state(int32_t(S));
      if (St.Kind == AtnStateKind::RuleStop)
        continue;
      int64_t Best = Inf;
      for (const AtnTransition &T : St.Transitions)
        Best = std::min(Best, edgeCost(M, T, StateCost));
      if (Best < StateCost[S]) {
        StateCost[S] = Best;
        Changed = true;
      }
    }
  }

  // Reverse adjacency of the call-collapsed graph. The return edge of a
  // rule transition only exists when the invoked rule can terminate.
  Rev.assign(N, {});
  for (size_t S = 0; S < N; ++S)
    for (const AtnTransition &T : M.state(int32_t(S)).Transitions) {
      if (T.Kind == AtnTransitionKind::Rule) {
        Rev[size_t(M.ruleStart(T.RuleIndex))].push_back(int32_t(S));
        if (StateCost[size_t(M.ruleStart(T.RuleIndex))] < Inf)
          Rev[size_t(T.FollowState)].push_back(int32_t(S));
      } else {
        Rev[size_t(T.Target)].push_back(int32_t(S));
      }
    }
}

std::vector<uint8_t> SentenceGen::reachable(int32_t Target) const {
  std::vector<uint8_t> Reach(Rev.size(), 0);
  std::deque<int32_t> Queue{Target};
  Reach[size_t(Target)] = 1;
  while (!Queue.empty()) {
    int32_t S = Queue.front();
    Queue.pop_front();
    for (int32_t Prev : Rev[size_t(S)])
      if (!Reach[size_t(Prev)]) {
        Reach[size_t(Prev)] = 1;
        Queue.push_back(Prev);
      }
  }
  return Reach;
}

std::string SentenceGen::tokenText(TokenType Type) const {
  const Vocabulary &V = AG.grammar().vocabulary();
  if (V.isLiteral(Type))
    return V.literalText(Type);
  // Derive a minimal witness string from the token's lexer regex; the
  // lex-back check in seeds() rejects the rare guess that a higher-priority
  // rule (e.g. a keyword literal) steals.
  for (const LexerRule &R : AG.grammar().lexerSpec().Rules)
    if (R.Type == Type && R.Pattern) {
      std::string Witness;
      if (shortestRegexMatch(*R.Pattern, Witness, /*Budget=*/64))
        return Witness;
      break;
    }
  return "x"; // last resort; dropped by the lex-back check if wrong
}

bool SentenceGen::sentenceFor(int32_t Decision, int32_t Alt,
                              std::vector<std::string> &Out) const {
  std::vector<TokenType> Types;
  return walk(Decision, Alt, Out, Types);
}

bool SentenceGen::walk(int32_t Decision, int32_t Alt,
                       std::vector<std::string> &Out,
                       std::vector<TokenType> &Types) const {
  const Atn &M = AG.atn();
  int32_t TD = M.decisionState(Decision);
  if (Alt < 1 || size_t(Alt) > M.state(TD).Transitions.size())
    return false;
  int32_t Start = M.ruleStart(AG.grammar().startRule());
  if (StateCost[size_t(Start)] >= Inf)
    return false;
  std::vector<uint8_t> Reach = reachable(TD);
  if (!Reach[size_t(Start)])
    return false;

  Out.clear();
  Types.clear();
  std::vector<int32_t> Stack;
  int32_t P = Start;
  bool Forced = false;
  for (int Steps = 0; Steps < MaxSteps; ++Steps) {
    if (Out.size() > MaxSentenceTokens)
      return false;
    const AtnState &S = M.state(P);
    if (S.Kind == AtnStateKind::RuleStop) {
      if (Stack.empty())
        return Forced; // derivation complete; demand the forced alt was hit
      P = Stack.back();
      Stack.pop_back();
      continue;
    }

    size_t Pick = 0;
    if (P == TD && !Forced) {
      Pick = size_t(Alt) - 1;
      Forced = true;
    } else if (S.Transitions.size() > 1) {
      // Steer toward the target decision while it is still ahead; once
      // forced (or when no transition leads there) take the cheapest
      // continuation. Ties prefer the last transition — the exit
      // alternative of loop decisions — so epsilon loops break.
      bool Steered = false;
      int64_t Best = Inf * 2;
      for (size_t I = 0; I < S.Transitions.size(); ++I) {
        const AtnTransition &T = S.Transitions[I];
        if (!Forced) {
          bool Leads =
              T.Kind == AtnTransitionKind::Rule
                  ? (Reach[size_t(M.ruleStart(T.RuleIndex))] ||
                     (StateCost[size_t(M.ruleStart(T.RuleIndex))] < Inf &&
                      Reach[size_t(T.FollowState)]))
                  : Reach[size_t(T.Target)] != 0;
          if (Leads && !Steered) {
            Steered = true;
            Pick = I;
          }
          if (Steered)
            continue;
        }
        int64_t C = edgeCost(M, T, StateCost);
        if (C <= Best) {
          Best = C;
          Pick = I;
        }
      }
    }

    const AtnTransition &T = S.Transitions[Pick];
    switch (T.Kind) {
    case AtnTransitionKind::Atom:
      if (T.Label != TokenEof) {
        Out.push_back(tokenText(T.Label));
        Types.push_back(T.Label);
      }
      P = T.Target;
      break;
    case AtnTransitionKind::Set: {
      TokenType Picked = firstUserTokenIn(T.Labels);
      Out.push_back(tokenText(Picked));
      Types.push_back(Picked);
      P = T.Target;
      break;
    }
    case AtnTransitionKind::Rule:
      Stack.push_back(T.FollowState);
      P = M.ruleStart(T.RuleIndex);
      break;
    default:
      // Predicates evaluate true in the default environment; actions are
      // inert for sentence text.
      P = T.Target;
      break;
    }
  }
  return false; // step budget exhausted
}

std::vector<std::vector<std::string>>
SentenceGen::seeds(size_t MaxSeeds) const {
  std::vector<std::vector<std::string>> Out;
  std::unordered_set<std::string> Seen;
  const Atn &M = AG.atn();
  for (size_t D = 0; D < AG.numDecisions() && Out.size() < MaxSeeds; ++D) {
    const AtnState &S = M.state(M.decisionState(int32_t(D)));
    for (size_t Alt = 1;
         Alt <= S.Transitions.size() && Out.size() < MaxSeeds; ++Alt) {
      std::vector<TokenType> Witness;
      if (!AG.dfa(int32_t(D)).shortestPathToAlt(int32_t(Alt), Witness))
        continue; // the DFA never predicts this alternative
      std::vector<std::string> Sentence;
      std::vector<TokenType> Types;
      if (!walk(int32_t(D), int32_t(Alt), Sentence, Types))
        continue;
      std::string Rendered = SentenceSampler::render(Sentence);
      if (Seen.count(Rendered))
        continue;
      // Lex-back check: the guessed token texts must tokenize to exactly
      // the intended type sequence, or the sentence is no witness at all
      // (e.g. an identifier guess colliding with a keyword literal).
      DiagnosticEngine Diags;
      Lexer L(AG.grammar().lexerSpec(), Diags);
      std::vector<Token> Lexed = L.tokenize(Rendered, Diags);
      if (Diags.hasErrors() || Lexed.size() != Types.size() + 1)
        continue;
      bool TypesMatch = true;
      for (size_t I = 0; I < Types.size(); ++I)
        TypesMatch &= Lexed[I].Type == Types[I];
      if (!TypesMatch || Lexed.back().Type != TokenEof)
        continue;
      Seen.insert(std::move(Rendered));
      Out.push_back(std::move(Sentence));
    }
  }
  return Out;
}
