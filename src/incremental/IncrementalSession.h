//===- incremental/IncrementalSession.h - Editor-style reparse --*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental subsystem's front door: an \ref IncrementalSession owns
/// one evolving text together with its token stream, parse tree, and
/// per-node reuse metadata, and re-establishes all three after each
/// \ref Edit by re-lexing only the damaged byte window
/// (incremental/IncrementalLexer.h) and reparsing with subtree reuse
/// (incremental/ReuseMetadata.h).
///
/// The correctness contract is absolute: after every edit the session's
/// tokens, tree rendering, node and error-leaf counts, and diagnostics
/// are byte-identical to a from-scratch parse of the whole new text
/// (\ref scratchParse is that oracle; `llstar-fuzz --edit-smoke` enforces
/// the equivalence over random edit scripts in every mode combination).
/// Reuse is an optimization bounded by soundness checks — when in doubt
/// (predicate- or action-dependent decisions, recovered regions, damage
/// overlapping a node's lookahead reach) the subsystem falls back to
/// ordinary reparsing of the affected region, degrading gracefully to a
/// full reparse in the worst case.
///
/// Sessions work in every engine/tree-mode combination: interpreted or
/// compiled tables, heap or arena trees (arena sessions ping-pong two
/// arenas so splices can copy out of the old tree while the new one is
/// built), recovery on or off.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_INCREMENTAL_INCREMENTALSESSION_H
#define LLSTAR_INCREMENTAL_INCREMENTALSESSION_H

#include "incremental/EditScript.h"
#include "incremental/IncrementalLexer.h"
#include "incremental/ReuseMetadata.h"
#include "lexer/TokenStream.h"
#include "runtime/ParserStats.h"
#include "service/GrammarBundleCache.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <memory>
#include <string>
#include <vector>

namespace llstar {
namespace incremental {

/// Configuration for one session, fixed at construction.
struct SessionOptions {
  bool Recover = true;     ///< error-recovering parses (error leaves etc.)
  bool UseCompiled = false; ///< dense-table engine instead of the interpreter
  bool UseArena = false;   ///< arena parse trees instead of heap nodes
  bool Reuse = true;       ///< false: full relex + reparse per edit (the
                           ///< baseline the benchmarks compare against)
  std::string StartRule;   ///< empty = the grammar's first rule
};

/// What one reset/edit did. When Error != None the edit was rejected and
/// the session is unchanged; otherwise the session reflects the new text.
struct EditOutcome {
  EditScriptError Error = EditScriptError::None;
  bool ParseOk = false;
  double Millis = 0;              ///< relex + reparse wall time
  int64_t NumTokens = 0;          ///< parser-visible tokens incl. EOF
  int64_t NodesReused = 0;        ///< subtrees spliced instead of reparsed
  int64_t TokensRelexed = 0;      ///< lexemes the damage walk re-scanned
  int64_t DecisionsReparsed = 0;  ///< prediction events the reparse ran
  int64_t TreeNodes = 0;
  int64_t ErrorLeaves = 0;
  unsigned NumErrors = 0;         ///< error diagnostics of this parse
};

/// One evolving {text, tokens, tree, metadata} quadruple.
class IncrementalSession {
public:
  IncrementalSession(std::shared_ptr<const GrammarBundle> Bundle,
                     SessionOptions Opts);
  ~IncrementalSession();

  /// Replaces the whole text: full lex, full parse, fresh metadata.
  EditOutcome reset(std::string NewText);

  /// Applies one edit to the current text.
  EditOutcome applyEdit(const Edit &E);

  /// Applies a validated batch (strictly increasing, non-overlapping
  /// spans sharing one snapshot) back to front, so every offset stays
  /// valid. Returns the outcome of the final constituent edit with the
  /// cost fields summed; stops at (and returns) the first rejection.
  EditOutcome applyBatch(const std::vector<Edit> &Batch);

  const std::string &text() const { return Text; }
  /// Parser-visible tokens, identical to a from-scratch tokenize.
  const std::vector<Token> &tokens() const { return IncLex.tokens(); }
  /// LISP rendering of the current tree ("" before the first reset).
  std::string treeText() const;
  /// Diagnostics of the last parse (lexer and parser).
  const DiagnosticEngine &diags() const { return Diags; }
  /// Cumulative engine statistics across every parse of this session,
  /// including NodesReused / TokensRelexed / DecisionsReparsed.
  const ParserStats &stats() const { return Cumulative; }
  /// Stats accumulated since the previous call, then cleared — how the
  /// daemon folds edit-session work into its service-wide metrics
  /// without double counting.
  ParserStats takeStatsDelta();
  bool ok() const { return LastOk; }
  const GrammarBundle &bundle() const { return *Bundle; }

private:
  EditOutcome parseCurrent(const IncrementalLexer::Damage &D, bool Incremental,
                           std::chrono::steady_clock::time_point StartTime);

  std::shared_ptr<const GrammarBundle> Bundle;
  SessionOptions Opts;
  std::string Text;
  IncrementalLexer IncLex;
  /// Rebuilt per parse; outlives the tree for arena rendering.
  std::unique_ptr<TokenStream> Stream;
  std::unique_ptr<ParseTree> HeapRoot;
  const ArenaParseTree *ArenaRoot = nullptr;
  /// Arena sessions ping-pong: the new tree is built in the spare arena
  /// while splices copy subtrees out of the live one, then roles swap.
  Arena ArenaA, ArenaB;
  bool LiveIsA = true;
  ParseRecord Record;
  DiagnosticEngine Diags;
  ParserStats Cumulative;
  ParserStats Delta; ///< since the last takeStatsDelta()
  bool LastOk = false;
};

/// The from-scratch oracle: tokenizes and parses \p Text exactly as the
/// parse service would, with the same engine/tree/recovery configuration
/// a session with \p Opts uses. The conformance tools compare a session
/// against this after every edit.
struct ScratchResult {
  bool ParseOk = false;
  std::vector<Token> Tokens;
  std::string TreeText;
  int64_t TreeNodes = 0;
  int64_t ErrorLeaves = 0;
  std::string DiagText; ///< DiagnosticEngine::str() of all diagnostics
};
ScratchResult scratchParse(const GrammarBundle &Bundle, std::string_view Text,
                           const SessionOptions &Opts);

} // namespace incremental
} // namespace llstar

#endif // LLSTAR_INCREMENTAL_INCREMENTALSESSION_H
