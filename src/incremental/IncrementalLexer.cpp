#include "incremental/IncrementalLexer.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace llstar;
using namespace llstar::incremental;

Lexeme IncrementalLexer::scanOne(std::string_view Text, int64_t Pos,
                                 uint32_t &Line, uint32_t &Col) const {
  // The same fused walk as Lexer::tokenize: maximal munch with the
  // position snapshotted at every accept, line/column tracking folded in.
  // The one addition is LookEnd — how far the walk actually read.
  const std::vector<regex::CharDfaState> &States = Lex.dfa().states();
  Lexeme L;
  L.Off = Pos;
  L.Line = Line;
  L.Col = Col;

  int32_t State = 0;
  int32_t Tag = States[0].AcceptTag;
  int64_t BestLen = Tag >= 0 ? 0 : -1;
  uint32_t BestLine = Line, BestCol = Col;
  uint32_t CurLine = Line, CurCol = Col;
  // Unless the walk dies on a byte below, it ran off the end of input
  // with a live state: appended bytes could change the match, so the
  // walk is charged with having examined the end itself.
  int64_t LookEnd = int64_t(Text.size()) + 1;
  for (size_t I = size_t(Pos); I < Text.size(); ++I) {
    State = States[size_t(State)].Next[static_cast<unsigned char>(Text[I])];
    if (State < 0) {
      LookEnd = int64_t(I) + 1;
      break;
    }
    if (Text[I] == '\n') {
      ++CurLine;
      CurCol = 0;
    } else {
      ++CurCol;
    }
    int32_t Accept = States[size_t(State)].AcceptTag;
    if (Accept >= 0) {
      BestLen = int64_t(I) - Pos + 1;
      Tag = Accept;
      BestLine = CurLine;
      BestCol = CurCol;
    }
  }
  L.LookEnd = LookEnd;
  if (BestLen <= 0) {
    // Unrecognized byte: the batch lexer reports and skips exactly one.
    L.Tag = -1;
    L.Len = 1;
    if (Text[size_t(Pos)] == '\n') {
      ++Line;
      Col = 0;
    } else {
      ++Col;
    }
    return L;
  }
  L.Tag = Tag;
  L.Len = BestLen;
  Line = BestLine;
  Col = BestCol;
  return L;
}

size_t IncrementalLexer::firstDamaged(int64_t Offset) const {
  // MaxLook is non-decreasing, so the damaged region is a suffix.
  auto It = std::lower_bound(
      Lexemes.begin(), Lexemes.end(), Offset,
      [](const Lexeme &L, int64_t Off) { return L.MaxLook <= Off; });
  return size_t(It - Lexemes.begin());
}

size_t IncrementalLexer::lexemeAt(int64_t Off) const {
  auto It = std::lower_bound(
      Lexemes.begin(), Lexemes.end(), Off,
      [](const Lexeme &L, int64_t O) { return L.Off < O; });
  if (It == Lexemes.end() || It->Off != Off)
    return SIZE_MAX;
  return size_t(It - Lexemes.begin());
}

void IncrementalLexer::recomputeMaxLook(size_t From) {
  int64_t Cum = From > 0 ? Lexemes[From - 1].MaxLook : 0;
  for (size_t I = From; I < Lexemes.size(); ++I) {
    Cum = std::max(Cum, Lexemes[I].LookEnd);
    Lexemes[I].MaxLook = Cum;
  }
}

void IncrementalLexer::lexAll(std::string_view Text) {
  Lexemes.clear();
  Toks.clear();
  uint32_t Line = 1, Col = 0;
  int64_t Pos = 0;
  while (Pos < int64_t(Text.size())) {
    Lexeme L = scanOne(Text, Pos, Line, Col);
    Pos += L.Len;
    Lexemes.push_back(L);
  }
  EndLine = Line;
  EndCol = Col;
  recomputeMaxLook(0);

  const std::vector<LexerAction> &Actions = Lex.actions();
  const std::vector<TokenType> &Types = Lex.types();
  for (const Lexeme &L : Lexemes) {
    if (L.Tag < 0 || Actions[size_t(L.Tag)] != LexerAction::Emit)
      continue;
    Token T(Types[size_t(L.Tag)],
            std::string(Text.substr(size_t(L.Off), size_t(L.Len))),
            SourceLocation(L.Line, L.Col));
    T.Offset = L.Off;
    Toks.push_back(std::move(T));
  }
  Token Eof(TokenEof, "<EOF>", SourceLocation(EndLine, EndCol));
  Eof.Offset = int64_t(Text.size());
  Toks.push_back(std::move(Eof));
  for (size_t I = 0; I < Toks.size(); ++I)
    Toks[I].Index = int64_t(I);
}

IncrementalLexer::Damage IncrementalLexer::relex(std::string_view NewText,
                                                 int64_t Offset, int64_t OldLen,
                                                 int64_t NewLen) {
  const int64_t Delta = NewLen - OldLen;
  const int64_t OldSize = int64_t(NewText.size()) - Delta;
  assert(Offset >= 0 && OldLen >= 0 && Offset + OldLen <= OldSize &&
         "edit must have been validated against the old text");

  // Retained prefix: the longest prefix of lexemes in which no DFA walk
  // examined a byte at or past the edit.
  const size_t First = firstDamaged(Offset);

  int64_t P;
  uint32_t Line, Col;
  if (First < Lexemes.size()) {
    P = Lexemes[First].Off;
    Line = Lexemes[First].Line;
    Col = Lexemes[First].Col;
  } else {
    // Pure append past everything any walk examined.
    P = OldSize;
    Line = EndLine;
    Col = EndCol;
  }

  // Walk the damaged window, probing each fresh boundary past the
  // inserted text for an old lexeme start to resynchronize on.
  const int64_t ResyncMin = Offset + NewLen;
  std::vector<Lexeme> Fresh;
  size_t OldSuffix = Lexemes.size();
  bool Resynced = false;
  while (P < int64_t(NewText.size())) {
    if (P >= ResyncMin) {
      size_t R = lexemeAt(P - Delta);
      if (R != SIZE_MAX && R >= First) {
        OldSuffix = R;
        Resynced = true;
        break;
      }
    }
    Lexeme L = scanOne(NewText, P, Line, Col);
    P += L.Len;
    Fresh.push_back(L);
  }

  // Position shift for the retained suffix: lines move by the line delta
  // at the resync point; columns move only on the resync lexeme's old
  // line (later lines start fresh at column 0 either way).
  int64_t LineDelta = 0, ColDelta = 0;
  uint32_t OldResyncLine = 0;
  if (Resynced) {
    const Lexeme &R = Lexemes[OldSuffix];
    OldResyncLine = R.Line;
    LineDelta = int64_t(Line) - int64_t(R.Line);
    ColDelta = int64_t(Col) - int64_t(R.Col);
  }

  // Token-space damage bounds, computed against the old vectors before
  // any splicing. Tokens are sorted by offset (EOF last, at text size).
  const int64_t OldTokCount = int64_t(Toks.size());
  auto tokLowerBound = [&](int64_t Off) {
    auto It = std::lower_bound(
        Toks.begin(), Toks.end(), Off,
        [](const Token &T, int64_t O) { return T.Offset < O; });
    return int64_t(It - Toks.begin());
  };
  const int64_t FirstOff = First < Lexemes.size() ? Lexemes[First].Off : OldSize;
  Damage D;
  D.InvalidLo = tokLowerBound(FirstOff);
  D.OldInvalidHi =
      Resynced ? tokLowerBound(Lexemes[OldSuffix].Off) : OldTokCount;
  D.Relexed = int64_t(Fresh.size());

  const std::vector<LexerAction> &Actions = Lex.actions();
  const std::vector<TokenType> &Types = Lex.types();

  // In-place fast path: an edit that kept every downstream byte, line,
  // column, lexeme, and token where it was (the overwhelmingly common
  // overtype) only needs the damaged window overwritten — no vector
  // rebuild, no suffix rewrite, and downstream consumers learn via
  // SuffixIdentical that reused suffix subtrees need no token fix-up.
  if (Resynced && Delta == 0 && LineDelta == 0 && ColDelta == 0 &&
      Fresh.size() == OldSuffix - First) {
    int64_t FreshEmitted = 0;
    for (const Lexeme &L : Fresh)
      if (L.Tag >= 0 && Actions[size_t(L.Tag)] == LexerAction::Emit)
        ++FreshEmitted;
    if (FreshEmitted == D.OldInvalidHi - D.InvalidLo) {
      std::copy(Fresh.begin(), Fresh.end(), Lexemes.begin() + int64_t(First));
      recomputeMaxLook(First);
      int64_t TI = D.InvalidLo;
      for (const Lexeme &L : Fresh) {
        if (L.Tag < 0 || Actions[size_t(L.Tag)] != LexerAction::Emit)
          continue;
        Token T(Types[size_t(L.Tag)],
                std::string(NewText.substr(size_t(L.Off), size_t(L.Len))),
                SourceLocation(L.Line, L.Col));
        T.Offset = L.Off;
        T.Index = TI;
        Toks[size_t(TI)] = std::move(T);
        ++TI;
      }
      D.NewInvalidHi = D.OldInvalidHi;
      D.TokenDelta = 0;
      D.SuffixIdentical = true;
      return D;
    }
  }

  // Splice the lexeme index.
  std::vector<Lexeme> NewLex;
  NewLex.reserve(First + Fresh.size() + (Lexemes.size() - OldSuffix));
  NewLex.insert(NewLex.end(), Lexemes.begin(), Lexemes.begin() + First);
  NewLex.insert(NewLex.end(), Fresh.begin(), Fresh.end());
  for (size_t I = OldSuffix; I < Lexemes.size(); ++I) {
    Lexeme L = Lexemes[I];
    L.Off += Delta;
    L.LookEnd += Delta; // the end-of-input sentinel shifts with the size
    if (L.Line == OldResyncLine)
      L.Col = uint32_t(int64_t(L.Col) + ColDelta);
    L.Line = uint32_t(int64_t(L.Line) + LineDelta);
    NewLex.push_back(L);
  }
  Lexemes = std::move(NewLex);
  recomputeMaxLook(First);

  if (Resynced) {
    if (EndLine == OldResyncLine)
      EndCol = uint32_t(int64_t(EndCol) + ColDelta);
    EndLine = uint32_t(int64_t(EndLine) + LineDelta);
  } else {
    EndLine = Line;
    EndCol = Col;
  }

  // Splice the token vector: retained prefix, freshly lexed middle,
  // shifted suffix (which includes EOF when we resynchronized).
  std::vector<Token> NewToks;
  NewToks.reserve(Toks.size() + size_t(std::max<int64_t>(Delta, 0)) + 1);
  for (int64_t I = 0; I < D.InvalidLo; ++I)
    NewToks.push_back(std::move(Toks[size_t(I)]));
  for (const Lexeme &L : Fresh) {
    if (L.Tag < 0 || Actions[size_t(L.Tag)] != LexerAction::Emit)
      continue;
    Token T(Types[size_t(L.Tag)],
            std::string(NewText.substr(size_t(L.Off), size_t(L.Len))),
            SourceLocation(L.Line, L.Col));
    T.Offset = L.Off;
    NewToks.push_back(std::move(T));
  }
  D.NewInvalidHi = int64_t(NewToks.size());
  for (int64_t I = D.OldInvalidHi; I < OldTokCount; ++I) {
    Token T = std::move(Toks[size_t(I)]);
    T.Offset += Delta;
    if (T.Loc.Line == OldResyncLine)
      T.Loc.Column = uint32_t(int64_t(T.Loc.Column) + ColDelta);
    T.Loc.Line = uint32_t(int64_t(T.Loc.Line) + LineDelta);
    NewToks.push_back(std::move(T));
  }
  if (!Resynced) {
    Token Eof(TokenEof, "<EOF>", SourceLocation(EndLine, EndCol));
    Eof.Offset = int64_t(NewText.size());
    NewToks.push_back(std::move(Eof));
    // No old token survived the damage, so the fresh EOF belongs to the
    // damaged window and both retained-suffix ranges are empty.
    D.NewInvalidHi = int64_t(NewToks.size());
  }
  Toks = std::move(NewToks);
  for (int64_t I = D.InvalidLo; I < int64_t(Toks.size()); ++I)
    Toks[size_t(I)].Index = I;

  D.TokenDelta = int64_t(Toks.size()) - OldTokCount;
  D.SuffixIdentical = Resynced && Delta == 0 && LineDelta == 0 &&
                      ColDelta == 0 && D.TokenDelta == 0;
  return D;
}

void IncrementalLexer::emitLexDiagnostics(std::string_view Text,
                                          DiagnosticEngine &Diags) const {
  for (const Lexeme &L : Lexemes)
    if (L.Tag < 0)
      Diags.error(SourceLocation(L.Line, L.Col),
                  "unrecognized character '" +
                      escapeChar(Text[size_t(L.Off)]) + "'");
}
