//===- incremental/EditScript.h - Edit descriptions and traces --*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edit vocabulary of the incremental subsystem: a single \ref Edit
/// (replace `oldLen` bytes at `offset` with `newText`; insertions have
/// `oldLen == 0`, deletions an empty `newText`), and \ref EditScript, a
/// JSON-encoded trace of edits replayed by `llstar-batch --edit-script`
/// and the conformance tests.
///
/// The JSON schema:
///
/// \code{.json}
///   {
///     "initial": "int x;\n",             // optional, default ""
///     "edits": [
///       {"offset": 4, "oldLen": 1, "newText": "y"},
///       [ {"offset": 0, "oldLen": 0, "newText": "a"},
///         {"offset": 6, "oldLen": 1, "newText": ""} ]
///     ]
///   }
/// \endcode
///
/// Each entry of "edits" is either one edit or a batch (array) of edits
/// that share one snapshot of the text: batch offsets must be strictly
/// monotonic and the spans non-overlapping so the batch has a single
/// well-defined meaning (it is applied back to front, keeping every
/// offset valid). Parsing is strict: malformed JSON, missing or
/// mistyped fields, negative values, overlapping or non-monotonic batch
/// spans each map to a distinct \ref EditScriptError so tools can report
/// precisely what was wrong. Out-of-range offsets depend on the text the
/// script is applied to and are caught at apply time
/// (\ref validateEdit).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_INCREMENTAL_EDITSCRIPT_H
#define LLSTAR_INCREMENTAL_EDITSCRIPT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llstar {
namespace incremental {

/// One text edit: replace the `OldLen` bytes at `Offset` with `NewText`.
struct Edit {
  int64_t Offset = 0;
  int64_t OldLen = 0;
  std::string NewText;
};

/// Everything that can be wrong with an edit script or a single edit.
enum class EditScriptError {
  None,
  BadJson,       ///< not well-formed JSON (or trailing garbage)
  MissingField,  ///< an edit lacks offset/oldLen/newText, or "edits" is absent
  BadFieldType,  ///< a field is present but has the wrong JSON type
  NegativeValue, ///< offset or oldLen is negative
  Overlap,       ///< batch spans overlap: offset_i + oldLen_i > offset_{i+1}
  NonMonotonic,  ///< batch offsets are not strictly increasing
  OutOfRange,    ///< offset + oldLen exceeds the text the edit applies to
};

/// Stable identifier for an \ref EditScriptError ("overlap", ...).
const char *editScriptErrorName(EditScriptError E);

/// A parsed edit trace: optional initial text plus batches of edits. A
/// single-edit entry parses as a batch of one.
struct EditScript {
  std::string Initial;
  std::vector<std::vector<Edit>> Batches;
};

/// Result of \ref parseEditScript: either Error == None and Script is
/// filled, or Error identifies the rejection and Message says where.
struct EditScriptParseResult {
  EditScriptError Error = EditScriptError::None;
  std::string Message;
  EditScript Script;

  explicit operator bool() const { return Error == EditScriptError::None; }
};

/// Parses and validates \p Json as an edit script.
EditScriptParseResult parseEditScript(std::string_view Json);

/// Checks one edit against a text of \p TextSize bytes: returns
/// NegativeValue or OutOfRange, or None when the edit applies.
EditScriptError validateEdit(const Edit &E, size_t TextSize);

} // namespace incremental
} // namespace llstar

#endif // LLSTAR_INCREMENTAL_EDITSCRIPT_H
