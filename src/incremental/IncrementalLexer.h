//===- incremental/IncrementalLexer.h - Damage-window relexing --*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental tokenization: re-lex only the window an edit damaged and
/// splice the result into the previous token stream.
///
/// The lexer keeps a session-side index of *lexemes* — every maximal-munch
/// unit the DFA produced, including skipped whitespace, hidden trivia, and
/// unrecognized bytes (which the batch lexer reports and skips). Each
/// lexeme records, besides its span and start position, `LookEnd`: one
/// past the last byte its DFA walk examined. Maximal munch overshoots —
/// the walk runs past the final accept until the automaton dies — so a
/// lexeme's result can depend on bytes well beyond its own span, and a
/// lexeme whose walk reached the end of input with a live state is marked
/// as having examined the end itself (appends may extend it).
///
/// An edit at byte `Offset` damages exactly the lexemes whose walks
/// examined any byte at or past `Offset`; everything before them is
/// retained verbatim. Because overshoot can leapfrog later short lexemes,
/// the damage test uses the running maximum of `LookEnd`, so the retained
/// prefix is the longest prefix in which *no* walk saw the edit. Re-lexing
/// restarts at the first damaged lexeme and stops at the first fresh
/// lexeme boundary past the inserted text that lands on a former lexeme
/// start: from that point the bytes are untouched, and a DFA walk from a
/// clean boundary over identical bytes is identical, so the old suffix is
/// retained with its offsets, indices, and line/column positions shifted.
///
/// The resulting token vector is byte-for-byte the one Lexer::tokenize
/// would produce for the whole new text — same types, texts, offsets,
/// line/column positions, and indices — which `llstar-fuzz --edit-smoke`
/// enforces across random edit scripts.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_INCREMENTAL_INCREMENTALLEXER_H
#define LLSTAR_INCREMENTAL_INCREMENTALLEXER_H

#include "lexer/Lexer.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace llstar {
namespace incremental {

/// One maximal-munch unit of the session text (emitted token, skipped or
/// hidden trivia, or a single unrecognized byte).
struct Lexeme {
  int64_t Off = 0;     ///< byte offset of the first byte
  int64_t Len = 0;     ///< bytes matched (1 for unrecognized bytes)
  int64_t LookEnd = 0; ///< one past the last byte the DFA walk examined;
                       ///< text size + 1 when the walk reached the end of
                       ///< input with a live state
  int64_t MaxLook = 0; ///< running max of LookEnd over this and all
                       ///< earlier lexemes (the damage test)
  int32_t Tag = -1;    ///< DFA rule tag; -1 = unrecognized byte
  uint32_t Line = 1;   ///< start position (1-based line, 0-based column)
  uint32_t Col = 0;
};

/// Maintains the lexeme index and parser-visible token vector for one
/// evolving text. The referenced Lexer supplies the DFA tables and must
/// outlive this object.
class IncrementalLexer {
public:
  explicit IncrementalLexer(const Lexer &Lex) : Lex(Lex) {}

  /// The damaged region of one \ref relex call, in token indices.
  /// Tokens [0, InvalidLo) are retained unchanged; old tokens
  /// [OldInvalidHi, oldCount) survive as new tokens [NewInvalidHi,
  /// newCount) with offset/index/position shifted. Everything between
  /// was re-lexed.
  struct Damage {
    int64_t InvalidLo = 0;
    int64_t OldInvalidHi = 0;
    int64_t NewInvalidHi = 0;
    int64_t TokenDelta = 0;  ///< new token count - old token count
    int64_t Relexed = 0;     ///< lexemes produced by the damage walk
    /// True when the retained suffix tokens came through bit-identical:
    /// no byte, token-count, line, or column shift. The common editor
    /// case (overtyping a character) — reused suffix subtrees need no
    /// token fix-up at all then.
    bool SuffixIdentical = false;
  };

  /// Tokenizes \p Text from scratch, replacing all state.
  void lexAll(std::string_view Text);

  /// Applies an edit: \p NewText is the already-spliced text, and
  /// (\p Offset, \p OldLen, \p NewLen) describe the replacement. Only the
  /// damaged window is re-lexed; the token vector is spliced in place.
  Damage relex(std::string_view NewText, int64_t Offset, int64_t OldLen,
               int64_t NewLen);

  /// Re-reports the "unrecognized character" diagnostics for every error
  /// lexeme, exactly as a from-scratch Lexer::tokenize over \p Text would.
  void emitLexDiagnostics(std::string_view Text, DiagnosticEngine &Diags) const;

  /// The parser-visible tokens (always ending with EOF), identical to
  /// Lexer::tokenize output for the current text.
  const std::vector<Token> &tokens() const { return Toks; }

  const std::vector<Lexeme> &lexemes() const { return Lexemes; }

private:
  /// One maximal-munch walk at \p Pos; \p Line / \p Col are the position
  /// of \p Pos on entry and of the following lexeme on return.
  Lexeme scanOne(std::string_view Text, int64_t Pos, uint32_t &Line,
                 uint32_t &Col) const;

  /// Index of the first lexeme whose damage test covers \p Offset
  /// (binary search over the monotonic MaxLook), or lexemes().size().
  size_t firstDamaged(int64_t Offset) const;

  /// Index of the lexeme starting exactly at \p Off, or SIZE_MAX.
  size_t lexemeAt(int64_t Off) const;

  /// Rebuilds MaxLook from \p From to the end.
  void recomputeMaxLook(size_t From);

  const Lexer &Lex;
  std::vector<Lexeme> Lexemes;
  std::vector<Token> Toks; ///< emitted tokens + EOF
  /// Position one past the final lexeme (the EOF token's location).
  uint32_t EndLine = 1, EndCol = 0;
};

} // namespace incremental
} // namespace llstar

#endif // LLSTAR_INCREMENTAL_INCREMENTALLEXER_H
