#include "incremental/IncrementalSession.h"

#include "compiled/CompiledParser.h"
#include "runtime/LLStarParser.h"

#include <chrono>

using namespace llstar;
using namespace llstar::incremental;

IncrementalSession::IncrementalSession(
    std::shared_ptr<const GrammarBundle> Bundle, SessionOptions Opts)
    : Bundle(std::move(Bundle)), Opts(std::move(Opts)),
      IncLex(this->Bundle->lexer()) {}

IncrementalSession::~IncrementalSession() = default;

ParserStats IncrementalSession::takeStatsDelta() {
  ParserStats Out = std::move(Delta);
  Delta = ParserStats();
  return Out;
}

std::string IncrementalSession::treeText() const {
  if (HeapRoot)
    return HeapRoot->str(Bundle->grammar());
  if (ArenaRoot && Stream)
    return ArenaRoot->str(Bundle->grammar(), *Stream);
  return "";
}

EditOutcome IncrementalSession::reset(std::string NewText) {
  auto StartTime = std::chrono::steady_clock::now();
  Text = std::move(NewText);
  IncLex.lexAll(Text);
  IncrementalLexer::Damage D;
  D.InvalidLo = 0;
  D.OldInvalidHi = 0;
  D.NewInvalidHi = int64_t(IncLex.tokens().size());
  D.TokenDelta = 0;
  D.Relexed = int64_t(IncLex.lexemes().size());
  Record.clear();
  return parseCurrent(D, /*Incremental=*/false, StartTime);
}

EditOutcome IncrementalSession::applyEdit(const Edit &E) {
  auto StartTime = std::chrono::steady_clock::now();
  if (EditScriptError VE = validateEdit(E, Text.size());
      VE != EditScriptError::None) {
    EditOutcome O;
    O.Error = VE;
    return O;
  }
  Text.replace(size_t(E.Offset), size_t(E.OldLen), E.NewText);
  if (!Opts.Reuse) {
    // Baseline mode: behave like an editor without this subsystem —
    // tokenize and parse the whole new text every time.
    return reset(std::move(Text));
  }
  IncrementalLexer::Damage D =
      IncLex.relex(Text, E.Offset, E.OldLen, int64_t(E.NewText.size()));
  return parseCurrent(D, /*Incremental=*/true, StartTime);
}

EditOutcome IncrementalSession::applyBatch(const std::vector<Edit> &Batch) {
  EditOutcome Sum;
  bool FirstOutcome = true;
  for (size_t I = Batch.size(); I-- > 0;) {
    EditOutcome O = applyEdit(Batch[I]);
    if (O.Error != EditScriptError::None)
      return O;
    O.Millis += Sum.Millis;
    O.NodesReused += Sum.NodesReused;
    O.TokensRelexed += Sum.TokensRelexed;
    O.DecisionsReparsed += Sum.DecisionsReparsed;
    Sum = O;
    FirstOutcome = false;
  }
  if (FirstOutcome) {
    // An empty batch is a no-op; report the current state.
    Sum.ParseOk = LastOk;
    Sum.NumTokens = int64_t(IncLex.tokens().size());
    Sum.NumErrors = Diags.errorCount();
  }
  return Sum;
}

EditOutcome IncrementalSession::parseCurrent(
    const IncrementalLexer::Damage &D, bool Incremental,
    std::chrono::steady_clock::time_point StartTime) {
  Diags.clear();
  IncLex.emitLexDiagnostics(Text, Diags);

  // The stream is a view over the master token vector — IncrementalLexer
  // splices that vector in place between parses, so copying it here would
  // put an O(tokens) tax on every edit. Nothing reads the previous stream
  // during the parse (arena renderings happen between edits, against the
  // committed stream).
  auto NewStream =
      std::make_unique<TokenStream>(IncLex.tokens(), TokenStream::Borrow{});

  Arena *BuildArena = nullptr;
  if (Opts.UseArena)
    BuildArena = LiveIsA ? &ArenaB : &ArenaA;

  const bool UseHooks = Opts.Reuse;
  ReuseRecorder::Config RC;
  if (Incremental && Opts.Reuse && (HeapRoot || ArenaRoot)) {
    RC.Prev = &Record;
    RC.InvalidLo = D.InvalidLo;
    RC.OldInvalidHi = D.OldInvalidHi;
    RC.NewInvalidHi = D.NewInvalidHi;
    RC.TokenDelta = D.TokenDelta;
    RC.SuffixIdentical = D.SuffixIdentical;
  }
  RC.NewTokens = &IncLex.tokens();
  RC.NewArena = BuildArena;
  ReuseRecorder Rec(RC);

  ParserOptions PO;
  PO.BuildTree = true;
  PO.CollectStats = true;
  PO.Recover = Opts.Recover;
  PO.TreeArena = BuildArena;
  if (UseHooks) {
    PO.Hooks = &Rec;
    // Memo hits replay speculative sub-parses without re-reporting their
    // lookahead, which would under-record reach; trees and diagnostics
    // are memoization-independent, so recording parses just turn it off.
    PO.Memoize = false;
  }

  const AnalyzedGrammar &AG = Bundle->analyzed();
  std::unique_ptr<ParseTree> NewHeapRoot;
  const ArenaParseTree *NewArenaRoot = nullptr;
  ParserStats S;
  bool ParseOk;
  if (Opts.UseCompiled) {
    const compiled::CompiledResolution &CT = Bundle->compiledTables();
    compiled::CompiledParser P(AG, CT.View, *NewStream, /*Env=*/nullptr, Diags,
                               PO, CT.Native, CT.Rules);
    NewHeapRoot = P.parse(Opts.StartRule);
    NewArenaRoot = P.arenaTree();
    ParseOk = P.ok();
    S = P.stats();
  } else {
    LLStarParser P(AG, *NewStream, /*Env=*/nullptr, Diags, PO);
    NewHeapRoot = P.parse(Opts.StartRule);
    NewArenaRoot = P.arenaTree();
    ParseOk = P.ok();
    S = P.stats();
  }

  // Commit: the new tree replaces the old, the old arena is recycled.
  HeapRoot = std::move(NewHeapRoot);
  ArenaRoot = NewArenaRoot;
  Stream = std::move(NewStream);
  if (UseHooks)
    Record = Rec.take();
  else
    Record.clear();
  if (Opts.UseArena) {
    (LiveIsA ? ArenaA : ArenaB).reset();
    LiveIsA = !LiveIsA;
  }
  LastOk = ParseOk;

  S.TokensRelexed = D.Relexed;
  S.DecisionsReparsed = S.totalEvents();
  Cumulative.merge(S);
  Delta.merge(S);

  EditOutcome O;
  // Millis covers relex + reparse — the subsystem's actual per-edit work.
  // The node/error counts below are reporting conveniences that walk the
  // whole tree; keeping them outside the measured window stops them from
  // drowning the signal on large trees.
  O.Millis = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - StartTime)
                 .count();
  O.ParseOk = ParseOk;
  O.NumTokens = int64_t(IncLex.tokens().size());
  O.NodesReused = S.NodesReused;
  O.TokensRelexed = S.TokensRelexed;
  O.DecisionsReparsed = S.DecisionsReparsed;
  if (HeapRoot) {
    O.TreeNodes = int64_t(HeapRoot->size());
    O.ErrorLeaves = int64_t(HeapRoot->numErrorNodes());
  } else if (ArenaRoot) {
    O.TreeNodes = int64_t(ArenaRoot->size());
    O.ErrorLeaves = int64_t(ArenaRoot->numErrorNodes());
  }
  O.NumErrors = Diags.errorCount();
  return O;
}

ScratchResult llstar::incremental::scratchParse(const GrammarBundle &Bundle,
                                               std::string_view Text,
                                               const SessionOptions &Opts) {
  ScratchResult R;
  DiagnosticEngine Diags;
  TokenStream Stream(Bundle.tokenize(Text, Diags));
  R.Tokens = Stream.tokens();

  Arena A;
  ParserOptions PO;
  PO.BuildTree = true;
  PO.CollectStats = true;
  PO.Recover = Opts.Recover;
  if (Opts.UseArena)
    PO.TreeArena = &A;

  const AnalyzedGrammar &AG = Bundle.analyzed();
  auto Finish = [&](auto &P, std::unique_ptr<ParseTree> Root) {
    R.ParseOk = P.ok();
    if (Root) {
      R.TreeText = Root->str(AG.grammar());
      R.TreeNodes = int64_t(Root->size());
      R.ErrorLeaves = int64_t(Root->numErrorNodes());
    } else if (P.arenaTree()) {
      R.TreeText = P.arenaTree()->str(AG.grammar(), Stream);
      R.TreeNodes = int64_t(P.arenaTree()->size());
      R.ErrorLeaves = int64_t(P.arenaTree()->numErrorNodes());
    }
  };
  if (Opts.UseCompiled) {
    const compiled::CompiledResolution &CT = Bundle.compiledTables();
    compiled::CompiledParser P(AG, CT.View, Stream, /*Env=*/nullptr, Diags, PO,
                               CT.Native, CT.Rules);
    Finish(P, P.parse(Opts.StartRule));
  } else {
    LLStarParser P(AG, Stream, /*Env=*/nullptr, Diags, PO);
    Finish(P, P.parse(Opts.StartRule));
  }
  R.DiagText = Diags.str();
  return R;
}
