#include "incremental/ReuseMetadata.h"

#include <algorithm>
#include <cassert>

using namespace llstar;
using namespace llstar::incremental;

void ParseRecord::build() {
  size_t Cap = 16;
  while (Cap < Metas.size() * 2)
    Cap <<= 1;
  Slots.assign(Cap, {0, Npos});
  Mask = Cap - 1;
  for (uint32_t I = 0; I < Metas.size(); ++I) {
    const NodeMeta &M = Metas[I];
    uint64_t K = packKey(M.Rule, M.Prec, M.Start);
    size_t S = slotOf(K);
    while (Slots[S].second != Npos && Slots[S].first != K)
      S = (S + 1) & Mask;
    // Later entries win: exits run innermost-first, so an (impossible for
    // a terminating parse, but cheap to be safe about) nested duplicate
    // resolves to the outermost node — the one a reparse reaches first.
    Slots[S] = {K, I};
  }
}

void ParseRecord::clear() {
  Metas.clear();
  Slots.clear();
  Mask = 0;
}

void ReuseRecorder::enterRule(int32_t Rule, int32_t Precedence,
                              int64_t StartIndex) {
  Stack.push_back({Rule, Precedence, StartIndex, /*Reach=*/-1,
                   /*MetasMark=*/uint32_t(Metas.size()),
                   /*Opaque=*/false});
}

void ReuseRecorder::lookahead(int64_t MaxIndexInclusive) {
  // Lookahead reported while no recorded rule is active belongs to the
  // start rule's own body, which is never a reuse candidate.
  if (!Stack.empty() && Stack.back().Reach < MaxIndexInclusive)
    Stack.back().Reach = MaxIndexInclusive;
}

void ReuseRecorder::opaque() {
  if (!Stack.empty())
    Stack.back().Opaque = true;
}

void ReuseRecorder::exitRule(int32_t Rule, int64_t NextIndex,
                             ParseTree *HeapNode, ArenaParseTree *ArenaNode) {
  if (Stack.empty())
    return;
  Frame F = Stack.back();
  Stack.pop_back();
  assert(F.Rule == Rule && "engine enter/exit pairing broken");
  (void)Rule;
  F.Reach = std::max(F.Reach, NextIndex - 1);
  if (!Stack.empty()) {
    // A parent's outcome depends on everything its children examined.
    Frame &P = Stack.back();
    P.Reach = std::max(P.Reach, F.Reach);
    P.Opaque |= F.Opaque;
  }
  if (F.Opaque || NextIndex <= F.Start)
    return; // tainted, or consumed nothing — never worth splicing
  if (!HeapNode && !ArenaNode)
    return;
  Metas.push_back({F.Rule, F.Prec, F.Start, NextIndex, F.Reach, F.MetasMark,
                   HeapNode, ArenaNode});
}

bool ReuseRecorder::tryReuse(int32_t Rule, int32_t Precedence,
                             int64_t StartIndex, Splice &Out) {
  if (!C.Prev)
    return false;
  // Most of the previous record usually carries forward; size for that
  // once instead of regrowing through thousands of splices.
  if (Metas.capacity() < C.Prev->Metas.size())
    Metas.reserve(C.Prev->Metas.size() + C.Prev->Metas.size() / 4);

  // Map the probe back to the previous parse's token coordinates. Note
  // that an edit replacing like with like has TokenDelta == 0, so Shift
  // alone cannot distinguish the two regions — the disjointness check
  // below branches on position, not on Shift.
  int64_t OldStart, Shift;
  bool BeforeDamage;
  if (StartIndex < C.InvalidLo) {
    OldStart = StartIndex;
    Shift = 0;
    BeforeDamage = true;
  } else if (StartIndex >= C.NewInvalidHi) {
    OldStart = StartIndex - C.TokenDelta;
    Shift = C.TokenDelta;
    BeforeDamage = false;
  } else {
    return false; // starts inside the damaged window
  }

  uint32_t MIdx = C.Prev->find(Rule, Precedence, OldStart);
  if (MIdx == ParseRecord::Npos)
    return false;
  const NodeMeta &M = C.Prev->Metas[MIdx];
  if (M.Rule != Rule || M.Prec != Precedence || M.Start != OldStart)
    return false; // packed-key collision

  // Soundness: the node's entire examined window [Start, Reach] must be
  // disjoint from the damaged token range. Before the damage that means
  // the reach stopped short of it; after, that the node started past it
  // (everything examined from there on sits in the retained suffix).
  if (BeforeDamage) {
    if (M.Reach >= C.InvalidLo)
      return false;
  } else {
    if (M.Start < C.OldInvalidHi)
      return false;
  }

  const size_t DstBase = Metas.size();
  if (M.HeapNode && C.NewTokens) {
    std::unique_ptr<ParseTree> Sub = stealHeap(M, Shift, BeforeDamage);
    if (!Sub)
      return false;
    Out.Heap = std::move(Sub);
    // The nodes moved wholesale, so carried metadata keeps its pointers.
    carryRange(M.SubtreeBegin, MIdx, Shift);
  } else if (M.ArenaNode && C.NewArena) {
    CarryCur = M.SubtreeBegin;
    CarryEnd = MIdx;
    CarrySrcBegin = M.SubtreeBegin;
    CarryDstBegin = DstBase;
    ArenaParseTree *Copy = copyArena(*M.ArenaNode, Shift);
    if (!Copy) {
      // The aborted walk may have appended carried entries bound to nodes
      // the discarded copy owns; drop them or they dangle.
      Metas.resize(DstBase);
      return false;
    }
    Out.InArena = Copy;
  } else {
    return false;
  }
  Out.NextIndex = M.Next + Shift;

  // The engine skips the child's body, so no exitRule will fold the
  // spliced subtree's window into the invoking rule; do it here, or a
  // later edit inside the subtree's overshoot could unsoundly reuse the
  // parent.
  if (!Stack.empty())
    Stack.back().Reach = std::max(Stack.back().Reach, M.Reach + Shift);
  return true;
}

std::unique_ptr<ParseTree> ReuseRecorder::stealHeap(const NodeMeta &M,
                                                    int64_t Shift,
                                                    bool BeforeDamage) {
  ParseTree *Node = M.HeapNode;
  ParseTree *Par = Node->parent();
  if (!Par)
    return nullptr; // the old root itself; unreachable via engine probes
  const bool Refresh = !BeforeDamage && !C.SuffixIdentical;
  // Every leaf index of the subtree lies in [Start, Next), so one range
  // check up front covers the whole refresh walk.
  if (Refresh && (M.Start + Shift < 0 ||
                  size_t(M.Next + Shift) > C.NewTokens->size()))
    return nullptr;
  std::unique_ptr<ParseTree> Sub = Par->releaseChild(Node->parentSlot());
  if (!Sub)
    return nullptr; // slot already emptied (defensive: stale metadata)
  assert(Sub.get() == Node && "parent/slot links out of sync");
  if (Refresh)
    refreshLeafTokens(*Sub, Shift);
  return Sub;
}

void ReuseRecorder::refreshLeafTokens(ParseTree &N, int64_t Shift) {
  if (N.isToken()) {
    // Recorded subtrees contain no error leaves: recovery reports opaque()
    // before attaching one, poisoning every ancestor.
    assert(!N.isError() && "error leaf inside a recorded subtree");
    N.setToken((*C.NewTokens)[size_t(N.token().Index + Shift)]);
    return;
  }
  for (size_t I = 0, E = N.numChildren(); I != E; ++I)
    if (ParseTree *Ch = N.child(I))
      refreshLeafTokens(*Ch, Shift);
}

ArenaParseTree *ReuseRecorder::copyArena(const ArenaParseTree &Old,
                                         int64_t Shift) {
  if (Old.isToken()) {
    // Clean nodes contain no error leaves (recovery poisons every
    // ancestor of one); refuse the splice rather than trust that.
    if (Old.isError())
      return nullptr;
    int64_t Idx = Old.tokenIndex() + Shift;
    if (Idx < 0 || size_t(Idx) >= C.NewTokens->size())
      return nullptr;
    return ArenaParseTree::tokenNode(*C.NewArena, Idx);
  }
  ArenaParseTree *N = ArenaParseTree::ruleNode(*C.NewArena, Old.ruleIndex());
  for (const ArenaParseTree *Ch = Old.firstChild(); Ch;
       Ch = Ch->nextSibling()) {
    ArenaParseTree *CC = copyArena(*Ch, Shift);
    if (!CC)
      return nullptr;
    N->addChild(CC);
  }
  // The copy walk and the carried range share one post-order, so the next
  // un-carried entry either binds this node or a node deeper in the walk.
  if (CarryCur <= CarryEnd && C.Prev->Metas[CarryCur].ArenaNode == &Old) {
    NodeMeta CM = C.Prev->Metas[CarryCur++];
    CM.Start += Shift;
    CM.Next += Shift;
    CM.Reach += Shift;
    CM.SubtreeBegin =
        uint32_t(CM.SubtreeBegin - CarrySrcBegin + CarryDstBegin);
    CM.ArenaNode = N;
    Metas.push_back(CM);
  }
  return N;
}

void ReuseRecorder::carryRange(uint32_t B, uint32_t E, int64_t Shift) {
  // No per-call reserve: an exact reserve per splice would defeat the
  // vector's geometric growth and quadratize the carry.
  const size_t DstBase = Metas.size();
  for (uint32_t I = B; I <= E; ++I) {
    NodeMeta CM = C.Prev->Metas[I];
    CM.Start += Shift;
    CM.Next += Shift;
    CM.Reach += Shift;
    CM.SubtreeBegin = uint32_t(CM.SubtreeBegin - B + DstBase);
    Metas.push_back(CM);
  }
}

ParseRecord ReuseRecorder::take() {
  ParseRecord R;
  R.Metas = std::move(Metas);
  R.build();
  return R;
}
