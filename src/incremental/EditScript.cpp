#include "incremental/EditScript.h"

#include <cctype>

using namespace llstar;
using namespace llstar::incremental;

const char *incremental::editScriptErrorName(EditScriptError E) {
  switch (E) {
  case EditScriptError::None:
    return "none";
  case EditScriptError::BadJson:
    return "bad-json";
  case EditScriptError::MissingField:
    return "missing-field";
  case EditScriptError::BadFieldType:
    return "bad-field-type";
  case EditScriptError::NegativeValue:
    return "negative-value";
  case EditScriptError::Overlap:
    return "overlap";
  case EditScriptError::NonMonotonic:
    return "non-monotonic";
  case EditScriptError::OutOfRange:
    return "out-of-range";
  }
  return "unknown";
}

EditScriptError incremental::validateEdit(const Edit &E, size_t TextSize) {
  if (E.Offset < 0 || E.OldLen < 0)
    return EditScriptError::NegativeValue;
  if (uint64_t(E.Offset) > TextSize ||
      uint64_t(E.OldLen) > TextSize - uint64_t(E.Offset))
    return EditScriptError::OutOfRange;
  return EditScriptError::None;
}

namespace {

/// A recursive-descent parser for the JSON subset the schema needs:
/// objects, arrays, strings (with the standard escapes), and integers.
/// The parser never builds a generic value tree — it decodes straight
/// into the EditScript, failing with a typed error at the first problem.
class ScriptParser {
public:
  explicit ScriptParser(std::string_view In) : In(In) {}

  EditScriptParseResult run() {
    EditScriptParseResult R;
    if (!parseTop(R.Script)) {
      R.Error = Err;
      R.Message = Msg;
      return R;
    }
    skipWs();
    if (Pos != In.size()) {
      R.Error = EditScriptError::BadJson;
      R.Message = at() + "trailing characters after the script object";
      return R;
    }
    return R;
  }

private:
  std::string_view In;
  size_t Pos = 0;
  EditScriptError Err = EditScriptError::None;
  std::string Msg;

  bool fail(EditScriptError E, std::string M) {
    // Keep the first (deepest) failure; callers propagate false upward.
    if (Err == EditScriptError::None) {
      Err = E;
      Msg = at() + std::move(M);
    }
    return false;
  }

  std::string at() const { return "at byte " + std::to_string(Pos) + ": "; }

  void skipWs() {
    while (Pos < In.size() && (In[Pos] == ' ' || In[Pos] == '\t' ||
                               In[Pos] == '\n' || In[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < In.size() && In[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  char peek() {
    skipWs();
    return Pos < In.size() ? In[Pos] : '\0';
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (Pos >= In.size() || In[Pos] != '"')
      return fail(EditScriptError::BadJson, "expected a string");
    ++Pos;
    Out.clear();
    while (Pos < In.size()) {
      char C = In[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= In.size())
        break;
      char E = In[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > In.size())
          return fail(EditScriptError::BadJson, "truncated \\u escape");
        uint32_t V = 0;
        for (int I = 0; I < 4; ++I) {
          char H = In[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= uint32_t(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= uint32_t(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= uint32_t(H - 'A' + 10);
          else
            return fail(EditScriptError::BadJson, "bad \\u escape digit");
        }
        // UTF-8 encode; edits are byte-oriented so multi-byte escapes
        // simply contribute their encoded bytes.
        if (V < 0x80) {
          Out += char(V);
        } else if (V < 0x800) {
          Out += char(0xC0 | (V >> 6));
          Out += char(0x80 | (V & 0x3F));
        } else {
          Out += char(0xE0 | (V >> 12));
          Out += char(0x80 | ((V >> 6) & 0x3F));
          Out += char(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        return fail(EditScriptError::BadJson, "unknown string escape");
      }
    }
    return fail(EditScriptError::BadJson, "unterminated string");
  }

  bool parseInt(int64_t &Out) {
    skipWs();
    size_t Start = Pos;
    bool Neg = false;
    if (Pos < In.size() && In[Pos] == '-') {
      Neg = true;
      ++Pos;
    }
    int64_t V = 0;
    size_t Digits = 0;
    while (Pos < In.size() && std::isdigit(static_cast<unsigned char>(In[Pos]))) {
      if (V > (INT64_MAX - 9) / 10)
        return fail(EditScriptError::BadJson, "integer overflow");
      V = V * 10 + (In[Pos] - '0');
      ++Pos;
      ++Digits;
    }
    if (Digits == 0) {
      Pos = Start;
      return fail(EditScriptError::BadJson, "expected an integer");
    }
    if (Pos < In.size() && (In[Pos] == '.' || In[Pos] == 'e' || In[Pos] == 'E'))
      return fail(EditScriptError::BadFieldType,
                  "expected an integer, found a fraction/exponent");
    Out = Neg ? -V : V;
    return true;
  }

  /// Skips any JSON value (for unknown keys, tolerated for forward
  /// compatibility of traces).
  bool skipValue() {
    char C = peek();
    if (C == '"') {
      std::string Tmp;
      return parseString(Tmp);
    }
    if (C == '{') {
      ++Pos;
      if (eat('}'))
        return true;
      do {
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!eat(':'))
          return fail(EditScriptError::BadJson, "expected ':'");
        if (!skipValue())
          return false;
      } while (eat(','));
      if (!eat('}'))
        return fail(EditScriptError::BadJson, "expected '}'");
      return true;
    }
    if (C == '[') {
      ++Pos;
      if (eat(']'))
        return true;
      do {
        if (!skipValue())
          return false;
      } while (eat(','));
      if (!eat(']'))
        return fail(EditScriptError::BadJson, "expected ']'");
      return true;
    }
    if (C == 't' && In.substr(Pos, 4) == "true") {
      Pos += 4;
      return true;
    }
    if (C == 'f' && In.substr(Pos, 5) == "false") {
      Pos += 5;
      return true;
    }
    if (C == 'n' && In.substr(Pos, 4) == "null") {
      Pos += 4;
      return true;
    }
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      ++Pos;
      while (Pos < In.size() &&
             (std::isdigit(static_cast<unsigned char>(In[Pos])) ||
              In[Pos] == '.' || In[Pos] == 'e' || In[Pos] == 'E' ||
              In[Pos] == '+' || In[Pos] == '-'))
        ++Pos;
      return true;
    }
    return fail(EditScriptError::BadJson, "expected a value");
  }

  bool parseEdit(Edit &E) {
    if (!eat('{'))
      return fail(EditScriptError::BadFieldType,
                  "an edit must be a JSON object");
    bool HaveOffset = false, HaveOldLen = false, HaveNewText = false;
    if (!eat('}')) {
      do {
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!eat(':'))
          return fail(EditScriptError::BadJson, "expected ':'");
        if (Key == "offset") {
          if (peek() == '"' || peek() == '{' || peek() == '[' || peek() == 't' ||
              peek() == 'f' || peek() == 'n')
            return fail(EditScriptError::BadFieldType,
                        "\"offset\" must be an integer");
          if (!parseInt(E.Offset))
            return false;
          HaveOffset = true;
        } else if (Key == "oldLen") {
          if (peek() == '"' || peek() == '{' || peek() == '[' || peek() == 't' ||
              peek() == 'f' || peek() == 'n')
            return fail(EditScriptError::BadFieldType,
                        "\"oldLen\" must be an integer");
          if (!parseInt(E.OldLen))
            return false;
          HaveOldLen = true;
        } else if (Key == "newText") {
          if (peek() != '"')
            return fail(EditScriptError::BadFieldType,
                        "\"newText\" must be a string");
          if (!parseString(E.NewText))
            return false;
          HaveNewText = true;
        } else if (!skipValue()) {
          return false;
        }
      } while (eat(','));
      if (!eat('}'))
        return fail(EditScriptError::BadJson, "expected '}'");
    }
    if (!HaveOffset)
      return fail(EditScriptError::MissingField, "edit lacks \"offset\"");
    if (!HaveOldLen)
      return fail(EditScriptError::MissingField, "edit lacks \"oldLen\"");
    if (!HaveNewText)
      return fail(EditScriptError::MissingField, "edit lacks \"newText\"");
    if (E.Offset < 0 || E.OldLen < 0)
      return fail(EditScriptError::NegativeValue,
                  "offset and oldLen must be non-negative");
    return true;
  }

  bool parseBatch(std::vector<Edit> &Batch) {
    char C = peek();
    if (C == '\0') // truncated document, not a type error
      return fail(EditScriptError::BadJson, "unexpected end of input");
    if (C == '{') {
      Edit E;
      if (!parseEdit(E))
        return false;
      Batch.push_back(std::move(E));
      return true;
    }
    if (C != '[')
      return fail(EditScriptError::BadFieldType,
                  "an \"edits\" entry must be an edit object or an array");
    ++Pos;
    if (eat(']'))
      return true;
    do {
      Edit E;
      if (!parseEdit(E))
        return false;
      Batch.push_back(std::move(E));
    } while (eat(','));
    if (!eat(']'))
      return fail(EditScriptError::BadJson, "expected ']'");
    // Batch edits share one snapshot of the text: require strictly
    // increasing, non-overlapping spans so the batch is unambiguous.
    for (size_t I = 1; I < Batch.size(); ++I) {
      if (Batch[I].Offset <= Batch[I - 1].Offset)
        return fail(EditScriptError::NonMonotonic,
                    "batch offsets must be strictly increasing");
      if (Batch[I - 1].Offset + Batch[I - 1].OldLen > Batch[I].Offset)
        return fail(EditScriptError::Overlap, "batch spans overlap");
    }
    return true;
  }

  bool parseTop(EditScript &S) {
    if (!eat('{'))
      return fail(EditScriptError::BadJson,
                  "an edit script must be a JSON object");
    bool HaveEdits = false;
    if (!eat('}')) {
      do {
        std::string Key;
        if (!parseString(Key))
          return false;
        if (!eat(':'))
          return fail(EditScriptError::BadJson, "expected ':'");
        if (Key == "initial") {
          if (peek() != '"')
            return fail(EditScriptError::BadFieldType,
                        "\"initial\" must be a string");
          if (!parseString(S.Initial))
            return false;
        } else if (Key == "edits") {
          if (peek() != '[')
            return fail(EditScriptError::BadFieldType,
                        "\"edits\" must be an array");
          ++Pos;
          HaveEdits = true;
          if (!eat(']')) {
            do {
              std::vector<Edit> Batch;
              if (!parseBatch(Batch))
                return false;
              S.Batches.push_back(std::move(Batch));
            } while (eat(','));
            if (!eat(']'))
              return fail(EditScriptError::BadJson, "expected ']'");
          }
        } else if (!skipValue()) {
          return false;
        }
      } while (eat(','));
      if (!eat('}'))
        return fail(EditScriptError::BadJson, "expected '}'");
    }
    if (!HaveEdits)
      return fail(EditScriptError::MissingField,
                  "script lacks the \"edits\" array");
    return true;
  }
};

} // namespace

EditScriptParseResult incremental::parseEditScript(std::string_view Json) {
  return ScriptParser(Json).run();
}
