//===- incremental/ReuseMetadata.h - Per-node reuse metadata ----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The subscriber side of runtime/ReuseHooks.h: records per-node reuse
/// metadata during one parse and serves subtree splices to the next.
///
/// For every completed non-speculative rule invocation the recorder keeps
/// `(rule, precedence, startToken, nextToken, maxLookaheadReach)` — where
/// the reach is the highest token index *any* prediction under the node
/// examined, folded child-into-parent on exit. An LL(*) decision is a
/// pure function of its lookahead window, so a node whose `[start, reach]`
/// window is disjoint from an edit's damaged token range would parse to
/// the identical subtree; that is the entire soundness argument.
///
/// Nodes are dropped (never recorded) when anything broke that purity:
/// semantic predicates and actions consult mutable state, syntax-error
/// recovery consults the dynamic follow stack, deadline aborts truncate
/// the parse. The engines report those moments through
/// ReuseHooks::opaque(), and the poison propagates to every ancestor.
/// Zero-width invocations are also dropped — splicing a node that
/// consumed nothing can never make progress.
///
/// On the next parse, \ref ReuseRecorder::tryReuse maps the probe's new
/// start index back to old token coordinates (identity before the damage,
/// shifted by the token delta after it) and requires the recorded window
/// to be disjoint from the damaged range. The splice itself is built for
/// the editor loop's per-edit budget:
///
///  - Heap trees are *stolen*: the old tree is about to be discarded
///    anyway, so the subtree is detached from its old parent (the slot is
///    left empty) and adopted wholesale — no allocation, no walk. Only
///    when the retained suffix actually shifted (byte, token, or position
///    delta) are the subtree's leaf tokens refreshed from the new token
///    vector, and only for suffix splices; prefix tokens never change.
///  - Arena trees are copied into the new arena (the old arena is
///    recycled after the parse, so its nodes cannot survive), which is a
///    bump-allocation walk with no per-node bookkeeping.
///
/// Metadata carries forward without any per-node map: exits append in
/// post-order, so a node's subtree occupies the contiguous metadata range
/// [SubtreeBegin, self] — splices carry that whole range, re-based, in
/// one pass, which is what lets reuse keep compounding across edits at
/// O(spliced metadata) instead of O(tree) cost.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_INCREMENTAL_REUSEMETADATA_H
#define LLSTAR_INCREMENTAL_REUSEMETADATA_H

#include "lexer/Token.h"
#include "runtime/Arena.h"
#include "runtime/ArenaParseTree.h"
#include "runtime/ParseTree.h"
#include "runtime/ReuseHooks.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace llstar {
namespace incremental {

/// Reuse metadata for one parse-tree node (one completed rule
/// invocation). Indices are token-stream positions of the parse that
/// built the node. Only sound candidates are stored: opaque
/// (predicate/action/error/deadline-tainted) and zero-width invocations
/// are never recorded.
struct NodeMeta {
  int32_t Rule = -1;
  int32_t Prec = 0;
  int64_t Start = 0; ///< first token index of the invocation
  int64_t Next = 0;  ///< one past the last consumed token
  int64_t Reach = 0; ///< highest token index any decision under the node
                     ///< examined (inclusive; >= Next - 1)
  /// Index into the owning record's Metas of the first entry belonging to
  /// this node's subtree. Exits append post-order, so the subtree's
  /// entries are exactly Metas[SubtreeBegin .. self], self last.
  uint32_t SubtreeBegin = 0;
  ParseTree *HeapNode = nullptr;
  const ArenaParseTree *ArenaNode = nullptr;
};

/// All reuse metadata harvested from one parse, indexed for the next.
/// The probe index is a flat open-addressed table (the per-edit rebuild
/// is on the incremental hot path; node-based maps are too slow there).
struct ParseRecord {
  std::vector<NodeMeta> Metas;

  static uint64_t packKey(int32_t Rule, int32_t Prec, int64_t Start) {
    return (uint64_t(uint32_t(Rule)) * 0x9E3779B97F4A7C15ULL) ^
           (uint64_t(uint32_t(Prec)) * 0xC2B2AE3D27D4EB4FULL) ^
           uint64_t(Start);
  }

  /// Index into Metas of the entry for (rule, prec, start), or
  /// \ref Npos. On a packed-key collision the later (outermost) entry
  /// wins; callers re-check the triple and treat a mismatch as a miss.
  uint32_t find(int32_t Rule, int32_t Prec, int64_t Start) const {
    if (Slots.empty())
      return Npos;
    uint64_t K = packKey(Rule, Prec, Start);
    for (size_t S = slotOf(K);; S = (S + 1) & Mask) {
      if (Slots[S].second == Npos)
        return Npos;
      if (Slots[S].first == K)
        return Slots[S].second;
    }
  }

  static constexpr uint32_t Npos = UINT32_MAX;

  /// Rebuilds the probe index from Metas.
  void build();
  void clear();

private:
  size_t slotOf(uint64_t K) const { return size_t(K ^ (K >> 32)) & Mask; }

  std::vector<std::pair<uint64_t, uint32_t>> Slots; ///< (key, Metas index)
  size_t Mask = 0;
};

/// The live ReuseHooks subscriber for one parse: records metadata for the
/// tree being built while serving splices out of the previous parse's
/// record. Construct one per parse; harvest with \ref take afterwards.
class ReuseRecorder : public ReuseHooks {
public:
  struct Config {
    /// Previous parse to harvest subtrees from; null disables reuse
    /// (first parse of a session, or reuse turned off).
    const ParseRecord *Prev = nullptr;
    /// Damaged token window, from IncrementalLexer::Damage: old tokens
    /// [0, InvalidLo) are unchanged, old tokens [OldInvalidHi, ...)
    /// survive shifted by TokenDelta (their new indices start at
    /// NewInvalidHi).
    int64_t InvalidLo = 0;
    int64_t OldInvalidHi = 0;
    int64_t NewInvalidHi = 0;
    int64_t TokenDelta = 0;
    /// True when the retained suffix tokens are bit-identical to the old
    /// ones (IncrementalLexer::Damage::SuffixIdentical): suffix steals
    /// can then skip refreshing their leaf tokens entirely.
    bool SuffixIdentical = false;
    /// The new master token vector; heap-mode suffix splices refresh
    /// their leaf tokens from here when the suffix shifted.
    const std::vector<Token> *NewTokens = nullptr;
    /// Arena receiving arena-mode splice copies (null in heap mode).
    Arena *NewArena = nullptr;
  };

  explicit ReuseRecorder(Config C) : C(C) {}

  bool tryReuse(int32_t Rule, int32_t Precedence, int64_t StartIndex,
                Splice &Out) override;
  void enterRule(int32_t Rule, int32_t Precedence,
                 int64_t StartIndex) override;
  void exitRule(int32_t Rule, int64_t NextIndex, ParseTree *HeapNode,
                ArenaParseTree *ArenaNode) override;
  void lookahead(int64_t MaxIndexInclusive) override;
  void opaque() override;

  /// Harvests the metadata recorded for the parse (with indices built);
  /// the recorder is spent afterwards.
  ParseRecord take();

private:
  struct Frame {
    int32_t Rule;
    int32_t Prec;
    int64_t Start;
    int64_t Reach;
    uint32_t MetasMark; ///< Metas.size() at enterRule: SubtreeBegin
    bool Opaque;
  };

  /// Detaches the recorded heap subtree from the previous tree and
  /// prepares it for adoption (refreshing leaf tokens if the suffix
  /// shifted). Null on refusal; the old tree is left untouched then.
  std::unique_ptr<ParseTree> stealHeap(const NodeMeta &M, int64_t Shift,
                                       bool BeforeDamage);
  /// Rewrites every token leaf from the new token vector, shifted.
  void refreshLeafTokens(ParseTree &N, int64_t Shift);
  ArenaParseTree *copyArena(const ArenaParseTree &Old, int64_t Shift);
  /// Bulk-carries the previous record's metadata range [B, E] (a spliced
  /// subtree, post-order) into Metas, re-based by \p Shift. Node pointers
  /// are kept — heap steals move the nodes wholesale.
  void carryRange(uint32_t B, uint32_t E, int64_t Shift);

  Config C;
  std::vector<Frame> Stack;
  std::vector<NodeMeta> Metas;
  /// Cursor state for arena copies: the next previous-record entry of the
  /// in-flight splice range. The copy walk and the range share one
  /// post-order, so binding carried metadata to fresh nodes is a pointer
  /// comparison per rule node instead of a map lookup.
  uint32_t CarryCur = 0, CarryEnd = 0;
  uint32_t CarrySrcBegin = 0;
  size_t CarryDstBegin = 0;
};

} // namespace incremental
} // namespace llstar

#endif // LLSTAR_INCREMENTAL_REUSEMETADATA_H
