//===- service/GrammarBundleCache.h - Shared grammar bundles ----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The grammar side of the batch parsing service. LL(*) analysis output is
/// immutable once constructed — exactly the artifact to build (or load)
/// once and share across every concurrent parse. A \ref GrammarBundle
/// packages an analyzed grammar with its compiled lexer behind `const`
/// accessors; a \ref GrammarBundleCache hands out shared ownership of
/// bundles keyed by the content hash of their bytes, so N requests against
/// the same grammar pay for one analysis (or one bundle load), not N.
///
/// Sources of bundles:
///   - grammar source text (analyzed on first use), and
///   - serialized bundle bytes in the versioned `llstarbundle` container
///     (see codegen/Serializer.h), verified and rejected cleanly when
///     truncated, bit-flipped, or of an unsupported version.
///
/// Thread-safety: all cache methods may be called concurrently. Bundles
/// are immutable after construction; AnalyzedGrammar::analyze/fromParts
/// freeze the grammar's lazy caches, so concurrent const use from worker
/// threads is data-race-free.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_SERVICE_GRAMMARBUNDLECACHE_H
#define LLSTAR_SERVICE_GRAMMARBUNDLECACHE_H

#include "analysis/AnalyzedGrammar.h"
#include "compiled/CompiledRegistry.h"
#include "lexer/Lexer.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace llstar {

/// An immutable, shareable grammar package: analysis tables plus a
/// compiled tokenizer. Construct through GrammarBundleCache (or
/// \ref makeGrammarBundle for uncached one-offs).
class GrammarBundle {
public:
  const AnalyzedGrammar &analyzed() const { return *AG; }
  const Grammar &grammar() const { return AG->grammar(); }

  /// Tokenizes \p Input with the bundle's compiled lexer. Safe to call
  /// from many threads at once.
  std::vector<Token> tokenize(std::string_view Input,
                              DiagnosticEngine &Diags) const {
    return Lex->tokenize(Input, Diags);
  }

  /// The bundle's compiled lexer. Incremental sessions re-lex damaged
  /// windows with the same DFA tables full tokenization uses, so spliced
  /// token streams are indistinguishable from \ref tokenize output.
  const Lexer &lexer() const { return *Lex; }

  /// Content hash of the bytes this bundle was built from (the cache key).
  uint64_t contentHash() const { return Hash; }
  const std::string &name() const { return AG->grammar().Name; }

  /// Dense-table fast path for this grammar: a hash-matched registered
  /// module, or tables flattened from the analysis on first request.
  /// Thread-safe; every later call returns the same resolution.
  const compiled::CompiledResolution &compiledTables() const;

private:
  friend class GrammarBundleCache;
  friend std::shared_ptr<const GrammarBundle>
  makeGrammarBundle(std::string_view, DiagnosticEngine &, BackendKind);

  GrammarBundle() = default;

  std::unique_ptr<AnalyzedGrammar> AG;
  std::unique_ptr<Lexer> Lex;
  uint64_t Hash = 0;
  mutable std::once_flag CompiledOnce;
  mutable compiled::CompiledResolution Compiled;
};

/// Builds a bundle from grammar source text or `llstarbundle` bytes
/// (sniffed), bypassing any cache. Returns null with diagnostics on error.
/// \p Backend selects the prediction analysis for source-text grammars;
/// serialized bundles already carry their producing backend in the v3
/// container header and ignore it.
std::shared_ptr<const GrammarBundle>
makeGrammarBundle(std::string_view Bytes, DiagnosticEngine &Diags,
                  BackendKind Backend = BackendKind::LLStar);

/// A thread-safe cache of grammar bundles keyed by content hash.
class GrammarBundleCache {
public:
  struct CacheStats {
    int64_t Hits = 0;
    int64_t Misses = 0;
    int64_t LoadFailures = 0;
    size_t Entries = 0;
  };

  /// Returns the bundle for \p Bytes — grammar source text or serialized
  /// `llstarbundle` bytes, distinguished by the container magic. Loads and
  /// caches on first sight of the content; later identical content is a
  /// hash lookup. Returns null (with diagnostics in \p Diags) when the
  /// bytes don't load; failures are not cached. The cache key is salted
  /// with \p Backend, so the same grammar source analyzed under different
  /// backends yields distinct cached bundles.
  std::shared_ptr<const GrammarBundle>
  get(std::string_view Bytes, DiagnosticEngine &Diags,
      BackendKind Backend = BackendKind::LLStar);

  /// Convenience: reads \p Path and calls \ref get.
  std::shared_ptr<const GrammarBundle>
  getFile(const std::string &Path, DiagnosticEngine &Diags,
          BackendKind Backend = BackendKind::LLStar);

  CacheStats stats() const;
  void clear();

private:
  mutable std::mutex Mu;
  std::unordered_map<uint64_t, std::shared_ptr<const GrammarBundle>> Map;
  CacheStats Stats;
};

} // namespace llstar

#endif // LLSTAR_SERVICE_GRAMMARBUNDLECACHE_H
