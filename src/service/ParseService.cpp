#include "service/ParseService.h"

#include "compiled/CompiledParser.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include <algorithm>

using namespace llstar;

const char *llstar::statusName(ParseStatus S) {
  switch (S) {
  case ParseStatus::Ok:
    return "ok";
  case ParseStatus::SyntaxError:
    return "syntax-error";
  case ParseStatus::Recovered:
    return "recovered";
  case ParseStatus::LexError:
    return "lex-error";
  case ParseStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case ParseStatus::TooManyTokens:
    return "too-many-tokens";
  case ParseStatus::QueueFull:
    return "queue-full";
  case ParseStatus::ShuttingDown:
    return "shutting-down";
  case ParseStatus::BadRequest:
    return "bad-request";
  }
  return "?";
}

std::string ServiceMetrics::json(bool IncludeDecisions,
                                 const std::vector<DecisionKey> *Keys) const {
  std::string Out = "{";
  auto Num = [&Out](const char *Key, int64_t V, bool Comma = true) {
    Out += '"';
    Out += Key;
    Out += "\":";
    Out += std::to_string(V);
    if (Comma)
      Out += ',';
  };
  Num("threads", Threads);
  Num("submitted", Submitted);
  Num("completed", Completed);
  Num("ok", Ok);
  Num("recovered", Recovered);
  Num("syntaxErrors", SyntaxErrors);
  Num("lexErrors", LexErrors);
  Num("rejectedQueueFull", RejectedQueueFull);
  Num("rejectedTooManyTokens", RejectedTooManyTokens);
  Num("deadlineExceeded", DeadlineExceeded);
  Num("rejectedShutdown", RejectedShutdown);
  Num("tokensParsed", TokensParsed);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "\"parseMillis\":%.3f,", ParseMillis);
  Out += Buf;
  Out += "\"parser\":";
  Out += Parser.json(IncludeDecisions, Keys);
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

ParseService::ParseService(ServiceConfig Config) : Config(Config) {
  int N = Config.Threads;
  if (N <= 0)
    N = std::max(1u, std::thread::hardware_concurrency());
  this->Config.Threads = N;
  for (int I = 0; I < N; ++I)
    WorkerStates.push_back(std::make_unique<WorkerState>());
  if (Config.AutoStart)
    start();
}

ParseService::~ParseService() { shutdown(); }

void ParseService::start() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Started || Stopping)
      return;
    Started = true;
  }
  for (auto &State : WorkerStates)
    Workers.emplace_back([this, S = State.get()] { workerLoop(*S); });
}

void ParseService::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Stopping)
      return;
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();

  // With no workers ever started, queued jobs still need their futures
  // resolved; without this a never-started service would leak broken
  // promises.
  std::deque<Job> Leftover;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Leftover.swap(Queue);
  }
  for (Job &J : Leftover) {
    ParseResult R;
    R.Id = J.Req.Id;
    R.Status = ParseStatus::ShuttingDown;
    J.Done(std::move(R));
    std::lock_guard<std::mutex> Lock(CountersMu);
    ++ShutdownDrained;
  }
  // A drain() racing with shutdown may be waiting on the queue we just
  // resolved by hand.
  IdleCv.notify_all();
}

void ParseService::drain() {
  // Queued work can only drain through workers; a never-started service
  // (AutoStart=false) would otherwise wait forever.
  start();
  std::unique_lock<std::mutex> Lock(QueueMu);
  IdleCv.wait(Lock, [this] { return Queue.empty() && Active == 0; });
}

size_t ParseService::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMu);
  return Queue.size();
}

//===----------------------------------------------------------------------===//
// Submission and backpressure
//===----------------------------------------------------------------------===//

std::future<ParseResult> ParseService::submit(ParseRequest Req) {
  // std::function must be copyable, so the move-only promise rides behind
  // a shared_ptr.
  auto Promise = std::make_shared<std::promise<ParseResult>>();
  std::future<ParseResult> Future = Promise->get_future();
  submitAsync(std::move(Req), [Promise](ParseResult R) {
    Promise->set_value(std::move(R));
  });
  return Future;
}

void ParseService::submitAsync(ParseRequest Req, ParseCallback Done) {
  Job J;
  std::chrono::milliseconds Deadline =
      Req.Deadline.count() > 0 ? Req.Deadline : Config.DefaultDeadline;
  if (Deadline.count() > 0) {
    J.HasDeadline = true;
    J.DeadlineAt = std::chrono::steady_clock::now() + Deadline;
  }
  J.Req = std::move(Req);
  J.Done = std::move(Done);

  ParseStatus Reject;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    ++Submitted;
    if (Stopping) {
      Reject = ParseStatus::ShuttingDown;
      ++RejectedShutdown;
    } else if (Queue.size() >= Config.QueueCapacity) {
      Reject = ParseStatus::QueueFull;
      ++RejectedQueueFull;
    } else {
      Queue.push_back(std::move(J));
      QueueCv.notify_one();
      return;
    }
  }

  ParseResult R;
  R.Id = J.Req.Id;
  R.Status = Reject;
  J.Done(std::move(R));
}

//===----------------------------------------------------------------------===//
// Workers
//===----------------------------------------------------------------------===//

void ParseService::workerLoop(WorkerState &State) {
  while (true) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      J = std::move(Queue.front());
      Queue.pop_front();
      ++Active; // drain() must wait for this job's callback too
    }
    ParseResult R = runJob(J, State);

    {
      std::lock_guard<std::mutex> Lock(CountersMu);
      switch (R.Status) {
      case ParseStatus::Ok:
        ++Ok;
        break;
      case ParseStatus::Recovered:
        ++Recovered;
        break;
      case ParseStatus::SyntaxError:
        ++SyntaxErrors;
        break;
      case ParseStatus::LexError:
        ++LexErrors;
        break;
      case ParseStatus::TooManyTokens:
        ++RejectedTooManyTokens;
        break;
      case ParseStatus::DeadlineExceeded:
        ++DeadlineExceeded;
        break;
      default:
        break;
      }
    }
    J.Done(std::move(R));
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      --Active;
      if (Active == 0 && Queue.empty())
        IdleCv.notify_all();
    }
  }
}

ParseResult ParseService::runJob(Job &J, WorkerState &State) {
  ParseResult R;
  R.Id = J.Req.Id;

  if (!J.Req.Bundle) {
    R.Status = ParseStatus::BadRequest;
    R.DiagText = "error: request carries no grammar bundle\n";
    return R;
  }
  const AnalyzedGrammar &AG = J.Req.Bundle->analyzed();

  if (!J.Req.StartRule.empty() &&
      AG.grammar().findRule(J.Req.StartRule) < 0) {
    R.Status = ParseStatus::BadRequest;
    R.DiagText = "error: unknown start rule '" + J.Req.StartRule + "'\n";
    return R;
  }

  if (J.HasDeadline && std::chrono::steady_clock::now() > J.DeadlineAt) {
    R.Status = ParseStatus::DeadlineExceeded;
    R.DiagText = "error: deadline expired while queued\n";
    return R;
  }

  // Each request gets its own DiagnosticEngine: engines accumulate state
  // during parsing and must never be shared across concurrent parses.
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = J.Req.Bundle->tokenize(J.Req.Input, Diags);
  R.NumTokens = int64_t(Tokens.size()) - 1; // exclude EOF
  if (Diags.hasErrors()) {
    R.Status = ParseStatus::LexError;
    R.DiagText = Diags.str();
    return R;
  }
  if (Config.MaxTokens > 0 && R.NumTokens > Config.MaxTokens) {
    R.Status = ParseStatus::TooManyTokens;
    R.DiagText = "error: input has " + std::to_string(R.NumTokens) +
                 " tokens, limit is " + std::to_string(Config.MaxTokens) +
                 "\n";
    return R;
  }

  TokenStream Stream(std::move(Tokens));
  ParserOptions Opts;
  Opts.Memoize = AG.grammar().Options.Memoize;
  Opts.BuildTree = J.Req.WantTree;
  Opts.CollectStats = Config.CollectStats;
  Opts.Recover = J.Req.Recover;
  Opts.TreeArena = &State.TreeArena;
  if (J.HasDeadline)
    Opts.Deadline = J.DeadlineAt;

  auto Start = std::chrono::steady_clock::now();
  // Post-parse handling shared by both engines; they expose the same parse
  // surface (ok/deadlineExpired/arenaTree/stats) with identical semantics.
  auto Finish = [&](auto &P) {
    double Millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Start)
                        .count();

    if (P.deadlineExpired())
      R.Status = ParseStatus::DeadlineExceeded;
    else if (P.ok())
      R.Status = ParseStatus::Ok;
    else
      R.Status =
          J.Req.Recover ? ParseStatus::Recovered : ParseStatus::SyntaxError;
    R.DiagText = Diags.str();
    if (R.Status == ParseStatus::Recovered ||
        R.Status == ParseStatus::SyntaxError)
      for (Diagnostic &D : Diags.sorted())
        if (D.Severity == DiagSeverity::Error)
          R.Errors.push_back(std::move(D));
    R.ParseMillis = Millis;
    if (J.Req.WantTree && P.arenaTree()) {
      R.TreeText = P.arenaTree()->str(AG.grammar(), Stream);
      R.TreeNodes = int64_t(P.arenaTree()->size());
    }
    // The tree (and every node allocated for it) dies here, in O(1).
    State.TreeArena.reset();

    {
      std::lock_guard<std::mutex> Lock(State.Mu);
      State.Stats.merge(P.stats());
      State.TokensParsed += R.NumTokens;
      State.ParseMillis += Millis;
    }
    return R;
  };

  if (Config.UseCompiled) {
    const compiled::CompiledResolution &CT = J.Req.Bundle->compiledTables();
    compiled::CompiledParser P(AG, CT.View, Stream, /*Env=*/nullptr, Diags,
                               Opts, CT.Native, CT.Rules);
    P.parse(J.Req.StartRule);
    return Finish(P);
  }
  LLStarParser P(AG, Stream, /*Env=*/nullptr, Diags, Opts);
  P.parse(J.Req.StartRule);
  return Finish(P);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

ServiceMetrics ParseService::metrics() const {
  ServiceMetrics M;
  M.Threads = int(WorkerStates.size());
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    M.Submitted = Submitted;
    M.RejectedQueueFull = RejectedQueueFull;
    M.RejectedShutdown = RejectedShutdown;
  }
  {
    std::lock_guard<std::mutex> Lock(CountersMu);
    M.Ok = Ok;
    M.Recovered = Recovered;
    M.SyntaxErrors = SyntaxErrors;
    M.LexErrors = LexErrors;
    M.RejectedTooManyTokens = RejectedTooManyTokens;
    M.DeadlineExceeded = DeadlineExceeded;
    M.RejectedShutdown += ShutdownDrained;
  }
  M.Completed = M.Ok + M.Recovered + M.SyntaxErrors + M.LexErrors;
  for (const auto &State : WorkerStates) {
    std::lock_guard<std::mutex> Lock(State->Mu);
    M.Parser.merge(State->Stats);
    M.TokensParsed += State->TokensParsed;
    M.ParseMillis += State->ParseMillis;
  }
  {
    std::lock_guard<std::mutex> Lock(ExternalMu);
    M.Parser.merge(ExternalStats);
  }
  return M;
}

void ParseService::recordExternalStats(const ParserStats &S) {
  std::lock_guard<std::mutex> Lock(ExternalMu);
  ExternalStats.merge(S);
}
