#include "service/GrammarBundleCache.h"

#include "codegen/Serializer.h"
#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace llstar;

std::shared_ptr<const GrammarBundle>
llstar::makeGrammarBundle(std::string_view Bytes, DiagnosticEngine &Diags,
                          BackendKind Backend) {
  auto Bundle = std::shared_ptr<GrammarBundle>(new GrammarBundle());
  Bundle->Hash = hashBytes(Bytes);

  if (looksLikeBundle(Bytes)) {
    // Serialized bundles carry their producing backend in the container
    // header; the caller's preference applies to source text only.
    std::unique_ptr<CompiledGrammar> CG = readBundle(Bytes, Diags);
    if (!CG)
      return nullptr;
    Bundle->Lex = std::make_unique<Lexer>(std::move(CG->LexerDfa),
                                          std::move(CG->LexerActions),
                                          std::move(CG->LexerTypes));
    Bundle->AG = std::move(CG->AG);
  } else {
    Bundle->AG = analyzeGrammarText(Bytes, Diags, Backend);
    if (!Bundle->AG)
      return nullptr;
    // Compile the lexer once here rather than per request; lexer-spec
    // problems were already reported during grammar validation.
    DiagnosticEngine LexDiags;
    Bundle->Lex = std::make_unique<Lexer>(
        Bundle->AG->grammar().lexerSpec(), LexDiags);
    if (LexDiags.hasErrors()) {
      for (const Diagnostic &D : LexDiags.diagnostics())
        Diags.report(D.Severity, D.Loc, D.Message);
      return nullptr;
    }
  }
  return Bundle;
}

const compiled::CompiledResolution &GrammarBundle::compiledTables() const {
  std::call_once(CompiledOnce, [this] {
    // The serialized payload keys the module-registry hash gate; one
    // serialization per bundle, amortized over every request.
    Compiled = compiled::resolveCompiledTables(*AG, serializeGrammar(*AG));
  });
  return Compiled;
}

std::shared_ptr<const GrammarBundle>
GrammarBundleCache::get(std::string_view Bytes, DiagnosticEngine &Diags,
                        BackendKind Backend) {
  // Salt the content hash with the backend: identical grammar source
  // analyzed under different backends must not alias in the cache.
  uint64_t Key = hashBytes(Bytes) ^
                 (uint64_t(Backend) * 0x9e3779b97f4a7c15ull);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      ++Stats.Hits;
      return It->second;
    }
  }

  // Load outside the lock: analysis can be slow and must not stall workers
  // fetching unrelated bundles. Two threads racing on the same new content
  // both load; the first insert wins and the duplicate is dropped.
  std::shared_ptr<const GrammarBundle> Bundle =
      makeGrammarBundle(Bytes, Diags, Backend);

  std::lock_guard<std::mutex> Lock(Mu);
  if (!Bundle) {
    ++Stats.LoadFailures;
    return nullptr;
  }
  ++Stats.Misses;
  auto [It, Inserted] = Map.emplace(Key, std::move(Bundle));
  return It->second;
}

std::shared_ptr<const GrammarBundle>
GrammarBundleCache::getFile(const std::string &Path, DiagnosticEngine &Diags,
                            BackendKind Backend) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Diags.error("cannot read grammar file '" + Path + "'");
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return get(Buffer.str(), Diags, Backend);
}

GrammarBundleCache::CacheStats GrammarBundleCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  CacheStats S = Stats;
  S.Entries = Map.size();
  return S;
}

void GrammarBundleCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
  Stats = CacheStats();
}
