//===- service/ParseService.h - Multi-threaded batch parsing ----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-threaded batch parsing engine over shared grammar bundles. The
/// paper's premise is that lookahead DFAs make prediction cheap enough for
/// production parsers (Sections 1, 6); this is the production harness: a
/// fixed pool of workers drains a bounded request queue, each request
/// parsing with
///
///   - shared immutable analysis tables (a \ref GrammarBundle),
///   - its own DiagnosticEngine (engines are mutated during parsing and
///     must never be shared across concurrent parses),
///   - an arena-allocated parse tree recycled per worker (O(1) release),
///   - a per-request deadline and token-count limit.
///
/// Overload is backpressure, not a crash: submissions beyond the queue
/// capacity, over the token limit, or past their deadline resolve to
/// rejected results. Each worker keeps thread-local ParserStats; a metrics
/// snapshot merges them (ParserStats::merge) with service counters into
/// one JSON-exposable aggregate.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_SERVICE_PARSESERVICE_H
#define LLSTAR_SERVICE_PARSESERVICE_H

#include "runtime/Arena.h"
#include "runtime/ParserStats.h"
#include "service/GrammarBundleCache.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace llstar {

/// How one parse request ended.
enum class ParseStatus {
  Ok,               ///< Parsed without syntax errors.
  SyntaxError,      ///< Parsed; the input is not in the language.
  Recovered,        ///< Syntax errors, but recovery produced a partial tree.
  LexError,         ///< Tokenization failed.
  DeadlineExceeded, ///< Deadline passed while queued or mid-parse.
  TooManyTokens,    ///< Input exceeds the configured token limit.
  QueueFull,        ///< Rejected at submit: queue at capacity.
  ShuttingDown,     ///< Rejected: service stopped before the parse ran.
  BadRequest,       ///< Malformed request (no bundle, unknown start rule).
};

const char *statusName(ParseStatus S);

/// Service-wide knobs, fixed at construction.
struct ServiceConfig {
  /// Worker threads. 0 = one per hardware thread.
  int Threads = 0;
  /// Maximum queued (submitted but not started) requests before
  /// submissions bounce with QueueFull.
  size_t QueueCapacity = 1024;
  /// Reject inputs longer than this many tokens (0 = unlimited).
  int64_t MaxTokens = 0;
  /// Deadline applied to requests that don't carry their own (0 = none).
  std::chrono::milliseconds DefaultDeadline{0};
  /// Collect per-decision ParserStats (cheap; off for pure throughput).
  bool CollectStats = true;
  /// Start workers in the constructor. Tests set this false to fill the
  /// queue deterministically, then call start().
  bool AutoStart = true;
  /// Parse with the compiled fast path (dense tables / generated
  /// predictors; see compiled/CompiledParser.h). Results are contractually
  /// identical to the interpreter; only throughput changes.
  bool UseCompiled = false;
};

/// One unit of work: parse Input against Bundle.
struct ParseRequest {
  std::shared_ptr<const GrammarBundle> Bundle;
  /// Caller's identifier, echoed into the result (e.g. a file path).
  std::string Id;
  std::string Input;
  /// Start rule name; empty = the grammar's start rule.
  std::string StartRule;
  /// Per-request deadline from the moment of submission; 0 = use the
  /// service default.
  std::chrono::milliseconds Deadline{0};
  /// Render the parse tree into ParseResult::TreeText.
  bool WantTree = false;
  /// Parse with error recovery: syntax errors resolve to Recovered with a
  /// partial tree and structured ParseResult::Errors instead of a bare
  /// SyntaxError.
  bool Recover = false;
};

struct ParseResult {
  std::string Id;
  ParseStatus Status = ParseStatus::ShuttingDown;
  /// LISP-style tree rendering (WantTree requests that parsed).
  std::string TreeText;
  /// Rendered diagnostics (syntax errors, warnings), one per line.
  std::string DiagText;
  /// Structured syntax errors (SyntaxError/Recovered results), sorted by
  /// (line, column).
  std::vector<Diagnostic> Errors;
  int64_t NumTokens = 0;
  /// Tree nodes built (arena mode); 0 when no tree was requested.
  int64_t TreeNodes = 0;
  double ParseMillis = 0;

  bool ok() const { return Status == ParseStatus::Ok; }
};

/// Aggregate service counters plus merged parser statistics.
struct ServiceMetrics {
  int64_t Submitted = 0;
  int64_t Completed = 0; ///< ran to Ok, Recovered, or SyntaxError/LexError
  int64_t Ok = 0;
  int64_t Recovered = 0;
  int64_t SyntaxErrors = 0;
  int64_t LexErrors = 0;
  int64_t RejectedQueueFull = 0;
  int64_t RejectedTooManyTokens = 0;
  int64_t DeadlineExceeded = 0;
  int64_t RejectedShutdown = 0;
  int64_t TokensParsed = 0;
  double ParseMillis = 0; ///< summed wall time inside parses
  int Threads = 0;
  /// Every worker's thread-local stats merged via ParserStats::merge.
  ParserStats Parser;

  /// One JSON object with all counters; \p IncludeDecisions and \p Keys
  /// forward to ParserStats::json so per-decision entries carry their
  /// stable (rule, decisionInRule, line, column) identity.
  std::string json(bool IncludeDecisions = false,
                   const std::vector<DecisionKey> *Keys = nullptr) const;
};

/// Invoked exactly once per submitted request with its final result.
/// Rejections (queue full, shutting down) run it inline on the submitting
/// thread; completions run it on the worker that parsed the request.
using ParseCallback = std::function<void(ParseResult)>;

/// The batch parsing engine. Construct, submit, read futures, shutdown
/// (or let the destructor drain).
class ParseService {
public:
  explicit ParseService(ServiceConfig Config = {});
  ~ParseService();

  ParseService(const ParseService &) = delete;
  ParseService &operator=(const ParseService &) = delete;

  /// Launches the worker pool (no-op if already running).
  void start();

  /// Enqueues \p Req. Always returns a valid future: over-capacity and
  /// post-shutdown submissions resolve immediately with QueueFull /
  /// ShuttingDown instead of blocking or throwing.
  std::future<ParseResult> submit(ParseRequest Req);

  /// Callback form of \ref submit, for callers that complete requests
  /// out of submission order (the network daemon). \p Done always runs
  /// exactly once — inline for rejections, on a worker otherwise — and
  /// must not block for long: it occupies the worker while it runs.
  void submitAsync(ParseRequest Req, ParseCallback Done);

  /// Blocks until every accepted request has finished *and its callback
  /// (or future) has been resolved*: the queue is empty and no worker is
  /// mid-job. Starts the worker pool if it was never started (otherwise
  /// queued work could never drain). Unlike \ref shutdown the service
  /// stays usable: workers keep running and later submissions are
  /// accepted. Submissions racing with drain may or may not be waited
  /// for; quiescence is only guaranteed for requests submitted before
  /// the call.
  void drain();

  /// Stops accepting work, finishes everything queued, joins workers.
  /// Safe to call repeatedly.
  void shutdown();

  /// Point-in-time aggregate across all workers. Callable any time, even
  /// mid-parse (counters are merged under their per-worker locks).
  ServiceMetrics metrics() const;

  /// Merges parser stats collected outside the worker pool into the
  /// metrics snapshot — the daemon's incremental edit sessions parse on
  /// its reader threads but still report here, so nodesReused /
  /// tokensRelexed / decisionsReparsed show up in the service JSON.
  void recordExternalStats(const ParserStats &S);

  int threads() const { return int(Workers.size()); }
  size_t queueDepth() const;

private:
  struct Job {
    ParseRequest Req;
    ParseCallback Done;
    std::chrono::steady_clock::time_point DeadlineAt;
    bool HasDeadline = false;
  };

  /// Per-worker mutable state. Stats are merged into snapshots under Mu;
  /// the arena is the worker's recycled tree region.
  struct WorkerState {
    mutable std::mutex Mu;
    ParserStats Stats;
    int64_t TokensParsed = 0;
    double ParseMillis = 0;
    Arena TreeArena;
  };

  void workerLoop(WorkerState &State);
  ParseResult runJob(Job &J, WorkerState &State);

  ServiceConfig Config;

  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;
  /// Signalled whenever the service goes idle (empty queue, no worker
  /// mid-job); drain() waits on it.
  std::condition_variable IdleCv;
  std::deque<Job> Queue;
  /// Jobs popped from the queue whose callback has not yet returned;
  /// guarded by QueueMu.
  int64_t Active = 0;
  bool Stopping = false;
  bool Started = false;

  std::vector<std::thread> Workers;
  std::vector<std::unique_ptr<WorkerState>> WorkerStates;

  // Service-level counters (not per-worker); guarded by QueueMu.
  int64_t Submitted = 0;
  int64_t RejectedQueueFull = 0;
  int64_t RejectedShutdown = 0;

  /// Stats reported via recordExternalStats, guarded by ExternalMu.
  mutable std::mutex ExternalMu;
  ParserStats ExternalStats;

  // Completion counters, guarded by CountersMu (workers update them).
  mutable std::mutex CountersMu;
  int64_t Ok = 0;
  int64_t Recovered = 0;
  int64_t SyntaxErrors = 0;
  int64_t LexErrors = 0;
  int64_t RejectedTooManyTokens = 0;
  int64_t DeadlineExceeded = 0;
  int64_t ShutdownDrained = 0;
};

} // namespace llstar

#endif // LLSTAR_SERVICE_PARSESERVICE_H
