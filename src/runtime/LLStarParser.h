//===- runtime/LLStarParser.h - The LL(*) parser ----------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LL(*) parser of paper Section 4: a recursive-descent interpreter
/// over the ATN whose decisions are driven by the statically constructed
/// lookahead DFAs.
///
/// Per decision event the parser walks the DFA over the remaining input
/// without consuming; terminal edges are preferred, predicate edges are
/// tried in alternative order when no terminal edge applies. Syntactic
/// predicates launch speculative sub-parses with mark/rewind; mutators are
/// deactivated while speculating unless declared `{{...}}` (Section 4.3);
/// speculative sub-parses are memoized packrat-style, bounding the cost of
/// nested backtracking (Section 6.2). Prediction errors are reported at the
/// deepest token the DFA reached (Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_LLSTARPARSER_H
#define LLSTAR_RUNTIME_LLSTARPARSER_H

#include "analysis/AnalyzedGrammar.h"
#include "lexer/TokenStream.h"
#include "recover/ErrorStrategy.h"
#include "runtime/Arena.h"
#include "runtime/ArenaParseTree.h"
#include "runtime/ParseTree.h"
#include "runtime/ParserStats.h"
#include "runtime/ReuseHooks.h"
#include "runtime/SemanticEnv.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace llstar {

/// Runtime knobs for one parser instance.
struct ParserOptions {
  /// Memoize speculative sub-parses. Defaults to the grammar's `memoize`
  /// option; flip to measure the packrat ablation of Section 6.2.
  bool Memoize = true;
  /// Build a concrete parse tree during non-speculative parsing.
  bool BuildTree = true;
  /// Collect per-decision statistics (Tables 3-4).
  bool CollectStats = true;
  /// Recover from syntax errors instead of failing fast: single-token
  /// deletion and insertion at mismatched tokens (consulting \ref Strategy)
  /// and follow-set synchronization after unrecoverable failures. Recovered
  /// regions appear in the parse tree as error leaves (\ref ErrorNodeKind);
  /// \ref LLStarParser::ok still reports false when any error was reported.
  bool Recover = true;
  /// Repair policy consulted at mismatched tokens. Null uses the built-in
  /// default (\ref ErrorStrategy base behavior). Not owned; must be safe
  /// for concurrent use if the parser instances sharing it are.
  ErrorStrategy *Strategy = nullptr;
  /// When non-null, parse trees are built as \ref ArenaParseTree nodes
  /// carved from this arena instead of heap ParseTree nodes. parse() then
  /// returns null; fetch the root with \ref LLStarParser::arenaTree. The
  /// arena and the token stream must outlive any use of the tree.
  Arena *TreeArena = nullptr;
  /// Absolute deadline for the parse; max() means none. Checked at decision
  /// entries and periodically along the state walk. On expiry the parse
  /// aborts with a "parse deadline exceeded" error diagnostic.
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::time_point::max();
  /// Incremental-reparse instrumentation (see runtime/ReuseHooks.h). Both
  /// engines honor it identically. Not owned; must outlive the parse.
  ReuseHooks *Hooks = nullptr;
};

/// An interpreting LL(*) parser for one analyzed grammar.
class LLStarParser {
public:
  /// \p Env may be null when the grammar has no predicates or actions.
  LLStarParser(const AnalyzedGrammar &AG, TokenStream &Stream,
               SemanticEnv *Env, DiagnosticEngine &Diags);
  LLStarParser(const AnalyzedGrammar &AG, TokenStream &Stream,
               SemanticEnv *Env, DiagnosticEngine &Diags, ParserOptions Opts);

  /// Parses starting at \p RuleName (or the grammar's first rule when
  /// empty). Returns the (possibly partial) parse tree; syntax errors are
  /// reported to the diagnostics engine — check \c Diags.hasErrors() or
  /// \ref ok(). In arena mode (ParserOptions::TreeArena) the return value
  /// is null and the root is available via \ref arenaTree.
  std::unique_ptr<ParseTree> parse(const std::string &RuleName = "");

  /// True if the last parse() completed without syntax errors.
  bool ok() const { return LastParseOk; }

  /// Root of the last arena-mode parse (null in heap mode). Valid until
  /// the arena passed in ParserOptions::TreeArena is reset.
  const ArenaParseTree *arenaTree() const { return ArenaRoot; }

  /// True if the last parse() aborted because its deadline expired.
  bool deadlineExpired() const { return DeadlineHit; }

  const ParserStats &stats() const { return Stats; }
  ParserStats &stats() { return Stats; }

private:
  /// Parent slot for tree building: exactly one pointer is set, matching
  /// the allocation mode (heap ParseTree vs ArenaParseTree). Both null
  /// while speculating or when tree building is off.
  struct NodeRef {
    ParseTree *Heap = nullptr;
    ArenaParseTree *InArena = nullptr;
    explicit operator bool() const { return Heap || InArena; }
  };

  // Core interpretation -----------------------------------------------------

  /// Parses one rule invocation. \p Precedence is the argument for
  /// precedence-rewritten rules (0 = unconstrained). Returns success.
  bool runRule(int32_t RuleIndex, int32_t Precedence, NodeRef Parent);

  /// Walks ATN states from \p From until reaching \p Until.
  bool runStates(int32_t From, int32_t Until, NodeRef Parent);

  /// Appends a rule node / the upcoming token to \p Parent in whichever
  /// allocation mode is active.
  NodeRef addRuleChild(NodeRef Parent, int32_t RuleIndex);
  void addTokenChild(NodeRef Parent);
  /// Error-leaf variants: the upcoming token as a Skipped leaf, a conjured
  /// \p Missing token, or a zero-width marker.
  void addErrorTokenChild(NodeRef Parent);
  void addMissingTokenChild(NodeRef Parent, TokenType Missing);
  void addMarkerChild(NodeRef Parent);

  /// Periodic deadline poll; returns false (once per parse reporting the
  /// error) after ParserOptions::Deadline passes.
  bool deadlineOk();

  /// One prediction event at \p Decision; returns the 1-based alternative
  /// or -1 on a no-viable-alternative error.
  int32_t adaptivePredict(int32_t Decision);

  // Predicates and speculation ----------------------------------------------

  bool evalSemanticContext(const SemanticContext &Pred);
  bool evalNamedPredicate(int32_t PredIndex);
  bool evalSynPredRule(int32_t FragmentRule);
  bool evalSynPredAlt(int32_t Decision, int32_t Alt);
  void runAction(int32_t ActionIndex);

  bool speculating() const { return SpecDepth > 0; }

  // Error handling and recovery ---------------------------------------------

  void reportMismatch(TokenType Expected);
  void reportNoViableAlt(int32_t Decision, int64_t DepthReached);

  /// Recovery is active only for real (non-speculative) parsing.
  bool canRecover() const {
    return Opts.Recover && !speculating() && !DeadlineHit;
  }
  ErrorStrategy &strategy() {
    return Opts.Strategy ? *Opts.Strategy : DefaultStrategy;
  }

  /// Terminals that can follow a single conjured token at \p State: the
  /// static follow set of \p State, chained through the dynamic invocation
  /// stack while rule ends are reachable (plus EOF if the whole stack is).
  IntervalSet viableAfter(int32_t State) const;
  /// The panic-mode synchronization set: the union of the follow sets at
  /// every return site on the dynamic invocation stack, plus EOF.
  IntervalSet recoverySet() const;

  /// Consumes the offending token as a Skipped error leaf.
  void skipTokenAsError(NodeRef Parent);
  /// Sync-and-return after a failed rule body: consumes to \ref recoverySet
  /// as error leaves under \p Node (a zero-width marker when nothing is
  /// consumed), with a force-consume of one token when no progress was made
  /// since the previous sync (termination guard).
  void syncAfterRuleFailure(NodeRef Node);
  /// Panic recovery at a failed prediction: consumes tokens that neither
  /// the decision nor the invocation stack can accept. Returns true when
  /// the decision is worth retrying (progress was made and the next token
  /// is matchable here).
  bool recoverAtDecision(int32_t State, NodeRef Parent);

  // Memoization (speculative rule parses only) -------------------------------

  /// Packed memo key for (rule, precedence, start index).
  static uint64_t memoKey(int32_t Rule, int32_t Precedence, int64_t Start) {
    return (uint64_t(uint32_t(Rule)) << 40) ^
           (uint64_t(uint32_t(Precedence)) << 56) ^ uint64_t(Start);
  }

  const AnalyzedGrammar &AG;
  const Atn &M;
  TokenStream &Stream;
  SemanticEnv *Env;
  DiagnosticEngine &Diags;
  ParserOptions Opts;
  ParserStats Stats;

  /// Built-in repair policy used when ParserOptions::Strategy is null.
  ErrorStrategy DefaultStrategy;
  /// Follow states of the active rule invocations (innermost last); the
  /// dynamic counterpart of the paper's rule-invocation stack, consulted by
  /// \ref viableAfter and \ref recoverySet.
  std::vector<int32_t> FollowStack;
  /// Stream index of the previous sync-and-return; failing again there
  /// forces one token of progress.
  int64_t LastErrorIndex = -1;
  /// Conjured tokens since the last real consume; caps runaway insertion.
  int32_t InsertionsSinceConsume = 0;

  int32_t SpecDepth = 0;
  /// Highest stream index touched during the current speculation cascade;
  /// feeds the "backtracking lookahead depth" statistic.
  int64_t SpecMaxIndex = 0;
  /// Precedence arguments of active precedence-rule invocations.
  std::vector<int32_t> PrecStack;
  /// memoKey -> stop index (or -1 for remembered failure).
  std::unordered_map<uint64_t, int64_t> Memo;
  /// Predicate/action names already reported as unbound (warn once).
  std::unordered_set<std::string> ReportedUnbound;
  bool LastParseOk = false;
  ArenaParseTree *ArenaRoot = nullptr;
  bool DeadlineHit = false;
  /// Countdown between clock reads so deadline polling stays off the
  /// per-state fast path.
  int32_t DeadlinePollCountdown = DeadlinePollInterval;
  static constexpr int32_t DeadlinePollInterval = 256;
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_LLSTARPARSER_H
