//===- runtime/ParserStats.h - Runtime decision statistics ------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-decision runtime profiling counters — the measurements behind the
/// paper's Tables 3 and 4: decision events, lookahead depth per event,
/// backtracking events and speculation depth, memoization traffic.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_PARSERSTATS_H
#define LLSTAR_RUNTIME_PARSERSTATS_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace llstar {

/// Number of buckets in the bounded lookahead-depth histogram: bucket i
/// counts events with lookahead depth exactly i for i < KHistBuckets-1;
/// the last bucket collects everything deeper. Bounded so the histogram
/// is a fixed-size array — mergeable and JSON-stable regardless of the
/// grammar or the backend's depth cap.
constexpr size_t KHistBuckets = 10;

/// Counters for one parsing decision.
struct DecisionStats {
  int64_t Events = 0;        ///< prediction events at this decision
  int64_t TotalK = 0;        ///< sum of lookahead depths over events
  int64_t MaxK = 0;          ///< deepest lookahead of any event
  int64_t BacktrackEvents = 0; ///< events that evaluated a syntactic pred
  int64_t BacktrackTotalK = 0; ///< sum of speculation depths (those events)
  /// Bounded histogram of lookahead depths (see \ref KHistBuckets).
  std::array<int64_t, KHistBuckets> KHist{};
  /// Events per predicted alternative, index 0 = alt 1. Prediction
  /// failures (no viable alternative) are counted in Events but not here.
  std::vector<int64_t> AltEvents;

  /// Records one prediction event. \p Alt is the 1-based chosen
  /// alternative, or <= 0 when prediction failed.
  void record(int64_t K, bool Backtracked, int32_t Alt = 0) {
    ++Events;
    TotalK += K;
    MaxK = std::max(MaxK, K);
    ++KHist[size_t(std::clamp<int64_t>(K, 0, KHistBuckets - 1))];
    if (Backtracked) {
      ++BacktrackEvents;
      BacktrackTotalK += K;
    }
    if (Alt > 0) {
      if (AltEvents.size() < size_t(Alt))
        AltEvents.resize(size_t(Alt));
      ++AltEvents[size_t(Alt) - 1];
    }
  }

  void merge(const DecisionStats &O) {
    Events += O.Events;
    TotalK += O.TotalK;
    MaxK = std::max(MaxK, O.MaxK);
    BacktrackEvents += O.BacktrackEvents;
    BacktrackTotalK += O.BacktrackTotalK;
    for (size_t I = 0; I < KHistBuckets; ++I)
      KHist[I] += O.KHist[I];
    if (AltEvents.size() < O.AltEvents.size())
      AltEvents.resize(O.AltEvents.size());
    for (size_t I = 0; I < O.AltEvents.size(); ++I)
      AltEvents[I] += O.AltEvents[I];
  }
};

/// Stable identity of one decision, independent of global decision
/// numbering: the owning rule's name, the decision's ordinal within that
/// rule (in decision-number order), and the decision's source position.
/// Emitted alongside the raw index in stats JSON so profiles collected by
/// different workers/fleets against the same grammar text are joinable
/// (and diffable) even if unrelated rules were added or removed.
struct DecisionKey {
  std::string Rule;          ///< owning rule name ("" = unknown)
  int32_t DecisionInRule = 0; ///< 0-based ordinal within the rule
  uint32_t Line = 0;          ///< decision source line (1-based; 0 = none)
  uint32_t Column = 0;        ///< decision source column (0-based)
};

/// Counters for one whole parse (or many; they accumulate).
struct ParserStats {
  std::vector<DecisionStats> Decisions;
  int64_t SynPredEvals = 0;
  int64_t MemoHits = 0;
  int64_t MemoMisses = 0;
  int64_t TokensConsumed = 0;
  int64_t SyntaxErrors = 0;
  int64_t TokensDeleted = 0;  ///< single-token-deletion repairs
  int64_t TokensInserted = 0; ///< single-token-insertion repairs
  int64_t PanicSyncs = 0;     ///< sync-and-return recoveries
  int64_t NodesReused = 0;       ///< subtrees spliced by incremental reparse
  int64_t TokensRelexed = 0;     ///< tokens re-lexed inside damage windows
  int64_t DecisionsReparsed = 0; ///< prediction events incremental redid

  void ensure(size_t NumDecisions) {
    if (Decisions.size() < NumDecisions)
      Decisions.resize(NumDecisions);
  }

  /// Number of distinct decisions exercised at least once (Table 3's "n").
  int64_t decisionsCovered() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.Events > 0;
    return N;
  }
  int64_t totalEvents() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.Events;
    return N;
  }
  /// Average lookahead depth over all decision events (Table 3 "avg k").
  double avgLookahead() const {
    int64_t Events = totalEvents();
    int64_t K = 0;
    for (const DecisionStats &D : Decisions)
      K += D.TotalK;
    return Events ? double(K) / double(Events) : 0;
  }
  /// Average speculation depth over backtracking events (Table 3 "back k").
  double avgBacktrackLookahead() const {
    int64_t Events = 0, K = 0;
    for (const DecisionStats &D : Decisions) {
      Events += D.BacktrackEvents;
      K += D.BacktrackTotalK;
    }
    return Events ? double(K) / double(Events) : 0;
  }
  /// Deepest lookahead of any event (Table 3 "max k").
  int64_t maxLookahead() const {
    int64_t K = 0;
    for (const DecisionStats &D : Decisions)
      K = std::max(K, D.MaxK);
    return K;
  }
  /// Aggregate bounded lookahead-depth histogram over every decision
  /// (bucket semantics in \ref KHistBuckets).
  std::array<int64_t, KHistBuckets> kHistogram() const {
    std::array<int64_t, KHistBuckets> H{};
    for (const DecisionStats &D : Decisions)
      for (size_t I = 0; I < KHistBuckets; ++I)
        H[I] += D.KHist[I];
    return H;
  }
  int64_t backtrackEvents() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.BacktrackEvents;
    return N;
  }
  /// Fraction of decision events that backtracked (Table 4 "Backtrack").
  double backtrackEventFraction() const {
    int64_t Events = totalEvents();
    return Events ? double(backtrackEvents()) / double(Events) : 0;
  }
  /// Number of decisions that backtracked at least once (Table 4 "Did").
  int64_t decisionsThatBacktracked() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.BacktrackEvents > 0;
    return N;
  }

  /// Accumulates \p O into this. Decision vectors of different lengths are
  /// aligned by index; the service merges every worker's thread-local stats
  /// into one aggregate snapshot with this.
  void merge(const ParserStats &O);

  /// Renders all counters as a JSON object. Keys are emitted in a fixed,
  /// documented order so profile files diff cleanly across runs:
  ///
  ///   [backend,] decisionEvents, decisionsCovered, avgLookahead,
  ///   maxLookahead, kHistogram, backtrackEvents, backtrackFraction,
  ///   avgBacktrackLookahead, synPredEvals, memoHits, memoMisses,
  ///   tokensConsumed, syntaxErrors, tokensDeleted, tokensInserted,
  ///   panicSyncs, nodesReused, tokensRelexed, decisionsReparsed
  ///   [, decisions]
  ///
  /// `kHistogram` is the bounded depth histogram as a fixed-length array
  /// of \ref KHistBuckets counts (index = depth, last bucket = deeper).
  /// \p IncludeDecisions adds a `decisions` array with one entry per
  /// decision that recorded at least one event, each with keys
  ///   decision [, rule, decisionInRule, line, column],
  ///   events, totalK, maxK, kHistogram, backtrackEvents, backtrackTotalK,
  ///   altEvents
  /// in that order. \p Keys, when non-null and long enough, supplies the
  /// stable \ref DecisionKey identity fields. \p Backend, when non-null,
  /// is emitted first as a `backend` string — the prediction-analysis
  /// backend the profiled tables came from.
  std::string json(bool IncludeDecisions = false,
                   const std::vector<DecisionKey> *Keys = nullptr,
                   const char *Backend = nullptr) const;

  void reset() { *this = ParserStats(); }
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_PARSERSTATS_H
