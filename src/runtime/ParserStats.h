//===- runtime/ParserStats.h - Runtime decision statistics ------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-decision runtime profiling counters — the measurements behind the
/// paper's Tables 3 and 4: decision events, lookahead depth per event,
/// backtracking events and speculation depth, memoization traffic.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_PARSERSTATS_H
#define LLSTAR_RUNTIME_PARSERSTATS_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace llstar {

/// Counters for one parsing decision.
struct DecisionStats {
  int64_t Events = 0;        ///< prediction events at this decision
  int64_t TotalK = 0;        ///< sum of lookahead depths over events
  int64_t MaxK = 0;          ///< deepest lookahead of any event
  int64_t BacktrackEvents = 0; ///< events that evaluated a syntactic pred
  int64_t BacktrackTotalK = 0; ///< sum of speculation depths (those events)

  void record(int64_t K, bool Backtracked) {
    ++Events;
    TotalK += K;
    MaxK = std::max(MaxK, K);
    if (Backtracked) {
      ++BacktrackEvents;
      BacktrackTotalK += K;
    }
  }

  void merge(const DecisionStats &O) {
    Events += O.Events;
    TotalK += O.TotalK;
    MaxK = std::max(MaxK, O.MaxK);
    BacktrackEvents += O.BacktrackEvents;
    BacktrackTotalK += O.BacktrackTotalK;
  }
};

/// Counters for one whole parse (or many; they accumulate).
struct ParserStats {
  std::vector<DecisionStats> Decisions;
  int64_t SynPredEvals = 0;
  int64_t MemoHits = 0;
  int64_t MemoMisses = 0;
  int64_t TokensConsumed = 0;
  int64_t SyntaxErrors = 0;
  int64_t TokensDeleted = 0;  ///< single-token-deletion repairs
  int64_t TokensInserted = 0; ///< single-token-insertion repairs
  int64_t PanicSyncs = 0;     ///< sync-and-return recoveries
  int64_t NodesReused = 0;       ///< subtrees spliced by incremental reparse
  int64_t TokensRelexed = 0;     ///< tokens re-lexed inside damage windows
  int64_t DecisionsReparsed = 0; ///< prediction events incremental redid

  void ensure(size_t NumDecisions) {
    if (Decisions.size() < NumDecisions)
      Decisions.resize(NumDecisions);
  }

  /// Number of distinct decisions exercised at least once (Table 3's "n").
  int64_t decisionsCovered() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.Events > 0;
    return N;
  }
  int64_t totalEvents() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.Events;
    return N;
  }
  /// Average lookahead depth over all decision events (Table 3 "avg k").
  double avgLookahead() const {
    int64_t Events = totalEvents();
    int64_t K = 0;
    for (const DecisionStats &D : Decisions)
      K += D.TotalK;
    return Events ? double(K) / double(Events) : 0;
  }
  /// Average speculation depth over backtracking events (Table 3 "back k").
  double avgBacktrackLookahead() const {
    int64_t Events = 0, K = 0;
    for (const DecisionStats &D : Decisions) {
      Events += D.BacktrackEvents;
      K += D.BacktrackTotalK;
    }
    return Events ? double(K) / double(Events) : 0;
  }
  /// Deepest lookahead of any event (Table 3 "max k").
  int64_t maxLookahead() const {
    int64_t K = 0;
    for (const DecisionStats &D : Decisions)
      K = std::max(K, D.MaxK);
    return K;
  }
  int64_t backtrackEvents() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.BacktrackEvents;
    return N;
  }
  /// Fraction of decision events that backtracked (Table 4 "Backtrack").
  double backtrackEventFraction() const {
    int64_t Events = totalEvents();
    return Events ? double(backtrackEvents()) / double(Events) : 0;
  }
  /// Number of decisions that backtracked at least once (Table 4 "Did").
  int64_t decisionsThatBacktracked() const {
    int64_t N = 0;
    for (const DecisionStats &D : Decisions)
      N += D.BacktrackEvents > 0;
    return N;
  }

  /// Accumulates \p O into this. Decision vectors of different lengths are
  /// aligned by index; the service merges every worker's thread-local stats
  /// into one aggregate snapshot with this.
  void merge(const ParserStats &O);

  /// Renders all counters as a JSON object. \p IncludeDecisions adds a
  /// `decisions` array with one entry per decision that recorded at least
  /// one event.
  std::string json(bool IncludeDecisions = false) const;

  void reset() { *this = ParserStats(); }
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_PARSERSTATS_H
