//===- runtime/TreeUtils.h - Parse-tree walking utilities -------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience utilities over \ref ParseTree: depth-first walking with
/// enter/exit callbacks, node collection by rule, token-text extraction,
/// and indented/dot renderings for debugging and tooling.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_TREEUTILS_H
#define LLSTAR_RUNTIME_TREEUTILS_H

#include "runtime/ParseTree.h"

#include <functional>
#include <string>
#include <vector>

namespace llstar {

/// Callbacks for \ref walkTree. Either may be null.
struct TreeListener {
  /// Called before a node's children; return false to skip the subtree.
  std::function<bool(const ParseTree &)> Enter;
  /// Called after a node's children.
  std::function<void(const ParseTree &)> Exit;
};

/// Depth-first traversal with enter/exit events (the listener pattern of
/// ANTLR-generated walkers).
void walkTree(const ParseTree &Root, const TreeListener &Listener);

/// All descendants (including \p Root) that are applications of rule
/// \p RuleIndex, in document order.
std::vector<const ParseTree *> collectRuleNodes(const ParseTree &Root,
                                                int32_t RuleIndex);

/// Concatenated text of all token leaves under \p Root, separated by
/// single spaces.
std::string treeText(const ParseTree &Root);

/// Depth of the deepest leaf (a single node has depth 1).
size_t treeDepth(const ParseTree &Root);

/// Indented multi-line rendering; one node per line.
std::string treeToIndentedString(const ParseTree &Root, const Grammar &G);

/// Graphviz rendering of the tree.
std::string treeToDot(const ParseTree &Root, const Grammar &G);

} // namespace llstar

#endif // LLSTAR_RUNTIME_TREEUTILS_H
