//===- runtime/SemanticEnv.h - Predicate/action bindings --------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binds the symbolic predicate and action names appearing in a grammar
/// (`{isTypeName}?`, `{pushScope}`, `{{enterBlock}}`) to host-language
/// callbacks. This substitutes for the paper's host-language code
/// generation: semantics are identical — predicates gate productions on
/// user state, mutators update it — but binding happens at parse time
/// instead of compile time.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_SEMANTICENV_H
#define LLSTAR_RUNTIME_SEMANTICENV_H

#include <functional>
#include <string>
#include <unordered_map>

namespace llstar {

/// The semantic environment of one parse: named predicates and actions.
class SemanticEnv {
public:
  using Predicate = std::function<bool()>;
  using Action = std::function<void()>;

  void definePredicate(const std::string &Name, Predicate P) {
    Predicates[Name] = std::move(P);
  }
  void defineAction(const std::string &Name, Action A) {
    Actions[Name] = std::move(A);
  }

  /// Returns the predicate bound to \p Name, or null.
  const Predicate *findPredicate(const std::string &Name) const {
    auto It = Predicates.find(Name);
    return It == Predicates.end() ? nullptr : &It->second;
  }
  /// Returns the action bound to \p Name, or null.
  const Action *findAction(const std::string &Name) const {
    auto It = Actions.find(Name);
    return It == Actions.end() ? nullptr : &It->second;
  }

private:
  std::unordered_map<std::string, Predicate> Predicates;
  std::unordered_map<std::string, Action> Actions;
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_SEMANTICENV_H
