//===- runtime/ReuseHooks.h - Incremental-reparse engine hooks --*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract between the parsing engines and the incremental-reparse
/// subsystem (src/incremental/). When ParserOptions::Hooks is set, both the
/// interpreting LLStarParser and the compiled CompiledParser call back at
/// the same points:
///
///   - tryReuse() before running a non-speculative rule invocation: a hit
///     splices a previously built subtree into the tree under construction
///     and skips the rule body entirely (the engine seeks the stream past
///     the subtree's tokens);
///   - enterRule()/exitRule() bracketing every non-speculative rule body,
///     so the subscriber can record per-node reuse metadata;
///   - lookahead() at every prediction record point — including during
///     speculation — reporting the highest stream index the decision
///     examined (prediction is a pure function of that window, which is
///     what makes subtree reuse soundness checkable);
///   - opaque() whenever the current rule's outcome stops being a pure
///     function of its token window: semantic predicates, actions, reported
///     syntax errors (recovery consults the dynamic follow stack), deadline
///     aborts. Subscribers must refuse to reuse poisoned nodes.
///
/// The engines never interpret the recorded data; soundness policy lives
/// entirely on the subscriber side.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_REUSEHOOKS_H
#define LLSTAR_RUNTIME_REUSEHOOKS_H

#include <cstdint>
#include <memory>

namespace llstar {

class ParseTree;
class ArenaParseTree;

/// Abstract subscriber for incremental-reparse instrumentation. All calls
/// happen on the parsing thread; implementations need no locking unless
/// shared across parsers.
class ReuseHooks {
public:
  virtual ~ReuseHooks() = default;

  /// A successful reuse probe: exactly one of Heap/InArena is set, matching
  /// the parser's tree mode, and NextIndex is the stream index just past
  /// the subtree's last consumed token.
  struct Splice {
    std::unique_ptr<ParseTree> Heap;
    ArenaParseTree *InArena = nullptr;
    int64_t NextIndex = -1;
  };

  /// Probes for a reusable subtree for (Rule, Precedence) starting at
  /// stream index \p StartIndex. On a hit the engine attaches the splice,
  /// seeks to Splice::NextIndex, and skips the rule body.
  virtual bool tryReuse(int32_t Rule, int32_t Precedence, int64_t StartIndex,
                        Splice &Out) = 0;

  /// A non-speculative rule invocation is about to run its body (after a
  /// tryReuse miss).
  virtual void enterRule(int32_t Rule, int32_t Precedence,
                         int64_t StartIndex) = 0;

  /// The invocation announced by the matching enterRule finished (possibly
  /// after recovery resync). \p NextIndex is the stream index after the
  /// rule; the node pointers identify the freshly built tree node (null
  /// when tree building is off).
  virtual void exitRule(int32_t Rule, int64_t NextIndex, ParseTree *HeapNode,
                        ArenaParseTree *ArenaNode) = 0;

  /// A prediction event examined tokens up to stream index
  /// \p MaxIndexInclusive (an over-approximation by at most one token).
  /// Fires during speculation too: lookahead consumed inside a speculative
  /// sub-parse belongs to the innermost real rule on the subscriber's
  /// stack.
  virtual void lookahead(int64_t MaxIndexInclusive) = 0;

  /// The current rule invocation (and hence its ancestors) is no longer a
  /// pure function of its token window.
  virtual void opaque() = 0;
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_REUSEHOOKS_H
