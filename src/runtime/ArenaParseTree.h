//===- runtime/ArenaParseTree.h - Arena-allocated parse trees ---*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arena allocation mode for parse trees: trivially destructible nodes
/// carved from an \ref Arena, linked through intrusive sibling pointers.
/// Token leaves store the token's index in the \ref TokenStream instead of
/// an owning copy, so releasing a tree is the O(1) arena reset — the parse
/// service renders or walks the tree while the request's stream is alive,
/// then recycles the region.
///
/// \ref str produces byte-identical output to ParseTree::str for the same
/// parse; ServiceTests rely on that to compare heap and arena modes.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_ARENAPARSETREE_H
#define LLSTAR_RUNTIME_ARENAPARSETREE_H

#include "grammar/Grammar.h"
#include "lexer/TokenStream.h"
#include "runtime/Arena.h"
#include "runtime/ParseTree.h" // ErrorNodeKind

#include <cstdint>
#include <string>

namespace llstar {

/// One arena-allocated parse-tree node. No destructor may be required; the
/// arena frees nodes without running them.
class ArenaParseTree {
public:
  static ArenaParseTree *ruleNode(Arena &A, int32_t RuleIndex) {
    ArenaParseTree *N = A.create<ArenaParseTree>();
    N->RuleIdx = RuleIndex;
    return N;
  }
  static ArenaParseTree *tokenNode(Arena &A, int64_t TokenIndex) {
    ArenaParseTree *N = A.create<ArenaParseTree>();
    N->IsToken = true;
    N->TokenIdx = TokenIndex;
    return N;
  }
  /// An error leaf for a real input token that recovery deleted or
  /// panic-skipped; renders as `(error <text>)`.
  static ArenaParseTree *errorNode(Arena &A, int64_t TokenIndex) {
    ArenaParseTree *N = tokenNode(A, TokenIndex);
    N->ErrKind = ErrorNodeKind::Skipped;
    return N;
  }
  /// A conjured-token error leaf (single-token insertion): \p Missing is
  /// the inserted type, \p AtTokenIndex the stream position of the repair
  /// (its source span). Renders as `(error <missing X>)`.
  static ArenaParseTree *missingNode(Arena &A, TokenType Missing,
                                     int64_t AtTokenIndex) {
    ArenaParseTree *N = tokenNode(A, AtTokenIndex);
    N->ErrKind = ErrorNodeKind::Missing;
    N->MissingTok = Missing;
    return N;
  }
  /// A zero-width error marker at \p AtTokenIndex; renders as `(error)`.
  static ArenaParseTree *markerNode(Arena &A, int64_t AtTokenIndex) {
    ArenaParseTree *N = tokenNode(A, AtTokenIndex);
    N->ErrKind = ErrorNodeKind::Marker;
    return N;
  }

  bool isToken() const { return IsToken; }
  bool isError() const { return ErrKind != ErrorNodeKind::None; }
  ErrorNodeKind errorKind() const { return ErrKind; }
  /// The conjured token type of a Missing error leaf (TokenInvalid
  /// otherwise).
  TokenType missingToken() const { return MissingTok; }
  int32_t ruleIndex() const { return RuleIdx; }
  /// Index of this leaf's token in the request's TokenStream.
  int64_t tokenIndex() const { return TokenIdx; }

  ArenaParseTree *addChild(ArenaParseTree *Child) {
    Child->NextSibling = nullptr;
    if (LastChild)
      LastChild->NextSibling = Child;
    else
      FirstChild = Child;
    LastChild = Child;
    ++NumChildren;
    return Child;
  }

  const ArenaParseTree *firstChild() const { return FirstChild; }
  const ArenaParseTree *nextSibling() const { return NextSibling; }
  size_t numChildren() const { return NumChildren; }

  /// Total number of nodes in this subtree.
  size_t size() const {
    size_t N = 1;
    for (const ArenaParseTree *C = FirstChild; C; C = C->NextSibling)
      N += C->size();
    return N;
  }

  /// Number of error leaves in this subtree.
  size_t numErrorNodes() const {
    size_t N = isError() ? 1 : 0;
    for (const ArenaParseTree *C = FirstChild; C; C = C->NextSibling)
      N += C->numErrorNodes();
    return N;
  }

  /// LISP-style rendering identical to ParseTree::str: `(rule child ...)`,
  /// token leaves as their text (looked up in \p Stream).
  std::string str(const Grammar &G, const TokenStream &Stream) const {
    std::string Out;
    render(G, Stream, Out);
    return Out;
  }

private:
  void render(const Grammar &G, const TokenStream &Stream,
              std::string &Out) const {
    if (IsToken) {
      if (ErrKind == ErrorNodeKind::None) {
        Out += Stream.at(TokenIdx).Text;
      } else if (ErrKind == ErrorNodeKind::Marker) {
        Out += "(error)";
      } else if (ErrKind == ErrorNodeKind::Missing) {
        Out += "(error <missing ";
        Out += G.vocabulary().name(MissingTok);
        Out += ">)";
      } else {
        Out += "(error ";
        Out += Stream.at(TokenIdx).Text;
        Out += ")";
      }
      return;
    }
    Out += "(";
    Out += G.rule(RuleIdx).Name;
    for (const ArenaParseTree *C = FirstChild; C; C = C->NextSibling) {
      Out += " ";
      C->render(G, Stream, Out);
    }
    Out += ")";
  }

  bool IsToken = false;
  ErrorNodeKind ErrKind = ErrorNodeKind::None;
  int32_t RuleIdx = -1;
  TokenType MissingTok = TokenInvalid;
  int64_t TokenIdx = -1;
  ArenaParseTree *FirstChild = nullptr;
  ArenaParseTree *LastChild = nullptr;
  ArenaParseTree *NextSibling = nullptr;
  uint32_t NumChildren = 0;
};

static_assert(std::is_trivially_destructible_v<ArenaParseTree>,
              "ArenaParseTree must stay arena-compatible");

} // namespace llstar

#endif // LLSTAR_RUNTIME_ARENAPARSETREE_H
