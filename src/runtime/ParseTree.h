//===- runtime/ParseTree.h - Concrete parse trees ---------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete syntax trees built by the LL(*) and packrat parsers during
/// non-speculative parsing. Nodes are either rule applications or token
/// leaves.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_PARSETREE_H
#define LLSTAR_RUNTIME_PARSETREE_H

#include "grammar/Grammar.h"
#include "lexer/Token.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace llstar {

/// How an error leaf came to be. Error leaves are emitted by the
/// error-recovering runtime (src/recover) and render as `(error ...)`;
/// ParseTree and ArenaParseTree produce byte-identical renderings.
enum class ErrorNodeKind : uint8_t {
  None,    ///< not an error node
  Skipped, ///< a real input token deleted or panic-skipped during recovery
  Missing, ///< a conjured token (single-token insertion)
  Marker,  ///< zero-width marker: recovery re-synced without consuming
};

/// One parse-tree node.
class ParseTree {
public:
  static std::unique_ptr<ParseTree> ruleNode(int32_t RuleIndex) {
    auto N = std::make_unique<ParseTree>();
    N->RuleIdx = RuleIndex;
    return N;
  }
  static std::unique_ptr<ParseTree> tokenNode(Token Tok) {
    auto N = std::make_unique<ParseTree>();
    N->IsToken = true;
    N->Tok = std::move(Tok);
    return N;
  }
  /// An error leaf. \p Tok carries the exact source span: the skipped
  /// token itself, or for Missing/Marker nodes the token at the repair
  /// point (Missing nodes carry the conjured type and a synthetic
  /// `<missing X>` text).
  static std::unique_ptr<ParseTree> errorNode(Token Tok, ErrorNodeKind Kind) {
    auto N = std::make_unique<ParseTree>();
    N->IsToken = true;
    N->ErrKind = Kind;
    N->Tok = std::move(Tok);
    return N;
  }

  bool isToken() const { return IsToken; }
  bool isError() const { return ErrKind != ErrorNodeKind::None; }
  ErrorNodeKind errorKind() const { return ErrKind; }
  int32_t ruleIndex() const { return RuleIdx; }
  const Token &token() const { return Tok; }
  /// Replaces a token leaf's payload; the incremental runtime refreshes
  /// reused leaves this way when an edit shifted the retained suffix.
  void setToken(Token T) {
    assert(IsToken && "not a token leaf");
    Tok = std::move(T);
  }

  /// The node owning this one, null for a root (or a detached subtree).
  /// Links are maintained by addChild; child slots never move once the
  /// parent's rule finished, which is what lets the incremental runtime
  /// detach a recorded subtree in O(1).
  ParseTree *parent() const { return Parent; }
  /// This node's index in parent()->children().
  uint32_t parentSlot() const { return Slot; }

  ParseTree *addChild(std::unique_ptr<ParseTree> Child) {
    Child->Parent = this;
    Child->Slot = uint32_t(Children.size());
    Children.push_back(std::move(Child));
    return Children.back().get();
  }
  /// Detaches child \p I, leaving an empty slot (null if already taken or
  /// out of range). Only trees about to be discarded grow holes — the
  /// incremental runtime steals subtrees out of the previous parse's tree
  /// while building the replacement; renderings and counts skip holes.
  std::unique_ptr<ParseTree> releaseChild(uint32_t I) {
    if (I >= Children.size())
      return nullptr;
    std::unique_ptr<ParseTree> Out = std::move(Children[I]);
    if (Out)
      Out->Parent = nullptr;
    return Out;
  }
  /// Drops children from index \p N on; speculative parsers roll back with
  /// this after a failed attempt.
  void truncateChildren(size_t N) {
    if (N < Children.size())
      Children.resize(N);
  }
  /// Moves all children out (splicing helper for scratch nodes).
  std::vector<std::unique_ptr<ParseTree>> takeChildren() {
    return std::move(Children);
  }
  const std::vector<std::unique_ptr<ParseTree>> &children() const {
    return Children;
  }
  ParseTree *child(size_t I) const { return Children[I].get(); }
  size_t numChildren() const { return Children.size(); }

  /// Total number of nodes in this subtree.
  size_t size() const {
    size_t N = 1;
    for (const auto &C : Children)
      if (C)
        N += C->size();
    return N;
  }

  /// Number of token leaves in this subtree. Error leaves do not count:
  /// they are repair artifacts, not matched input.
  size_t numTokens() const {
    if (IsToken)
      return isError() ? 0 : 1;
    size_t N = 0;
    for (const auto &C : Children)
      if (C)
        N += C->numTokens();
    return N;
  }

  /// Number of error leaves in this subtree.
  size_t numErrorNodes() const {
    size_t N = isError() ? 1 : 0;
    for (const auto &C : Children)
      if (C)
        N += C->numErrorNodes();
    return N;
  }

  /// LISP-style rendering: `(rule child1 child2)`, token leaves as text,
  /// error leaves as `(error <text>)` (`(error)` for zero-width markers).
  std::string str(const Grammar &G) const {
    if (IsToken) {
      if (ErrKind == ErrorNodeKind::None)
        return Tok.Text;
      if (ErrKind == ErrorNodeKind::Marker)
        return "(error)";
      return "(error " + Tok.Text + ")";
    }
    std::string Out = "(" + G.rule(RuleIdx).Name;
    for (const auto &C : Children) {
      if (!C)
        continue;
      Out += " ";
      Out += C->str(G);
    }
    Out += ")";
    return Out;
  }

private:
  bool IsToken = false;
  ErrorNodeKind ErrKind = ErrorNodeKind::None;
  int32_t RuleIdx = -1;
  uint32_t Slot = 0;
  ParseTree *Parent = nullptr;
  Token Tok;
  std::vector<std::unique_ptr<ParseTree>> Children;
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_PARSETREE_H
