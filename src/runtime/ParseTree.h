//===- runtime/ParseTree.h - Concrete parse trees ---------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete syntax trees built by the LL(*) and packrat parsers during
/// non-speculative parsing. Nodes are either rule applications or token
/// leaves.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_PARSETREE_H
#define LLSTAR_RUNTIME_PARSETREE_H

#include "grammar/Grammar.h"
#include "lexer/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace llstar {

/// One parse-tree node.
class ParseTree {
public:
  static std::unique_ptr<ParseTree> ruleNode(int32_t RuleIndex) {
    auto N = std::make_unique<ParseTree>();
    N->RuleIdx = RuleIndex;
    return N;
  }
  static std::unique_ptr<ParseTree> tokenNode(Token Tok) {
    auto N = std::make_unique<ParseTree>();
    N->IsToken = true;
    N->Tok = std::move(Tok);
    return N;
  }

  bool isToken() const { return IsToken; }
  int32_t ruleIndex() const { return RuleIdx; }
  const Token &token() const { return Tok; }

  ParseTree *addChild(std::unique_ptr<ParseTree> Child) {
    Children.push_back(std::move(Child));
    return Children.back().get();
  }
  /// Drops children from index \p N on; speculative parsers roll back with
  /// this after a failed attempt.
  void truncateChildren(size_t N) {
    if (N < Children.size())
      Children.resize(N);
  }
  /// Moves all children out (splicing helper for scratch nodes).
  std::vector<std::unique_ptr<ParseTree>> takeChildren() {
    return std::move(Children);
  }
  const std::vector<std::unique_ptr<ParseTree>> &children() const {
    return Children;
  }
  ParseTree *child(size_t I) const { return Children[I].get(); }
  size_t numChildren() const { return Children.size(); }

  /// Total number of nodes in this subtree.
  size_t size() const {
    size_t N = 1;
    for (const auto &C : Children)
      N += C->size();
    return N;
  }

  /// Number of token leaves in this subtree.
  size_t numTokens() const {
    if (IsToken)
      return 1;
    size_t N = 0;
    for (const auto &C : Children)
      N += C->numTokens();
    return N;
  }

  /// LISP-style rendering: `(rule child1 child2)`, token leaves as text.
  std::string str(const Grammar &G) const {
    if (IsToken)
      return Tok.Text;
    std::string Out = "(" + G.rule(RuleIdx).Name;
    for (const auto &C : Children) {
      Out += " ";
      Out += C->str(G);
    }
    Out += ")";
    return Out;
  }

private:
  bool IsToken = false;
  int32_t RuleIdx = -1;
  Token Tok;
  std::vector<std::unique_ptr<ParseTree>> Children;
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_PARSETREE_H
